(* siri_cli — inspect SIRI indexes from the command line.

   Data files are TSV: one "key<TAB>value" record per line.

     siri_cli gen --count 1000 > data.tsv
     siri_cli stats                        # telemetry over a sample workload,
                                           # all four structures
     siri_cli stats --index pos data.tsv
     siri_cli get --index mpt data.tsv some-key
     siri_cli prove --index pos data.tsv some-key
     siri_cli diff --index pos v1.tsv v2.tsv
     siri_cli merge --index pos --policy right a.tsv b.tsv
     siri_cli properties --index mbt data.tsv  *)

open Cmdliner
open Siri_core
module Store = Siri_store.Store
module Hash = Siri_crypto.Hash
module Telemetry = Siri_telemetry.Telemetry
module Table = Siri_benchkit.Table
module Ycsb = Siri_workload.Ycsb
module Pool = Siri_parallel.Pool
module Partition = Siri_shard.Partition
module Shard_views = Siri_shard.Views
module Shard_proof = Siri_shard.Shard_proof
module Sharded = Siri_shard.Sharded
module Engine = Siri_forkbase.Engine
module Wal = Siri_wal.Wal
module Durable = Siri_wal.Durable

(* --- index selection ------------------------------------------------------- *)

type index_kind = Pos | Mpt | Mbt | Mvbt | Prolly

let kind_conv =
  Arg.enum
    [ ("pos", Pos); ("mpt", Mpt); ("mbt", Mbt); ("mvbt", Mvbt); ("prolly", Prolly) ]

let index_arg =
  Arg.(
    value
    & opt kind_conv Pos
    & info [ "i"; "index" ] ~docv:"INDEX"
        ~doc:"Index structure: $(b,pos), $(b,mpt), $(b,mbt), $(b,mvbt) or $(b,prolly).")

let make ?pool kind store =
  match kind with
  | Pos ->
      Siri_pos.Pos_tree.generic ?pool
        (Siri_pos.Pos_tree.empty store (Siri_pos.Pos_tree.config ()))
  | Prolly -> Siri_prolly.Prolly.generic ?pool (Siri_prolly.Prolly.empty store)
  | Mpt -> Siri_mpt.Mpt.generic ?pool (Siri_mpt.Mpt.empty store)
  | Mbt ->
      Siri_mbt.Mbt.generic ?pool
        (Siri_mbt.Mbt.empty store (Siri_mbt.Mbt.config ~capacity:1024 ~fanout:4 ()))
  | Mvbt ->
      Siri_mvbt.Mvbt.generic ?pool
        (Siri_mvbt.Mvbt.empty store (Siri_mvbt.Mvbt.config ()))

(* --- tsv io ------------------------------------------------------------------ *)

let read_tsv path =
  let ic = open_in path in
  let rec loop acc n =
    match input_line ic with
    | exception End_of_file ->
        close_in ic;
        List.rev acc
    | line -> (
        match String.index_opt line '\t' with
        | None when line = "" -> loop acc (n + 1)
        | None ->
            close_in ic;
            failwith (Printf.sprintf "%s:%d: missing TAB separator" path n)
        | Some i ->
            let k = String.sub line 0 i in
            let v = String.sub line (i + 1) (String.length line - i - 1) in
            loop ((k, v) :: acc) (n + 1))
  in
  loop [] 1

let load kind path =
  let store = Store.create () in
  let inst = make kind store in
  (store, Generic.of_entries inst (read_tsv path))

let file_arg idx docv =
  Arg.(required & pos idx (some file) None & info [] ~docv)

let key_arg idx = Arg.(required & pos idx (some string) None & info [] ~docv:"KEY")

let dir_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR")

(* --- sharded keyspace plumbing --------------------------------------------- *)

let shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Partition the keyspace across $(docv) shards (one independent \
           index per shard, one composite Merkle root over all of them).")

let partition_arg =
  Arg.(
    value
    & opt
        (enum [ ("hash", Partition.Hash); ("range", Partition.Range) ])
        Partition.Hash
    & info [ "partition" ] ~docv:"SCHEME"
        ~doc:"Partition scheme with --shards: $(b,hash) (default) or $(b,range).")

(* Per-shard in-memory views built from a TSV dataset: each shard gets its
   own store and index instance holding exactly the records the spec
   routes to it. *)
let sharded_views kind spec entries =
  let buckets = Array.make spec.Partition.shards [] in
  List.iter
    (fun ((k, _) as e) ->
      let i = Partition.shard_of_key spec k in
      buckets.(i) <- e :: buckets.(i))
    entries;
  Array.map
    (fun part -> Generic.of_entries (make kind (Store.create ())) (List.rev part))
    buckets

let durable_backend_arg =
  Arg.(
    value
    & opt (enum [ ("snapshot", `Snapshot); ("pack", `Pack) ]) `Snapshot
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Checkpoint backend the directory was created with: \
           $(b,snapshot) (default) or $(b,pack).")

let branch_arg =
  Arg.(
    value & opt string "master"
    & info [ "branch" ] ~docv:"BRANCH" ~doc:"Branch to operate on.")

let is_sharded_dir path =
  Sys.file_exists path
  && Sys.is_directory path
  && Sys.file_exists (Filename.concat path "SHARDS")

let open_sharded_dir kind backend dir =
  Sharded.open_ ~backend ~dir
    ~empty_index:(fun () -> make kind (Store.create ()))
    ()

(* --- commands ------------------------------------------------------------------ *)

(* --- telemetry-instrumented sample workload (stats without a FILE) -------- *)

(* Build a YCSB dataset and replay a 50/50 read/write stream against one
   structure with a wall-clock telemetry sink attached; returns the final
   instance and the sink holding counters, latency histograms and spans. *)
let run_sample ?pool ?cache_bytes kind ~records ~ops =
  let store = Store.create ?cache_bytes () in
  let sink = Telemetry.create ~clock:Unix.gettimeofday () in
  Store.set_sink store sink;
  Telemetry.attach_hash_counter sink;
  let y = Ycsb.create ~seed:1 ~n:records () in
  let inst = Generic.load_sorted (make ?pool kind store) (Ycsb.dataset y) in
  let rng = Rng.create 1 in
  let operations =
    Ycsb.operations y ~rng ~theta:0.5 ~mix:{ Ycsb.write_ratio = 0.5 } ~count:ops
  in
  let flush inst pending =
    if pending = [] then inst else inst.Generic.batch (List.rev pending)
  in
  let inst, pending =
    List.fold_left
      (fun (inst, pending) op ->
        match op with
        | Ycsb.Read k ->
            (* Through the full read path (filter + tiered telemetry), not
               the raw closure, so the hit/miss split below has data. *)
            ignore (Generic.get inst k);
            (inst, pending)
        | Ycsb.Write (k, v) ->
            let pending = Kv.Put (k, v) :: pending in
            if List.length pending >= 100 then (flush inst pending, [])
            else (inst, pending))
      (inst, []) operations
  in
  let inst = flush inst pending in
  Telemetry.detach_hash_counter ();
  Store.set_sink store Telemetry.null;
  (inst, sink)

let sample_kinds = [ Mpt; Mbt; Pos; Mvbt ]

let stats_workload ?pool ?cache_bytes ~records ~ops ~json () =
  let results =
    List.map
      (fun kind ->
        let inst, sink = run_sample ?pool ?cache_bytes kind ~records ~ops in
        (inst.Generic.name, inst, sink))
      sample_kinds
  in
  Table.print
    ~title:
      (Printf.sprintf
         "Telemetry counters — YCSB sample workload (%d records, %d ops, %d \
          domain%s)"
         records ops
         (match pool with Some p -> Pool.domains p | None -> 1)
         (match pool with Some p when Pool.domains p > 1 -> "s" | _ -> ""))
    ~headers:
      [ "index"; "node reads"; "node writes"; "unique"; "bytes written";
        "hashes"; "hashed bytes" ]
    (List.map
       (fun (name, _, sink) ->
         let c = Telemetry.counter sink in
         [ name;
           string_of_int (c "store.get");
           string_of_int (c "store.put");
           string_of_int (c "store.put_unique");
           Table.fmt_bytes (c "store.put_bytes");
           string_of_int (c "hash.count");
           Table.fmt_bytes (c "hash.bytes") ])
       results);
  Table.print
    ~title:"Read path — decoded-node cache and negative-lookup filter"
    ~headers:
      [ "index"; "cache hits"; "cache misses"; "hit ratio"; "evictions";
        "filter skips" ]
    (List.map
       (fun (name, _, sink) ->
         let c = Telemetry.counter sink in
         let hits = c "cache.node.hit" and misses = c "cache.node.miss" in
         let ratio =
           if hits + misses = 0 then "-"
           else
             Printf.sprintf "%.1f%%"
               (100. *. float_of_int hits /. float_of_int (hits + misses))
         in
         [ name; string_of_int hits; string_of_int misses; ratio;
           string_of_int (c "cache.node.evict");
           string_of_int (c "read.filter.skip") ])
       results);
  let latency_rows =
    List.concat_map
      (fun (name, _, sink) ->
        List.filter_map
          (fun (op, metric) ->
            match Telemetry.histogram sink metric with
            | None -> None
            | Some h ->
                let us x = Printf.sprintf "%.1f" (x *. 1e6) in
                Some
                  [ name; op;
                    string_of_int (Telemetry.Histo.count h);
                    us (Telemetry.Histo.p50 h);
                    us (Telemetry.Histo.p95 h);
                    us (Telemetry.Histo.p99 h);
                    us (Telemetry.Histo.max_value h) ])
          [ ("lookup", name ^ ".lookup"); ("batch", name ^ ".batch");
            (* Per-tier read latency: the sink is per structure, so the
               global metric names still split by index here. *)
            ("lookup (cache hit)", "read.lookup.hit");
            ("lookup (cache miss)", "read.lookup.miss") ])
      results
  in
  Table.print ~title:"Telemetry latency (per-op histograms)"
    ~headers:[ "index"; "op"; "n"; "p50 us"; "p95 us"; "p99 us"; "max us" ]
    latency_rows;
  (match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      List.iter
        (fun (name, _, sink) ->
          output_string oc
            (Telemetry.Json.to_string
               (Telemetry.Json.obj
                  [ ("structure", Telemetry.Json.str name);
                    ("records", Telemetry.Json.int records);
                    ("ops", Telemetry.Json.int ops);
                    ("telemetry", Telemetry.to_json sink) ]));
          output_char oc '\n')
        results;
      close_out oc;
      Printf.eprintf "telemetry written to %s\n" path);
  0

let stats_cmd =
  let run_sharded kind spec path =
    let entries = read_tsv path in
    let views = sharded_views kind spec entries in
    Printf.printf "index      : %s\n" views.(0).Generic.name;
    Printf.printf "partition  : %s\n" (Partition.to_string spec);
    Printf.printf "records    : %d\n" (List.length entries);
    Array.iteri
      (fun i v ->
        Printf.printf "shard %-4d : %6d records  root %s\n" i
          (v.Generic.cardinal ())
          (Hash.short v.Generic.root))
      views;
    Printf.printf "composite  : %s\n"
      (Hash.to_hex (Shard_views.composite spec views));
    0
  in
  let run ~pool kind path =
    let store = Store.create () in
    let inst = Generic.load_sorted (make ~pool kind store) (read_tsv path) in
    let st = Store.stats store in
    let pages = Generic.page_set inst in
    Printf.printf "index      : %s\n" inst.Generic.name;
    Printf.printf "domains    : %d\n" (Pool.domains pool);
    Printf.printf "records    : %d\n" (inst.Generic.cardinal ());
    Printf.printf "root       : %s\n" (Hash.to_hex inst.Generic.root);
    Printf.printf "nodes      : %d\n" (Hash.Set.cardinal pages);
    Printf.printf "bytes      : %s\n"
      (Siri_benchkit.Table.fmt_bytes (Store.bytes_of_set store pages));
    Printf.printf "store puts : %d (%d unique)\n" st.Store.puts st.Store.unique_nodes;
    (match kind with
    | Pos | Prolly | Mvbt ->
        let decode_bytes, root =
          match kind with
          | Mvbt ->
              let cfg = Siri_mvbt.Mvbt.config () in
              let t = Siri_mvbt.Mvbt.of_root store cfg inst.Generic.root in
              ((fun () -> Siri_mvbt.Mvbt.stats t), inst.Generic.root)
          | _ ->
              let cfg =
                if kind = Prolly then Siri_prolly.Prolly.default_config
                else Siri_pos.Pos_tree.config ()
              in
              let t = Siri_pos.Pos_tree.of_root store cfg inst.Generic.root in
              ((fun () -> Siri_pos.Pos_tree.stats t), inst.Generic.root)
        in
        ignore root;
        Format.printf "%a" Tree_stats.pp (decode_bytes ())
    | Mpt | Mbt -> ());
    0
  in
  let file_opt =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "TSV dataset to load.  When omitted, a telemetry-instrumented \
             YCSB sample workload is run over all four structures instead.")
  in
  let records =
    Arg.(
      value & opt int 2_000
      & info [ "records" ] ~docv:"N" ~doc:"Sample-workload dataset size.")
  in
  let ops =
    Arg.(
      value & opt int 1_000
      & info [ "ops" ] ~docv:"N" ~doc:"Sample-workload operation count.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "Write the per-structure telemetry as newline-delimited JSON to \
             $(docv) (sample-workload mode only).")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Domains for the parallel commit pipeline (default: the host's \
             recommended domain count, capped at 8; 1 = sequential).  The \
             root hashes are identical for any value.")
  in
  let cache =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache" ] ~docv:"BYTES"
          ~doc:
            "Decoded-node cache budget in bytes for the sample workload \
             (overrides $(b,SIRI_NODE_CACHE); 0 disables).  Default: the \
             environment variable, else disabled.")
  in
  (* A sharded durable directory: per-shard size/key-count balance — the
     figures that decide when an online reshard is worth it. *)
  let run_durable_dir kind backend branch dir =
    match open_sharded_dir kind backend dir with
    | Error e ->
        Format.eprintf "stats: %a@." Siri_wal.Wal.pp_error e;
        2
    | Ok t when not (List.mem branch (Sharded.branches t)) ->
        Printf.eprintf "stats: unknown branch %s\n" branch;
        Sharded.close t;
        2
    | Ok t ->
        let h = Sharded.head t ~branch in
        Printf.printf "partition  : %s\n" (Partition.to_string (Sharded.spec t));
        Printf.printf "generation : %d\n" (Sharded.generation t);
        Printf.printf "branch     : %s (seq %d)\n" branch h.Sharded.seq;
        let stats = Sharded.shard_stats t ~branch in
        let total = Array.fold_left (fun a s -> a + s.Sharded.keys) 0 stats in
        Array.iter
          (fun s ->
            Printf.printf
              "shard %-4d : %6d keys (%4.1f%%)  %6d nodes  %9s  root %s\n"
              s.Sharded.shard s.Sharded.keys
              (if total = 0 then 0.
               else 100. *. float_of_int s.Sharded.keys /. float_of_int total)
              s.Sharded.nodes
              (Table.fmt_bytes s.Sharded.bytes)
              (Hash.short s.Sharded.root))
          stats;
        Printf.printf "records    : %d\n" total;
        Printf.printf "composite  : %s\n" (Hash.to_hex h.Sharded.composite);
        Sharded.close t;
        0
  in
  let dispatch kind backend branch shards partition path records ops json
      domains cache =
    match (shards, path) with
    | _, Some path when is_sharded_dir path ->
        run_durable_dir kind backend branch path
    | Some n, Some path -> run_sharded kind (Partition.make partition ~shards:n) path
    | Some _, None ->
        prerr_endline "stats: --shards needs a FILE dataset";
        2
    | None, _ ->
        let pool =
          match domains with
          | Some d -> Pool.create ~domains:d ()
          | None -> Pool.create ()
        in
        Fun.protect
          ~finally:(fun () -> Pool.shutdown pool)
          (fun () ->
            match path with
            | Some path -> run ~pool kind path
            | None ->
                stats_workload ~pool ?cache_bytes:cache ~records ~ops ~json ())
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Print index statistics for a TSV file, per-shard size/key-count \
          balance for a sharded durable directory, or (without FILE) run a \
          telemetry-instrumented sample workload over all four structures \
          and print per-structure counters, node-cache hit ratios and \
          per-tier p50/p95/p99 latencies.")
    Term.(
      const dispatch $ index_arg $ durable_backend_arg $ branch_arg
      $ shards_arg $ partition_arg $ file_opt
      $ records $ ops $ json $ domains $ cache)

let get_cmd =
  let run kind path key =
    let _, inst = load kind path in
    match inst.Generic.lookup key with
    | Some v ->
        print_endline v;
        0
    | None ->
        prerr_endline "key not found";
        1
  in
  Cmd.v (Cmd.info "get" ~doc:"Look up one key.")
    Term.(const run $ index_arg $ file_arg 0 "FILE" $ key_arg 1)

let prove_cmd =
  let keys_arg =
    Arg.(non_empty & pos_right 0 string [] & info [] ~docv:"KEY")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the encoded multiproof (Frame-wrapped wire format) to $(docv).")
  in
  let write_out out encoded =
    match out with
    | None -> ()
    | Some file ->
        let oc = open_out_bin file in
        output_string oc encoded;
        close_out oc;
        Printf.eprintf "wrote %d bytes to %s\n" (String.length encoded) file
  in
  let run_sharded kind spec path keys out =
    let views = sharded_views kind spec (read_tsv path) in
    let sp = Shard_proof.prove ~views spec keys in
    List.iter
      (fun (k, claim) ->
        Printf.printf "%-24s : shard %d, %s\n" k
          (Partition.shard_of_key spec k)
          (match claim with Some v -> "present, value " ^ v | None -> "absent"))
      (Shard_proof.claims sp);
    let encoded = Shard_proof.encode sp in
    Printf.printf "proof      : %d shard part%s of %d, %d bytes encoded\n"
      (List.length sp.Shard_proof.parts)
      (if List.length sp.Shard_proof.parts = 1 then "" else "s")
      spec.Partition.shards (String.length encoded);
    let composite = Shard_views.composite spec views in
    Printf.printf "composite  : %s\n" (Hash.to_hex composite);
    let verifier = make kind (Store.create ()) in
    let ok = Shard_proof.verify ~verifier ~composite sp in
    Printf.printf "verified   : %b\n" ok;
    write_out out encoded;
    if ok then 0 else 1
  in
  let run kind shards partition path keys out =
    match shards with
    | Some n -> run_sharded kind (Partition.make partition ~shards:n) path keys out
    | None ->
    let _, inst = load kind path in
    let mp = Generic.prove_many inst keys in
    List.iter
      (fun (k, claim) ->
        Printf.printf "%-24s : %s\n" k
          (match claim with Some v -> "present, value " ^ v | None -> "absent"))
      mp.Multiproof.claims;
    let singles =
      List.map (fun k -> inst.Generic.prove k) (Multiproof.keys mp)
    in
    let single_bytes =
      List.fold_left (fun acc p -> acc + Proof.size_bytes p) 0 singles
    in
    let encoded = Multiproof.encode mp in
    Printf.printf "multiproof : %d claims, %d nodes, %d bytes encoded\n"
      (List.length mp.Multiproof.claims)
      (List.length mp.Multiproof.nodes)
      (String.length encoded);
    Printf.printf "vs singles : %d proofs, %d bytes (%.0f%% of singles)\n"
      (List.length singles) single_bytes
      (if single_bytes = 0 then 100.
       else 100. *. float_of_int (String.length encoded) /. float_of_int single_bytes);
    Printf.printf "root       : %s\n" (Hash.to_hex inst.Generic.root);
    let ok = Generic.verify_many inst ~root:inst.Generic.root mp in
    Printf.printf "verified   : %b\n" ok;
    write_out out encoded;
    if ok then 0 else 1
  in
  Cmd.v
    (Cmd.info "prove"
       ~doc:
         "Produce and verify a batched Merkle multiproof (membership and \
          absence) for one or more KEYs, reporting its size against the \
          equivalent single proofs.  With $(b,--shards) the dataset is \
          partitioned and a two-layer sharded proof (shard multiproofs + \
          top shard-root vector) is produced and verified against the \
          composite root.")
    Term.(
      const run $ index_arg $ shards_arg $ partition_arg $ file_arg 0 "FILE"
      $ keys_arg $ out_arg)

let verify_proof_cmd =
  let proof_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"PROOF")
  in
  let root_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "root" ] ~docv:"HEX"
          ~doc:"Trusted 64-char hex root digest to verify against.")
  in
  let data_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "data" ] ~docv:"FILE"
          ~doc:
            "TSV dataset to rebuild the index from; its root becomes the \
             trusted digest.  Exactly one of $(b,--root) and $(b,--data) is \
             required.")
  in
  let run kind proof_file root_hex data =
    let read_file path =
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let blob = read_file proof_file in
    (* [rebuild] turns --data into the trusted digest for whichever proof
       shape the blob turned out to be. *)
    let trusted rebuild =
      match (root_hex, data) with
      | Some hex, None -> (
          match Hash.of_hex hex with
          | root -> Some root
          | exception Invalid_argument _ ->
              prerr_endline "malformed --root (need 64 hex chars)";
              None)
      | None, Some path -> Some (rebuild path)
      | _ ->
          prerr_endline "exactly one of --root and --data is required";
          None
    in
    if Shard_proof.is_encoded blob then
      match Shard_proof.decode blob with
      | Error (`Malformed why) ->
          Printf.eprintf "malformed proof: %s\n" why;
          2
      | Error (`Tampered why) ->
          Printf.eprintf "tampered proof: %s\n" why;
          2
      | Ok sp -> (
          (* --data is partitioned with the proof's own spec: the spec is
             bound into the composite digest, so a proof lying about it
             cannot verify anyway. *)
          let rebuild path =
            Shard_views.composite sp.Shard_proof.spec
              (sharded_views kind sp.Shard_proof.spec (read_tsv path))
          in
          match trusted rebuild with
          | None -> 2
          | Some composite ->
              let verifier = make kind (Store.create ()) in
              let ok = Shard_proof.verify ~verifier ~composite sp in
              let claims = Shard_proof.claims sp in
              Printf.printf "sharded  : %s, %d of %d shards touched\n"
                (Partition.to_string sp.Shard_proof.spec)
                (List.length sp.Shard_proof.parts)
                sp.Shard_proof.spec.Partition.shards;
              Printf.printf "claims   : %d (%d absent)\n" (List.length claims)
                (List.length (List.filter (fun (_, v) -> v = None) claims));
              Printf.printf "root     : %s\n" (Hash.to_hex composite);
              Printf.printf "verified : %b\n" ok;
              if ok then 0 else 1)
    else
      let rebuild path =
        let _, inst = load kind path in
        inst.Generic.root
      in
      match trusted rebuild with
      | None -> 2
      | Some root -> (
          match Multiproof.decode blob with
          | Error (`Malformed why) ->
              Printf.eprintf "malformed proof: %s\n" why;
              2
          | Error (`Tampered why) ->
              Printf.eprintf "tampered proof: %s\n" why;
              2
          | Ok mp ->
              (* An empty instance carries the per-kind verification logic
                 (and, for MBT, the tree geometry); verification itself never
                 touches the store. *)
              let inst = make kind (Store.create ()) in
              let ok = inst.Generic.verify_many ~root mp in
              Printf.printf "claims   : %d (%d absent)\n"
                (List.length mp.Multiproof.claims)
                (List.length
                   (List.filter (fun (_, v) -> v = None) mp.Multiproof.claims));
              Printf.printf "nodes    : %d (%d bytes)\n"
                (List.length mp.Multiproof.nodes)
                (Multiproof.size_bytes mp);
              Printf.printf "root     : %s\n" (Hash.to_hex root);
              Printf.printf "verified : %b\n" ok;
              if ok then 0 else 1)
  in
  Cmd.v
    (Cmd.info "verify-proof"
       ~doc:
         "Decode an encoded proof — flat multiproof or sharded two-layer \
          proof, detected from the blob — and verify it against a trusted \
          root ($(b,--root) or the root of a rebuilt $(b,--data) index).  \
          Exits 0 if verified, 1 if refused, 2 if the file is malformed or \
          tampered.")
    Term.(const run $ index_arg $ proof_arg $ root_arg $ data_arg)

let diff_cmd =
  let run kind path1 path2 =
    let store = Store.create () in
    let inst = make kind store in
    let v1 = Generic.of_entries inst (read_tsv path1) in
    let v2 = Generic.of_entries inst (read_tsv path2) in
    let diffs = v1.Generic.diff v2.Generic.root in
    List.iter
      (fun { Kv.key; left; right } ->
        match (left, right) with
        | Some _, None -> Printf.printf "- %s\n" key
        | None, Some _ -> Printf.printf "+ %s\n" key
        | _ -> Printf.printf "~ %s\n" key)
      diffs;
    Printf.eprintf "%d records differ\n" (List.length diffs);
    0
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Diff two TSV datasets through the index ($(b,-) left-only, $(b,+) right-only, $(b,~) changed).")
    Term.(const run $ index_arg $ file_arg 0 "FILE1" $ file_arg 1 "FILE2")

let policy_arg =
  Arg.(
    value
    & opt (enum [ ("left", Kv.Prefer_left); ("right", Kv.Prefer_right); ("fail", Kv.Fail_on_conflict) ])
        Kv.Fail_on_conflict
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:"Conflict policy: $(b,left), $(b,right) or $(b,fail).")

let merge_cmd =
  let run kind policy path1 path2 =
    let store = Store.create () in
    let inst = make kind store in
    let v1 = Generic.of_entries inst (read_tsv path1) in
    let v2 = Generic.of_entries inst (read_tsv path2) in
    match v1.Generic.merge policy v2.Generic.root with
    | Ok merged ->
        List.iter
          (fun (k, v) -> Printf.printf "%s\t%s\n" k v)
          (merged.Generic.to_list ());
        Printf.eprintf "merged %d records\n" (merged.Generic.cardinal ());
        0
    | Error conflicts ->
        List.iter
          (fun c ->
            Printf.eprintf "conflict: %s (%s vs %s)\n" c.Kv.key c.Kv.left_value
              c.Kv.right_value)
          conflicts;
        1
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:"Merge two TSV datasets (union of records); prints the result as TSV.")
    Term.(const run $ index_arg $ policy_arg $ file_arg 0 "FILE1" $ file_arg 1 "FILE2")

let properties_cmd =
  let run kind path =
    let entries = read_tsv path in
    let store = Store.create () in
    let build e = Generic.of_entries (make kind store) e in
    let si =
      Properties.structurally_invariant ~build ~entries ~permutations:3 ~seed:7
    in
    let ri =
      match entries with
      | [] -> true
      | (k, v) :: _ ->
          Properties.recursively_identical ~build
            ~entries:(List.tl entries)
            ~extra:(k, v)
    in
    let ur =
      Properties.universally_reusable ~build ~entries
        ~more:(List.init 20 (fun i -> (Printf.sprintf "zz-extra-%d" i, string_of_int i)))
    in
    Printf.printf "structurally invariant : %b\n" si;
    Printf.printf "recursively identical  : %b\n" ri;
    Printf.printf "universally reusable   : %b\n" ur;
    if si && ri && ur then begin
      print_endline "=> the index behaves as a SIRI instance on this data";
      0
    end
    else 1
  in
  Cmd.v
    (Cmd.info "properties"
       ~doc:"Check the three SIRI properties (Definition 3.1) on this data.")
    Term.(const run $ index_arg $ file_arg 0 "FILE")

let range_cmd =
  let lo = Arg.(value & opt (some string) None & info [ "lo" ] ~docv:"LO" ~doc:"Lower bound (inclusive).") in
  let hi = Arg.(value & opt (some string) None & info [ "hi" ] ~docv:"HI" ~doc:"Upper bound (inclusive).") in
  let run kind path lo hi =
    let _, inst = load kind path in
    let records = inst.Generic.range ~lo ~hi in
    List.iter (fun (k, v) -> Printf.printf "%s\t%s\n" k v) records;
    Printf.eprintf "%d records in range\n" (List.length records);
    0
  in
  Cmd.v
    (Cmd.info "range"
       ~doc:"List records with LO <= key <= HI (either bound may be omitted).")
    Term.(const run $ index_arg $ file_arg 0 "FILE" $ lo $ hi)

let scan_cmd =
  let lo =
    Arg.(
      value
      & opt (some string) None
      & info [ "lo" ] ~docv:"LO" ~doc:"Lower bound (inclusive).")
  in
  let hi =
    Arg.(
      value
      & opt (some string) None
      & info [ "hi" ] ~docv:"HI" ~doc:"Upper bound (exclusive).")
  in
  let limit =
    Arg.(
      value & opt int 0
      & info [ "limit" ] ~docv:"N"
          ~doc:"Stop after $(docv) records (0 = unbounded).")
  in
  let count_only =
    Arg.(
      value & flag
      & info [ "count" ]
          ~doc:"Print only the number of records in range (stops early \
                under $(b,--limit)).")
  in
  let consume count_only limit seq =
    if count_only then begin
      let n = ref 0 in
      (try
         Seq.iter
           (fun _ ->
             incr n;
             if limit > 0 && !n >= limit then raise Exit)
           seq
       with Exit -> ());
      Printf.printf "%d\n" !n
    end
    else begin
      let n = ref 0 in
      (try
         Seq.iter
           (fun (k, v) ->
             incr n;
             Printf.printf "%s\t%s\n" k v;
             if limit > 0 && !n >= limit then raise Exit)
           seq
       with Exit -> ());
      Printf.eprintf "%d record%s in range\n" !n (if !n = 1 then "" else "s")
    end;
    0
  in
  let run kind backend branch lo hi limit count_only target =
    let scan_target () =
      if is_sharded_dir target then
        (* sharded durable directory: routed scan across the shards *)
        match open_sharded_dir kind backend target with
        | Error e ->
            Format.eprintf "scan: %a@." Wal.pp_error e;
            2
        | Ok t ->
            Fun.protect
              ~finally:(fun () -> Sharded.close t)
              (fun () ->
                if not (List.mem branch (Sharded.branches t)) then begin
                  Printf.eprintf "scan: unknown branch %s\n" branch;
                  2
                end
                else consume count_only limit (Sharded.scan ?lo ?hi t ~branch))
      else if Sys.is_directory target then
        (* flat durable directory: scan the branch-head index *)
        match
          Durable.open_ ~backend ~dir:target
            ~empty_index:(make kind (Store.create ()))
            ()
        with
        | Error e ->
            Format.eprintf "scan: %a@." Wal.pp_error e;
            2
        | Ok d ->
            Fun.protect
              ~finally:(fun () -> Durable.close d)
              (fun () ->
                consume count_only limit
                  (Engine.scan ?lo ?hi (Durable.engine d) ~branch))
      else
        (* TSV dataset: build the index in memory, then stream *)
        let _, inst = load kind target in
        consume count_only limit (Generic.scan ?lo ?hi inst)
    in
    match scan_target () with
    | rc -> rc
    | exception Generic.Unsupported name ->
        Printf.eprintf "scan: index kind %S does not support ordered scans\n"
          name;
        2
  in
  Cmd.v
    (Cmd.info "scan"
       ~doc:
         "Stream records with LO <= key < HI in key order.  TARGET is a TSV \
          dataset, a flat durable directory, or a sharded durable directory \
          (detected by its SHARDS manifest) — sharded range-partitioned \
          scans touch only the shards the bounds route to.")
    Term.(
      const run $ index_arg $ durable_backend_arg $ branch_arg $ lo $ hi
      $ limit $ count_only $ file_arg 0 "TARGET")

let reshard_cmd =
  let shards_req =
    Arg.(
      required
      & opt (some int) None
      & info [ "shards" ] ~docv:"M" ~doc:"New shard count.")
  in
  let run kind backend m dir =
    match open_sharded_dir kind backend dir with
    | Error e ->
        Format.eprintf "reshard: %a@." Wal.pp_error e;
        2
    | Ok t -> (
        Printf.printf "from       : %s (generation %d)\n"
          (Partition.to_string (Sharded.spec t))
          (Sharded.generation t);
        match Sharded.reshard t ~shards:m with
        | exception Invalid_argument msg ->
            Printf.eprintf "reshard: %s\n" msg;
            Sharded.close t;
            2
        | Error e ->
            Format.eprintf "reshard: %a@." Wal.pp_error e;
            Sharded.close t;
            2
        | Ok t ->
            Printf.printf "to         : %s (generation %d)\n"
              (Partition.to_string (Sharded.spec t))
              (Sharded.generation t);
            let stats = Sharded.shard_stats t ~branch:"master" in
            let total =
              Array.fold_left (fun a s -> a + s.Sharded.keys) 0 stats
            in
            Array.iter
              (fun s ->
                Printf.printf "shard %-4d : %6d keys (%4.1f%%)  root %s\n"
                  s.Sharded.shard s.Sharded.keys
                  (if total = 0 then 0.
                   else
                     100. *. float_of_int s.Sharded.keys /. float_of_int total)
                  (Hash.short s.Sharded.root))
              stats;
            List.iter
              (fun b ->
                let h = Sharded.head t ~branch:b in
                Printf.printf "branch     : %-12s composite %s (seq %d)\n" b
                  (Hash.short h.Sharded.composite)
                  h.Sharded.seq)
              (Sharded.branches t);
            Sharded.close t;
            0)
  in
  Cmd.v
    (Cmd.info "reshard"
       ~doc:
         "Online reshard a sharded durable directory to $(b,--shards) M: \
          stream every live entry out of the old shards in key order, \
          bulk-load M fresh shards in a staging generation, and atomically \
          switch the SHARDS manifest — a crash at any point leaves the old \
          or the new layout, never a mix.")
    Term.(
      const run $ index_arg $ durable_backend_arg $ shards_req $ dir_arg)

let snapshot_cmd =
  let out_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"SNAPSHOT")
  in
  let run kind path out =
    let store, inst = load kind path in
    Store.save store out;
    Printf.printf "root  : %s\n" (Hash.to_hex inst.Generic.root);
    Printf.printf "nodes : %d\n" (Store.stats store).Store.unique_nodes;
    Printf.printf "saved : %s\n" out;
    0
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:"Build an index from a TSV file and save the node store to SNAPSHOT.")
    Term.(const run $ index_arg $ file_arg 0 "FILE" $ out_arg)

module Pack = Siri_pack.Pack

let scrub_backend_arg =
  Arg.(
    value
    & opt (enum [ ("store", `Store); ("pack", `Pack) ]) `Store
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "What TARGET is: $(b,store) (default), a saved node-store \
           snapshot file, or $(b,pack), a log-structured pack directory.")

let scrub_pack dir =
  match Pack.open_ dir with
  | Error (`Tampered msg) ->
      Printf.eprintf "scrub: %s\n" msg;
      2
  | Ok (p, r) ->
      let corrupt = Pack.scrub p in
      Printf.printf "segments   : %d\n" (List.length (Pack.segment_ids p));
      Printf.printf "records    : %d\n" (Pack.count p);
      Printf.printf "bytes      : %s\n" (Table.fmt_bytes (Pack.stored_bytes p));
      Printf.printf "clamped    : %d byte%s of torn tail\n" r.Pack.clamped_bytes
        (if r.Pack.clamped_bytes = 1 then "" else "s");
      if r.Pack.index_rebuilt then print_endline "index      : rebuilt from segments";
      List.iter
        (fun h -> Printf.printf "corrupt    : %s\n" (Hash.to_hex h))
        corrupt;
      Pack.close p;
      if corrupt <> [] then begin
        print_endline "=> unrecoverable corruption found";
        2
      end
      else if r.Pack.clamped_bytes > 0 then begin
        print_endline "=> recovered (torn segment tail clamped)";
        1
      end
      else begin
        print_endline "=> pack is intact";
        0
      end

let scrub_cmd =
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
        ~doc:
          "Verify digests while loading and reject the file outright on any \
           damage, instead of best-effort loading followed by a scrub report \
           ($(b,--backend store) only).")
  in
  let run strict backend path =
    match backend with
    | `Pack -> scrub_pack path
    | `Store -> (
        match Store.load_checked ~verify:strict path with
        | Error (`Malformed msg) ->
            Printf.eprintf "scrub: %s\n" msg;
            2
        | Ok store ->
            let report = Store.scrub store in
            Format.printf "%a" Store.pp_scrub_report report;
            if Store.scrub_clean report then begin
              print_endline "=> store is intact";
              0
            end
            else begin
              print_endline "=> integrity violations found";
              1
            end)
  in
  let target_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET")
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:
         "Audit stored nodes: re-hash every payload against its digest.  \
          $(b,--backend store) audits a snapshot file (exit 1 on integrity \
          violations, 2 if unreadable).  $(b,--backend pack) audits a pack \
          directory (exit 1 when only a torn segment tail was clamped, 2 on \
          unrecoverable damage: corrupt manifest, missing segment or \
          mid-segment checksum mismatch).")
    Term.(const run $ strict $ scrub_backend_arg $ target_arg)

(* --- pack: build / migrate / compact ------------------------------------------ *)

let pack_summary p =
  Printf.printf "records  : %d\n" (Pack.count p);
  Printf.printf "segments : %s\n"
    (String.concat ", "
       (List.map Siri_pack.Segment.filename (Pack.segment_ids p)));
  Printf.printf "bytes    : %s\n" (Table.fmt_bytes (Pack.stored_bytes p))

let pack_cmd =
  let from_snapshot =
    Arg.(
      value & flag
      & info [ "from-snapshot" ]
          ~doc:
            "Treat SRC as a saved node-store snapshot instead of a TSV \
             dataset and migrate every node into the pack — the snapshot \
             format stays readable precisely so existing stores can move \
             to the pack backend.")
  in
  let out_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"DIR")
  in
  let run_sharded kind spec src dir =
    match
      Sharded.open_ ~backend:`Pack ~spec ~dir
        ~empty_index:(fun () -> make kind (Store.create ()))
        ()
    with
    | Error e ->
        Format.eprintf "pack: %a@." Siri_wal.Wal.pp_error e;
        2
    | Ok t ->
        let ops = List.map (fun (k, v) -> Kv.Put (k, v)) (read_tsv src) in
        let h = Sharded.commit t ~branch:"master" ~message:"pack" ops in
        (* Checkpoint so the records land in the per-shard pack segments
           and the journals truncate — the shape a served directory has. *)
        Sharded.checkpoint t;
        Printf.printf "partition : %s\n" (Partition.to_string spec);
        Array.iteri
          (fun i r -> Printf.printf "shard %-3d : root %s\n" i (Hash.short r))
          h.Sharded.roots;
        Printf.printf "composite : %s (seq %d)\n"
          (Hash.to_hex h.Sharded.composite)
          h.Sharded.seq;
        Sharded.close t;
        0
  in
  let run kind from_snapshot shards partition src dir =
    match shards with
    | Some n ->
        if from_snapshot then begin
          prerr_endline "pack: --from-snapshot and --shards are exclusive";
          2
        end
        else run_sharded kind (Partition.make partition ~shards:n) src dir
    | None -> (
    match Pack.open_ dir with
    | Error (`Tampered msg) ->
        Printf.eprintf "pack: %s\n" msg;
        2
    | Ok (p, _) ->
        if from_snapshot then begin
          let loaded = Store.load src in
          let batch = ref [] in
          Store.iter_nodes loaded (fun bytes children ->
              batch := (Hash.of_string bytes, bytes, children) :: !batch);
          Pack.append p (List.rev !batch)
        end
        else begin
          (* Write-through build: every fresh node the index creates goes
             straight to the pack. *)
          let store = Store.create () in
          Pack.attach p store;
          let inst = Generic.of_entries (make kind store) (read_tsv src) in
          Printf.printf "root     : %s\n" (Hash.to_hex inst.Generic.root)
        end;
        pack_summary p;
        Pack.close p;
        0)
  in
  Cmd.v
    (Cmd.info "pack"
       ~doc:
         "Build a log-structured pack directory from a TSV dataset (or, \
          with $(b,--from-snapshot), migrate a saved node store into one).  \
          With $(b,--shards) the dataset is committed into a sharded \
          durable directory whose shards each use a pack backend.")
    Term.(
      const run $ index_arg $ from_snapshot $ shards_arg $ partition_arg
      $ file_arg 0 "SRC" $ out_arg)

let compact_cmd =
  let roots =
    Arg.(
      value & opt_all string []
      & info [ "root" ] ~docv:"HASH"
          ~doc:
            "Hex hash of a live root; repeatable.  Everything reachable \
             from the given roots survives, the rest is dropped.  With no \
             roots the pack is left untouched.")
  in
  let run roots dir =
    match Pack.open_ dir with
    | Error (`Tampered msg) ->
        Printf.eprintf "compact: %s\n" msg;
        2
    | Ok (p, _) -> (
        match List.map Hash.of_hex roots with
        | exception Invalid_argument _ ->
            Printf.eprintf "compact: malformed --root hash\n";
            Pack.close p;
            2
        | [] ->
            print_endline "no roots given; nothing dropped";
            pack_summary p;
            Pack.close p;
            0
        | roots -> (
            match List.find_opt (fun h -> not (Pack.mem p h)) roots with
            | Some h ->
                Printf.eprintf "compact: root %s not in pack\n" (Hash.to_hex h);
                Pack.close p;
                2
            | None ->
                (* Reachability closure through the pack's child lists. *)
                let live = ref Hash.Set.empty in
                let rec walk h =
                  if (not (Hash.Set.mem h !live)) && Pack.mem p h then begin
                    live := Hash.Set.add h !live;
                    match Pack.get p h with
                    | Some (_, children) -> List.iter walk children
                    | None -> ()
                  end
                in
                List.iter walk roots;
                let dropped = Pack.compact p ~live:!live in
                Printf.printf "dropped  : %d record%s\n" (List.length dropped)
                  (if List.length dropped = 1 then "" else "s");
                pack_summary p;
                Pack.close p;
                0))
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:
         "Compact a pack directory: rewrite the records reachable from the \
          given $(b,--root) hashes into fresh segments, atomically flip the \
          manifest, and delete the old segments.")
    Term.(
      const run $ roots
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"))

(* --- durability: recover / checkpoint ---------------------------------------- *)

(* Sharded variant of the recover/checkpoint report: per-shard replay
   stats plus the top-journal clamp and the rolled-back (published-but-
   not-sequenced) record count, then the composite head per branch. *)
let sharded_durable_run ~checkpoint kind backend spec dir =
  match
    Sharded.open_ ~backend ?spec ~dir
      ~empty_index:(fun () -> make kind (Store.create ()))
      ()
  with
  | Error e ->
      Format.eprintf "recover: %a@." Wal.pp_error e;
      2
  | Ok t ->
      let r = Sharded.recovery t in
      Printf.printf "partition  : %s\n" (Partition.to_string (Sharded.spec t));
      Printf.printf "last seq   : %d\n" r.Sharded.last_seq;
      Printf.printf "top clamp  : %d byte%s of torn tail\n"
        r.Sharded.top_clamped_bytes
        (if r.Sharded.top_clamped_bytes = 1 then "" else "s");
      if r.Sharded.capped > 0 then
        Printf.printf "rolled back: %d unpublished shard record%s\n"
          r.Sharded.capped
          (if r.Sharded.capped = 1 then "" else "s");
      Array.iteri
        (fun i sr ->
          Printf.printf
            "shard %-4d : generation %d, replayed %d, clamped %d byte%s\n" i
            sr.Durable.generation sr.Durable.replayed sr.Durable.clamped_bytes
            (if sr.Durable.clamped_bytes = 1 then "" else "s"))
        r.Sharded.shards;
      List.iter
        (fun b ->
          let h = Sharded.head t ~branch:b in
          Printf.printf "branch     : %-12s composite %s (seq %d)\n" b
            (Hash.short h.Sharded.composite) h.Sharded.seq)
        (Sharded.branches t);
      if checkpoint then begin
        Sharded.checkpoint t;
        print_endline "checkpoint : all shards checkpointed, top journal compacted"
      end;
      Sharded.close t;
      if
        r.Sharded.top_clamped_bytes > 0
        || r.Sharded.capped > 0
        || Array.exists (fun sr -> sr.Durable.clamped_bytes > 0) r.Sharded.shards
      then begin
        print_endline "=> recovered (unpublished tail rolled back)";
        1
      end
      else begin
        print_endline "=> clean";
        0
      end

(* Shared by recover and checkpoint: open (recovering), print the report,
   optionally checkpoint, and exit with the established convention —
   0 clean, 1 recovered-with-clamp, 2 unrecoverable. *)
let durable_run ~checkpoint kind backend dir =
  match
    Durable.open_ ~backend ~dir ~empty_index:(make kind (Store.create ())) ()
  with
  | Error e ->
      Format.eprintf "recover: %a@." Wal.pp_error e;
      2
  | Ok t ->
      let r = Durable.recovery t in
      Printf.printf "snapshot   : generation %d\n" r.Durable.generation;
      Printf.printf "replayed   : %d record%s\n" r.Durable.replayed
        (if r.Durable.replayed = 1 then "" else "s");
      if r.Durable.skipped > 0 then
        Printf.printf "skipped    : %d (already in the snapshot)\n"
          r.Durable.skipped;
      Printf.printf "clamped    : %d byte%s of torn tail\n"
        r.Durable.clamped_bytes
        (if r.Durable.clamped_bytes = 1 then "" else "s");
      let engine = Durable.engine t in
      List.iter
        (fun b ->
          let h = Engine.head engine b in
          Printf.printf "branch     : %-12s %s (version %d)\n" b
            (Hash.short h.Engine.id) h.Engine.version)
        (Engine.branches engine);
      if checkpoint then begin
        Durable.checkpoint t;
        Printf.printf "checkpoint : journal truncated to %d bytes\n"
          (Durable.journal_bytes t)
      end;
      Durable.close t;
      if r.Durable.clamped_bytes > 0 then begin
        print_endline "=> recovered (torn journal tail clamped)";
        1
      end
      else begin
        print_endline "=> clean";
        0
      end

(* A sharded directory is self-describing (its SHARDS manifest), so
   recover/checkpoint auto-detect one; --shards is only needed to create
   a fresh sharded directory (or to assert the expected count — a
   mismatch with the manifest is refused). *)
let durable_dispatch ~checkpoint kind backend shards partition dir =
  match shards with
  | Some n ->
      sharded_durable_run ~checkpoint kind backend
        (Some (Partition.make partition ~shards:n))
        dir
  | None ->
      if Sys.file_exists (Filename.concat dir "SHARDS") then
        sharded_durable_run ~checkpoint kind backend None dir
      else durable_run ~checkpoint kind backend dir

let recover_cmd =
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Recover a durable engine directory: load the manifest snapshot, \
          replay the commit journal, clamp any torn tail.  Sharded \
          directories (or $(b,--shards)) replay every shard journal capped \
          at the last published composite and verify the recomputed \
          composite root.  Exits 0 when the journal was clean, 1 when a \
          torn or unpublished tail was rolled back, 2 when the directory \
          is unrecoverable (corrupt journal, snapshot or composite \
          mismatch).")
    Term.(
      const (durable_dispatch ~checkpoint:false)
      $ index_arg $ durable_backend_arg $ shards_arg $ partition_arg $ dir_arg)

let checkpoint_cmd =
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:
         "Recover a durable engine directory, then checkpoint it: write the \
          next-generation snapshot, atomically publish the manifest and \
          truncate the journal (all shards plus the top journal for a \
          sharded directory).  Same exit codes as $(b,recover).")
    Term.(
      const (durable_dispatch ~checkpoint:true)
      $ index_arg $ durable_backend_arg $ shards_arg $ partition_arg $ dir_arg)

(* --- connect: client mode against a running siri_serve ----------------------- *)

module Server = Siri_server.Server
module Client = Siri_server.Client

let connect_cmd =
  let unix_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "unix" ] ~docv:"PATH" ~doc:"Server Unix-domain socket.")
  in
  let tcp_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT" ~doc:"Server TCP loopback port.")
  in
  let branch =
    Arg.(
      value & opt string "master"
      & info [ "branch" ] ~docv:"BRANCH" ~doc:"Branch to operate on.")
  in
  let deadline_ms =
    Arg.(
      value & opt int 0
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Per-request deadline; the server refuses late work with a \
                timeout instead of serving it stale.")
  in
  let get_key =
    Arg.(value & opt (some string) None & info [ "get" ] ~docv:"KEY")
  in
  let prove_key =
    Arg.(
      value
      & opt (some string) None
      & info [ "prove" ] ~docv:"KEY"
          ~doc:"Fetch a multiproof for KEY and verify it client-side \
                against the server's root.")
  in
  let puts =
    Arg.(
      value & opt_all string []
      & info [ "put" ] ~docv:"KEY=VALUE"
          ~doc:"Commit KEY=VALUE (repeatable; one idempotent group-commit \
                request).")
  in
  let do_head = Arg.(value & flag & info [ "head" ] ~doc:"Print the branch head.") in
  let do_scan =
    Arg.(
      value & flag
      & info [ "scan" ]
          ~doc:"Stream the branch's records in key order (bounded by \
                $(b,--lo)/$(b,--hi), capped by $(b,--limit)), printed as \
                TSV.")
  in
  let scan_lo =
    Arg.(
      value
      & opt (some string) None
      & info [ "lo" ] ~docv:"LO" ~doc:"Scan lower bound (inclusive).")
  in
  let scan_hi =
    Arg.(
      value
      & opt (some string) None
      & info [ "hi" ] ~docv:"HI" ~doc:"Scan upper bound (exclusive).")
  in
  let scan_limit =
    Arg.(
      value & opt int 0
      & info [ "limit" ] ~docv:"N"
          ~doc:"Cap the scan at $(docv) records server-side (0 = unbounded).")
  in
  let do_stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print the server's telemetry sink as JSON — the \
                $(b,server.req.*), $(b,server.commit.*) counters and \
                latency histograms land here.")
  in
  let run index unix_path tcp_port branch deadline_ms get_key prove_key puts
      do_head do_stats do_scan scan_lo scan_hi scan_limit =
    let addr =
      match (unix_path, tcp_port) with
      | Some p, _ -> Some (`Unix p)
      | None, Some p -> Some (`Tcp p)
      | None, None -> None
    in
    match addr with
    | None ->
        prerr_endline "connect: need --unix PATH or --tcp PORT";
        2
    | Some addr -> (
        match Client.connect ~addr () with
        | Error e ->
            Printf.eprintf "connect: %s\n" (Client.error_to_string e);
            1
        | Ok c ->
            let deadline_ms = if deadline_ms <= 0 then None else Some deadline_ms in
            let fail what e =
              Printf.eprintf "%s: %s\n" what (Client.error_to_string e);
              1
            in
            let rc =
              if do_stats then
                match Client.stats ?deadline_ms c with
                | Ok json ->
                    print_endline json;
                    0
                | Error e -> fail "stats" e
              else if do_head then
                match Client.head ?deadline_ms c ~branch with
                | Ok (id, root, version) ->
                    Printf.printf "head    : %s (version %d)\nroot    : %s\n"
                      (Hash.short id) version (Hash.short root);
                    0
                | Error e -> fail "head" e
              else if do_scan then begin
                match
                  Client.scan ?deadline_ms ?lo:scan_lo ?hi:scan_hi
                    ~limit:scan_limit c ~branch
                with
                | Ok entries ->
                    List.iter
                      (fun (k, v) -> Printf.printf "%s\t%s\n" k v)
                      entries;
                    Printf.eprintf "%d record%s in range\n"
                      (List.length entries)
                      (if List.length entries = 1 then "" else "s");
                    0
                | Error e -> fail "scan" e
              end
              else if puts <> [] then begin
                let ops =
                  List.filter_map
                    (fun kv ->
                      match String.index_opt kv '=' with
                      | None ->
                          Printf.eprintf "connect: skipping %S (want KEY=VALUE)\n" kv;
                          None
                      | Some i ->
                          Some
                            (Kv.Put
                               ( String.sub kv 0 i,
                                 String.sub kv (i + 1)
                                   (String.length kv - i - 1) )))
                    puts
                in
                match
                  Client.commit ?deadline_ms c ~branch ~message:"cli" ops
                with
                | Ok (id, version, group_size) ->
                    Printf.printf "commit  : %s (version %d, group of %d)\n"
                      (Hash.short id) version group_size;
                    0
                | Error e -> fail "commit" e
              end
              else
                match get_key with
                | Some key -> (
                    match Client.get ?deadline_ms c ~branch key with
                    | Ok (Some v) ->
                        print_endline v;
                        0
                    | Ok None ->
                        Printf.eprintf "%s: not found\n" key;
                        1
                    | Error e -> fail "get" e)
                | None -> (
                    match prove_key with
                    | Some key -> (
                        match Client.prove_many ?deadline_ms c ~branch [ key ] with
                        | Ok (root, proof_bytes) -> (
                            (* A sharded server answers with a two-layer
                               proof and the composite as [root]; the
                               leading payload byte says which arrived. *)
                            let print_claims claims =
                              List.iter
                                (fun (k, v) ->
                                  Printf.printf "%s\t%s\tverified\n" k
                                    (match v with
                                    | Some v -> v
                                    | None -> "(absent)"))
                                claims
                            in
                            let refused () =
                              Printf.eprintf "proof REFUSED against root %s\n"
                                (Hash.short root);
                              1
                            in
                            let verifier = make index (Store.create ()) in
                            if Shard_proof.is_encoded proof_bytes then
                              match Shard_proof.decode proof_bytes with
                              | Error (`Malformed d | `Tampered d) ->
                                  Printf.eprintf "proof undecodable: %s\n" d;
                                  1
                              | Ok sp ->
                                  if
                                    Shard_proof.verify ~verifier
                                      ~composite:root sp
                                  then begin
                                    print_claims (Shard_proof.claims sp);
                                    0
                                  end
                                  else refused ()
                            else
                              match Siri_core.Multiproof.decode proof_bytes with
                              | Error (`Malformed d | `Tampered d) ->
                                  Printf.eprintf "proof undecodable: %s\n" d;
                                  1
                              | Ok proof ->
                                  if Generic.verify_many verifier ~root proof
                                  then begin
                                    print_claims
                                      proof.Siri_core.Multiproof.claims;
                                    0
                                  end
                                  else refused ())
                        | Error e -> fail "prove" e)
                    | None -> (
                        match Client.ping ?deadline_ms c with
                        | Ok () ->
                            print_endline "pong";
                            0
                        | Error e -> fail "ping" e))
            in
            Client.close c;
            rc)
  in
  Cmd.v
    (Cmd.info "connect"
       ~doc:
         "Talk to a running $(b,siri_serve): ping (default), $(b,--get), \
          $(b,--prove) (verified client-side), $(b,--put KEY=VALUE) \
          (idempotent commit), $(b,--scan) (streamed ordered read), \
          $(b,--head) or $(b,--stats).")
    Term.(
      const run $ index_arg $ unix_path $ tcp_port $ branch $ deadline_ms
      $ get_key $ prove_key $ puts $ do_head $ do_stats $ do_scan $ scan_lo
      $ scan_hi $ scan_limit)

let gen_cmd =
  let count =
    Arg.(value & opt int 1000 & info [ "count"; "n" ] ~docv:"N" ~doc:"Records to generate.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED") in
  let run count seed =
    let y = Siri_workload.Ycsb.create ~seed ~n:count () in
    List.iter
      (fun (k, v) -> Printf.printf "%s\t%s\n" k v)
      (Siri_workload.Ycsb.dataset y);
    0
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a YCSB-like dataset as TSV on stdout.")
    Term.(const run $ count $ seed)

let () =
  let doc = "inspect and compare indexes for immutable data (MPT, MBT, POS-Tree)" in
  let info = Cmd.info "siri_cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval' (Cmd.group info
       [ stats_cmd; get_cmd; prove_cmd; verify_proof_cmd; range_cmd; scan_cmd;
         reshard_cmd; diff_cmd; merge_cmd;
         properties_cmd; snapshot_cmd; scrub_cmd; pack_cmd; compact_cmd;
         recover_cmd; checkpoint_cmd; connect_cmd; gen_cmd ]))
