(* siri_serve — serve a durable SIRI engine to multiple clients.

     siri_serve DIR --unix /tmp/siri.sock
     siri_serve DIR --backend pack --tcp 0      # port printed on READY
     siri_serve DIR --unix s.sock --tcp 7421    # both listeners

   Opens (recovering) the durable directory, binds the listeners, prints
   one "READY <addr>" line per listener on stdout (the crash harness and
   scripts wait for these), then serves until SIGTERM/SIGINT, which shuts
   down gracefully: queued commits drain, sessions close, journal fsyncs.
   SIGKILL at any point is the crash the recovery path is built for.

   Exit codes follow the durability convention: 0 clean service, 1 the
   journal had a torn tail clamped on open (served anyway), 2 the
   directory is unrecoverable or a listener could not bind. *)

open Cmdliner
module Store = Siri_store.Store
module Telemetry = Siri_telemetry.Telemetry
module Engine = Siri_forkbase.Engine
module Wal = Siri_wal.Wal
module Durable = Siri_wal.Durable
module Partition = Siri_shard.Partition
module Sharded = Siri_shard.Sharded
module Server = Siri_server.Server

type index_kind = Pos | Mpt | Mbt | Mvbt | Prolly

let make kind store =
  match kind with
  | Pos ->
      Siri_pos.Pos_tree.generic
        (Siri_pos.Pos_tree.empty store (Siri_pos.Pos_tree.config ()))
  | Prolly -> Siri_prolly.Prolly.generic (Siri_prolly.Prolly.empty store)
  | Mpt -> Siri_mpt.Mpt.generic (Siri_mpt.Mpt.empty store)
  | Mbt ->
      Siri_mbt.Mbt.generic
        (Siri_mbt.Mbt.empty store (Siri_mbt.Mbt.config ~capacity:1024 ~fanout:4 ()))
  | Mvbt ->
      Siri_mvbt.Mvbt.generic
        (Siri_mvbt.Mvbt.empty store (Siri_mvbt.Mvbt.config ()))

let addr_to_string : Server.addr -> string = function
  | `Unix p -> "unix:" ^ p
  | `Tcp p -> "tcp:" ^ string_of_int p

let serve dir kind backend shards partition unix_path tcp_port sync group_max
    max_queue session_max =
  let listen =
    (match unix_path with Some p -> [ `Unix p ] | None -> [])
    @ match tcp_port with Some p -> [ `Tcp p ] | None -> []
  in
  if listen = [] then begin
    prerr_endline "siri_serve: need at least one of --unix PATH / --tcp PORT";
    2
  end
  else begin
    (* The serving store(s) keep the decoded-node and proof caches off:
       their LRUs are mutable and sessions read concurrently.  The
       telemetry sink is thread-safe and uses a wall clock so latency
       histograms are in seconds; with shards it is shared so server.*
       and per-shard counters aggregate in one place. *)
    let tsink = Telemetry.create ~clock:Unix.gettimeofday () in
    let fresh_index () =
      let store = Store.create ~cache_bytes:0 ~proof_cache_bytes:0 () in
      Store.set_sink store tsink;
      make kind store
    in
    let config =
      { Server.default_config with group_max; max_queue; session_max }
    in
    let run_server ~clamped ~start_server ~close_engine =
      match start_server () with
      | exception Unix.Unix_error (err, fn, arg) ->
          Printf.eprintf "siri_serve: %s %s: %s\n" fn arg
            (Unix.error_message err);
          close_engine ();
          2
      | server ->
          List.iter
            (fun a -> Printf.printf "READY %s\n" (addr_to_string a))
            (Server.listening server);
          flush stdout;
          let stop_flag = Atomic.make false in
          let handler = Sys.Signal_handle (fun _ -> Atomic.set stop_flag true) in
          Sys.set_signal Sys.sigterm handler;
          Sys.set_signal Sys.sigint handler;
          (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
           with Invalid_argument _ -> ());
          while not (Atomic.get stop_flag) do
            Thread.delay 0.1
          done;
          Server.stop server;
          if clamped then 1 else 0
    in
    match shards with
    | None -> (
        match Durable.open_ ~sync ~backend ~dir ~empty_index:(fresh_index ()) () with
        | Error e ->
            Format.eprintf "siri_serve: %a@." Wal.pp_error e;
            2
        | Ok durable ->
            let r = Durable.recovery durable in
            run_server
              ~clamped:(r.Durable.clamped_bytes > 0)
              ~start_server:(fun () -> Server.start ~config ~durable ~listen ())
              ~close_engine:(fun () -> Durable.close durable))
    | Some n -> (
        (* One systhread per shard inside the single writer: journal
           fsyncs overlap, index builds stay on this domain (the store
           discipline the lock-free snapshot reads rely on). *)
        let spec = Partition.make partition ~shards:n in
        match
          Sharded.open_ ~sync ~backend ~runner:`Threads ~spec ~dir
            ~empty_index:fresh_index ()
        with
        | exception Invalid_argument msg ->
            Printf.eprintf "siri_serve: %s\n" msg;
            2
        | Error e ->
            Format.eprintf "siri_serve: %a@." Wal.pp_error e;
            2
        | Ok sharded ->
            let r = Sharded.recovery sharded in
            run_server
              ~clamped:(r.Sharded.top_clamped_bytes > 0 || r.Sharded.capped > 0)
              ~start_server:(fun () ->
                Server.start_sharded ~config ~sharded ~listen ())
              ~close_engine:(fun () -> Sharded.close sharded))
  end

let cmd =
  let dir = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR") in
  let kind =
    Arg.(
      value
      & opt
          (enum
             [ ("pos", Pos); ("mpt", Mpt); ("mbt", Mbt); ("mvbt", Mvbt);
               ("prolly", Prolly) ])
          Pos
      & info [ "i"; "index" ] ~docv:"INDEX" ~doc:"Index structure.")
  in
  let backend =
    Arg.(
      value
      & opt (enum [ ("snapshot", `Snapshot); ("pack", `Pack) ]) `Snapshot
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:"Checkpoint backend: $(b,snapshot) (default) or $(b,pack).")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Serve a sharded keyspace: partition across $(docv) independent \
             journaled stores committed concurrently under one composite \
             Merkle root.  The count is fixed at directory creation and \
             recorded in the manifest.")
  in
  let partition =
    Arg.(
      value
      & opt
          (enum [ ("hash", Partition.Hash); ("range", Partition.Range) ])
          Partition.Hash
      & info [ "partition" ] ~docv:"SCHEME"
          ~doc:
            "Partition scheme with --shards: $(b,hash) (default) or \
             $(b,range).")
  in
  let unix_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "unix" ] ~docv:"PATH" ~doc:"Listen on a Unix-domain socket.")
  in
  let tcp_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT"
          ~doc:"Listen on TCP loopback; port 0 picks a free port (printed \
                on the READY line).")
  in
  let sync =
    Arg.(
      value & opt bool true
      & info [ "sync" ] ~docv:"BOOL"
          ~doc:"fsync the journal on every group commit (default true).")
  in
  let group_max =
    Arg.(
      value & opt int Server.default_config.Server.group_max
      & info [ "group-max" ] ~docv:"N"
          ~doc:"Client write batches folded into one group commit.")
  in
  let max_queue =
    Arg.(
      value & opt int Server.default_config.Server.max_queue
      & info [ "max-queue" ] ~docv:"N"
          ~doc:"Pending write batches before refusing with overload.")
  in
  let session_max =
    Arg.(
      value & opt int Server.default_config.Server.session_max
      & info [ "session-max" ] ~docv:"N" ~doc:"Concurrent sessions.")
  in
  Cmd.v
    (Cmd.info "siri_serve" ~version:"1.0.0"
       ~doc:
         "Serve a durable SIRI engine over checksummed framed sockets: \
          snapshot-isolated reads, single-writer group commit, graceful \
          shutdown on SIGTERM.")
    Term.(
      const serve $ dir $ kind $ backend $ shards $ partition $ unix_path
      $ tcp_port $ sync $ group_max $ max_queue $ session_max)

let () = exit (Cmd.eval' cmd)
