(* Bechamel micro-benchmarks: per-operation cost of lookup and point update
   for every structure at a fixed dataset size — the per-op view behind the
   throughput figures, measured with OLS fitting instead of wall-clock
   batching. *)

open Bechamel
open Toolkit
open Siri_core
module Ycsb = Siri_workload.Ycsb
module Table = Siri_benchkit.Table

let tests () =
  let n = Params.pick ~quick:20_000 ~full:160_000 in
  let y = Ycsb.create ~seed:Params.seed ~n () in
  let mk_tests kind =
    let inst = Common.ycsb_instance kind n in
    let rng = Rng.create Params.seed in
    let lookup =
      Test.make
        ~name:(Common.name kind ^ "/lookup")
        (Staged.stage (fun () ->
             ignore (inst.Generic.lookup (Ycsb.key y (Rng.int rng n)))))
    in
    let update =
      Test.make
        ~name:(Common.name kind ^ "/update")
        (Staged.stage (fun () ->
             ignore
               (inst.Generic.batch
                  [ Kv.Put (Ycsb.key y (Rng.int rng n), "updated-value") ])))
    in
    [ lookup; update ]
  in
  Test.make_grouped ~name:"ops" ~fmt:"%s %s"
    (List.concat_map mk_tests Common.all)

let run () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~stabilize:true ~quota:(Time.second 0.25) ()
  in
  let raw = Benchmark.all cfg instances (tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> est
          | _ -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  Table.print ~title:"Bechamel: per-operation cost (OLS fit)"
    ~headers:[ "operation"; "ns/op"; "us/op" ]
    (List.map
       (fun (name, ns) ->
         [ name; Printf.sprintf "%.0f" ns; Printf.sprintf "%.2f" (ns /. 1e3) ])
       rows)
