(* Extension (not a paper figure): the sharded keyspace engine.

   Sweeps the shard count over {1, 2, 4, 8} and measures (a) durable
   commit throughput — batches routed across the shards and committed
   concurrently, one domain per shard ([`Pool] runner, sync off so the
   sweep measures the pipeline rather than the disk) — and (b) batched
   [get_many] read latency through the shard router.  Each width also
   replays the identical workload on the sequential [`Inline] runner and
   asserts the composite root is byte-identical: the fan-out is pure
   scheduling and must never leak into the authenticated state.

   Honesty note: the sidecar records [host_domains]
   (= Domain.recommended_domain_count ()).  On a single-core host every
   shard's commit work lands on the calling domain and the speedup
   column hovers around 1x; the determinism and throughput-per-shard
   columns are meaningful regardless. *)

open Siri_core
module Store = Siri_store.Store
module Hash = Siri_crypto.Hash
module Partition = Siri_shard.Partition
module Sharded = Siri_shard.Sharded
module Wal = Siri_wal.Wal
module Ycsb = Siri_workload.Ycsb
module Clock = Siri_benchkit.Clock
module Table = Siri_benchkit.Table
module Json = Siri_telemetry.Telemetry.Json

let shard_sweep = [ 1; 2; 4; 8 ]

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "siri_shard_bench.%d.%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf d;
  d

let fail_error e = failwith (Format.asprintf "%a" Wal.pp_error e)

let empty_index () =
  Siri_pos.Pos_tree.generic
    (Siri_pos.Pos_tree.empty (Store.create ()) (Siri_pos.Pos_tree.config ()))

(* Commit [batches] of [batch] puts each through a fresh sharded
   directory and return (seconds, final composite, get_many p-latency in
   seconds over [read_rounds] batched lookups of [read_batch] keys). *)
let run_once ~runner ~shards ~batches ~batch ~keys_of_batch ~read_keys =
  let dir = fresh_dir () in
  let spec = Partition.make Partition.Hash ~shards in
  match
    Sharded.open_ ~sync:false ~runner ~spec ~dir ~empty_index ()
  with
  | Error e -> fail_error e
  | Ok t ->
      let t0 = Clock.now () in
      for b = 0 to batches - 1 do
        let ops =
          List.map (fun (k, v) -> Kv.Put (k, v)) (keys_of_batch b)
        in
        ignore (Sharded.commit t ~branch:"master" ~message:"bench" ops)
      done;
      ignore batch;
      let commit_secs = Clock.now () -. t0 in
      let r0 = Clock.now () in
      let rounds = List.length read_keys in
      List.iter
        (fun keys -> ignore (Sharded.get_many t ~branch:"master" keys))
        read_keys;
      let read_secs = (Clock.now () -. r0) /. float_of_int (max 1 rounds) in
      let composite = (Sharded.head t ~branch:"master").Sharded.composite in
      Sharded.close t;
      rm_rf dir;
      (commit_secs, composite, read_secs)

let run () =
  let batches = Params.pick ~quick:40 ~full:200 in
  let batch = Params.pick ~quick:250 ~full:1000 in
  let n = batches * batch in
  let y = Ycsb.create ~seed:Params.seed ~n () in
  let entries = Array.of_list (Ycsb.dataset y) in
  let keys_of_batch b =
    Array.to_list (Array.sub entries (b * batch) batch)
  in
  (* 20 rounds of 100-key batched lookups spread over the keyspace. *)
  let read_keys =
    List.init 20 (fun r ->
        List.init 100 (fun i ->
            fst entries.((((r * 100) + i) * 53) mod n)))
  in
  let host = Domain.recommended_domain_count () in
  let rows = ref [] and json_rows = ref [] in
  let baseline = ref nan in
  List.iter
    (fun shards ->
      let secs, composite, read_secs =
        run_once ~runner:`Pool ~shards ~batches ~batch ~keys_of_batch
          ~read_keys
      in
      let _, composite_inline, _ =
        run_once ~runner:`Inline ~shards ~batches ~batch ~keys_of_batch
          ~read_keys
      in
      (* The determinism pin of the whole figure: domain-parallel and
         sequential fan-out must publish the same composite. *)
      if not (Hash.equal composite composite_inline) then
        failwith
          (Printf.sprintf
             "fig_shard: composite diverged between runners at %d shards"
             shards);
      if shards = 1 then baseline := secs;
      let speedup = !baseline /. secs in
      rows :=
        [ string_of_int shards;
          Printf.sprintf "%.0f" (float_of_int batches /. secs);
          Printf.sprintf "%.1f" (float_of_int n /. secs /. 1000.);
          Printf.sprintf "%.1f" (read_secs *. 1e6);
          Printf.sprintf "%.2fx" speedup;
          Hash.short composite ]
        :: !rows;
      json_rows :=
        Json.obj
          [ ("shards", Json.int shards);
            ("commit_seconds", Json.num secs);
            ("commits_per_sec", Json.num (float_of_int batches /. secs));
            ("kops_per_sec", Json.num (float_of_int n /. secs /. 1000.));
            ("get_many_us", Json.num (read_secs *. 1e6));
            ("speedup_vs_1_shard", Json.num speedup);
            ("composite", Json.str (Hash.to_hex composite));
            ( "composite_matches_inline",
              Json.str (string_of_bool (Hash.equal composite composite_inline))
            ) ]
        :: !json_rows)
    shard_sweep;
  Table.print
    ~title:
      (Printf.sprintf
         "Sharded keyspace — %d commits of %d puts, 100-key get_many (%d \
          host domain%s)"
         batches batch host
         (if host = 1 then "" else "s"))
    ~headers:
      [ "shards"; "commits/s"; "kops/s"; "get_many us"; "speedup"; "composite" ]
    (List.rev !rows);
  if host = 1 then
    print_endline
      "note: single-core host — shard commits serialize onto one domain, \
       so the speedup column is not expected to exceed 1x here."
  else if
    List.exists
      (fun shards -> shards > 1)
      (List.filter (fun s -> s <= host) shard_sweep)
  then begin
    (* Only assert scaling where the host can actually run shards in
       parallel; refusal to claim speedup on 1 core is the honest half
       of the acceptance criterion. *)
    let ok =
      List.exists
        (fun row ->
          match row with
          | _ :: _ :: _ :: _ :: sp :: _ ->
              (try Scanf.sscanf sp "%fx" (fun f -> f > 1.0)
               with Scanf.Scan_failure _ | Failure _ -> false)
          | _ -> false)
        !rows
    in
    if not ok then
      print_endline
        "warning: multi-core host but no shard width beat 1 shard."
  end;
  Metrics.write ~id:"shard"
    (Json.obj
       [ ("experiment", Json.str "shard");
         ("title", Json.str "shard sweep: concurrent commit + routed reads");
         ("records", Json.int n);
         ("batches", Json.int batches);
         ("batch", Json.int batch);
         ("host_domains", Json.int host);
         ("rows", Json.arr (List.rev !json_rows)) ])
