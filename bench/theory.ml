(* Section 4.1 — operation bounds: predicted cost model next to measured
   traversal lengths and latencies across N.
   Section 4.2 — deduplication ratio: measured eta of sequentially evolved
   versions next to the closed form 1/2 - alpha/2. *)

open Siri_core
module Store = Siri_store.Store
module Ycsb = Siri_workload.Ycsb
module Versions = Siri_workload.Versions
module Clock = Siri_benchkit.Clock
module Table = Siri_benchkit.Table

let bounds_kind = function
  | Common.Kpos -> Bounds.Pos
  | Common.Kmbt -> Bounds.Mbt
  | Common.Kmpt -> Bounds.Mpt
  | Common.Kmvbt | Common.Kprolly -> Bounds.Mvbt

let bounds () =
  let probes = 1_000 in
  List.iter
    (fun n ->
      let y = Ycsb.create ~seed:Params.seed ~n () in
      let params =
        { Bounds.default with Bounds.n; m = 25; b = max 16 (n * 266 / 1024); l = 20 }
      in
      let rows =
        List.map
          (fun kind ->
            let inst = Common.ycsb_instance kind n in
            let rng = Rng.create Params.seed in
            let keys = List.init probes (fun _ -> Ycsb.key y (Rng.int rng n)) in
            let total_path =
              List.fold_left (fun acc k -> acc + inst.Generic.path_length k) 0 keys
            in
            let total_path = ref total_path in
            let seconds =
              Clock.time_unit (fun () ->
                  List.iter (fun k -> ignore (inst.Generic.lookup k)) keys)
            in
            [ Common.name kind;
              Printf.sprintf "%.1f"
                (Float.of_int !total_path /. Float.of_int probes);
              Printf.sprintf "%.1f"
                (Bounds.cost (bounds_kind kind) Bounds.Lookup params);
              Printf.sprintf "%.2f" (seconds /. Float.of_int probes *. 1e6) ])
          Common.all
      in
      Table.print
        ~title:
          (Printf.sprintf
             "Section 4.1: lookup — measured path length vs predicted (N=%d)"
             n)
        ~headers:[ "index"; "measured path"; "predicted cost"; "us/lookup" ]
        rows)
    (Params.n_sweep ());
  (* The full asymptotic table for reference. *)
  let p = Bounds.default in
  Table.print
    ~title:"Section 4.1: asymptotic cost model (N=1M, m=25, B=10k, L=20, delta=1k)"
    ~headers:[ "index"; "lookup"; "update"; "diff"; "merge" ]
    (List.map
       (fun (name, cells) ->
         name :: List.map (fun (_, c) -> Table.fmt_float c) cells)
       (Bounds.table p))

let eta () =
  let n = Params.pick ~quick:10_000 ~full:100_000 in
  let versions = 5 in
  let rows =
    List.map
      (fun alpha ->
        let per_kind =
          List.map
            (fun kind ->
              let store = Store.create () in
              let y = Ycsb.create ~seed:Params.seed ~n () in
              let inst =
                Common.load
                  (Common.make ~record_bytes:266 kind store)
                  (Ycsb.dataset y)
              in
              let rng = Rng.create Params.seed in
              let batches =
                Versions.continuous_updates ~ycsb:y ~rng ~alpha ~versions
              in
              let _, roots =
                List.fold_left
                  (fun (inst, roots) ops ->
                    let inst = inst.Generic.batch ops in
                    (inst, inst.Generic.root :: roots))
                  (inst, [ inst.Generic.root ])
                  batches
              in
              (* The Section 4.2.2 closed form is derived for a PAIR of
                 consecutive versions: average eta over consecutive pairs. *)
              let rec pairs acc = function
                | a :: (b :: _ as rest) ->
                    pairs (Dedup.dedup_ratio store [ a; b ] :: acc) rest
                | _ -> acc
              in
              let es = pairs [] roots in
              List.fold_left ( +. ) 0.0 es /. Float.of_int (List.length es))
            Common.all
        in
        ( Printf.sprintf "%.1f" alpha,
          per_kind @ [ Dedup.analytic_eta ~alpha ] ))
      [ 0.1; 0.2; 0.3; 0.5; 0.7; 0.9 ]
  in
  Table.series
    ~title:
      (Printf.sprintf
         "Section 4.2: measured eta of %d sequential versions vs analytic \
          1/2 - alpha/2 (N=%d)"
         (versions + 1) n)
    ~x_label:"alpha"
    ~columns:(Common.names Common.all @ [ "analytic" ])
    rows

(* Extension (the paper's stated future work): deduplication of a BRANCHING
   version DAG rather than a sequential chain.  A base version forks into
   [branches]; each branch then evolves independently with alpha-fraction
   contiguous updates per version.  We report measured eta over the whole
   DAG next to the sequential closed form: branches share the base but not
   each other's changes, so eta decays faster with alpha than 1/2-alpha/2
   and grows with the branch count's shared ancestry. *)
let eta_dag () =
  let n = Params.pick ~quick:8_000 ~full:80_000 in
  let versions_per_branch = 3 in
  let rows =
    List.concat_map
      (fun branches ->
        List.map
          (fun alpha ->
            let per_kind =
              List.map
                (fun kind ->
                  let store = Store.create () in
                  let y = Ycsb.create ~seed:Params.seed ~n () in
                  let base =
                    Common.load
                      (Common.make ~record_bytes:266 kind store)
                      (Ycsb.dataset y)
                  in
                  let roots = ref [ base.Generic.root ] in
                  for b = 1 to branches do
                    let rng = Rng.create (Params.seed + b) in
                    let batches =
                      Versions.continuous_updates ~ycsb:y ~rng ~alpha
                        ~versions:versions_per_branch
                    in
                    let _ =
                      List.fold_left
                        (fun inst ops ->
                          let inst = inst.Generic.batch ops in
                          roots := inst.Generic.root :: !roots;
                          inst)
                        base batches
                    in
                    ()
                  done;
                  Dedup.dedup_ratio store !roots)
                Common.all
            in
            ( Printf.sprintf "b=%d a=%.1f" branches alpha,
              per_kind @ [ Dedup.analytic_eta ~alpha ] ))
          [ 0.1; 0.3; 0.5 ])
      [ 2; 4 ]
  in
  Table.series
    ~title:
      (Printf.sprintf
         "Extension: eta of a branching version DAG (%d versions/branch,           N=%d) vs the sequential closed form"
         versions_per_branch n)
    ~x_label:"branches/alpha"
    ~columns:(Common.names Common.all @ [ "seq analytic" ])
    rows

let run () =
  bounds ();
  eta ()
