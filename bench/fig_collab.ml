(* Figure 17 — diverse-group collaboration vs overlap ratio:
                storage, #nodes, deduplication ratio, node sharing ratio.
   Figure 18 — the same four metrics vs write batch size.
   Table 3   — structure parameters vs deduplication ratio. *)

open Siri_core
module Store = Siri_store.Store
module Mpt = Siri_mpt.Mpt
module Mbt = Siri_mbt.Mbt
module Pos = Siri_pos.Pos_tree
module Ycsb = Siri_workload.Ycsb
module Versions = Siri_workload.Versions
module Table = Siri_benchkit.Table

(* Simulate [groups] parties: each initialises the same dataset, then
   executes its overlap workload committed in batches (one version per
   batch).  Returns (stored bytes, #nodes, dedup ratio, sharing ratio) for
   the head versions. *)
let collaborate kind ~overlap_ratio ~batch =
  let groups = Params.groups () in
  let init_n = Params.group_init () in
  let per_group = Params.group_workload () in
  let store = Store.create () in
  let y = Ycsb.create ~seed:Params.seed ~n:(init_n + per_group) () in
  let init = List.init init_n (fun id -> Ycsb.entry y id) in
  let all_roots = ref [] in
  let heads =
    List.init groups (fun g ->
        let inst = Common.load (Common.make ~record_bytes:266 kind store) init in
        all_roots := inst.Generic.root :: !all_roots;
        let workload =
          Ycsb.overlap_workload y ~offset:init_n ~group:g ~groups
            ~overlap_ratio ~count:per_group
        in
        let rec commit inst = function
          | [] -> inst
          | records ->
              let now, later =
                ( List.filteri (fun i _ -> i < batch) records,
                  List.filteri (fun i _ -> i >= batch) records )
              in
              let inst =
                inst.Generic.batch (List.map (fun (k, v) -> Kv.Put (k, v)) now)
              in
              all_roots := inst.Generic.root :: !all_roots;
              commit inst later
        in
        (commit inst workload).Generic.root)
  in
  ignore heads;
  (* All committed versions count: the collaborative store retains every
     batch version of every group, and the metrics quantify how well that
     whole set deduplicates (within groups across versions, and across
     groups through overlap). *)
  ( Dedup.union_bytes store !all_roots,
    Dedup.union_nodes store !all_roots,
    Dedup.dedup_ratio store !all_roots,
    Dedup.node_sharing_ratio store !all_roots )

let four_metric_tables ~title ~x_label rows =
  (* rows : (x, (bytes, nodes, eta, sharing) list per kind) *)
  let table name f =
    Table.series ~title:(title ^ " — " ^ name) ~x_label
      ~columns:(Common.names Common.all)
      (List.map (fun (x, per) -> (x, List.map f per)) rows)
  in
  table "storage (MB)" (fun (b, _, _, _) -> Float.of_int b /. 1e6);
  table "#nodes (x1000)" (fun (_, n, _, _) -> Float.of_int n /. 1e3);
  table "deduplication ratio" (fun (_, _, e, _) -> e);
  table "node sharing ratio" (fun (_, _, _, s) -> s)

let fig17 () =
  let batch = Params.default_batch () in
  let rows =
    List.map
      (fun overlap ->
        ( Printf.sprintf "%.0f%%" (100.0 *. overlap),
          List.map (fun kind -> collaborate kind ~overlap_ratio:overlap ~batch)
            Common.all ))
      (Params.overlap_sweep ())
  in
  four_metric_tables
    ~title:
      (Printf.sprintf "Figure 17: %d-group collaboration vs overlap ratio"
         (Params.groups ()))
    ~x_label:"overlap" rows

let fig18 () =
  let rows =
    List.map
      (fun batch ->
        ( string_of_int batch,
          List.map (fun kind -> collaborate kind ~overlap_ratio:0.5 ~batch)
            Common.all ))
      (Params.batch_sweep ())
  in
  four_metric_tables
    ~title:"Figure 18: collaboration (50% overlap) vs batch size"
    ~x_label:"batch" rows

(* Table 3: dedup ratio of the collaboration workload (50% overlap, default
   batches) under varying structure parameters.  [key_pad] appends bytes to
   every key, lengthening MPT paths. *)
let collab_eta ~key_pad build =
  let groups = Params.groups () in
  let init_n = Params.group_init () in
  let per_group = Params.group_workload () in
  let batch = Params.default_batch () in
  let all_roots = ref [] in
  let store = Store.create () in
  let y = Ycsb.create ~seed:Params.seed ~n:(init_n + per_group) () in
  let pad k = if key_pad = 0 then k else k ^ String.make key_pad 'k' in
  let init = List.init init_n (fun id -> Ycsb.entry y id) in
  let init = List.map (fun (k, v) -> (pad k, v)) init in
  let heads =
    List.init groups (fun g ->
        let inst = Common.load (build store) init in
        all_roots := inst.Generic.root :: !all_roots;
        let workload =
          List.map
            (fun (k, v) -> (pad k, v))
            (Ycsb.overlap_workload y ~offset:init_n ~group:g ~groups
               ~overlap_ratio:0.5 ~count:per_group)
        in
        let rec commit inst = function
          | [] -> inst
          | records ->
              let now, later =
                ( List.filteri (fun i _ -> i < batch) records,
                  List.filteri (fun i _ -> i >= batch) records )
              in
              let inst =
                inst.Generic.batch (List.map (fun (k, v) -> Kv.Put (k, v)) now)
              in
              all_roots := inst.Generic.root :: !all_roots;
              commit inst later
        in
        let inst = commit inst workload in
        all_roots := inst.Generic.root :: !all_roots;
        inst.Generic.root)
  in
  ignore heads;
  Dedup.dedup_ratio store !all_roots

let table3 () =
  Table.print ~title:"Table 3a: POS-Tree node size vs eta"
    ~headers:[ "node size"; "eta(POS-Tree)" ]
    (List.map
       (fun size ->
         let eta =
           collab_eta ~key_pad:0 (fun s ->
               Pos.generic (Pos.empty s (Pos.config ~leaf_target:size ())))
         in
         [ string_of_int size; Printf.sprintf "%.4f" eta ])
       Params.table3_pos_node_sizes);
  Table.print ~title:"Table 3b: MBT bucket count vs eta"
    ~headers:[ "#buckets"; "eta(MBT)" ]
    (List.map
       (fun buckets ->
         let eta =
           collab_eta ~key_pad:0 (fun s ->
               Mbt.generic (Mbt.empty s (Mbt.config ~capacity:buckets ~fanout:4 ())))
         in
         [ string_of_int buckets; Printf.sprintf "%.4f" eta ])
       (Params.table3_mbt_buckets ()));
  Table.print ~title:"Table 3c: MPT mean key length vs eta"
    ~headers:[ "extra key bytes"; "mean key len"; "eta(MPT)" ]
    (List.map
       (fun pad ->
         let eta = collab_eta ~key_pad:pad (fun s -> Mpt.generic (Mpt.empty s)) in
         [ string_of_int pad;
           Printf.sprintf "%.1f" (10.3 +. Float.of_int pad);
           Printf.sprintf "%.4f" eta ])
       [ 0; 4; 8; 16 ])

let run () =
  fig17 ();
  fig18 ();
  table3 ()
