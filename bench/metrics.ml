(* Machine-readable metrics sidecars.

   Every figure that prints a table can also emit a BENCH_<id>.json file so
   downstream tooling (plotters, regression checks) consumes structured
   numbers instead of scraping stdout — and the numbers themselves come
   from the telemetry sinks the indexes report into, not from counts
   recomputed by hand inside each figure.  Set BENCH_METRICS_DIR to choose
   the output directory (default: the working directory). *)

module Telemetry = Siri_telemetry.Telemetry
module Json = Telemetry.Json

let out_path id =
  let dir =
    match Sys.getenv_opt "BENCH_METRICS_DIR" with Some d -> d | None -> "."
  in
  Filename.concat dir ("BENCH_" ^ id ^ ".json")

let write ~id json =
  let path = out_path id in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "[metrics sidecar: %s]\n%!" path

(* A printed Table.series, as JSON. *)
let series ~id ~title ~x_label ~columns rows =
  write ~id
    (Json.obj
       [ ("experiment", Json.str id);
         ("title", Json.str title);
         ("x_label", Json.str x_label);
         ("columns", Json.arr (List.map Json.str columns));
         ( "rows",
           Json.arr
             (List.map
                (fun (x, ys) ->
                  Json.obj
                    [ ("x", Json.str x);
                      ("values", Json.arr (List.map Json.num ys)) ])
                rows) ) ])

(* Per-structure telemetry captured during a workload run.  Counters and
   histogram summaries only: per-op spans would dwarf the file, so they are
   reduced to a count. *)
let sink_json sink =
  Json.obj
    [ ( "counters",
        Json.obj
          (List.map (fun (k, v) -> (k, Json.int v)) (Telemetry.counters sink)) );
      ( "histograms",
        Json.obj
          (List.map
             (fun (k, h) -> (k, Telemetry.json_of_histo h))
             (Telemetry.histograms sink)) );
      ("span_count", Json.int (List.length (Telemetry.spans sink))) ]

let sinks ~id ~title entries =
  write ~id
    (Json.obj
       [ ("experiment", Json.str id);
         ("title", Json.str title);
         ( "structures",
           Json.arr
             (List.map
                (fun (label, sink) ->
                  Json.obj
                    [ ("structure", Json.str label);
                      ("telemetry", sink_json sink) ])
                entries) ) ])
