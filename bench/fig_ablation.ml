(* Figure 19 — disabling the Structurally Invariant property (forced local
   splits) lowers deduplication and node sharing across collaborating
   groups.
   Figure 20 — disabling the Recursively Identical property (fresh salt per
   version, no copy-on-write sharing) drives both metrics to zero. *)

open Siri_core
module Store = Siri_store.Store
module Pos = Siri_pos.Pos_tree
module Ycsb = Siri_workload.Ycsb
module Table = Siri_benchkit.Table

(* The Figure 17 collaboration workload, POS-Tree only, with a configurable
   tree configuration. *)
let collaborate_pos cfg ~overlap_ratio =
  let groups = Params.groups () in
  let init_n = Params.group_init () in
  let per_group = Params.group_workload () in
  let batch = Params.default_batch () in
  let store = Store.create () in
  let y = Ycsb.create ~seed:Params.seed ~n:(init_n + per_group) () in
  let init = List.init init_n (fun id -> Ycsb.entry y id) in
  let all_roots = ref [] in
  let heads =
    List.init groups (fun g ->
        let inst = Pos.generic (Pos.empty store cfg) in
        let inst = Common.load inst init in
        all_roots := inst.Generic.root :: !all_roots;
        let workload =
          Ycsb.overlap_workload y ~offset:init_n ~group:g ~groups
            ~overlap_ratio ~count:per_group
        in
        (* Each group applies the records in its own order — exactly the
           situation where structural invariance decides whether the final
           trees coincide. *)
        let workload = Rng.shuffle (Rng.create (Params.seed + g)) workload in
        let rec commit inst = function
          | [] -> inst
          | records ->
              let now, later =
                ( List.filteri (fun i _ -> i < batch) records,
                  List.filteri (fun i _ -> i >= batch) records )
              in
              let inst =
                inst.Generic.batch (List.map (fun (k, v) -> Kv.Put (k, v)) now)
              in
              all_roots := inst.Generic.root :: !all_roots;
              commit inst later
        in
        (commit inst workload).Generic.root)
  in
  ignore all_roots;
  (* The ablation isolates CROSS-INSTANCE sharing: compare the final trees
     of the groups.  (Across-version sharing within one group is governed by
     Recursively Identical and measured in Figure 20.) *)
  (Dedup.dedup_ratio store heads, Dedup.node_sharing_ratio store heads)

let ablation_tables ~figure ~property enabled_cfg disabled_cfg =
  let rows =
    List.map
      (fun overlap ->
        let e_eta, e_share = collaborate_pos enabled_cfg ~overlap_ratio:overlap in
        let d_eta, d_share = collaborate_pos disabled_cfg ~overlap_ratio:overlap in
        (Printf.sprintf "%.0f%%" (100.0 *. overlap), (e_eta, e_share, d_eta, d_share)))
      (Params.overlap_sweep ())
  in
  Table.series
    ~title:(Printf.sprintf "%s: %s — deduplication ratio" figure property)
    ~x_label:"overlap"
    ~columns:[ "enabled"; "disabled" ]
    (List.map (fun (x, (e, _, d, _)) -> (x, [ e; d ])) rows);
  Table.series
    ~title:(Printf.sprintf "%s: %s — node sharing ratio" figure property)
    ~x_label:"overlap"
    ~columns:[ "enabled"; "disabled" ]
    (List.map (fun (x, (_, e, _, d)) -> (x, [ e; d ])) rows)

let fig19 () =
  ablation_tables ~figure:"Figure 19" ~property:"Structurally Invariant"
    (Pos.config ~leaf_target:1024 ())
    (Pos.config_non_structurally_invariant ~leaf_target:1024 ())

let fig20 () =
  ablation_tables ~figure:"Figure 20" ~property:"Recursively Identical"
    (Pos.config ~leaf_target:1024 ())
    (Pos.config_non_recursively_identical ~leaf_target:1024 ())

let run () =
  fig19 ();
  fig20 ()
