(* Extension (not a paper figure): the multi-client server's group commit
   under concurrent writers.

   N client threads each run a closed loop of synchronous write batches
   over zipf-distributed keys against a live siri server on a Unix socket.
   The writer thread folds whatever has queued into one engine commit —
   one batched index build, one WAL frame, one fsync — so with W blocked
   writers a fold captures up to W batches.  The comparison pins the
   durability story: [single] forces group_max = 1 (every batch pays its
   own build + frame + fsync), [group] uses the default fold.  Client-side
   commit latency lands in a telemetry histogram (p50/p95/p99); the mean
   group size and WAL frame count come from the server's own sink, so the
   numbers are the ones the conservation tests already pin. *)

open Siri_core
module Store = Siri_store.Store
module Durable = Siri_wal.Durable
module Server = Siri_server.Server
module Client = Siri_server.Client
module Telemetry = Siri_telemetry.Telemetry
module Zipf = Siri_workload.Zipf
module Clock = Siri_benchkit.Clock
module Table = Siri_benchkit.Table

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "siri_server_bench.%d.%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf d;
  d

let mk_index store =
  Siri_pos.Pos_tree.generic
    (Siri_pos.Pos_tree.empty store (Siri_pos.Pos_tree.config ()))

type run = {
  throughput : float;  (** acked commits / s across all writers *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  mean_group : float;  (** acked / WAL frames *)
  wal_frames : int;
}

(* One mode: [writers] closed-loop clients, [commits] batches each of
   [batch] zipf-keyed puts, against a server capped at [group_max]. *)
let run_mode ~writers ~commits ~batch ~group_max =
  let dir = fresh_dir () in
  let sock = Filename.concat dir "bench.sock" in
  let store = Store.create ~cache_bytes:0 ~proof_cache_bytes:0 () in
  Store.set_sink store (Telemetry.create ~clock:Unix.gettimeofday ());
  let durable =
    match
      Durable.open_ ~sync:true ~dir ~empty_index:(mk_index store) ()
    with
    | Ok d -> d
    | Error e -> failwith (Format.asprintf "%a" Siri_wal.Wal.pp_error e)
  in
  let config = { Server.default_config with group_max } in
  let server = Server.start ~config ~durable ~listen:[ `Unix sock ] () in
  let lat = Telemetry.create ~clock:Unix.gettimeofday () in
  let zipf = Zipf.create ~n:10_000 ~theta:0.9 in
  let failures = Atomic.make 0 in
  let writer w () =
    match Client.connect ~addr:(`Unix sock) () with
    | Error _ -> Atomic.incr failures
    | Ok c ->
        let rng = Rng.create (Params.seed + (w * 7919)) in
        for i = 1 to commits do
          let ops =
            List.init batch (fun j ->
                Kv.Put
                  ( Printf.sprintf "key%05d" (Zipf.sample zipf rng),
                    Printf.sprintf "w%d-c%d-%d" w i j ))
          in
          let t0 = Clock.now () in
          match Client.commit c ~branch:"master" ~message:"bench" ops with
          | Ok _ -> Telemetry.observe lat "client.commit" (Clock.now () -. t0)
          | Error _ -> Atomic.incr failures
        done;
        Client.close c
  in
  let t0 = Clock.now () in
  let threads =
    List.init writers (fun w -> Thread.create (writer w) ())
  in
  List.iter Thread.join threads;
  let seconds = Clock.now () -. t0 in
  let sink = Server.sink server in
  let acked = Telemetry.counter sink "server.commit.acked" in
  let frames = Telemetry.counter sink "server.commit.groups" in
  Server.stop server;
  rm_rf dir;
  if Atomic.get failures > 0 then
    failwith
      (Printf.sprintf "server bench: %d request failures"
         (Atomic.get failures));
  let ms p = 1000. *. Telemetry.quantile lat "client.commit" p in
  { throughput = float_of_int acked /. seconds;
    p50_ms = ms 0.5;
    p95_ms = ms 0.95;
    p99_ms = ms 0.99;
    mean_group = float_of_int acked /. float_of_int (max 1 frames);
    wal_frames = frames }

let run () =
  let commits = if Params.is_full () then 100 else 25 in
  let batch = 16 in
  let writer_sweep = [ 1; 2; 4; 8 ] in
  let modes = [ ("single", 1); ("group", Server.default_config.group_max) ] in
  let rows =
    List.concat_map
      (fun writers ->
        List.map
          (fun (label, group_max) ->
            let r = run_mode ~writers ~commits ~batch ~group_max in
            (Printf.sprintf "%s@%d" label writers, r))
          modes)
      writer_sweep
  in
  Table.print
    ~title:
      (Printf.sprintf
         "Server group commit: %d batches x %d puts per writer (zipf 0.9, \
          fsync on)"
         commits batch)
    ~headers:
      [ "mode@writers"; "commits/s"; "p50 ms"; "p95 ms"; "p99 ms";
        "mean group"; "WAL frames" ]
    (List.map
       (fun (label, r) ->
         [ label;
           Printf.sprintf "%.0f" r.throughput;
           Printf.sprintf "%.2f" r.p50_ms;
           Printf.sprintf "%.2f" r.p95_ms;
           Printf.sprintf "%.2f" r.p99_ms;
           Printf.sprintf "%.2f" r.mean_group;
           string_of_int r.wal_frames ])
       rows);
  (* the acceptance bar: folding must not cost throughput under contention *)
  (match
     ( List.assoc_opt "single@8" rows,
       List.assoc_opt "group@8" rows )
   with
  | Some s, Some g when g.throughput < s.throughput ->
      Printf.printf
        "WARNING: group commit slower than single at 8 writers (%.0f < %.0f)\n"
        g.throughput s.throughput
  | _ -> ());
  Metrics.series ~id:"server"
    ~title:"group commit vs single commit under concurrent writers"
    ~x_label:"mode@writers"
    ~columns:
      [ "commits_per_s"; "p50_ms"; "p95_ms"; "p99_ms"; "mean_group_size";
        "wal_frames" ]
    (List.map
       (fun (label, r) ->
         ( label,
           [ r.throughput; r.p50_ms; r.p95_ms; r.p99_ms; r.mean_group;
             float_of_int r.wal_frames ] ))
       rows)
