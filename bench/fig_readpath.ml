(* fig_readpath — the read-path optimization study:

   1. hot vs cold point-lookup throughput under the decoded-node cache,
      against a disabled-cache control (the >= 2x hot-speedup gate for
      MPT and POS-Tree is recorded in BENCH_readpath.json);
   2. batched multi-get vs one-at-a-time lookups at batch sizes 1/16/256;
   3. cache hit-rate sweep across byte budgets;
   4. uniform vs zipfian key skew under a deliberately small budget;
   5. negative lookups with and without the per-root Bloom filter. *)

open Siri_core
module Store = Siri_store.Store
module Node_cache = Siri_readpath.Node_cache
module Ycsb = Siri_workload.Ycsb
module Clock = Siri_benchkit.Clock
module Table = Siri_benchkit.Table
module Json = Siri_telemetry.Telemetry.Json

let kinds = Common.all
let n () = Params.pick ~quick:20_000 ~full:100_000
let lookup_count () = Params.pick ~quick:30_000 ~full:100_000

(* A fresh instance over its own store with the given cache budget.
   [Generic.load_sorted] also registers the root's negative-lookup
   filter, which section 5 exercises through [Generic.get]. *)
let instance ?cache_bytes kind y =
  let store = Store.create ?cache_bytes () in
  Generic.load_sorted
    (Common.make ~record_bytes:266 kind store)
    (Ycsb.dataset y)

let uniform_keys y ~count =
  let rng = Rng.create Params.seed in
  let n = Ycsb.n y in
  List.init count (fun _ -> Ycsb.key y (Rng.int rng n))

let zipf_keys y ~count =
  let rng = Rng.create Params.seed in
  List.filter_map
    (function Ycsb.Read k -> Some k | Ycsb.Write _ -> None)
    (Ycsb.operations y ~rng ~theta:0.9 ~mix:{ Ycsb.write_ratio = 0.0 }
       ~count)

let time_lookups inst keys =
  let (), seconds =
    Clock.time (fun () ->
        List.iter (fun k -> ignore (inst.Generic.lookup k)) keys)
  in
  seconds

let kops keys seconds = Common.kops (List.length keys) seconds

(* --- 1. hot / cold / control ---------------------------------------------- *)

let hot_cold y keys =
  List.map
    (fun kind ->
      let control = instance ~cache_bytes:0 kind y in
      let control_kops = kops keys (time_lookups control keys) in
      let cached = instance ~cache_bytes:Node_cache.default_budget kind y in
      (* The bulk load may have left nodes in the cache; clearing makes
         the first pass an honest cold start (all misses + inserts). *)
      Node_cache.clear (Store.cache cached.Generic.store);
      let cold_kops = kops keys (time_lookups cached keys) in
      let hot_kops = kops keys (time_lookups cached keys) in
      ( Common.name kind,
        control_kops,
        cold_kops,
        hot_kops,
        hot_kops /. control_kops ))
    kinds

(* --- 2. batched multi-get -------------------------------------------------- *)

let chunks size l =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: tl ->
        if n = size then go (List.rev cur :: acc) [ x ] 1 tl
        else go acc (x :: cur) (n + 1) tl
  in
  go [] [] 0 l

let batch_sizes = [ 1; 16; 256 ]

let batched y keys =
  List.map
    (fun kind ->
      (* Cache disabled: what is measured is purely the traversal sharing
         of [get_many], not cache hits. *)
      let inst = instance ~cache_bytes:0 kind y in
      let single_kops = kops keys (time_lookups inst keys) in
      let per_size =
        List.map
          (fun size ->
            let batches = chunks size keys in
            let (), seconds =
              Clock.time (fun () ->
                  List.iter
                    (fun b -> ignore (inst.Generic.get_many b))
                    batches)
            in
            (size, kops keys seconds))
          batch_sizes
      in
      (Common.name kind, single_kops, per_size))
    kinds

(* --- 3. hit-rate sweep ----------------------------------------------------- *)

let budgets = [ 64 * 1024; 256 * 1024; 1024 * 1024; 4 * 1024 * 1024 ]

let fmt_budget b =
  if b >= 1024 * 1024 then Printf.sprintf "%d MB" (b / (1024 * 1024))
  else Printf.sprintf "%d KB" (b / 1024)

let hit_ratio cache ~hits0 ~misses0 =
  let h = Node_cache.hits cache - hits0
  and m = Node_cache.misses cache - misses0 in
  if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)

let sweep y keys =
  List.map
    (fun budget ->
      let cols =
        List.map
          (fun kind ->
            let inst = instance ~cache_bytes:budget kind y in
            let cache = Store.cache inst.Generic.store in
            Node_cache.clear cache;
            ignore (time_lookups inst keys) (* warm to steady state *);
            let hits0 = Node_cache.hits cache
            and misses0 = Node_cache.misses cache in
            let seconds = time_lookups inst keys in
            (Common.name kind, kops keys seconds,
             hit_ratio cache ~hits0 ~misses0))
          kinds
      in
      (budget, cols))
    budgets

(* --- 4. uniform vs zipf ---------------------------------------------------- *)

let skew y ~budget uniform zipfian =
  List.map
    (fun kind ->
      let run keys =
        let inst = instance ~cache_bytes:budget kind y in
        let cache = Store.cache inst.Generic.store in
        Node_cache.clear cache;
        ignore (time_lookups inst keys);
        let hits0 = Node_cache.hits cache
        and misses0 = Node_cache.misses cache in
        let seconds = time_lookups inst keys in
        (kops keys seconds, hit_ratio cache ~hits0 ~misses0)
      in
      let u_kops, u_hit = run uniform in
      let z_kops, z_hit = run zipfian in
      (Common.name kind, u_kops, u_hit, z_kops, z_hit))
    kinds

(* --- 5. negative lookups --------------------------------------------------- *)

let negative y ~count =
  let absent = List.init count (Printf.sprintf "zz-absent-%08d") in
  List.map
    (fun kind ->
      let inst = instance ~cache_bytes:0 kind y in
      let scan_kops = kops absent (time_lookups inst absent) in
      let (), seconds =
        Clock.time (fun () ->
            List.iter (fun k -> ignore (Generic.get inst k)) absent)
      in
      (Common.name kind, scan_kops, kops absent seconds))
    kinds

(* --- driver ----------------------------------------------------------------- *)

let run () =
  let n = n () in
  let y = Ycsb.create ~seed:Params.seed ~n () in
  let keys = uniform_keys y ~count:(lookup_count ()) in
  let zipfian = zipf_keys y ~count:(lookup_count ()) in

  let hc = hot_cold y keys in
  Table.print
    ~title:
      (Printf.sprintf
         "Read path: point-lookup throughput, kops/s (N=%d, %d lookups)" n
         (List.length keys))
    ~headers:[ "index"; "no cache"; "cold cache"; "hot cache"; "hot speedup" ]
    (List.map
       (fun (name, c, cold, hot, sp) ->
         [ name; Printf.sprintf "%.1f" c; Printf.sprintf "%.1f" cold;
           Printf.sprintf "%.1f" hot; Printf.sprintf "%.2fx" sp ])
       hc);

  let bt = batched y keys in
  Table.print
    ~title:"Read path: batched multi-get throughput, kops/s (cache disabled)"
    ~headers:
      ("index" :: "single lookup"
      :: List.map (fun s -> Printf.sprintf "batch %d" s) batch_sizes)
    (List.map
       (fun (name, single, per_size) ->
         name
         :: Printf.sprintf "%.1f" single
         :: List.map (fun (_, k) -> Printf.sprintf "%.1f" k) per_size)
       bt);

  let sw = sweep y keys in
  Table.print
    ~title:"Read path: hit rate and throughput vs cache budget (uniform keys)"
    ~headers:("budget" :: Common.names kinds)
    (List.map
       (fun (budget, cols) ->
         fmt_budget budget
         :: List.map
              (fun (_, k, hit) -> Printf.sprintf "%.1f (%.0f%%)" k (100. *. hit))
              cols)
       sw);

  let small_budget = 256 * 1024 in
  let sk = skew y ~budget:small_budget keys zipfian in
  Table.print
    ~title:
      (Printf.sprintf
         "Read path: uniform vs zipf(0.9) under a %s budget — kops/s (hit%%)"
         (fmt_budget small_budget))
    ~headers:[ "index"; "uniform"; "zipf 0.9" ]
    (List.map
       (fun (name, uk, uh, zk, zh) ->
         [ name;
           Printf.sprintf "%.1f (%.0f%%)" uk (100. *. uh);
           Printf.sprintf "%.1f (%.0f%%)" zk (100. *. zh) ])
       sk);

  let neg = negative y ~count:(lookup_count () / 3) in
  Table.print
    ~title:"Read path: negative lookups, kops/s — full descent vs Bloom filter"
    ~headers:[ "index"; "tree descent"; "filtered" ]
    (List.map
       (fun (name, s, f) ->
         [ name; Printf.sprintf "%.1f" s; Printf.sprintf "%.1f" f ])
       neg);

  Metrics.write ~id:"readpath"
    (Json.obj
       [ ("experiment", Json.str "readpath");
         ("records", Json.int n);
         ("lookups", Json.int (List.length keys));
         ( "hot_cold",
           Json.arr
             (List.map
                (fun (name, c, cold, hot, sp) ->
                  Json.obj
                    [ ("index", Json.str name);
                      ("control_no_cache_kops", Json.num c);
                      ("cold_kops", Json.num cold);
                      ("hot_kops", Json.num hot);
                      ("hot_speedup", Json.num sp) ])
                hc) );
         ( "batched",
           Json.arr
             (List.map
                (fun (name, single, per_size) ->
                  Json.obj
                    (("index", Json.str name)
                     :: ("single_kops", Json.num single)
                     :: List.map
                          (fun (s, k) ->
                            (Printf.sprintf "batch_%d_kops" s, Json.num k))
                          per_size))
                bt) );
         ( "hit_rate_sweep",
           Json.arr
             (List.map
                (fun (budget, cols) ->
                  Json.obj
                    [ ("budget_bytes", Json.int budget);
                      ( "indexes",
                        Json.arr
                          (List.map
                             (fun (name, k, hit) ->
                               Json.obj
                                 [ ("index", Json.str name);
                                   ("kops", Json.num k);
                                   ("hit_ratio", Json.num hit) ])
                             cols) ) ])
                sw) );
         ( "skew",
           Json.obj
             [ ("budget_bytes", Json.int small_budget);
               ( "indexes",
                 Json.arr
                   (List.map
                      (fun (name, uk, uh, zk, zh) ->
                        Json.obj
                          [ ("index", Json.str name);
                            ("uniform_kops", Json.num uk);
                            ("uniform_hit_ratio", Json.num uh);
                            ("zipf_kops", Json.num zk);
                            ("zipf_hit_ratio", Json.num zh) ])
                      sk) ) ] );
         ( "negative",
           Json.arr
             (List.map
                (fun (name, s, f) ->
                  Json.obj
                    [ ("index", Json.str name);
                      ("descent_kops", Json.num s);
                      ("filtered_kops", Json.num f) ])
                neg) ) ])
