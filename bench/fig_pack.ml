(* Extension (not a paper figure): the log-structured pack-file backend
   against the monolithic snapshot, over 10^4..10^6 keys.

   What the snapshot amortizes into one O(data) [Store.load], the pack
   splits: reopen is O(index) — decode the offset index, stat the
   segments — and every cold read is one positional, checksum-verified
   segment read.  The table reports both reopen latencies, the pack's
   worst case (index deleted, rebuilt by scanning every segment — the
   bound crash recovery pays), cold read throughput, and the bytes each
   layout keeps on disk. *)

module Store = Siri_store.Store
module Hash = Siri_crypto.Hash
module Pack = Siri_pack.Pack
module Clock = Siri_benchkit.Clock
module Table = Siri_benchkit.Table
module Json = Siri_telemetry.Telemetry.Json

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "siri_pack_bench.%d.%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf d;
  d

let sizes () = Params.pick ~quick:[ 10_000 ] ~full:[ 10_000; 100_000; 1_000_000 ]
let read_sample = 10_000

(* Deterministic leaf-like records, ~the record size the YCSB experiments
   use, so bytes-on-disk are comparable across the suite. *)
let node i =
  let bytes =
    Printf.sprintf "pack-bench-%08d:%s" i (String.make (128 + (i mod 64)) 'x')
  in
  (Hash.of_string bytes, bytes, [])

let nodes n = List.init n node

let sample_hashes n =
  let rng = Siri_core.Rng.create Params.seed in
  List.init read_sample (fun _ ->
      let h, _, _ = node (Siri_core.Rng.int rng n) in
      h)

let file_bytes path = (Unix.stat path).Unix.st_size

let dir_bytes dir =
  Array.fold_left
    (fun acc name ->
      let p = Filename.concat dir name in
      if Sys.is_directory p then acc else acc + file_bytes p)
    0 (Sys.readdir dir)

let open_pack_exn dir =
  match Pack.open_ dir with
  | Ok tr -> tr
  | Error (`Tampered msg) -> failwith ("pack bench: " ^ msg)

type row = {
  n : int;
  snap_reopen_s : float;
  snap_cold_kops : float;
  snap_bytes : int;
  pack_reopen_s : float;
  pack_rescan_s : float;
  pack_cold_kops : float;
  pack_bytes : int;
}

let measure n =
  let data = nodes n in
  let sample = sample_hashes n in
  let kops seconds = Common.kops read_sample seconds in

  (* --- snapshot: one monolithic store.<gen>-style file --- *)
  let snap_dir = fresh_dir () in
  Unix.mkdir snap_dir 0o755;
  let snap_path = Filename.concat snap_dir "store" in
  let store = Store.create () in
  List.iter
    (fun (_, bytes, children) -> ignore (Store.put store ~children bytes : Hash.t))
    data;
  Store.save store snap_path;
  let loaded, snap_reopen_s = Clock.time (fun () -> Store.load snap_path) in
  let (), snap_cold_s =
    Clock.time (fun () ->
        List.iter (fun h -> ignore (Store.get loaded h : string)) sample)
  in
  let snap_bytes = file_bytes snap_path in
  rm_rf snap_dir;

  (* --- pack: segments + offset index + manifest --- *)
  let pack_dir = fresh_dir () in
  let p, _ = open_pack_exn pack_dir in
  Pack.append p data;
  Pack.close p;
  let (p, r), pack_reopen_s = Clock.time (fun () -> open_pack_exn pack_dir) in
  assert (not r.Pack.index_rebuilt);
  let (), pack_cold_s =
    Clock.time (fun () ->
        List.iter
          (fun h -> ignore (Pack.get p h : (string * Hash.t list) option))
          sample)
  in
  Pack.close p;
  let pack_bytes = dir_bytes pack_dir in
  (* worst case: no index survives, reopen rescans every segment *)
  Sys.remove (Filename.concat pack_dir "index");
  let (p, r), pack_rescan_s = Clock.time (fun () -> open_pack_exn pack_dir) in
  assert r.Pack.index_rebuilt;
  Pack.close p;
  rm_rf pack_dir;

  { n; snap_reopen_s; snap_cold_kops = kops snap_cold_s; snap_bytes;
    pack_reopen_s; pack_rescan_s; pack_cold_kops = kops pack_cold_s;
    pack_bytes }

let run () =
  let rows = List.map measure (sizes ()) in
  let ms s = Printf.sprintf "%.1f" (s *. 1000.0) in
  let mb b = Printf.sprintf "%.1f" (float_of_int b /. 1048576.0) in
  Table.print
    ~title:
      (Printf.sprintf
         "Pack backend vs snapshot: cold reopen and %d cold reads" read_sample)
    ~headers:
      [ "N"; "snap reopen ms"; "pack reopen ms"; "pack rescan ms";
        "snap cold kops"; "pack cold kops"; "snap MB"; "pack MB" ]
    (List.map
       (fun r ->
         [ string_of_int r.n; ms r.snap_reopen_s; ms r.pack_reopen_s;
           ms r.pack_rescan_s;
           Printf.sprintf "%.1f" r.snap_cold_kops;
           Printf.sprintf "%.1f" r.pack_cold_kops;
           mb r.snap_bytes; mb r.pack_bytes ])
       rows);
  Metrics.write ~id:"pack"
    (Json.obj
       [ ("experiment", Json.str "pack");
         ("read_sample", Json.int read_sample);
         ( "rows",
           Json.arr
             (List.map
                (fun r ->
                  Json.obj
                    [ ("n", Json.int r.n);
                      ("snapshot_reopen_s", Json.num r.snap_reopen_s);
                      ("pack_reopen_s", Json.num r.pack_reopen_s);
                      ("pack_rescan_reopen_s", Json.num r.pack_rescan_s);
                      ("snapshot_cold_get_kops", Json.num r.snap_cold_kops);
                      ("pack_cold_get_kops", Json.num r.pack_cold_kops);
                      ("snapshot_bytes", Json.int r.snap_bytes);
                      ("pack_bytes", Json.int r.pack_bytes) ])
                rows) ) ])
