(* Figure 14 — single-group storage & node counts vs N (YCSB).
   Figure 15 — Wiki storage & node counts vs #versions.
   Figure 16 — Ethereum storage & node counts vs #blocks. *)

open Siri_core
module Store = Siri_store.Store
module Ycsb = Siri_workload.Ycsb
module Wiki = Siri_workload.Wiki
module Ethereum = Siri_workload.Ethereum
module Table = Siri_benchkit.Table

(* Load a dataset, apply versioned update batches, report the footprint of
   the retained versions: union of the page sets reachable from every
   committed root.  (Transient nodes of intermediate per-op states are not
   versions and do not count, exactly as a store that persists at commit
   granularity behaves.) *)
let storage_run kind ~record_bytes ~entries ~batches =
  let store = Store.create () in
  let inst = Common.make ~record_bytes kind store in
  let inst = Common.load inst entries in
  let _final, roots =
    List.fold_left
      (fun (i, roots) ops ->
        let i = i.Generic.batch ops in
        (i, i.Generic.root :: roots))
      (inst, [ inst.Generic.root ])
      batches
  in
  (Dedup.union_bytes store roots, Dedup.union_nodes store roots)

let fig14 () =
  let versions = 10 in
  let rows =
    List.map
      (fun n ->
        let y = Ycsb.create ~seed:Params.seed ~n () in
        let rng = Rng.create Params.seed in
        let batches =
          Ycsb.update_batches y ~rng ~batch:(n / 40) ~versions
        in
        let per_kind =
          List.map
            (fun kind ->
              storage_run kind ~record_bytes:266 ~entries:(Ycsb.dataset y) ~batches)
            Common.all
        in
        (n, per_kind))
      (Params.storage_sweep ())
  in
  Table.series
    ~title:
      "Figure 14a: storage usage (MB), single group, 10 update versions"
    ~x_label:"#records" ~columns:(Common.names Common.all)
    (List.map
       (fun (n, per) ->
         (string_of_int n, List.map (fun (b, _) -> Float.of_int b /. 1e6) per))
       rows);
  Table.series ~title:"Figure 14b: number of distinct nodes (x1000)"
    ~x_label:"#records" ~columns:(Common.names Common.all)
    (List.map
       (fun (n, per) ->
         (string_of_int n, List.map (fun (_, c) -> Float.of_int c /. 1e3) per))
       rows)

let versioned_storage ~title ~x_label ~record_bytes ~entries
    ~batches ~checkpoints =
  (* One store per index; capture footprint at each checkpoint (number of
     versions applied). *)
  let per_kind =
    List.map
      (fun kind ->
        let store = Store.create () in
        let inst = Common.make ~record_bytes kind store in
        let inst = ref (Common.load inst entries) in
        let roots = ref [ !inst.Generic.root ] in
        let results = ref [] in
        List.iteri
          (fun i ops ->
            inst := !inst.Generic.batch ops;
            roots := !inst.Generic.root :: !roots;
            if List.mem (i + 1) checkpoints then
              results :=
                (i + 1, Dedup.union_bytes store !roots, Dedup.union_nodes store !roots)
                :: !results)
          batches;
        (kind, List.rev !results))
      Common.all
  in
  Table.series ~title:(title ^ " — storage (MB)") ~x_label
    ~columns:(Common.names Common.all)
    (List.map
       (fun cp ->
         ( string_of_int cp,
           List.map
             (fun (_, results) ->
               let _, bytes, _ = List.find (fun (c, _, _) -> c = cp) results in
               Float.of_int bytes /. 1e6)
             per_kind ))
       checkpoints);
  Table.series ~title:(title ^ " — #nodes (x1000)") ~x_label
    ~columns:(Common.names Common.all)
    (List.map
       (fun cp ->
         ( string_of_int cp,
           List.map
             (fun (_, results) ->
               let _, _, nodes = List.find (fun (c, _, _) -> c = cp) results in
               Float.of_int nodes /. 1e3)
             per_kind ))
       checkpoints)

let fig15 () =
  let pages = Params.wiki_pages () in
  let versions = Params.wiki_versions () in
  let wiki = Wiki.create ~seed:Params.seed ~pages () in
  let rng = Rng.create Params.seed in
  let batches =
    Wiki.version_stream wiki ~rng ~versions ~edits_per_version:(Params.wiki_edits ())
  in
  let checkpoints =
    List.filter (fun c -> c <= versions)
      [ versions / 3; versions / 2; 2 * versions / 3; versions ]
    |> List.sort_uniq compare
  in
  versioned_storage
    ~title:(Printf.sprintf "Figure 15: Wiki storage growth (%d pages)" pages)
    ~x_label:"#versions" ~record_bytes:150 ~entries:(Wiki.dataset wiki) ~batches ~checkpoints

let fig16 () =
  (* Blockchain pattern: a fresh index per block, all in one store. *)
  let nblocks = Params.eth_blocks () in
  let blocks =
    Ethereum.blocks ~seed:Params.seed ~txs_per_block:Params.eth_txs_per_block
      ~count:nblocks ()
  in
  let checkpoints =
    List.sort_uniq compare [ nblocks / 3; nblocks / 2; 2 * nblocks / 3; nblocks ]
  in
  let per_kind =
    List.map
      (fun kind ->
        let store = Store.create () in
        let roots = ref [] in
        let results = ref [] in
        List.iteri
          (fun i b ->
            let inst = Common.make ~record_bytes:570 kind store in
            let inst = Common.load inst (Ethereum.entries_of_block b) in
            roots := inst.Generic.root :: !roots;
            if List.mem (i + 1) checkpoints then
              results :=
                (i + 1, Dedup.union_bytes store !roots, Dedup.union_nodes store !roots)
                :: !results)
          blocks;
        (kind, List.rev !results))
      Common.all
  in
  let cell cp f =
    List.map
      (fun (_, results) ->
        let _, bytes, nodes = List.find (fun (c, _, _) -> c = cp) results in
        f bytes nodes)
      per_kind
  in
  Table.series
    ~title:"Figure 16a: Ethereum storage (MB) vs #blocks"
    ~x_label:"#blocks" ~columns:(Common.names Common.all)
    (List.map
       (fun cp -> (string_of_int cp, cell cp (fun b _ -> Float.of_int b /. 1e6)))
       checkpoints);
  Table.series
    ~title:"Figure 16b: Ethereum #nodes (x1000) vs #blocks"
    ~x_label:"#blocks" ~columns:(Common.names Common.all)
    (List.map
       (fun cp -> (string_of_int cp, cell cp (fun _ n -> Float.of_int n /. 1e3)))
       checkpoints)

let run () =
  fig14 ();
  fig15 ();
  fig16 ()
