(* Experiment scales.

   [quick] (default) shrinks the paper's parameters so the whole suite runs
   in minutes on a laptop; [full] restores the Table 2 values (hours).  Both
   keep the *ratios* between settings, which is what the figures' shapes
   depend on. *)

type scale = Quick | Full

let scale = ref Quick
let is_full () = !scale = Full
let pick ~quick ~full = if is_full () then full else quick

(* Record-count sweep of Figures 6/14 (paper: 10k..2.56M). *)
let n_sweep () =
  pick
    ~quick:[ 4_000; 16_000; 64_000 ]
    ~full:
      [ 10_000; 20_000; 40_000; 80_000; 160_000; 320_000; 640_000;
        1_280_000; 2_560_000 ]

(* Operations measured per workload run. *)
let ops_count () = pick ~quick:2_000 ~full:10_000

(* Writes are committed in batches (Table 2 default batch size) — this is
   where POS-Tree's bottom-up batching pays off (Section 5.2). *)
let write_batch () = pick ~quick:1_000 ~full:4_000

(* MBT's bucket count is fixed for the lifetime of the index; one value per
   experiment, so N/B grows along the record sweep as in the paper. *)
let mbt_buckets () = pick ~quick:1_000 ~full:10_000

(* Zipfian skews and write mixes of Figure 6 (Table 2). *)
let thetas = [ 0.0; 0.5; 0.9 ]
let write_ratios = [ 0.0; 0.5; 1.0 ]

(* Figure 10 latency distribution setting (paper: 160k keys, 10k ops). *)
let latency_n () = pick ~quick:40_000 ~full:160_000
let latency_ops () = pick ~quick:4_000 ~full:10_000

(* Figure 1 versions sweep (paper: 100k records, 1k updates, 100..500). *)
let fig1_base () = pick ~quick:20_000 ~full:100_000
let fig1_updates () = pick ~quick:500 ~full:1_000
let fig1_versions () = pick ~quick:[ 10; 20; 30; 40; 50 ] ~full:[ 100; 200; 300; 400; 500 ]

(* Wiki dataset (paper: ~850MB x 300 versions). *)
let wiki_pages () = pick ~quick:20_000 ~full:200_000
let wiki_versions () = pick ~quick:30 ~full:300
let wiki_edits () = pick ~quick:200 ~full:2_000

(* Ethereum dataset (paper: 300k blocks; we keep the per-block shape). *)
let eth_blocks () = pick ~quick:60 ~full:1_000
let eth_txs_per_block = 100

(* Figure 17/18 collaboration settings (paper: 10 groups, 40k init,
   160k-record workloads, batch 4k). *)
let groups () = pick ~quick:3 ~full:10
let group_init () = pick ~quick:5_000 ~full:40_000
let group_workload () = pick ~quick:20_000 ~full:160_000
let default_batch () = pick ~quick:1_000 ~full:4_000
let overlap_sweep () =
  pick
    ~quick:[ 0.2; 0.4; 0.6; 0.8; 1.0 ]
    ~full:[ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]
let batch_sweep () =
  pick ~quick:[ 250; 500; 1_000; 2_000; 4_000 ]
       ~full:[ 1_000; 2_000; 4_000; 8_000; 16_000 ]

(* Figure 14 storage sweep (paper: 40k..640k). *)
let storage_sweep () =
  pick ~quick:[ 10_000; 20_000; 40_000; 80_000 ]
       ~full:[ 40_000; 80_000; 160_000; 320_000; 640_000 ]

(* Figure 8 diff sweep (paper: up to 2.5M). *)
let diff_sweep () =
  pick ~quick:[ 10_000; 20_000; 40_000 ] ~full:[ 500_000; 1_000_000; 1_500_000; 2_000_000; 2_500_000 ]

(* Table 3 parameter sweeps. *)
let table3_pos_node_sizes = [ 512; 1_024; 2_048; 4_096 ]
let table3_mbt_buckets () =
  pick ~quick:[ 500; 1_000; 2_000; 4_000 ] ~full:[ 4_000; 6_000; 8_000; 10_000 ]
let table3_n () = pick ~quick:20_000 ~full:160_000

(* Figure 21/22 system experiment. *)
let system_sweep () =
  pick ~quick:[ 4_000; 16_000; 64_000 ]
       ~full:[ 10_000; 40_000; 160_000; 640_000; 1_280_000 ]
let client_cache_nodes = 100_000

let seed = 2020
