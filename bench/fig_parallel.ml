(* Extension: domain sweep of the parallel commit pipeline.

   Bulk-load every structure through its [bulk_load] entry point at
   domains in {1, 2, 4, 8} and report wall-clock time, speedup over the
   sequential run, and the root hash — which must be byte-identical at
   every domain count (the pipeline only parallelizes the pure
   encode+hash phase; installation order is deterministic).  A second
   panel sweeps the MBT incremental [batch ?pool] path, whose level-wise
   rebuild also writes each dirty node exactly once.

   Honesty note: the sidecar records [host_domains]
   (= Domain.recommended_domain_count ()).  On a single-core host every
   width collapses to the calling domain plus idle workers, so speedups
   hover around 1x there; the determinism columns are meaningful
   regardless. *)

open Siri_core
module Store = Siri_store.Store
module Pool = Siri_parallel.Pool
module Hash = Siri_crypto.Hash
module Ycsb = Siri_workload.Ycsb
module Clock = Siri_benchkit.Clock
module Table = Siri_benchkit.Table
module Json = Siri_telemetry.Telemetry.Json

let domain_sweep = [ 1; 2; 4; 8 ]

(* Best-of-[reps] wall clock, to damp scheduler noise at bench scale. *)
let time_best ?(reps = 3) f =
  let best = ref infinity and result = ref None in
  for _ = 1 to reps do
    let t0 = Clock.now () in
    let r = f () in
    let dt = Clock.now () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (!best, Option.get !result)

let bulk_panel ~n entries =
  let kinds = [ Common.Kmpt; Common.Kmbt; Common.Kpos; Common.Kmvbt ] in
  let rows = ref [] and json_rows = ref [] in
  List.iter
    (fun kind ->
      let baseline = ref nan and root1 = ref Hash.null in
      List.iter
        (fun domains ->
          let pool = Pool.create ~domains () in
          let secs, root =
            time_best (fun () ->
                let store = Store.create () in
                let inst =
                  Common.make ~record_bytes:266 ~pool kind store
                in
                (Generic.load_sorted inst entries).Generic.root)
          in
          Pool.shutdown pool;
          if domains = 1 then begin
            baseline := secs;
            root1 := root
          end;
          let same_root = Hash.equal root !root1 in
          if not same_root then
            failwith
              (Printf.sprintf "fig_parallel: %s root diverged at %d domains"
                 (Common.name kind) domains);
          let speedup = !baseline /. secs in
          rows :=
            [ Common.name kind;
              string_of_int domains;
              Printf.sprintf "%.1f" (float_of_int n /. secs /. 1000.);
              Printf.sprintf "%.2fx" speedup;
              (if same_root then "=" else "DIVERGED") ]
            :: !rows;
          json_rows :=
            Json.obj
              [ ("structure", Json.str (Common.name kind));
                ("domains", Json.int domains);
                ("seconds", Json.num secs);
                ("speedup", Json.num speedup);
                ("root", Json.str (Hash.to_hex root));
                ("root_matches_sequential", Json.str (string_of_bool same_root))
              ]
            :: !json_rows)
        domain_sweep)
    kinds;
  Table.print
    ~title:
      (Printf.sprintf
         "Parallel commit pipeline — bulk load, %d records (root must match \
          at every width)"
         n)
    ~headers:[ "index"; "domains"; "kops/s"; "speedup"; "root" ]
    (List.rev !rows);
  List.rev !json_rows

let mbt_batch_panel ~n entries =
  let ops =
    List.filteri (fun i _ -> i mod 10 = 0) entries
    |> List.map (fun (k, _) -> Kv.Put (k, "updated-" ^ k))
  in
  let rows = ref [] and json_rows = ref [] in
  let baseline = ref nan and root1 = ref Hash.null in
  List.iter
    (fun domains ->
      let pool = Pool.create ~domains () in
      let secs, root =
        time_best (fun () ->
            let store = Store.create () in
            let cfg = Siri_mbt.Mbt.config ~capacity:1_000 ~fanout:4 () in
            let t =
              Siri_mbt.Mbt.of_entries ~pool store cfg entries
            in
            Siri_mbt.Mbt.root (Siri_mbt.Mbt.batch ~pool t ops))
      in
      Pool.shutdown pool;
      if domains = 1 then begin
        baseline := secs;
        root1 := root
      end;
      if not (Hash.equal root !root1) then
        failwith
          (Printf.sprintf "fig_parallel: MBT batch root diverged at %d domains"
             domains);
      let speedup = !baseline /. secs in
      rows :=
        [ string_of_int domains;
          Printf.sprintf "%.1f" (float_of_int (List.length ops) /. secs /. 1000.);
          Printf.sprintf "%.2fx" speedup ]
        :: !rows;
      json_rows :=
        Json.obj
          [ ("structure", Json.str "MBT-batch");
            ("domains", Json.int domains);
            ("seconds", Json.num secs);
            ("speedup", Json.num speedup);
            ("root", Json.str (Hash.to_hex root));
            ("root_matches_sequential", Json.str "true") ]
        :: !json_rows)
    domain_sweep;
  Table.print
    ~title:
      (Printf.sprintf
         "Parallel commit pipeline — MBT incremental batch (%d dirty keys of \
          %d)"
         (List.length ops) n)
    ~headers:[ "domains"; "kops/s"; "speedup" ]
    (List.rev !rows);
  List.rev !json_rows

let run () =
  let n = Params.pick ~quick:30_000 ~full:200_000 in
  let y = Ycsb.create ~seed:Params.seed ~n () in
  let entries = Ycsb.dataset y in
  let bulk = bulk_panel ~n entries in
  let batch = mbt_batch_panel ~n entries in
  Metrics.write ~id:"parallel"
    (Json.obj
       [ ("experiment", Json.str "parallel");
         ("title", Json.str "domain sweep: parallel commit pipeline");
         ("records", Json.int n);
         ("host_domains", Json.int (Domain.recommended_domain_count ()));
         ("rows", Json.arr (bulk @ batch)) ])
