(* Figure 21 — indexes integrated in the Forkbase-like engine under the
   simulated client/server deployment (client node cache, 1 GbE).
   Figure 22 — Forkbase (POS-Tree, client cache) vs Noms (Prolly Tree over
   HTTP, no cache), 4 KB nodes as in the Noms defaults. *)

open Siri_core
module Store = Siri_store.Store
module Pos = Siri_pos.Pos_tree
module Prolly = Siri_prolly.Prolly
module Remote = Siri_forkbase.Remote
module Ycsb = Siri_workload.Ycsb
module Clock = Siri_benchkit.Clock
module Table = Siri_benchkit.Table

(* Run read/write workloads against an instance behind the remote
   simulation; throughput counts compute time + simulated network time. *)
let remote_throughput ~make_inst ~cache_nodes ~network n =
  let store = Store.create () in
  let y = Ycsb.create ~seed:Params.seed ~n () in
  (* Build locally (server side), then attach the client simulation. *)
  let inst = Common.load (make_inst store n) (Ycsb.dataset y) in
  let remote = Remote.attach store ?cache_nodes:(Some cache_nodes) network in
  let count = Params.ops_count () in
  let rng = Rng.create Params.seed in
  let read_ops =
    Ycsb.operations y ~rng ~theta:0.0 ~mix:{ Ycsb.write_ratio = 0.0 } ~count
  in
  let write_ops =
    Ycsb.operations y ~rng ~theta:0.0 ~mix:{ Ycsb.write_ratio = 1.0 } ~count
  in
  Remote.reset remote;
  let r_wall, _ = Common.run_operations inst read_ops in
  let r_total = r_wall +. Remote.simulated_seconds remote in
  Remote.reset remote;
  let w_wall, _ = Common.run_operations inst write_ops in
  let w_total = w_wall +. Remote.simulated_seconds remote in
  Remote.detach store remote;
  (Common.kops count r_total, Common.kops count w_total)

let fig21 () =
  let results =
    List.map
      (fun n ->
        ( n,
          List.map
            (fun kind ->
              remote_throughput
                ~make_inst:(fun store _n ->
                  Common.make ~record_bytes:266 kind store)
                ~cache_nodes:Params.client_cache_nodes
                ~network:Remote.gigabit_lan n)
            Common.all ))
      (Params.system_sweep ())
  in
  Table.series
    ~title:"Figure 21a: Forkbase-integrated READ throughput (kops/s, simulated client/server)"
    ~x_label:"#records" ~columns:(Common.names Common.all)
    (List.map (fun (n, per) -> (string_of_int n, List.map fst per)) results);
  Table.series
    ~title:"Figure 21b: Forkbase-integrated WRITE throughput (kops/s)"
    ~x_label:"#records" ~columns:(Common.names Common.all)
    (List.map (fun (n, per) -> (string_of_int n, List.map snd per)) results)

let fig22 () =
  let forkbase store _n =
    Pos.generic (Pos.empty store (Pos.config ~leaf_target:4096 ()))
  in
  let noms store _n = Prolly.generic (Prolly.empty store) in
  let rows =
    List.map
      (fun n ->
        let fr, fw =
          remote_throughput ~make_inst:forkbase
            ~cache_nodes:Params.client_cache_nodes ~network:Remote.gigabit_lan
            n
        in
        (* Noms: same client cache, but each server round trip goes over
           HTTP, and every write re-runs the sliding-window hash over the
           internal layers (the Prolly rule). *)
        let nr, nw =
          remote_throughput ~make_inst:noms
            ~cache_nodes:Params.client_cache_nodes
            ~network:Remote.http_overhead n
        in
        (string_of_int n, [ fr; nr; fw; nw ]))
      (Params.system_sweep ())
  in
  Table.series
    ~title:"Figure 22: Forkbase (POS) vs Noms (Prolly) throughput, 4KB nodes (kops/s)"
    ~x_label:"#records"
    ~columns:[ "FB read"; "Noms read"; "FB write"; "Noms write" ]
    rows

let run () =
  fig21 ();
  fig22 ()
