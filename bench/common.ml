(* Shared harness: index factories tuned to ~1KB nodes (Section 5), bulk
   loading, workload execution and reporting helpers. *)

open Siri_core
module Store = Siri_store.Store
module Mpt = Siri_mpt.Mpt
module Mbt = Siri_mbt.Mbt
module Pos = Siri_pos.Pos_tree
module Mvbt = Siri_mvbt.Mvbt
module Prolly = Siri_prolly.Prolly
module Ycsb = Siri_workload.Ycsb
module Clock = Siri_benchkit.Clock
module Table = Siri_benchkit.Table
module Hist = Siri_benchkit.Hist
module Telemetry = Siri_telemetry.Telemetry

type kind = Kpos | Kmbt | Kmpt | Kmvbt | Kprolly

let all = [ Kpos; Kmbt; Kmpt; Kmvbt ]

let name = function
  | Kpos -> "POS-Tree"
  | Kmbt -> "MBT"
  | Kmpt -> "MPT"
  | Kmvbt -> "MVMB+-Tree"
  | Kprolly -> "Prolly"

let names kinds = List.map name kinds

(* Tune every structure to ~node_bytes nodes given the average record size,
   exactly as Section 5 does ("we tune the size of each index node to be
   approximately 1 KB").  MBT's bucket count is fixed per experiment (it
   cannot change during the index lifetime). *)
let make ?(node_bytes = 1024) ?mbt_capacity ?pool ~record_bytes kind store =
  match kind with
  | Kpos ->
      Pos.generic ?pool (Pos.empty store (Pos.config ~leaf_target:node_bytes ()))
  | Kprolly ->
      Pos.generic_named ?pool "prolly"
        (Pos.empty store (Prolly.config ~node_target:node_bytes ()))
  | Kmpt -> Mpt.generic ?pool (Mpt.empty store)
  | Kmvbt ->
      let leaf_capacity = max 2 (node_bytes / max 1 record_bytes) in
      Mvbt.generic ?pool
        (Mvbt.empty store
           (Mvbt.config ~leaf_capacity ~internal_capacity:(max 2 (node_bytes / 41)) ()))
  | Kmbt ->
      let capacity =
        match mbt_capacity with Some c -> c | None -> Params.mbt_buckets ()
      in
      Mbt.generic ?pool (Mbt.empty store (Mbt.config ~capacity ~fanout:4 ()))

let load inst entries =
  inst.Generic.batch (List.map (fun (k, v) -> Kv.Put (k, v)) entries)

(* Run a YCSB operation stream; writes are committed in batches of
   [write_batch] (Table 2), which is where POS-Tree's bottom-up batch
   building pays off.  Returns elapsed seconds and the final version. *)
let run_operations ?write_batch inst ops =
  let batch_size =
    match write_batch with Some b -> b | None -> Params.write_batch ()
  in
  let flush inst pending =
    if pending = [] then inst else inst.Generic.batch (List.rev pending)
  in
  let t0 = Clock.now () in
  let inst, pending =
    List.fold_left
      (fun (inst, pending) op ->
        match op with
        | Ycsb.Read k ->
            ignore (inst.Generic.lookup k);
            (inst, pending)
        | Ycsb.Write (k, v) ->
            let pending = Kv.Put (k, v) :: pending in
            if List.length pending >= batch_size then (flush inst pending, [])
            else (inst, pending))
      (inst, []) ops
  in
  let final = flush inst pending in
  (Clock.now () -. t0, final)

(* Same, collecting per-op latency samples. *)
let run_operations_hist inst ops =
  let hist = Hist.create () in
  let final =
    List.fold_left
      (fun inst op ->
        let t0 = Clock.now () in
        let inst =
          match op with
          | Ycsb.Read k ->
              ignore (inst.Generic.lookup k);
              inst
          | Ycsb.Write (k, v) -> inst.Generic.batch [ Kv.Put (k, v) ]
        in
        Hist.add hist (Clock.now () -. t0);
        inst)
      inst ops
  in
  (hist, final)

(* Telemetry-instrumented replay: instead of timing each op by hand, attach
   a wall-clock sink to the instance's store and let the per-index probes
   record latencies ([<index>.lookup], [<index>.batch]) and node I/O
   counters ([store.get], [store.put], …).  The sink is what the latency
   figures print and what the BENCH_*.json sidecars serialize. *)
let run_operations_sink inst ops =
  let sink = Telemetry.create ~clock:Clock.now () in
  let store = inst.Generic.store in
  Store.set_sink store sink;
  let final =
    List.fold_left
      (fun inst op ->
        match op with
        | Ycsb.Read k ->
            ignore (inst.Generic.lookup k);
            inst
        | Ycsb.Write (k, v) -> inst.Generic.batch [ Kv.Put (k, v) ])
      inst ops
  in
  Store.set_sink store Telemetry.null;
  (sink, final)

let kops ops seconds = Clock.throughput ~ops ~seconds /. 1000.0

(* A per-(kind, N) cache of loaded YCSB instances so that the many panels of
   Figure 6/10 don't rebuild the same index. *)
let ycsb_cache : (kind * int, Generic.t) Hashtbl.t = Hashtbl.create 16

let ycsb_instance kind n =
  match Hashtbl.find_opt ycsb_cache (kind, n) with
  | Some inst -> inst
  | None ->
      let store = Store.create () in
      let y = Ycsb.create ~seed:Params.seed ~n () in
      let inst = load (make ~record_bytes:266 kind store) (Ycsb.dataset y) in
      Hashtbl.replace ycsb_cache (kind, n) inst;
      inst

let latency_buckets_table ~title hists =
  (* hists : (structure name, Hist.t) list — print summary stats, the
     machine-readable form of the paper's latency histograms. *)
  Table.print ~title
    ~headers:[ "index"; "n"; "mean us"; "p50 us"; "p90 us"; "p99 us"; "max us" ]
    (List.map
       (fun (name, h) ->
         let us x = Printf.sprintf "%.1f" (x *. 1e6) in
         [ name;
           string_of_int (Hist.count h);
           us (Hist.mean h);
           us (Hist.percentile h 0.5);
           us (Hist.percentile h 0.9);
           us (Hist.percentile h 0.99);
           us (Hist.max_value h) ])
       hists)

(* Latency table from telemetry sinks: [entries] pairs each structure's
   Generic name with the sink captured by {!run_operations_sink}; [op]
   selects the probe histogram ("lookup" for read streams, "batch" for
   write streams).  Also emits the BENCH_<id>.json sidecar. *)
let telemetry_latency_table ~id ~title ~op entries =
  Table.print ~title
    ~headers:[ "index"; "n"; "mean us"; "p50 us"; "p95 us"; "p99 us"; "max us" ]
    (List.map
       (fun (name, sink) ->
         let us x = Printf.sprintf "%.1f" (x *. 1e6) in
         match Telemetry.histogram sink (name ^ "." ^ op) with
         | None -> [ name; "0"; "-"; "-"; "-"; "-"; "-" ]
         | Some h ->
             [ name;
               string_of_int (Telemetry.Histo.count h);
               us (Telemetry.Histo.mean h);
               us (Telemetry.Histo.p50 h);
               us (Telemetry.Histo.p95 h);
               us (Telemetry.Histo.p99 h);
               us (Telemetry.Histo.max_value h) ])
       entries);
  Metrics.sinks ~id ~title entries
