(* Figure 6 — YCSB throughput across skew (θ) × write ratio × N.
   Figure 7a — Wiki throughput (read / write).
   Figure 7b — Ethereum throughput: per-block indexes behind a block list. *)

open Siri_core
module Store = Siri_store.Store
module Ycsb = Siri_workload.Ycsb
module Wiki = Siri_workload.Wiki
module Ethereum = Siri_workload.Ethereum
module Clock = Siri_benchkit.Clock
module Table = Siri_benchkit.Table

let fig6 () =
  let count = Params.ops_count () in
  List.iter
    (fun theta ->
      List.iter
        (fun write_ratio ->
          let rows =
            List.map
              (fun n ->
                let y = Ycsb.create ~seed:Params.seed ~n () in
                let cols =
                  List.map
                    (fun kind ->
                      let inst = Common.ycsb_instance kind n in
                      let rng = Rng.create (Params.seed + n) in
                      let ops =
                        Ycsb.operations y ~rng ~theta
                          ~mix:{ Ycsb.write_ratio } ~count
                      in
                      let seconds, _ = Common.run_operations inst ops in
                      Common.kops count seconds)
                    Common.all
                in
                (string_of_int n, cols))
              (Params.n_sweep ())
          in
          let title =
            Printf.sprintf
              "Figure 6: YCSB throughput (kops/s), theta=%.1f write ratio=%.1f"
              theta write_ratio
          in
          Table.series ~title ~x_label:"#records"
            ~columns:(Common.names Common.all) rows;
          Metrics.series
            ~id:
              (Printf.sprintf "fig6_theta%02d_w%02d"
                 (int_of_float (theta *. 10.))
                 (int_of_float (write_ratio *. 10.)))
            ~title ~x_label:"#records"
            ~columns:(Common.names Common.all) rows)
        Params.write_ratios)
    Params.thetas

let fig7a () =
  let pages = Params.wiki_pages () in
  let wiki = Wiki.create ~seed:Params.seed ~pages () in
  let count = Params.ops_count () in
  let record_bytes = 150 in
  let rows =
    List.map
      (fun kind ->
        let store = Store.create () in
        let inst =
          Common.load
            (Common.make ~record_bytes kind store)
            (Wiki.dataset wiki)
        in
        let rng = Rng.create Params.seed in
        let read_ops =
          List.init count (fun _ -> Ycsb.Read (Wiki.key wiki (Rng.int rng pages)))
        in
        let write_ops =
          List.init count (fun _ ->
              let id = Rng.int rng pages in
              Ycsb.Write (Wiki.key wiki id, Wiki.value wiki ~revision:1 id))
        in
        let rs, _ = Common.run_operations inst read_ops in
        let ws, _ = Common.run_operations inst write_ops in
        [ Common.name kind;
          Table.fmt_float (Common.kops count rs);
          Table.fmt_float (Common.kops count ws) ])
      Common.all
  in
  Table.print
    ~title:
      (Printf.sprintf "Figure 7a: Wiki throughput (kops/s), %d pages" pages)
    ~headers:[ "index"; "read"; "write" ]
    rows

(* The blockchain storage pattern: one index per block, a block list scanned
   from the head on reads, versions at block granularity. *)
let fig7b () =
  let nblocks = Params.eth_blocks () in
  let blocks =
    Ethereum.blocks ~seed:Params.seed ~txs_per_block:Params.eth_txs_per_block
      ~count:nblocks ()
  in
  let count = Params.ops_count () in
  let rows =
    List.map
      (fun kind ->
        let store = Store.create () in
        (* Write workload: append each block as a fresh index built from
           scratch (batch loading — where POS-Tree's bottom-up build
           shines). *)
        let t0 = Clock.now () in
        let chain =
          List.map
            (fun b ->
              let entries = Ethereum.entries_of_block b in
              let inst =
                Common.make ~record_bytes:570
                  kind store
              in
              Common.load inst entries)
            blocks
        in
        let write_seconds = Clock.now () -. t0 in
        let writes = nblocks * Params.eth_txs_per_block in
        (* Read workload: pick random transactions; scan the block list from
           the head, probing each per-block index. *)
        let rng = Rng.create Params.seed in
        let block_arr = Array.of_list blocks in
        let chain_rev = List.rev chain in
        let t0 = Clock.now () in
        for _ = 1 to count do
          let b = Rng.int rng nblocks in
          let txs = block_arr.(b).Ethereum.txs in
          let tx = List.nth txs (Rng.int rng (List.length txs)) in
          let rec scan = function
            | [] -> ()
            | inst :: rest -> (
                match inst.Generic.lookup tx.Ethereum.hash_hex with
                | Some _ -> ()
                | None -> scan rest)
          in
          scan chain_rev
        done;
        let read_seconds = Clock.now () -. t0 in
        [ Common.name kind;
          Table.fmt_float (Common.kops count read_seconds);
          Table.fmt_float (Common.kops writes write_seconds) ])
      Common.all
  in
  Table.print
    ~title:
      (Printf.sprintf
         "Figure 7b: Ethereum throughput (kops/s), %d blocks x %d txs" nblocks
         Params.eth_txs_per_block)
    ~headers:[ "index"; "read"; "write" ]
    rows

(* Ablation: the effect of the write batch size on throughput — the design
   choice behind POS-Tree's Figure 6 write advantage.  Per-op commits hit
   every structure's full path-copy cost; batches amortise it, most of all
   for the streaming bottom-up POS-Tree builder. *)
let batch_throughput () =
  let n = Params.pick ~quick:16_000 ~full:160_000 in
  let count = Params.ops_count () in
  let y = Ycsb.create ~seed:Params.seed ~n () in
  let rows =
    List.map
      (fun batch ->
        let cols =
          List.map
            (fun kind ->
              let inst = Common.ycsb_instance kind n in
              let rng = Rng.create Params.seed in
              let ops =
                Ycsb.operations y ~rng ~theta:0.0
                  ~mix:{ Ycsb.write_ratio = 1.0 } ~count
              in
              let seconds, _ = Common.run_operations ~write_batch:batch inst ops in
              Common.kops count seconds)
            Common.all
        in
        (string_of_int batch, cols))
      (Params.pick ~quick:[ 1; 10; 100; 1_000 ] ~full:[ 1; 10; 100; 1_000; 4_000; 16_000 ])
  in
  let title =
    Printf.sprintf
      "Ablation: write throughput (kops/s) vs commit batch size (N=%d)" n
  in
  Table.series ~title ~x_label:"batch" ~columns:(Common.names Common.all) rows;
  Metrics.series ~id:"batch_throughput" ~title ~x_label:"batch"
    ~columns:(Common.names Common.all) rows

let run () =
  fig6 ();
  fig7a ();
  fig7b ()
