(* Figure 8  — diff latency between two independently loaded versions.
   Figure 9  — traversed tree height distribution.
   Figure 10 — YCSB latency distributions (read/write × balanced/skewed).
   Figure 11 — Wiki latency distributions.
   Figure 12 — Ethereum latency distributions.
   Figure 13 — MBT lookup breakdown: bucket load vs scan. *)

open Siri_core
module Store = Siri_store.Store
module Mbt = Siri_mbt.Mbt
module Ycsb = Siri_workload.Ycsb
module Wiki = Siri_workload.Wiki
module Ethereum = Siri_workload.Ethereum
module Clock = Siri_benchkit.Clock
module Table = Siri_benchkit.Table
module Hist = Siri_benchkit.Hist

let fig8 () =
  let rows =
    List.map
      (fun n ->
        let y = Ycsb.create ~seed:Params.seed ~n () in
        let delta = max 100 (n / 100) in
        let cols =
          List.map
            (fun kind ->
              let store = Store.create () in
              let rng = Rng.create Params.seed in
              let entries = Ycsb.dataset y in
              (* Two versions loaded independently in different random
                 orders: SIRI structures still align, the baseline does
                 not. *)
              let v1 =
                Common.load
                  (Common.make ~record_bytes:266 kind store)
                  (Rng.shuffle rng entries)
              in
              let changed =
                List.init delta (fun i ->
                    (Ycsb.key y (i * 7 mod n), Ycsb.value y ~version:1 (i * 7 mod n)))
              in
              let v2_entries =
                Kv.apply_sorted
                  (List.sort (fun (a, _) (b, _) -> String.compare a b) entries)
                  (Kv.sort_ops (List.map (fun (k, v) -> Kv.Put (k, v)) changed))
              in
              let v2 =
                Common.load
                  (Common.make ~record_bytes:266 kind store)
                  (Rng.shuffle rng v2_entries)
              in
              let (_ : Kv.diff_entry list), seconds =
                Clock.time (fun () -> v1.Generic.diff v2.Generic.root)
              in
              seconds)
            Common.all
        in
        (string_of_int n, cols))
      (Params.diff_sweep ())
  in
  let title =
    "Figure 8: diff latency (s) between two independently loaded versions"
  in
  Table.series ~title ~x_label:"#records" ~columns:(Common.names Common.all)
    rows;
  Metrics.series ~id:"fig8" ~title ~x_label:"#records"
    ~columns:(Common.names Common.all) rows

let fig9 () =
  let n = Params.latency_n () in
  let y = Ycsb.create ~seed:Params.seed ~n () in
  let samples = 2_000 in
  let counts_for kind =
    let inst = Common.ycsb_instance kind n in
    let rng = Rng.create Params.seed in
    let tbl = Hashtbl.create 8 in
    for _ = 1 to samples do
      let len = inst.Generic.path_length (Ycsb.key y (Rng.int rng n)) in
      Hashtbl.replace tbl len (1 + Option.value ~default:0 (Hashtbl.find_opt tbl len))
    done;
    tbl
  in
  let per_kind = List.map (fun k -> (k, counts_for k)) Common.all in
  let heights =
    List.sort_uniq compare
      (List.concat_map
         (fun (_, tbl) -> Hashtbl.fold (fun h _ acc -> h :: acc) tbl [])
         per_kind)
  in
  Table.print
    ~title:
      (Printf.sprintf "Figure 9: traversed tree height distribution (N=%d)" n)
    ~headers:("height" :: Common.names Common.all)
    (List.map
       (fun h ->
         string_of_int h
         :: List.map
              (fun (_, tbl) ->
                string_of_int (Option.value ~default:0 (Hashtbl.find_opt tbl h)))
              per_kind)
       heights)

let fig10 () =
  let n = Params.latency_n () in
  let count = Params.latency_ops () in
  let y = Ycsb.create ~seed:Params.seed ~n () in
  List.iter
    (fun (label, theta) ->
      List.iter
        (fun (wlabel, write_ratio, op) ->
          let sinks =
            List.map
              (fun kind ->
                let inst = Common.ycsb_instance kind n in
                let rng = Rng.create Params.seed in
                let ops =
                  Ycsb.operations y ~rng ~theta ~mix:{ Ycsb.write_ratio } ~count
                in
                let sink, _ = Common.run_operations_sink inst ops in
                (inst.Generic.name, sink))
              Common.all
          in
          Common.telemetry_latency_table
            ~id:
              (Printf.sprintf "fig10_%s_theta%02d" wlabel
                 (int_of_float (theta *. 10.)))
            ~title:
              (Printf.sprintf "Figure 10: YCSB %s latency, %s (N=%d)" wlabel
                 label n)
            ~op sinks)
        [ ("read", 0.0, "lookup"); ("write", 1.0, "batch") ])
    [ ("balanced (theta=0)", 0.0); ("skewed (theta=0.9)", 0.9) ]

let generic_latency ~id ~title ~record_bytes ~n ~key_of ~value_of =
  let count = Params.latency_ops () in
  let sinks_read, sinks_write =
    List.split
      (List.map
         (fun kind ->
           let store = Store.create () in
           let inst =
             Common.load
               (Common.make ~record_bytes kind store)
               (List.init n (fun id -> (key_of id, value_of ~fresh:false id)))
           in
           let rng = Rng.create Params.seed in
           let reads =
             List.init count (fun _ -> Ycsb.Read (key_of (Rng.int rng n)))
           in
           let writes =
             List.init count (fun _ ->
                 let id = Rng.int rng n in
                 Ycsb.Write (key_of id, value_of ~fresh:true id))
           in
           let sr, _ = Common.run_operations_sink inst reads in
           let sw, _ = Common.run_operations_sink inst writes in
           ((inst.Generic.name, sr), (inst.Generic.name, sw)))
         Common.all)
  in
  Common.telemetry_latency_table ~id:(id ^ "_read") ~op:"lookup"
    ~title:(title ^ " — read") sinks_read;
  Common.telemetry_latency_table ~id:(id ^ "_write") ~op:"batch"
    ~title:(title ^ " — write") sinks_write

let fig11 () =
  let pages = Params.wiki_pages () in
  let wiki = Wiki.create ~seed:Params.seed ~pages () in
  generic_latency ~id:"fig11"
    ~title:(Printf.sprintf "Figure 11: Wiki latency (%d pages)" pages)
    ~record_bytes:150 ~n:pages
    ~key_of:(Wiki.key wiki)
    ~value_of:(fun ~fresh id ->
      Wiki.value wiki ~revision:(if fresh then 1 else 0) id)

let fig12 () =
  let ntx = Params.eth_blocks () * Params.eth_txs_per_block in
  let tx i = Ethereum.transaction ~seed:Params.seed i in
  generic_latency ~id:"fig12"
    ~title:(Printf.sprintf "Figure 12: Ethereum latency (%d txs)" ntx)
    ~record_bytes:570 ~n:ntx
    ~key_of:(fun i -> (tx i).Ethereum.hash_hex)
    ~value_of:(fun ~fresh i ->
      if fresh then (tx (i + ntx)).Ethereum.rlp else (tx i).Ethereum.rlp)

let fig13 () =
  let sweep =
    Params.pick
      ~quick:[ 10_000; 40_000; 160_000 ]
      ~full:[ 10_000; 40_000; 160_000; 640_000; 1_600_000 ]
  in
  let probes = 2_000 in
  let rows =
    List.map
      (fun n ->
        let y = Ycsb.create ~seed:Params.seed ~n () in
        let store = Store.create () in
        (* Fixed bucket count: the bucket (hence load time) grows with N,
           the traversal does not — the Figure 13 effect. *)
        let cfg = Mbt.config ~capacity:1_024 ~fanout:4 () in
        let t =
          Mbt.batch (Mbt.empty store cfg)
            (List.map (fun (k, v) -> Kv.Put (k, v)) (Ycsb.dataset y))
        in
        let rng = Rng.create Params.seed in
        let keys = List.init probes (fun _ -> Ycsb.key y (Rng.int rng n)) in
        let load_s =
          Clock.time_unit (fun () ->
              List.iter (fun k -> ignore (Mbt.load_bucket t k)) keys)
        in
        let buckets = List.map (Mbt.load_bucket t) keys in
        let scan_s =
          Clock.time_unit (fun () ->
              List.iter2 (fun b k -> ignore (Mbt.scan_bucket b k)) buckets keys)
        in
        ( string_of_int n,
          [ load_s *. 1000.0; scan_s *. 1000.0 ] ))
      sweep
  in
  Table.series
    ~title:
      (Printf.sprintf
         "Figure 13: MBT lookup breakdown over %d probes (fixed 1024 buckets)"
         probes)
    ~x_label:"#records"
    ~columns:[ "load ms"; "scan ms" ]
    rows

let run () =
  fig8 ();
  fig9 ();
  fig10 ();
  fig11 ();
  fig12 ();
  fig13 ()
