(* Extension experiment: batched multiproofs vs k single proofs.

   A light client that wants k records (or wants to confirm k keys are
   absent) can download k independent Merkle proofs or one multiproof whose
   node set is the deduplicated union of the k paths.  The shared prefix
   near the root — and, for clustered key sets, deep into the tree — is
   what witness compression reclaims.  This experiment measures encoded
   multiproof bytes and verification time against the k-single-proof
   baseline for batch sizes 1/16/256, with an all-members key set and a
   half-absent mix, across every structure. *)

open Siri_core
module Ycsb = Siri_workload.Ycsb
module Table = Siri_benchkit.Table
module Clock = Siri_benchkit.Clock

let batch_sizes = [ 1; 16; 256 ]

(* Key sets: [members] samples present keys; [mixed] alternates present
   keys with absent probes (suffix no YCSB key carries); [clustered] takes
   k consecutive keys in sorted order — the shared-prefix case where
   witness compression bites hardest, since sibling keys reuse whole
   root-to-leaf paths, not just the top of the tree. *)
let member_keys ~sorted:_ y n rng k =
  List.init k (fun _ -> Ycsb.key y (Rng.int rng n))

let mixed_keys ~sorted:_ y n rng k =
  List.init k (fun i ->
      if i mod 2 = 0 then Ycsb.key y (Rng.int rng n)
      else Ycsb.key y (Rng.int rng n) ^ "#absent")

let clustered_keys ~sorted _y n rng k =
  let start = Rng.int rng (max 1 (n - k)) in
  List.init (min k n) (fun i -> sorted.(start + i))

let kinds = Common.all @ [ Common.Kprolly ]

let run () =
  let n = Params.pick ~quick:20_000 ~full:200_000 in
  let repeats = Params.pick ~quick:20 ~full:100 in
  let y = Ycsb.create ~seed:Params.seed ~n () in
  let sorted =
    List.sort String.compare (List.init n (Ycsb.key y)) |> Array.of_list
  in
  let rows =
    List.concat_map
      (fun kind ->
        let inst = Common.ycsb_instance kind n in
        let root = inst.Generic.root in
        List.concat_map
          (fun k ->
            List.map
              (fun (mix, pick_keys) ->
                let rng = Rng.create Params.seed in
                let keys = pick_keys ~sorted y n rng k in
                let mp = Generic.prove_many inst keys in
                let encoded = Multiproof.encode mp in
                assert (Generic.verify_many inst ~root mp);
                let singles =
                  List.map (fun key -> inst.Generic.prove key)
                    (Multiproof.keys mp)
                in
                List.iter
                  (fun p -> assert (inst.Generic.verify ~root p))
                  singles;
                let single_bytes =
                  List.fold_left
                    (fun acc p -> acc + Proof.size_bytes p)
                    0 singles
                in
                let mp_verify =
                  Clock.time_unit (fun () ->
                      for _ = 1 to repeats do
                        assert (Generic.verify_many inst ~root mp)
                      done)
                  /. float_of_int repeats
                in
                let single_verify =
                  Clock.time_unit (fun () ->
                      for _ = 1 to repeats do
                        List.iter
                          (fun p -> assert (inst.Generic.verify ~root p))
                          singles
                      done)
                  /. float_of_int repeats
                in
                ( Printf.sprintf "%s k=%d %s" (Common.name kind) k mix,
                  [ float_of_int (String.length encoded) /. 1024.;
                    float_of_int single_bytes /. 1024.;
                    (if single_bytes = 0 then 100.
                     else
                       100.
                       *. float_of_int (String.length encoded)
                       /. float_of_int single_bytes);
                    mp_verify *. 1e6;
                    single_verify *. 1e6 ] ))
              [ ("members", member_keys); ("mixed", mixed_keys);
                ("clustered", clustered_keys) ])
          batch_sizes)
      kinds
  in
  let title =
    Printf.sprintf
      "Multiproofs (N=%d): encoded bytes and verify time vs k single proofs"
      n
  in
  let columns =
    [ "multiproof KB"; "singles KB"; "% of singles"; "mp verify us";
      "singles verify us" ]
  in
  Table.series ~title ~x_label:"structure / batch / mix" ~columns rows;
  Metrics.series ~id:"proof" ~title ~x_label:"structure / batch / mix"
    ~columns rows;
  (* The headline claim — a 256-key multiproof with shared prefixes under
     half the bytes of 256 single proofs — must hold on the clustered mix
     for every tree-structured index.  MBT is exempt: it hash-partitions
     keys into buckets, so key locality buys no path sharing there. *)
  List.iter
    (fun kind ->
      if kind <> Common.Kmbt then
        let label =
          Printf.sprintf "%s k=256 clustered" (Common.name kind)
        in
        match List.assoc_opt label rows with
        | Some [ _; _; pct; _; _ ] when pct >= 50. ->
            failwith
              (Printf.sprintf "%s: 256-key multiproof is %.0f%% of singles"
                 label pct)
        | _ -> ())
    kinds
