(* Figure 1 — storage and transmission time, raw vs deduplicated, as the
   number of retained versions grows.
   Figure 2 — order-dependence of the B+-tree baseline. *)

open Siri_core
module Store = Siri_store.Store
module Pos = Siri_pos.Pos_tree
module Mvbt = Siri_mvbt.Mvbt
module Ycsb = Siri_workload.Ycsb
module Table = Siri_benchkit.Table
module Hash = Siri_crypto.Hash

(* 1 Gb Ethernet, as in the paper's footnote. *)
let wire_bytes_per_second = 125_000_000.0

let fig1 () =
  let base = Params.fig1_base () in
  let updates = Params.fig1_updates () in
  let checkpoints = Params.fig1_versions () in
  let max_versions = List.fold_left max 0 checkpoints in
  let store = Store.create () in
  let y = Ycsb.create ~seed:Params.seed ~n:base () in
  let cfg = Pos.config ~leaf_target:1024 () in
  let v0 = Pos.of_entries store cfg (Ycsb.dataset y) in
  let rng = Rng.create Params.seed in
  let batches = Ycsb.update_batches y ~rng ~batch:updates ~versions:max_versions in
  (* Materialise every version, recording roots. *)
  let _, roots_rev =
    List.fold_left
      (fun (v, roots) ops ->
        let v' = Pos.batch v ops in
        (v', Pos.root v' :: roots))
      (v0, [ Pos.root v0 ])
      batches
  in
  let roots = Array.of_list (List.rev roots_rev) in
  let rows =
    List.map
      (fun k ->
        let subset = Array.to_list (Array.sub roots 0 (k + 1)) in
        let raw = Dedup.sum_bytes store subset in
        let dedup = Dedup.union_bytes store subset in
        ( string_of_int k,
          [ Float.of_int raw /. 1e9;
            Float.of_int dedup /. 1e9;
            Float.of_int raw /. wire_bytes_per_second;
            Float.of_int dedup /. wire_bytes_per_second ] ))
      checkpoints
  in
  Table.series
    ~title:
      (Printf.sprintf
         "Figure 1: storage & transfer time vs #versions (%d records, %d \
          updates/version)"
         base updates)
    ~x_label:"#versions"
    ~columns:
      [ "raw GB"; "dedup GB"; "raw xfer s"; "dedup xfer s" ]
    rows

let fig2 () =
  let store = Store.create () in
  let cfg = Mvbt.config ~leaf_capacity:4 ~internal_capacity:5 () in
  let keys = List.init 24 (fun i -> Printf.sprintf "%02d" (i + 1)) in
  let build order =
    List.fold_left (fun t k -> Mvbt.insert t k ("v" ^ k)) (Mvbt.empty store cfg) order
  in
  let asc = build keys and desc = build (List.rev keys) in
  let pos_cfg = Pos.config ~leaf_target:64 () in
  let pos_of order =
    List.fold_left
      (fun t k -> Pos.insert t k ("v" ^ k))
      (Pos.empty store pos_cfg) order
  in
  let p_asc = pos_of keys and p_desc = pos_of (List.rev keys) in
  Table.print
    ~title:"Figure 2: same 24 records, ascending vs descending insertion"
    ~headers:[ "index"; "order"; "root hash" ]
    [ [ "MVMB+-Tree"; "ascending"; Hash.short (Mvbt.root asc) ];
      [ "MVMB+-Tree"; "descending"; Hash.short (Mvbt.root desc) ];
      [ "POS-Tree"; "ascending"; Hash.short (Pos.root p_asc) ];
      [ "POS-Tree"; "descending"; Hash.short (Pos.root p_desc) ] ];
  Printf.printf "B+-tree roots %s; POS-Tree roots %s (structural invariance)\n"
    (if Hash.equal (Mvbt.root asc) (Mvbt.root desc) then
       "IDENTICAL (unexpected)"
     else "DIFFER (Figure 2 reproduced)")
    (if Hash.equal (Pos.root p_asc) (Pos.root p_desc) then "identical"
     else "DIFFER (unexpected)")

let run () =
  fig1 ();
  fig2 ()
