(* Extension experiment: the bandwidth cost of tamper evidence — point
   proof and range proof sizes across structures and dataset sizes.  This
   quantifies the "proof of data" of Section 2.3: what a light client must
   download to verify one record (or a whole interval) against a trusted
   root digest. *)

open Siri_core
module Store = Siri_store.Store
module Pos = Siri_pos.Pos_tree
module Mvbt = Siri_mvbt.Mvbt
module Ycsb = Siri_workload.Ycsb
module Table = Siri_benchkit.Table

let point_proofs () =
  let probes = 200 in
  let rows =
    List.map
      (fun n ->
        let y = Ycsb.create ~seed:Params.seed ~n () in
        let cols =
          List.map
            (fun kind ->
              let inst = Common.ycsb_instance kind n in
              let rng = Rng.create Params.seed in
              let total = ref 0 in
              for _ = 1 to probes do
                let p = inst.Generic.prove (Ycsb.key y (Rng.int rng n)) in
                total := !total + Proof.size_bytes p
              done;
              Float.of_int !total /. Float.of_int probes)
            Common.all
        in
        (string_of_int n, cols))
      (Params.n_sweep ())
  in
  Table.series ~title:"Proof sizes: mean point-proof bytes vs N"
    ~x_label:"#records" ~columns:(Common.names Common.all) rows

let range_proofs () =
  let n = Params.pick ~quick:20_000 ~full:160_000 in
  let y = Ycsb.create ~seed:Params.seed ~n () in
  let sorted_keys =
    List.sort String.compare (List.init n (Ycsb.key y)) |> Array.of_list
  in
  let store = Store.create () in
  let pos = Pos.of_entries store (Pos.config ~leaf_target:1024 ()) (Ycsb.dataset y) in
  let mvbt =
    Mvbt.of_entries store (Mvbt.config ()) (Ycsb.dataset y)
  in
  let widths = [ 10; 100; 1_000; 10_000 ] in
  let rows =
    List.map
      (fun width ->
        let lo = Some sorted_keys.(n / 3) in
        let hi = Some sorted_keys.(min (n - 1) ((n / 3) + width - 1)) in
        let p_pos = Pos.prove_range pos ~lo ~hi in
        let p_mvbt = Mvbt.prove_range mvbt ~lo ~hi in
        assert (Pos.verify_range_proof ~root:(Pos.root pos) p_pos);
        assert (Mvbt.verify_range_proof ~root:(Mvbt.root mvbt) p_mvbt);
        ( string_of_int width,
          [ Float.of_int (Range_proof.size_bytes p_pos) /. 1024.0;
            Float.of_int (List.length p_pos.Range_proof.entries);
            Float.of_int (Range_proof.size_bytes p_mvbt) /. 1024.0;
            Float.of_int (List.length p_mvbt.Range_proof.entries) ] ))
      widths
  in
  Table.series
    ~title:
      (Printf.sprintf
         "Range-proof sizes (N=%d): proof KB and records covered vs range \
          width"
         n)
    ~x_label:"range width"
    ~columns:[ "POS KB"; "POS records"; "MVMB+ KB"; "MVMB+ records" ]
    rows

let run () =
  point_proofs ();
  range_proofs ()
