(* Extension (not a paper figure): durability cost of the write-ahead
   commit journal.  Measures journaled commit throughput with and without
   fsync, the journal bytes produced, and the recovery replay rate when the
   directory is reopened cold.  The fsync column is the price of the "no
   acknowledged commit is lost" guarantee; the nosync column bounds the pure
   journaling overhead (encode + checksum + write). *)

open Siri_core
module Store = Siri_store.Store
module Engine = Siri_forkbase.Engine
module Durable = Siri_wal.Durable
module Wal = Siri_wal.Wal
module Clock = Siri_benchkit.Clock
module Table = Siri_benchkit.Table

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "siri_wal_bench.%d.%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf d;
  d

let fail_error e = failwith (Format.asprintf "%a" Wal.pp_error e)

(* Commit [commits] batches of [batch] ops through a durable engine and
   return (commits/s, journal bytes); the directory is left populated so the
   caller can measure recovery. *)
let append_run ~sync ~commits ~batch kind dir =
  let empty_index = Common.make ~record_bytes:128 kind (Store.create ()) in
  match Durable.open_ ~sync ~dir ~empty_index () with
  | Error e -> fail_error e
  | Ok t ->
      let rng = Rng.create Params.seed in
      let t0 = Clock.now () in
      for i = 1 to commits do
        let ops =
          List.init batch (fun j ->
              Kv.Put
                ( Printf.sprintf "key%06d" (Rng.int rng 100_000),
                  Printf.sprintf "value-%d-%d" i j ))
        in
        ignore
          (Durable.commit t ~branch:"master"
             ~message:(Printf.sprintf "c%d" i)
             ops
            : Engine.commit)
      done;
      let seconds = Clock.now () -. t0 in
      let bytes = Durable.journal_bytes t in
      Durable.close t;
      (float_of_int commits /. seconds, bytes)

(* Reopen the populated directory cold and return records replayed per
   second (journal scan + checksum verification + engine re-execution). *)
let recovery_run kind dir =
  let empty_index = Common.make ~record_bytes:128 kind (Store.create ()) in
  let t0 = Clock.now () in
  match Durable.open_ ~dir ~empty_index () with
  | Error e -> fail_error e
  | Ok t ->
      let seconds = Clock.now () -. t0 in
      let r = Durable.recovery t in
      Durable.close t;
      float_of_int r.Durable.replayed /. seconds

let run () =
  let commits = if Params.is_full () then 2000 else 200 in
  let batch = 20 in
  let rows =
    List.map
      (fun kind ->
        let dir_sync = fresh_dir () and dir_nosync = fresh_dir () in
        let sync_rate, _ =
          append_run ~sync:true ~commits ~batch kind dir_sync
        in
        let nosync_rate, bytes =
          append_run ~sync:false ~commits ~batch kind dir_nosync
        in
        let replay_rate = recovery_run kind dir_nosync in
        rm_rf dir_sync;
        rm_rf dir_nosync;
        [ Common.name kind;
          Printf.sprintf "%.0f" sync_rate;
          Printf.sprintf "%.0f" nosync_rate;
          Printf.sprintf "%.1f" (float_of_int bytes /. 1024.0);
          Printf.sprintf "%.0f" replay_rate ])
      Common.all
  in
  Table.print
    ~title:
      (Printf.sprintf
         "WAL durability: %d commits x %d ops (journaled engine)" commits
         batch)
    ~headers:
      [ "index"; "fsync commit/s"; "nosync commit/s"; "journal KB";
        "replay rec/s" ]
    rows
