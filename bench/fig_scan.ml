(* Extension (not a paper figure): routed range scans + online reshard.

   The ordered-read claim of the sharding design, measured: under the
   {e range} scheme a window that fits inside one shard's key interval
   streams from exactly one shard — the figure asserts the telemetry
   counter ([shard.scan.fanout] / [shard.scan] = 1.0), it does not trust
   its own bookkeeping — while the {e hash} scheme scatters every window
   and must k-way-merge all N per-shard streams at the same selectivity.
   The throughput ratio between the two is the routing payoff.

   The second half times the online reshard 4 -> 8 on the same dataset:
   every live entry streams out of the old shards through the scan path
   into per-shard bulk loads, and the swap publishes atomically via the
   manifest generation bump.

   Keys carry a uniform two-byte prefix (Fibonacci-scrambled), so the
   range scheme is balanced and its advantage here is routing, not
   skew. *)

open Siri_core
module Store = Siri_store.Store
module Telemetry = Siri_telemetry.Telemetry
module Partition = Siri_shard.Partition
module Sharded = Siri_shard.Sharded
module Wal = Siri_wal.Wal
module Clock = Siri_benchkit.Clock
module Table = Siri_benchkit.Table
module Json = Telemetry.Json
module Pos = Siri_pos.Pos_tree

let shards = 8

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "siri_scan_bench.%d.%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf d;
  d

let fail_error e = failwith (Format.asprintf "%a" Wal.pp_error e)

(* One telemetry sink shared by every shard store of an engine, so the
   engine-level routing counters aggregate in one place. *)
let shared_sink_factory () =
  let sink = Telemetry.create () in
  let mk () =
    let store = Store.create () in
    Store.set_sink store sink;
    Pos.generic (Pos.empty store (Pos.config ()))
  in
  (sink, mk)

let open_engine ~spec ~dir ~mk =
  match Sharded.open_ ~sync:false ~runner:`Pool ~spec ~dir ~empty_index:mk () with
  | Ok t -> t
  | Error e -> fail_error e

let load t entries =
  let batch = 1_000 in
  let n = Array.length entries in
  let b = ref 0 in
  while !b < n do
    let stop = min n (!b + batch) in
    let ops = ref [] in
    for i = stop - 1 downto !b do
      let k, v = entries.(i) in
      ops := Kv.Put (k, v) :: !ops
    done;
    ignore (Sharded.commit t ~branch:"master" ~message:"load" !ops);
    b := stop
  done

(* Force a window and count its entries. *)
let drain seq = Seq.fold_left (fun n _ -> n + 1) 0 seq

let run () =
  let n = Params.pick ~quick:20_000 ~full:200_000 in
  let window_keys = n / 64 in
  let windows_wanted = Params.pick ~quick:16 ~full:32 in
  (* Uniform raw two-byte prefixes via a 16-bit Fibonacci scramble — the
     range partitioner routes on the first two bytes, so this spreads
     the keyspace evenly over all shards; the payload pads records to
     ~64 B. *)
  let entries =
    Array.init n (fun i ->
        let p = i * 40503 land 0xffff in
        ( Printf.sprintf "%c%c:%08d" (Char.chr (p lsr 8)) (Char.chr (p land 0xff)) i,
          Printf.sprintf "%056d" i ))
  in
  let sorted_keys =
    let ks = Array.map fst entries in
    Array.sort compare ks;
    ks
  in
  let range_spec = Partition.make Partition.Range ~shards in
  let hash_spec = Partition.make Partition.Hash ~shards in
  (* Windows of identical selectivity whose bounds route to a single
     shard under the range scheme — the case the router exists for.
     Both engines scan exactly these windows. *)
  let windows =
    let picked = ref [] and w = ref 0 in
    while List.length !picked < windows_wanted && !w < 4 * windows_wanted do
      let start = (!w * 2654435761) mod (n - window_keys) in
      let lo = sorted_keys.(start) and hi = sorted_keys.(start + window_keys) in
      (match Partition.shard_interval range_spec ~lo:(Some lo) ~hi:(Some hi) with
      | Some (a, b) when a = b -> picked := (lo, hi) :: !picked
      | _ -> ());
      incr w
    done;
    List.rev !picked
  in
  let windows_n = List.length windows in
  if windows_n = 0 then failwith "fig_scan: no single-shard window found";
  let bench_scheme name spec =
    let sink, mk = shared_sink_factory () in
    let dir = fresh_dir () in
    let t = open_engine ~spec ~dir ~mk in
    load t entries;
    let scans0 = Telemetry.counter sink "shard.scan" in
    let fanout0 = Telemetry.counter sink "shard.scan.fanout" in
    let t0 = Clock.now () in
    let streamed =
      List.fold_left
        (fun acc (lo, hi) ->
          acc + drain (Sharded.scan ~lo ~hi t ~branch:"master"))
        0 windows
    in
    let window_secs = Clock.now () -. t0 in
    let scans = Telemetry.counter sink "shard.scan" - scans0 in
    let fanout = Telemetry.counter sink "shard.scan.fanout" - fanout0 in
    let avg_fanout = float_of_int fanout /. float_of_int (max 1 scans) in
    let f0 = Clock.now () in
    let full = drain (Sharded.scan t ~branch:"master") in
    let full_secs = Clock.now () -. f0 in
    if full <> n then
      failwith (Printf.sprintf "fig_scan: %s full scan saw %d/%d" name full n);
    Sharded.close t;
    rm_rf dir;
    ( streamed,
      float_of_int streamed /. window_secs,
      avg_fanout,
      float_of_int n /. full_secs )
  in
  let r_streamed, r_eps, r_fanout, r_full = bench_scheme "range" range_spec in
  let h_streamed, h_eps, h_fanout, h_full = bench_scheme "hash" hash_spec in
  (* The telemetry assertion of the whole figure: windowed range-scheme
     scans touched exactly one shard each; hash fanned out to all. *)
  if r_fanout <> 1.0 then
    failwith
      (Printf.sprintf "fig_scan: range fanout %.2f, expected exactly 1.0"
         r_fanout);
  if h_fanout <> float_of_int shards then
    failwith
      (Printf.sprintf "fig_scan: hash fanout %.2f, expected %d" h_fanout shards);
  if r_streamed <> h_streamed then
    failwith "fig_scan: schemes streamed different entry counts";
  let speedup = r_eps /. h_eps in
  (* --- online reshard 4 -> 8 -------------------------------------------- *)
  let reshard_dir = fresh_dir () in
  let _, mk = shared_sink_factory () in
  let t4 =
    open_engine ~spec:(Partition.make Partition.Range ~shards:4)
      ~dir:reshard_dir ~mk
  in
  load t4 entries;
  let rs0 = Clock.now () in
  let t8 =
    match Sharded.reshard t4 ~shards:8 with
    | Ok t -> t
    | Error e -> fail_error e
  in
  let reshard_secs = Clock.now () -. rs0 in
  let migrated = drain (Sharded.scan t8 ~branch:"master") in
  if migrated <> n then
    failwith (Printf.sprintf "fig_scan: reshard migrated %d/%d" migrated n);
  let generation = Sharded.generation t8 in
  let stats = Sharded.shard_stats t8 ~branch:"master" in
  let max_keys = Array.fold_left (fun m s -> max m s.Sharded.keys) 0 stats in
  let min_keys =
    Array.fold_left (fun m s -> min m s.Sharded.keys) max_int stats
  in
  Sharded.close t8;
  rm_rf reshard_dir;
  Table.print
    ~title:
      (Printf.sprintf
         "Routed scans — %d records, %d windows of %d keys (%d shards)" n
         windows_n window_keys shards)
    ~headers:
      [ "scheme"; "fanout/scan"; "window kops/s"; "full-scan kops/s"; "vs hash" ]
    [ [ "range";
        Printf.sprintf "%.1f" r_fanout;
        Printf.sprintf "%.1f" (r_eps /. 1000.);
        Printf.sprintf "%.1f" (r_full /. 1000.);
        Printf.sprintf "%.2fx" speedup ];
      [ "hash";
        Printf.sprintf "%.1f" h_fanout;
        Printf.sprintf "%.1f" (h_eps /. 1000.);
        Printf.sprintf "%.1f" (h_full /. 1000.);
        "1.00x" ] ];
  Table.print
    ~title:"Online reshard (range scheme, live entries streamed + bulk-loaded)"
    ~headers:[ "from"; "to"; "seconds"; "keys/s"; "generation"; "keys min..max" ]
    [ [ "4";
        "8";
        Printf.sprintf "%.2f" reshard_secs;
        Printf.sprintf "%.0f" (float_of_int n /. reshard_secs);
        string_of_int generation;
        Printf.sprintf "%d..%d" min_keys max_keys ] ];
  if speedup < 2.0 then
    Printf.printf
      "warning: range routing only %.2fx over the hash merge at this scale.\n"
      speedup;
  Metrics.write ~id:"scan"
    (Json.obj
       [ ("experiment", Json.str "scan");
         ("title", Json.str "routed range scans + online reshard");
         ("records", Json.int n);
         ("shards", Json.int shards);
         ("windows", Json.int windows_n);
         ("window_keys", Json.int window_keys);
         ( "range",
           Json.obj
             [ ("fanout_per_scan", Json.num r_fanout);
               ("window_entries_per_sec", Json.num r_eps);
               ("full_scan_entries_per_sec", Json.num r_full) ] );
         ( "hash",
           Json.obj
             [ ("fanout_per_scan", Json.num h_fanout);
               ("window_entries_per_sec", Json.num h_eps);
               ("full_scan_entries_per_sec", Json.num h_full) ] );
         ("range_vs_hash_speedup", Json.num speedup);
         ( "reshard",
           Json.obj
             [ ("from_shards", Json.int 4);
               ("to_shards", Json.int 8);
               ("seconds", Json.num reshard_secs);
               ("keys", Json.int n);
               ("keys_per_sec", Json.num (float_of_int n /. reshard_secs));
               ("generation", Json.int generation);
               ("min_shard_keys", Json.int min_keys);
               ("max_shard_keys", Json.int max_keys) ] ) ])
