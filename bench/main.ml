(* Benchmark driver: regenerates every table and figure of the paper's
   evaluation (Section 5) plus the Section 4 theoretical checks.

     dune exec bench/main.exe                 # everything, laptop scale
     dune exec bench/main.exe -- --full       # paper-scale parameters
     dune exec bench/main.exe -- fig6 fig17   # selected experiments
     dune exec bench/main.exe -- --list       # available experiment ids  *)

let experiments =
  [ ("fig1", "storage & transfer raw vs deduplicated", Fig_motivation.run);
    ("fig6", "YCSB throughput grid", Fig_throughput.fig6);
    ("fig7", "Wiki & Ethereum throughput", fun () ->
        Fig_throughput.fig7a ();
        Fig_throughput.fig7b ());
    ("fig8", "diff latency", Fig_latency.fig8);
    ("fig9", "tree height distribution", Fig_latency.fig9);
    ("fig10", "YCSB latency distributions", Fig_latency.fig10);
    ("fig11", "Wiki latency distributions", Fig_latency.fig11);
    ("fig12", "Ethereum latency distributions", Fig_latency.fig12);
    ("fig13", "MBT load/scan breakdown", Fig_latency.fig13);
    ("fig14", "single-group storage", Fig_storage.fig14);
    ("fig15", "Wiki storage growth", Fig_storage.fig15);
    ("fig16", "Ethereum storage growth", Fig_storage.fig16);
    ("fig17", "collaboration vs overlap", Fig_collab.fig17);
    ("fig18", "collaboration vs batch size", Fig_collab.fig18);
    ("table3", "structure parameters vs eta", Fig_collab.table3);
    ("fig19", "ablation: structurally invariant", Fig_ablation.fig19);
    ("fig20", "ablation: recursively identical", Fig_ablation.fig20);
    ("fig21", "Forkbase-integrated throughput", Fig_system.fig21);
    ("fig22", "Forkbase vs Noms", Fig_system.fig22);
    ("bounds", "Section 4.1 cost model check", Theory.bounds);
    ("eta", "Section 4.2 dedup ratio check", Theory.eta);
    ("eta-dag", "extension: dedup of branching version DAGs", Theory.eta_dag);
    ("proofs", "extension: point & range proof sizes", Fig_proofs.run);
    ("proof", "extension: batched multiproofs vs k single proofs", Fig_multiproof.run);
    ("wal", "extension: WAL commit & recovery throughput", Fig_wal.run);
    ("pack", "extension: pack-file backend vs snapshot (reopen & cold reads)", Fig_pack.run);
    ("parallel", "extension: domain sweep of the parallel commit pipeline", Fig_parallel.run);
    ("readpath", "extension: decoded-node cache, batched get, Bloom filters", Fig_readpath.run);
    ("server", "extension: multi-client server, group vs single commit", Fig_server.run);
    ("shard", "extension: sharded keyspace, concurrent commit + composite root", Fig_shard.run);
    ("scan", "extension: routed range scans + online reshard", Fig_scan.run);
    ("batch", "ablation: write batch size vs throughput", Fig_throughput.batch_throughput);
    ("micro", "Bechamel per-op microbenchmarks", Micro.run);
    ("params", "print the Table 1/2 notation and parameter values", fun () ->
        let p = Params.pick in
        Siri_benchkit.Table.print
          ~title:"Table 2: experiment parameters (current scale vs paper)"
          ~headers:[ "parameter"; "this run"; "paper (--full)" ]
          [ [ "dataset sizes";
              String.concat ", " (List.map string_of_int (Params.n_sweep ()));
              "10k..2.56M (x2 steps)" ];
            [ "batch size"; string_of_int (Params.write_batch ()); "4000" ];
            [ "overlap ratios";
              String.concat ", "
                (List.map (Printf.sprintf "%.0f%%")
                   (List.map (( *. ) 100.) (Params.overlap_sweep ())));
              "0..100% (10% steps)" ];
            [ "write ratios"; "0, 0.5, 1"; "0, 0.5, 1" ];
            [ "zipfian theta"; "0, 0.5, 0.9"; "0, 0.5, 0.9" ];
            [ "groups"; string_of_int (Params.groups ()); "10" ];
            [ "MBT buckets"; string_of_int (Params.mbt_buckets ()); "10000" ];
            [ "node size"; "~1 KB (all structures)"; "~1 KB" ];
            [ "ops per run"; string_of_int (Params.ops_count ()); "10000" ];
            [ "seed"; string_of_int Params.seed; "-" ] ];
        ignore p;
        Siri_benchkit.Table.print
          ~title:"Table 1: notation"
          ~headers:[ "symbol"; "meaning" ]
          [ [ "N"; "total number of records" ];
            [ "m"; "fanout of POS-Tree and MBT" ];
            [ "B"; "MBT bucket count (capacity)" ];
            [ "L"; "key length of a record" ];
            [ "delta"; "records differing between two versions" ];
            [ "alpha"; "fraction of records changed per version" ];
            [ "r"; "average record size" ];
            [ "c"; "cryptographic hash size (32 B)" ] ]) ]

let note_fig1_fig2 = "fig1 also prints Figure 2 (B+-tree order dependence)."

let list_experiments () =
  Printf.printf "available experiments (%s):\n"
    (if Params.is_full () then "full scale" else "quick scale");
  List.iter (fun (id, descr, _) -> Printf.printf "  %-8s %s\n" id descr)
    experiments;
  Printf.printf "note: %s\n" note_fig1_fig2

let run_one (id, _descr, f) =
  Printf.printf "\n######## %s ########\n%!" id;
  let t0 = Unix.gettimeofday () in
  f ();
  Printf.printf "[%s done in %.1fs]\n%!" id (Unix.gettimeofday () -. t0)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let list = List.mem "--list" args in
  let selected =
    List.filter (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--")) args
  in
  if full then Params.scale := Params.Full;
  if list then list_experiments ()
  else begin
    let to_run =
      if selected = [] then experiments
      else
        List.map
          (fun id ->
            match List.find_opt (fun (i, _, _) -> i = id) experiments with
            | Some e -> e
            | None ->
                Printf.eprintf "unknown experiment %S (try --list)\n" id;
                exit 2)
          selected
    in
    Printf.printf "SIRI benchmark suite — %s scale, seed %d\n"
      (if Params.is_full () then "FULL (paper)" else "quick")
      Params.seed;
    let t0 = Unix.gettimeofday () in
    List.iter run_one to_run;
    Printf.printf "\nall done in %.1fs\n" (Unix.gettimeofday () -. t0)
  end
