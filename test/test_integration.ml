(* Cross-structure integration: all four indexes over the same datasets,
   the Section 4.2 analytic deduplication bound, end-to-end tamper
   evidence, and the engine running on each index kind. *)

open Siri_core
module Store = Siri_store.Store
module Mpt = Siri_mpt.Mpt
module Mbt = Siri_mbt.Mbt
module Pos = Siri_pos.Pos_tree
module Mvbt = Siri_mvbt.Mvbt
module Engine = Siri_forkbase.Engine
module Ycsb = Siri_workload.Ycsb
module Versions = Siri_workload.Versions
module Ethereum = Siri_workload.Ethereum
module Hash = Siri_crypto.Hash

let makers () =
  [ (fun () -> Mpt.generic (Mpt.empty (Store.create ())));
    (fun () ->
      Mbt.generic (Mbt.empty (Store.create ()) (Mbt.config ~capacity:64 ~fanout:4 ())));
    (fun () ->
      Pos.generic (Pos.empty (Store.create ()) (Pos.config ~leaf_target:512 ())));
    (fun () ->
      Mvbt.generic (Mvbt.empty (Store.create ()) (Mvbt.config ()))) ]

let test_all_indexes_agree () =
  let y = Ycsb.create ~n:400 () in
  let entries = Ycsb.dataset y in
  let expected = List.sort (fun (a, _) (b, _) -> String.compare a b) entries in
  List.iter
    (fun mk ->
      let t = Generic.of_entries (mk ()) entries in
      Alcotest.(check int)
        (t.Generic.name ^ " cardinal")
        400
        (t.Generic.cardinal ());
      Alcotest.(check (list (pair string string)))
        (t.Generic.name ^ " records")
        expected
        (t.Generic.to_list ()))
    (makers ())

let test_eth_dataset_roundtrip () =
  let block = Ethereum.block ~txs_per_block:80 0 in
  let entries = Ethereum.entries_of_block block in
  List.iter
    (fun mk ->
      let t = Generic.of_entries (mk ()) entries in
      List.iter
        (fun (k, v) ->
          Alcotest.(check (option string)) (t.Generic.name ^ " tx") (Some v)
            (t.Generic.lookup k))
        entries)
    (makers ())

(* Section 4.2.2: for sequentially evolved versions with update fraction
   alpha, eta(two consecutive versions) ~ 1/2 - alpha/2 for POS and MBT. *)
let test_analytic_eta_validated () =
  let check_structure name mk_pair =
    List.iter
      (fun alpha ->
        let eta = mk_pair alpha in
        let predicted = Dedup.analytic_eta ~alpha in
        Alcotest.(check bool)
          (Printf.sprintf "%s alpha=%.1f: eta %.3f ~ predicted %.3f" name alpha
             eta predicted)
          true
          (Float.abs (eta -. predicted) < 0.18))
      [ 0.05; 0.2; 0.5 ]
  in
  let pos_pair alpha =
    let store = Store.create () in
    let y = Ycsb.create ~n:2000 () in
    let cfg = Pos.config ~leaf_target:1024 () in
    let v0 = Pos.of_entries store cfg (Ycsb.dataset y) in
    let rng = Rng.create 1 in
    let ops = List.hd (Versions.continuous_updates ~ycsb:y ~rng ~alpha ~versions:1) in
    let v1 = Pos.batch v0 ops in
    Dedup.dedup_ratio store [ Pos.root v0; Pos.root v1 ]
  in
  let mbt_pair alpha =
    let store = Store.create () in
    let y = Ycsb.create ~n:2000 () in
    (* B ~ N so that an alpha-fraction contiguous update touches ~alpha*B
       buckets, the regime of the paper's MBT derivation. *)
    let cfg = Mbt.config ~capacity:2048 ~fanout:4 () in
    let v0 = Mbt.of_entries store cfg (Ycsb.dataset y) in
    let rng = Rng.create 2 in
    let ops = List.hd (Versions.continuous_updates ~ycsb:y ~rng ~alpha ~versions:1) in
    let v1 = Mbt.batch v0 ops in
    Dedup.dedup_ratio store [ Mbt.root v0; Mbt.root v1 ]
  in
  check_structure "pos" pos_pair;
  check_structure "mbt" mbt_pair

let test_mpt_eta_exceeds_on_long_keys () =
  (* With long shared-prefix keys (L >= Lbar), MPT's eta >= 1/2 - alpha/2
     per the Section 4.2.2 inequality. *)
  let store = Store.create () in
  let n = 1500 in
  let key i = Printf.sprintf "%032d" i in
  let entries = List.init n (fun i -> (key i, Printf.sprintf "%064d" i)) in
  let v0 = Mpt.of_entries store entries in
  let alpha = 0.2 in
  let span = Float.to_int (alpha *. Float.of_int n) in
  let v1 =
    Mpt.batch v0
      (List.init span (fun i -> Kv.Put (key (500 + i), Printf.sprintf "%064d" (-(500 + i)))))
  in
  let eta = Dedup.dedup_ratio store [ Mpt.root v0; Mpt.root v1 ] in
  Alcotest.(check bool)
    (Printf.sprintf "eta %.3f >= %.3f" eta (Dedup.analytic_eta ~alpha -. 0.1))
    true
    (eta >= Dedup.analytic_eta ~alpha -. 0.1)

let test_tamper_evidence_end_to_end () =
  (* Corrupt one stored node; a fresh proof fetched from the corrupted store
     no longer verifies against the trusted root. *)
  let store = Store.create () in
  let entries = List.init 300 (fun i -> (Printf.sprintf "acct%05d" i, "100")) in
  let t = Mpt.of_entries store entries in
  let trusted_root = Mpt.root t in
  (* The attacker flips a byte in some internal node on the victim's path. *)
  let victim = "acct00123" in
  let proof_before = Mpt.prove t victim in
  Alcotest.(check bool) "clean proof ok" true
    (Mpt.verify_proof ~root:trusted_root proof_before);
  let path_node =
    (* second node of the proof, i.e. a non-root node *)
    Hash.of_string (List.nth proof_before.Proof.nodes 1)
  in
  Store.corrupt store path_node;
  (match Store.get_verified store path_node with
  | Ok _ -> Alcotest.fail "corruption must be detectable"
  | Error (`Tampered _) -> ());
  let proof_after = Mpt.prove t victim in
  Alcotest.(check bool) "tampered proof rejected" false
    (Mpt.verify_proof ~root:trusted_root proof_after)

let test_dedup_ranking_on_collaboration () =
  (* 4 groups with 60% overlap: every SIRI index must show substantial
     sharing; the non-SI baseline shows less on shuffled builds. *)
  let y = Ycsb.create ~n:500 () in
  let groups = 4 in
  let workloads =
    List.init groups (fun g ->
        Ycsb.overlap_workload y ~offset:0 ~group:g ~groups ~overlap_ratio:0.6 ~count:800)
  in
  let ratio_for of_entries root =
    let store = Store.create () in
    let roots =
      List.map
        (fun w ->
          let rng = Rng.create 3 in
          root (of_entries store (Rng.shuffle rng w)))
        workloads
    in
    Dedup.dedup_ratio store roots
  in
  let pos_cfg = Pos.config ~leaf_target:512 () in
  let pos = ratio_for (fun s e -> Pos.of_entries s pos_cfg e) Pos.root in
  let mpt = ratio_for Mpt.of_entries Mpt.root in
  (* Private records interleave with the shared ones in key order, so
     page-level sharing sits well below the record-level overlap; MPT's
     small nodes make it the most interleaving-resistant (the Figure 17c
     ranking). *)
  Alcotest.(check bool) (Printf.sprintf "pos eta %.2f > 0.03" pos) true (pos > 0.03);
  Alcotest.(check bool) (Printf.sprintf "mpt eta %.2f > 0.1" mpt) true (mpt > 0.1);
  Alcotest.(check bool)
    (Printf.sprintf "mpt %.2f >= pos %.2f (finer sharing granularity)" mpt pos)
    true (mpt >= pos)

let test_engine_over_every_index () =
  let engines =
    [ Engine.create ~empty_index:(Mpt.generic (Mpt.empty (Store.create ())));
      Engine.create
        ~empty_index:
          (Mbt.generic (Mbt.empty (Store.create ()) (Mbt.config ~capacity:32 ~fanout:4 ())));
      Engine.create
        ~empty_index:
          (Pos.generic (Pos.empty (Store.create ()) (Pos.config ~leaf_target:512 ())));
      Engine.create
        ~empty_index:(Mvbt.generic (Mvbt.empty (Store.create ()) (Mvbt.config ()))) ]
  in
  List.iter
    (fun e ->
      let _ = Engine.commit e ~branch:"master" ~message:"init"
          (List.init 100 (fun i -> Kv.Put (Printf.sprintf "k%03d" i, "v"))) in
      Engine.fork e ~from:"master" "dev";
      let _ = Engine.commit e ~branch:"dev" ~message:"dev" [ Kv.Put ("dev", "1") ] in
      (match Engine.merge_branches e ~into:"master" ~from:"dev" ~policy:Kv.Fail_on_conflict with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "no conflicts expected");
      Alcotest.(check (option string)) "merged" (Some "1")
        (Engine.get e ~branch:"master" "dev"))
    engines

let test_proofs_transferable () =
  (* A proof produced from one replica verifies with no store at all — only
     the root digest is needed. *)
  let store = Store.create () in
  let entries = List.init 200 (fun i -> (Printf.sprintf "doc%04d" i, "content")) in
  let cfg = Pos.config ~leaf_target:512 () in
  let t = Pos.of_entries store cfg entries in
  let root = Pos.root t in
  let proof = Pos.prove t "doc0042" in
  (* "Send" root+proof elsewhere: verify without the store. *)
  Alcotest.(check bool) "verifies statelessly" true (Pos.verify_proof ~root proof)

let () =
  Alcotest.run "integration"
    [ ( "cross-index",
        [ Alcotest.test_case "all indexes agree" `Quick test_all_indexes_agree;
          Alcotest.test_case "ethereum dataset" `Quick test_eth_dataset_roundtrip ] );
      ( "analysis",
        [ Alcotest.test_case "analytic eta validated" `Slow test_analytic_eta_validated;
          Alcotest.test_case "mpt eta on long keys" `Quick test_mpt_eta_exceeds_on_long_keys;
          Alcotest.test_case "collaboration dedup" `Slow test_dedup_ranking_on_collaboration ] );
      ( "tamper-evidence",
        [ Alcotest.test_case "end to end" `Quick test_tamper_evidence_end_to_end;
          Alcotest.test_case "stateless proof" `Quick test_proofs_transferable ] );
      ( "engine",
        [ Alcotest.test_case "engine over every index" `Quick test_engine_over_every_index ] ) ]
