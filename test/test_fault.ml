(* Chaos differential suite: run the index workloads over a store with a
   seeded fault plan injecting bit flips, truncations, drops, transient
   failures and latency, and assert that every operation either returns the
   oracle answer or a typed error — never an untyped crash — and that
   Store.scrub reports exactly the injected corruptions. *)

open Siri_core
module Store = Siri_store.Store
module Fault = Siri_fault.Fault
module Hash = Siri_crypto.Hash
module Remote = Siri_forkbase.Remote
module Engine = Siri_forkbase.Engine
module Pos = Siri_pos.Pos_tree

let makers =
  [ ("mpt", fun () -> Siri_mpt.Mpt.generic (Siri_mpt.Mpt.empty (Store.create ())));
    ( "mbt",
      fun () ->
        Siri_mbt.Mbt.generic
          (Siri_mbt.Mbt.empty (Store.create ())
             (Siri_mbt.Mbt.config ~capacity:32 ~fanout:4 ())) );
    ( "pos",
      fun () ->
        Pos.generic (Pos.empty (Store.create ()) (Pos.config ~leaf_target:64 ())) );
    ( "mvbt",
      fun () ->
        Siri_mvbt.Mvbt.generic
          (Siri_mvbt.Mvbt.empty (Store.create ())
             (Siri_mvbt.Mvbt.config ~leaf_capacity:4 ~internal_capacity:5 ())) ) ]

let entries = Index_suite.rng_entries (Rng.create 2024) 400
let absent_keys = List.init 20 (fun i -> Printf.sprintf "zz-chaos-absent-%02d" i)
let oracle = Hashtbl.create 512
let () = List.iter (fun (k, v) -> Hashtbl.replace oracle k v) entries

(* Copy every node of [store] into a fresh pristine store (for repair). *)
let replicate store =
  let replica = Store.create () in
  Store.iter_nodes store (fun bytes children ->
      ignore (Store.put replica ~children bytes));
  replica

let typed_or_fail name k = function
  | Error (`Tampered _ | `Missing _ | `Transient _) -> 1
  | Error (`Malformed msg) ->
      Alcotest.failf "%s: untyped exception leaked for %S: %s" name k msg
  | Ok _ -> 0

(* The acceptance property: under an armed fault plan with >= 3 fault
   kinds, every lookup is oracle-correct or a typed error. *)
let chaos_case (name, mk) () =
  let inst = Generic.of_entries (mk ()) entries in
  let store = inst.Generic.store in
  let replica = replicate store in
  let plan =
    Fault.plan ~bit_flip:0.04 ~truncate:0.03 ~drop:0.06 ~transient:0.05
      ~latency_s:1e-6 ~seed:42 ()
  in
  let armed = Fault.arm plan store in
  (* The plan actually injected the three persistent/read fault kinds. *)
  Alcotest.(check bool) "some corruption injected" true (Fault.corrupted armed <> []);
  Alcotest.(check bool) "some drops injected" true (Fault.dropped armed <> []);
  let errors = ref 0 in
  let check_key k =
    match Fault.protect (fun () -> inst.Generic.lookup k) with
    | Ok v ->
        Alcotest.(check (option string))
          (Printf.sprintf "%s oracle answer for %s" name k)
          (Hashtbl.find_opt oracle k) v
    | other -> errors := !errors + typed_or_fail name k other
  in
  List.iter (fun (k, _) -> check_key k) entries;
  List.iter check_key absent_keys;
  (* Bulk operations degrade the same way. *)
  (match Fault.protect (fun () -> inst.Generic.to_list ()) with
  | Ok l ->
      Alcotest.(check int)
        (name ^ " to_list oracle")
        (List.length entries) (List.length l)
  | other -> errors := !errors + typed_or_fail name "<to_list>" other);
  Alcotest.(check bool) (name ^ " faults actually fired") true (!errors > 0);
  Alcotest.(check bool)
    (name ^ " transient faults fired")
    true
    (Fault.injected_transients armed > 0);
  Alcotest.(check bool)
    (name ^ " latency accounted")
    true
    (Fault.simulated_latency armed > 0.);
  (* Scrub finds exactly the injected corruptions. *)
  Fault.disarm armed;
  let report = Store.scrub store in
  Alcotest.(check (list string))
    (name ^ " scrub reports exactly the injected corruptions")
    (List.map Hash.to_hex (Fault.corrupted armed))
    (List.map Hash.to_hex report.Store.corrupt);
  (* Repair from the pristine replica heals the store completely. *)
  let grafted = Store.repair store ~replica in
  Alcotest.(check bool)
    (name ^ " repair grafted at least the quarantined nodes")
    true
    (grafted >= List.length (Fault.corrupted armed));
  let after = Store.scrub store in
  Alcotest.(check int) (name ^ " clean after repair: corrupt") 0
    (List.length after.Store.corrupt);
  Alcotest.(check int) (name ^ " clean after repair: dangling") 0
    (List.length after.Store.dangling);
  (* And the index answers the full oracle again. *)
  List.iter
    (fun (k, v) ->
      Alcotest.(check (option string)) (name ^ " healed " ^ k) (Some v)
        (inst.Generic.lookup k))
    entries

(* Determinism: the same plan armed on the same content selects the same
   victims. *)
let test_arm_deterministic () =
  let victims () =
    let inst = Generic.of_entries ((List.assoc "pos" makers) ()) entries in
    let armed =
      Fault.arm (Fault.plan ~bit_flip:0.05 ~drop:0.05 ~seed:7 ()) inst.Generic.store
    in
    Fault.disarm armed;
    (List.map Hash.to_hex (Fault.corrupted armed),
     List.map Hash.to_hex (Fault.dropped armed))
  in
  let c1, d1 = victims () and c2, d2 = victims () in
  Alcotest.(check (list string)) "same corrupted" c1 c2;
  Alcotest.(check (list string)) "same dropped" d1 d2

(* Transient-only faults: bounded retries recover every answer. *)
let test_retries_absorb_transients () =
  let inst = Generic.of_entries ((List.assoc "pos" makers) ()) entries in
  let armed =
    Fault.arm (Fault.plan ~transient:0.05 ~seed:11 ()) inst.Generic.store
  in
  List.iter
    (fun (k, v) ->
      match Fault.retrying ~attempts:10 (fun () -> inst.Generic.lookup k) with
      | Ok got -> Alcotest.(check (option string)) k (Some v) got
      | Error e -> Alcotest.failf "retry did not absorb transient: %s" (Fault.error_to_string e))
    entries;
  Alcotest.(check bool) "transients were injected" true
    (Fault.injected_transients armed > 0);
  Fault.disarm armed

(* Verified accessors return typed errors over a damaged (un-armed) store. *)
let test_checked_accessors () =
  let s = Store.create () in
  let a = Store.put s "leaf-a" in
  let b = Store.put s "leaf-b" in
  let p = Store.put s ~children:[ a; b ] "parent" in
  (match Fault.get_checked s p with
  | Ok bytes -> Alcotest.(check string) "verified payload" "parent" bytes
  | Error e -> Alcotest.failf "unexpected: %s" (Fault.error_to_string e));
  Store.corrupt s a;
  (match Fault.get_checked s a with
  | Error (`Tampered h) -> Alcotest.(check bool) "names hash" true (Hash.equal h a)
  | _ -> Alcotest.fail "tampering undetected");
  let ghost = Hash.of_string "never stored" in
  (match Fault.get_checked s ghost with
  | Error (`Missing h) -> Alcotest.(check bool) "names ghost" true (Hash.equal h ghost)
  | _ -> Alcotest.fail "missing undetected");
  match Fault.children_checked s p with
  | Ok cs -> Alcotest.(check int) "children" 2 (List.length cs)
  | Error e -> Alcotest.failf "unexpected: %s" (Fault.error_to_string e)

(* Engine over a faulty store: transient fetches are retried, residual
   faults surface as typed errors, the engine never aborts. *)
let test_engine_degrades_gracefully () =
  let engine =
    Engine.create
      ~empty_index:
        (Pos.generic (Pos.empty (Store.create ()) (Pos.config ~leaf_target:256 ())))
  in
  let _ =
    Engine.commit engine ~branch:"master" ~message:"seed"
      (List.map (fun (k, v) -> Kv.Put (k, v)) entries)
  in
  let store = Engine.store engine in
  (* Transient-only plan: checked reads recover every answer. *)
  let armed = Fault.arm (Fault.plan ~transient:0.05 ~seed:3 ()) store in
  List.iter
    (fun (k, v) ->
      match Engine.get_checked ~attempts:10 engine ~branch:"master" k with
      | Ok got -> Alcotest.(check (option string)) k (Some v) got
      | Error e ->
          Alcotest.failf "engine did not absorb transient: %s"
            (Fault.error_to_string e))
    (List.filteri (fun i _ -> i mod 7 = 0) entries);
  (match Engine.history_checked ~attempts:10 engine "master" with
  | Ok commits -> Alcotest.(check int) "history length" 2 (List.length commits)
  | Error e -> Alcotest.failf "history_checked: %s" (Fault.error_to_string e));
  Fault.disarm armed;
  (* Physically lose index nodes: every read is the oracle answer or a
     typed error, and at least one key is actually affected. *)
  let root = (Engine.head engine "master").Engine.index_root in
  let victims =
    Hash.Set.elements (Store.reachable store root)
    |> List.filter (fun h -> not (Hash.equal h root))
    |> List.filteri (fun i _ -> i mod 3 = 0)
  in
  Alcotest.(check bool) "victims chosen" true (victims <> []);
  List.iter (fun h -> ignore (Store.remove_node store h)) victims;
  let affected = ref 0 in
  List.iter
    (fun (k, v) ->
      match Engine.get_checked engine ~branch:"master" k with
      | Ok got -> Alcotest.(check (option string)) k (Some v) got
      | Error (`Missing _ | `Tampered _ | `Transient _) -> incr affected
      | Error (`Malformed msg) -> Alcotest.failf "untyped leak: %s" msg)
    entries;
  Alcotest.(check bool) "some keys affected by lost nodes" true (!affected > 0)

(* Remote simulation: a flaky link costs retries and simulated seconds. *)
let test_remote_flaky_link () =
  let run ~failure_rate =
    let store = Store.create () in
    let t = Pos.of_entries store (Pos.config ~leaf_target:256 ()) entries in
    let remote = Remote.attach store ~failure_rate ~seed:5 Remote.gigabit_lan in
    List.iter (fun (k, _) -> ignore (Pos.lookup t k)) entries;
    let sim = Remote.simulated_seconds remote in
    let retries = Remote.retries remote in
    Remote.detach store remote;
    (sim, retries)
  in
  let sim0, retries0 = run ~failure_rate:0. in
  let sim3, retries3 = run ~failure_rate:0.3 in
  Alcotest.(check int) "no retries on a clean link" 0 retries0;
  Alcotest.(check bool) "flaky link retries" true (retries3 > 0);
  Alcotest.(check bool) "retries cost simulated time" true (sim3 > sim0);
  (* Determinism: the same seed reproduces the run exactly. *)
  let sim3', retries3' = run ~failure_rate:0.3 in
  Alcotest.(check int) "deterministic retries" retries3 retries3';
  Alcotest.(check (float 1e-12)) "deterministic sim time" sim3 sim3'

let () =
  Alcotest.run "fault"
    [ ( "chaos differential",
        List.map
          (fun (name, mk) ->
            Alcotest.test_case
              (Printf.sprintf "%s under seeded faults" name)
              `Quick
              (chaos_case (name, mk)))
          makers );
      ( "plans",
        [ Alcotest.test_case "arm is deterministic" `Quick test_arm_deterministic;
          Alcotest.test_case "retries absorb transients" `Quick
            test_retries_absorb_transients ] );
      ( "checked accessors",
        [ Alcotest.test_case "get/children checked" `Quick test_checked_accessors ] );
      ( "engine",
        [ Alcotest.test_case "graceful degradation" `Quick
            test_engine_degrades_gracefully ] );
      ( "remote",
        [ Alcotest.test_case "flaky link retries" `Quick test_remote_flaky_link ] ) ]
