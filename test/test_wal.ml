(* Crash-consistent durability: torn-write crash simulation over the
   write-ahead commit journal.

   The oracle is exact-prefix recovery: run a scripted multi-branch
   workload through [Durable], snapshot the full engine state (branch
   set, head commit ids, index roots) after every journal record, then
   truncate the journal at EVERY byte offset, reopen, and assert the
   recovered state equals the snapshot after exactly the records that
   fit in the truncated prefix.  Mid-journal bit flips must surface as
   typed errors — never exceptions — or recover to some exact prefix. *)

open Siri_core
module Store = Siri_store.Store
module Hash = Siri_crypto.Hash
module Engine = Siri_forkbase.Engine
module Wal = Siri_wal.Wal
module Durable = Siri_wal.Durable
module Fault = Siri_fault.Fault
module Telemetry = Siri_telemetry.Telemetry
module Pos = Siri_pos.Pos_tree

let makers =
  [ ("mpt", fun () -> Siri_mpt.Mpt.generic (Siri_mpt.Mpt.empty (Store.create ())));
    ( "mbt",
      fun () ->
        Siri_mbt.Mbt.generic
          (Siri_mbt.Mbt.empty (Store.create ())
             (Siri_mbt.Mbt.config ~capacity:16 ~fanout:4 ())) );
    ( "pos",
      fun () ->
        Pos.generic (Pos.empty (Store.create ()) (Pos.config ~leaf_target:64 ())) );
    ( "mvbt",
      fun () ->
        Siri_mvbt.Mvbt.generic
          (Siri_mvbt.Mvbt.empty (Store.create ())
             (Siri_mvbt.Mvbt.config ~leaf_capacity:4 ~internal_capacity:5 ())) ) ]

(* --- scratch directories --------------------------------------------------- *)

let dir_counter = ref 0

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let fresh_dir name =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "siri-wal-%d-%s-%d" (Unix.getpid ()) name !dir_counter)
  in
  rm_rf d;
  d

let with_dir name f =
  let d = fresh_dir name in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path bytes =
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc

let open_exn ?sync ~dir mk =
  match Durable.open_ ?sync ~dir ~empty_index:(mk ()) () with
  | Ok t -> t
  | Error e -> Alcotest.failf "Durable.open_: %a" Wal.pp_error e

(* --- the scripted multi-branch workload ------------------------------------ *)

(* Full engine state: (branch, head commit id, index root) sorted by branch —
   equality on this is the "exact committed prefix" oracle. *)
let state engine =
  List.map
    (fun b ->
      let h = Engine.head engine b in
      (b, Hash.to_hex h.Engine.id, Hash.to_hex h.Engine.index_root))
    (Engine.branches engine)

let ops_a =
  List.init 6 (fun i -> Kv.Put (Printf.sprintf "alpha-%02d" i, Printf.sprintf "a%d" i))

let ops_b =
  Kv.Del "alpha-03"
  :: List.init 4 (fun i -> Kv.Put (Printf.sprintf "beta-%02d" i, Printf.sprintf "b%d" i))

type step =
  | SCommit of string * string * Kv.op list
  | SFork of string * string  (* from, name *)
  | SMerge of string * string  (* into, from *)

let script =
  [ SCommit ("master", "m1", ops_a);
    SCommit ("master", "m2", ops_b);
    SFork ("master", "dev");
    SCommit ("dev", "d1", [ Kv.Put ("alpha-00", "dev-side"); Kv.Put ("gamma-0", "g0") ]);
    SCommit ("master", "m3", [ Kv.Put ("alpha-00", "master-side"); Kv.Del ("beta-01") ]);
    SCommit ("dev", "d2", [ Kv.Put ("gamma-1", "g1") ]);
    SMerge ("master", "dev");
    SFork ("master", "feature");
    SCommit ("feature", "f1", [ Kv.Put ("delta-0", "d0"); Kv.Put ("delta-1", "d1") ]);
    SCommit ("master", "m4", [ Kv.Del ("gamma-0"); Kv.Put ("alpha-05", "rewritten") ]) ]

let apply_step t = function
  | SCommit (branch, message, ops) ->
      ignore (Durable.commit t ~branch ~message ops : Engine.commit)
  | SFork (from, name) -> Durable.fork t ~from name
  | SMerge (into, from) -> (
      match Durable.merge_branches t ~into ~from ~policy:Kv.Prefer_right with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "scripted merge unexpectedly conflicted")

(* Run the script in [dir]; returns the journal bytes, the end offset of
   each record, and the state snapshot after 0, 1, ... n records. *)
let run_script mk dir =
  let t = open_exn ~sync:false ~dir mk in
  let states = ref [ state (Durable.engine t) ] in
  let ends = ref [] in
  List.iter
    (fun s ->
      apply_step t s;
      states := state (Durable.engine t) :: !states;
      ends := Durable.journal_bytes t :: !ends)
    script;
  Durable.close t;
  let journal = read_file (Durable.journal_path dir) in
  (journal, List.rev !ends, Array.of_list (List.rev !states))

let state_testable =
  Alcotest.(list (triple string string string))

(* --- exhaustive torn-write simulation --------------------------------------- *)

let crash_case (name, mk) () =
  with_dir ("script-" ^ name) @@ fun dir0 ->
  let journal, ends, states = run_script mk dir0 in
  Alcotest.(check int) "one record per step" (List.length script) (List.length ends);
  Alcotest.(check int)
    "journal length is the last record end"
    (String.length journal) (List.nth ends (List.length ends - 1));
  let scratch = fresh_dir ("torn-" ^ name) in
  Fun.protect ~finally:(fun () -> rm_rf scratch) @@ fun () ->
  Unix.mkdir scratch 0o755;
  for l = 0 to String.length journal do
    write_file (Durable.journal_path scratch) (String.sub journal 0 l);
    let t = open_exn ~sync:false ~dir:scratch mk in
    (* Exactly the records that fit in the prefix are recovered. *)
    let k = List.length (List.filter (fun e -> e <= l) ends) in
    Alcotest.check state_testable
      (Printf.sprintf "%s: truncation at %d recovers prefix of %d records" name l k)
      states.(k)
      (state (Durable.engine t));
    let r = Durable.recovery t in
    Alcotest.(check int) (Printf.sprintf "%s@%d replayed" name l) k r.Durable.replayed;
    let valid_prefix =
      (* A torn header (l < |magic|) is clamped in full. *)
      if k > 0 then List.nth ends (k - 1)
      else if l >= String.length Wal.magic then String.length Wal.magic
      else 0
    in
    Alcotest.(check int)
      (Printf.sprintf "%s@%d clamped bytes" name l)
      (l - valid_prefix) r.Durable.clamped_bytes;
    Durable.close t
  done

(* After a torn-tail clamp, the journal must keep accepting appends: recover,
   commit again, reopen, and the new commit is there. *)
let test_append_after_clamp () =
  let mk = List.assoc "pos" makers in
  with_dir "clamp-append" @@ fun dir0 ->
  let journal, ends, states = run_script mk dir0 in
  ignore states;
  let scratch = fresh_dir "clamp-append-scratch" in
  Fun.protect ~finally:(fun () -> rm_rf scratch) @@ fun () ->
  Unix.mkdir scratch 0o755;
  (* Tear mid-way through the 6th record. *)
  let l = List.nth ends 5 - 7 in
  write_file (Durable.journal_path scratch) (String.sub journal 0 l);
  let t = open_exn ~sync:false ~dir:scratch mk in
  Alcotest.(check bool) "clamped" true
    ((Durable.recovery t).Durable.clamped_bytes > 0);
  let c =
    Durable.commit t ~branch:"master" ~message:"post-crash"
      [ Kv.Put ("phoenix", "rises") ]
  in
  let s_after = state (Durable.engine t) in
  Durable.close t;
  let t' = open_exn ~sync:false ~dir:scratch mk in
  Alcotest.check state_testable "post-crash commit survives reopen" s_after
    (state (Durable.engine t'));
  Alcotest.(check (option string))
    "value readable" (Some "rises")
    (Durable.get t' ~branch:"master" "phoenix");
  Alcotest.(check bool) "same head id" true
    (Hash.equal c.Engine.id (Engine.head (Durable.engine t') "master").Engine.id);
  Durable.close t'

(* --- mid-journal corruption -------------------------------------------------- *)

let test_targeted_corruption () =
  let mk = List.assoc "mpt" makers in
  with_dir "corrupt" @@ fun dir0 ->
  let journal, ends, _ = run_script mk dir0 in
  let scratch = fresh_dir "corrupt-scratch" in
  Fun.protect ~finally:(fun () -> rm_rf scratch) @@ fun () ->
  Unix.mkdir scratch 0o755;
  (* Flip one payload byte of the third record (well before the tail). *)
  let start = List.nth ends 1 in
  let off = start + 4 + Hash.size + 3 in
  let b = Bytes.of_string journal in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x10));
  write_file (Durable.journal_path scratch) (Bytes.to_string b);
  match Durable.open_ ~sync:false ~dir:scratch ~empty_index:(mk ()) () with
  | Ok _ -> Alcotest.fail "mid-journal corruption went undetected"
  | Error (`Tampered o) ->
      Alcotest.(check int) "tampered offset names the damaged record" start o
  | Error (`Malformed m) -> Alcotest.failf "expected `Tampered, got `Malformed %s" m

(* Seeded bit-flip plans over the whole journal file: every outcome is a
   typed error or an exact committed prefix — never an exception, never a
   state that mixes records. *)
let flip_case (name, mk) () =
  with_dir ("flip-" ^ name) @@ fun dir0 ->
  let journal, _, states = run_script mk dir0 in
  let scratch = fresh_dir ("flip-scratch-" ^ name) in
  Fun.protect ~finally:(fun () -> rm_rf scratch) @@ fun () ->
  Unix.mkdir scratch 0o755;
  let tampered = ref 0 and prefixes = ref 0 and damaged_runs = ref 0 in
  for seed = 1 to 30 do
    let damaged, offsets = Fault.flip_blob ~seed ~rate:0.01 journal in
    if offsets <> [] then begin
      incr damaged_runs;
      write_file (Durable.journal_path scratch) damaged;
      match Durable.open_ ~sync:false ~dir:scratch ~empty_index:(mk ()) () with
      | Error (`Tampered _) -> incr tampered
      | Error (`Malformed _) -> ()
      | Ok t ->
          let got = state (Durable.engine t) in
          Durable.close t;
          let is_prefix = Array.exists (fun s -> s = got) states in
          Alcotest.(check bool)
            (Printf.sprintf "%s seed %d: recovered state is an exact prefix" name seed)
            true is_prefix;
          incr prefixes
    end
  done;
  Alcotest.(check bool) "bit flips actually landed" true (!damaged_runs > 10);
  Alcotest.(check bool) "some corruption detected as `Tampered" true (!tampered > 0);
  ignore !prefixes

(* --- clean-shutdown identity and qcheck properties --------------------------- *)

(* append ∘ recover is the identity on clean shutdown, and replaying the
   same journal twice (two successive reopens) equals replaying it once. *)
let qcheck_reopen_identity =
  let gen =
    QCheck.(
      list_of_size Gen.(1 -- 8)
        (list_of_size Gen.(1 -- 6)
           (pair (string_gen_of_size Gen.(1 -- 12) Gen.printable)
              (string_gen_of_size Gen.(0 -- 12) Gen.printable))))
  in
  QCheck.Test.make ~name:"reopen after clean shutdown is the identity" ~count:20
    gen (fun batches ->
      let mk = List.assoc "pos" makers in
      with_dir "qcheck-reopen" @@ fun dir ->
      let t = open_exn ~sync:false ~dir mk in
      List.iteri
        (fun i batch ->
          ignore
            (Durable.commit t ~branch:"master"
               ~message:(Printf.sprintf "b%d" i)
               (List.map (fun (k, v) -> Kv.Put (k, v)) batch)
              : Engine.commit))
        batches;
      let final = state (Durable.engine t) in
      Durable.close t;
      let t1 = open_exn ~sync:false ~dir mk in
      let s1 = state (Durable.engine t1) in
      let r1 = (Durable.recovery t1).Durable.replayed in
      Durable.close t1;
      let t2 = open_exn ~sync:false ~dir mk in
      let s2 = state (Durable.engine t2) in
      let r2 = (Durable.recovery t2).Durable.replayed in
      Durable.close t2;
      s1 = final && s2 = final
      && r1 = List.length batches
      && r2 = List.length batches)

(* Journal encode/scan roundtrip on arbitrary record lists. *)
let qcheck_journal_roundtrip =
  let str_gen = QCheck.Gen.(string_size ~gen:printable (0 -- 20)) in
  let ops_gen =
    QCheck.Gen.(
      list_size (0 -- 8)
        (oneof
           [ map2 (fun k v -> Kv.Put (k, v)) str_gen str_gen;
             map (fun k -> Kv.Del k) str_gen ]))
  in
  let record_gen =
    QCheck.Gen.(
      oneof
        [ map3
            (fun branch message ops -> Wal.Commit { branch; message; ops })
            str_gen str_gen ops_gen;
          map2 (fun from name -> Wal.Fork { from; name }) str_gen str_gen;
          map2
            (fun (into, from) (message, ops) ->
              Wal.Merge { into; from; message; ops })
            (pair str_gen str_gen) (pair str_gen ops_gen) ])
  in
  QCheck.Test.make ~name:"journal scan inverts encode" ~count:200
    (QCheck.make QCheck.Gen.(list_size (0 -- 20) record_gen))
    (fun records ->
      let blob =
        Wal.magic
        ^ String.concat ""
            (List.mapi (fun i r -> Wal.encode_record ~seq:(i + 1) r) records)
      in
      match Wal.scan blob with
      | Error _ -> false
      | Ok { Wal.entries; clamped_bytes; valid_prefix; _ } ->
          clamped_bytes = 0
          && valid_prefix = String.length blob
          && List.map snd entries = records
          && List.map fst entries = List.init (List.length records) (fun i -> i + 1))

(* Scan is total on arbitrary bytes. *)
let qcheck_scan_total =
  QCheck.Test.make ~name:"scan is total on arbitrary bytes" ~count:300
    QCheck.(string_of_size Gen.(0 -- 300))
    (fun s ->
      match Wal.scan s with
      | Ok _ | Error (`Tampered _) | Error (`Malformed _) -> true
      | exception e ->
          QCheck.Test.fail_reportf "scan raised %s" (Printexc.to_string e))

(* --- checkpointing ------------------------------------------------------------ *)

let test_checkpoint_roundtrip () =
  let mk = List.assoc "mvbt" makers in
  with_dir "checkpoint" @@ fun dir ->
  let _, _, states = run_script mk dir in
  let final = states.(Array.length states - 1) in
  (* Recover (full replay), then checkpoint. *)
  let t = open_exn ~sync:false ~dir mk in
  Alcotest.(check int) "full replay before checkpoint"
    (List.length script)
    (Durable.recovery t).Durable.replayed;
  Durable.checkpoint t;
  Alcotest.(check int) "journal reset to bare magic"
    (String.length Wal.magic) (Durable.journal_bytes t);
  Durable.close t;
  (* Reopen: journal-free recovery from the snapshot, identical state. *)
  let t' = open_exn ~sync:false ~dir mk in
  let r = Durable.recovery t' in
  Alcotest.(check int) "nothing replayed" 0 r.Durable.replayed;
  Alcotest.(check int) "nothing skipped" 0 r.Durable.skipped;
  Alcotest.(check int) "snapshot generation loaded" 1 r.Durable.generation;
  Alcotest.check state_testable "identical roots after checkpoint reopen" final
    (state (Durable.engine t'));
  (* And the journal keeps working after a checkpoint. *)
  ignore
    (Durable.commit t' ~branch:"master" ~message:"after-checkpoint"
       [ Kv.Put ("epsilon", "e") ]
      : Engine.commit);
  let s = state (Durable.engine t') in
  Durable.close t';
  let t'' = open_exn ~sync:false ~dir mk in
  Alcotest.(check int) "one record replayed over the snapshot" 1
    (Durable.recovery t'').Durable.replayed;
  Alcotest.check state_testable "post-checkpoint commit recovered" s
    (state (Durable.engine t''));
  Durable.close t''

(* Crash between manifest publication and journal truncation: the snapshot
   already captures every journal record, so replay must skip them all
   (sequence-number fencing) instead of applying them twice. *)
let test_checkpoint_crash_window () =
  let mk = List.assoc "pos" makers in
  with_dir "ckpt-window" @@ fun dir ->
  let _, _, states = run_script mk dir in
  let final = states.(Array.length states - 1) in
  let journal_before = read_file (Durable.journal_path dir) in
  let t = open_exn ~sync:false ~dir mk in
  Durable.checkpoint t;
  Durable.close t;
  (* Undo the truncation, as if the crash hit right after the manifest
     rename: full journal + new manifest coexist. *)
  write_file (Durable.journal_path dir) journal_before;
  let t' = open_exn ~sync:false ~dir mk in
  let r = Durable.recovery t' in
  Alcotest.(check int) "all records skipped" (List.length script) r.Durable.skipped;
  Alcotest.(check int) "none replayed twice" 0 r.Durable.replayed;
  Alcotest.check state_testable "state not double-applied" final
    (state (Durable.engine t'));
  Durable.close t'

(* --- telemetry ---------------------------------------------------------------- *)

let test_instrumentation () =
  let mk = List.assoc "pos" makers in
  with_dir "telemetry" @@ fun dir ->
  let journal, ends, _ = run_script mk dir in
  (* Reopen over a torn journal with a sink attached to the fresh store. *)
  let inst = mk () in
  let sink = Telemetry.create () in
  Store.set_sink inst.Generic.store sink;
  let l = List.nth ends 3 + 5 in
  write_file (Durable.journal_path dir) (String.sub journal 0 l);
  (* The scratch dir still has no manifest; reopen replays 4 and clamps. *)
  match Durable.open_ ~sync:false ~dir ~empty_index:inst () with
  | Error e -> Alcotest.failf "open: %a" Wal.pp_error e
  | Ok t ->
      Alcotest.(check int) "recovery.replayed" 4
        (Telemetry.counter sink "recovery.replayed");
      Alcotest.(check int) "recovery.clamped" 1
        (Telemetry.counter sink "recovery.clamped");
      Alcotest.(check int) "recovery.clamped_bytes" 5
        (Telemetry.counter sink "recovery.clamped_bytes");
      Alcotest.(check bool) "recovery span recorded" true
        (List.exists
           (fun (s : Telemetry.span) -> s.Telemetry.name = "recovery")
           (Telemetry.spans sink));
      ignore
        (Durable.commit t ~branch:"master" ~message:"instrumented"
           [ Kv.Put ("k", "v") ]
          : Engine.commit);
      Alcotest.(check int) "wal.append" 1 (Telemetry.counter sink "wal.append");
      Alcotest.(check bool) "wal.append_bytes counted" true
        (Telemetry.counter sink "wal.append_bytes" > 0);
      Alcotest.(check int) "no fsync under ~sync:false" 0
        (Telemetry.counter sink "wal.fsync");
      Durable.close t

(* --- Engine.load graceful degradation (two-file atomicity hole) --------------- *)

let make_pos () =
  Pos.generic (Pos.empty (Store.create ()) (Pos.config ~leaf_target:64 ()))

let test_engine_load_clamps_ghost_head () =
  with_dir "ghost-head" @@ fun dir ->
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "engine" in
  let engine = Engine.create ~empty_index:(make_pos ()) in
  ignore
    (Engine.commit engine ~branch:"master" ~message:"m"
       [ Kv.Put ("a", "1"); Kv.Put ("b", "2") ]
      : Engine.commit);
  Engine.fork engine ~from:"master" "dev";
  Engine.save ~sync:false engine path;
  (* A head added after the store file was written — the crash window of
     the old two-rename [Engine.save]. *)
  let ghost = Hash.of_string "commit that never reached the store" in
  let oc = open_out_gen [ Open_append ] 0o644 (path ^ ".heads") in
  Printf.fprintf oc "orphan\t%s\n" (Hash.to_hex ghost);
  close_out oc;
  let loaded = Engine.load ~empty_index:(make_pos ()) path in
  Alcotest.(check (list string))
    "ghost branch clamped, consistent heads kept" [ "dev"; "master" ]
    (Engine.branches loaded);
  Alcotest.(check (option string)) "data intact" (Some "1")
    (Engine.get loaded ~branch:"master" "a")

let test_engine_load_checked () =
  with_dir "load-checked" @@ fun dir ->
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "engine" in
  let engine = Engine.create ~empty_index:(make_pos ()) in
  Engine.save ~sync:false engine path;
  (* Every head ghosted: typed error, not Not_found / Failure. *)
  Store.write_file_atomic ~sync:false (path ^ ".heads") (fun oc ->
      Printf.fprintf oc "master\t%s\n" (Hash.to_hex (Hash.of_string "ghost")));
  (match Engine.load_checked ~empty_index:(make_pos ()) path with
  | Error (`Malformed msg) ->
      Alcotest.(check bool) "mentions absent commits" true
        (Astring.String.is_infix ~affix:"absent" msg)
  | Ok _ -> Alcotest.fail "expected `Malformed");
  (* Malformed heads file: typed error. *)
  Store.write_file_atomic ~sync:false (path ^ ".heads") (fun oc ->
      output_string oc "no tab separator here\n");
  (match Engine.load_checked ~empty_index:(make_pos ()) path with
  | Error (`Malformed _) -> ()
  | Ok _ -> Alcotest.fail "expected `Malformed");
  (* Missing store file: typed error. *)
  match Engine.load_checked ~empty_index:(make_pos ()) (path ^ "-nonexistent") with
  | Error (`Malformed _) -> ()
  | Ok _ -> Alcotest.fail "expected `Malformed"

(* --- tmp-file hardening -------------------------------------------------------- *)

let test_stale_tmp_cleanup () =
  with_dir "stale-tmp" @@ fun dir ->
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "store.bin" in
  let store = Store.create () in
  ignore (Store.put store "payload" : Hash.t);
  Store.save ~sync:false store path;
  (* Debris from an interrupted save. *)
  let stale = path ^ ".tmp.999.7" in
  write_file stale "half-written garbage";
  let loaded = Store.load path in
  Alcotest.(check int) "nodes loaded" 1 (Store.stats loaded).Store.unique_nodes;
  Alcotest.(check bool) "stale tmp swept on load" false (Sys.file_exists stale);
  (* Saves use unique tmp names: two saves to one path cannot collide, and
     the destination stays loadable. *)
  Store.save ~sync:false store path;
  Store.save ~sync:false store path;
  Alcotest.(check int) "still loadable" 1
    (Store.stats (Store.load path)).Store.unique_nodes

let () =
  let qcheck = QCheck_alcotest.to_alcotest in
  Alcotest.run "wal"
    [ ( "torn-write crash simulator",
        List.map
          (fun (name, mk) ->
            Alcotest.test_case
              (name ^ ": truncation at every byte offset")
              `Slow
              (crash_case (name, mk)))
          makers
        @ [ Alcotest.test_case "append after torn-tail clamp" `Quick
              test_append_after_clamp ] );
      ( "corruption",
        Alcotest.test_case "mid-journal flip is `Tampered" `Quick
          test_targeted_corruption
        :: List.map
             (fun (name, mk) ->
               Alcotest.test_case
                 (name ^ ": seeded bit-flip plans")
                 `Quick
                 (flip_case (name, mk)))
             makers );
      ( "journal properties",
        [ qcheck qcheck_journal_roundtrip;
          qcheck qcheck_scan_total;
          qcheck qcheck_reopen_identity ] );
      ( "checkpoint",
        [ Alcotest.test_case "checkpoint -> journal-free reopen" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "crash between manifest and truncation" `Quick
            test_checkpoint_crash_window ] );
      ( "telemetry",
        [ Alcotest.test_case "wal.* and recovery.* probes" `Quick
            test_instrumentation ] );
      ( "engine degradation",
        [ Alcotest.test_case "ghost head is clamped" `Quick
            test_engine_load_clamps_ghost_head;
          Alcotest.test_case "load_checked typed errors" `Quick
            test_engine_load_checked ] );
      ( "tmp hardening",
        [ Alcotest.test_case "stale tmp cleanup + unique suffixes" `Quick
            test_stale_tmp_cleanup ] ) ]
