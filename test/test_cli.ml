(* Integration: the CLI's documented exit codes, pinned by running the
   real binaries as subprocesses.  The convention under test:

     0  clean          (recover/checkpoint clean journal, scrub intact,
                        verify-proof verified)
     1  degraded       (torn tail clamped, integrity violations found,
                        proof refused)
     2  unrecoverable  (mid-journal corruption, malformed/tampered input)

   Scripts and the crash harness branch on these codes, so a drift here
   is an interface break even though no OCaml API changed. *)

open Siri_core
module Store = Siri_store.Store
module Hash = Siri_crypto.Hash
module Durable = Siri_wal.Durable
module Telemetry = Siri_telemetry.Telemetry

let dir_counter = ref 0

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_dir name f =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "siri-cli-%s-%d-%d" name (Unix.getpid ()) !dir_counter)
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let bin_dir () =
  match Sys.getenv_opt "SIRI_BIN_DIR" with
  | Some d -> d
  | None ->
      if Sys.file_exists "../bin/siri_cli.exe" then "../bin"
      else "_build/default/bin"

(* Run the CLI, swallowing its output; return the exit code. *)
let run_cli args =
  let exe = Filename.concat (bin_dir ()) "siri_cli.exe" in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process exe
      (Array.of_list (exe :: args))
      Unix.stdin null null
  in
  Unix.close null;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED code -> code
  | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) ->
      Alcotest.failf "siri_cli killed by signal %d" n

let check_exit what expected args =
  Alcotest.(check int) (what ^ ": " ^ String.concat " " args) expected
    (run_cli args)

let mk_index store =
  Siri_pos.Pos_tree.generic
    (Siri_pos.Pos_tree.empty store (Siri_pos.Pos_tree.config ()))

(* A durable directory with [n] committed batches, cleanly closed. *)
let seed_durable ?(n = 5) dir =
  let store = Store.create () in
  let d =
    match Durable.open_ ~sync:false ~dir ~empty_index:(mk_index store) () with
    | Ok d -> d
    | Error _ -> Alcotest.fail "seed open"
  in
  for i = 1 to n do
    ignore
      (Durable.commit d ~branch:"master" ~message:(Printf.sprintf "c%d" i)
         [ Kv.Put (Printf.sprintf "k%d" i, Printf.sprintf "v%d" i) ])
  done;
  Durable.close d

let append_bytes path s =
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc s;
  close_out oc

let flip_byte path off =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.of_string (really_input_string ic n) in
  close_in ic;
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x41));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_recover_exit_codes () =
  with_dir "recover" @@ fun dir ->
  let d1 = Filename.concat dir "clean" in
  seed_durable d1;
  check_exit "clean journal" 0 [ "recover"; d1 ];
  (* torn tail: garbage appended after the last good frame is clamped *)
  let d2 = Filename.concat dir "torn" in
  seed_durable d2;
  append_bytes (Durable.journal_path d2) "\x99\x88\x77";
  check_exit "torn tail clamped" 1 [ "recover"; d2 ];
  (* the clamp truncates on disk: a second recovery is clean *)
  check_exit "clean after clamp" 0 [ "recover"; d2 ];
  (* mid-journal corruption is unrecoverable, not clamp-able.  The flip
     must land past the first frame's 4-byte length field (a damaged
     length reads as a torn tail, by design): offset 20 is inside the
     frame's 32-byte digest, a guaranteed checksum mismatch. *)
  let d3 = Filename.concat dir "corrupt" in
  seed_durable d3;
  flip_byte (Durable.journal_path d3) 20;
  check_exit "mid-journal corruption" 2 [ "recover"; d3 ]

let test_checkpoint_exit_codes () =
  with_dir "checkpoint" @@ fun dir ->
  let d = Filename.concat dir "ck" in
  seed_durable d;
  check_exit "checkpoint clean" 0 [ "checkpoint"; d ];
  (* after the checkpoint the journal is truncated: recover sees clean *)
  check_exit "recover after checkpoint" 0 [ "recover"; d ];
  (* the pack backend follows the same convention *)
  let store = Store.create () in
  let dp = Filename.concat dir "ckp" in
  (match
     Durable.open_ ~sync:false ~backend:`Pack ~dir:dp
       ~empty_index:(mk_index store) ()
   with
  | Ok t ->
      ignore (Durable.commit t ~branch:"master" ~message:"p" [ Kv.Put ("a", "1") ]);
      Durable.close t
  | Error _ -> Alcotest.fail "pack seed");
  check_exit "pack checkpoint" 0 [ "checkpoint"; "--backend"; "pack"; dp ]

let test_scrub_exit_codes () =
  with_dir "scrub" @@ fun dir ->
  (* an intact snapshot: build a store, save, scrub *)
  let store = Store.create () in
  let inst = mk_index store in
  let v =
    Generic.of_entries inst
      (List.init 50 (fun i -> (Printf.sprintf "k%03d" i, "v")))
  in
  let snap = Filename.concat dir "store" in
  Store.save ~sync:false store snap;
  check_exit "intact store" 0 [ "scrub"; snap ];
  (* silent payload damage (hash kept, bytes changed) -> violations, 1 *)
  Store.corrupt store v.Generic.root;
  let bad = Filename.concat dir "bad" in
  Store.save ~sync:false store bad;
  check_exit "corrupt node found" 1 [ "scrub"; bad ];
  (* an unreadable file -> 2 *)
  let junk = Filename.concat dir "junk" in
  let oc = open_out_bin junk in
  output_string oc "not a store file";
  close_out oc;
  check_exit "malformed store file" 2 [ "scrub"; junk ]

let test_verify_proof_exit_codes () =
  with_dir "vproof" @@ fun dir ->
  let tsv = Filename.concat dir "data.tsv" in
  let oc = open_out tsv in
  for i = 1 to 40 do
    Printf.fprintf oc "key%03d\tvalue%d\n" i i
  done;
  close_out oc;
  let proof = Filename.concat dir "p.bin" in
  check_exit "prove writes a proof" 0
    [ "prove"; "-i"; "pos"; tsv; "key007"; "absent-key"; "-o"; proof ];
  check_exit "proof verifies against data" 0
    [ "verify-proof"; "-i"; "pos"; proof; "--data"; tsv ];
  (* refused against the wrong trusted root -> 1 *)
  check_exit "proof refused against wrong root" 1
    [ "verify-proof"; "-i"; "pos"; proof; "--root"; String.make 64 '0' ];
  (* a flipped byte in the encoded proof is tampered/malformed -> 2 *)
  flip_byte proof ((Unix.stat proof).Unix.st_size / 2);
  check_exit "tampered proof file" 2
    [ "verify-proof"; "-i"; "pos"; proof; "--data"; tsv ]

let test_connect_exit_codes () =
  (* no server listening: connect must fail with a nonzero code, and
     missing address arguments are a usage error *)
  with_dir "connect" @@ fun dir ->
  let sock = Filename.concat dir "nope.sock" in
  Alcotest.(check bool) "dead socket refused" true
    (run_cli [ "connect"; "--unix"; sock ] <> 0);
  check_exit "missing address" 2 [ "connect" ]

let () =
  Alcotest.run "cli"
    [ ( "exit codes",
        [ Alcotest.test_case "recover: 0 clean / 1 clamped / 2 corrupt" `Quick
            test_recover_exit_codes;
          Alcotest.test_case "checkpoint: 0 on both backends" `Quick
            test_checkpoint_exit_codes;
          Alcotest.test_case "scrub: 0 intact / 1 violations / 2 malformed"
            `Quick test_scrub_exit_codes;
          Alcotest.test_case "verify-proof: 0 ok / 1 refused / 2 tampered"
            `Quick test_verify_proof_exit_codes;
          Alcotest.test_case "connect: errors are nonzero" `Quick
            test_connect_exit_codes ] ) ]
