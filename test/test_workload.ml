(* Workload generators: determinism, the paper's size distributions
   (Sections 5.1.1–5.1.3), Zipfian skew, overlap semantics. *)

open Siri_core
module Zipf = Siri_workload.Zipf
module Ycsb = Siri_workload.Ycsb
module Wiki = Siri_workload.Wiki
module Ethereum = Siri_workload.Ethereum
module Versions = Siri_workload.Versions
module Rlp = Siri_codec.Rlp

(* --- zipf ------------------------------------------------------------------- *)

let test_zipf_uniform () =
  let z = Zipf.create ~n:100 ~theta:0.0 in
  let rng = Rng.create 1 in
  let counts = Array.make 100 0 in
  for _ = 1 to 50_000 do
    let i = Zipf.sample z rng in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "uniform bucket %d: %d" i c)
        true
        (c > 250 && c < 850))
    counts

let test_zipf_skewed () =
  let z = Zipf.create ~n:10_000 ~theta:0.9 in
  let rng = Rng.create 2 in
  let top100 = ref 0 and total = 20_000 in
  for _ = 1 to total do
    if Zipf.sample z rng < 100 then incr top100
  done;
  (* With theta=0.9, the top 1% of items should absorb a large share. *)
  let share = Float.of_int !top100 /. Float.of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "top-100 share %.2f" share)
    true (share > 0.35)

let test_zipf_more_skew_more_concentration () =
  let rng = Rng.create 3 in
  let share theta =
    let z = Zipf.create ~n:1000 ~theta in
    let hits = ref 0 in
    for _ = 1 to 10_000 do
      if Zipf.sample z rng < 10 then incr hits
    done;
    !hits
  in
  let s0 = share 0.0 and s5 = share 0.5 and s9 = share 0.9 in
  Alcotest.(check bool) (Printf.sprintf "%d < %d < %d" s0 s5 s9) true
    (s0 < s5 && s5 < s9)

let test_zipf_bounds () =
  let z = Zipf.create ~n:7 ~theta:0.5 in
  let rng = Rng.create 4 in
  for _ = 1 to 1000 do
    let i = Zipf.sample z rng in
    Alcotest.(check bool) "in range" true (i >= 0 && i < 7)
  done;
  Alcotest.check_raises "theta >= 1 rejected"
    (Invalid_argument "Zipf.create: theta must be in [0, 1)") (fun () ->
      ignore (Zipf.create ~n:10 ~theta:1.0))

(* --- ycsb ------------------------------------------------------------------- *)

let test_ycsb_key_properties () =
  let y = Ycsb.create ~n:5000 () in
  let keys = List.init 5000 (Ycsb.key y) in
  List.iter
    (fun k ->
      let len = String.length k in
      Alcotest.(check bool) (Printf.sprintf "len %d in 5..16" len) true
        (len >= 5 && len <= 16))
    keys;
  Alcotest.(check int) "keys unique" 5000
    (List.length (List.sort_uniq String.compare keys))

let test_ycsb_value_sizes () =
  let y = Ycsb.create ~n:1000 () in
  let total =
    List.fold_left ( + ) 0
      (List.init 1000 (fun i -> String.length (Ycsb.value y i)))
  in
  let mean = Float.of_int total /. 1000.0 in
  Alcotest.(check bool) (Printf.sprintf "mean %.0f ~ 256" mean) true
    (mean > 230.0 && mean < 280.0)

let test_ycsb_deterministic () =
  let y1 = Ycsb.create ~seed:5 ~n:100 () in
  let y2 = Ycsb.create ~seed:5 ~n:100 () in
  Alcotest.(check (list (pair string string))) "same dataset"
    (Ycsb.dataset y1) (Ycsb.dataset y2);
  let y3 = Ycsb.create ~seed:6 ~n:100 () in
  Alcotest.(check bool) "different seed differs" false
    (Ycsb.dataset y1 = Ycsb.dataset y3)

let test_ycsb_versioned_values () =
  let y = Ycsb.create ~n:10 () in
  Alcotest.(check bool) "versions differ" false
    (Ycsb.value y ~version:0 3 = Ycsb.value y ~version:1 3)

let test_ycsb_operations_mix () =
  let y = Ycsb.create ~n:1000 () in
  let rng = Rng.create 6 in
  let ops =
    Ycsb.operations y ~rng ~theta:0.0 ~mix:{ Ycsb.write_ratio = 0.5 } ~count:2000
  in
  let writes =
    List.length (List.filter (function Ycsb.Write _ -> true | _ -> false) ops)
  in
  Alcotest.(check int) "count" 2000 (List.length ops);
  Alcotest.(check bool) (Printf.sprintf "%d writes ~ 1000" writes) true
    (writes > 800 && writes < 1200)

let test_ycsb_overlap () =
  let y = Ycsb.create ~n:1000 () in
  let w g = Ycsb.overlap_workload y ~offset:0 ~group:g ~groups:4 ~overlap_ratio:0.5 ~count:400 in
  let w0 = w 0 and w1 = w 1 in
  let common =
    List.filter (fun e -> List.mem e w1) w0 |> List.length
  in
  Alcotest.(check int) "exactly the shared half" 200 common;
  (* Private keys carry the group tag (as a suffix, so they interleave with
     shared keys in key order). *)
  let has_tag k tag =
    let rec search i =
      i + String.length tag <= String.length k
      && (String.sub k i (String.length tag) = tag || search (i + 1))
    in
    search 0
  in
  List.iteri
    (fun i (k, _) ->
      if i >= 200 then
        Alcotest.(check bool) "private key tagged" true (has_tag k "~g0-"))
    w0

let test_update_batches () =
  let y = Ycsb.create ~n:1000 () in
  let rng = Rng.create 7 in
  let batches = Ycsb.update_batches y ~rng ~batch:50 ~versions:4 in
  Alcotest.(check int) "4 versions" 4 (List.length batches);
  List.iter (fun b -> Alcotest.(check int) "batch size" 50 (List.length b)) batches

(* --- wiki -------------------------------------------------------------------- *)

let test_wiki_distributions () =
  let w = Wiki.create ~pages:2000 () in
  let mk = Wiki.mean_key_length w and mv = Wiki.mean_value_length w in
  Alcotest.(check bool) (Printf.sprintf "key mean %.0f ~ 50" mk) true
    (mk > 38.0 && mk < 75.0);
  Alcotest.(check bool) (Printf.sprintf "value mean %.0f ~ 96" mv) true
    (mv > 60.0 && mv < 160.0);
  List.iter
    (fun id ->
      let k = Wiki.key w id in
      Alcotest.(check bool) "url prefix" true
        (String.length k >= 31
        && String.sub k 0 30 = "https://en.wikipedia.org/wiki/"))
    [ 0; 1; 500; 1999 ]

let test_wiki_versions () =
  let w = Wiki.create ~pages:100 () in
  let rng = Rng.create 8 in
  let stream = Wiki.version_stream w ~rng ~versions:5 ~edits_per_version:10 in
  Alcotest.(check int) "5 versions" 5 (List.length stream);
  List.iter
    (fun ops -> Alcotest.(check int) "10 edits" 10 (List.length ops))
    stream;
  (* Edits are Put ops rewriting existing pages. *)
  List.iter
    (List.iter (function
      | Siri_core.Kv.Put (k, _) ->
          Alcotest.(check bool) "existing page" true
            (String.sub k 0 30 = "https://en.wikipedia.org/wiki/")
      | Siri_core.Kv.Del _ -> Alcotest.fail "no deletes in wiki stream"))
    stream

(* --- ethereum ----------------------------------------------------------------- *)

let test_eth_tx_shape () =
  let tx = Ethereum.transaction ~seed:1 42 in
  Alcotest.(check int) "hash key is 64 hex chars" 64 (String.length tx.Ethereum.hash_hex);
  Alcotest.(check bool) "rlp decodes" true
    (match Rlp.decode tx.Ethereum.rlp with
    | Rlp.List [ _; _; _; Rlp.String addr; _; _ ] -> String.length addr = 20
    | _ -> false)

let test_eth_sizes () =
  let mean = Ethereum.mean_tx_size ~samples:3000 () in
  Alcotest.(check bool) (Printf.sprintf "mean tx %.0f ~ 532" mean) true
    (mean > 300.0 && mean < 900.0)

let test_eth_blocks () =
  let bs = Ethereum.blocks ~txs_per_block:50 ~count:3 () in
  Alcotest.(check int) "3 blocks" 3 (List.length bs);
  List.iteri
    (fun i b ->
      Alcotest.(check int) "block number" i b.Ethereum.number;
      Alcotest.(check int) "tx count" 50 (List.length b.Ethereum.txs);
      let entries = Ethereum.entries_of_block b in
      Alcotest.(check int) "unique tx hashes" 50
        (List.length (List.sort_uniq compare (List.map fst entries))))
    bs

(* --- versions ------------------------------------------------------------------ *)

let test_continuous_updates_alpha () =
  let y = Ycsb.create ~n:1000 () in
  let rng = Rng.create 9 in
  let stream = Versions.continuous_updates ~ycsb:y ~rng ~alpha:0.1 ~versions:3 in
  List.iter
    (fun ops ->
      Alcotest.(check int) "alpha fraction" 100 (List.length ops);
      (* Contiguous id range: keys must all exist in the universe. *)
      List.iter
        (function
          | Siri_core.Kv.Put (_, v) ->
              Alcotest.(check bool) "value nonempty" true (String.length v > 0)
          | Siri_core.Kv.Del _ -> Alcotest.fail "updates only")
        ops)
    stream

let test_continuous_inserts_growth () =
  let y = Ycsb.create ~n:100_000 () in
  let stream = Versions.continuous_inserts ~ycsb:y ~alpha:0.5 ~versions:3 ~base:100 in
  match List.map List.length stream with
  | [ 50; 75; 112 ] | [ 50; 75; 113 ] -> ()
  | sizes ->
      Alcotest.failf "geometric growth expected, got %s"
        (String.concat "," (List.map string_of_int sizes))

let () =
  Alcotest.run "workload"
    [ ( "zipf",
        [ Alcotest.test_case "uniform" `Quick test_zipf_uniform;
          Alcotest.test_case "skewed" `Quick test_zipf_skewed;
          Alcotest.test_case "skew ordering" `Quick test_zipf_more_skew_more_concentration;
          Alcotest.test_case "bounds & validation" `Quick test_zipf_bounds ] );
      ( "ycsb",
        [ Alcotest.test_case "key properties" `Quick test_ycsb_key_properties;
          Alcotest.test_case "value sizes" `Quick test_ycsb_value_sizes;
          Alcotest.test_case "deterministic" `Quick test_ycsb_deterministic;
          Alcotest.test_case "versioned values" `Quick test_ycsb_versioned_values;
          Alcotest.test_case "operation mix" `Quick test_ycsb_operations_mix;
          Alcotest.test_case "overlap workload" `Quick test_ycsb_overlap;
          Alcotest.test_case "update batches" `Quick test_update_batches ] );
      ( "wiki",
        [ Alcotest.test_case "length distributions" `Quick test_wiki_distributions;
          Alcotest.test_case "version stream" `Quick test_wiki_versions ] );
      ( "ethereum",
        [ Alcotest.test_case "transaction shape" `Quick test_eth_tx_shape;
          Alcotest.test_case "size distribution" `Quick test_eth_sizes;
          Alcotest.test_case "blocks" `Quick test_eth_blocks ] );
      ( "versions",
        [ Alcotest.test_case "continuous updates" `Quick test_continuous_updates_alpha;
          Alcotest.test_case "continuous inserts" `Quick test_continuous_inserts_growth ] ) ]
