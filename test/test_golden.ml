(* Golden vectors: root digests of a fixed dataset under fixed
   configurations.  These freeze the node serialization formats and every
   boundary/placement rule — any unintended change to an encoding, the
   chunker, SHA-256 or the build algorithms shows up here as a root
   mismatch, which would silently break persisted stores and published
   digests in the wild. *)

module Store = Siri_store.Store
module Hash = Siri_crypto.Hash
module Telemetry = Siri_telemetry.Telemetry
module Mpt = Siri_mpt.Mpt
module Mbt = Siri_mbt.Mbt
module Pos = Siri_pos.Pos_tree
module Mvbt = Siri_mvbt.Mvbt
module Prolly = Siri_prolly.Prolly

let entries =
  List.init 100 (fun i -> (Printf.sprintf "key-%03d" i, Printf.sprintf "value-%d" (i * i)))

let mpt_root = "9bc1a9eb1ceb85ab222fdca1f2a0cdfcd3c4d053616ac91b0b4173da0e2866bb"
let mbt_root = "adadc0c966d13469270fa881c06553998ad49c6ec8bfed50cc8752cf45d671c5"
let pos_root = "9ec66005a0652557f74b3c059fbd5cc586ad7d2fba87d3030c288cba2bc19fc8"
let mvbt_root = "a468a8bf58145876890595b2da825b7c79c2cf5a544edfbf251c880c8c9d5fd7"

let check name expected actual =
  Alcotest.(check string) (name ^ " root frozen") expected (Hash.to_hex actual)

let builders =
  [ ("mpt", mpt_root, fun store -> Mpt.root (Mpt.of_entries store entries));
    ( "mbt",
      mbt_root,
      fun store ->
        Mbt.root (Mbt.of_entries store (Mbt.config ~capacity:16 ~fanout:4 ()) entries)
    );
    ( "pos",
      pos_root,
      fun store ->
        Pos.root
          (Pos.of_entries store (Pos.config ~leaf_target:256 ~internal_bits:3 ()) entries)
    );
    ( "mvbt",
      mvbt_root,
      fun store ->
        Mvbt.root
          (Mvbt.of_entries store
             (Mvbt.config ~leaf_capacity:4 ~internal_capacity:5 ())
             entries) ) ]

let test_mpt () =
  let store = Store.create () in
  check "mpt" mpt_root (Mpt.root (Mpt.of_entries store entries))

let test_mbt () =
  let store = Store.create () in
  check "mbt" mbt_root
    (Mbt.root (Mbt.of_entries store (Mbt.config ~capacity:16 ~fanout:4 ()) entries))

let test_pos () =
  let store = Store.create () in
  check "pos" pos_root
    (Pos.root
       (Pos.of_entries store (Pos.config ~leaf_target:256 ~internal_bits:3 ()) entries))

let test_mvbt () =
  let store = Store.create () in
  check "mvbt" mvbt_root
    (Mvbt.root
       (Mvbt.of_entries store
          (Mvbt.config ~leaf_capacity:4 ~internal_capacity:5 ())
          entries))

let test_prolly () =
  (* On this small dataset the rolling internal rule happens to coincide
     with the child-hash rule (both leave a single root node over the same
     leaves), so the digest matches POS — freezing it still pins the
     By_rolling code path. *)
  let store = Store.create () in
  check "prolly" pos_root
    (Pos.root (Pos.of_entries store (Prolly.config ~node_target:256 ()) entries))

let test_instrumented_roots () =
  (* The same golden digests must come out of a fully metered build — a
     telemetry sink plus the global hash counter attached.  Instrumentation
     that leaked into a serialization or a digest would break the vectors
     here even if the plain builds above still pass. *)
  let sink = Telemetry.create () in
  Telemetry.attach_hash_counter sink;
  Fun.protect ~finally:Telemetry.detach_hash_counter (fun () ->
      List.iter
        (fun (name, expected, build) ->
          let store = Store.create () in
          Store.set_sink store sink;
          check (name ^ " (instrumented)") expected (build store))
        builders;
      Alcotest.(check bool) "the builds were actually metered" true
        (Telemetry.counter sink "store.put" > 0
        && Telemetry.counter sink "hash.count" > 0))

let test_empty_roots () =
  (* The empty tree of every keyed structure is the null digest... except
     MBT, whose empty buckets are real nodes. *)
  let store = Store.create () in
  Alcotest.(check bool) "mpt empty is null" true
    (Hash.is_null (Mpt.root (Mpt.empty store)));
  Alcotest.(check bool) "pos empty is null" true
    (Hash.is_null (Pos.root (Pos.empty store (Pos.config ()))));
  Alcotest.(check bool) "mbt empty is a concrete tree" false
    (Hash.is_null (Mbt.root (Mbt.empty store (Mbt.config ~capacity:16 ~fanout:4 ()))))

let () =
  Alcotest.run "golden"
    [ ( "roots",
        [ Alcotest.test_case "mpt" `Quick test_mpt;
          Alcotest.test_case "mbt" `Quick test_mbt;
          Alcotest.test_case "pos" `Quick test_pos;
          Alcotest.test_case "mvbt" `Quick test_mvbt;
          Alcotest.test_case "prolly" `Quick test_prolly;
          Alcotest.test_case "empty roots" `Quick test_empty_roots;
          Alcotest.test_case "instrumented roots" `Quick test_instrumented_roots ] ) ]
