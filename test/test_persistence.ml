(* Store persistence: save/load round trips, integrity, and reopening
   indexes from a loaded store. *)

module Store = Siri_store.Store
module Pos = Siri_pos.Pos_tree
module Mpt = Siri_mpt.Mpt
module Hash = Siri_crypto.Hash

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("siri-test-" ^ name)

let with_file name f =
  let path = tmp name in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let entries = List.init 300 (fun i -> (Printf.sprintf "k%05d" i, Printf.sprintf "v%d" i))

let test_roundtrip () =
  with_file "roundtrip" (fun path ->
      let store = Store.create () in
      let t = Pos.of_entries store (Pos.config ~leaf_target:256 ()) entries in
      let root = Pos.root t in
      Store.save store path;
      let store' = Store.load path in
      Alcotest.(check int) "same node count"
        (Store.stats store).Store.unique_nodes
        (Store.stats store').Store.unique_nodes;
      (* Reopen the index from the loaded store: every record answers. *)
      let t' = Pos.of_root store' (Pos.config ~leaf_target:256 ()) root in
      Alcotest.(check int) "cardinal" 300 (Pos.cardinal t');
      List.iter
        (fun (k, v) -> Alcotest.(check (option string)) k (Some v) (Pos.lookup t' k))
        entries;
      (* Children metadata survives: reachability works. *)
      Alcotest.(check int) "reachable set equal"
        (Hash.Set.cardinal (Store.reachable store root))
        (Hash.Set.cardinal (Store.reachable store' root)))

let test_roundtrip_multiple_indexes () =
  with_file "multi" (fun path ->
      let store = Store.create () in
      let p = Pos.of_entries store (Pos.config ()) entries in
      let m = Mpt.of_entries store entries in
      Store.save store path;
      let store' = Store.load path in
      let p' = Pos.of_root store' (Pos.config ()) (Pos.root p) in
      let m' = Mpt.of_root store' (Mpt.root m) in
      Alcotest.(check (list (pair string string)))
        "pos records" entries (Pos.to_list p');
      Alcotest.(check (list (pair string string)))
        "mpt records" entries (Mpt.to_list m'))

let test_empty_store () =
  with_file "empty" (fun path ->
      let store = Store.create () in
      Store.save store path;
      let store' = Store.load path in
      Alcotest.(check int) "no nodes" 0 (Store.stats store').Store.unique_nodes)

let test_bad_magic () =
  with_file "badmagic" (fun path ->
      let oc = open_out_bin path in
      output_string oc "NOT A STORE FILE";
      close_out oc;
      match Store.load path with
      | _ -> Alcotest.fail "expected failure"
      | exception Failure msg ->
          Alcotest.(check bool) "mentions magic" true
            (String.length msg > 0))

let test_truncated () =
  with_file "trunc" (fun path ->
      let store = Store.create () in
      ignore (Store.put store (String.make 5000 'x'));
      Store.save store path;
      (* Chop the tail off. *)
      let full = In_channel.with_open_bin path In_channel.input_all in
      let oc = open_out_bin path in
      output_string oc (String.sub full 0 (String.length full - 100));
      close_out oc;
      match Store.load path with
      | _ -> Alcotest.fail "expected failure"
      | exception Failure _ -> ())

(* --- persistence under damage ----------------------------------------------- *)

let rewrite path f =
  let full = In_channel.with_open_bin path In_channel.input_all in
  let out = f full in
  let oc = open_out_bin path in
  output_string oc out;
  close_out oc

let flip_byte s pos =
  let b = Bytes.of_string s in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x01));
  Bytes.to_string b

let test_flipped_payload_rejected () =
  with_file "flip" (fun path ->
      let store = Store.create () in
      ignore (Store.put store (String.make 5000 'x'));
      Store.save store path;
      (* Offset 100 lands inside the 5000-byte payload, far past the
         magic (10) + count + digest (32) + length header. *)
      rewrite path (fun s -> flip_byte s 100);
      (match Store.load path with
      | _ -> Alcotest.fail "expected rejection"
      | exception Failure msg ->
          Alcotest.(check bool) "names the corrupt node" true
            (Astring.String.is_infix ~affix:"corrupt node" msg));
      (* The typed variant folds the failure into a result. *)
      (match Store.load_checked path with
      | Error (`Malformed msg) ->
          Alcotest.(check bool) "typed error" true (String.length msg > 0)
      | Ok _ -> Alcotest.fail "expected typed rejection");
      (* Best-effort load keeps the damaged node for forensics: scrub
         reports exactly one corrupt node. *)
      match Store.load_checked ~verify:false path with
      | Error _ -> Alcotest.fail "lenient load should succeed"
      | Ok lenient ->
          let r = Store.scrub lenient in
          Alcotest.(check int) "scrub finds the damage" 1
            (List.length r.Store.corrupt))

let test_every_flip_detected () =
  (* A single-node store has no slack bytes: whatever offset is flipped —
     magic, counts, digest or payload — load must reject the file with
     Failure, never crash with anything untyped. *)
  with_file "everyflip" (fun path ->
      let store = Store.create () in
      ignore (Store.put store "the quick brown fox jumps over the lazy dog");
      Store.save store path;
      let pristine = In_channel.with_open_bin path In_channel.input_all in
      let len = String.length pristine in
      for pos = 0 to len - 1 do
        rewrite path (fun _ -> flip_byte pristine pos);
        match Store.load path with
        | _ -> Alcotest.failf "flip at %d accepted" pos
        | exception Failure _ -> ()
        | exception e ->
            Alcotest.failf "flip at %d leaked %s" pos (Printexc.to_string e)
      done)

let test_truncation_all_lengths_rejected () =
  with_file "alltrunc" (fun path ->
      let store = Store.create () in
      let a = Store.put store "some-payload-bytes" in
      ignore (Store.put store ~children:[ a ] "a-parent-node");
      Store.save store path;
      let pristine = In_channel.with_open_bin path In_channel.input_all in
      let len = String.length pristine in
      (* Every proper prefix must be rejected cleanly. *)
      let step = 7 in
      let pos = ref 0 in
      while !pos < len do
        rewrite path (fun _ -> String.sub pristine 0 !pos);
        (match Store.load path with
        | _ -> Alcotest.failf "prefix of %d bytes accepted" !pos
        | exception Failure _ -> ()
        | exception e ->
            Alcotest.failf "prefix of %d leaked %s" !pos (Printexc.to_string e));
        pos := !pos + step
      done)

let test_save_load_save_stable () =
  with_file "stable" (fun path ->
      with_file "stable2" (fun path2 ->
          let store = Store.create () in
          let _ = Pos.of_entries store (Pos.config ()) entries in
          Store.save store path;
          let store' = Store.load path in
          Store.save store' path2;
          (* Same nodes both times (file bytes may differ in order). *)
          let store'' = Store.load path2 in
          Alcotest.(check int) "node count stable"
            (Store.stats store).Store.unique_nodes
            (Store.stats store'').Store.unique_nodes))

let test_load_resets_counters () =
  with_file "counters" (fun path ->
      let store = Store.create () in
      ignore (Store.put store "data");
      Store.save store path;
      let store' = Store.load path in
      let st = Store.stats store' in
      Alcotest.(check int) "puts reset" 0 st.Store.puts;
      Alcotest.(check int) "gets reset" 0 st.Store.gets)

(* --- engine persistence ---------------------------------------------------- *)

module Engine = Siri_forkbase.Engine
open Siri_core

let fresh_engine () =
  Engine.create
    ~empty_index:
      (Pos.generic (Pos.empty (Store.create ()) (Pos.config ~leaf_target:256 ())))

let test_engine_roundtrip () =
  with_file "engine" (fun path ->
      let e = fresh_engine () in
      let _ =
        Engine.commit e ~branch:"master" ~message:"v1"
          (List.map (fun (k, v) -> Kv.Put (k, v)) entries)
      in
      Engine.fork e ~from:"master" "dev";
      let _ = Engine.commit e ~branch:"dev" ~message:"dev" [ Kv.Put ("dev", "1") ] in
      Engine.save e path;
      let e' =
        Engine.load
          ~empty_index:
            (Pos.generic (Pos.empty (Store.create ()) (Pos.config ~leaf_target:256 ())))
          path
      in
      Alcotest.(check (list string)) "branches" [ "dev"; "master" ] (Engine.branches e');
      Alcotest.(check (option string)) "data" (Some "v0")
        (Engine.get e' ~branch:"master" "k00000");
      Alcotest.(check (option string)) "dev-only" (Some "1")
        (Engine.get e' ~branch:"dev" "dev");
      Alcotest.(check int) "history intact" 3
        (List.length (Engine.history e' "dev"));
      (* Fully verifiable after reload. *)
      (match Engine.verify_history e' "dev" with
      | Ok n -> Alcotest.(check int) "verified commits" 3 n
      | Error _ -> Alcotest.fail "reloaded history verifies");
      (* And writable: the engine keeps working. *)
      let _ = Engine.commit e' ~branch:"master" ~message:"after" [ Kv.Put ("x", "y") ] in
      Alcotest.(check (option string)) "write after reload" (Some "y")
        (Engine.get e' ~branch:"master" "x");
      Sys.remove (path ^ ".heads"))

let test_engine_load_missing_heads () =
  with_file "noheads" (fun path ->
      let store = Store.create () in
      Store.save store path;
      match
        Engine.load
          ~empty_index:(Pos.generic (Pos.empty (Store.create ()) (Pos.config ())))
          path
      with
      | _ -> Alcotest.fail "expected failure"
      | exception Sys_error _ -> ()
      | exception Failure _ -> ())

let () =
  Alcotest.run "persistence"
    [ ( "store",
        [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "multiple indexes" `Quick test_roundtrip_multiple_indexes;
          Alcotest.test_case "empty store" `Quick test_empty_store;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "truncated file" `Quick test_truncated;
          Alcotest.test_case "flipped payload rejected" `Quick
            test_flipped_payload_rejected;
          Alcotest.test_case "every single-bit flip detected" `Quick
            test_every_flip_detected;
          Alcotest.test_case "every truncation rejected" `Quick
            test_truncation_all_lengths_rejected;
          Alcotest.test_case "save/load/save stable" `Quick test_save_load_save_stable;
          Alcotest.test_case "counters reset on load" `Quick test_load_resets_counters ] );
      ( "engine",
        [ Alcotest.test_case "roundtrip" `Quick test_engine_roundtrip;
          Alcotest.test_case "missing heads file" `Quick test_engine_load_missing_heads ] ) ]
