(* Ordered streaming reads and elastic resharding: the scan ⇔
   sorted-assoc differential oracle across every order-supporting index
   kind (with the MBT's typed refusal), Range-scheme interval routing
   with the single-shard fanout pinned through telemetry, the hash-scheme
   k-way merge, the online reshard differential (content preserved on
   every branch, composite equal to a fresh build at the new width), and
   a SIGKILL storm over the reshard generation swap on both durable
   backends — recovery lands on the old layout or the new one, never a
   mix. *)

open Siri_core
module Store = Siri_store.Store
module Hash = Siri_crypto.Hash
module Telemetry = Siri_telemetry.Telemetry
module Partition = Siri_shard.Partition
module Sharded = Siri_shard.Sharded
module Wal = Siri_wal.Wal
module Durable = Siri_wal.Durable
module Server = Siri_server.Server
module Client = Siri_server.Client
module Mpt = Siri_mpt.Mpt
module Mbt = Siri_mbt.Mbt
module Pos = Siri_pos.Pos_tree
module Prolly = Siri_prolly.Prolly
module Mvbt = Siri_mvbt.Mvbt

let mk_empty () =
  Pos.generic (Pos.empty (Store.create ()) (Pos.config ~leaf_target:64 ()))

(* Every kind with a key order; small node targets so multi-level trees
   appear at test sizes and the lazy descent actually prunes subtrees. *)
let ordered_kinds () =
  [ Mpt.generic (Mpt.empty (Store.create ()));
    Pos.generic (Pos.empty (Store.create ()) (Pos.config ~leaf_target:64 ()));
    Prolly.generic (Prolly.empty (Store.create ()));
    Mvbt.generic (Mvbt.empty (Store.create ()) (Mvbt.config ())) ]

(* --- scratch directories --------------------------------------------------- *)

let dir_counter = ref 0

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let fresh_dir name =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "siri-scan-%d-%s-%d" (Unix.getpid ()) name !dir_counter)
  in
  rm_rf d;
  d

let with_dir name f =
  let d = fresh_dir name in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let open_exn ?sync ?backend ?(runner = `Inline) ?spec ?(mk = mk_empty) ~dir () =
  match Sharded.open_ ?sync ?backend ~runner ?spec ~dir ~empty_index:mk () with
  | Ok t -> t
  | Error e -> Alcotest.failf "Sharded.open_: %a" Wal.pp_error e

let hash_spec n = Partition.make Partition.Hash ~shards:n
let range_spec n = Partition.make Partition.Range ~shards:n

(* --- the oracle ------------------------------------------------------------- *)

module Smap = Map.Make (String)

let apply_batches batches =
  List.fold_left
    (fun m ops ->
      List.fold_left
        (fun m -> function
          | Kv.Put (k, v) -> Smap.add k v m
          | Kv.Del k -> Smap.remove k m)
        m ops)
    Smap.empty batches

let filter_range ?lo ?hi entries =
  List.filter
    (fun (k, _) ->
      (match lo with None -> true | Some l -> String.compare l k <= 0)
      && match hi with None -> true | Some h -> String.compare k h < 0)
    entries

let entries_t = Alcotest.(list (pair string string))

(* --- scan == sorted assoc, per kind ------------------------------------------ *)

let edge_entries =
  List.init 40 (fun i -> (Printf.sprintf "sk-%02d" i, Printf.sprintf "v%d" i))

(* The ISSUE's edge cases, pinned deterministically on every ordered
   kind: empty range, whole keyspace, lo = hi, and bounds that miss at
   both ends (below the first key, between keys, above the last). *)
let test_scan_edges () =
  List.iter
    (fun empty ->
      let inst =
        empty.Generic.batch
          (List.map (fun (k, v) -> Kv.Put (k, v)) edge_entries)
      in
      let name = inst.Generic.name in
      let scan ?lo ?hi () = List.of_seq (Generic.scan ?lo ?hi inst) in
      let want ?lo ?hi () = filter_range ?lo ?hi edge_entries in
      let check msg ?lo ?hi () =
        Alcotest.check entries_t
          (Printf.sprintf "%s: %s" name msg)
          (want ?lo ?hi ()) (scan ?lo ?hi ());
        Alcotest.(check int)
          (Printf.sprintf "%s: %s (count)" name msg)
          (List.length (want ?lo ?hi ()))
          (Generic.range_count ?lo ?hi inst)
      in
      check "whole keyspace" ();
      check "interior, exact bounds" ~lo:"sk-05" ~hi:"sk-25" ();
      check "lo inclusive, hi exclusive" ~lo:"sk-10" ~hi:"sk-11" ();
      check "lo = hi is empty" ~lo:"sk-10" ~hi:"sk-10" ();
      check "inverted bounds are empty" ~lo:"sk-30" ~hi:"sk-10" ();
      check "misses at both bounds" ~lo:"sk-04x" ~hi:"sk-37q" ();
      check "below first key" ~lo:"aaa" ~hi:"sk-03" ();
      check "above last key" ~lo:"sk-39z" ();
      check "everything below" ~hi:"sk-00" ();
      (* empty instance: every window is empty *)
      Alcotest.check entries_t
        (name ^ ": empty instance") []
        (List.of_seq (Generic.scan ~lo:"a" ~hi:"z" empty));
      (* limit caps the count without draining the rest *)
      Alcotest.(check int)
        (name ^ ": range_count limit")
        7
        (Generic.range_count ~limit:7 inst);
      Alcotest.(check int)
        (name ^ ": limit above cardinality")
        40
        (Generic.range_count ~limit:1000 inst);
      (* streaming: taking 3 entries never forces the tail *)
      let three = List.of_seq (Seq.take 3 (Generic.scan inst)) in
      Alcotest.check entries_t (name ^ ": take 3")
        [ ("sk-00", "v0"); ("sk-01", "v1"); ("sk-02", "v2") ]
        three)
    (ordered_kinds ())

let test_mbt_refuses () =
  let mbt =
    Mbt.generic (Mbt.empty (Store.create ()) (Mbt.config ~capacity:16 ()))
  in
  let mbt = mbt.Generic.batch [ Kv.Put ("a", "1"); Kv.Put ("b", "2") ] in
  Alcotest.check_raises "scan refused" (Generic.Unsupported "mbt") (fun () ->
      let (_ : (Kv.key * Kv.value) Seq.t) = Generic.scan mbt in
      ());
  Alcotest.check_raises "range_count refused" (Generic.Unsupported "mbt")
    (fun () -> ignore (Generic.range_count mbt));
  (* the eager inclusive range still works — it documents the O(N)
     filter; only the ordered streaming read is refused *)
  Alcotest.(check int)
    "eager range still served" 2
    (List.length (mbt.Generic.range ~lo:None ~hi:None))

let key_universe = Array.init 40 (fun i -> Printf.sprintf "sk-%02d" i)

let gen_batches =
  QCheck.Gen.(
    list_size (int_range 1 6)
      (list_size (int_range 1 10)
         (map2
            (fun k put ->
              let key = key_universe.(k mod Array.length key_universe) in
              match put with
              | None -> Kv.Del key
              | Some v -> Kv.Put (key, "v" ^ string_of_int v))
            (int_bound 100)
            (option (int_bound 50)))))

(* Bounds drawn on, beside and between universe keys, plus unbounded. *)
let bound_of i =
  match i mod 4 with
  | 0 -> None
  | 1 -> Some key_universe.(i / 4 mod Array.length key_universe)
  | 2 -> Some (key_universe.(i / 4 mod Array.length key_universe) ^ "+")
  | _ -> Some (Printf.sprintf "sk-%02d" (i / 4 mod 50))

let qcheck_scan_differential =
  QCheck.Test.make ~count:40
    ~name:"scan == sorted assoc filter on every ordered kind"
    QCheck.(triple (QCheck.make gen_batches) small_nat small_nat)
    (fun (batches, bl, bh) ->
      let lo = bound_of bl and hi = bound_of bh in
      let oracle = Smap.bindings (apply_batches batches) in
      let want = filter_range ?lo ?hi oracle in
      List.for_all
        (fun empty ->
          let inst =
            List.fold_left
              (fun inst ops -> inst.Generic.batch ops)
              empty batches
          in
          List.of_seq (Generic.scan ?lo ?hi inst) = want
          && Generic.range_count ?lo ?hi inst = List.length want)
        (ordered_kinds ()))

(* --- Range interval routing --------------------------------------------------- *)

let interval_t = Alcotest.(option (pair int int))

(* "\x40" is the tight boundary between shards 0 and 1 at width 4: it is
   the minimal key of prefix 0x4000, so as an exclusive hi no key at or
   past the boundary is reachable, and as an inclusive lo shard 0 is
   unreachable. *)
let test_shard_interval_boundaries () =
  let spec = range_spec 4 in
  let si ~lo ~hi = Partition.shard_interval spec ~lo ~hi in
  Alcotest.check interval_t "unbounded = every shard" (Some (0, 3))
    (si ~lo:None ~hi:None);
  Alcotest.check interval_t "hi on the boundary excludes its shard"
    (Some (0, 0))
    (si ~lo:None ~hi:(Some "\x40"));
  Alcotest.check interval_t "lo on the boundary starts at its shard"
    (Some (1, 3))
    (si ~lo:(Some "\x40") ~hi:None);
  Alcotest.check interval_t "hi just past the boundary includes it"
    (Some (0, 1))
    (si ~lo:None ~hi:(Some "\x40\x00"));
  Alcotest.check interval_t "narrow window is one shard" (Some (1, 1))
    (si ~lo:(Some "\x40") ~hi:(Some "\x7f"));
  Alcotest.check interval_t "lowest window is shard 0" (Some (0, 0))
    (si ~lo:(Some "") ~hi:(Some "\x01"));
  Alcotest.check interval_t "lo = hi is empty" None
    (si ~lo:(Some "a") ~hi:(Some "a"));
  Alcotest.check interval_t "inverted bounds are empty" None
    (si ~lo:(Some "b") ~hi:(Some "a"));
  Alcotest.check interval_t "hi = \"\" admits no key" None
    (si ~lo:None ~hi:(Some ""));
  (* hash placement ignores order: any non-empty window fans out fully *)
  Alcotest.check interval_t "hash = every shard" (Some (0, 7))
    (Partition.shard_interval (hash_spec 8) ~lo:(Some "a") ~hi:(Some "b"));
  Alcotest.check interval_t "hash empty window" None
    (Partition.shard_interval (hash_spec 8) ~lo:(Some "b") ~hi:(Some "a"))

(* Soundness: any key inside [lo, hi) routes inside the interval; and
   the interval is tight at the low end (lo's own shard is its first). *)
let qcheck_interval_covers =
  QCheck.Test.make ~count:500
    ~name:"shard_interval covers exactly the routable shards"
    QCheck.(
      quad (string_of_size Gen.(0 -- 4)) (string_of_size Gen.(0 -- 4))
        (string_of_size Gen.(0 -- 4))
        (int_range 1 Partition.max_shards))
    (fun (key, b1, b2, shards) ->
      let lo, hi = if b1 <= b2 then (b1, b2) else (b2, b1) in
      let spec = range_spec shards in
      match Partition.shard_interval spec ~lo:(Some lo) ~hi:(Some hi) with
      | None -> lo >= hi (* only empty windows have no interval *)
      | Some (a, b) ->
          a = Partition.shard_of_key spec lo
          && a <= b && b < shards
          && (not (lo <= key && key < hi)
             ||
             let i = Partition.shard_of_key spec key in
             a <= i && i <= b))

(* --- sharded scans: routing fanout + merge ----------------------------------- *)

(* Two records per sampled first byte, spanning the whole byte space, so
   every shard of a 4-way range partition holds data. *)
let byte_entries =
  List.concat_map
    (fun j ->
      let i = j * 4 in
      [ (Printf.sprintf "%c-%02x-a" (Char.chr i) i, Printf.sprintf "v%d-a" i);
        (Printf.sprintf "%c-%02x-b" (Char.chr i) i, Printf.sprintf "v%d-b" i) ])
    (List.init 64 Fun.id)

let byte_sorted = List.sort compare byte_entries

(* A factory sharing one telemetry sink across every shard store, so
   [shard.scan.fanout] aggregates the engine-level routing decision. *)
let shared_sink_factory () =
  let sink = Telemetry.create () in
  let mk () =
    let store = Store.create () in
    Store.set_sink store sink;
    Pos.generic (Pos.empty store (Pos.config ~leaf_target:64 ()))
  in
  (sink, mk)

let test_range_scan_single_shard () =
  with_dir "range-fanout" @@ fun dir ->
  let sink, mk = shared_sink_factory () in
  let t = open_exn ~sync:false ~spec:(range_spec 4) ~mk ~dir () in
  ignore
    (Sharded.commit t ~branch:"master" ~message:"seed"
       (List.map (fun (k, v) -> Kv.Put (k, v)) byte_entries));
  let scans0 = Telemetry.counter sink "shard.scan" in
  let fanout0 = Telemetry.counter sink "shard.scan.fanout" in
  (* a window inside shard 0's byte range: the fanout MUST be 1 *)
  let got =
    List.of_seq (Sharded.scan ~lo:"\x10" ~hi:"\x20" t ~branch:"master")
  in
  Alcotest.check entries_t "narrow window content"
    (filter_range ~lo:"\x10" ~hi:"\x20" byte_sorted)
    got;
  Alcotest.(check int) "one scan recorded" (scans0 + 1)
    (Telemetry.counter sink "shard.scan");
  Alcotest.(check int) "single-shard fanout" (fanout0 + 1)
    (Telemetry.counter sink "shard.scan.fanout");
  (* the whole keyspace fans out to all four shards *)
  let all = List.of_seq (Sharded.scan t ~branch:"master") in
  Alcotest.check entries_t "whole keyspace in key order" byte_sorted all;
  Alcotest.(check int) "full fanout" (fanout0 + 1 + 4)
    (Telemetry.counter sink "shard.scan.fanout");
  Sharded.close t

let test_hash_scan_merge () =
  with_dir "hash-merge" @@ fun dir ->
  let sink, mk = shared_sink_factory () in
  let t = open_exn ~sync:false ~spec:(hash_spec 4) ~mk ~dir () in
  ignore
    (Sharded.commit t ~branch:"master" ~message:"seed"
       (List.map (fun (k, v) -> Kv.Put (k, v)) byte_entries));
  let fanout0 = Telemetry.counter sink "shard.scan.fanout" in
  (* hash placement scatters the window: the merge must still produce
     global key order, and the fanout is every shard *)
  let got =
    List.of_seq (Sharded.scan ~lo:"\x10" ~hi:"\x80" t ~branch:"master")
  in
  Alcotest.check entries_t "merged window content"
    (filter_range ~lo:"\x10" ~hi:"\x80" byte_sorted)
    got;
  Alcotest.(check int) "k-way fanout" (fanout0 + 4)
    (Telemetry.counter sink "shard.scan.fanout");
  Alcotest.check entries_t "whole keyspace merged" byte_sorted
    (List.of_seq (Sharded.scan t ~branch:"master"));
  Sharded.close t

(* Batched reads dispatch per shard through the runner; pin them against
   the same committed state the scans see. *)
let test_sharded_get_many () =
  with_dir "get-many" @@ fun dir ->
  let t = open_exn ~sync:false ~spec:(hash_spec 4) ~dir () in
  ignore
    (Sharded.commit t ~branch:"master" ~message:"seed"
       (List.map (fun (k, v) -> Kv.Put (k, v)) byte_entries));
  let keys = List.map fst byte_entries @ [ "ghost-1"; "ghost-2" ] in
  let got = Sharded.get_many t ~branch:"master" keys in
  Alcotest.(check int) "one answer per key" (List.length keys)
    (List.length got);
  List.iter
    (fun (k, v) ->
      Alcotest.(check (option string))
        ("get_many " ^ k)
        (List.assoc_opt k byte_entries)
        v)
    got;
  Sharded.close t

(* --- online reshard: differential + atomicity --------------------------------- *)

let spread_ops seq =
  List.init 6 (fun i ->
      Kv.Put (Printf.sprintf "c%d-%d" seq i, Printf.sprintf "val%d.%d" seq i))

let test_reshard_differential () =
  with_dir "reshard-diff" @@ fun dir ->
  with_dir "reshard-fresh" @@ fun fresh_dir ->
  let t = open_exn ~sync:false ~runner:`Pool ~spec:(hash_spec 4) ~dir () in
  (* content on two branches, with deletes, so the migration streams a
     non-trivial multi-branch state *)
  for seq = 1 to 3 do
    ignore (Sharded.commit t ~branch:"master" ~message:"m" (spread_ops seq))
  done;
  ignore
    (Sharded.commit t ~branch:"master" ~message:"del"
       [ Kv.Del "c2-0"; Kv.Del "c2-1"; Kv.Put ("extra", "x") ]);
  ignore (Sharded.fork t ~from:"master" "dev");
  ignore
    (Sharded.commit t ~branch:"dev" ~message:"d"
       [ Kv.Put ("dev-only", "d1"); Kv.Del "c1-0" ]);
  let master_before = List.of_seq (Sharded.scan t ~branch:"master") in
  let dev_before = List.of_seq (Sharded.scan t ~branch:"dev") in
  (* an out-of-range width is refused up front, handle untouched *)
  (try
     ignore (Sharded.reshard t ~shards:0);
     Alcotest.fail "ACCEPTED shards:0"
   with Invalid_argument _ -> ());
  let t' =
    match Sharded.reshard t ~shards:8 with
    | Ok t' -> t'
    | Error e -> Alcotest.failf "reshard: %a" Wal.pp_error e
  in
  Alcotest.(check int) "generation bumped" 1 (Sharded.generation t');
  Alcotest.(check string) "spec widened, scheme preserved" "hash:8"
    (Partition.to_string (Sharded.spec t'));
  Alcotest.check entries_t "master content preserved" master_before
    (List.of_seq (Sharded.scan t' ~branch:"master"));
  Alcotest.check entries_t "dev content preserved" dev_before
    (List.of_seq (Sharded.scan t' ~branch:"dev"));
  (* POS is history-independent, so the migrated composite must equal a
     fresh 8-shard engine bulk-committed with the same live entries *)
  let f = open_exn ~sync:false ~spec:(hash_spec 8) ~dir:fresh_dir () in
  ignore
    (Sharded.commit f ~branch:"master" ~message:"fresh"
       (List.map (fun (k, v) -> Kv.Put (k, v)) master_before));
  let fresh_head = Sharded.head f ~branch:"master" in
  let migrated_head = Sharded.head t' ~branch:"master" in
  Alcotest.(check bool)
    "composite equals a fresh build at the new width" true
    (Hash.equal fresh_head.Sharded.composite migrated_head.Sharded.composite);
  Sharded.close f;
  (* per-shard stats: every live key accounted for exactly once *)
  let stats = Sharded.shard_stats t' ~branch:"master" in
  Alcotest.(check int) "stats cover 8 shards" 8 (Array.length stats);
  Alcotest.(check int) "keys partition the branch"
    (List.length master_before)
    (Array.fold_left (fun acc s -> acc + s.Sharded.keys) 0 stats);
  (* the engine stays writable after the swap *)
  ignore
    (Sharded.commit t' ~branch:"master" ~message:"post" [ Kv.Put ("post", "1") ]);
  Sharded.close t';
  (* reopen with no spec: the new manifest wins, composite re-verifies *)
  let t'' = open_exn ~dir () in
  Alcotest.(check int) "reopened at generation 1" 1 (Sharded.generation t'');
  Alcotest.(check string) "reopened at hash:8" "hash:8"
    (Partition.to_string (Sharded.spec t''));
  Alcotest.(check (option string))
    "post-reshard write survived" (Some "1")
    (Sharded.get t'' ~branch:"master" "post");
  (* the old generation's shard directories were swept *)
  Alcotest.(check bool)
    "flat-layout shard swept" false
    (Sys.file_exists (Filename.concat dir "shard.0"));
  Sharded.close t''

(* --- reshard SIGKILL storm: old or new, never a mix ---------------------------- *)

let crash_rounds () =
  match Option.bind (Sys.getenv_opt "SIRI_SCAN_ROUNDS") int_of_string_opt with
  | Some n -> max 1 n
  | None -> 4

let storm_template ~backend dir =
  let t = open_exn ~sync:false ~backend ~spec:(range_spec 4) ~dir () in
  ignore
    (Sharded.commit t ~branch:"master" ~message:"seed"
       (List.map (fun (k, v) -> Kv.Put (k, v)) byte_entries));
  Sharded.close t

(* The child flips the layout 4 ↔ 8 forever with fsync on, durably
   acking each completed generation; the parent SIGKILLs at a seeded
   instant.  Recovery must open cleanly (the composite re-check would
   refuse a mixed layout), land on a generation covering every ack, on
   a width matching that generation's parity, with the seed entries
   intact under the new routing. *)
let test_reshard_sigkill ~backend () =
  let rounds = crash_rounds () in
  let rng = Rng.create 20260806 in
  for round = 1 to rounds do
    with_dir (Printf.sprintf "rkill-%d" round) @@ fun dir ->
    storm_template ~backend dir;
    let acked_path =
      Filename.concat (Filename.dirname dir) (Filename.basename dir ^ ".acked")
    in
    (match Unix.fork () with
    | 0 ->
        let fd =
          Unix.openfile acked_path
            [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
            0o644
        in
        let t = open_exn ~sync:true ~backend ~dir () in
        let rec loop t g =
          let m = if (Sharded.spec t).Partition.shards = 4 then 8 else 4 in
          match Sharded.reshard t ~shards:m with
          | Ok t ->
              let line = Printf.sprintf "%d\n" (g + 1) in
              ignore (Unix.write_substring fd line 0 (String.length line));
              Unix.fsync fd;
              loop t (g + 1)
          | Error _ -> Unix._exit 1
        in
        (try loop t 0 with _ -> ());
        Unix._exit 0
    | pid ->
        Unix.sleepf (0.05 +. (Rng.float rng *. 0.4));
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        let acked =
          if Sys.file_exists acked_path then
            read_file acked_path |> String.split_on_char '\n'
            |> List.filter_map int_of_string_opt
            |> List.fold_left max 0
          else 0
        in
        if Sys.file_exists acked_path then Sys.remove acked_path;
        let t = open_exn ~backend ~dir () in
        let g = Sharded.generation t in
        if g < acked then
          Alcotest.failf "round %d: ACKED RESHARD LOST (acked %d, recovered %d)"
            round acked g;
        let width = (Sharded.spec t).Partition.shards in
        Alcotest.(check int)
          (Printf.sprintf "round %d: width matches generation parity" round)
          (if g mod 2 = 0 then 4 else 8)
          width;
        Alcotest.check entries_t
          (Printf.sprintf "round %d: entries intact at generation %d" round g)
          byte_sorted
          (List.of_seq (Sharded.scan t ~branch:"master"));
        Sharded.close t)
  done

(* --- WAL bulk record ----------------------------------------------------------- *)

let test_bulk_record_roundtrip () =
  let r =
    Wal.Bulk
      { branch = "dev";
        message = "migrate";
        entries = [ ("a", "1"); ("b", ""); ("\x00odd", "\xffv") ] }
  in
  let blob = Wal.magic ^ Wal.encode_record ~seq:7 r in
  match Wal.scan blob with
  | Ok { Wal.entries = [ (7, r') ]; clamped_bytes = 0; _ } ->
      Alcotest.(check bool) "bulk record roundtrips" true (r = r')
  | Ok _ -> Alcotest.fail "unexpected scan shape"
  | Error e -> Alcotest.failf "scan: %a" Wal.pp_error e

(* --- server: streamed scan end to end ------------------------------------------ *)

let test_server_scan () =
  with_dir "serve-scan" @@ fun dir ->
  Unix.mkdir dir 0o755;
  let data = Filename.concat dir "d" and sock = Filename.concat dir "s" in
  let sharded =
    open_exn ~sync:false ~runner:`Threads ~spec:(range_spec 2) ~dir:data ()
  in
  let server = Server.start_sharded ~sharded ~listen:[ `Unix sock ] () in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      match Client.connect ~addr:(`Unix sock) () with
      | Error e -> Alcotest.failf "connect: %s" (Client.error_to_string e)
      | Ok c ->
          (* 600 entries: the reply must stream as multiple frames (the
             server chunks at 256) and reassemble in order *)
          let entries =
            List.init 600 (fun i ->
                (Printf.sprintf "wk-%04d" i, Printf.sprintf "wv%d" i))
          in
          (match
             Client.commit c ~branch:"master" ~message:"seed"
               (List.map (fun (k, v) -> Kv.Put (k, v)) entries)
           with
          | Error e -> Alcotest.failf "commit: %s" (Client.error_to_string e)
          | Ok _ -> ());
          (match Client.scan c ~branch:"master" with
          | Ok got ->
              Alcotest.check entries_t "full scan over the wire" entries got
          | Error e -> Alcotest.failf "scan: %s" (Client.error_to_string e));
          (match Client.scan ~lo:"wk-0100" ~hi:"wk-0110" c ~branch:"master" with
          | Ok got ->
              Alcotest.check entries_t "windowed scan"
                (filter_range ~lo:"wk-0100" ~hi:"wk-0110" entries)
                got
          | Error e -> Alcotest.failf "scan lo/hi: %s" (Client.error_to_string e));
          (match Client.scan ~limit:10 c ~branch:"master" with
          | Ok got ->
              Alcotest.check entries_t "limited scan"
                (List.filteri (fun i _ -> i < 10) entries)
                got
          | Error e -> Alcotest.failf "scan limit: %s" (Client.error_to_string e));
          (match Client.scan c ~branch:"ghost" with
          | Error (`Unknown_branch _) -> ()
          | Ok _ -> Alcotest.fail "scan on a ghost branch answered"
          | Error e ->
              Alcotest.failf "ghost branch: %s" (Client.error_to_string e));
          Client.close c)

(* An MBT-backed server refuses the scan as a typed error instead of
   crashing the session. *)
let test_server_scan_mbt_refused () =
  with_dir "serve-mbt" @@ fun dir ->
  Unix.mkdir dir 0o755;
  let data = Filename.concat dir "d" and sock = Filename.concat dir "s" in
  let durable =
    match
      Durable.open_ ~sync:false ~dir:data
        ~empty_index:
          (Mbt.generic (Mbt.empty (Store.create ()) (Mbt.config ~capacity:16 ())))
        ()
    with
    | Ok d -> d
    | Error e -> Alcotest.failf "Durable.open_: %a" Wal.pp_error e
  in
  let server = Server.start ~durable ~listen:[ `Unix sock ] () in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      match Client.connect ~addr:(`Unix sock) () with
      | Error e -> Alcotest.failf "connect: %s" (Client.error_to_string e)
      | Ok c ->
          (match
             Client.commit c ~branch:"master" ~message:"seed"
               [ Kv.Put ("a", "1") ]
           with
          | Error e -> Alcotest.failf "commit: %s" (Client.error_to_string e)
          | Ok _ -> ());
          (match Client.scan c ~branch:"master" with
          | Error (`Refused _) -> ()
          | Ok _ -> Alcotest.fail "MBT server ANSWERED an ordered scan"
          | Error e ->
              Alcotest.failf "expected refusal, got: %s"
                (Client.error_to_string e));
          (* the session survives the refusal: a point read still works *)
          (match Client.get c ~branch:"master" "a" with
          | Ok (Some "1") -> ()
          | Ok _ -> Alcotest.fail "get after refused scan: wrong value"
          | Error e ->
              Alcotest.failf "get after refused scan: %s"
                (Client.error_to_string e));
          Client.close c)

let () =
  let qcheck = QCheck_alcotest.to_alcotest in
  Alcotest.run "scan"
    [ ( "streaming",
        [ Alcotest.test_case "edge windows on every ordered kind" `Quick
            test_scan_edges;
          Alcotest.test_case "mbt refuses with a typed error" `Quick
            test_mbt_refuses;
          qcheck qcheck_scan_differential ] );
      ( "routing",
        [ Alcotest.test_case "interval boundaries (range scheme)" `Quick
            test_shard_interval_boundaries;
          qcheck qcheck_interval_covers ] );
      ( "sharded",
        [ Alcotest.test_case "range window touches one shard" `Quick
            test_range_scan_single_shard;
          Alcotest.test_case "hash window k-way merges" `Quick
            test_hash_scan_merge;
          Alcotest.test_case "get_many through the runner" `Quick
            test_sharded_get_many ] );
      ( "reshard",
        [ Alcotest.test_case "4 -> 8 preserves content and composite" `Quick
            test_reshard_differential;
          Alcotest.test_case "bulk WAL record roundtrips" `Quick
            test_bulk_record_roundtrip ] );
      ( "reshard-kill",
        [ Alcotest.test_case "SIGKILL storm (snapshot backend)" `Slow
            (test_reshard_sigkill ~backend:`Snapshot);
          Alcotest.test_case "SIGKILL storm (pack backend)" `Slow
            (test_reshard_sigkill ~backend:`Pack) ] );
      ( "server",
        [ Alcotest.test_case "streamed scan end to end" `Quick test_server_scan;
          Alcotest.test_case "mbt server refuses scans" `Quick
            test_server_scan_mbt_refused ] ) ]
