(* Read-path layer: decoded-node cache equivalence across all five index
   kinds, batched multi-get vs one-at-a-time lookups, Bloom-filter
   soundness (zero false negatives), the generalized cost-budget LRU, the
   SIRI_NODE_CACHE override, and cache invalidation under tampering. *)

open Siri_core
module Store = Siri_store.Store
module Node_cache = Siri_readpath.Node_cache
module Bloom = Siri_readpath.Bloom
module Mpt = Siri_mpt.Mpt
module Mbt = Siri_mbt.Mbt
module Pos = Siri_pos.Pos_tree
module Mvbt = Siri_mvbt.Mvbt
module Prolly = Siri_prolly.Prolly
module Engine = Siri_forkbase.Engine
module Telemetry = Siri_telemetry.Telemetry

(* Small node parameters so a few dozen records already build real trees. *)
let makers ~cache_bytes () =
  let s () = Store.create ~cache_bytes () in
  [ Mpt.generic (Mpt.empty (s ()));
    Mbt.generic (Mbt.empty (s ()) (Mbt.config ~capacity:32 ~fanout:4 ()));
    Pos.generic (Pos.empty (s ()) (Pos.config ~leaf_target:256 ()));
    Mvbt.generic
      (Mvbt.empty (s ()) (Mvbt.config ~leaf_capacity:4 ~internal_capacity:5 ()));
    Prolly.generic (Prolly.empty (s ())) ]

let op_gen =
  QCheck.Gen.(
    list_size (0 -- 80)
      (map2
         (fun del (k, v) -> if del then Kv.Del k else Kv.Put (k, v))
         (frequency [ (1, return true); (3, return false) ])
         (pair
            (string_size ~gen:(char_range 'a' 'e') (1 -- 4))
            (string_size (0 -- 10)))))

(* Same alphabet as the op keys, so query lists mix hits and misses. *)
let keys_gen =
  QCheck.Gen.(list_size (0 -- 60) (string_size ~gen:(char_range 'a' 'f') (1 -- 4)))

(* --- cached == uncached ---------------------------------------------------- *)

let qcheck_cache_transparent =
  QCheck.Test.make
    ~name:"cached lookups agree with uncached, every kind" ~count:50
    (QCheck.make QCheck.Gen.(pair op_gen keys_gen))
    (fun (ops, queries) ->
      List.for_all2
        (fun plain cached ->
          let p = plain.Generic.batch ops
          and c = cached.Generic.batch ops in
          (* Caching must not perturb commits either. *)
          Siri_crypto.Hash.equal p.Generic.root c.Generic.root
          && List.for_all
               (fun k ->
                 (* Twice: the second pass reads back what the first pass
                    put into the cache. *)
                 p.Generic.lookup k = c.Generic.lookup k
                 && p.Generic.lookup k = c.Generic.lookup k)
               queries)
        (makers ~cache_bytes:0 ())
        (makers ~cache_bytes:Node_cache.default_budget ()))

(* A tiny budget forces constant eviction; answers must not change. *)
let qcheck_cache_thrashing =
  QCheck.Test.make ~name:"thrashing cache still answers correctly" ~count:30
    (QCheck.make QCheck.Gen.(pair op_gen keys_gen))
    (fun (ops, queries) ->
      List.for_all2
        (fun plain small ->
          let p = plain.Generic.batch ops
          and s = small.Generic.batch ops in
          List.for_all (fun k -> p.Generic.lookup k = s.Generic.lookup k) queries)
        (makers ~cache_bytes:0 ())
        (makers ~cache_bytes:512 ()))

(* --- get_many == map lookup ------------------------------------------------ *)

let qcheck_get_many =
  QCheck.Test.make
    ~name:"get_many agrees with one-at-a-time lookup, every kind" ~count:50
    (QCheck.make QCheck.Gen.(pair op_gen keys_gen))
    (fun (ops, queries) ->
      List.for_all
        (fun inst ->
          let t = inst.Generic.batch ops in
          t.Generic.get_many queries
          = List.map (fun k -> (k, t.Generic.lookup k)) queries)
        (makers ~cache_bytes:Node_cache.default_budget ()))

let qcheck_get_many_filtered =
  QCheck.Test.make
    ~name:"filtered Generic.get/get_many agree with raw lookups" ~count:50
    (QCheck.make QCheck.Gen.(pair keys_gen keys_gen))
    (fun (put_keys, queries) ->
      let entries =
        List.map (fun k -> (k, "v" ^ k)) (List.sort_uniq compare put_keys)
      in
      List.for_all
        (fun inst ->
          (* load_sorted registers the root's Bloom filter, so these go
             through the negative-lookup short-circuit. *)
          let t = Generic.load_sorted inst entries in
          Generic.get_many t queries
          = List.map (fun k -> (k, t.Generic.lookup k)) queries
          && List.for_all
               (fun k -> Generic.get t k = t.Generic.lookup k)
               queries)
        (makers ~cache_bytes:0 ()))

(* --- Bloom filter ---------------------------------------------------------- *)

let qcheck_bloom_no_false_negative =
  QCheck.Test.make ~name:"bloom: zero false negatives" ~count:300
    (QCheck.make QCheck.Gen.(list_size (0 -- 200) (string_size (0 -- 30))))
    (fun keys ->
      let f = Bloom.of_keys keys in
      List.for_all (fun k -> Bloom.mem f k) keys)

let qcheck_bloom_copy_extends =
  QCheck.Test.make ~name:"bloom: copy + add keeps all old and new keys"
    ~count:100
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (0 -- 50) (string_size (0 -- 10)))
           (list_size (0 -- 50) (string_size (0 -- 10)))))
    (fun (old_keys, new_keys) ->
      let f = Bloom.of_keys old_keys in
      let g = Bloom.copy f in
      Bloom.add_all g new_keys;
      List.for_all (Bloom.mem g) old_keys
      && List.for_all (Bloom.mem g) new_keys)

let test_bloom_false_positive_rate () =
  let n = 10_000 in
  let f = Bloom.of_keys (List.init n (Printf.sprintf "member-%d")) in
  let fp = ref 0 in
  for i = 0 to n - 1 do
    if Bloom.mem f (Printf.sprintf "absent-%d" i) then incr fp
  done;
  let rate = float_of_int !fp /. float_of_int n in
  (* ~0.8% expected at 10 bits/key; 3% leaves slack, zero means broken. *)
  Alcotest.(check bool)
    (Printf.sprintf "fp rate %.4f within (0, 0.03)" rate)
    true
    (rate < 0.03);
  Alcotest.(check bool) "filter actually discriminates" true (!fp < n / 2)

(* --- Lru_cache (cost-budget functor) --------------------------------------- *)

module Slru = Siri_readpath.Lru_cache.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

let test_lru_cache_budget () =
  let c = Slru.create ~budget:100 in
  Slru.insert c "a" ~cost:40 1;
  Slru.insert c "b" ~cost:40 2;
  Slru.insert c "c" ~cost:40 3;
  (* 120 > 100: the least recent entry (a) went. *)
  Alcotest.(check (option int)) "a evicted" None (Slru.find c "a");
  Alcotest.(check (option int)) "b stays" (Some 2) (Slru.find c "b");
  Alcotest.(check (option int)) "c stays" (Some 3) (Slru.find c "c");
  Alcotest.(check int) "one eviction" 1 (Slru.evictions c);
  Alcotest.(check int) "cost tracked" 80 (Slru.cost c)

let test_lru_cache_recency () =
  let c = Slru.create ~budget:3 in
  Slru.insert c "a" ~cost:1 1;
  Slru.insert c "b" ~cost:1 2;
  Slru.insert c "c" ~cost:1 3;
  ignore (Slru.find c "a");
  Slru.insert c "d" ~cost:1 4;
  (* a was refreshed, so b (second-oldest) is the victim. *)
  Alcotest.(check (option int)) "a survives" (Some 1) (Slru.find c "a");
  Alcotest.(check (option int)) "b evicted" None (Slru.find c "b");
  Alcotest.(check (option int)) "d resident" (Some 4) (Slru.find c "d")

let test_lru_cache_replace () =
  let c = Slru.create ~budget:10 in
  Slru.insert c "a" ~cost:4 1;
  Slru.insert c "a" ~cost:6 2;
  Alcotest.(check (option int)) "replaced value" (Some 2) (Slru.find c "a");
  Alcotest.(check int) "cost is the new cost" 6 (Slru.cost c);
  Alcotest.(check int) "still one entry" 1 (Slru.size c);
  (* Oversized replacement drains the cache, including the entry itself. *)
  Slru.insert c "a" ~cost:11 3;
  Alcotest.(check int) "drained" 0 (Slru.size c);
  Alcotest.(check int) "no cost held" 0 (Slru.cost c)

let test_lru_cache_oversized () =
  let c = Slru.create ~budget:10 in
  Slru.insert c "big" ~cost:11 1;
  Alcotest.(check (option int)) "never admitted" None (Slru.find c "big");
  Alcotest.(check int) "no eviction counted" 0 (Slru.evictions c)

let test_lru_cache_remove_resize_clear () =
  let c = Slru.create ~budget:10 in
  List.iter (fun (k, v) -> Slru.insert c k ~cost:2 v)
    [ ("a", 1); ("b", 2); ("c", 3); ("d", 4); ("e", 5) ];
  Alcotest.(check bool) "remove hit" true (Slru.remove c "c");
  Alcotest.(check bool) "remove miss" false (Slru.remove c "zz");
  Alcotest.(check int) "cost after remove" 8 (Slru.cost c);
  Alcotest.(check int) "removals are not evictions" 0 (Slru.evictions c);
  Slru.resize c ~budget:4;
  Alcotest.(check int) "resize evicts to fit" 4 (Slru.cost c);
  Alcotest.(check int) "two entries left" 2 (Slru.size c);
  (* The two most recent survive. *)
  Alcotest.(check (option int)) "d survives" (Some 4) (Slru.find c "d");
  Alcotest.(check (option int)) "e survives" (Some 5) (Slru.find c "e");
  Slru.clear c;
  Alcotest.(check int) "clear empties" 0 (Slru.size c);
  Slru.insert c "x" ~cost:1 9;
  Alcotest.(check (option int)) "usable after clear" (Some 9) (Slru.find c "x")

(* --- SIRI_NODE_CACHE override ---------------------------------------------- *)

let test_env_override () =
  let with_env v f =
    Unix.putenv "SIRI_NODE_CACHE" v;
    Fun.protect ~finally:(fun () -> Unix.putenv "SIRI_NODE_CACHE" "") f
  in
  Unix.putenv "SIRI_NODE_CACHE" "";
  Alcotest.(check (option int)) "empty = unset" None (Node_cache.budget_from_env ());
  with_env "1048576" (fun () ->
      Alcotest.(check (option int)) "bytes parsed" (Some 1_048_576)
        (Node_cache.budget_from_env ());
      let c = Node_cache.create () in
      Alcotest.(check int) "create honours env" 1_048_576 (Node_cache.budget c);
      Alcotest.(check bool) "enabled" true (Node_cache.enabled c));
  with_env "0" (fun () ->
      Alcotest.(check (option int)) "0 disables" (Some 0)
        (Node_cache.budget_from_env ());
      Alcotest.(check bool) "disabled" false
        (Node_cache.enabled (Node_cache.create ())));
  with_env "-7" (fun () ->
      Alcotest.(check (option int)) "negative clamps to 0" (Some 0)
        (Node_cache.budget_from_env ()));
  with_env "64mb" (fun () ->
      Alcotest.(check (option int)) "junk ignored" None
        (Node_cache.budget_from_env ()));
  (* Explicit argument beats the env. *)
  with_env "999" (fun () ->
      Alcotest.(check int) "explicit budget wins" 123
        (Node_cache.budget (Node_cache.create ~budget:123 ())))

(* --- tamper invalidation ---------------------------------------------------- *)

let test_tamper_invalidates_cache () =
  let store = Store.create ~cache_bytes:Node_cache.default_budget () in
  let t =
    List.fold_left
      (fun t i -> Mpt.insert t (Printf.sprintf "key-%03d" i) "v")
      (Mpt.empty store)
      (List.init 50 Fun.id)
  in
  (* Warm the cache on the root. *)
  Alcotest.(check (option string)) "present" (Some "v") (Mpt.lookup t "key-007");
  Alcotest.(check bool) "root cached" true
    (Node_cache.hits (Store.cache store) >= 0);
  ignore (Store.remove_node store (Mpt.root t));
  (* The removed node must not be served from the cache. *)
  Alcotest.check_raises "read-through sees the removal" Not_found (fun () ->
      ignore (Mpt.lookup t "key-007"))

(* --- engine reads ----------------------------------------------------------- *)

let test_engine_reads () =
  let store = Store.create ~cache_bytes:Node_cache.default_budget () in
  let eng = Engine.create ~empty_index:(Mpt.generic (Mpt.empty store)) in
  let entries = List.init 40 (fun i -> (Printf.sprintf "k%02d" i, "v0")) in
  ignore (Engine.commit_bulk eng ~branch:"master" ~message:"bulk" entries);
  ignore
    (Engine.commit eng ~branch:"master" ~message:"delta"
       [ Kv.Put ("k05", "v1"); Kv.Del ("k06"); Kv.Put ("new", "n") ]);
  Alcotest.(check (option string)) "updated" (Some "v1")
    (Engine.get eng ~branch:"master" "k05");
  Alcotest.(check (option string)) "deleted" None
    (Engine.get eng ~branch:"master" "k06");
  Alcotest.(check (option string)) "added" (Some "n")
    (Engine.get eng ~branch:"master" "new");
  Alcotest.(check (option string)) "absent" None
    (Engine.get eng ~branch:"master" "nope");
  let queries = [ "k01"; "nope"; "k05"; "k06"; "new"; "k01" ] in
  Alcotest.(check bool) "get_many = map get" true
    (Engine.get_many eng ~branch:"master" queries
    = List.map (fun k -> (k, Engine.get eng ~branch:"master" k)) queries);
  (* The commits propagated a filter to the head root, and an absent key
     is answered without touching the index. *)
  let head_root = (Engine.head eng "master").Engine.index_root in
  Alcotest.(check bool) "filter propagated" true
    (Option.is_some (Store.root_filter store head_root));
  let sink = Telemetry.create () in
  Store.set_sink store sink;
  ignore (Engine.get eng ~branch:"master" "definitely-absent");
  Store.set_sink store Telemetry.null;
  Alcotest.(check int) "filter short-circuits the miss" 1
    (Telemetry.counter sink "read.filter.skip")

let test_hit_miss_telemetry () =
  let store = Store.create ~cache_bytes:Node_cache.default_budget () in
  let inst =
    Generic.load_sorted
      (Mpt.generic (Mpt.empty store))
      (List.init 60 (fun i -> (Printf.sprintf "k%03d" i, "v")))
  in
  let sink = Telemetry.create () in
  Store.set_sink store sink;
  ignore (Generic.get inst "k010") (* cold: decodes at least one node *);
  ignore (Generic.get inst "k010") (* warm: pure cache hits *);
  Store.set_sink store Telemetry.null;
  Alcotest.(check int) "one miss-tier lookup" 1
    (Telemetry.counter sink "read.lookup.miss");
  Alcotest.(check int) "one hit-tier lookup" 1
    (Telemetry.counter sink "read.lookup.hit");
  Alcotest.(check bool) "node hits recorded" true
    (Telemetry.counter sink "cache.node.hit" > 0)

let () =
  Alcotest.run "readpath"
    [ ( "equivalence",
        [ QCheck_alcotest.to_alcotest qcheck_cache_transparent;
          QCheck_alcotest.to_alcotest qcheck_cache_thrashing;
          QCheck_alcotest.to_alcotest qcheck_get_many;
          QCheck_alcotest.to_alcotest qcheck_get_many_filtered ] );
      ( "bloom",
        [ QCheck_alcotest.to_alcotest qcheck_bloom_no_false_negative;
          QCheck_alcotest.to_alcotest qcheck_bloom_copy_extends;
          Alcotest.test_case "false positive rate" `Quick
            test_bloom_false_positive_rate ] );
      ( "lru cache",
        [ Alcotest.test_case "byte budget" `Quick test_lru_cache_budget;
          Alcotest.test_case "recency" `Quick test_lru_cache_recency;
          Alcotest.test_case "replace" `Quick test_lru_cache_replace;
          Alcotest.test_case "oversized" `Quick test_lru_cache_oversized;
          Alcotest.test_case "remove/resize/clear" `Quick
            test_lru_cache_remove_resize_clear ] );
      ( "integration",
        [ Alcotest.test_case "env override" `Quick test_env_override;
          Alcotest.test_case "tamper invalidation" `Quick
            test_tamper_invalidates_cache;
          Alcotest.test_case "engine reads" `Quick test_engine_reads;
          Alcotest.test_case "hit/miss telemetry" `Quick
            test_hit_miss_telemetry ] ) ]
