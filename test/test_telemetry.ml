(* Metrics-conservation suite: the telemetry layer is locked in by
   accounting identities, not by golden numbers.  Whatever the workload,
   the sink's counters must agree with the store's own statistics
   ([store.put] = [stats.puts], …), probe histograms must hold exactly one
   sample per call, cache hits and misses must partition the node reads,
   and spans must nest and close.  A final property pins the zero-impact
   guarantee: attaching a sink never changes a root hash. *)

open Siri_core
module Store = Siri_store.Store
module Hash = Siri_crypto.Hash
module Telemetry = Siri_telemetry.Telemetry
module Histo = Telemetry.Histo
module Mpt = Siri_mpt.Mpt
module Mbt = Siri_mbt.Mbt
module Pos = Siri_pos.Pos_tree
module Mvbt = Siri_mvbt.Mvbt
module Remote = Siri_forkbase.Remote

(* One maker per index, labelled with the Generic name the probes use. *)
let makers =
  [ ("mpt", fun store -> Mpt.generic (Mpt.empty store));
    ( "mbt",
      fun store ->
        Mbt.generic (Mbt.empty store (Mbt.config ~capacity:16 ~fanout:4 ())) );
    ( "pos-tree",
      fun store -> Pos.generic (Pos.empty store (Pos.config ~leaf_target:256 ()))
    );
    ( "mvmb+-tree",
      fun store ->
        Mvbt.generic
          (Mvbt.empty store (Mvbt.config ~leaf_capacity:4 ~internal_capacity:5 ()))
    ) ]

let key i = Printf.sprintf "key-%03d" (i mod 500)
let value i = Printf.sprintf "value-%d" (i * 7)

(* Replay a stream of small ints as a mixed workload: every third id is a
   lookup, the rest are single-op commits.  Returns (final, #lookups,
   #batches). *)
let replay t ids =
  let lookups = ref 0 and batches = ref 0 in
  let t =
    List.fold_left
      (fun t i ->
        if i mod 3 = 0 then begin
          incr lookups;
          ignore (t.Generic.lookup (key i));
          t
        end
        else begin
          incr batches;
          t.Generic.batch [ Kv.Put (key i, value i) ]
        end)
      t ids
  in
  (t, !lookups, !batches)

let workload_gen = QCheck.(list_of_size Gen.(1 -- 80) small_nat)

(* store.put/get/put_unique/put_bytes must agree with the store's own
   counters, for any workload, on every index. *)
let conservation_test (label, mk) =
  QCheck.Test.make
    ~name:(label ^ ": sink counters = store stats")
    ~count:30 workload_gen
    (fun ids ->
      let store = Store.create () in
      let sink = Telemetry.create () in
      Store.set_sink store sink;
      let _, lookups, batches = replay (mk store) ids in
      let stats = Store.stats store in
      let c = Telemetry.counter sink in
      let hist_count name =
        match Telemetry.histogram sink name with
        | None -> 0
        | Some h -> Histo.count h
      in
      c "store.put" = stats.Store.puts
      && c "store.get" = stats.Store.gets
      && c "store.put_unique" = stats.Store.unique_nodes
      && c "store.put_bytes" = stats.Store.put_bytes
      && c (label ^ ".lookup.calls") = lookups
      && hist_count (label ^ ".lookup") = lookups
      && c (label ^ ".batch.calls") = batches
      && hist_count (label ^ ".batch") = batches
      && Telemetry.span_depth sink = 0
      && List.for_all
           (fun s -> s.Telemetry.stop_s >= s.Telemetry.start_s && s.Telemetry.depth >= 0)
           (Telemetry.spans sink))

(* Attaching a sink observes; it must not change a single root hash. *)
let root_invariance_test (label, mk) =
  QCheck.Test.make
    ~name:(label ^ ": sink never changes roots")
    ~count:20 workload_gen
    (fun ids ->
      let build instrument =
        let store = Store.create () in
        if instrument then Store.set_sink store (Telemetry.create ());
        let t, _, _ = replay (mk store) ids in
        Hash.to_hex t.Generic.root
      in
      String.equal (build true) (build false))

(* With the Remote simulation sharing the store's sink, every node read is
   classified as exactly one cache hit or miss. *)
let cache_partition_test (label, mk) =
  QCheck.Test.make
    ~name:(label ^ ": cache.hit + cache.miss = store.get")
    ~count:20 workload_gen
    (fun ids ->
      let store = Store.create () in
      let t = Generic.of_entries (mk store) (List.map (fun i -> (key i, value i)) ids) in
      let sink = Telemetry.create () in
      Store.set_sink store sink;
      let remote = Remote.attach store ~cache_nodes:8 ~sink Remote.gigabit_lan in
      List.iter (fun i -> ignore (t.Generic.lookup (key i))) (ids @ ids);
      Remote.detach store remote;
      let c = Telemetry.counter sink in
      c "cache.hit" + c "cache.miss" = c "store.get"
      && Remote.hits remote = c "cache.hit"
      && Remote.misses remote = c "cache.miss")

(* Deterministic span semantics under the tick clock. *)
let test_span_nesting () =
  let sink = Telemetry.create () in
  let depth_inside = ref (-1) in
  let result =
    Telemetry.with_span sink "outer" (fun () ->
        Telemetry.with_span sink "inner" (fun () ->
            depth_inside := Telemetry.span_depth sink;
            17))
  in
  Alcotest.(check int) "thunk result" 17 result;
  Alcotest.(check int) "depth inside inner" 2 !depth_inside;
  Alcotest.(check int) "depth after" 0 (Telemetry.span_depth sink);
  match Telemetry.spans sink with
  | [ inner; outer ] ->
      Alcotest.(check string) "inner first" "inner" inner.Telemetry.name;
      Alcotest.(check string) "outer second" "outer" outer.Telemetry.name;
      Alcotest.(check int) "inner depth" 1 inner.Telemetry.depth;
      Alcotest.(check int) "outer depth" 0 outer.Telemetry.depth;
      Alcotest.(check bool) "inner inside outer" true
        (outer.Telemetry.start_s <= inner.Telemetry.start_s
        && inner.Telemetry.stop_s <= outer.Telemetry.stop_s)
  | spans ->
      Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_on_raise () =
  let sink = Telemetry.create () in
  (try Telemetry.with_span sink "doomed" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span recorded despite raise" 1
    (List.length (Telemetry.spans sink));
  Alcotest.(check int) "depth restored" 0 (Telemetry.span_depth sink)

(* Every digest computed during a build is metered; there is at least one
   per logical write (put hashes its payload). *)
let test_hash_metering () =
  let store = Store.create () in
  let sink = Telemetry.create () in
  Store.set_sink store sink;
  Telemetry.attach_hash_counter sink;
  Fun.protect ~finally:Telemetry.detach_hash_counter (fun () ->
      let t =
        Generic.of_entries
          ((List.assoc "mpt" makers) store)
          (List.init 100 (fun i -> (key i, value i)))
      in
      ignore (t.Generic.lookup (key 1));
      let c = Telemetry.counter sink in
      Alcotest.(check bool) "hash.count >= store.put" true
        (c "hash.count" >= c "store.put");
      Alcotest.(check bool) "hash.bytes >= store.put_bytes" true
        (c "hash.bytes" >= c "store.put_bytes"))

(* Histogram accounting: exact count/sum/min/max, bucket counts summing to
   the total, quantiles clamped to the observed range. *)
let test_histo_accounting () =
  let h = Histo.create () in
  let samples = List.init 1000 (fun i -> float_of_int (i + 1) *. 1e-6) in
  List.iter (Histo.add h) samples;
  Alcotest.(check int) "count" 1000 (Histo.count h);
  Alcotest.(check (float 1e-9)) "sum" (List.fold_left ( +. ) 0. samples) (Histo.sum h);
  Alcotest.(check (float 0.)) "min" 1e-6 (Histo.min_value h);
  Alcotest.(check (float 0.)) "max" 1e-3 (Histo.max_value h);
  Alcotest.(check int) "bucket counts partition the samples" 1000
    (List.fold_left (fun acc (_, _, n) -> acc + n) 0 (Histo.buckets h));
  List.iter
    (fun p ->
      let q = Histo.quantile h p in
      Alcotest.(check bool)
        (Printf.sprintf "q%.2f within [min,max]" p)
        true
        (q >= Histo.min_value h && q <= Histo.max_value h))
    [ 0.0; 0.5; 0.95; 0.99; 1.0 ];
  Alcotest.(check bool) "quantiles monotone" true
    (Histo.p50 h <= Histo.p95 h && Histo.p95 h <= Histo.p99 h)

(* The null sink records nothing and costs nothing observable. *)
let test_null_sink () =
  Alcotest.(check bool) "null disabled" false (Telemetry.enabled Telemetry.null);
  Telemetry.incr Telemetry.null "x";
  Telemetry.observe Telemetry.null "x" 1.0;
  let r = Telemetry.with_span Telemetry.null "x" (fun () -> 3) in
  Alcotest.(check int) "with_span passthrough" 3 r;
  Alcotest.(check int) "no counters" 0
    (List.length (Telemetry.counters Telemetry.null));
  Alcotest.(check string) "empty ndjson" "" (Telemetry.to_ndjson Telemetry.null)

(* JSON export is well-formed enough to round-trip the interesting shapes:
   escapes, non-finite floats as null, nested objects. *)
let test_json_export () =
  let open Telemetry.Json in
  Alcotest.(check string) "escaping"
    {|{"k\"\n":"v\\"}|}
    (to_string (obj [ ("k\"\n", str "v\\") ]));
  Alcotest.(check string) "nan is null" {|[null,1,1.5]|}
    (to_string (arr [ num Float.nan; num 1.0; num 1.5 ]));
  let sink = Telemetry.create () in
  Telemetry.incr sink "a.b";
  Telemetry.observe sink "lat" 1e-5;
  let s = to_string (Telemetry.to_json sink) in
  Alcotest.(check bool) "counter exported" true
    (Astring.String.is_infix ~affix:{|"a.b":1|} s);
  Alcotest.(check bool) "histogram exported" true
    (Astring.String.is_infix ~affix:{|"lat"|} s);
  let nd = Telemetry.to_ndjson sink in
  List.iter
    (fun line ->
      Alcotest.(check bool) "ndjson line is an object" true
        (String.length line > 1 && line.[0] = '{'))
    (String.split_on_char '\n' (String.trim nd))

let () =
  let qcheck tests = List.map QCheck_alcotest.to_alcotest tests in
  Alcotest.run "telemetry"
    [ ( "conservation",
        qcheck
          (List.map conservation_test makers
          @ List.map cache_partition_test makers) );
      ("zero-impact", qcheck (List.map root_invariance_test makers));
      ( "spans",
        [ Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "raise" `Quick test_span_on_raise ] );
      ( "metering",
        [ Alcotest.test_case "hash counter" `Quick test_hash_metering;
          Alcotest.test_case "histogram accounting" `Quick test_histo_accounting;
          Alcotest.test_case "null sink" `Quick test_null_sink;
          Alcotest.test_case "json export" `Quick test_json_export ] ) ]
