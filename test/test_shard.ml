(* Sharded keyspace engine: routing, composite binding, the
   sharded ⇔ unsharded differential oracle, a zero-acceptance storm on
   tampered two-layer proofs, top-journal truncation recovery, and a
   SIGKILL harness asserting the all-or-clamped invariant — a crash
   anywhere inside the multi-shard commit fan-out recovers every shard
   to the same published global prefix, never a mix of generations. *)

open Siri_core
module Store = Siri_store.Store
module Hash = Siri_crypto.Hash
module Partition = Siri_shard.Partition
module Composite = Siri_shard.Composite
module Views = Siri_shard.Views
module Shard_proof = Siri_shard.Shard_proof
module Sharded = Siri_shard.Sharded
module Wal = Siri_wal.Wal
module Durable = Siri_wal.Durable
module Server = Siri_server.Server
module Client = Siri_server.Client
module Pos = Siri_pos.Pos_tree

let mk_empty () =
  Pos.generic (Pos.empty (Store.create ()) (Pos.config ~leaf_target:64 ()))

(* --- scratch directories --------------------------------------------------- *)

let dir_counter = ref 0

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let fresh_dir name =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "siri-shard-%d-%s-%d" (Unix.getpid ()) name !dir_counter)
  in
  rm_rf d;
  d

let with_dir name f =
  let d = fresh_dir name in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let rec cp_r src dst =
  if Sys.is_directory src then begin
    Unix.mkdir dst 0o755;
    Array.iter
      (fun n -> cp_r (Filename.concat src n) (Filename.concat dst n))
      (Sys.readdir src)
  end
  else
    let bytes = In_channel.with_open_bin src In_channel.input_all in
    Out_channel.with_open_bin dst (fun oc -> Out_channel.output_string oc bytes)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path bytes =
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc

let open_exn ?sync ?(runner = `Inline) ?spec ~dir () =
  match Sharded.open_ ?sync ~runner ?spec ~dir ~empty_index:mk_empty () with
  | Ok t -> t
  | Error e -> Alcotest.failf "Sharded.open_: %a" Wal.pp_error e

let spec_of n = Partition.make Partition.Hash ~shards:n

(* In-memory per-shard views from an entry list, mirroring what the
   engine materializes — the oracle side of the proof tests. *)
let views_of spec entries =
  let buckets = Array.make spec.Partition.shards [] in
  List.iter
    (fun ((k, _) as e) ->
      let i = Partition.shard_of_key spec k in
      buckets.(i) <- e :: buckets.(i))
    entries;
  Array.map (fun part -> Generic.of_entries (mk_empty ()) (List.rev part)) buckets

(* --- partition routing ------------------------------------------------------ *)

(* Regression pin for the FNV sign bug: [Int64.to_int] of a 64-bit hash
   keeps bit 62, so masking before the truncation left half of all keys
   with a negative native hash and an out-of-range shard.  High-byte
   keys trip it reliably. *)
let test_partition_in_range () =
  let keys =
    List.init 400 (fun i -> Printf.sprintf "key-%d-%c" i (Char.chr (i mod 256)))
    @ [ "\xff\xff\xff"; "\x80"; ""; "a"; String.make 40 '\xfe' ]
  in
  List.iter
    (fun scheme ->
      List.iter
        (fun shards ->
          let spec = Partition.make scheme ~shards in
          List.iter
            (fun k ->
              let i = Partition.shard_of_key spec k in
              if i < 0 || i >= shards then
                Alcotest.failf "shard_of_key %S = %d not in [0,%d)" k i shards)
            keys)
        [ 1; 2; 3; 4; 7; 8; 64 ])
    [ Partition.Hash; Partition.Range ]

let test_partition_split () =
  let spec = spec_of 4 in
  let keys = List.init 100 (fun i -> Printf.sprintf "split-%d" i) in
  let groups = Partition.split_keys spec keys in
  (* ascending, non-empty, in range *)
  let rec ascending = function
    | (i, ks) :: ((j, _) :: _ as rest) ->
        i < j && ks <> [] && i >= 0 && i < 4 && ascending rest
    | [ (i, ks) ] -> ks <> [] && i >= 0 && i < 4
    | [] -> true
  in
  Alcotest.(check bool) "groups ascending + bounded" true (ascending groups);
  (* exactly a permutation grouping: every key lands in the group its
     routing says, and nothing is lost or duplicated *)
  List.iter
    (fun (i, ks) ->
      List.iter
        (fun k ->
          Alcotest.(check int) ("routes " ^ k) i (Partition.shard_of_key spec k))
        ks)
    groups;
  let flat = List.concat_map snd groups in
  Alcotest.(check int) "no key lost" (List.length keys) (List.length flat);
  Alcotest.(check (list string))
    "order preserved inside each group"
    (List.filter (fun k -> Partition.shard_of_key spec k = 0) keys)
    (match List.assoc_opt 0 groups with Some ks -> ks | None -> [])

let test_partition_manifest_roundtrip () =
  List.iter
    (fun spec ->
      match Partition.of_string (Partition.to_string spec) with
      | Ok spec' ->
          Alcotest.(check string)
            "roundtrip" (Partition.to_string spec) (Partition.to_string spec')
      | Error e -> Alcotest.failf "of_string(to_string): %s" e)
    [ spec_of 1; spec_of 64; Partition.make Partition.Range ~shards:8 ];
  List.iter
    (fun s ->
      match Partition.of_string s with
      | Ok _ -> Alcotest.failf "accepted bad spec %S" s
      | Error _ -> ())
    [ "hash:0"; "hash:65"; "pony:4"; "hash"; "hash:4:4"; "hash:x" ]

let qcheck_partition_total =
  QCheck.Test.make ~count:300 ~name:"shard_of_key total and in range"
    QCheck.(pair string (int_range 1 Partition.max_shards))
    (fun (key, shards) ->
      let ih = Partition.shard_of_key (Partition.make Hash ~shards) key in
      let ir = Partition.shard_of_key (Partition.make Range ~shards) key in
      ih >= 0 && ih < shards && ir >= 0 && ir < shards)

(* --- composite binding ------------------------------------------------------ *)

let test_composite_binding () =
  let r i = Hash.of_string (Printf.sprintf "root-%d" i) in
  let roots n = Array.init n r in
  let c4 = Composite.root (spec_of 4) (roots 4) in
  (* deterministic *)
  Alcotest.(check bool)
    "deterministic" true
    (Hash.equal c4 (Composite.root (spec_of 4) (roots 4)));
  (* binds the scheme *)
  Alcotest.(check bool)
    "scheme bound" false
    (Hash.equal c4 (Composite.root (Partition.make Range ~shards:4) (roots 4)));
  (* binds each root's position *)
  let swapped = roots 4 in
  let t = swapped.(0) in
  swapped.(0) <- swapped.(1);
  swapped.(1) <- t;
  Alcotest.(check bool)
    "position bound" false
    (Hash.equal c4 (Composite.root (spec_of 4) swapped));
  (* N=1 is not the raw shard root, and widths never collide *)
  let c1 = Composite.root (spec_of 1) (roots 1) in
  Alcotest.(check bool) "1-shard /= raw root" false (Hash.equal c1 (r 0));
  Alcotest.(check bool)
    "width bound" false
    (Hash.equal
       (Composite.root (spec_of 8) (roots 8))
       (Composite.root (spec_of 4) (roots 4)));
  (* wrong vector length refused *)
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Composite.root: 3 roots for 4 shards") (fun () ->
      ignore (Composite.root (spec_of 4) (roots 3)))

(* --- differential oracle: sharded == unsharded ------------------------------ *)

let key_universe = Array.init 30 (fun i -> Printf.sprintf "uk-%02d" i)

let gen_batches =
  QCheck.Gen.(
    list_size (int_range 1 6)
      (list_size (int_range 1 8)
         (map2
            (fun k put ->
              let key = key_universe.(k mod Array.length key_universe) in
              match put with
              | None -> Kv.Del key
              | Some v -> Kv.Put (key, "v" ^ string_of_int v))
            (int_bound 100)
            (option (int_bound 50)))))

let qcheck_differential =
  QCheck.Test.make ~count:12
    ~name:"sharded == flat: get_many, prove/verify, runner-identical composite"
    (QCheck.make gen_batches)
    (fun batches ->
      let shards = 1 + (Hashtbl.hash batches mod 4) in
      let spec = spec_of shards in
      (* flat oracle *)
      let flat =
        List.fold_left (fun inst ops -> inst.Generic.batch ops) (mk_empty ())
          batches
      in
      let commit_all t =
        List.iter
          (fun ops ->
            ignore (Sharded.commit t ~branch:"master" ~message:"diff" ops))
          batches;
        let h = Sharded.head t ~branch:"master" in
        (h, t)
      in
      let keys = Array.to_list key_universe @ [ "absent-1"; "absent-2" ] in
      with_dir "diff-inline" @@ fun d1 ->
      with_dir "diff-pool" @@ fun d2 ->
      let h1, t1 = commit_all (open_exn ~runner:`Inline ~spec ~dir:d1 ()) in
      let h2, t2 = commit_all (open_exn ~runner:`Pool ~spec ~dir:d2 ()) in
      (* 1. reads agree with the flat oracle, key by key *)
      let got = Sharded.get_many t1 ~branch:"master" keys in
      let reads_ok =
        List.for_all
          (fun (k, v) -> v = Generic.get flat k)
          got
        && List.length got = List.length keys
      in
      (* 2. proof claims agree with the flat multiproof's claims *)
      let sp = Sharded.prove_many t1 ~branch:"master" keys in
      let flat_mp = Generic.prove_many flat keys in
      let sort = List.sort compare in
      let claims_ok =
        sort (Shard_proof.claims sp) = sort flat_mp.Multiproof.claims
      in
      (* 3. the proof verifies against the engine's composite *)
      let verify_ok =
        Shard_proof.verify ~verifier:(mk_empty ()) ~composite:h1.Sharded.composite
          sp
      in
      (* 4. fan-out scheduling never leaks into the root *)
      let runner_ok = Hash.equal h1.Sharded.composite h2.Sharded.composite in
      Sharded.close t1;
      Sharded.close t2;
      reads_ok && claims_ok && verify_ok && runner_ok)

(* --- zero-acceptance storm on tampered proofs -------------------------------- *)

let storm_entries =
  List.init 200 (fun i -> (Printf.sprintf "storm-%03d" i, Printf.sprintf "sv%d" i))

let test_proof_storm () =
  let spec = spec_of 4 in
  let views = views_of spec storm_entries in
  let composite = Views.composite spec views in
  let verifier = mk_empty () in
  let keys = [ "storm-000"; "storm-077"; "storm-199"; "nope-1"; "nope-2" ] in
  let sp = Shard_proof.prove ~views spec keys in
  Alcotest.(check bool) "honest proof verifies" true
    (Shard_proof.verify ~verifier ~composite sp);
  let refuse what sp' =
    if Shard_proof.verify ~verifier ~composite sp' then
      Alcotest.failf "ACCEPTED tampered proof: %s" what
  in
  (* forged composite *)
  if
    Shard_proof.verify ~verifier
      ~composite:(Hash.of_string "not the composite") sp
  then Alcotest.fail "ACCEPTED against forged composite";
  (* a flipped root in the top vector *)
  let roots' = Array.copy sp.Shard_proof.roots in
  roots'.(2) <- Hash.of_string "evil";
  refuse "flipped shard root" { sp with Shard_proof.roots = roots' };
  (* spec swap: same roots, different routing *)
  refuse "swapped scheme"
    { sp with Shard_proof.spec = Partition.make Range ~shards:4 };
  (* a part replayed at another shard index *)
  (match sp.Shard_proof.parts with
  | (i, mp) :: rest ->
      let j = (i + 1) mod 4 in
      refuse "part moved to another shard"
        { sp with Shard_proof.parts = List.sort compare ((j, mp) :: rest) }
  | [] -> Alcotest.fail "no parts");
  (* every part's multiproof tampered in turn *)
  List.iter
    (fun (i, _mp) ->
      let parts' =
        List.map
          (fun (i', mp') -> if i' = i then (i', Multiproof.tamper mp') else (i', mp'))
          sp.Shard_proof.parts
      in
      refuse
        (Printf.sprintf "tampered multiproof in part %d" i)
        { sp with Shard_proof.parts = parts' })
    sp.Shard_proof.parts;
  (* the relocation attack the routing check exists for: prove a key
     absent against a shard that simply does not hold it *)
  let victim = "storm-042" in
  let home = Partition.shard_of_key spec victim in
  let away = (home + 1) mod 4 in
  let away_mp = Generic.prove_many views.(away) [ victim ] in
  Alcotest.(check bool)
    "victim is absent on the away shard" true
    (Multiproof.find away_mp victim = Some None);
  refuse "absence claim relocated to another shard"
    { sp with Shard_proof.parts = [ (away, away_mp) ] }

(* Bit flips over the encoded wire form: every flip must be refused at
   decode, or decode to a proof the verifier refuses — never accepted. *)
let test_proof_wire_flips () =
  let spec = spec_of 3 in
  let views = views_of spec storm_entries in
  let composite = Views.composite spec views in
  let verifier = mk_empty () in
  let sp = Shard_proof.prove ~views spec [ "storm-010"; "storm-111"; "gone" ] in
  let blob = Shard_proof.encode sp in
  (match Shard_proof.decode blob with
  | Ok sp' ->
      Alcotest.(check bool) "roundtrip verifies" true
        (Shard_proof.verify ~verifier ~composite sp')
  | Error _ -> Alcotest.fail "roundtrip decode failed");
  let n = String.length blob in
  let step = max 1 (n / 251) in
  let offset = ref 0 in
  while !offset < n do
    let b = Bytes.of_string blob in
    Bytes.set b !offset (Char.chr (Char.code (Bytes.get b !offset) lxor 0x41));
    (match Shard_proof.decode (Bytes.to_string b) with
    | Error (`Tampered _ | `Malformed _) -> ()
    | Ok sp' ->
        if Shard_proof.verify ~verifier ~composite sp' then
          Alcotest.failf "ACCEPTED flipped byte at offset %d" !offset);
    offset := !offset + step
  done

(* --- recovery: top-journal truncation + all-or-clamped ----------------------- *)

(* Keys chosen so every commit fans out across several shards. *)
let spread_ops seq =
  List.init 6 (fun i ->
      Kv.Put (Printf.sprintf "c%d-%d" seq i, Printf.sprintf "val%d.%d" seq i))

let check_prefix ~shards dir expect_commits =
  let t = open_exn ~spec:(spec_of shards) ~dir () in
  let s = Sharded.last_seq t in
  if s < 0 || s > expect_commits then
    Alcotest.failf "recovered last_seq %d outside [0,%d]" s expect_commits;
  (* all-or-clamped: exactly the keys of commits <= s, none beyond *)
  for seq = 1 to expect_commits do
    List.iter
      (fun op ->
        match op with
        | Kv.Put (k, v) -> (
            match Sharded.get t ~branch:"master" k with
            | Some v' when seq <= s && v' = v -> ()
            | None when seq > s -> ()
            | Some _ when seq > s ->
                Alcotest.failf "seq %d leaked past recovered prefix %d" seq s
            | None -> Alcotest.failf "seq %d lost inside recovered prefix %d" seq s
            | Some v' -> Alcotest.failf "key %s has wrong value %S" k v')
        | Kv.Del _ -> ())
      (spread_ops seq)
  done;
  Sharded.close t;
  s

let test_top_truncation () =
  let shards = 3 and commits = 4 in
  with_dir "trunc-src" @@ fun src ->
  let t = open_exn ~sync:false ~spec:(spec_of shards) ~dir:src () in
  for seq = 1 to commits do
    ignore (Sharded.commit t ~branch:"master" ~message:"t" (spread_ops seq))
  done;
  Sharded.close t;
  let top = Filename.concat src "top" in
  let bytes = read_file top in
  let seen = Hashtbl.create 8 in
  for cut = 0 to String.length bytes do
    with_dir "trunc-cut" @@ fun dst ->
    rm_rf dst;
    cp_r src dst;
    write_file (Filename.concat dst "top") (String.sub bytes 0 cut);
    match Sharded.open_ ~spec:(spec_of shards) ~dir:dst ~empty_index:mk_empty () with
    | Error (`Tampered _ | `Malformed _) ->
        (* a cut that leaves a corrupt-looking prefix may be refused, but
           must never be accepted with mixed state *)
        ()
    | Ok t ->
        Sharded.close t;
        let s = check_prefix ~shards dst commits in
        Hashtbl.replace seen s ()
  done;
  (* the sweep must actually exercise intermediate prefixes *)
  Alcotest.(check bool)
    "several distinct prefixes recovered" true
    (Hashtbl.length seen >= 3)

let test_unpublished_rollback () =
  let shards = 3 in
  with_dir "rollback" @@ fun src ->
  let t = open_exn ~sync:false ~spec:(spec_of shards) ~dir:src () in
  ignore (Sharded.commit t ~branch:"master" ~message:"1" (spread_ops 1));
  ignore (Sharded.commit t ~branch:"master" ~message:"2" (spread_ops 2));
  Sharded.close t;
  let t = open_exn ~sync:false ~spec:(spec_of shards) ~dir:src () in
  let head2 = Sharded.head t ~branch:"master" in
  let top2 = String.length (read_file (Filename.concat src "top")) in
  ignore (Sharded.commit t ~branch:"master" ~message:"3" (spread_ops 3));
  Sharded.close t;
  (* drop the publication of commit 3: its shard-journal records are now
     unpublished and must roll back on reopen *)
  let bytes = read_file (Filename.concat src "top") in
  write_file (Filename.concat src "top") (String.sub bytes 0 top2);
  let t = open_exn ~spec:(spec_of shards) ~dir:src () in
  let r = Sharded.recovery t in
  Alcotest.(check int) "recovered to seq 2" 2 r.Sharded.last_seq;
  Alcotest.(check bool) "unpublished records rolled back" true (r.Sharded.capped > 0);
  Alcotest.(check bool)
    "composite equals the published head" true
    (Hash.equal (Sharded.head t ~branch:"master").Sharded.composite
       head2.Sharded.composite);
  List.iter
    (fun op ->
      match op with
      | Kv.Put (k, _) ->
          Alcotest.(check (option string))
            (k ^ " rolled back") None
            (Sharded.get t ~branch:"master" k)
      | Kv.Del _ -> ())
    (spread_ops 3);
  Sharded.close t

let test_composite_mismatch_refused () =
  let shards = 2 in
  with_dir "mismatch" @@ fun dir ->
  let t = open_exn ~sync:false ~spec:(spec_of shards) ~dir () in
  for seq = 1 to 3 do
    ignore (Sharded.commit t ~branch:"master" ~message:"m" (spread_ops seq))
  done;
  Sharded.close t;
  (* swap the two shard directories: both replay cleanly to the same
     seqs, but the composite the top journal published no longer matches
     the recomputed one *)
  let s0 = Filename.concat dir "shard.0" and s1 = Filename.concat dir "shard.1" in
  let tmp = Filename.concat dir "shard.tmp" in
  Sys.rename s0 tmp;
  Sys.rename s1 s0;
  Sys.rename tmp s1;
  match Sharded.open_ ~spec:(spec_of shards) ~dir ~empty_index:mk_empty () with
  | Error (`Malformed msg) ->
      Alcotest.(check bool)
        "names the composite mismatch" true
        (Astring.String.is_infix ~affix:"composite" msg)
  | Error e -> Alcotest.failf "unexpected error: %a" Wal.pp_error e
  | Ok _ -> Alcotest.fail "ACCEPTED a directory with swapped shards"

let test_spec_pinned () =
  with_dir "pin" @@ fun dir ->
  let t = open_exn ~spec:(spec_of 4) ~dir () in
  ignore (Sharded.commit t ~branch:"master" ~message:"p" (spread_ops 1));
  Sharded.close t;
  (* reopen without a spec: the manifest wins *)
  let t = open_exn ~dir () in
  Alcotest.(check string) "manifest spec" "hash:4"
    (Partition.to_string (Sharded.spec t));
  Sharded.close t;
  (* a contradicting explicit spec is refused *)
  match Sharded.open_ ~spec:(spec_of 8) ~dir ~empty_index:mk_empty () with
  | Error (`Malformed _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Wal.pp_error e
  | Ok _ -> Alcotest.fail "ACCEPTED a contradicting shard count"

(* --- SIGKILL: crash mid-multi-shard-commit ----------------------------------- *)

let crash_rounds () =
  match Option.bind (Sys.getenv_opt "SIRI_SHARD_ROUNDS") int_of_string_opt with
  | Some n -> max 1 n
  | None -> 6

let test_sigkill_storm () =
  let shards = 4 in
  let rounds = crash_rounds () in
  let rng = Rng.create 20260806 in
  for round = 1 to rounds do
    with_dir (Printf.sprintf "kill-%d" round) @@ fun dir ->
    let acked_path = Filename.concat (Filename.dirname dir) (Filename.basename dir ^ ".acked") in
    (match Unix.fork () with
    | 0 ->
        (* child: commit forever with fsync on, recording each ack
           durably before issuing the next commit *)
        let t = open_exn ~sync:true ~spec:(spec_of shards) ~dir () in
        let fd =
          Unix.openfile acked_path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
            0o644
        in
        let seq = ref 0 in
        (try
           while true do
             incr seq;
             ignore
               (Sharded.commit t ~branch:"master" ~message:"kill"
                  (spread_ops !seq));
             let line = Printf.sprintf "%d\n" !seq in
             ignore (Unix.write_substring fd line 0 (String.length line));
             Unix.fsync fd
           done
         with _ -> ());
        Unix._exit 0
    | pid ->
        (* parent: let some commits land, then kill at a seeded point *)
        Unix.sleepf (0.02 +. (Rng.float rng *. 0.15));
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        let acked =
          if Sys.file_exists acked_path then
            read_file acked_path |> String.split_on_char '\n'
            |> List.filter_map int_of_string_opt
            |> List.fold_left max 0
          else 0
        in
        Sys.remove acked_path;
        (* recovery: open must succeed (never a composite mismatch), land
           on a prefix that covers every acked commit, and expose
           all-or-nothing state per commit *)
        let t = open_exn ~spec:(spec_of shards) ~dir () in
        let s = Sharded.last_seq t in
        if s < acked then
          Alcotest.failf "round %d: ACKED COMMIT LOST (acked %d, recovered %d)"
            round acked s;
        Sharded.close t;
        ignore (check_prefix ~shards dir (s + 1)))
  done

(* --- sharded server end to end ----------------------------------------------- *)

let test_server_sharded () =
  with_dir "serve" @@ fun dir ->
  Unix.mkdir dir 0o755;
  let data = Filename.concat dir "d" and sock = Filename.concat dir "s" in
  let sharded =
    open_exn ~sync:false ~runner:`Threads ~spec:(spec_of 2) ~dir:data ()
  in
  let server = Server.start_sharded ~sharded ~listen:[ `Unix sock ] () in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      match Client.connect ~addr:(`Unix sock) () with
      | Error e -> Alcotest.failf "connect: %s" (Client.error_to_string e)
      | Ok c ->
          let ops = spread_ops 1 in
          (match Client.commit c ~branch:"master" ~message:"s" ops with
          | Error e -> Alcotest.failf "commit: %s" (Client.error_to_string e)
          | Ok (id, version, _) ->
              Alcotest.(check int) "seq as version" 1 version;
              (* the commit id the server answers is the composite *)
              (match Client.head c ~branch:"master" with
              | Ok (id', root, _) ->
                  Alcotest.(check bool) "head id = commit id" true
                    (Hash.equal id id');
                  Alcotest.(check bool) "head root = composite" true
                    (Hash.equal root id')
              | Error e -> Alcotest.failf "head: %s" (Client.error_to_string e)));
          let keys =
            List.filter_map
              (function Kv.Put (k, _) -> Some k | Kv.Del _ -> None)
              ops
          in
          (match Client.prove_many c ~branch:"master" ("ghost" :: keys) with
          | Error e -> Alcotest.failf "prove: %s" (Client.error_to_string e)
          | Ok (root, blob) -> (
              Alcotest.(check bool) "sharded wire form" true
                (Shard_proof.is_encoded blob);
              match Shard_proof.decode blob with
              | Error (`Malformed m | `Tampered m) ->
                  Alcotest.failf "decode: %s" m
              | Ok sp ->
                  Alcotest.(check bool) "verifies against served root" true
                    (Shard_proof.verify ~verifier:(mk_empty ()) ~composite:root
                       sp);
                  Alcotest.(check int) "all claims answered"
                    (List.length keys + 1)
                    (List.length (Shard_proof.claims sp))));
          Client.close c)

let () =
  let qcheck = QCheck_alcotest.to_alcotest in
  Alcotest.run "shard"
    [ ( "partition",
        [ Alcotest.test_case "routing in range (sign regression)" `Quick
            test_partition_in_range;
          Alcotest.test_case "split_keys grouping" `Quick test_partition_split;
          Alcotest.test_case "manifest roundtrip + rejects" `Quick
            test_partition_manifest_roundtrip;
          qcheck qcheck_partition_total ] );
      ( "composite",
        [ Alcotest.test_case "binds scheme, width, position" `Quick
            test_composite_binding ] );
      ("differential", [ qcheck qcheck_differential ]);
      ( "adversarial",
        [ Alcotest.test_case "zero acceptance: structural tampers" `Quick
            test_proof_storm;
          Alcotest.test_case "zero acceptance: wire flips" `Quick
            test_proof_wire_flips ] );
      ( "recovery",
        [ Alcotest.test_case "top journal truncated at every offset" `Slow
            test_top_truncation;
          Alcotest.test_case "unpublished shard records roll back" `Quick
            test_unpublished_rollback;
          Alcotest.test_case "composite mismatch refused" `Quick
            test_composite_mismatch_refused;
          Alcotest.test_case "manifest spec pinned" `Quick test_spec_pinned ] );
      ( "crash-kill",
        [ Alcotest.test_case "SIGKILL mid-fan-out: all-or-clamped" `Slow
            test_sigkill_storm ] );
      ( "server",
        [ Alcotest.test_case "sharded serving end to end" `Quick
            test_server_sharded ] ) ]
