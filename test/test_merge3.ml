(* Three-way merge in the engine: merge-base discovery in the commit DAG and
   base-aware conflict semantics (a record conflicts only if BOTH branches
   changed it since they diverged). *)

open Siri_core
module Store = Siri_store.Store
module Engine = Siri_forkbase.Engine
module Pos = Siri_pos.Pos_tree
module Hash = Siri_crypto.Hash

let fresh_engine () =
  let store = Store.create () in
  Engine.create
    ~empty_index:(Pos.generic (Pos.empty store (Pos.config ~leaf_target:256 ())))

let seeded () =
  let e = fresh_engine () in
  let _ =
    Engine.commit e ~branch:"master" ~message:"base"
      [ Kv.Put ("a", "base-a"); Kv.Put ("b", "base-b"); Kv.Put ("c", "base-c") ]
  in
  Engine.fork e ~from:"master" "side";
  e

let test_merge_base_is_fork_point () =
  let e = seeded () in
  let fork_head = Engine.head e "master" in
  let _ = Engine.commit e ~branch:"master" ~message:"m1" [ Kv.Put ("a", "m") ] in
  let _ = Engine.commit e ~branch:"side" ~message:"s1" [ Kv.Put ("b", "s") ] in
  let base = Engine.merge_base e "master" "side" in
  Alcotest.(check bool) "base = fork point" true
    (Hash.equal base.Engine.id fork_head.Engine.id)

let test_merge_base_of_nested_forks () =
  let e = seeded () in
  let _ = Engine.commit e ~branch:"side" ~message:"s1" [ Kv.Put ("x", "1") ] in
  Engine.fork e ~from:"side" "side2";
  let side_head = Engine.head e "side" in
  let _ = Engine.commit e ~branch:"side2" ~message:"s2" [ Kv.Put ("y", "2") ] in
  let base = Engine.merge_base e "side" "side2" in
  Alcotest.(check bool) "nested base" true
    (Hash.equal base.Engine.id side_head.Engine.id)

let test_no_false_conflict_when_one_side_changes () =
  (* Master rewrites "a"; side never touched it: a two-way merge would call
     that a difference, the three-way merge must not. *)
  let e = seeded () in
  let _ = Engine.commit e ~branch:"master" ~message:"m" [ Kv.Put ("a", "master-a") ] in
  let _ = Engine.commit e ~branch:"side" ~message:"s" [ Kv.Put ("b", "side-b") ] in
  (match Engine.merge_branches e ~into:"master" ~from:"side" ~policy:Kv.Fail_on_conflict with
  | Error cs -> Alcotest.failf "unexpected %d conflicts" (List.length cs)
  | Ok _ -> ());
  Alcotest.(check (option string)) "master keeps its change" (Some "master-a")
    (Engine.get e ~branch:"master" "a");
  Alcotest.(check (option string)) "side change merged" (Some "side-b")
    (Engine.get e ~branch:"master" "b");
  Alcotest.(check (option string)) "untouched record" (Some "base-c")
    (Engine.get e ~branch:"master" "c")

let test_conflict_requires_both_sides () =
  let e = seeded () in
  let _ = Engine.commit e ~branch:"master" ~message:"m" [ Kv.Put ("a", "ours") ] in
  let _ = Engine.commit e ~branch:"side" ~message:"s" [ Kv.Put ("a", "theirs") ] in
  (match Engine.merge_branches e ~into:"master" ~from:"side" ~policy:Kv.Fail_on_conflict with
  | Ok _ -> Alcotest.fail "expected conflict"
  | Error [ c ] ->
      Alcotest.(check string) "key" "a" c.Kv.key;
      Alcotest.(check string) "ours" "ours" c.Kv.left_value;
      Alcotest.(check string) "theirs" "theirs" c.Kv.right_value
  | Error cs -> Alcotest.failf "expected 1 conflict, got %d" (List.length cs));
  (* The failed merge must not have committed anything. *)
  Alcotest.(check (option string)) "master unchanged" (Some "ours")
    (Engine.get e ~branch:"master" "a")

let test_same_change_both_sides_no_conflict () =
  let e = seeded () in
  let _ = Engine.commit e ~branch:"master" ~message:"m" [ Kv.Put ("a", "agreed") ] in
  let _ = Engine.commit e ~branch:"side" ~message:"s" [ Kv.Put ("a", "agreed") ] in
  match Engine.merge_branches e ~into:"master" ~from:"side" ~policy:Kv.Fail_on_conflict with
  | Error _ -> Alcotest.fail "identical changes must not conflict"
  | Ok _ ->
      Alcotest.(check (option string)) "value" (Some "agreed")
        (Engine.get e ~branch:"master" "a")

let test_delete_vs_untouched () =
  let e = seeded () in
  let _ = Engine.commit e ~branch:"side" ~message:"s" [ Kv.Del "b" ] in
  (match Engine.merge_branches e ~into:"master" ~from:"side" ~policy:Kv.Fail_on_conflict with
  | Error _ -> Alcotest.fail "clean delete must merge"
  | Ok _ -> ());
  Alcotest.(check (option string)) "deletion propagates" None
    (Engine.get e ~branch:"master" "b")

let test_delete_vs_modify_conflict () =
  let e = seeded () in
  let _ = Engine.commit e ~branch:"master" ~message:"m" [ Kv.Put ("b", "modified") ] in
  let _ = Engine.commit e ~branch:"side" ~message:"s" [ Kv.Del "b" ] in
  (match Engine.merge_branches e ~into:"master" ~from:"side" ~policy:Kv.Fail_on_conflict with
  | Ok _ -> Alcotest.fail "delete-vs-modify must conflict"
  | Error [ c ] ->
      Alcotest.(check string) "left is the modification" "modified" c.Kv.left_value;
      Alcotest.(check string) "right marks deletion" "" c.Kv.right_value
  | Error _ -> Alcotest.fail "one conflict expected");
  (* Prefer_right applies the deletion. *)
  match Engine.merge_branches e ~into:"master" ~from:"side" ~policy:Kv.Prefer_right with
  | Error _ -> Alcotest.fail "policy resolves"
  | Ok _ ->
      Alcotest.(check (option string)) "deleted" None (Engine.get e ~branch:"master" "b")

let test_resolve_policy () =
  let e = seeded () in
  let _ = Engine.commit e ~branch:"master" ~message:"m" [ Kv.Put ("a", "1") ] in
  let _ = Engine.commit e ~branch:"side" ~message:"s" [ Kv.Put ("a", "2") ] in
  match
    Engine.merge_branches e ~into:"master" ~from:"side"
      ~policy:(Kv.Resolve (fun _ l r -> l ^ "+" ^ r))
  with
  | Error _ -> Alcotest.fail "resolver cannot conflict"
  | Ok _ ->
      Alcotest.(check (option string)) "resolved" (Some "1+2")
        (Engine.get e ~branch:"master" "a")

let test_merge_after_merge () =
  (* After merging side into master, a second merge finds the new base and
     brings only fresh changes. *)
  let e = seeded () in
  let _ = Engine.commit e ~branch:"side" ~message:"s1" [ Kv.Put ("x", "1") ] in
  let _ =
    match Engine.merge_branches e ~into:"master" ~from:"side" ~policy:Kv.Fail_on_conflict with
    | Ok c -> c
    | Error _ -> Alcotest.fail "first merge clean"
  in
  let _ = Engine.commit e ~branch:"side" ~message:"s2" [ Kv.Put ("y", "2") ] in
  (match Engine.merge_branches e ~into:"master" ~from:"side" ~policy:Kv.Fail_on_conflict with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "second merge clean");
  Alcotest.(check (option string)) "x" (Some "1") (Engine.get e ~branch:"master" "x");
  Alcotest.(check (option string)) "y" (Some "2") (Engine.get e ~branch:"master" "y")

let () =
  Alcotest.run "merge3"
    [ ( "merge-base",
        [ Alcotest.test_case "fork point" `Quick test_merge_base_is_fork_point;
          Alcotest.test_case "nested forks" `Quick test_merge_base_of_nested_forks ] );
      ( "three-way",
        [ Alcotest.test_case "one-sided change is clean" `Quick
            test_no_false_conflict_when_one_side_changes;
          Alcotest.test_case "both-sided change conflicts" `Quick
            test_conflict_requires_both_sides;
          Alcotest.test_case "identical changes agree" `Quick
            test_same_change_both_sides_no_conflict;
          Alcotest.test_case "clean delete" `Quick test_delete_vs_untouched;
          Alcotest.test_case "delete vs modify" `Quick test_delete_vs_modify_conflict;
          Alcotest.test_case "resolver policy" `Quick test_resolve_policy;
          Alcotest.test_case "merge after merge" `Quick test_merge_after_merge ] ) ]
