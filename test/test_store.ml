(* Content-addressed store: dedup on put, reachability, GC, tamper
   detection, observers, stats. *)

module Store = Siri_store.Store
module Hash = Siri_crypto.Hash

let test_put_get () =
  let s = Store.create () in
  let h = Store.put s "hello" in
  Alcotest.(check string) "get" "hello" (Store.get s h);
  Alcotest.(check bool) "mem" true (Store.mem s h);
  Alcotest.(check bool) "content hash" true (Hash.equal h (Hash.of_string "hello"));
  Alcotest.(check bool) "missing" false (Store.mem s (Hash.of_string "nope"));
  Alcotest.(check (option string)) "find none" None (Store.find s (Hash.of_string "nope"))

let test_dedup_on_put () =
  let s = Store.create () in
  let h1 = Store.put s "same" in
  let h2 = Store.put s "same" in
  Alcotest.(check bool) "same hash" true (Hash.equal h1 h2);
  let st = Store.stats s in
  Alcotest.(check int) "2 puts" 2 st.puts;
  Alcotest.(check int) "1 unique" 1 st.unique_nodes;
  Alcotest.(check int) "stored once" 4 st.stored_bytes;
  Alcotest.(check int) "put bytes counted twice" 8 st.put_bytes

let test_children_and_size () =
  let s = Store.create () in
  let a = Store.put s "leaf-a" in
  let b = Store.put s "leaf-b" in
  let p = Store.put s ~children:[ a; b ] "parent" in
  Alcotest.(check int) "children" 2 (List.length (Store.children s p));
  Alcotest.(check int) "size" 6 (Store.size_of s a)

(* Build a little diamond: root -> {l, r}, l -> shared, r -> shared. *)
let diamond s =
  let shared = Store.put s "shared" in
  let l = Store.put s ~children:[ shared ] "left" in
  let r = Store.put s ~children:[ shared ] "right" in
  let root = Store.put s ~children:[ l; r ] "root" in
  (root, l, r, shared)

let test_reachability () =
  let s = Store.create () in
  let root, l, _, shared = diamond s in
  let set = Store.reachable s root in
  Alcotest.(check int) "4 nodes" 4 (Hash.Set.cardinal set);
  Alcotest.(check bool) "includes shared" true (Hash.Set.mem shared set);
  let sub = Store.reachable s l in
  Alcotest.(check int) "subtree" 2 (Hash.Set.cardinal sub);
  Alcotest.(check int) "bytes" (String.length "root" + 4 + 5 + 6)
    (Store.bytes_of_set s set)

let test_reachable_many_shares_walk () =
  let s = Store.create () in
  let root, l, r, _ = diamond s in
  let set = Store.reachable_many s [ l; r ] in
  Alcotest.(check int) "union of two subtrees" 3 (Hash.Set.cardinal set);
  let all = Store.reachable_many s [ root; l; r ] in
  Alcotest.(check int) "superset" 4 (Hash.Set.cardinal all)

let test_null_and_missing_children () =
  let s = Store.create () in
  (* Children that are null or absent are skipped, not errors. *)
  let p = Store.put s ~children:[ Hash.null; Hash.of_string "absent" ] "p" in
  Alcotest.(check int) "only self" 1 (Hash.Set.cardinal (Store.reachable s p))

let test_gc () =
  let s = Store.create () in
  let root, _, _, _ = diamond s in
  let dead = Store.put s "garbage" in
  let reclaimed = Store.gc s ~roots:[ root ] in
  Alcotest.(check int) "1 reclaimed" 1 reclaimed;
  Alcotest.(check bool) "dead gone" false (Store.mem s dead);
  Alcotest.(check bool) "root kept" true (Store.mem s root);
  Alcotest.(check int) "stats updated" 4 (Store.stats s).unique_nodes

let test_gc_keeps_all_roots () =
  let s = Store.create () in
  let a = Store.put s "a" in
  let b = Store.put s "b" in
  let reclaimed = Store.gc s ~roots:[ a; b ] in
  Alcotest.(check int) "nothing reclaimed" 0 reclaimed

let test_corrupt_detection () =
  let s = Store.create () in
  let h = Store.put s "precious data" in
  (match Store.get_verified s h with
  | Ok v -> Alcotest.(check string) "verified ok" "precious data" v
  | Error _ -> Alcotest.fail "should verify");
  Store.corrupt s h;
  (match Store.get_verified s h with
  | Ok _ -> Alcotest.fail "tampering not detected"
  | Error (`Tampered t) -> Alcotest.(check bool) "names hash" true (Hash.equal t h))

let test_observers () =
  let s = Store.create () in
  let gets = ref 0 and puts = ref 0 in
  Store.set_get_observer s (Some (fun _ size -> gets := !gets + size));
  Store.set_put_observer s (Some (fun _ size -> puts := !puts + size));
  let h = Store.put s "12345" in
  ignore (Store.get s h);
  ignore (Store.get s h);
  Alcotest.(check int) "puts observed" 5 !puts;
  Alcotest.(check int) "gets observed" 10 !gets;
  Store.set_get_observer s None;
  ignore (Store.get s h);
  Alcotest.(check int) "observer removed" 10 !gets

let test_reset_counters () =
  let s = Store.create () in
  let h = Store.put s "x" in
  ignore (Store.get s h);
  Store.reset_counters s;
  let st = Store.stats s in
  Alcotest.(check int) "puts zero" 0 st.puts;
  Alcotest.(check int) "gets zero" 0 st.gets;
  Alcotest.(check int) "unique kept" 1 st.unique_nodes

let test_read_gate () =
  let s = Store.create () in
  let h = Store.put s "gated" in
  let calls = ref 0 in
  Store.set_read_gate s
    (Some
       (fun gh _bytes ->
         incr calls;
         if !calls = 1 then raise (Store.Transient gh)));
  (match Store.get s h with
  | _ -> Alcotest.fail "expected transient fault"
  | exception Store.Transient th ->
      Alcotest.(check bool) "names hash" true (Hash.equal th h));
  (* The fault was transient: the very next read succeeds. *)
  Alcotest.(check string) "retry succeeds" "gated" (Store.get s h);
  Store.set_read_gate s None;
  Alcotest.(check string) "gate removed" "gated" (Store.get s h);
  Alcotest.(check int) "gate saw two reads" 2 !calls

let test_scrub_finds_damage () =
  let s = Store.create () in
  let root, l, _r, shared = diamond s in
  let stray = Store.put s "stray-unreachable" in
  (match Store.scrub s with
  | r ->
      Alcotest.(check int) "clean scan" 5 r.Store.scanned;
      Alcotest.(check bool) "clean" true (Store.scrub_clean r));
  Store.corrupt_at s l ~pos:2;
  Alcotest.(check bool) "remove shared" true (Store.remove_node s shared);
  let r = Store.scrub ~roots:[ root ] s in
  Alcotest.(check (list string)) "corrupt = [l]" [ Hash.to_hex l ]
    (List.map Hash.to_hex r.Store.corrupt);
  (* Both parents of the removed child report a dangling reference. *)
  Alcotest.(check int) "two dangling edges" 2 (List.length r.Store.dangling);
  List.iter
    (fun (_, c) ->
      Alcotest.(check bool) "dangling names shared" true (Hash.equal c shared))
    r.Store.dangling;
  Alcotest.(check (list string)) "orphan = [stray]" [ Hash.to_hex stray ]
    (List.map Hash.to_hex r.Store.orphaned);
  Alcotest.(check bool) "not clean" false (Store.scrub_clean r)

let test_truncate_node () =
  let s = Store.create () in
  let h = Store.put s "0123456789" in
  Store.truncate_node s h ~keep:4;
  Alcotest.(check string) "torn write" "0123" (Store.get s h);
  Alcotest.(check int) "stored bytes adjusted" 4 (Store.stats s).stored_bytes;
  let r = Store.scrub s in
  Alcotest.(check int) "truncation detected" 1 (List.length r.Store.corrupt)

let test_repair_from_replica () =
  let s = Store.create () in
  let root, l, r, shared = diamond s in
  (* Pristine replica taken before the damage. *)
  let replica = Store.create () in
  Store.iter_nodes s (fun bytes children ->
      ignore (Store.put replica ~children bytes));
  Store.corrupt s l;
  Store.truncate_node s r ~keep:1;
  ignore (Store.remove_node s shared);
  Alcotest.(check bool) "damage visible" false (Store.scrub_clean (Store.scrub s));
  let grafted = Store.repair s ~replica in
  Alcotest.(check int) "l, r and shared restored" 3 grafted;
  Alcotest.(check bool) "clean after repair" true (Store.scrub_clean (Store.scrub s));
  Alcotest.(check string) "payload healed" "left" (Store.get s l);
  Alcotest.(check int) "reachable closure restored" 4
    (Hash.Set.cardinal (Store.reachable s root))

let test_repair_rejects_corrupt_replica () =
  let s = Store.create () in
  let h = Store.put s "precious" in
  let replica = Store.create () in
  Store.iter_nodes s (fun bytes children ->
      ignore (Store.put replica ~children bytes));
  (* Damage BOTH stores: the replica cannot supply authentic bytes for [h],
     so repair must quarantine without resurrecting bad data under [h]. *)
  Store.corrupt s h;
  Store.corrupt replica h;
  ignore (Store.repair s ~replica);
  Alcotest.(check bool) "corrupt node quarantined" false (Store.mem s h);
  let r = Store.scrub s in
  Alcotest.(check int) "no corrupt node survives" 0 (List.length r.Store.corrupt)

let qcheck_content_addressing =
  QCheck.Test.make ~name:"hash equality = content equality" ~count:300
    QCheck.(pair string string)
    (fun (a, b) ->
      let s = Store.create () in
      let ha = Store.put s a and hb = Store.put s b in
      Hash.equal ha hb = (a = b))

let () =
  Alcotest.run "store"
    [ ( "basics",
        [ Alcotest.test_case "put/get" `Quick test_put_get;
          Alcotest.test_case "dedup on put" `Quick test_dedup_on_put;
          Alcotest.test_case "children/size" `Quick test_children_and_size;
          QCheck_alcotest.to_alcotest qcheck_content_addressing ] );
      ( "reachability",
        [ Alcotest.test_case "page sets" `Quick test_reachability;
          Alcotest.test_case "union walk" `Quick test_reachable_many_shares_walk;
          Alcotest.test_case "null/missing children" `Quick
            test_null_and_missing_children ] );
      ( "gc",
        [ Alcotest.test_case "collects garbage" `Quick test_gc;
          Alcotest.test_case "keeps roots" `Quick test_gc_keeps_all_roots ] );
      ( "integrity",
        [ Alcotest.test_case "tamper detection" `Quick test_corrupt_detection;
          Alcotest.test_case "observers" `Quick test_observers;
          Alcotest.test_case "reset counters" `Quick test_reset_counters;
          Alcotest.test_case "read gate" `Quick test_read_gate;
          Alcotest.test_case "truncate node" `Quick test_truncate_node ] );
      ( "scrub & repair",
        [ Alcotest.test_case "scrub finds damage" `Quick test_scrub_finds_damage;
          Alcotest.test_case "repair from replica" `Quick test_repair_from_replica;
          Alcotest.test_case "repair rejects corrupt replica" `Quick
            test_repair_rejects_corrupt_replica ] ) ]
