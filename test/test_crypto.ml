(* SHA-256 against NIST FIPS 180-4 vectors, streaming equivalence, and the
   Hash / Hex utility modules. *)

module Sha256 = Siri_crypto.Sha256
module Hash = Siri_crypto.Hash
module Hex = Siri_crypto.Hex

let check_digest msg input expected_hex =
  Alcotest.(check string) msg expected_hex (Sha256.to_hex (Sha256.digest_string input))

(* Official short/long message test vectors. *)
let nist_vectors =
  [ ( "",
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855" );
    ( "abc",
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" );
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
       ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
    ( "The quick brown fox jumps over the lazy dog",
      "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592" ) ]

let test_nist () =
  List.iter (fun (input, hex) -> check_digest input input hex) nist_vectors

let test_million_a () =
  check_digest "10^6 x a"
    (String.make 1_000_000 'a')
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"

let test_streaming_chunks () =
  (* Feeding in arbitrary chunk sizes equals one-shot hashing. *)
  let data = String.init 10_000 (fun i -> Char.chr ((i * 131) land 0xFF)) in
  let oneshot = Sha256.digest_string data in
  List.iter
    (fun sizes ->
      let ctx = Sha256.init () in
      let pos = ref 0 in
      let i = ref 0 in
      while !pos < String.length data do
        let k = List.nth sizes (!i mod List.length sizes) in
        let len = min k (String.length data - !pos) in
        Sha256.feed_string ctx ~off:!pos ~len data;
        pos := !pos + len;
        incr i
      done;
      Alcotest.(check string) "streamed = one-shot" (Sha256.to_hex oneshot)
        (Sha256.to_hex (Sha256.finalize ctx)))
    [ [ 1 ]; [ 63 ]; [ 64 ]; [ 65 ]; [ 1; 64; 3; 1000 ]; [ 7; 13 ] ]

let test_boundary_lengths () =
  (* Padding edge cases: lengths around the 55/56/64-byte boundaries. *)
  List.iter
    (fun n ->
      let s = String.make n 'x' in
      let ctx = Sha256.init () in
      String.iter (fun c -> Sha256.feed_string ctx (String.make 1 c)) s;
      Alcotest.(check string)
        (Printf.sprintf "len %d" n)
        (Sha256.to_hex (Sha256.digest_string s))
        (Sha256.to_hex (Sha256.finalize ctx)))
    [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 119; 120; 127; 128; 129 ]

let qcheck_streaming =
  QCheck.Test.make ~name:"split-anywhere streaming equivalence" ~count:200
    QCheck.(pair (string_of_size Gen.(0 -- 300)) (int_bound 299))
    (fun (s, cut) ->
      let cut = min cut (String.length s) in
      let ctx = Sha256.init () in
      Sha256.feed_string ctx ~off:0 ~len:cut s;
      Sha256.feed_string ctx ~off:cut ~len:(String.length s - cut) s;
      Sha256.finalize ctx = Sha256.digest_string s)

let test_hash_basics () =
  let h = Hash.of_string "hello" in
  Alcotest.(check int) "size" 32 (String.length (Hash.to_raw h));
  Alcotest.(check bool) "equal self" true (Hash.equal h (Hash.of_string "hello"));
  Alcotest.(check bool) "differs" false (Hash.equal h (Hash.of_string "hellp"));
  Alcotest.(check string) "hex roundtrip" (Hash.to_hex h)
    (Hash.to_hex (Hash.of_hex (Hash.to_hex h)));
  Alcotest.(check int) "short is 8 chars" 8 (String.length (Hash.short h));
  Alcotest.(check bool) "null is null" true (Hash.is_null Hash.null);
  Alcotest.(check bool) "h is not null" false (Hash.is_null h)

let test_hash_of_raw_rejects () =
  Alcotest.check_raises "bad length"
    (Invalid_argument "Hash.of_raw: expected 32 bytes, got 3") (fun () ->
      ignore (Hash.of_raw "abc"))

let test_hash_containers () =
  let hs = List.init 100 (fun i -> Hash.of_string (string_of_int i)) in
  let set = List.fold_left (fun s h -> Hash.Set.add h s) Hash.Set.empty hs in
  Alcotest.(check int) "set cardinal" 100 (Hash.Set.cardinal set);
  let tbl = Hash.Table.create 16 in
  List.iteri (fun i h -> Hash.Table.replace tbl h i) hs;
  Alcotest.(check int) "table length" 100 (Hash.Table.length tbl);
  List.iteri
    (fun i h -> Alcotest.(check int) "table lookup" i (Hash.Table.find tbl h))
    hs

let test_hex () =
  Alcotest.(check string) "encode" "00ff10" (Hex.encode "\x00\xff\x10");
  Alcotest.(check string) "decode" "\x00\xff\x10" (Hex.decode "00ff10");
  Alcotest.(check string) "decode upper" "\xab" (Hex.decode "AB");
  Alcotest.(check bool) "is_hex yes" true (Hex.is_hex "deadBEEF");
  Alcotest.(check bool) "is_hex odd" false (Hex.is_hex "abc");
  Alcotest.(check bool) "is_hex bad char" false (Hex.is_hex "zz");
  Alcotest.check_raises "decode odd" (Invalid_argument "Hex.decode: odd length")
    (fun () -> ignore (Hex.decode "abc"))

let qcheck_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:200 QCheck.string (fun s ->
      Hex.decode (Hex.encode s) = s)

(* Concurrent one-shot digests from systhreads sharing one domain: the
   scratch context must never be shared mid-digest.  (Regression: a
   domain-local context used in place let a preempted thread's reset and
   feeds interleave with another's — the server's journal frames then
   carried digests of neither payload, and a SIGKILL-restart refused the
   journal as corrupt.) *)
let test_threaded_digests () =
  let inputs =
    Array.init 64 (fun i -> String.make (50 + (137 * i mod 4000)) (Char.chr (33 + (i mod 90))))
  in
  let expected = Array.map Sha256.digest_string inputs in
  let bad = Atomic.make 0 in
  let worker _ =
    for round = 0 to 400 do
      let i = (round * 31) mod Array.length inputs in
      if not (String.equal (Sha256.digest_string inputs.(i)) expected.(i))
      then Atomic.incr bad
    done
  in
  let threads = List.init 8 (fun w -> Thread.create worker w) in
  List.iter Thread.join threads;
  Alcotest.(check int) "no interleaved digests" 0 (Atomic.get bad)

let () =
  Alcotest.run "crypto"
    [ ( "sha256",
        [ Alcotest.test_case "NIST vectors" `Quick test_nist;
          Alcotest.test_case "million 'a'" `Quick test_million_a;
          Alcotest.test_case "streaming chunk sizes" `Quick test_streaming_chunks;
          Alcotest.test_case "padding boundaries" `Quick test_boundary_lengths;
          Alcotest.test_case "threaded one-shot digests" `Quick
            test_threaded_digests;
          QCheck_alcotest.to_alcotest qcheck_streaming ] );
      ( "hash",
        [ Alcotest.test_case "basics" `Quick test_hash_basics;
          Alcotest.test_case "of_raw validation" `Quick test_hash_of_raw_rejects;
          Alcotest.test_case "set/table" `Quick test_hash_containers ] );
      ( "hex",
        [ Alcotest.test_case "encode/decode" `Quick test_hex;
          QCheck_alcotest.to_alcotest qcheck_hex_roundtrip ] ) ]
