(* MVMB+-Tree baseline: conformance battery plus B+-tree mechanics and the
   deliberate *absence* of structural invariance (Figure 2). *)

open Siri_core
module Store = Siri_store.Store
module Mvbt = Siri_mvbt.Mvbt
module Hash = Siri_crypto.Hash

let cfg = Mvbt.config ~leaf_capacity:4 ~internal_capacity:5 ()
let mk () = Mvbt.generic (Mvbt.empty (Store.create ()) cfg)

let entries_n n = List.init n (fun i -> (Printf.sprintf "key%06d" i, string_of_int i))

let test_splits_grow_height () =
  let store = Store.create () in
  Alcotest.(check int) "height 1" 1 (Mvbt.height (Mvbt.of_entries store cfg (entries_n 3)));
  let t = Mvbt.of_entries store cfg (entries_n 1000) in
  Alcotest.(check bool) "height > 3" true (Mvbt.height t > 3);
  Alcotest.(check bool) "height < 12" true (Mvbt.height t < 12)

let test_figure2_order_dependence () =
  (* The same record set inserted in different orders gives different
     internal structure — exactly Figure 2. *)
  let store = Store.create () in
  let entries = entries_n 100 in
  let asc = Mvbt.of_entries store cfg entries in
  let desc = Mvbt.of_entries store cfg (List.rev entries) in
  Alcotest.(check (list (pair string string)))
    "same records" (Mvbt.to_list asc) (Mvbt.to_list desc);
  Alcotest.(check bool) "different roots" false
    (Hash.equal (Mvbt.root asc) (Mvbt.root desc))

let test_not_structurally_invariant () =
  (* Run the Definition 3.1(1) checker and confirm it FAILS. *)
  let store = Store.create () in
  let build entries = Mvbt.generic (Mvbt.of_entries store cfg entries) in
  Alcotest.(check bool) "property checker rejects" false
    (Properties.structurally_invariant ~build ~entries:(entries_n 80)
       ~permutations:5 ~seed:4)

let test_still_recursively_identical () =
  (* Copy-on-write still shares pages between consecutive versions. *)
  let store = Store.create () in
  let build entries = Mvbt.generic (Mvbt.of_entries store cfg entries) in
  Alcotest.(check bool) "Definition 3.1(2) holds" true
    (Properties.recursively_identical ~build ~entries:(entries_n 200)
       ~extra:("zzz", "x"))

let test_leaf_capacity_respected () =
  let store = Store.create () in
  let t = Mvbt.of_entries store cfg (entries_n 500) in
  (* Walk all leaves via the page set: no leaf may exceed capacity.  We
     check indirectly: with capacity 4 and 500 records there must be at
     least 125 leaves. *)
  let nodes = Hash.Set.cardinal (Store.reachable store (Mvbt.root t)) in
  Alcotest.(check bool) (Printf.sprintf "%d nodes" nodes) true (nodes >= 125)

let test_sequential_vs_random_profile () =
  (* Ascending insertion produces half-full right-spine splits; random order
     packs differently; both must stay correct. *)
  let store = Store.create () in
  let rng = Rng.create 77 in
  let entries = entries_n 300 in
  let random = Mvbt.of_entries store cfg (Rng.shuffle rng entries) in
  List.iter
    (fun (k, v) -> Alcotest.(check (option string)) k (Some v) (Mvbt.lookup random k))
    entries

let test_delete_collapses_root () =
  let store = Store.create () in
  let t = Mvbt.of_entries store cfg (entries_n 200) in
  let t =
    List.fold_left (fun t (k, _) -> Mvbt.remove t k) t (List.tl (entries_n 200))
  in
  Alcotest.(check int) "one record left" 1 (Mvbt.cardinal t);
  Alcotest.(check int) "root collapsed to leaf" 1 (Mvbt.height t)

let test_version_sharing () =
  let store = Store.create () in
  let v1 = Mvbt.of_entries store cfg (entries_n 1000) in
  let v2 = Mvbt.insert v1 "key000500" "changed" in
  let p1 = Store.reachable store (Mvbt.root v1) in
  let p2 = Store.reachable store (Mvbt.root v2) in
  let shared = Hash.Set.cardinal (Hash.Set.inter p1 p2) in
  Alcotest.(check bool)
    (Printf.sprintf "shared %d of %d" shared (Hash.Set.cardinal p1))
    true
    (shared * 10 >= Hash.Set.cardinal p1 * 9)

let test_config_validation () =
  Alcotest.check_raises "capacity >= 2"
    (Invalid_argument "Mvbt.config: capacities must be >= 2") (fun () ->
      ignore (Mvbt.config ~leaf_capacity:1 ()))

let () =
  Alcotest.run "mvbt"
    [ ("conformance", Index_suite.cases "mvbt" mk);
      ( "structure",
        [ Alcotest.test_case "splits grow height" `Quick test_splits_grow_height;
          Alcotest.test_case "Figure 2 order dependence" `Quick test_figure2_order_dependence;
          Alcotest.test_case "NOT structurally invariant" `Quick test_not_structurally_invariant;
          Alcotest.test_case "recursively identical" `Quick test_still_recursively_identical;
          Alcotest.test_case "leaf capacity" `Quick test_leaf_capacity_respected;
          Alcotest.test_case "random insert order" `Quick test_sequential_vs_random_profile;
          Alcotest.test_case "delete collapses root" `Quick test_delete_collapses_root;
          Alcotest.test_case "version sharing" `Quick test_version_sharing;
          Alcotest.test_case "config validation" `Quick test_config_validation ] ) ]
