(* Multiproof verification locked down three ways (the ISSUE-7 centerpiece):
   a differential oracle (every claim a multiproof makes is replayed against
   the single-proof prover and [get_many]), an adversarial storm (every
   structural mutation of an honest proof must be refused — zero
   acceptances), and the wire codec (bijective round-trip, every-offset
   truncation, flip classification, and the witness-compression size
   bound). *)

open Siri_core
module Store = Siri_store.Store
module Hash = Siri_crypto.Hash
module Proof_cache = Siri_readpath.Proof_cache
module Mpt = Siri_mpt.Mpt
module Mbt = Siri_mbt.Mbt
module Pos = Siri_pos.Pos_tree
module Mvbt = Siri_mvbt.Mvbt
module Prolly = Siri_prolly.Prolly

(* Small node budgets so even modest datasets have real depth. *)
let makers () =
  [ Mpt.generic (Mpt.empty (Store.create ()));
    Mbt.generic (Mbt.empty (Store.create ()) (Mbt.config ~capacity:32 ~fanout:4 ()));
    Pos.generic (Pos.empty (Store.create ()) (Pos.config ~leaf_target:256 ()));
    Mvbt.generic
      (Mvbt.empty (Store.create ())
         (Mvbt.config ~leaf_capacity:4 ~internal_capacity:5 ()));
    Prolly.generic (Prolly.empty (Store.create ())) ]

let entries_gen =
  QCheck.Gen.(
    list_size (0 -- 60)
      (pair
         (string_size ~gen:(char_range 'a' 'f') (1 -- 5))
         (string_size (0 -- 12))))

(* Probe sets mix hits, misses, duplicates; [`Empty] and [`All] cover the
   empty-set and whole-keyspace corners the issue names explicitly. *)
let probe_gen =
  QCheck.Gen.(
    oneof
      [ return `Empty;
        return `All;
        map (fun ks -> `Keys ks)
          (list_size (0 -- 25)
             (string_size ~gen:(char_range 'a' 'g') (1 -- 5))) ])

let probe_keys probe entries =
  match probe with
  | `Empty -> []
  | `All -> List.map fst entries
  | `Keys ks -> ks @ List.filteri (fun i _ -> i mod 3 = 0) ks (* duplicates *)

let qcheck_oracle =
  QCheck.Test.make ~count:60
    ~name:"verify_many <=> single-proof oracle, values = get_many"
    (QCheck.make
       ~print:(fun (entries, probe) ->
         Printf.sprintf "entries=%d probe=%s" (List.length entries)
           (match probe with
           | `Empty -> "empty"
           | `All -> "all"
           | `Keys ks -> String.concat "," ks))
       QCheck.Gen.(pair entries_gen probe_gen))
    (fun (entries, probe) ->
      let keys = probe_keys probe entries in
      List.for_all
        (fun empty ->
          let inst =
            empty.Generic.batch
              (List.map (fun (k, v) -> Kv.Put (k, v)) entries)
          in
          let root = inst.Generic.root in
          let mp = Generic.prove_many inst keys in
          (* 1. the batched verifier accepts the honest proof *)
          Generic.verify_many inst ~root mp
          (* 2. claims are exactly what get_many answers *)
          && mp.Multiproof.claims
             = Generic.get_many inst (List.sort_uniq String.compare keys)
          (* 3. every claim agrees with a single proof that itself
                verifies — the multiproof never claims anything the
                one-key oracle would not *)
          && List.for_all
               (fun (k, claimed) ->
                 let p = inst.Generic.prove k in
                 inst.Generic.verify ~root p && p.Proof.value = claimed)
               mp.Multiproof.claims)
        (makers ()))

(* --- adversarial storm ------------------------------------------------------ *)

let storm_entries =
  List.init 120 (fun i ->
      (Printf.sprintf "key%04d" (i * 7 mod 120), Printf.sprintf "value-%d" i))

let storm_keys =
  [ "key0000"; "key0007"; "key0014"; "key0021"; "absent-a"; "absent-b";
    "key0049"; "key0112" ]

let flip_storm () =
  let accepted = ref [] in
  let check label inst root mp =
    if Generic.verify_many inst ~root mp then accepted := label :: !accepted
  in
  List.iter
    (fun empty ->
      let inst =
        empty.Generic.batch
          (List.map (fun (k, v) -> Kv.Put (k, v)) storm_entries)
      in
      let name = inst.Generic.name in
      let root = inst.Generic.root in
      let mp = Generic.prove_many inst storm_keys in
      let n = List.length mp.Multiproof.nodes in
      Alcotest.(check bool)
        (name ^ ": honest proof accepted") true
        (Generic.verify_many inst ~root mp);
      (* flip one bit of every node at a spread of byte offsets *)
      for index = 0 to n - 1 do
        List.iter
          (fun pos ->
            check
              (Printf.sprintf "%s flip node=%d pos=%d" name index pos)
              inst root
              (Multiproof.flip_node mp ~index ~pos))
          [ 0; 1; 7; 31; 101; 997 ]
      done;
      (* drop every node *)
      for index = 0 to n - 1 do
        check
          (Printf.sprintf "%s drop node=%d" name index)
          inst root
          (Multiproof.drop_node mp ~index)
      done;
      (* reorder: swap every adjacent pair with distinct bytes (swapping
         byte-identical nodes is a no-op, not a tamper) *)
      let arr = Array.of_list mp.Multiproof.nodes in
      for i = 0 to n - 2 do
        if arr.(i) <> arr.(i + 1) then
          check
            (Printf.sprintf "%s swap %d %d" name i (i + 1))
            inst root
            (Multiproof.swap_nodes mp ~i ~j:(i + 1))
      done;
      (* swap claimed values: present -> altered / absent, absent -> present *)
      List.iter
        (fun (k, claimed) ->
          let forged =
            match claimed with Some v -> Some (v ^ "!") | None -> Some "forged"
          in
          check
            (Printf.sprintf "%s forge claim %s" name k)
            inst root
            (Multiproof.set_claim mp k forged);
          match claimed with
          | Some _ ->
              check
                (Printf.sprintf "%s absent claim %s" name k)
                inst root
                (Multiproof.set_claim mp k None)
          | None -> ())
        mp.Multiproof.claims;
      (* canonical tamper helper *)
      check (name ^ " tamper") inst root (Multiproof.tamper mp);
      (* sibling root substitution: the proof must not transfer to another
         version of the same index *)
      let sibling = inst.Generic.batch [ Kv.Put ("zz-sibling", "x") ] in
      check (name ^ " sibling root") inst sibling.Generic.root mp)
    (makers ());
  Alcotest.(check (list string))
    "zero acceptances across the storm" [] !accepted

(* --- wire codec ------------------------------------------------------------- *)

(* Synthetic but well-formed multiproofs: sorted distinct keys, optional
   values with deliberate repeats (exercising back-references), arbitrary
   node bytes (the codec does not interpret them). *)
let mp_gen =
  QCheck.Gen.(
    let* ks =
      map
        (List.sort_uniq String.compare)
        (list_size (0 -- 12) (string_size ~gen:(char_range 'a' 'z') (0 -- 16)))
    in
    let* vs =
      flatten_l
        (List.map
           (fun _ ->
             oneof
               [ return None;
                 map Option.some (string_size (0 -- 20));
                 return (Some "shared-value") ])
           ks)
    in
    let* nodes = list_size (0 -- 6) (string_size (0 -- 200)) in
    return { Multiproof.claims = List.combine ks vs; nodes })

let qcheck_roundtrip =
  QCheck.Test.make ~count:300 ~name:"encode/decode is a bijection"
    (QCheck.make mp_gen) (fun mp ->
      match Multiproof.decode (Multiproof.encode mp) with
      | Ok mp' -> mp' = mp
      | Error _ -> false)

let reference_multiproof () =
  match makers () with
  | pos :: _ ->
      let inst =
        pos.Generic.batch
          (List.map (fun (k, v) -> Kv.Put (k, v)) storm_entries)
      in
      Generic.prove_many inst [ "key0000"; "key0001"; "absent"; "key0119" ]
  | [] -> assert false

let every_offset_truncation () =
  let s = Multiproof.encode (reference_multiproof ()) in
  for i = 0 to String.length s - 1 do
    match Multiproof.decode (String.sub s 0 i) with
    | Error (`Malformed _) -> ()
    | Error (`Tampered _) ->
        Alcotest.failf "truncation at %d classified as tampering" i
    | Ok _ -> Alcotest.failf "truncated prefix of length %d accepted" i
  done

let every_offset_flip () =
  let s = Multiproof.encode (reference_multiproof ()) in
  let tampered = ref 0 in
  String.iteri
    (fun i _ ->
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
      match Multiproof.decode (Bytes.to_string b) with
      | Error (`Tampered _) -> incr tampered
      | Error (`Malformed _) -> ()
      | Ok _ -> Alcotest.failf "flip at byte %d accepted" i)
    s;
  (* A flip inside the checksummed region must be classified as tampering;
     only damage to the length header may read as malformed. *)
  if !tampered < String.length s - 4 then
    Alcotest.failf "only %d/%d flips detected by the checksum" !tampered
      (String.length s)

let witness_compression () =
  (* A clustered 256-key batch on a 2000-record tree: shared prefixes must
     push the encoded multiproof under half the bytes of 256 singles (the
     acceptance bound), and any overlapping set strictly under the sum. *)
  let entries =
    List.init 2000 (fun i -> (Printf.sprintf "user%06d" i, Printf.sprintf "v%d" i))
  in
  List.iter
    (fun empty ->
      let inst =
        empty.Generic.batch (List.map (fun (k, v) -> Kv.Put (k, v)) entries)
      in
      let name = inst.Generic.name in
      let keys = List.init 256 (fun i -> Printf.sprintf "user%06d" (700 + i)) in
      let mp = Generic.prove_many inst keys in
      Alcotest.(check bool)
        (name ^ ": clustered multiproof verifies") true
        (Generic.verify_many inst ~root:inst.Generic.root mp);
      let singles_bytes =
        List.fold_left
          (fun acc k -> acc + Proof.size_bytes (inst.Generic.prove k))
          0 keys
      in
      let encoded = Multiproof.encoded_size mp in
      if encoded >= singles_bytes then
        Alcotest.failf "%s: multiproof (%dB) not smaller than singles (%dB)"
          name encoded singles_bytes;
      (* the < 50%% acceptance bound, for the tree-shaped indexes (MBT
         hash-partitions keys, so clustering cannot share bucket paths) *)
      if name <> "mbt" && 2 * encoded >= singles_bytes then
        Alcotest.failf "%s: 256-key multiproof is %dB, singles %dB (>= 50%%)"
          name encoded singles_bytes)
    (makers ())

(* --- empty-index edge -------------------------------------------------------- *)

let empty_index_regression () =
  List.iter
    (fun inst ->
      let name = inst.Generic.name in
      let root = inst.Generic.root in
      let mp = Generic.prove_many inst [ "a"; "b" ] in
      Alcotest.(check bool)
        (name ^ ": empty index proves absence") true
        (List.for_all (fun (_, v) -> v = None) mp.Multiproof.claims);
      Alcotest.(check bool)
        (name ^ ": absence proof accepted") true
        (Generic.verify_many inst ~root mp);
      Alcotest.(check bool)
        (name ^ ": Some claim on empty index refused") false
        (Generic.verify_many inst ~root (Multiproof.set_claim mp "a" (Some "x")));
      (* the empty key set over the empty index *)
      let nothing = Generic.prove_many inst [] in
      Alcotest.(check bool)
        (name ^ ": empty key set accepted") true
        (Generic.verify_many inst ~root nothing))
    (makers ())

let null_root_padding_refused () =
  (* Hash-null roots (MPT/POS/MVMB+): no node can justify anything, so a
     padded node list must be refused even with all-None claims. *)
  List.iter
    (fun inst ->
      if Hash.is_null inst.Generic.root then
        let mp =
          { Multiproof.claims = [ ("a", None) ]; nodes = [ "junk-node" ] }
        in
        Alcotest.(check bool)
          (inst.Generic.name ^ ": padded empty-index proof refused") false
          (Generic.verify_many inst ~root:inst.Generic.root mp))
    (makers ())

(* --- proof cache ------------------------------------------------------------- *)

let cache_roundtrip () =
  let store = Store.create ~proof_cache_bytes:(1 lsl 20) () in
  let pc = Store.proof_cache store in
  let inst =
    Generic.of_entries
      (Pos.generic (Pos.empty store (Pos.config ~leaf_target:256 ())))
      storm_entries
  in
  let mp1 = Generic.prove_many inst storm_keys in
  let misses = Proof_cache.misses pc in
  let mp2 = Generic.prove_many inst storm_keys in
  Alcotest.(check bool) "cached result identical" true (mp1 = mp2);
  Alcotest.(check int) "second request hits" 1 (Proof_cache.hits pc);
  Alcotest.(check int) "no second miss" misses (Proof_cache.misses pc);
  (* key-set order and duplicates do not defeat the cache key *)
  let mp3 = Generic.prove_many inst (List.rev storm_keys @ storm_keys) in
  Alcotest.(check bool) "permuted key set hits" true (mp3 = mp1);
  Alcotest.(check int) "permuted request hit" 2 (Proof_cache.hits pc);
  (* tampering with the store must clear the cache wholesale *)
  let victim =
    match Multiproof.root_hash mp1 with Some h -> h | None -> assert false
  in
  Store.corrupt store victim;
  Alcotest.(check int) "tamper clears the proof cache" 0 (Proof_cache.size pc)

let cache_disabled_by_default () =
  (* budget 0 pins the cache off even when SIRI_PROOF_CACHE is exported
     (make proof runs this suite both ways) *)
  let store = Store.create ~proof_cache_bytes:0 () in
  let pc = Store.proof_cache store in
  let inst =
    Generic.of_entries
      (Pos.generic (Pos.empty store (Pos.config ~leaf_target:256 ())))
      storm_entries
  in
  let mp1 = Generic.prove_many inst storm_keys in
  let mp2 = Generic.prove_many inst storm_keys in
  Alcotest.(check bool) "results still equal" true (mp1 = mp2);
  Alcotest.(check bool) "cache disabled" false (Proof_cache.enabled pc);
  Alcotest.(check int) "no hits metered" 0 (Proof_cache.hits pc)

let () =
  Alcotest.run "proof"
    [ ("oracle", [ QCheck_alcotest.to_alcotest qcheck_oracle ]);
      ("adversarial", [ Alcotest.test_case "flip storm" `Quick flip_storm ]);
      ( "wire",
        [ QCheck_alcotest.to_alcotest qcheck_roundtrip;
          Alcotest.test_case "every-offset truncation" `Quick
            every_offset_truncation;
          Alcotest.test_case "every-offset flip" `Quick every_offset_flip;
          Alcotest.test_case "witness compression" `Slow witness_compression ] );
      ( "empty index",
        [ Alcotest.test_case "absence with no nodes" `Quick
            empty_index_regression;
          Alcotest.test_case "padded null-root refused" `Quick
            null_root_padding_refused ] );
      ( "cache",
        [ Alcotest.test_case "hit / permutation / invalidation" `Quick
            cache_roundtrip;
          Alcotest.test_case "disabled by default" `Quick
            cache_disabled_by_default ] ) ]
