(* Merkle Patricia Trie: the shared conformance battery plus MPT-specific
   behaviour — path compaction, canonical deletes, prefix keys, and the SIRI
   properties of Definition 3.1. *)

open Siri_core
module Store = Siri_store.Store
module Mpt = Siri_mpt.Mpt
module Hash = Siri_crypto.Hash

let mk () = Mpt.generic (Mpt.empty (Store.create ()))

(* --- SIRI properties --------------------------------------------------------- *)

let shared_store_build () =
  let store = Store.create () in
  fun entries -> Mpt.generic (Mpt.of_entries store entries)

let some_entries =
  List.init 60 (fun i -> (Printf.sprintf "key-%04d" (i * 17), string_of_int i))

let test_structurally_invariant () =
  Alcotest.(check bool) "Definition 3.1(1)" true
    (Properties.structurally_invariant ~build:(shared_store_build ())
       ~entries:some_entries ~permutations:5 ~seed:1)

let test_recursively_identical () =
  Alcotest.(check bool) "Definition 3.1(2)" true
    (Properties.recursively_identical ~build:(shared_store_build ())
       ~entries:some_entries ~extra:("key-9999", "x"))

let test_universally_reusable () =
  Alcotest.(check bool) "Definition 3.1(3)" true
    (Properties.universally_reusable ~build:(shared_store_build ())
       ~entries:some_entries
       ~more:(List.init 50 (fun i -> (Printf.sprintf "zz-%03d" i, Printf.sprintf "zv-%d" i))))

(* --- structure-specific ------------------------------------------------------- *)

let test_prefix_keys () =
  (* "a" is a prefix of "ab": values must land on branch nodes. *)
  let t = mk () in
  let t = Generic.of_entries t [ ("a", "1"); ("ab", "2"); ("abc", "3"); ("", "root-val") ] in
  Alcotest.(check (option string)) "a" (Some "1") (t.Generic.lookup "a");
  Alcotest.(check (option string)) "ab" (Some "2") (t.Generic.lookup "ab");
  Alcotest.(check (option string)) "abc" (Some "3") (t.Generic.lookup "abc");
  Alcotest.(check (option string)) "empty key" (Some "root-val") (t.Generic.lookup "");
  Alcotest.(check (option string)) "abcd absent" None (t.Generic.lookup "abcd");
  (* Delete the middle of the chain. *)
  let t = Generic.remove t "ab" in
  Alcotest.(check (option string)) "ab gone" None (t.Generic.lookup "ab");
  Alcotest.(check (option string)) "a kept" (Some "1") (t.Generic.lookup "a");
  Alcotest.(check (option string)) "abc kept" (Some "3") (t.Generic.lookup "abc")

let test_canonical_after_delete () =
  (* Removing records must restore exactly the root of the smaller set —
     extension/branch collapsing at work. *)
  let store = Store.create () in
  let base = List.init 40 (fun i -> (Printf.sprintf "node%03d" i, "v")) in
  let extra = List.init 10 (fun i -> (Printf.sprintf "xtra%03d" i, "w")) in
  let small = Mpt.of_entries store base in
  let big = Mpt.of_entries store (base @ extra) in
  let shrunk = List.fold_left (fun t (k, _) -> Mpt.remove t k) big extra in
  Alcotest.(check bool) "roots equal" true
    (Hash.equal (Mpt.root small) (Mpt.root shrunk))

let qcheck_canonical_delete =
  QCheck.Test.make ~name:"delete restores canonical root" ~count:50
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 30) (string_gen_of_size Gen.(1 -- 5) Gen.(char_range 'a' 'd')))
        (list_of_size Gen.(1 -- 10) (string_gen_of_size Gen.(1 -- 5) Gen.(char_range 'e' 'h'))))
    (fun (base, extra) ->
      let dedup l = List.sort_uniq String.compare l in
      let base = dedup base and extra = dedup extra in
      let store = Store.create () in
      let entries keys = List.map (fun k -> (k, "v-" ^ k)) keys in
      let small = Mpt.of_entries store (entries base) in
      let big = Mpt.of_entries store (entries (base @ extra)) in
      let shrunk = List.fold_left (fun t k -> Mpt.remove t k) big extra in
      Hash.equal (Mpt.root small) (Mpt.root shrunk))

let test_path_compaction_depth () =
  (* Keys sharing a long prefix: compaction keeps the path short.  Two keys
     diverging at the last nibble need only ~3 nodes (ext+branch+leaves). *)
  let store = Store.create () in
  let t =
    Mpt.of_entries store
      [ ("aaaaaaaaaaaaaaaa1", "x"); ("aaaaaaaaaaaaaaaa2", "y") ]
  in
  let g = Mpt.generic t in
  Alcotest.(check bool) "compact depth" true (g.Generic.path_length "aaaaaaaaaaaaaaaa1" <= 4);
  Alcotest.(check int) "node count small" 4 (Generic.node_count g)

let test_node_sharing_between_versions () =
  let store = Store.create () in
  (* Values must be distinct: identical leaves would deduplicate *within*
     one tree and shrink the page sets. *)
  let entries = List.init 500 (fun i -> (Printf.sprintf "user%06d" i, Printf.sprintf "val-%d" i)) in
  let v1 = Mpt.of_entries store entries in
  let v2 = Mpt.insert v1 "user000250" "CHANGED" in
  let p1 = Store.reachable store (Mpt.root v1) in
  let p2 = Store.reachable store (Mpt.root v2) in
  let shared = Hash.Set.cardinal (Hash.Set.inter p1 p2) in
  let total = Hash.Set.cardinal p1 in
  Alcotest.(check bool)
    (Printf.sprintf "shared %d / %d" shared total)
    true
    (shared * 10 >= total * 9)

let test_key_order_is_byte_order () =
  let t = Generic.of_entries (mk ()) [ ("b", "2"); ("a", "1"); ("c", "3") ] in
  Alcotest.(check (list (pair string string)))
    "sorted" [ ("a", "1"); ("b", "2"); ("c", "3") ]
    (t.Generic.to_list ())

let test_proof_size_grows_with_depth () =
  let store = Store.create () in
  let t = Mpt.of_entries store (List.init 2000 (fun i -> (Printf.sprintf "%08d" i, "v"))) in
  let p = Mpt.prove t "00000042" in
  Alcotest.(check bool) "multi node proof" true (List.length p.Proof.nodes >= 2)

let () =
  Alcotest.run "mpt"
    [ ("conformance", Index_suite.cases "mpt" mk);
      ( "siri-properties",
        [ Alcotest.test_case "structurally invariant" `Quick test_structurally_invariant;
          Alcotest.test_case "recursively identical" `Quick test_recursively_identical;
          Alcotest.test_case "universally reusable" `Quick test_universally_reusable ] );
      ( "structure",
        [ Alcotest.test_case "prefix keys & branch values" `Quick test_prefix_keys;
          Alcotest.test_case "canonical after delete" `Quick test_canonical_after_delete;
          QCheck_alcotest.to_alcotest qcheck_canonical_delete;
          Alcotest.test_case "path compaction" `Quick test_path_compaction_depth;
          Alcotest.test_case "version node sharing" `Quick test_node_sharing_between_versions;
          Alcotest.test_case "byte-ordered traversal" `Quick test_key_order_is_byte_order;
          Alcotest.test_case "proof depth" `Quick test_proof_size_grows_with_depth ] ) ]
