(* Wire writer/reader, RLP (Ethereum test vectors), and nibble paths. *)

module Wire = Siri_codec.Wire
module Rlp = Siri_codec.Rlp
module Nibbles = Siri_codec.Nibbles
module Hash = Siri_crypto.Hash
module Hex = Siri_crypto.Hex

(* --- wire ----------------------------------------------------------------- *)

let test_wire_roundtrip () =
  let w = Wire.Writer.create () in
  Wire.Writer.u8 w 0x7F;
  Wire.Writer.u16 w 0xBEEF;
  Wire.Writer.u32 w 0xDEADBEEF;
  Wire.Writer.varint w 0;
  Wire.Writer.varint w 127;
  Wire.Writer.varint w 128;
  Wire.Writer.varint w 300;
  Wire.Writer.varint w 1_000_000_007;
  Wire.Writer.str w "hello";
  Wire.Writer.str w "";
  let h = Hash.of_string "x" in
  Wire.Writer.hash w h;
  Wire.Writer.raw w "tail";
  let r = Wire.Reader.of_string (Wire.Writer.contents w) in
  Alcotest.(check int) "u8" 0x7F (Wire.Reader.u8 r);
  Alcotest.(check int) "u16" 0xBEEF (Wire.Reader.u16 r);
  Alcotest.(check int) "u32" 0xDEADBEEF (Wire.Reader.u32 r);
  Alcotest.(check int) "varint 0" 0 (Wire.Reader.varint r);
  Alcotest.(check int) "varint 127" 127 (Wire.Reader.varint r);
  Alcotest.(check int) "varint 128" 128 (Wire.Reader.varint r);
  Alcotest.(check int) "varint 300" 300 (Wire.Reader.varint r);
  Alcotest.(check int) "varint big" 1_000_000_007 (Wire.Reader.varint r);
  Alcotest.(check string) "str" "hello" (Wire.Reader.str r);
  Alcotest.(check string) "empty str" "" (Wire.Reader.str r);
  Alcotest.(check bool) "hash" true (Hash.equal h (Wire.Reader.hash r));
  Alcotest.(check string) "raw" "tail" (Wire.Reader.raw r 4);
  Alcotest.(check bool) "at end" true (Wire.Reader.at_end r)

let test_wire_truncated () =
  let r = Wire.Reader.of_string "\x01" in
  ignore (Wire.Reader.u8 r);
  Alcotest.check_raises "u8 past end" Wire.Reader.Truncated (fun () ->
      ignore (Wire.Reader.u8 r))

let test_wire_bounds () =
  let w = Wire.Writer.create () in
  Alcotest.check_raises "u8 range" (Invalid_argument "Wire.Writer.u8")
    (fun () -> Wire.Writer.u8 w 256);
  Alcotest.check_raises "u16 range" (Invalid_argument "Wire.Writer.u16")
    (fun () -> Wire.Writer.u16 w (-1));
  Alcotest.check_raises "varint negative"
    (Invalid_argument "Wire.Writer.varint: negative") (fun () ->
      Wire.Writer.varint w (-5))

let test_varint_malicious_continuation () =
  (* An endless run of continuation bytes must fail cleanly, not shift past
     the word size. *)
  let evil = String.make 64 '\x80' in
  Alcotest.check_raises "unbounded varint" Wire.Reader.Truncated (fun () ->
      ignore (Wire.Reader.varint (Wire.Reader.of_string evil)))

let test_varint_overflow_regression () =
  (* Shrunk QCheck counterexample: eight continuation bytes put the ninth
     chunk at shift 56, where 'a' (0x61) spills into the sign bit and used
     to come back as a negative length that crashed [raw] with
     Invalid_argument("String.sub").  Must be Truncated, nothing else. *)
  let input = "a\128\128\128\128\128\128\128\128aa" in
  let r = Wire.Reader.of_string input in
  Alcotest.(check int) "leading byte" 0x61 (Wire.Reader.u8 r);
  Alcotest.check_raises "overflowing varint" Wire.Reader.Truncated (fun () ->
      ignore (Wire.Reader.str r));
  (* The largest encodable int still round-trips. *)
  let w = Wire.Writer.create () in
  Wire.Writer.varint w max_int;
  Alcotest.(check int) "max_int roundtrip" max_int
    (Wire.Reader.varint (Wire.Reader.of_string (Wire.Writer.contents w)));
  (* Ten continuation chunks (shift 63) must also fail cleanly. *)
  Alcotest.check_raises "ten-byte varint" Wire.Reader.Truncated (fun () ->
      ignore (Wire.Reader.varint (Wire.Reader.of_string "\x80\x80\x80\x80\x80\x80\x80\x80\x80\x01")))

let qcheck_reader_total =
  (* Totality: every reader entry point, applied to arbitrary bytes, either
     returns a value or raises Truncated — no other exception may escape,
     and varint never fabricates a negative length. *)
  let entry_points : (string * (Wire.Reader.t -> unit)) list =
    [ ("u8", fun r -> ignore (Wire.Reader.u8 r));
      ("u16", fun r -> ignore (Wire.Reader.u16 r));
      ("u32", fun r -> ignore (Wire.Reader.u32 r));
      ("varint", fun r -> assert (Wire.Reader.varint r >= 0));
      ("str", fun r -> ignore (Wire.Reader.str r));
      ("hash", fun r -> ignore (Wire.Reader.hash r));
      ("raw", fun r -> ignore (Wire.Reader.raw r 10)) ]
  in
  QCheck.Test.make ~name:"every reader entry point is total" ~count:500
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s ->
      List.for_all
        (fun (name, f) ->
          match f (Wire.Reader.of_string s) with
          | () -> true
          | exception Wire.Reader.Truncated -> true
          | exception e ->
              QCheck.Test.fail_reportf "%s raised %s on %S" name
                (Printexc.to_string e) s)
        entry_points)

let qcheck_reader_fuzz =
  (* Decoding arbitrary bytes must terminate with a value or a clean
     exception — never hang or corrupt memory. *)
  QCheck.Test.make ~name:"reader survives arbitrary bytes" ~count:300
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s ->
      let r = Wire.Reader.of_string s in
      let attempt f = match f r with _ -> true | exception Wire.Reader.Truncated -> true in
      attempt Wire.Reader.varint
      && attempt Wire.Reader.str
      && attempt (fun r -> Wire.Reader.raw r 10)
      &&
      match Wire.Reader.hash (Wire.Reader.of_string s) with
      | _ -> true
      | exception Wire.Reader.Truncated -> true)

let qcheck_varint =
  QCheck.Test.make ~name:"varint roundtrip" ~count:500
    QCheck.(int_bound max_int)
    (fun n ->
      let w = Wire.Writer.create () in
      Wire.Writer.varint w n;
      Wire.Reader.varint (Wire.Reader.of_string (Wire.Writer.contents w)) = n)

(* --- rlp ------------------------------------------------------------------- *)

(* Vectors from the Ethereum wiki / go-ethereum test suite. *)
let rlp_vectors =
  [ (Rlp.String "dog", "83646f67");
    (Rlp.List [ Rlp.String "cat"; Rlp.String "dog" ], "c88363617483646f67");
    (Rlp.String "", "80");
    (Rlp.List [], "c0");
    (Rlp.of_int 0, "80");
    (Rlp.of_int 15, "0f");
    (Rlp.of_int 1024, "820400");
    ( Rlp.List [ Rlp.List []; Rlp.List [ Rlp.List [] ]; Rlp.List [ Rlp.List []; Rlp.List [ Rlp.List [] ] ] ],
      "c7c0c1c0c3c0c1c0" );
    ( Rlp.String "Lorem ipsum dolor sit amet, consectetur adipisicing elit",
      "b8384c6f72656d20697073756d20646f6c6f722073697420616d65742c20636f6e7365637465747572206164697069736963696e6720656c6974" ) ]

let test_rlp_encode () =
  List.iter
    (fun (item, hex) ->
      Alcotest.(check string) hex hex (Hex.encode (Rlp.encode item)))
    rlp_vectors

let test_rlp_decode () =
  List.iter
    (fun (item, hex) ->
      Alcotest.(check bool) ("decode " ^ hex) true
        (Rlp.decode (Hex.decode hex) = item))
    rlp_vectors

let test_rlp_single_bytes () =
  (* Bytes < 0x80 encode as themselves. *)
  Alcotest.(check string) "byte 0x42" "42" (Hex.encode (Rlp.encode (Rlp.String "\x42")));
  (* 0x80..0xFF need a length prefix. *)
  Alcotest.(check string) "byte 0x80" "8180" (Hex.encode (Rlp.encode (Rlp.String "\x80")))

let test_rlp_rejects_noncanonical () =
  let raises hex =
    match Rlp.decode (Hex.decode hex) with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "0x8100 (single byte long form)" true (raises "8100");
  Alcotest.(check bool) "trailing bytes" true (raises "83646f6700");
  Alcotest.(check bool) "truncated" true (raises "83646f")

let test_rlp_int () =
  List.iter
    (fun n -> Alcotest.(check int) (string_of_int n) n (Rlp.to_int (Rlp.of_int n)))
    [ 0; 1; 127; 128; 255; 256; 65535; 65536; 1_000_000_000 ]

let rlp_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 1 then map (fun s -> Rlp.String s) (string_size (0 -- 40))
          else
            frequency
              [ (2, map (fun s -> Rlp.String s) (string_size (0 -- 40)));
                (1, map (fun l -> Rlp.List l) (list_size (0 -- 4) (self (n / 2)))) ])
        n)

let qcheck_rlp_roundtrip =
  QCheck.Test.make ~name:"rlp roundtrip" ~count:300
    (QCheck.make ~print:(Format.asprintf "%a" Rlp.pp) rlp_gen)
    (fun item -> Rlp.decode (Rlp.encode item) = item)

(* --- nibbles ----------------------------------------------------------------- *)

let test_nibbles_of_key () =
  let n = Nibbles.of_key "\x3a\xf0" in
  Alcotest.(check int) "length" 4 (Nibbles.length n);
  Alcotest.(check (list int)) "values" [ 3; 10; 15; 0 ]
    (List.init 4 (Nibbles.get n));
  Alcotest.(check string) "roundtrip" "\x3a\xf0" (Nibbles.to_key n)

let test_nibbles_ops () =
  let a = Nibbles.of_key "abc" and b = Nibbles.of_key "abd" in
  Alcotest.(check int) "common prefix" 5 (Nibbles.common_prefix a b);
  Alcotest.(check bool) "drop+sub" true
    (Nibbles.equal (Nibbles.drop a 2) (Nibbles.sub a 2 4));
  Alcotest.(check bool) "concat" true
    (Nibbles.equal a (Nibbles.concat (Nibbles.sub a 0 3) (Nibbles.drop a 3)));
  Alcotest.(check int) "cons" 7 (Nibbles.get (Nibbles.cons 7 a) 0)

let test_compact_encoding () =
  List.iter
    (fun (leaf, key, drop) ->
      let path = Nibbles.drop (Nibbles.of_key key) drop in
      let leaf', path' = Nibbles.compact_decode (Nibbles.compact_encode ~leaf path) in
      Alcotest.(check bool) "leaf flag" leaf leaf';
      Alcotest.(check bool) "path" true (Nibbles.equal path path'))
    [ (true, "dog", 0); (false, "dog", 0); (true, "dog", 1); (false, "dog", 1);
      (true, "", 0); (false, "x", 1); (true, "longer-key-here", 3) ]

let qcheck_compact =
  QCheck.Test.make ~name:"compact encode/decode" ~count:300
    QCheck.(pair bool (pair small_string (int_bound 5)))
    (fun (leaf, (key, d)) ->
      let full = Nibbles.of_key key in
      let d = min d (Nibbles.length full) in
      let path = Nibbles.drop full d in
      let leaf', path' =
        Nibbles.compact_decode (Nibbles.compact_encode ~leaf path)
      in
      leaf = leaf' && Nibbles.equal path path')

let () =
  Alcotest.run "codec"
    [ ( "wire",
        [ Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "truncated" `Quick test_wire_truncated;
          Alcotest.test_case "bounds" `Quick test_wire_bounds;
          Alcotest.test_case "malicious varint" `Quick test_varint_malicious_continuation;
          Alcotest.test_case "varint overflow regression" `Quick
            test_varint_overflow_regression;
          QCheck_alcotest.to_alcotest qcheck_reader_fuzz;
          QCheck_alcotest.to_alcotest qcheck_reader_total;
          QCheck_alcotest.to_alcotest qcheck_varint ] );
      ( "rlp",
        [ Alcotest.test_case "encode vectors" `Quick test_rlp_encode;
          Alcotest.test_case "decode vectors" `Quick test_rlp_decode;
          Alcotest.test_case "single bytes" `Quick test_rlp_single_bytes;
          Alcotest.test_case "non-canonical rejected" `Quick
            test_rlp_rejects_noncanonical;
          Alcotest.test_case "int scalars" `Quick test_rlp_int;
          QCheck_alcotest.to_alcotest qcheck_rlp_roundtrip ] );
      ( "nibbles",
        [ Alcotest.test_case "of_key/get" `Quick test_nibbles_of_key;
          Alcotest.test_case "slicing ops" `Quick test_nibbles_ops;
          Alcotest.test_case "compact encoding" `Quick test_compact_encoding;
          QCheck_alcotest.to_alcotest qcheck_compact ] ) ]
