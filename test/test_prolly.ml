(* Prolly Tree (Noms): the conformance battery through the wrapper, and the
   hashing-work asymmetry against POS-Tree that Figure 22 rests on. *)

open Siri_core
module Store = Siri_store.Store
module Prolly = Siri_prolly.Prolly
module Pos = Siri_pos.Pos_tree
module Hash = Siri_crypto.Hash

let small_cfg = Prolly.config ~node_target:256 ()
let mk () = Pos.generic_named "prolly" (Pos.empty (Store.create ()) small_cfg)

let big_entries n =
  let rng = Rng.create 55 in
  List.init n (fun i -> (Printf.sprintf "key%06d" i, Rng.string_alnum rng 40))

let test_name () =
  Alcotest.(check string) "generic name" "prolly"
    (Prolly.generic (Prolly.empty (Store.create ()))).Generic.name

let test_same_records_as_pos () =
  let store = Store.create () in
  let entries = big_entries 500 in
  let prolly = Pos.of_entries store small_cfg entries in
  let pos = Pos.of_entries store (Pos.config ~leaf_target:256 ()) entries in
  Alcotest.(check (list (pair string string)))
    "identical record sets" (Pos.to_list pos) (Pos.to_list prolly);
  (* But different trees: the internal boundary rule differs. *)
  Alcotest.(check bool) "different shapes" false
    (Hash.equal (Pos.root pos) (Pos.root prolly))

let test_structural_invariance () =
  let store = Store.create () in
  let entries = big_entries 400 in
  let rng = Rng.create 56 in
  let a = Pos.of_entries store small_cfg entries in
  let b =
    List.fold_left
      (fun t (k, v) -> Pos.insert t k v)
      (Pos.empty store small_cfg)
      (Rng.shuffle rng entries)
  in
  Alcotest.(check bool) "SI holds" true (Hash.equal (Pos.root a) (Pos.root b))

let test_default_config_is_4k () =
  let store = Store.create () in
  let t = Pos.of_entries store Prolly.default_config (big_entries 4000) in
  let sizes = Pos.leaf_sizes t in
  let mean =
    Float.of_int (List.fold_left ( + ) 0 sizes) /. Float.of_int (List.length sizes)
  in
  Alcotest.(check bool)
    (Printf.sprintf "mean leaf %.0f ~ 4096" mean)
    true
    (mean > 1024.0 && mean < 16384.0)

let test_write_does_more_rolling_work () =
  (* The observable Figure 22 asymmetry at equal node size: updating a
     Prolly tree rolls the window over every internal entry it rebuilds,
     POS-Tree hashes nothing extra.  We measure wall time over many point
     updates; prolly must not be faster, and typically is measurably
     slower.  To keep the test robust we only assert correctness here and
     relegate the timing claim to the benchmark. *)
  let store = Store.create () in
  let entries = big_entries 1000 in
  let t = Pos.of_entries store small_cfg entries in
  let t = Pos.insert t "key000500" "X" in
  Alcotest.(check (option string)) "update applied" (Some "X")
    (Pos.lookup t "key000500")

let () =
  Alcotest.run "prolly"
    [ ("conformance", Index_suite.cases "prolly" mk);
      ( "structure",
        [ Alcotest.test_case "wrapper name" `Quick test_name;
          Alcotest.test_case "same records, different shape vs POS" `Quick
            test_same_records_as_pos;
          Alcotest.test_case "structural invariance" `Quick test_structural_invariance;
          Alcotest.test_case "4K default nodes" `Quick test_default_config_is_4k;
          Alcotest.test_case "update correctness" `Quick
            test_write_does_more_rolling_work ] ) ]
