(* Multi-client server: wire integrity, group commit, fault tolerance.

   The oracles, in rising order of violence:

   - the payload codec is total and the frame layer refuses EVERY
     single-byte flip and EVERY truncation of a request frame — damage
     surfaces as [`Tampered]/[`Malformed], never an exception, never a
     parsed request;
   - group commit conserves its metrics: acked commits = the group-size
     histogram mass, commit groups = WAL frames appended;
   - a SIGKILL at a seeded-random point under concurrent client traffic
     loses NO acked commit and invents no phantom: after restart every
     acked batch reads back exactly, every unacked batch is atomically
     present-or-absent, and resending an unacked request id applies it
     at most once.  Run on both durability backends.

   SIRI_SERVE_ROUNDS (default 3) scales the crash-kill rounds per
   backend; `make serve` runs 25 per backend = 50 seeded kill points. *)

open Siri_core
module Store = Siri_store.Store
module Hash = Siri_crypto.Hash
module Telemetry = Siri_telemetry.Telemetry
module Engine = Siri_forkbase.Engine
module Durable = Siri_wal.Durable
module Proto = Siri_server.Proto
module Server = Siri_server.Server
module Client = Siri_server.Client

(* --- scratch ----------------------------------------------------------------- *)

let dir_counter = ref 0

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_dir name f =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "siri-srv-%s-%d-%d" name (Unix.getpid ()) !dir_counter)
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let mk_index store =
  Siri_pos.Pos_tree.generic
    (Siri_pos.Pos_tree.empty store (Siri_pos.Pos_tree.config ()))

let open_durable ?(sync = false) ~backend dir =
  (* caches off: session threads read the store concurrently *)
  let store = Store.create ~cache_bytes:0 ~proof_cache_bytes:0 () in
  Store.set_sink store (Telemetry.create ~clock:Unix.gettimeofday ());
  match Durable.open_ ~sync ~backend ~dir ~empty_index:(mk_index store) () with
  | Ok d -> d
  | Error e -> Alcotest.failf "durable open: %a" Siri_wal.Wal.pp_error e

let with_server ?config ?(backend = `Snapshot) name f =
  with_dir name @@ fun dir ->
  let durable = open_durable ~backend dir in
  let sock = Filename.concat dir "s" in
  let server = Server.start ?config ~durable ~listen:[ `Unix sock ] () in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () -> f ~dir ~sock ~server ~durable)

let connect_exn ?attempts ?backoff_s ?sink addr =
  match
    Client.connect ?attempts ?backoff_s ?sink ~connect_timeout_s:5.0
      ~request_timeout_s:10.0 ~addr ()
  with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" (Client.error_to_string e)

let commit_exn ?req_id c ~branch ops =
  match Client.commit ?req_id c ~branch ~message:"t" ops with
  | Ok r -> r
  | Error e -> Alcotest.failf "commit: %s" (Client.error_to_string e)

let sink_of server = Server.sink server
let counter server name = Telemetry.counter (sink_of server) name

(* --- protocol codec ----------------------------------------------------------- *)

let sample_requests =
  [ { Proto.deadline_ms = 0; body = Proto.Ping };
    { Proto.deadline_ms = 250; body = Proto.Head { branch = "master" } };
    { Proto.deadline_ms = 0; body = Proto.Get { branch = "b"; key = "" } };
    { Proto.deadline_ms = 1;
      body = Proto.Get_many { branch = "m"; keys = [ ""; "a"; "\xff\x00" ] } };
    { Proto.deadline_ms = 7;
      body = Proto.Prove_many { branch = "m"; keys = [ "k1"; "k2" ] } };
    { Proto.deadline_ms = 1000;
      body =
        Proto.Commit
          { req_id = "r-1.A_z";
            branch = "master";
            message = "hello\nworld";
            ops = [ Kv.Put ("k", "v"); Kv.Del "gone"; Kv.Put ("", "") ] } };
    { Proto.deadline_ms = 0; body = Proto.Stats } ]

let sample_responses =
  let h = Hash.of_string "x" in
  [ Proto.Pong;
    Proto.Head_r { id = h; root = Hash.of_string "y"; version = 42 };
    Proto.Value None;
    Proto.Value (Some "payload\x00bytes");
    Proto.Values [ ("a", Some "1"); ("b", None) ];
    Proto.Proof { root = h; proof = "\x01\x02\x03" };
    Proto.Committed { req_id = "abc"; commit = h; version = 7; group_size = 3 };
    Proto.Stats_r "{\"counters\":{}}";
    Proto.Err { code = Proto.Overload; detail = "queue full" };
    Proto.Err { code = Proto.Timeout; detail = "" };
    Proto.Err { code = Proto.Tampered; detail = "bad frame" };
    Proto.Err { code = Proto.Read_only; detail = "degraded" };
    Proto.Err { code = Proto.Bad_request; detail = "nope" };
    Proto.Err { code = Proto.Unknown_branch; detail = "feature" } ]

let test_proto_roundtrip () =
  List.iter
    (fun r ->
      match Proto.decode_request (Proto.encode_request r) with
      | Ok r' when r' = r -> ()
      | Ok _ -> Alcotest.fail "request roundtrip changed the message"
      | Error (`Malformed d) -> Alcotest.failf "request refused: %s" d)
    sample_requests;
  List.iter
    (fun r ->
      match Proto.decode_response (Proto.encode_response r) with
      | Ok r' when r' = r -> ()
      | Ok _ -> Alcotest.fail "response roundtrip changed the message"
      | Error (`Malformed d) -> Alcotest.failf "response refused: %s" d)
    sample_responses;
  (* seal/unseal roundtrip *)
  List.iter
    (fun r ->
      let payload = Proto.encode_request r in
      match Proto.unseal (Proto.seal payload) with
      | Ok p when p = payload -> ()
      | _ -> Alcotest.fail "seal/unseal roundtrip")
    sample_requests

let qcheck_proto_roundtrip =
  let open QCheck in
  let gen_req =
    let open Gen in
    let str = string_size ~gen:char (int_bound 40) in
    let key = str in
    oneof
      [ return Proto.Ping;
        map (fun b -> Proto.Head { branch = b }) str;
        map2 (fun b k -> Proto.Get { branch = b; key = k }) str key;
        map2 (fun b ks -> Proto.Get_many { branch = b; keys = ks }) str
          (list_size (int_bound 8) key);
        map2 (fun b ks -> Proto.Prove_many { branch = b; keys = ks }) str
          (list_size (int_bound 8) key);
        map3
          (fun b m ops -> Proto.Commit { req_id = "q.1"; branch = b; message = m; ops })
          str str
          (list_size (int_bound 6)
             (oneof
                [ map2 (fun k v -> Kv.Put (k, v)) key str;
                  map (fun k -> Kv.Del k) key ]));
        return Proto.Stats ]
  in
  let gen =
    Gen.map2 (fun d body -> { Proto.deadline_ms = d; body }) Gen.(int_bound 10_000) gen_req
  in
  QCheck.Test.make ~count:300 ~name:"proto request encode/decode = id"
    (QCheck.make gen) (fun r ->
      match Proto.decode_request (Proto.encode_request r) with
      | Ok r' -> r' = r
      | Error _ -> false)

(* Every single-byte flip of a sealed frame must be refused — and refused
   as a typed error, not an exception.  Every truncation likewise. *)
let test_wire_storm () =
  let frames =
    List.map (fun r -> Proto.seal (Proto.encode_request r)) sample_requests
    @ List.map (fun r -> Proto.seal (Proto.encode_response r)) sample_responses
  in
  let refused = ref 0 in
  List.iter
    (fun frame ->
      let n = String.length frame in
      for off = 0 to n - 1 do
        for _flip = 0 to 1 do
          let delta = if _flip = 0 then 0x01 else 0xA5 in
          let b = Bytes.of_string frame in
          Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor delta));
          match Proto.unseal (Bytes.to_string b) with
          | Ok p ->
              (* a flip that leaves the frame intact is impossible: the
                 digest covers both the length prefix and the payload *)
              Alcotest.failf "flip at %d/%d accepted (payload %d bytes)" off n
                (String.length p)
          | Error (`Tampered _) | Error (`Malformed _) -> incr refused
          | exception e ->
              Alcotest.failf "flip at %d raised %s" off (Printexc.to_string e)
        done
      done;
      for len = 0 to n - 1 do
        match Proto.unseal (String.sub frame 0 len) with
        | Ok _ -> Alcotest.failf "truncation to %d/%d accepted" len n
        | Error (`Tampered _) | Error (`Malformed _) -> incr refused
        | exception e ->
            Alcotest.failf "truncation to %d raised %s" len (Printexc.to_string e)
      done)
    frames;
  Alcotest.(check bool) "storm exercised" true (!refused > 1000);
  (* decoders are total on arbitrary payload bytes too *)
  let rng = Rng.create 20260806 in
  for _ = 1 to 2000 do
    let len = Rng.int rng 200 in
    let s = String.init len (fun _ -> Char.chr (Rng.int rng 256)) in
    (match Proto.decode_request s with Ok _ | Error (`Malformed _) -> ());
    match Proto.decode_response s with Ok _ | Error (`Malformed _) -> ()
  done

(* The same storm against a LIVE session: damaged frames get a typed
   error response (or a hangup), the server survives and keeps serving. *)
let test_wire_storm_live () =
  with_server "storm" @@ fun ~dir:_ ~sock ~server ~durable:_ ->
  let good = Proto.seal (Proto.encode_request { Proto.deadline_ms = 0; body = Proto.Ping }) in
  let rng = Rng.create 7 in
  for _ = 1 to 40 do
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX sock);
    let b = Bytes.of_string good in
    let off = Rng.int rng (Bytes.length b) in
    Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor (1 + Rng.int rng 255)));
    let s = Bytes.to_string b in
    ignore (Unix.write_substring fd s 0 (String.length s));
    (* the server answers with an error frame, then hangs up *)
    (match Proto.Io.read_frame ~deadline:(Unix.gettimeofday () +. 5.0) fd with
    | Ok payload -> (
        match Proto.decode_response payload with
        | Ok (Proto.Err { code = Proto.Tampered | Proto.Bad_request; _ }) -> ()
        | Ok r ->
            Alcotest.failf "damaged frame got a non-error response (%s)"
              (match r with Proto.Pong -> "pong" | _ -> "other")
        | Error (`Malformed d) -> Alcotest.failf "undecodable error reply: %s" d)
    | Error (`Closed | `Timeout | `Tampered _ | `Malformed _) -> ());
    Unix.close fd
  done;
  Alcotest.(check bool) "refusals metered" true
    (counter server "server.refused.tampered"
     + counter server "server.refused.malformed"
    > 0);
  (* and the server still works *)
  let c = connect_exn (`Unix sock) in
  (match Client.ping c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "server dead after storm: %s" (Client.error_to_string e));
  Client.close c

(* --- end to end --------------------------------------------------------------- *)

let test_e2e_mixed () =
  with_server "e2e" @@ fun ~dir:_ ~sock ~server ~durable ->
  let nthreads = 4 and per = 8 in
  let errors = ref [] in
  let emu = Mutex.create () in
  let threads =
    List.init nthreads (fun w ->
        Thread.create
          (fun () ->
            let c = connect_exn (`Unix sock) in
            for i = 1 to per do
              let k = Printf.sprintf "w%d-%d" w i in
              (match
                 Client.commit c ~branch:"master" ~message:"m"
                   [ Kv.Put (k, k ^ "!") ]
               with
              | Ok _ -> ()
              | Error e ->
                  Mutex.lock emu;
                  errors := Client.error_to_string e :: !errors;
                  Mutex.unlock emu);
              (* interleave reads off the live snapshot *)
              match Client.get c ~branch:"master" k with
              | Ok (Some v) when v = k ^ "!" -> ()
              | Ok _ ->
                  Mutex.lock emu;
                  errors := "read-your-writes violated" :: !errors;
                  Mutex.unlock emu
              | Error e ->
                  Mutex.lock emu;
                  errors := Client.error_to_string e :: !errors;
                  Mutex.unlock emu
            done;
            Client.close c)
          ())
  in
  List.iter Thread.join threads;
  (match !errors with
  | [] -> ()
  | e :: _ -> Alcotest.failf "%d errors, first: %s" (List.length !errors) e);
  (* all keys present via one batched read *)
  let c = connect_exn (`Unix sock) in
  let keys =
    List.concat_map
      (fun w -> List.init per (fun i -> Printf.sprintf "w%d-%d" w (i + 1)))
      (List.init nthreads Fun.id)
  in
  (match Client.get_many c ~branch:"master" keys with
  | Ok pairs ->
      List.iter
        (function
          | k, Some v when v = k ^ "!" -> ()
          | k, _ -> Alcotest.failf "key %s wrong after traffic" k)
        pairs
  | Error e -> Alcotest.failf "get_many: %s" (Client.error_to_string e));
  (* proofs served off the same snapshot verify client-side *)
  (match Client.prove_many c ~branch:"master" [ "w0-1"; "absent-key" ] with
  | Ok (root, proof) -> (
      match Multiproof.decode proof with
      | Error (`Malformed d | `Tampered d) -> Alcotest.failf "proof: %s" d
      | Ok mp ->
          let verifier = mk_index (Store.create ()) in
          Alcotest.(check bool) "proof verifies" true
            (Generic.verify_many verifier ~root mp);
          Alcotest.(check bool) "absent key claimed absent" true
            (List.assoc "absent-key" mp.Multiproof.claims = None))
  | Error e -> Alcotest.failf "prove_many: %s" (Client.error_to_string e));
  Client.close c;
  (* metrics conservation *)
  let sink = sink_of server in
  let total = nthreads * per in
  Alcotest.(check int) "every commit acked" total
    (Telemetry.counter sink "server.commit.acked");
  let groups = Telemetry.counter sink "server.commit.groups" in
  Alcotest.(check int) "groups = journal frames" groups
    (Telemetry.counter sink "wal.append");
  (match Telemetry.histogram sink "server.commit.group_size" with
  | None -> Alcotest.fail "no group_size histogram"
  | Some h ->
      Alcotest.(check int) "histogram mass = acked" total
        (int_of_float (Telemetry.Histo.sum h));
      Alcotest.(check int) "histogram count = groups" groups
        (Telemetry.Histo.count h));
  (* the engine agrees with the wire *)
  let eng = Durable.engine durable in
  Alcotest.(check int) "engine version = groups" groups
    (Engine.head eng "master").Engine.version

let test_tcp_listener () =
  with_dir "tcp" @@ fun dir ->
  let durable = open_durable ~backend:`Snapshot dir in
  let server = Server.start ~durable ~listen:[ `Tcp 0 ] () in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let port =
        match Server.listening server with
        | [ `Tcp p ] -> p
        | _ -> Alcotest.fail "expected one resolved tcp listener"
      in
      Alcotest.(check bool) "picked a real port" true (port > 0);
      let c = connect_exn (`Tcp port) in
      let _ = commit_exn c ~branch:"master" [ Kv.Put ("t", "1") ] in
      (match Client.get c ~branch:"master" "t" with
      | Ok (Some "1") -> ()
      | _ -> Alcotest.fail "tcp read");
      Client.close c)

(* --- group commit ------------------------------------------------------------- *)

let spin_until ?(timeout = 5.0) what pred =
  let t0 = Unix.gettimeofday () in
  while (not (pred ())) && Unix.gettimeofday () -. t0 < timeout do
    Thread.delay 0.005
  done;
  if not (pred ()) then Alcotest.failf "timed out waiting for %s" what

let test_group_fold () =
  with_server "group" @@ fun ~dir:_ ~sock ~server ~durable ->
  let n = 8 in
  let before = (Engine.head (Durable.engine durable) "master").Engine.version in
  Server.pause_writer server;
  let results = Array.make n None in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            let c = connect_exn (`Unix sock) in
            results.(i) <-
              Some
                (Client.commit c ~branch:"master" ~message:"g"
                   [ Kv.Put (Printf.sprintf "g%d" i, "v") ]);
            Client.close c)
          ())
  in
  spin_until "all batches queued" (fun () -> Server.queue_length server = n);
  Server.resume_writer server;
  List.iter Thread.join threads;
  let commits =
    Array.to_list results
    |> List.map (function
         | Some (Ok (h, v, g)) -> (h, v, g)
         | Some (Error e) -> Alcotest.failf "group commit: %s" (Client.error_to_string e)
         | None -> Alcotest.fail "thread did not finish")
  in
  (* every batch folded into the SAME commit: one WAL frame, one version *)
  let h0, v0, _ = List.hd commits in
  List.iter
    (fun (h, v, g) ->
      Alcotest.(check bool) "same commit id" true (Hash.equal h h0);
      Alcotest.(check int) "same version" v0 v;
      Alcotest.(check int) "group size" n g)
    commits;
  Alcotest.(check int) "exactly one version advance" (before + 1)
    (Engine.head (Durable.engine durable) "master").Engine.version;
  Alcotest.(check int) "one group" 1 (counter server "server.commit.groups");
  Alcotest.(check int) "all acked" n (counter server "server.commit.acked");
  (* all keys landed *)
  let c = connect_exn (`Unix sock) in
  (match
     Client.get_many c ~branch:"master" (List.init n (Printf.sprintf "g%d"))
   with
  | Ok pairs ->
      Alcotest.(check bool) "all present" true
        (List.for_all (fun (_, v) -> v = Some "v") pairs)
  | Error e -> Alcotest.failf "get_many: %s" (Client.error_to_string e));
  Client.close c

let test_overload () =
  let config = { Server.default_config with max_queue = 2 } in
  with_server ~config "overload" @@ fun ~dir:_ ~sock ~server ~durable:_ ->
  Server.pause_writer server;
  let n = 6 in
  let results = Array.make n None in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            let c = connect_exn (`Unix sock) in
            results.(i) <-
              Some
                (Client.commit c ~branch:"master" ~message:"o"
                   [ Kv.Put (Printf.sprintf "o%d" i, "v") ]);
            Client.close c)
          ())
  in
  (* the two queue slots fill; the other four must be refused promptly *)
  spin_until "overload refusals" (fun () ->
      counter server "server.overload" = n - config.Server.max_queue);
  Server.resume_writer server;
  List.iter Thread.join threads;
  let ok, over =
    Array.to_list results
    |> List.partition_map (function
         | Some (Ok _) -> Left ()
         | Some (Error `Overload) -> Right ()
         | Some (Error e) ->
             Alcotest.failf "unexpected: %s" (Client.error_to_string e)
         | None -> Alcotest.fail "unfinished thread")
  in
  Alcotest.(check int) "queued batches acked" config.Server.max_queue
    (List.length ok);
  Alcotest.(check int) "rest refused `Overload" (n - config.Server.max_queue)
    (List.length over);
  Alcotest.(check int) "overload metered" (n - config.Server.max_queue)
    (counter server "server.overload")

let test_deadline () =
  with_server "deadline" @@ fun ~dir:_ ~sock ~server ~durable ->
  let before = (Engine.head (Durable.engine durable) "master").Engine.version in
  Server.pause_writer server;
  let result = ref None in
  let th =
    Thread.create
      (fun () ->
        let c = connect_exn (`Unix sock) in
        result :=
          Some
            (Client.commit ~deadline_ms:40 c ~branch:"master" ~message:"d"
               [ Kv.Put ("late", "v") ]);
        Client.close c)
      ()
  in
  spin_until "batch queued" (fun () -> Server.queue_length server = 1);
  Thread.delay 0.1;  (* let the 40ms budget expire while the writer is held *)
  Server.resume_writer server;
  Thread.join th;
  (match !result with
  | Some (Error `Timeout) -> ()
  | Some (Ok _) -> Alcotest.fail "expired deadline must not be applied"
  | Some (Error e) -> Alcotest.failf "unexpected: %s" (Client.error_to_string e)
  | None -> Alcotest.fail "unfinished");
  Alcotest.(check int) "timeout metered" 1 (counter server "server.timeout");
  Alcotest.(check int) "nothing committed" before
    (Engine.head (Durable.engine durable) "master").Engine.version;
  (* a key refused on deadline is absent *)
  let c = connect_exn (`Unix sock) in
  (match Client.get c ~branch:"master" "late" with
  | Ok None -> ()
  | _ -> Alcotest.fail "late write leaked");
  Client.close c

(* --- idempotency -------------------------------------------------------------- *)

let test_idempotent_duplicate () =
  with_server "idem" @@ fun ~dir:_ ~sock ~server ~durable ->
  let c = connect_exn (`Unix sock) in
  let h1, v1, _ = commit_exn ~req_id:"dup-1" c ~branch:"master" [ Kv.Put ("a", "1") ] in
  (* same id again — even with different ops, it is the same request *)
  let h2, v2, _ = commit_exn ~req_id:"dup-1" c ~branch:"master" [ Kv.Put ("a", "2") ] in
  Alcotest.(check bool) "same commit" true (Hash.equal h1 h2);
  Alcotest.(check int) "same version" v1 v2;
  Alcotest.(check bool) "dedup metered" true
    (counter server "server.commit.dedup" >= 1);
  Alcotest.(check int) "applied once" v1
    (Engine.head (Durable.engine durable) "master").Engine.version;
  (match Client.get c ~branch:"master" "a" with
  | Ok (Some "1") -> ()
  | _ -> Alcotest.fail "first write must win");
  Client.close c

let test_idempotent_across_restart () =
  with_dir "idem-restart" @@ fun dir ->
  let sock = Filename.concat dir "s" in
  let durable = open_durable ~backend:`Snapshot dir in
  let server = Server.start ~durable ~listen:[ `Unix sock ] () in
  let c = connect_exn (`Unix sock) in
  let h1, v1, _ = commit_exn ~req_id:"boot-7" c ~branch:"master" [ Kv.Put ("x", "1") ] in
  Client.close c;
  Server.stop server;
  (* reopen the directory: the id table rebuilds from the journal *)
  let durable2 = open_durable ~backend:`Snapshot dir in
  let server2 = Server.start ~durable:durable2 ~listen:[ `Unix sock ] () in
  Fun.protect
    ~finally:(fun () -> Server.stop server2)
    (fun () ->
      let c = connect_exn (`Unix sock) in
      let h2, v2, _ =
        commit_exn ~req_id:"boot-7" c ~branch:"master" [ Kv.Put ("x", "999") ]
      in
      Alcotest.(check bool) "same commit across restart" true (Hash.equal h1 h2);
      Alcotest.(check int) "same version across restart" v1 v2;
      Alcotest.(check int) "not reapplied" v1
        (Engine.head (Durable.engine durable2) "master").Engine.version;
      (match Client.get c ~branch:"master" "x" with
      | Ok (Some "1") -> ()
      | _ -> Alcotest.fail "retry must not overwrite");
      Client.close c)

(* --- graceful degradation ------------------------------------------------------ *)

let test_read_only_degradation () =
  with_server "degrade" @@ fun ~dir:_ ~sock ~server ~durable ->
  let c = connect_exn (`Unix sock) in
  (* a real tree with internal nodes, so the commit path must fetch them *)
  let ops = List.init 300 (fun i -> Kv.Put (Printf.sprintf "key%04d" i, "v")) in
  let _ = commit_exn c ~branch:"master" ops in
  let eng = Durable.engine durable in
  let head = Engine.head eng "master" in
  Store.corrupt (Engine.store eng) head.Engine.index_root;
  (* the commit path hits the damage, refuses, and flips to read-only *)
  (match Client.commit c ~branch:"master" ~message:"t" [ Kv.Put ("key0001", "w") ] with
  | Error (`Tampered _) -> ()
  | Ok _ -> Alcotest.fail "commit over tampered root must be refused"
  | Error e -> Alcotest.failf "expected `Tampered, got %s" (Client.error_to_string e));
  Alcotest.(check bool) "entered read-only" true (Server.read_only server);
  Alcotest.(check int) "transition metered" 1
    (counter server "server.readonly.enter");
  (* further writes are refused read-only, the server stays up *)
  (match Client.commit c ~branch:"master" ~message:"t" [ Kv.Put ("z", "1") ] with
  | Error `Read_only -> ()
  | _ -> Alcotest.fail "writes must be refused in read-only mode");
  (match Client.ping c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "server died: %s" (Client.error_to_string e));
  (* head metadata still serves off the last good snapshot *)
  (match Client.head c ~branch:"master" with
  | Ok (_, root, _) ->
      Alcotest.(check bool) "snapshot root preserved" true
        (Hash.equal root head.Engine.index_root)
  | Error e -> Alcotest.failf "head: %s" (Client.error_to_string e));
  Client.close c

let test_session_cap () =
  let config = { Server.default_config with session_max = 2 } in
  with_server ~config "cap" @@ fun ~dir:_ ~sock ~server:_ ~durable:_ ->
  let c1 = connect_exn (`Unix sock) in
  let c2 = connect_exn (`Unix sock) in
  (match Client.connect ~attempts:1 ~addr:(`Unix sock) () with
  | Error (`Overload | `Unavailable _) -> ()
  | Ok _ -> Alcotest.fail "third session must be refused"
  | Error e -> Alcotest.failf "expected refusal, got %s" (Client.error_to_string e));
  Client.close c1;
  Client.close c2

let test_unknown_branch () =
  with_server "branch" @@ fun ~dir:_ ~sock ~server:_ ~durable:_ ->
  let c = connect_exn (`Unix sock) in
  (match Client.get c ~branch:"nope" "k" with
  | Error (`Unknown_branch _) -> ()
  | _ -> Alcotest.fail "read on unknown branch");
  (match Client.commit c ~branch:"nope" ~message:"m" [ Kv.Put ("k", "v") ] with
  | Error (`Unknown_branch _) -> ()
  | _ -> Alcotest.fail "commit on unknown branch");
  (* invalid request id is refused before it can poison the journal *)
  (match
     Client.commit ~req_id:"has,comma" c ~branch:"master" ~message:"m"
       [ Kv.Put ("k", "v") ]
   with
  | Error (`Refused _) -> ()
  | _ -> Alcotest.fail "invalid req_id must be refused");
  Client.close c

(* --- metrics conservation (property) ------------------------------------------- *)

let qcheck_conservation =
  let open QCheck in
  let gen_schedule =
    Gen.list_size (Gen.int_range 1 12)
      (Gen.list_size (Gen.int_range 1 4)
         (Gen.map2
            (fun k v -> Kv.Put ("k" ^ string_of_int k, "v" ^ string_of_int v))
            (Gen.int_bound 50) (Gen.int_bound 50)))
  in
  QCheck.Test.make ~count:5
    ~name:"acked commits = group-size histogram mass = client acks"
    (QCheck.make gen_schedule) (fun schedule ->
      with_server "qconserve" @@ fun ~dir:_ ~sock ~server ~durable:_ ->
      let c = connect_exn (`Unix sock) in
      List.iter
        (fun batch -> ignore (commit_exn c ~branch:"master" batch))
        schedule;
      Client.close c;
      let sink = sink_of server in
      let acked = Telemetry.counter sink "server.commit.acked" in
      let groups = Telemetry.counter sink "server.commit.groups" in
      let mass, hcount =
        match Telemetry.histogram sink "server.commit.group_size" with
        | None -> (0, 0)
        | Some h ->
            (int_of_float (Telemetry.Histo.sum h), Telemetry.Histo.count h)
      in
      acked = List.length schedule
      && mass = acked
      && hcount = groups
      && groups = Telemetry.counter sink "wal.append")

(* --- crash-kill harness --------------------------------------------------------- *)

let bin_dir () =
  match Sys.getenv_opt "SIRI_BIN_DIR" with
  | Some d -> d
  | None ->
      if Sys.file_exists "../bin/siri_serve.exe" then "../bin"
      else "_build/default/bin"

let spawn_serve ~dir ~sock ~backend =
  let exe = Filename.concat (bin_dir ()) "siri_serve.exe" in
  let out_r, out_w = Unix.pipe () in
  let pid =
    Unix.create_process exe
      [| exe; dir;
         "--backend"; (match backend with `Pack -> "pack" | `Snapshot -> "snapshot");
         "--unix"; sock |]
      Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let ic = Unix.in_channel_of_descr out_r in
  let ready =
    match input_line ic with
    | line -> String.length line >= 5 && String.sub line 0 5 = "READY"
    | exception End_of_file -> false
  in
  if not ready then begin
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    ignore (Unix.waitpid [] pid);
    close_in ic;
    (* forensics hook: keep the directory a failed restart leaves behind *)
    (match Sys.getenv_opt "SIRI_KEEP" with
    | Some _ ->
        ignore
          (Sys.command
             (Printf.sprintf "cp -r %s /tmp/siri-keep.%d"
                (Filename.quote dir) (Unix.getpid ())))
    | None -> ());
    Alcotest.fail "siri_serve did not come up"
  end;
  (pid, ic)

let reap pid = try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

(* One seeded round: concurrent writers, SIGKILL mid-flight, restart,
   audit.  Returns (issued, acked) counts for the round summary. *)
let crash_round ~backend ~round =
  with_dir (Printf.sprintf "kill-%d" round) @@ fun dir ->
  let data = Filename.concat dir "d" in
  let sock = Filename.concat dir "s" in
  let rng = Rng.create (20260806 + (997 * round) + (match backend with `Pack -> 1 | `Snapshot -> 0)) in
  let pid, ic = spawn_serve ~dir:data ~sock ~backend in
  let issued : (string, (string * string) list) Hashtbl.t = Hashtbl.create 64 in
  let acked : (string, Hash.t) Hashtbl.t = Hashtbl.create 64 in
  let mu = Mutex.create () in
  let stop_flag = Atomic.make false in
  let writer w =
    let c =
      Client.connect ~attempts:1 ~connect_timeout_s:5.0 ~request_timeout_s:5.0
        ~addr:(`Unix sock) ()
    in
    match c with
    | Error _ -> ()
    | Ok c ->
        let i = ref 0 in
        (try
           while not (Atomic.get stop_flag) do
             incr i;
             let id = Printf.sprintf "r%d-w%d-%d" round w !i in
             let kvs =
               [ (Printf.sprintf "w%d-%d-a" w !i, Printf.sprintf "va%d.%d" w !i);
                 (Printf.sprintf "w%d-%d-b" w !i, Printf.sprintf "vb%d.%d" w !i) ]
             in
             Mutex.lock mu;
             Hashtbl.replace issued id kvs;
             Mutex.unlock mu;
             match
               Client.commit ~req_id:id c ~branch:"master" ~message:"kill"
                 (List.map (fun (k, v) -> Kv.Put (k, v)) kvs)
             with
             | Ok (h, _, _) ->
                 Mutex.lock mu;
                 Hashtbl.replace acked id h;
                 Mutex.unlock mu
             | Error _ -> raise Exit
           done
         with Exit -> ());
        Client.close c
  in
  let threads = List.init 3 (fun w -> Thread.create writer w) in
  (* the seeded kill point: 10..160ms into the traffic *)
  Thread.delay (0.01 +. (Rng.float rng *. 0.15));
  Unix.kill pid Sys.sigkill;
  reap pid;
  Atomic.set stop_flag true;
  List.iter Thread.join threads;
  close_in ic;
  (* restart on the same directory: recovery must land on an exact
     committed prefix *)
  let pid2, ic2 = spawn_serve ~dir:data ~sock ~backend in
  let c = connect_exn ~attempts:3 (`Unix sock) in
  (* every acked batch survives, byte-exact *)
  Hashtbl.iter
    (fun id _h ->
      let kvs = Hashtbl.find issued id in
      List.iter
        (fun (k, v) ->
          match Client.get c ~branch:"master" k with
          | Ok (Some v') when v' = v -> ()
          | Ok (Some v') ->
              Alcotest.failf "acked %s: key %s has %S, want %S" id k v' v
          | Ok None -> Alcotest.failf "ACKED COMMIT LOST: %s key %s" id k
          | Error e ->
              Alcotest.failf "read after recovery: %s" (Client.error_to_string e))
        kvs)
    acked;
  (* every unacked batch is atomic: both keys or neither *)
  let unacked =
    Hashtbl.fold
      (fun id kvs acc -> if Hashtbl.mem acked id then acc else (id, kvs) :: acc)
      issued []
  in
  List.iter
    (fun (id, kvs) ->
      let present =
        List.map
          (fun (k, v) ->
            match Client.get c ~branch:"master" k with
            | Ok (Some v') when v' = v -> true
            | Ok (Some v') ->
                Alcotest.failf "unacked %s: key %s has wrong value %S" id k v'
            | Ok None -> false
            | Error e ->
                Alcotest.failf "read after recovery: %s" (Client.error_to_string e))
          kvs
      in
      match present with
      | [ a; b ] when a = b -> ()
      | _ -> Alcotest.failf "TORN COMMIT after crash: %s" id)
    unacked;
  (* idempotent resend of an unacked batch: applied at most once *)
  (match unacked with
  | [] -> ()
  | (id, kvs) :: _ ->
      let ops = List.map (fun (k, v) -> Kv.Put (k, v)) kvs in
      let h1, v1, _ = commit_exn ~req_id:id c ~branch:"master" ops in
      let h2, v2, _ = commit_exn ~req_id:id c ~branch:"master" ops in
      Alcotest.(check bool) "resend converges" true (Hash.equal h1 h2);
      Alcotest.(check int) "resend version stable" v1 v2;
      List.iter
        (fun (k, v) ->
          match Client.get c ~branch:"master" k with
          | Ok (Some v') when v' = v -> ()
          | _ -> Alcotest.failf "resent %s incomplete" id)
        kvs);
  Client.close c;
  (try Unix.kill pid2 Sys.sigterm with Unix.Unix_error _ -> ());
  reap pid2;
  close_in ic2;
  (* no phantoms: every server commit in the journal names issued ids *)
  let durable = open_durable ~backend data in
  let eng = Durable.engine durable in
  List.iter
    (fun (cm : Engine.commit) ->
      let p = "serve:" in
      let pl = String.length p in
      if String.length cm.message > pl && String.sub cm.message 0 pl = p then
        String.split_on_char ','
          (String.sub cm.message pl (String.length cm.message - pl))
        |> List.iter (fun id ->
               if not (Hashtbl.mem issued id) then
                 Alcotest.failf "PHANTOM COMMIT: unknown request id %s" id))
    (Engine.history eng "master");
  Durable.close durable;
  (Hashtbl.length issued, Hashtbl.length acked)

let rounds () =
  match Sys.getenv_opt "SIRI_SERVE_ROUNDS" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> 3)
  | None -> 3

let test_crash_kill backend () =
  let n = rounds () in
  let issued = ref 0 and acked = ref 0 in
  for round = 1 to n do
    let i, a = crash_round ~backend ~round in
    issued := !issued + i;
    acked := !acked + a
  done;
  (* the harness must actually exercise traffic, not kill idle servers *)
  Alcotest.(check bool)
    (Printf.sprintf "traffic flowed (%d issued, %d acked over %d kills)" !issued
       !acked n)
    true (!issued > 0)

(* --- suite --------------------------------------------------------------------- *)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "server"
    [ ( "protocol",
        [ Alcotest.test_case "codec roundtrip" `Quick test_proto_roundtrip;
          qt qcheck_proto_roundtrip;
          Alcotest.test_case "wire storm: every flip/truncation refused" `Quick
            test_wire_storm;
          Alcotest.test_case "wire storm against a live session" `Quick
            test_wire_storm_live ] );
      ( "end to end",
        [ Alcotest.test_case "concurrent mixed traffic + conservation" `Quick
            test_e2e_mixed;
          Alcotest.test_case "tcp loopback listener" `Quick test_tcp_listener ] );
      ( "group commit",
        [ Alcotest.test_case "n batches fold into one WAL frame" `Quick
            test_group_fold;
          Alcotest.test_case "bounded queue refuses with overload" `Quick
            test_overload;
          Alcotest.test_case "expired deadline refused, never applied" `Quick
            test_deadline;
          qt qcheck_conservation ] );
      ( "idempotency",
        [ Alcotest.test_case "duplicate req_id applied once" `Quick
            test_idempotent_duplicate;
          Alcotest.test_case "duplicate req_id across restart" `Quick
            test_idempotent_across_restart ] );
      ( "degradation",
        [ Alcotest.test_case "tampered commit path -> read-only" `Quick
            test_read_only_degradation;
          Alcotest.test_case "session cap refuses politely" `Quick
            test_session_cap;
          Alcotest.test_case "unknown branch / bad req_id" `Quick
            test_unknown_branch ] );
      ( "crash kill",
        [ Alcotest.test_case "snapshot backend: SIGKILL storm" `Slow
            (test_crash_kill `Snapshot);
          Alcotest.test_case "pack backend: SIGKILL storm" `Slow
            (test_crash_kill `Pack) ] ) ]
