(* LRU edge cases: degenerate capacities, recency order under repeated
   touches, and the eviction counter's agreement with telemetry. *)

module Hash = Siri_crypto.Hash
module Lru = Siri_forkbase.Lru
module Telemetry = Siri_telemetry.Telemetry

let h i = Hash.of_string (string_of_int i)

let test_negative_capacity () =
  Alcotest.check_raises "negative capacity rejected"
    (Invalid_argument "Lru.create: capacity must be non-negative") (fun () ->
      ignore (Lru.create ~capacity:(-1)))

let test_capacity_zero () =
  let c = Lru.create ~capacity:0 in
  Alcotest.(check int) "capacity" 0 (Lru.capacity c);
  for i = 1 to 10 do
    Alcotest.(check bool) "every touch misses" false (Lru.touch c (h i));
    Alcotest.(check bool) "repeat still misses" false (Lru.touch c (h i))
  done;
  Alcotest.(check int) "retains nothing" 0 (Lru.size c);
  Alcotest.(check int) "nothing stored, nothing evicted" 0 (Lru.evictions c)

let test_capacity_one () =
  let c = Lru.create ~capacity:1 in
  Alcotest.(check bool) "first touch misses" false (Lru.touch c (h 1));
  Alcotest.(check bool) "second touch hits" true (Lru.touch c (h 1));
  Alcotest.(check bool) "new key misses" false (Lru.touch c (h 2));
  Alcotest.(check bool) "old key evicted" false (Lru.mem c (h 1));
  Alcotest.(check bool) "new key resident" true (Lru.mem c (h 2));
  Alcotest.(check int) "size stays 1" 1 (Lru.size c);
  Alcotest.(check int) "one eviction" 1 (Lru.evictions c)

let test_eviction_order () =
  let c = Lru.create ~capacity:2 in
  ignore (Lru.touch c (h 1));
  ignore (Lru.touch c (h 2));
  (* Refresh 1: now 2 is the least recently used. *)
  Alcotest.(check bool) "refresh hits" true (Lru.touch c (h 1));
  ignore (Lru.touch c (h 3));
  Alcotest.(check bool) "refreshed key survives" true (Lru.mem c (h 1));
  Alcotest.(check bool) "LRU key evicted" false (Lru.mem c (h 2));
  Alcotest.(check bool) "new key resident" true (Lru.mem c (h 3));
  (* Repeated touches of resident keys never evict. *)
  let before = Lru.evictions c in
  for _ = 1 to 20 do
    ignore (Lru.touch c (h 1));
    ignore (Lru.touch c (h 3))
  done;
  Alcotest.(check int) "hits do not evict" before (Lru.evictions c)

let test_eviction_order_deep () =
  (* Fill to capacity, touch the first key, insert one more: the evicted
     entry must be the second-oldest, not the (refreshed) first. *)
  let c = Lru.create ~capacity:4 in
  List.iter (fun i -> ignore (Lru.touch c (h i))) [ 1; 2; 3; 4 ];
  Alcotest.(check bool) "refresh oldest" true (Lru.touch c (h 1));
  ignore (Lru.touch c (h 5));
  Alcotest.(check bool) "refreshed first survives" true (Lru.mem c (h 1));
  Alcotest.(check bool) "second-oldest evicted" false (Lru.mem c (h 2));
  List.iter
    (fun i ->
      Alcotest.(check bool) (Printf.sprintf "%d resident" i) true
        (Lru.mem c (h i)))
    [ 3; 4; 5 ];
  Alcotest.(check int) "exactly one eviction" 1 (Lru.evictions c)

let test_mem_does_not_refresh () =
  let c = Lru.create ~capacity:2 in
  ignore (Lru.touch c (h 1));
  ignore (Lru.touch c (h 2));
  (* mem must not promote 1; the next insert still evicts it. *)
  Alcotest.(check bool) "mem sees 1" true (Lru.mem c (h 1));
  ignore (Lru.touch c (h 3));
  Alcotest.(check bool) "1 evicted despite mem" false (Lru.mem c (h 1))

let test_clear_keeps_evictions () =
  let c = Lru.create ~capacity:1 in
  ignore (Lru.touch c (h 1));
  ignore (Lru.touch c (h 2));
  Alcotest.(check int) "one eviction before clear" 1 (Lru.evictions c);
  Lru.clear c;
  Alcotest.(check int) "clear empties" 0 (Lru.size c);
  Alcotest.(check int) "clear is not an eviction" 1 (Lru.evictions c)

let test_telemetry_agreement () =
  let sink = Telemetry.create () in
  let c = Lru.create ~capacity:3 in
  Lru.set_sink c sink;
  let rng_keys = List.init 200 (fun i -> h (i * 37 mod 11)) in
  List.iter (fun k -> ignore (Lru.touch c k)) rng_keys;
  Alcotest.(check int) "cache.evict = evictions"
    (Lru.evictions c)
    (Telemetry.counter sink "cache.evict");
  Alcotest.(check bool) "evictions happened" true (Lru.evictions c > 0)

let () =
  Alcotest.run "lru"
    [ ( "edge cases",
        [ Alcotest.test_case "negative capacity" `Quick test_negative_capacity;
          Alcotest.test_case "capacity 0" `Quick test_capacity_zero;
          Alcotest.test_case "capacity 1" `Quick test_capacity_one;
          Alcotest.test_case "eviction order" `Quick test_eviction_order;
          Alcotest.test_case "eviction order (deep)" `Quick test_eviction_order_deep;
          Alcotest.test_case "mem does not refresh" `Quick test_mem_does_not_refresh;
          Alcotest.test_case "clear keeps evictions" `Quick test_clear_keeps_evictions;
          Alcotest.test_case "telemetry agreement" `Quick test_telemetry_agreement ]
      ) ]
