(* Engine extensions: optimistic transactions (first-committer-wins OCC),
   commit-chain verification and history pruning. *)

open Siri_core
module Store = Siri_store.Store
module Engine = Siri_forkbase.Engine
module Pos = Siri_pos.Pos_tree
module Hash = Siri_crypto.Hash

let fresh_engine () =
  let store = Store.create () in
  Engine.create
    ~empty_index:(Pos.generic (Pos.empty store (Pos.config ~leaf_target:256 ())))

let seeded () =
  let e = fresh_engine () in
  let _ =
    Engine.commit e ~branch:"master" ~message:"seed"
      [ Kv.Put ("balance:alice", "100"); Kv.Put ("balance:bob", "50") ]
  in
  e

(* --- transactions ------------------------------------------------------------- *)

let test_txn_commit () =
  let e = seeded () in
  let txn = Engine.begin_txn e ~branch:"master" in
  Alcotest.(check (option string)) "reads snapshot" (Some "100")
    (Engine.txn_get txn "balance:alice");
  Engine.txn_put txn "balance:alice" "90";
  Engine.txn_put txn "balance:bob" "60";
  Alcotest.(check (option string)) "read your writes" (Some "90")
    (Engine.txn_get txn "balance:alice");
  (match Engine.commit_txn txn ~message:"transfer" with
  | Ok c -> Alcotest.(check string) "message" "transfer" c.Engine.message
  | Error _ -> Alcotest.fail "clean txn must commit");
  Alcotest.(check (option string)) "applied" (Some "90")
    (Engine.get e ~branch:"master" "balance:alice")

let test_txn_write_skew_detected () =
  let e = seeded () in
  let t1 = Engine.begin_txn e ~branch:"master" in
  let t2 = Engine.begin_txn e ~branch:"master" in
  (* Both read alice, both try to debit. *)
  ignore (Engine.txn_get t1 "balance:alice");
  ignore (Engine.txn_get t2 "balance:alice");
  Engine.txn_put t1 "balance:alice" "80";
  Engine.txn_put t2 "balance:alice" "70";
  (match Engine.commit_txn t1 ~message:"t1" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "first committer wins");
  (match Engine.commit_txn t2 ~message:"t2" with
  | Ok _ -> Alcotest.fail "second committer must conflict"
  | Error (`Conflict ks) ->
      Alcotest.(check (list string)) "conflicting key" [ "balance:alice" ] ks);
  Alcotest.(check (option string)) "t1's value stands" (Some "80")
    (Engine.get e ~branch:"master" "balance:alice")

let test_txn_disjoint_keys_both_commit () =
  let e = seeded () in
  let t1 = Engine.begin_txn e ~branch:"master" in
  let t2 = Engine.begin_txn e ~branch:"master" in
  Engine.txn_put t1 "balance:alice" "0";
  Engine.txn_put t2 "balance:bob" "999";
  (match Engine.commit_txn t1 ~message:"t1" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "t1 clean");
  (match Engine.commit_txn t2 ~message:"t2" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "disjoint writes must not conflict");
  Alcotest.(check (option string)) "alice" (Some "0")
    (Engine.get e ~branch:"master" "balance:alice");
  Alcotest.(check (option string)) "bob" (Some "999")
    (Engine.get e ~branch:"master" "balance:bob")

let test_txn_read_only_never_conflicts () =
  let e = seeded () in
  let t1 = Engine.begin_txn e ~branch:"master" in
  ignore (Engine.txn_get t1 "balance:bob");
  let _ = Engine.commit e ~branch:"master" ~message:"other" [ Kv.Put ("x", "1") ] in
  match Engine.commit_txn t1 ~message:"ro" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "unrelated write must not invalidate a read-only txn"

let test_txn_stale_read_conflicts () =
  let e = seeded () in
  let t1 = Engine.begin_txn e ~branch:"master" in
  ignore (Engine.txn_get t1 "balance:bob");
  Engine.txn_put t1 "derived" "bob-is-50";
  (* Someone changes bob before t1 commits: the derivation is stale. *)
  let _ =
    Engine.commit e ~branch:"master" ~message:"race" [ Kv.Put ("balance:bob", "51") ]
  in
  match Engine.commit_txn t1 ~message:"t1" with
  | Ok _ -> Alcotest.fail "stale read must conflict"
  | Error (`Conflict ks) ->
      Alcotest.(check bool) "names bob" true (List.mem "balance:bob" ks)

let test_txn_delete () =
  let e = seeded () in
  let txn = Engine.begin_txn e ~branch:"master" in
  Engine.txn_del txn "balance:bob";
  Alcotest.(check (option string)) "tombstone visible in txn" None
    (Engine.txn_get txn "balance:bob");
  (match Engine.commit_txn txn ~message:"close account" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "clean delete");
  Alcotest.(check (option string)) "deleted" None
    (Engine.get e ~branch:"master" "balance:bob")

(* --- verify_history --------------------------------------------------------------- *)

let test_verify_history_clean () =
  let e = seeded () in
  let _ = Engine.commit e ~branch:"master" ~message:"more" [ Kv.Put ("c", "3") ] in
  match Engine.verify_history e "master" with
  | Ok n -> Alcotest.(check int) "3 commits checked" 3 n
  | Error _ -> Alcotest.fail "clean history must verify"

let test_verify_history_detects_tampering () =
  let e = seeded () in
  let store = Engine.store e in
  (* Corrupt one index node of the head version. *)
  let head = Engine.head e "master" in
  let victim =
    Hash.Set.choose (Store.reachable store head.Engine.index_root)
  in
  Store.corrupt store victim;
  match Engine.verify_history e "master" with
  | Ok _ -> Alcotest.fail "tampering must be detected"
  | Error (`Tampered h) -> Alcotest.(check bool) "names a node" true (Hash.equal h victim)

(* --- prune ---------------------------------------------------------------------------- *)

let test_prune_keeps_recent () =
  let e = seeded () in
  for i = 1 to 10 do
    ignore
      (Engine.commit e ~branch:"master" ~message:(Printf.sprintf "v%d" i)
         [ Kv.Put (Printf.sprintf "k%d" i, "v") ])
  done;
  Alcotest.(check int) "12 commits before" 12 (List.length (Engine.history e "master"));
  let reclaimed = Engine.prune e ~keep:3 in
  Alcotest.(check bool) "reclaimed nodes" true (reclaimed > 0);
  let hist = Engine.history e "master" in
  Alcotest.(check int) "3 commits after" 3 (List.length hist);
  (* Data of the retained head is fully intact. *)
  Alcotest.(check (option string)) "latest data" (Some "v")
    (Engine.get e ~branch:"master" "k10");
  Alcotest.(check (option string)) "old data still in head version" (Some "100")
    (Engine.get e ~branch:"master" "balance:alice");
  (* Retained history still verifies. *)
  match Engine.verify_history e "master" with
  | Ok n -> Alcotest.(check int) "verified" 3 n
  | Error _ -> Alcotest.fail "pruned history must verify"

let test_prune_multiple_branches () =
  let e = seeded () in
  Engine.fork e ~from:"master" "dev";
  for i = 1 to 5 do
    ignore (Engine.commit e ~branch:"dev" ~message:"d" [ Kv.Put (Printf.sprintf "d%d" i, "1") ]);
    ignore (Engine.commit e ~branch:"master" ~message:"m" [ Kv.Put (Printf.sprintf "m%d" i, "1") ])
  done;
  let _ = Engine.prune e ~keep:2 in
  List.iter
    (fun b ->
      Alcotest.(check int) (b ^ " truncated") 2 (List.length (Engine.history e b)))
    [ "master"; "dev" ];
  Alcotest.(check (option string)) "dev data intact" (Some "1")
    (Engine.get e ~branch:"dev" "d5");
  Alcotest.(check (option string)) "master data intact" (Some "1")
    (Engine.get e ~branch:"master" "m5")

let test_prune_validation () =
  let e = seeded () in
  Alcotest.check_raises "keep >= 1"
    (Invalid_argument "Engine.prune: keep must be >= 1") (fun () ->
      ignore (Engine.prune e ~keep:0))

let () =
  Alcotest.run "txn"
    [ ( "transactions",
        [ Alcotest.test_case "commit" `Quick test_txn_commit;
          Alcotest.test_case "write skew detected" `Quick test_txn_write_skew_detected;
          Alcotest.test_case "disjoint keys commit" `Quick test_txn_disjoint_keys_both_commit;
          Alcotest.test_case "read-only never conflicts" `Quick
            test_txn_read_only_never_conflicts;
          Alcotest.test_case "stale read conflicts" `Quick test_txn_stale_read_conflicts;
          Alcotest.test_case "delete in txn" `Quick test_txn_delete ] );
      ( "verify-history",
        [ Alcotest.test_case "clean chain" `Quick test_verify_history_clean;
          Alcotest.test_case "tampering detected" `Quick
            test_verify_history_detects_tampering ] );
      ( "prune",
        [ Alcotest.test_case "keeps recent commits" `Quick test_prune_keeps_recent;
          Alcotest.test_case "multiple branches" `Quick test_prune_multiple_branches;
          Alcotest.test_case "validation" `Quick test_prune_validation ] ) ]
