(* Tree_stats: per-level accounting over the ordered Merkle trees. *)

open Siri_core
module Store = Siri_store.Store
module Pos = Siri_pos.Pos_tree
module Mvbt = Siri_mvbt.Mvbt

let entries n = List.init n (fun i -> (Printf.sprintf "k%06d" i, String.make 40 'v'))

let test_pos_stats () =
  let store = Store.create () in
  let t = Pos.of_entries store (Pos.config ~leaf_target:256 ~internal_bits:3 ()) (entries 2000) in
  let s = Pos.stats t in
  Alcotest.(check int) "records" 2000 s.Tree_stats.records;
  Alcotest.(check int) "height matches" (Pos.height t) s.Tree_stats.height;
  Alcotest.(check int) "levels = height" s.Tree_stats.height
    (List.length s.Tree_stats.levels);
  Alcotest.(check bool) "leaf mean near target" true
    (let m = Tree_stats.mean_leaf_bytes s in
     m > 85.0 && m < 1024.0);
  Alcotest.(check bool) "fanout ~ 2^3" true
    (let f = Tree_stats.mean_fanout s in
     f > 2.0 && f < 32.0);
  (* Byte totals agree with the store's reachable set. *)
  Alcotest.(check int) "bytes = reachable bytes"
    (Store.bytes_of_set store (Store.reachable store (Pos.root t)))
    s.Tree_stats.total_bytes

let test_mvbt_stats () =
  let store = Store.create () in
  let t =
    Mvbt.of_entries store (Mvbt.config ~leaf_capacity:4 ~internal_capacity:5 ()) (entries 500)
  in
  let s = Mvbt.stats t in
  Alcotest.(check int) "records" 500 s.Tree_stats.records;
  (* Leaf capacity bound shows up as at least N/4 leaves. *)
  let leaf = List.find (fun (l : Tree_stats.level) -> l.height = 0) s.Tree_stats.levels in
  Alcotest.(check bool) "enough leaves" true (leaf.Tree_stats.nodes >= 125);
  Alcotest.(check bool) "fanout <= 5" true (Tree_stats.mean_fanout s <= 5.0)

let test_empty_stats () =
  let store = Store.create () in
  let s = Pos.stats (Pos.empty store (Pos.config ())) in
  Alcotest.(check int) "no nodes" 0 s.Tree_stats.total_nodes;
  Alcotest.(check int) "no records" 0 s.Tree_stats.records;
  Alcotest.(check (float 1e-9)) "no leaves" 0.0 (Tree_stats.mean_leaf_bytes s)

let test_single_leaf () =
  let store = Store.create () in
  let t = Pos.of_entries store (Pos.config ()) [ ("a", "1") ] in
  let s = Pos.stats t in
  Alcotest.(check int) "one node" 1 s.Tree_stats.total_nodes;
  Alcotest.(check int) "height one" 1 s.Tree_stats.height;
  Alcotest.(check (float 1e-9)) "no internal fanout" 0.0 (Tree_stats.mean_fanout s)

let test_shared_nodes_counted_once () =
  (* Values engineered so two leaves are byte-identical... keys are unique,
     so instead check against the deduplicated reachable-set cardinality. *)
  let store = Store.create () in
  let t = Pos.of_entries store (Pos.config ~leaf_target:256 ()) (entries 1000) in
  let s = Pos.stats t in
  Alcotest.(check int) "nodes = |reachable|"
    (Siri_crypto.Hash.Set.cardinal (Store.reachable store (Pos.root t)))
    s.Tree_stats.total_nodes

let () =
  Alcotest.run "stats"
    [ ( "tree_stats",
        [ Alcotest.test_case "pos" `Quick test_pos_stats;
          Alcotest.test_case "mvbt" `Quick test_mvbt_stats;
          Alcotest.test_case "empty" `Quick test_empty_stats;
          Alcotest.test_case "single leaf" `Quick test_single_leaf;
          Alcotest.test_case "dedup counting" `Quick test_shared_nodes_counted_once ] ) ]
