(* Forkbase-like engine: branches, commits, history, checkout, merge; the
   LRU cache; and the remote-deployment simulation. *)

open Siri_core
module Store = Siri_store.Store
module Engine = Siri_forkbase.Engine
module Lru = Siri_forkbase.Lru
module Remote = Siri_forkbase.Remote
module Pos = Siri_pos.Pos_tree
module Hash = Siri_crypto.Hash

let fresh_engine () =
  let store = Store.create () in
  let cfg = Pos.config ~leaf_target:256 () in
  Engine.create ~empty_index:(Pos.generic (Pos.empty store cfg))

(* --- lru ---------------------------------------------------------------------- *)

let h i = Hash.of_string (string_of_int i)

let test_lru_hits_and_misses () =
  let c = Lru.create ~capacity:2 in
  Alcotest.(check bool) "first touch misses" false (Lru.touch c (h 1));
  Alcotest.(check bool) "second touch hits" true (Lru.touch c (h 1));
  ignore (Lru.touch c (h 2));
  (* Recency is now [2; 1]: inserting a third entry evicts 1. *)
  ignore (Lru.touch c (h 3));
  Alcotest.(check bool) "h1 evicted" false (Lru.mem c (h 1));
  Alcotest.(check bool) "h2 kept" true (Lru.mem c (h 2));
  Alcotest.(check bool) "h3 kept" true (Lru.mem c (h 3));
  Alcotest.(check int) "size" 2 (Lru.size c)

let test_lru_eviction_order () =
  let c = Lru.create ~capacity:3 in
  List.iter (fun i -> ignore (Lru.touch c (h i))) [ 1; 2; 3 ];
  ignore (Lru.touch c (h 1));
  (* refresh 1: order now 1,3,2 *)
  ignore (Lru.touch c (h 4));
  (* evicts 2 *)
  Alcotest.(check bool) "2 evicted" false (Lru.mem c (h 2));
  List.iter (fun i -> Alcotest.(check bool) "kept" true (Lru.mem c (h i))) [ 1; 3; 4 ]

let test_lru_clear () =
  let c = Lru.create ~capacity:4 in
  List.iter (fun i -> ignore (Lru.touch c (h i))) [ 1; 2; 3 ];
  Lru.clear c;
  Alcotest.(check int) "empty" 0 (Lru.size c);
  Alcotest.(check bool) "gone" false (Lru.mem c (h 1));
  (* Reusable after clear. *)
  ignore (Lru.touch c (h 9));
  Alcotest.(check bool) "works after clear" true (Lru.mem c (h 9))

let test_lru_churn () =
  let c = Lru.create ~capacity:10 in
  for i = 1 to 1000 do
    ignore (Lru.touch c (h (i mod 25)))
  done;
  Alcotest.(check int) "bounded" 10 (Lru.size c)

(* --- engine -------------------------------------------------------------------- *)

let test_commit_and_get () =
  let e = fresh_engine () in
  let c1 = Engine.commit e ~branch:"master" ~message:"first" [ Kv.Put ("a", "1") ] in
  Alcotest.(check int) "version 1" 1 c1.Engine.version;
  Alcotest.(check (option string)) "get" (Some "1") (Engine.get e ~branch:"master" "a");
  let _ = Engine.put e ~branch:"master" "b" "2" in
  Alcotest.(check (option string)) "get b" (Some "2") (Engine.get e ~branch:"master" "b")

let test_history_and_checkout () =
  let e = fresh_engine () in
  let c1 = Engine.commit e ~branch:"master" ~message:"v1" [ Kv.Put ("k", "v1") ] in
  let _c2 = Engine.commit e ~branch:"master" ~message:"v2" [ Kv.Put ("k", "v2") ] in
  let hist = Engine.history e "master" in
  Alcotest.(check int) "3 commits (incl. initial)" 3 (List.length hist);
  Alcotest.(check string) "head message" "v2" (List.hd hist).Engine.message;
  (* Checkout the old commit: it still answers v1. *)
  let old = Engine.checkout e c1.Engine.id in
  Alcotest.(check (option string)) "old version" (Some "v1") (old.Generic.lookup "k");
  Alcotest.(check (option string)) "head version" (Some "v2")
    (Engine.get e ~branch:"master" "k")

let test_fork_and_isolation () =
  let e = fresh_engine () in
  let _ = Engine.commit e ~branch:"master" ~message:"base" [ Kv.Put ("shared", "s") ] in
  Engine.fork e ~from:"master" "feature";
  let _ = Engine.commit e ~branch:"feature" ~message:"f" [ Kv.Put ("f-only", "1") ] in
  Alcotest.(check (option string)) "feature sees base" (Some "s")
    (Engine.get e ~branch:"feature" "shared");
  Alcotest.(check (option string)) "master blind to feature" None
    (Engine.get e ~branch:"master" "f-only");
  Alcotest.(check (list string)) "branch list" [ "feature"; "master" ] (Engine.branches e)

let test_fork_validation () =
  let e = fresh_engine () in
  Alcotest.check_raises "duplicate branch"
    (Invalid_argument "Engine.fork: branch \"master\" exists") (fun () ->
      Engine.fork e ~from:"master" "master");
  Alcotest.check_raises "unknown source"
    (Invalid_argument "Engine: no branch \"nope\"") (fun () ->
      Engine.fork e ~from:"nope" "x")

let test_diff_and_merge_branches () =
  let e = fresh_engine () in
  let _ = Engine.commit e ~branch:"master" ~message:"base"
      [ Kv.Put ("a", "1"); Kv.Put ("b", "2") ] in
  Engine.fork e ~from:"master" "side";
  let _ = Engine.commit e ~branch:"side" ~message:"side" [ Kv.Put ("c", "3") ] in
  let _ = Engine.commit e ~branch:"master" ~message:"m" [ Kv.Put ("a", "11") ] in
  let d = Engine.diff_branches e "master" "side" in
  Alcotest.(check int) "two differences" 2 (List.length d);
  (match Engine.merge_branches e ~into:"master" ~from:"side" ~policy:Kv.Prefer_left with
  | Error _ -> Alcotest.fail "merge should succeed"
  | Ok c ->
      Alcotest.(check bool) "merge commit message" true
        (String.length c.Engine.message > 0));
  Alcotest.(check (option string)) "kept master a" (Some "11")
    (Engine.get e ~branch:"master" "a");
  Alcotest.(check (option string)) "gained side c" (Some "3")
    (Engine.get e ~branch:"master" "c")

let test_merge_conflict_policy () =
  let e = fresh_engine () in
  let _ = Engine.commit e ~branch:"master" ~message:"b" [ Kv.Put ("k", "base") ] in
  Engine.fork e ~from:"master" "other";
  let _ = Engine.commit e ~branch:"other" ~message:"o" [ Kv.Put ("k", "theirs") ] in
  let _ = Engine.commit e ~branch:"master" ~message:"m" [ Kv.Put ("k", "ours") ] in
  (match Engine.merge_branches e ~into:"master" ~from:"other" ~policy:Kv.Fail_on_conflict with
  | Ok _ -> Alcotest.fail "expected conflict"
  | Error [ c ] -> Alcotest.(check string) "key" "k" c.Kv.key
  | Error _ -> Alcotest.fail "one conflict expected");
  match Engine.merge_branches e ~into:"master" ~from:"other" ~policy:Kv.Prefer_right with
  | Error _ -> Alcotest.fail "policy resolves"
  | Ok _ ->
      Alcotest.(check (option string)) "theirs wins" (Some "theirs")
        (Engine.get e ~branch:"master" "k")

let test_dedup_across_branches () =
  let e = fresh_engine () in
  let entries = List.init 500 (fun i -> Kv.Put (Printf.sprintf "k%05d" i, "v")) in
  let _ = Engine.commit e ~branch:"master" ~message:"bulk" entries in
  Engine.fork e ~from:"master" "twin";
  let _ = Engine.commit e ~branch:"twin" ~message:"tiny" [ Kv.Put ("k00000", "x") ] in
  let eta = Engine.dedup_ratio e in
  Alcotest.(check bool) (Printf.sprintf "eta %.2f high" eta) true (eta > 0.4)

let test_gc_preserves_history () =
  let e = fresh_engine () in
  let store = Engine.store e in
  let _ = Engine.commit e ~branch:"master" ~message:"v1" [ Kv.Put ("a", "1") ] in
  let c2 = Engine.commit e ~branch:"master" ~message:"v2" [ Kv.Put ("b", "2") ] in
  ignore (Store.put store "unreachable garbage");
  let reclaimed = Store.gc store ~roots:[ c2.Engine.id ] in
  Alcotest.(check bool) "collected something" true (reclaimed >= 1);
  (* Full history still reachable through commit parents. *)
  let hist = Engine.history e "master" in
  Alcotest.(check int) "history intact" 3 (List.length hist);
  Alcotest.(check (option string)) "data intact" (Some "1")
    (Engine.get e ~branch:"master" "a")

(* --- remote simulation ------------------------------------------------------------ *)

let test_remote_accounting () =
  let store = Store.create () in
  let cfg = Pos.config ~leaf_target:256 () in
  let t = Pos.of_entries store cfg
      (List.init 300 (fun i -> (Printf.sprintf "k%05d" i, String.make 50 'v'))) in
  let remote = Remote.attach store ~cache_nodes:10_000 Remote.gigabit_lan in
  (* First read: misses, pays network. *)
  ignore (Pos.lookup t "k00042");
  let misses1 = Remote.misses remote in
  let sim1 = Remote.simulated_seconds remote in
  Alcotest.(check bool) "paid misses" true (misses1 > 0 && sim1 > 0.0);
  (* Same read again: all nodes cached. *)
  ignore (Pos.lookup t "k00042");
  Alcotest.(check int) "no new misses" misses1 (Remote.misses remote);
  Alcotest.(check bool) "hits recorded" true (Remote.hits remote > 0);
  Remote.detach store remote

let test_remote_no_cache () =
  let store = Store.create () in
  let cfg = Pos.config ~leaf_target:256 () in
  let t = Pos.of_entries store cfg
      (List.init 300 (fun i -> (Printf.sprintf "k%05d" i, String.make 50 'v'))) in
  let remote = Remote.attach store Remote.http_overhead in
  ignore (Pos.lookup t "k00042");
  let m1 = Remote.misses remote in
  ignore (Pos.lookup t "k00042");
  Alcotest.(check int) "every read misses" (2 * m1) (Remote.misses remote);
  Alcotest.(check int) "no hits" 0 (Remote.hits remote);
  Remote.detach store remote

let test_remote_reset () =
  let store = Store.create () in
  let remote = Remote.attach store ~cache_nodes:10 Remote.gigabit_lan in
  let hsh = Store.put store "x" in
  ignore (Store.get store hsh);
  Remote.reset remote;
  Alcotest.(check int) "misses reset" 0 (Remote.misses remote);
  Alcotest.(check (float 1e-12)) "time reset" 0.0 (Remote.simulated_seconds remote);
  Remote.detach store remote

let () =
  Alcotest.run "forkbase"
    [ ( "lru",
        [ Alcotest.test_case "hits/misses" `Quick test_lru_hits_and_misses;
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "clear" `Quick test_lru_clear;
          Alcotest.test_case "churn stays bounded" `Quick test_lru_churn ] );
      ( "engine",
        [ Alcotest.test_case "commit/get" `Quick test_commit_and_get;
          Alcotest.test_case "history & checkout" `Quick test_history_and_checkout;
          Alcotest.test_case "fork isolation" `Quick test_fork_and_isolation;
          Alcotest.test_case "fork validation" `Quick test_fork_validation;
          Alcotest.test_case "diff & merge branches" `Quick test_diff_and_merge_branches;
          Alcotest.test_case "merge conflict policy" `Quick test_merge_conflict_policy;
          Alcotest.test_case "dedup across branches" `Quick test_dedup_across_branches;
          Alcotest.test_case "gc preserves history" `Quick test_gc_preserves_history ] );
      ( "remote",
        [ Alcotest.test_case "cache accounting" `Quick test_remote_accounting;
          Alcotest.test_case "no-cache mode" `Quick test_remote_no_cache;
          Alcotest.test_case "reset" `Quick test_remote_reset ] ) ]
