(* POS-Tree: conformance battery, SIRI properties, chunking behaviour, node
   reuse on incremental updates, and the Section 5.5 ablations. *)

open Siri_core
module Store = Siri_store.Store
module Pos = Siri_pos.Pos_tree
module Hash = Siri_crypto.Hash

let cfg = Pos.config ~leaf_target:256 ~internal_bits:3 ()
let mk () = Pos.generic (Pos.empty (Store.create ()) cfg)

(* --- SIRI properties ----------------------------------------------------------- *)

let shared_store_build () =
  let store = Store.create () in
  fun entries -> Pos.generic (Pos.of_entries store cfg entries)

let some_entries =
  List.init 200 (fun i -> (Printf.sprintf "entry-%05d" (i * 7), string_of_int i))

let test_structurally_invariant () =
  Alcotest.(check bool) "Definition 3.1(1)" true
    (Properties.structurally_invariant ~build:(shared_store_build ())
       ~entries:some_entries ~permutations:5 ~seed:3)

let test_recursively_identical () =
  Alcotest.(check bool) "Definition 3.1(2)" true
    (Properties.recursively_identical ~build:(shared_store_build ())
       ~entries:some_entries ~extra:("entry-99999", "x"))

let test_universally_reusable () =
  Alcotest.(check bool) "Definition 3.1(3)" true
    (Properties.universally_reusable ~build:(shared_store_build ())
       ~entries:some_entries
       ~more:(List.init 50 (fun i -> (Printf.sprintf "zz-%03d" i, Printf.sprintf "zv-%d" i))))

(* --- chunking & shape ------------------------------------------------------------ *)

let big_entries n =
  (* Variable-length values: with fixed-size records a byte-greedy forced
     split degenerates to an entry-count rule and would mask the non-SI
     ablation's order dependence. *)
  let rng = Rng.create 31 in
  List.init n (fun i ->
      (Printf.sprintf "key%06d" i, Rng.string_alnum rng (Rng.int_in rng 16 64)))

let test_leaf_size_distribution () =
  let store = Store.create () in
  let t = Pos.of_entries store cfg (big_entries 4000) in
  let sizes = Pos.leaf_sizes t in
  let mean =
    Float.of_int (List.fold_left ( + ) 0 sizes) /. Float.of_int (List.length sizes)
  in
  Alcotest.(check bool)
    (Printf.sprintf "mean leaf %.0f ~ 256" mean)
    true
    (mean > 85.0 && mean < 1024.0)

let test_bigger_pattern_bigger_nodes () =
  let store = Store.create () in
  let entries = big_entries 3000 in
  let mean target =
    let t = Pos.of_entries store (Pos.config ~leaf_target:target ()) entries in
    let sizes = Pos.leaf_sizes t in
    Float.of_int (List.fold_left ( + ) 0 sizes) /. Float.of_int (List.length sizes)
  in
  Alcotest.(check bool) "512 < 2048 targets" true (mean 512 < mean 2048)

let test_height_grows_logarithmically () =
  let store = Store.create () in
  let h n = Pos.height (Pos.of_entries store cfg (big_entries n)) in
  Alcotest.(check bool) "height grows" true (h 4000 > h 40);
  Alcotest.(check bool) "but slowly" true (h 4000 <= h 40 + 6)

let test_batch_one_pass_reuse () =
  (* A single-record update on a 4000-record tree must create only a handful
     of nodes — the streaming rebuilder skips clean subtrees. *)
  let store = Store.create () in
  let t = Pos.of_entries store cfg (big_entries 4000) in
  let before = (Store.stats store).Store.puts in
  Store.reset_counters store;
  ignore before;
  let _t2 = Pos.insert t "key002000" "NEW" in
  let created = (Store.stats store).Store.puts in
  Alcotest.(check bool)
    (Printf.sprintf "only %d puts for point update" created)
    true (created <= 40)

let test_incremental_equals_bulk () =
  (* Applying updates incrementally equals rebuilding from the final record
     set — the strongest form of structural invariance. *)
  let store = Store.create () in
  let base = big_entries 1000 in
  let t = Pos.of_entries store cfg base in
  let ops =
    [ Kv.Put ("key000500", "updated");
      Kv.Del "key000001";
      Kv.Put ("newkey-aaa", "fresh");
      Kv.Del "key000999" ]
  in
  let incr = Pos.batch t ops in
  let bulk = Pos.of_entries store cfg (Kv.apply_sorted base (Kv.sort_ops ops)) in
  Alcotest.(check bool) "same root" true (Hash.equal (Pos.root incr) (Pos.root bulk))

let qcheck_incremental_invariance =
  QCheck.Test.make ~name:"incremental = bulk on random batches" ~count:30
    QCheck.(
      pair (int_bound 1000)
        (list_of_size Gen.(1 -- 30)
           (pair (int_bound 1200) (option (string_of_size Gen.(0 -- 20))))))
    (fun (seed, raw_ops) ->
      let store = Store.create () in
      let base = big_entries 600 in
      let t = Pos.of_entries store cfg base in
      ignore seed;
      let ops =
        List.map
          (fun (i, v) ->
            let k = Printf.sprintf "key%06d" i in
            match v with Some v -> Kv.Put (k, v) | None -> Kv.Del k)
          raw_ops
      in
      let incr = Pos.batch t ops in
      let bulk = Pos.of_entries store cfg (Kv.apply_sorted base (Kv.sort_ops ops)) in
      Hash.equal (Pos.root incr) (Pos.root bulk))

(* --- ablations (Section 5.5) -------------------------------------------------------- *)

let test_non_si_is_order_dependent () =
  let store = Store.create () in
  let nsi = Pos.config_non_structurally_invariant ~leaf_target:256 () in
  let entries = big_entries 400 in
  let bulk = Pos.of_entries store nsi entries in
  (* Shuffled one-by-one inserts: middle-of-stream edits shift the forced
     split points, whose positions depend on history. *)
  let rng = Rng.create 41 in
  let one_by_one =
    List.fold_left
      (fun t (k, v) -> Pos.insert t k v)
      (Pos.empty store nsi)
      (Rng.shuffle rng entries)
  in
  Alcotest.(check (list (pair string string)))
    "same records" (Pos.to_list bulk) (Pos.to_list one_by_one);
  Alcotest.(check bool) "different shapes" false
    (Hash.equal (Pos.root bulk) (Pos.root one_by_one))

let test_non_si_lowers_sharing () =
  (* Two parties building the same final dataset through different histories
     share fewer nodes without SI than with it. *)
  let sharing config =
    let store = Store.create () in
    let entries = big_entries 800 in
    let a = Pos.of_entries store config entries in
    let rng = Rng.create 42 in
    let b =
      List.fold_left
        (fun t (k, v) -> Pos.insert t k v)
        (Pos.empty store config)
        (Rng.shuffle rng entries)
    in
    Dedup.node_sharing_ratio store [ Pos.root a; Pos.root b ]
  in
  let si = sharing cfg in
  let nsi = sharing (Pos.config_non_structurally_invariant ~leaf_target:256 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "sharing %.2f (SI) > %.2f (non-SI)" si nsi)
    true (si > nsi)

let test_non_ri_zero_sharing () =
  let store = Store.create () in
  let nri = Pos.config_non_recursively_identical ~leaf_target:256 () in
  let t1 = Pos.of_entries store nri (big_entries 300) in
  let t2 = Pos.insert t1 "key000100" "poke" in
  let p1 = Store.reachable store (Pos.root t1) in
  let p2 = Store.reachable store (Pos.root t2) in
  Alcotest.(check int) "zero shared pages" 0
    (Hash.Set.cardinal (Hash.Set.inter p1 p2));
  Alcotest.(check (float 1e-9)) "dedup ratio zero" 0.0
    (Dedup.dedup_ratio store [ Pos.root t1; Pos.root t2 ]);
  (* Data is still correct, only sharing is destroyed. *)
  Alcotest.(check (option string)) "lookup ok" (Some "poke") (Pos.lookup t2 "key000100")

let test_ri_enabled_high_sharing () =
  let store = Store.create () in
  let t1 = Pos.of_entries store cfg (big_entries 300) in
  let t2 = Pos.insert t1 "key000100" "poke" in
  Alcotest.(check bool) "most pages shared" true
    (Dedup.dedup_ratio store [ Pos.root t1; Pos.root t2 ] > 0.3)

(* --- prolly-mode internals ------------------------------------------------------------ *)

let test_rolling_internal_rule () =
  (* By_rolling must also be structurally invariant. *)
  let store = Store.create () in
  let pc = Pos.config_prolly ~leaf_target:256 ~internal_target:256 () in
  let entries = big_entries 500 in
  let a = Pos.of_entries store pc entries in
  let rng = Rng.create 9 in
  let b =
    List.fold_left
      (fun t (k, v) -> Pos.insert t k v)
      (Pos.empty store pc)
      (Rng.shuffle rng entries)
  in
  Alcotest.(check bool) "prolly SI" true (Hash.equal (Pos.root a) (Pos.root b))

let () =
  Alcotest.run "pos"
    [ ("conformance", Index_suite.cases "pos" mk);
      ( "siri-properties",
        [ Alcotest.test_case "structurally invariant" `Quick test_structurally_invariant;
          Alcotest.test_case "recursively identical" `Quick test_recursively_identical;
          Alcotest.test_case "universally reusable" `Quick test_universally_reusable ] );
      ( "chunking",
        [ Alcotest.test_case "leaf size distribution" `Quick test_leaf_size_distribution;
          Alcotest.test_case "pattern controls node size" `Quick test_bigger_pattern_bigger_nodes;
          Alcotest.test_case "height logarithmic" `Quick test_height_grows_logarithmically;
          Alcotest.test_case "point update reuse" `Quick test_batch_one_pass_reuse;
          Alcotest.test_case "incremental = bulk" `Quick test_incremental_equals_bulk;
          QCheck_alcotest.to_alcotest qcheck_incremental_invariance ] );
      ( "ablations",
        [ Alcotest.test_case "non-SI order dependent" `Quick test_non_si_is_order_dependent;
          Alcotest.test_case "non-SI lowers sharing" `Quick test_non_si_lowers_sharing;
          Alcotest.test_case "non-RI zero sharing" `Quick test_non_ri_zero_sharing;
          Alcotest.test_case "RI high sharing" `Quick test_ri_enabled_high_sharing ] );
      ( "prolly-mode",
        [ Alcotest.test_case "rolling internal rule SI" `Quick test_rolling_internal_rule ] ) ]
