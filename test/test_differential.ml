(* Differential testing: the five structures are interchangeable SIRI
   instances, so any operation stream must leave them in record-identical
   states, with identical diffs, merges and range answers — only the node
   layouts (and hence roots) may differ across kinds. *)

open Siri_core
module Store = Siri_store.Store
module Mpt = Siri_mpt.Mpt
module Mbt = Siri_mbt.Mbt
module Pos = Siri_pos.Pos_tree
module Mvbt = Siri_mvbt.Mvbt
module Prolly = Siri_prolly.Prolly

let makers () =
  [ Mpt.generic (Mpt.empty (Store.create ()));
    Mbt.generic (Mbt.empty (Store.create ()) (Mbt.config ~capacity:32 ~fanout:4 ()));
    Pos.generic (Pos.empty (Store.create ()) (Pos.config ~leaf_target:256 ()));
    Mvbt.generic
      (Mvbt.empty (Store.create ()) (Mvbt.config ~leaf_capacity:4 ~internal_capacity:5 ()));
    Prolly.generic (Prolly.empty (Store.create ())) ]

let op_gen =
  QCheck.Gen.(
    list_size (0 -- 80)
      (map2
         (fun del (k, v) -> if del then Kv.Del k else Kv.Put (k, v))
         (frequency [ (1, return true); (3, return false) ])
         (pair
            (string_size ~gen:(char_range 'a' 'e') (1 -- 4))
            (string_size (0 -- 10)))))

let qcheck_same_records =
  QCheck.Test.make ~name:"all kinds agree after a random op stream" ~count:60
    (QCheck.make op_gen)
    (fun ops ->
      let finals = List.map (fun inst -> inst.Generic.batch ops) (makers ()) in
      match finals with
      | [] -> true
      | first :: rest ->
          let reference = first.Generic.to_list () in
          List.for_all (fun t -> t.Generic.to_list () = reference) rest)

let qcheck_same_diffs =
  QCheck.Test.make ~name:"all kinds report the same diff" ~count:40
    (QCheck.make QCheck.Gen.(pair op_gen op_gen))
    (fun (ops1, ops2) ->
      let results =
        List.map
          (fun inst ->
            let v1 = inst.Generic.batch ops1 in
            let v2 = v1.Generic.batch ops2 in
            List.sort
              (fun (a : Kv.diff_entry) (b : Kv.diff_entry) ->
                String.compare a.key b.key)
              (v1.Generic.diff v2.Generic.root))
          (makers ())
      in
      match results with
      | [] -> true
      | first :: rest -> List.for_all (fun d -> d = first) rest)

let qcheck_same_ranges =
  QCheck.Test.make ~name:"all kinds answer ranges identically" ~count:40
    (QCheck.make
       QCheck.Gen.(
         triple op_gen
           (option (string_size ~gen:(char_range 'a' 'e') (1 -- 3)))
           (option (string_size ~gen:(char_range 'a' 'e') (1 -- 3)))))
    (fun (ops, lo, hi) ->
      let answers =
        List.map
          (fun inst -> (inst.Generic.batch ops).Generic.range ~lo ~hi)
          (makers ())
      in
      match answers with
      | [] -> true
      | first :: rest -> List.for_all (fun r -> r = first) rest)

let qcheck_same_merge =
  QCheck.Test.make ~name:"all kinds merge to the same records" ~count:30
    (QCheck.make QCheck.Gen.(triple op_gen op_gen op_gen))
    (fun (base_ops, left_ops, right_ops) ->
      let outcomes =
        List.map
          (fun inst ->
            let base = inst.Generic.batch base_ops in
            let l = base.Generic.batch left_ops in
            let r = base.Generic.batch right_ops in
            match l.Generic.merge Kv.Prefer_right r.Generic.root with
            | Ok m -> m.Generic.to_list ()
            | Error _ -> [ ("<conflict>", "") ])
          (makers ())
      in
      match outcomes with
      | [] -> true
      | first :: rest -> List.for_all (fun o -> o = first) rest)

let qcheck_proofs_everywhere =
  QCheck.Test.make ~name:"proofs verify for every kind" ~count:30
    (QCheck.make QCheck.Gen.(pair op_gen (string_size ~gen:(char_range 'a' 'e') (1 -- 4))))
    (fun (ops, probe) ->
      List.for_all
        (fun inst ->
          let t = inst.Generic.batch ops in
          let p = t.Generic.prove probe in
          p.Proof.value = t.Generic.lookup probe
          && t.Generic.verify ~root:t.Generic.root p)
        (makers ()))

(* Adversarial robustness: verifiers must reject (never crash on) proofs
   containing arbitrary garbage bytes. *)
let garbage_proof_gen =
  QCheck.Gen.(
    map2
      (fun nodes value -> { Proof.key = "some-key"; value; nodes })
      (list_size (0 -- 4) (string_size (0 -- 120)))
      (option (string_size (0 -- 10))))

let qcheck_garbage_proofs_rejected =
  QCheck.Test.make ~name:"garbage proofs rejected without crashing" ~count:200
    (QCheck.make garbage_proof_gen)
    (fun proof ->
      List.for_all
        (fun inst ->
          let t =
            inst.Generic.batch [ Kv.Put ("some-key", "v"); Kv.Put ("other", "w") ]
          in
          (* Any verifier outcome is fine except [true] (garbage must not
             verify) or an exception. *)
          not (t.Generic.verify ~root:t.Generic.root proof))
        (makers ()))

let qcheck_garbage_range_proofs_rejected =
  QCheck.Test.make ~name:"garbage range proofs rejected" ~count:200
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (0 -- 4) (string_size (0 -- 120)))
           (list_size (0 -- 3) (pair (string_size (1 -- 5)) (string_size (0 -- 5))))))
    (fun (nodes, entries) ->
      let store = Store.create () in
      let t =
        Pos.of_entries store
          (Pos.config ~leaf_target:256 ())
          [ ("a", "1"); ("b", "2"); ("c", "3") ]
      in
      let proof = { Range_proof.lo = None; hi = None; entries; nodes } in
      (* The only accepted "garbage" is the genuinely correct proof. *)
      let genuine = Pos.prove_range t ~lo:None ~hi:None in
      proof = genuine || not (Pos.verify_range_proof ~root:(Pos.root t) proof))

let () =
  Alcotest.run "differential"
    [ ( "cross-structure",
        [ QCheck_alcotest.to_alcotest qcheck_same_records;
          QCheck_alcotest.to_alcotest qcheck_same_diffs;
          QCheck_alcotest.to_alcotest qcheck_same_ranges;
          QCheck_alcotest.to_alcotest qcheck_same_merge;
          QCheck_alcotest.to_alcotest qcheck_proofs_everywhere ] );
      ( "adversarial",
        [ QCheck_alcotest.to_alcotest qcheck_garbage_proofs_rejected;
          QCheck_alcotest.to_alcotest qcheck_garbage_range_proofs_rejected ] ) ]
