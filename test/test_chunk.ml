(* Rolling hash and content-defined chunking: determinism, the rolling
   property, boundary statistics, and the resynchronisation property that
   underpins POS-Tree's structural invariance. *)

module Buzhash = Siri_chunk.Buzhash
module Chunker = Siri_chunk.Chunker
module Rng = Siri_core.Rng

let random_string rng n = Rng.string_alnum rng n

let test_rolling_property () =
  (* After feeding >= window bytes, the state must equal the hash of the
     last [window] bytes alone. *)
  let rng = Rng.create 1 in
  let window = 16 in
  let data = random_string rng 500 in
  let t = Buzhash.create ~window in
  String.iteri
    (fun i c ->
      let h = Buzhash.roll t c in
      if i + 1 >= window then begin
        let tail = String.sub data (i + 1 - window) window in
        Alcotest.(check int)
          (Printf.sprintf "window content at %d" i)
          (Buzhash.hash_string ~window tail)
          h
      end)
    data

let test_determinism () =
  let rng = Rng.create 2 in
  let data = random_string rng 1000 in
  Alcotest.(check int) "same input same hash"
    (Buzhash.hash_string ~window:67 data)
    (Buzhash.hash_string ~window:67 data)

let test_reset () =
  let t = Buzhash.create ~window:8 in
  ignore (Buzhash.roll t 'a');
  ignore (Buzhash.roll t 'b');
  Buzhash.reset t;
  Alcotest.(check int) "fed resets" 0 (Buzhash.fed t);
  Alcotest.(check int) "value resets" 0 (Buzhash.value t)

let test_window_validation () =
  Alcotest.check_raises "zero window"
    (Invalid_argument "Buzhash.create: window must be positive") (fun () ->
      ignore (Buzhash.create ~window:0))

let test_chunk_sizes () =
  (* Expected chunk size ~2^bits; check the empirical mean is within 3x. *)
  let rng = Rng.create 3 in
  let items = List.init 4000 (fun _ -> random_string rng 32) in
  let cfg = Chunker.config ~pattern_bits:8 () in
  let chunks = Chunker.split cfg items in
  let total_bytes = 4000 * 32 in
  let mean = Float.of_int total_bytes /. Float.of_int (List.length chunks) in
  Alcotest.(check bool)
    (Printf.sprintf "mean chunk %.0f ~ 256" mean)
    true
    (mean > 85.0 && mean < 768.0);
  (* Chunks concatenate back to the input. *)
  Alcotest.(check int) "no items lost" (List.length items)
    (List.fold_left (fun acc c -> acc + List.length c) 0 chunks);
  Alcotest.(check bool) "order preserved" true (List.concat chunks = items)

let test_max_size_cut () =
  (* Pattern so rare that (on random data) only max_size cuts fire. *)
  let cfg = Chunker.config ~pattern_bits:30 ~max_size:100 () in
  let rng = Rng.create 99 in
  let items = List.init 100 (fun _ -> random_string rng 10) in
  let chunks = Chunker.split cfg items in
  List.iter
    (fun c ->
      let bytes = List.fold_left (fun a s -> a + String.length s) 0 c in
      Alcotest.(check bool) "chunk <= max" true (bytes <= 100))
    chunks;
  Alcotest.(check int) "exactly 10-item chunks" 10 (List.length chunks)

let test_min_size () =
  let cfg = Chunker.config ~pattern_bits:2 ~min_size:64 ~max_size:10_000 () in
  let rng = Rng.create 4 in
  let items = List.init 1000 (fun _ -> random_string rng 8) in
  let chunks = Chunker.split cfg items in
  (* All chunks except possibly the last respect the minimum. *)
  let rec check = function
    | [] | [ _ ] -> ()
    | c :: rest ->
        let bytes = List.fold_left (fun a s -> a + String.length s) 0 c in
        Alcotest.(check bool) "chunk >= min" true (bytes >= 64);
        check rest
  in
  check chunks

let test_resynchronisation () =
  (* Editing one item must leave all chunks after resync identical: the
     chunk lists share a common tail. *)
  let rng = Rng.create 5 in
  let items = Array.init 2000 (fun _ -> random_string rng 32) in
  let cfg = Chunker.config ~pattern_bits:8 () in
  let chunks1 = Chunker.split cfg (Array.to_list items) in
  items.(1000) <- "EDITED-" ^ random_string rng 25;
  let chunks2 = Chunker.split cfg (Array.to_list items) in
  let tail_common l1 l2 =
    let a1 = Array.of_list l1 and a2 = Array.of_list l2 in
    let rec count i =
      let i1 = Array.length a1 - 1 - i and i2 = Array.length a2 - 1 - i in
      if i1 >= 0 && i2 >= 0 && a1.(i1) = a2.(i2) then count (i + 1) else i
    in
    count 0
  in
  (* Boundaries are item-local, so chunking realigns at the next
     boundary-carrying item: at most a couple of chunks around the edit may
     differ, wherever in the stream the edit falls. *)
  let prefix_common l1 l2 =
    let rec go l1 l2 n =
      match (l1, l2) with
      | x :: r1, y :: r2 when x = y -> go r1 r2 (n + 1)
      | _ -> n
    in
    go l1 l2 0
  in
  let shared_tail = tail_common chunks1 chunks2 in
  let shared_prefix = prefix_common chunks1 chunks2 in
  let total = min (List.length chunks1) (List.length chunks2) in
  Alcotest.(check bool)
    (Printf.sprintf "prefix %d + tail %d of %d chunks" shared_prefix shared_tail
       total)
    true
    (shared_prefix + shared_tail >= total - 2)

let test_hash_boundary_rate () =
  (* The child-hash rule should fire at ~1/2^bits. *)
  let cfg = Chunker.config ~pattern_bits:4 () in
  let hits = ref 0 in
  let total = 4096 in
  for i = 0 to total - 1 do
    if Chunker.hash_boundary cfg (Siri_crypto.Hash.of_string (string_of_int i))
    then incr hits
  done;
  let rate = Float.of_int !hits /. Float.of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.4f ~ 1/16" rate)
    true
    (rate > 0.03 && rate < 0.10)

let test_config_validation () =
  Alcotest.check_raises "bits range"
    (Invalid_argument "Chunker.config: pattern_bits out of range") (fun () ->
      ignore (Chunker.config ~pattern_bits:0 ()));
  Alcotest.check_raises "min >= max"
    (Invalid_argument "Chunker.config: bad min/max sizes") (fun () ->
      ignore (Chunker.config ~pattern_bits:4 ~min_size:100 ~max_size:50 ()))

let qcheck_split_preserves =
  QCheck.Test.make ~name:"split preserves item sequence" ~count:100
    QCheck.(list_of_size Gen.(0 -- 200) (string_of_size Gen.(1 -- 50)))
    (fun items ->
      let cfg = Chunker.config ~pattern_bits:6 () in
      List.concat (Chunker.split cfg items) = items)

let qcheck_split_deterministic =
  QCheck.Test.make ~name:"split deterministic" ~count:100
    QCheck.(list_of_size Gen.(0 -- 100) (string_of_size Gen.(1 -- 30)))
    (fun items ->
      let cfg = Chunker.config ~pattern_bits:5 () in
      Chunker.split cfg items = Chunker.split cfg items)

let () =
  Alcotest.run "chunk"
    [ ( "buzhash",
        [ Alcotest.test_case "rolling property" `Quick test_rolling_property;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "window validation" `Quick test_window_validation ] );
      ( "chunker",
        [ Alcotest.test_case "chunk size distribution" `Quick test_chunk_sizes;
          Alcotest.test_case "max-size force cut" `Quick test_max_size_cut;
          Alcotest.test_case "min-size respected" `Quick test_min_size;
          Alcotest.test_case "resynchronisation" `Quick test_resynchronisation;
          Alcotest.test_case "hash boundary rate" `Quick test_hash_boundary_rate;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          QCheck_alcotest.to_alcotest qcheck_split_preserves;
          QCheck_alcotest.to_alcotest qcheck_split_deterministic ] ) ]
