(* Merkle Bucket Tree: conformance battery plus the fixed-shape behaviour,
   the load/scan lookup phases, bucket distribution and config coupling. *)

open Siri_core
module Store = Siri_store.Store
module Mbt = Siri_mbt.Mbt
module Hash = Siri_crypto.Hash

let cfg = Mbt.config ~capacity:32 ~fanout:4 ()
let mk () = Mbt.generic (Mbt.empty (Store.create ()) cfg)

(* --- SIRI properties ---------------------------------------------------------- *)

let shared_store_build () =
  let store = Store.create () in
  fun entries -> Mbt.generic (Mbt.of_entries store cfg entries)

let some_entries =
  List.init 80 (fun i -> (Printf.sprintf "rec-%04d" (i * 13), string_of_int i))

let test_structurally_invariant () =
  Alcotest.(check bool) "Definition 3.1(1)" true
    (Properties.structurally_invariant ~build:(shared_store_build ())
       ~entries:some_entries ~permutations:5 ~seed:2)

let test_recursively_identical () =
  Alcotest.(check bool) "Definition 3.1(2)" true
    (Properties.recursively_identical ~build:(shared_store_build ())
       ~entries:some_entries ~extra:("rec-9999", "x"))

let test_universally_reusable () =
  Alcotest.(check bool) "Definition 3.1(3)" true
    (Properties.universally_reusable ~build:(shared_store_build ())
       ~entries:some_entries
       ~more:(List.init 50 (fun i -> (Printf.sprintf "zz-%03d" i, Printf.sprintf "zv-%d" i))))

(* --- structure-specific --------------------------------------------------------- *)

let test_fixed_shape () =
  (* The tree shape never changes: path length is constant regardless of N. *)
  let store = Store.create () in
  let small = Mbt.of_entries store cfg [ ("a", "1") ] in
  let big =
    Mbt.of_entries store cfg
      (List.init 2000 (fun i -> (Printf.sprintf "k%05d" i, "v")))
  in
  Alcotest.(check int) "same depth" (Mbt.path_length small "a") (Mbt.path_length big "a");
  (* Number of nodes is bounded by the fixed structure, not by N. *)
  let nodes t = Hash.Set.cardinal (Store.reachable store (Mbt.root t)) in
  Alcotest.(check bool) "node count bounded" true (nodes big <= nodes small + 45)

let test_empty_buckets_shared () =
  (* All-empty buckets are byte-identical: an empty MBT stores one bucket
     node plus one internal node per level batch of distinct shapes. *)
  let store = Store.create () in
  let t = Mbt.empty store cfg in
  let n = Hash.Set.cardinal (Store.reachable store (Mbt.root t)) in
  (* 1 shared empty bucket + internal nodes (identical ones shared too). *)
  Alcotest.(check bool) (Printf.sprintf "only %d distinct nodes" n) true (n <= 6)

let test_bucket_distribution () =
  let entries = List.init 3200 (fun i -> Printf.sprintf "key-%06d" i) in
  let counts = Array.make cfg.Mbt.capacity 0 in
  List.iter
    (fun k ->
      let b = Mbt.bucket_index cfg k in
      counts.(b) <- counts.(b) + 1)
    entries;
  let expected = 3200 / cfg.Mbt.capacity in
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d count %d vs %d" i c expected)
        true
        (c > expected / 3 && c < expected * 3))
    counts

let test_load_scan_phases () =
  let store = Store.create () in
  let entries = List.init 640 (fun i -> (Printf.sprintf "k%05d" i, string_of_int i)) in
  let t = Mbt.of_entries store cfg entries in
  List.iteri
    (fun i (k, v) ->
      if i mod 53 = 0 then begin
        let bucket = Mbt.load_bucket t k in
        Alcotest.(check bool) "bucket grows with N/B" true (Mbt.bucket_size bucket > 0);
        Alcotest.(check (option string)) "scan finds" (Some v) (Mbt.scan_bucket bucket k)
      end)
    entries;
  (* Scanning a wrong bucket misses. *)
  let b0 = Mbt.load_bucket t "k00000" in
  Alcotest.(check (option string)) "scan absent" None (Mbt.scan_bucket b0 "not-there")

let test_bucket_size_tracks_n_over_b () =
  let store = Store.create () in
  let t1 = Mbt.of_entries store cfg (List.init 320 (fun i -> (Printf.sprintf "a%04d" i, "v"))) in
  let t2 = Mbt.of_entries store cfg (List.init 3200 (fun i -> (Printf.sprintf "a%04d" i, "v"))) in
  let avg t n =
    Float.of_int n /. Float.of_int cfg.Mbt.capacity
    |> fun e ->
    let b = Mbt.load_bucket t "a0000" in
    (Float.of_int (Mbt.bucket_size b), e)
  in
  let s1, e1 = avg t1 320 and s2, e2 = avg t2 3200 in
  Alcotest.(check bool)
    (Printf.sprintf "buckets scale: %.0f/%.0f then %.0f/%.0f" s1 e1 s2 e2)
    true
    (s2 > s1)

let test_config_mismatch_rejected () =
  let store = Store.create () in
  let a = Mbt.of_entries store cfg [ ("a", "1") ] in
  let other = Mbt.of_entries store (Mbt.config ~capacity:8 ~fanout:2 ()) [ ("a", "1") ] in
  Alcotest.check_raises "diff rejects config mismatch"
    (Invalid_argument "Mbt.diff: instances have different configurations")
    (fun () -> ignore (Mbt.diff a other))

let test_different_capacity_different_root () =
  let store = Store.create () in
  let e = [ ("a", "1"); ("b", "2") ] in
  let t1 = Mbt.of_entries store (Mbt.config ~capacity:8 ~fanout:2 ()) e in
  let t2 = Mbt.of_entries store (Mbt.config ~capacity:16 ~fanout:2 ()) e in
  Alcotest.(check bool) "roots differ" false (Hash.equal (Mbt.root t1) (Mbt.root t2))

let test_config_validation () =
  Alcotest.check_raises "capacity >= 1"
    (Invalid_argument "Mbt.config: capacity must be >= 1") (fun () ->
      ignore (Mbt.config ~capacity:0 ()));
  Alcotest.check_raises "fanout >= 2"
    (Invalid_argument "Mbt.config: fanout must be >= 2") (fun () ->
      ignore (Mbt.config ~fanout:1 ()))

let test_capacity_one () =
  (* Degenerate single-bucket tree: the bucket is the root. *)
  let store = Store.create () in
  let c1 = Mbt.config ~capacity:1 ~fanout:2 () in
  let t = Mbt.of_entries store c1 [ ("a", "1"); ("b", "2") ] in
  Alcotest.(check int) "path length 1" 1 (Mbt.path_length t "a");
  Alcotest.(check (option string)) "lookup" (Some "2") (Mbt.lookup t "b")

let () =
  Alcotest.run "mbt"
    [ ("conformance", Index_suite.cases "mbt" mk);
      ( "siri-properties",
        [ Alcotest.test_case "structurally invariant" `Quick test_structurally_invariant;
          Alcotest.test_case "recursively identical" `Quick test_recursively_identical;
          Alcotest.test_case "universally reusable" `Quick test_universally_reusable ] );
      ( "structure",
        [ Alcotest.test_case "fixed shape" `Quick test_fixed_shape;
          Alcotest.test_case "empty buckets shared" `Quick test_empty_buckets_shared;
          Alcotest.test_case "bucket distribution" `Quick test_bucket_distribution;
          Alcotest.test_case "load/scan phases" `Quick test_load_scan_phases;
          Alcotest.test_case "bucket size ~ N/B" `Quick test_bucket_size_tracks_n_over_b;
          Alcotest.test_case "config mismatch" `Quick test_config_mismatch_rejected;
          Alcotest.test_case "capacity changes root" `Quick test_different_capacity_different_root;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "capacity 1" `Quick test_capacity_one ] ) ]
