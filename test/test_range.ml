(* Range queries across all index structures, and authenticated range scans
   (Range_proof) for the ordered Merkle trees. *)

open Siri_core
module Store = Siri_store.Store
module Mpt = Siri_mpt.Mpt
module Mbt = Siri_mbt.Mbt
module Pos = Siri_pos.Pos_tree
module Mvbt = Siri_mvbt.Mvbt
module Hash = Siri_crypto.Hash

let makers =
  [ ("mpt", fun () -> Mpt.generic (Mpt.empty (Store.create ())));
    ( "mbt",
      fun () ->
        Mbt.generic (Mbt.empty (Store.create ()) (Mbt.config ~capacity:32 ~fanout:4 ())) );
    ( "pos",
      fun () ->
        Pos.generic (Pos.empty (Store.create ()) (Pos.config ~leaf_target:256 ())) );
    ( "mvbt",
      fun () ->
        Mvbt.generic
          (Mvbt.empty (Store.create ())
             (Mvbt.config ~leaf_capacity:4 ~internal_capacity:5 ())) ) ]

let entries =
  List.init 500 (fun i -> (Printf.sprintf "k%06d" (i * 3), Printf.sprintf "v%d" i))

let reference ~lo ~hi =
  List.filter
    (fun (k, _) ->
      (match lo with None -> true | Some l -> String.compare k l >= 0)
      && match hi with None -> true | Some h -> String.compare k h <= 0)
    entries

let cases =
  [ (Some "k000300", Some "k000600");  (* interior, bounds on keys *)
    (Some "k0003", Some "k00060");     (* bounds between keys *)
    (None, Some "k000150");            (* prefix of the key space *)
    (Some "k001200", None);            (* suffix *)
    (None, None);                      (* everything *)
    (Some "k000600", Some "k000300");  (* inverted: empty *)
    (Some "zzz", None);                (* beyond the last key *)
    (None, Some "a");                  (* before the first key *)
    (Some "k000300", Some "k000300") ] (* single key *)

let test_range_matches_reference (name, mk) () =
  let t = Generic.of_entries (mk ()) entries in
  List.iter
    (fun (lo, hi) ->
      Alcotest.(check (list (pair string string)))
        (Printf.sprintf "%s range [%s, %s]" name
           (Option.value ~default:"-inf" lo)
           (Option.value ~default:"+inf" hi))
        (reference ~lo ~hi)
        (t.Generic.range ~lo ~hi))
    cases

let qcheck_range (name, mk) =
  let t = lazy (Generic.of_entries (mk ()) entries) in
  QCheck.Test.make
    ~name:(name ^ ": random ranges match filter")
    ~count:60
    QCheck.(pair (option (int_bound 1600)) (option (int_bound 1600)))
    (fun (lo_i, hi_i) ->
      let key = Option.map (Printf.sprintf "k%06d") in
      let lo = key lo_i and hi = key hi_i in
      (Lazy.force t).Generic.range ~lo ~hi = reference ~lo ~hi)

let test_range_empty_index (name, mk) () =
  let t = mk () in
  Alcotest.(check (list (pair string string)))
    (name ^ " empty") []
    (t.Generic.range ~lo:None ~hi:None)

(* --- MPT-specific: prefix keys near the bounds -------------------------------- *)

let test_mpt_prefix_boundaries () =
  let store = Store.create () in
  let t =
    Mpt.of_entries store
      [ ("a", "1"); ("ab", "2"); ("abc", "3"); ("abd", "4"); ("b", "5") ]
  in
  Alcotest.(check (list (pair string string)))
    "['ab','abd']"
    [ ("ab", "2"); ("abc", "3"); ("abd", "4") ]
    (Mpt.range t ~lo:(Some "ab") ~hi:(Some "abd"));
  Alcotest.(check (list (pair string string)))
    "up to 'ab' inclusive" [ ("a", "1"); ("ab", "2") ]
    (Mpt.range t ~lo:None ~hi:(Some "ab"));
  Alcotest.(check (list (pair string string)))
    "('abc', ...]" [ ("abd", "4"); ("b", "5") ]
    (Mpt.range t ~lo:(Some "abca") ~hi:None)

(* --- range proofs ----------------------------------------------------------------- *)

let pos_instance () =
  let store = Store.create () in
  (store, Pos.of_entries store (Pos.config ~leaf_target:256 ()) entries)

let mvbt_instance () =
  let store = Store.create () in
  ( store,
    Mvbt.of_entries store (Mvbt.config ~leaf_capacity:4 ~internal_capacity:5 ()) entries )

let test_pos_range_proof () =
  let _, t = pos_instance () in
  let root = Pos.root t in
  List.iter
    (fun (lo, hi) ->
      let proof = Pos.prove_range t ~lo ~hi in
      Alcotest.(check (list (pair string string)))
        "claimed entries" (reference ~lo ~hi) proof.Range_proof.entries;
      Alcotest.(check bool) "verifies" true (Pos.verify_range_proof ~root proof))
    cases

let test_mvbt_range_proof () =
  let _, t = mvbt_instance () in
  let root = Mvbt.root t in
  List.iter
    (fun (lo, hi) ->
      let proof = Mvbt.prove_range t ~lo ~hi in
      Alcotest.(check (list (pair string string)))
        "claimed entries" (reference ~lo ~hi) proof.Range_proof.entries;
      Alcotest.(check bool) "verifies" true (Mvbt.verify_range_proof ~root proof))
    cases

let test_range_proof_rejects_forgery () =
  let _, t = pos_instance () in
  let root = Pos.root t in
  let lo = Some "k000300" and hi = Some "k000900" in
  let proof = Pos.prove_range t ~lo ~hi in
  (* Dropped record. *)
  let dropped = { proof with Range_proof.entries = List.tl proof.Range_proof.entries } in
  Alcotest.(check bool) "dropped record rejected" false
    (Pos.verify_range_proof ~root dropped);
  (* Injected record. *)
  let injected =
    { proof with
      Range_proof.entries = ("k000500x", "evil") :: proof.Range_proof.entries }
  in
  Alcotest.(check bool) "injected record rejected" false
    (Pos.verify_range_proof ~root injected);
  (* Swapped value. *)
  let swapped =
    { proof with
      Range_proof.entries =
        (match proof.Range_proof.entries with
        | (k, _) :: rest -> (k, "forged") :: rest
        | [] -> []) }
  in
  Alcotest.(check bool) "swapped value rejected" false
    (Pos.verify_range_proof ~root swapped);
  (* Tampered node bytes. *)
  let tampered =
    { proof with
      Range_proof.nodes =
        (match proof.Range_proof.nodes with
        | n :: rest -> (n ^ "x") :: rest
        | [] -> []) }
  in
  Alcotest.(check bool) "tampered node rejected" false
    (Pos.verify_range_proof ~root tampered);
  (* Missing node. *)
  let missing =
    { proof with Range_proof.nodes = List.tl proof.Range_proof.nodes }
  in
  Alcotest.(check bool) "missing node rejected" false
    (Pos.verify_range_proof ~root missing);
  (* Wrong root. *)
  let t2 = Pos.insert t "k000450" "poke" in
  Alcotest.(check bool) "stale proof rejected" false
    (Pos.verify_range_proof ~root:(Pos.root t2) proof)

let test_range_proof_empty_tree () =
  let store = Store.create () in
  let t = Pos.empty store (Pos.config ()) in
  let proof = Pos.prove_range t ~lo:None ~hi:None in
  Alcotest.(check (list (pair string string))) "no entries" [] proof.Range_proof.entries;
  Alcotest.(check bool) "verifies" true
    (Pos.verify_range_proof ~root:(Pos.root t) proof)

let test_range_proof_is_partial () =
  (* The proof for a narrow range must be much smaller than the dataset. *)
  let store, t = pos_instance () in
  let full = Store.bytes_of_set store (Store.reachable store (Pos.root t)) in
  let proof = Pos.prove_range t ~lo:(Some "k000300") ~hi:(Some "k000420") in
  Alcotest.(check bool)
    (Printf.sprintf "proof %d << dataset %d" (Range_proof.size_bytes proof) full)
    true
    (Range_proof.size_bytes proof * 3 < full)

let () =
  Alcotest.run "range"
    [ ( "queries",
        List.concat_map
          (fun m ->
            [ Alcotest.test_case (fst m ^ " fixed cases") `Quick
                (test_range_matches_reference m);
              Alcotest.test_case (fst m ^ " empty index") `Quick
                (test_range_empty_index m);
              QCheck_alcotest.to_alcotest (qcheck_range m) ])
          makers
        @ [ Alcotest.test_case "mpt prefix boundaries" `Quick
              test_mpt_prefix_boundaries ] );
      ( "proofs",
        [ Alcotest.test_case "pos range proofs" `Quick test_pos_range_proof;
          Alcotest.test_case "mvbt range proofs" `Quick test_mvbt_range_proof;
          Alcotest.test_case "forgeries rejected" `Quick test_range_proof_rejects_forgery;
          Alcotest.test_case "empty tree" `Quick test_range_proof_empty_tree;
          Alcotest.test_case "proof is partial" `Quick test_range_proof_is_partial ] ) ]
