(* Parallel commit pipeline: pool semantics, batched store writes, and the
   root-determinism contract — every index must produce byte-identical
   roots at any domain count.  The suite runs under DOMAINS=1 and
   DOMAINS=4 from `make par`; the SIRI_DOMAINS override exercises the
   [Pool.recommended] env hook. *)

open Siri_core
module Store = Siri_store.Store
module Hash = Siri_crypto.Hash
module Sha256 = Siri_crypto.Sha256
module Pool = Siri_parallel.Pool
module Telemetry = Siri_telemetry.Telemetry
module Mpt = Siri_mpt.Mpt
module Mbt = Siri_mbt.Mbt
module Pos = Siri_pos.Pos_tree
module Mvbt = Siri_mvbt.Mvbt
module Prolly = Siri_prolly.Prolly
module Engine = Siri_forkbase.Engine

(* Shared pools; the registry's at_exit hook joins the workers. *)
let pool1 = Pool.create ~domains:1 ()
let pool2 = Pool.create ~domains:2 ()
let pool4 = Pool.create ~domains:4 ()

(* Deterministic dataset with unique keys (so builders that dedup
   differently on duplicates can still be compared 1:1). *)
let dataset n =
  List.init n (fun i ->
      ( Printf.sprintf "key-%08x-%d" (Hashtbl.hash (i * 2654435761)) i,
        Printf.sprintf "value-%d-%s" i (String.make (i mod 40) 'x') ))

let check_root msg a b =
  Alcotest.(check string) msg (Hash.to_hex a) (Hash.to_hex b)

(* --- pool semantics --------------------------------------------------------- *)

let test_map_order () =
  List.iter
    (fun pool ->
      let n = 257 in
      let out = Pool.map pool (fun x -> x * x) (Array.init n Fun.id) in
      Alcotest.(check (array int))
        (Printf.sprintf "squares at %d domains" (Pool.domains pool))
        (Array.init n (fun i -> i * i))
        out)
    [ Pool.sequential; pool1; pool2; pool4 ]

let test_map_empty_and_single () =
  Alcotest.(check (array int)) "empty" [||] (Pool.map pool4 succ [||]);
  Alcotest.(check (array int)) "single" [| 1 |] (Pool.map pool4 succ [| 0 |]);
  Alcotest.(check (list string))
    "map_list" [ "a!"; "b!" ]
    (Pool.map_list pool4 (fun s -> s ^ "!") [ "a"; "b" ])

let test_exception_propagation () =
  (match Pool.map pool4 (fun x -> if x = 7 then failwith "boom" else x)
           (Array.init 64 Fun.id)
   with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg -> Alcotest.(check string) "exn carried" "boom" msg);
  (* The pool must stay usable after a failed batch. *)
  let out = Pool.map pool4 succ (Array.init 16 Fun.id) in
  Alcotest.(check (array int))
    "reusable after exception"
    (Array.init 16 succ) out

let test_run_and_reuse () =
  let acc = Array.make 40 0 in
  Pool.run pool4 (Array.init 40 (fun i () -> acc.(i) <- i + 1));
  Alcotest.(check (array int)) "all tasks ran" (Array.init 40 succ) acc;
  (* Many consecutive maps on one pool: no deadlock, stable results. *)
  for round = 1 to 20 do
    let out = Pool.map pool2 (fun x -> x + round) (Array.init 33 Fun.id) in
    Alcotest.(check int) "round result" (32 + round) out.(32)
  done

let test_recommended_env () =
  Alcotest.(check bool) "at least 1" true (Pool.recommended () >= 1);
  Alcotest.(check bool) "capped" true (Pool.recommended ~cap:2 () <= 2)

(* --- crypto hot path -------------------------------------------------------- *)

let test_digest_substring_concat () =
  let s = "the quick brown fox jumps over the lazy dog" in
  for off = 0 to 8 do
    let len = String.length s - (2 * off) in
    Alcotest.(check string)
      "substring digest"
      (Sha256.to_hex (Sha256.digest_string (String.sub s off len)))
      (Sha256.to_hex (Sha256.digest_substring s ~off ~len))
  done;
  Alcotest.(check string)
    "concat digest"
    (Sha256.to_hex (Sha256.digest_string ("abc" ^ s)))
    (Sha256.to_hex (Sha256.digest_concat "abc" s))

let qcheck_digest_variants =
  QCheck.Test.make ~name:"substring/concat/quiet digests agree with oneshot"
    ~count:100
    QCheck.(pair string string)
    (fun (a, b) ->
      Hash.equal (Hash.of_string (a ^ b)) (Hash.of_concat a b)
      && Hash.equal (Hash.of_string a) (Hash.of_string_quiet a)
      && Hash.equal (Hash.of_string b)
           (Hash.of_substring (a ^ b) ~off:(String.length a)
              ~len:(String.length b)))

let test_quiet_skips_observer () =
  let seen = ref 0 in
  Hash.set_digest_observer (Some (fun n -> seen := !seen + n));
  Fun.protect
    ~finally:(fun () -> Hash.set_digest_observer None)
    (fun () ->
      ignore (Hash.of_string_quiet "silent" : Hash.t);
      Alcotest.(check int) "quiet digest unobserved" 0 !seen;
      ignore (Hash.of_string "loud!!" : Hash.t);
      Alcotest.(check int) "observed bytes" 6 !seen;
      Hash.note_digest 6;
      Alcotest.(check int) "note_digest replays" 12 !seen)

(* --- batched store writes --------------------------------------------------- *)

let stats_tuple st =
  Store.(st.puts, st.unique_nodes, st.stored_bytes, st.put_bytes)

let put_counters sink =
  List.map
    (Telemetry.counter sink)
    [ "store.put"; "store.put_bytes"; "store.put_unique";
      "store.put_unique_bytes" ]

let batch_equiv payloads =
  let a = Store.create () and b = Store.create () in
  let sa = Telemetry.create () and sb = Telemetry.create () in
  Store.set_sink a sa;
  Store.set_sink b sb;
  let seq = List.map (fun p -> Store.put a p) payloads in
  let batched = Store.put_batch b (List.map (fun p -> (p, [])) payloads) in
  List.for_all2 Hash.equal seq batched
  && stats_tuple (Store.stats a) = stats_tuple (Store.stats b)
  && put_counters sa = put_counters sb

let test_put_batch_equiv () =
  Alcotest.(check bool) "empty batch" true (batch_equiv []);
  Alcotest.(check bool)
    "batch with duplicates" true
    (batch_equiv [ "x"; "y"; "x"; "z"; "y"; "x" ])

let qcheck_put_batch =
  QCheck.Test.make ~name:"put_batch = sequential puts (hashes, stats, meters)"
    ~count:50
    QCheck.(small_list string)
    batch_equiv

let test_staged_children () =
  let s = Store.create () in
  let leaf = Store.stage "leaf" in
  let parent = Store.stage ~children:[ leaf.Store.digest ] "parent" in
  Store.put_staged s [ leaf; parent ];
  Alcotest.(check (list string))
    "children installed"
    [ Hash.to_hex leaf.Store.digest ]
    (List.map Hash.to_hex (Store.children s parent.Store.digest));
  Alcotest.(check string) "payload installed" "leaf" (Store.get s leaf.Store.digest)

(* --- per-index root determinism --------------------------------------------- *)

(* Build the same records through the same parallel entry point at two
   widths; roots must match bit for bit. *)
type builder = (Kv.key * Kv.value) list -> ?pool:Pool.t -> unit -> Hash.t

let determinism_cases : (string * builder) list =
  [ ( "mpt",
      fun entries ?pool () ->
        Mpt.root (Mpt.of_sorted ?pool (Store.create ()) entries) );
    ( "mbt",
      fun entries ?pool () ->
        Mbt.root
          (Mbt.of_entries ?pool (Store.create ())
             (Mbt.config ~capacity:64 ~fanout:4 ())
             entries) );
    ( "pos",
      fun entries ?pool () ->
        Pos.root (Pos.of_sorted ?pool (Store.create ()) (Pos.config ()) entries)
    );
    ( "prolly",
      fun entries ?pool () ->
        Pos.root (Prolly.of_sorted ?pool (Store.create ()) entries) );
    ( "mvbt",
      fun entries ?pool () ->
        Mvbt.root
          (Mvbt.of_sorted ?pool (Store.create ()) (Mvbt.config ()) entries) )
  ]

let test_roots_domain_invariant () =
  let entries = dataset 2_000 in
  determinism_cases
  |> List.iter (fun ((name, build) : string * builder) ->
         let r1 = build entries ~pool:pool1 () in
         let r2 = build entries ~pool:pool2 () in
         let r4 = build entries ~pool:pool4 () in
         let rs = build entries ?pool:None () in
         check_root (name ^ ": 1 = 2 domains") r1 r2;
         check_root (name ^ ": 1 = 4 domains") r1 r4;
         check_root (name ^ ": pool = no pool") r1 rs)

let entries_arb =
  QCheck.(
    small_list (pair (map (fun s -> "k" ^ s) small_string) small_string))

let qcheck_roots_domain_invariant =
  QCheck.Test.make ~name:"random workloads: root at 1 domain = root at 4"
    ~count:30 entries_arb
    (fun entries ->
      determinism_cases
      |> List.for_all (fun ((_, build) : string * builder) ->
             Hash.equal
               (build entries ~pool:pool1 ())
               (build entries ~pool:pool4 ())))

let test_bulk_matches_sequential_builders () =
  let entries = dataset 1_500 in
  (* Structurally invariant indexes: the parallel bulk build must equal the
     plain insertion build exactly. *)
  check_root "mpt of_sorted = of_entries"
    (Mpt.root (Mpt.of_entries (Store.create ()) entries))
    (Mpt.root (Mpt.of_sorted ~pool:pool4 (Store.create ()) entries));
  List.iter
    (fun cfg ->
      check_root "pos of_sorted = of_entries"
        (Pos.root (Pos.of_entries (Store.create ()) cfg entries))
        (Pos.root (Pos.of_sorted ~pool:pool4 (Store.create ()) cfg entries)))
    [ Pos.config (); Pos.config_prolly () ];
  (* MVMB+-Tree is order-dependent by design: of_sorted defines its own
     canonical root, so only content equality is required here. *)
  let bulk = Mvbt.of_sorted ~pool:pool4 (Store.create ()) (Mvbt.config ()) entries in
  Alcotest.(check int)
    "mvbt content preserved"
    (List.length (List.sort_uniq compare entries))
    (Mvbt.cardinal bulk);
  Alcotest.(check bool)
    "mvbt sorted content" true
    (Mvbt.to_list bulk = List.sort compare entries)

let test_mbt_parallel_equals_sequential () =
  let entries = dataset 1_500 in
  let cfg = Mbt.config ~capacity:128 ~fanout:4 () in
  let sa = Store.create () and sb = Store.create () in
  let plain = Mbt.of_entries sa cfg entries in
  let pooled = Mbt.of_entries ~pool:pool4 sb cfg entries in
  check_root "mbt bulk root" (Mbt.root plain) (Mbt.root pooled);
  Alcotest.(check (pair int int))
    "mbt bulk store accounting"
    (let st = Store.stats sa in
     (st.Store.puts, st.Store.unique_nodes))
    (let st = Store.stats sb in
     (st.Store.puts, st.Store.unique_nodes));
  (* Incremental batch: level-wise parallel rebuild vs per-path fold. *)
  let ops =
    List.filteri (fun i _ -> i mod 7 = 0) entries
    |> List.map (fun (k, _) -> Kv.Put (k, "v2-" ^ k))
  in
  check_root "mbt batch root"
    (Mbt.root (Mbt.batch plain ops))
    (Mbt.root (Mbt.batch ~pool:pool4 pooled ops))

(* The parallel build must also hash exactly the same bytes as the
   sequential one — quiet worker digests are replayed one-for-one. *)
let test_hash_meter_conserved () =
  let entries = dataset 1_200 in
  let metered build =
    let sink = Telemetry.create () in
    Telemetry.attach_hash_counter sink;
    Fun.protect
      ~finally:(fun () -> Telemetry.detach_hash_counter ())
      (fun () -> ignore (build () : Hash.t));
    (Telemetry.counter sink "hash.count", Telemetry.counter sink "hash.bytes")
  in
  let cfg = Pos.config () in
  Alcotest.(check (pair int int))
    "pos hashes conserved"
    (metered (fun () -> Pos.root (Pos.of_entries (Store.create ()) cfg entries)))
    (metered (fun () ->
         Pos.root (Pos.of_sorted ~pool:pool4 (Store.create ()) cfg entries)));
  let mcfg = Mbt.config ~capacity:128 ~fanout:4 () in
  Alcotest.(check (pair int int))
    "mbt hashes conserved"
    (metered (fun () ->
         Mbt.root (Mbt.of_entries (Store.create ()) mcfg entries)))
    (metered (fun () ->
         Mbt.root (Mbt.of_entries ~pool:pool4 (Store.create ()) mcfg entries)))

(* --- engine bulk commits ----------------------------------------------------- *)

let test_engine_commit_bulk () =
  let entries = dataset 800 in
  let t =
    Engine.create
      ~empty_index:(Mpt.generic ~pool:pool4 (Mpt.empty (Store.create ())))
  in
  let c = Engine.commit_bulk t ~branch:"master" ~message:"bulk" entries in
  Alcotest.(check int) "bulk commit is version 1" 1 c.Engine.version;
  (* The committed root is the canonical bulk root. *)
  check_root "engine bulk root"
    (Mpt.root (Mpt.of_sorted (Store.create ()) entries))
    c.Engine.index_root;
  let k0, v0 = List.hd entries in
  Alcotest.(check (option string)) "bulk lookup" (Some v0)
    (Engine.get t ~branch:"master" k0);
  (* On a non-empty branch commit_bulk degrades to a put-batch: existing
     records survive. *)
  let c2 =
    Engine.commit_bulk t ~branch:"master" ~message:"more"
      [ ("zz-extra", "tail") ]
  in
  Alcotest.(check int) "second bulk is version 2" 2 c2.Engine.version;
  Alcotest.(check (option string)) "new record" (Some "tail")
    (Engine.get t ~branch:"master" "zz-extra");
  Alcotest.(check (option string)) "old record kept" (Some v0)
    (Engine.get t ~branch:"master" k0)

let () =
  Alcotest.run "parallel"
    [ ( "pool",
        [ Alcotest.test_case "map preserves order" `Quick test_map_order;
          Alcotest.test_case "edge sizes" `Quick test_map_empty_and_single;
          Alcotest.test_case "exceptions propagate" `Quick
            test_exception_propagation;
          Alcotest.test_case "run + reuse" `Quick test_run_and_reuse;
          Alcotest.test_case "recommended bounds" `Quick test_recommended_env
        ] );
      ( "crypto",
        [ Alcotest.test_case "substring/concat digests" `Quick
            test_digest_substring_concat;
          Alcotest.test_case "quiet digests skip the observer" `Quick
            test_quiet_skips_observer;
          QCheck_alcotest.to_alcotest qcheck_digest_variants ] );
      ( "store batch",
        [ Alcotest.test_case "put_batch equivalence" `Quick
            test_put_batch_equiv;
          Alcotest.test_case "staged children" `Quick test_staged_children;
          QCheck_alcotest.to_alcotest qcheck_put_batch ] );
      ( "determinism",
        [ Alcotest.test_case "roots invariant across domains" `Quick
            test_roots_domain_invariant;
          Alcotest.test_case "bulk = sequential builders" `Quick
            test_bulk_matches_sequential_builders;
          Alcotest.test_case "mbt parallel = sequential" `Quick
            test_mbt_parallel_equals_sequential;
          Alcotest.test_case "hash meters conserved" `Quick
            test_hash_meter_conserved;
          QCheck_alcotest.to_alcotest qcheck_roots_domain_invariant ] );
      ( "engine",
        [ Alcotest.test_case "commit_bulk" `Quick test_engine_commit_bulk ] )
    ]
