(* The measurement kit used by the benchmark harness: timers, sample
   histograms and table rendering. *)

module Clock = Siri_benchkit.Clock
module Hist = Siri_benchkit.Hist
module Table = Siri_benchkit.Table

let test_clock_time () =
  let x, seconds = Clock.time (fun () -> 42) in
  Alcotest.(check int) "result" 42 x;
  Alcotest.(check bool) "non-negative" true (seconds >= 0.0);
  let busy = Clock.time_unit (fun () -> ignore (Sys.opaque_identity (Array.make 100_000 0))) in
  Alcotest.(check bool) "measurable work" true (busy >= 0.0)

let test_throughput () =
  Alcotest.(check (float 1e-9)) "1000 ops in 2s" 500.0
    (Clock.throughput ~ops:1000 ~seconds:2.0);
  Alcotest.(check (float 1e-9)) "zero time" 0.0 (Clock.throughput ~ops:10 ~seconds:0.0)

let test_hist_stats () =
  let h = Hist.create () in
  List.iter (Hist.add h) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  Alcotest.(check int) "count" 5 (Hist.count h);
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Hist.mean h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Hist.min_value h);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Hist.max_value h);
  Alcotest.(check (float 1e-9)) "median" 3.0 (Hist.percentile h 0.5);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Hist.percentile h 0.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Hist.percentile h 1.0)

let test_hist_empty () =
  let h = Hist.create () in
  Alcotest.(check int) "count" 0 (Hist.count h);
  Alcotest.(check (float 1e-9)) "mean" 0.0 (Hist.mean h);
  Alcotest.(check (float 1e-9)) "percentile" 0.0 (Hist.percentile h 0.9);
  Alcotest.(check int) "no buckets" 0 (List.length (Hist.buckets h ~n:4))

let test_hist_buckets () =
  let h = Hist.create () in
  List.iter (fun i -> Hist.add h (Float.of_int i)) [ 0; 1; 2; 3; 4; 5; 6; 7 ];
  let buckets = Hist.buckets h ~n:4 in
  Alcotest.(check int) "4 buckets" 4 (List.length buckets);
  Alcotest.(check int) "all samples binned" 8
    (List.fold_left (fun acc (_, _, c) -> acc + c) 0 buckets);
  (* Buckets tile the range contiguously. *)
  let rec contiguous = function
    | (_, hi1, _) :: ((lo2, _, _) :: _ as rest) ->
        Alcotest.(check (float 1e-9)) "contiguous" hi1 lo2;
        contiguous rest
    | _ -> ()
  in
  contiguous buckets

let test_hist_add_invalidates_cache () =
  let h = Hist.create () in
  Hist.add h 10.0;
  Alcotest.(check (float 1e-9)) "first max" 10.0 (Hist.max_value h);
  Hist.add h 20.0;
  Alcotest.(check (float 1e-9)) "updated max" 20.0 (Hist.max_value h)

let test_fmt_bytes () =
  Alcotest.(check string) "bytes" "512 B" (Table.fmt_bytes 512);
  Alcotest.(check string) "kb" "2.00 KB" (Table.fmt_bytes 2048);
  Alcotest.(check string) "mb" "1.50 MB" (Table.fmt_bytes (3 * 1024 * 1024 / 2));
  Alcotest.(check string) "gb" "1.00 GB" (Table.fmt_bytes (1024 * 1024 * 1024))

let test_fmt_float () =
  Alcotest.(check string) "integer" "42" (Table.fmt_float 42.0);
  Alcotest.(check string) "small" "0.1230" (Table.fmt_float 0.123);
  Alcotest.(check string) "medium" "3.14" (Table.fmt_float 3.14159);
  Alcotest.(check string) "large" "12346" (Table.fmt_float 12345.678)

let capture f =
  let path = Filename.temp_file "siri-table" ".txt" in
  let oc = open_out path in
  f oc;
  close_out oc;
  let s = In_channel.with_open_bin path In_channel.input_all in
  Sys.remove path;
  s

let test_table_renders () =
  let out =
    capture (fun oc ->
        Table.print ~out:oc ~title:"demo" ~headers:[ "name"; "value" ]
          [ [ "alpha"; "1" ]; [ "much-longer-name"; "22" ] ])
  in
  Alcotest.(check bool) "title present" true
    (String.length out > 0 && Astring.String.is_infix ~affix:"demo" out);
  Alcotest.(check bool) "rows present" true
    (Astring.String.is_infix ~affix:"much-longer-name" out)

let test_series_renders () =
  let out =
    capture (fun oc ->
        Table.series ~out:oc ~title:"s" ~x_label:"x" ~columns:[ "a"; "b" ]
          [ ("1", [ 1.0; 2.0 ]); ("2", [ 3.0; 4.5 ]) ])
  in
  Alcotest.(check bool) "values rendered" true
    (Astring.String.is_infix ~affix:"4.50" out)

let () =
  Alcotest.run "benchkit"
    [ ( "clock",
        [ Alcotest.test_case "time" `Quick test_clock_time;
          Alcotest.test_case "throughput" `Quick test_throughput ] );
      ( "hist",
        [ Alcotest.test_case "stats" `Quick test_hist_stats;
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "buckets" `Quick test_hist_buckets;
          Alcotest.test_case "cache invalidation" `Quick test_hist_add_invalidates_cache ] );
      ( "table",
        [ Alcotest.test_case "fmt_bytes" `Quick test_fmt_bytes;
          Alcotest.test_case "fmt_float" `Quick test_fmt_float;
          Alcotest.test_case "table rendering" `Quick test_table_renders;
          Alcotest.test_case "series rendering" `Quick test_series_renders ] ) ]
