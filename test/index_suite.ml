(* A conformance battery run against every index through the Generic
   interface: model-based correctness, diff/merge against the reference
   implementation, proof soundness, and version immutability.  Each index's
   test file instantiates this and adds structure-specific cases. *)

open Siri_core
module Hash = Siri_crypto.Hash

type maker = unit -> Generic.t
(* Fresh empty instance in a fresh store. *)

let rng_entries rng n =
  (* Unique keys, random-ish values. *)
  List.init n (fun i ->
      (Printf.sprintf "%s%06d" (Rng.string_alnum rng 3) i, Rng.string_alnum rng 24))

let sorted entries = List.sort (fun (a, _) (b, _) -> String.compare a b) entries

let test_empty (mk : maker) () =
  let t = mk () in
  Alcotest.(check (option string)) "lookup empty" None (t.Generic.lookup "k");
  Alcotest.(check int) "cardinal 0" 0 (t.Generic.cardinal ());
  Alcotest.(check (list (pair string string))) "to_list []" [] (t.Generic.to_list ())

let test_insert_lookup (mk : maker) () =
  let rng = Rng.create 101 in
  let entries = rng_entries rng 500 in
  let t = Generic.of_entries (mk ()) entries in
  List.iter
    (fun (k, v) -> Alcotest.(check (option string)) k (Some v) (t.Generic.lookup k))
    entries;
  Alcotest.(check (option string)) "absent" None (t.Generic.lookup "zz-absent");
  Alcotest.(check int) "cardinal" 500 (t.Generic.cardinal ());
  Alcotest.(check (list (pair string string)))
    "to_list sorted" (sorted entries) (t.Generic.to_list ())

let test_overwrite (mk : maker) () =
  let t = Generic.insert (Generic.insert (mk ()) "k" "v1") "k" "v2" in
  Alcotest.(check (option string)) "overwritten" (Some "v2") (t.Generic.lookup "k");
  Alcotest.(check int) "still one record" 1 (t.Generic.cardinal ())

let test_delete (mk : maker) () =
  let rng = Rng.create 102 in
  let entries = rng_entries rng 300 in
  let t = Generic.of_entries (mk ()) entries in
  let doomed = List.filteri (fun i _ -> i mod 3 = 0) entries in
  let t' = t.Generic.batch (List.map (fun (k, _) -> Kv.Del k) doomed) in
  List.iteri
    (fun i (k, v) ->
      if i mod 3 = 0 then
        Alcotest.(check (option string)) ("gone " ^ k) None (t'.Generic.lookup k)
      else Alcotest.(check (option string)) k (Some v) (t'.Generic.lookup k))
    entries;
  Alcotest.(check int) "cardinal" (300 - 100) (t'.Generic.cardinal ());
  (* Deleting an absent key is a no-op, not an error. *)
  let t'' = Generic.remove t' "totally-absent-key" in
  Alcotest.(check int) "no-op delete" (t'.Generic.cardinal ()) (t''.Generic.cardinal ())

let test_delete_all (mk : maker) () =
  let rng = Rng.create 103 in
  let entries = rng_entries rng 120 in
  let t = Generic.of_entries (mk ()) entries in
  let t' = t.Generic.batch (List.map (fun (k, _) -> Kv.Del k) entries) in
  Alcotest.(check int) "empty again" 0 (t'.Generic.cardinal ());
  Alcotest.(check (option string)) "nothing left" None
    (t'.Generic.lookup (fst (List.hd entries)))

let test_versions_immutable (mk : maker) () =
  let rng = Rng.create 104 in
  let entries = rng_entries rng 200 in
  let v1 = Generic.of_entries (mk ()) entries in
  let root1 = v1.Generic.root in
  let v2 = Generic.insert v1 "new-key" "new-value" in
  (* The old version still answers from its own root. *)
  Alcotest.(check bool) "root unchanged" true (Hash.equal root1 v1.Generic.root);
  Alcotest.(check (option string)) "old version blind to new key" None
    (v1.Generic.lookup "new-key");
  Alcotest.(check (option string)) "new version sees it" (Some "new-value")
    (v2.Generic.lookup "new-key");
  (* reopen by root recovers the old version. *)
  let v1' = v1.Generic.reopen root1 in
  Alcotest.(check int) "reopened cardinal" 200 (v1'.Generic.cardinal ())

let test_diff_against_reference (mk : maker) () =
  let rng = Rng.create 105 in
  let entries = rng_entries rng 400 in
  let t1 = Generic.of_entries (mk ()) entries in
  let ops =
    List.filteri (fun i _ -> i mod 10 = 0) entries
    |> List.map (fun (k, _) -> Kv.Put (k, "changed"))
  in
  let dels =
    List.filteri (fun i _ -> i mod 17 = 3) entries
    |> List.map (fun (k, _) -> Kv.Del k)
  in
  let adds = [ Kv.Put ("zz-added-1", "a"); Kv.Put ("zz-added-2", "b") ] in
  let t2 = t1.Generic.batch (ops @ dels @ adds) in
  let expected = Kv.diff_sorted (t1.Generic.to_list ()) (t2.Generic.to_list ()) in
  let actual =
    List.sort
      (fun (a : Kv.diff_entry) (b : Kv.diff_entry) -> String.compare a.key b.key)
      (t1.Generic.diff t2.Generic.root)
  in
  Alcotest.(check int) "diff count" (List.length expected) (List.length actual);
  List.iter2
    (fun (e : Kv.diff_entry) (a : Kv.diff_entry) ->
      Alcotest.(check string) "key" e.key a.key;
      Alcotest.(check (option string)) "left" e.left a.left;
      Alcotest.(check (option string)) "right" e.right a.right)
    expected actual

let test_diff_self_empty (mk : maker) () =
  let rng = Rng.create 106 in
  let t = Generic.of_entries (mk ()) (rng_entries rng 100) in
  Alcotest.(check int) "self diff empty" 0 (List.length (t.Generic.diff t.Generic.root))

let test_merge_disjoint (mk : maker) () =
  let rng = Rng.create 107 in
  let base = rng_entries rng 100 in
  let t0 = Generic.of_entries (mk ()) base in
  let ta = Generic.insert t0 "only-in-a" "va" in
  let tb = Generic.insert t0 "only-in-b" "vb" in
  match ta.Generic.merge Kv.Fail_on_conflict tb.Generic.root with
  | Error _ -> Alcotest.fail "disjoint merge should not conflict"
  | Ok merged ->
      Alcotest.(check (option string)) "a kept" (Some "va")
        (merged.Generic.lookup "only-in-a");
      Alcotest.(check (option string)) "b gained" (Some "vb")
        (merged.Generic.lookup "only-in-b");
      Alcotest.(check int) "all records" 102 (merged.Generic.cardinal ())

let test_merge_conflict (mk : maker) () =
  let t0 = Generic.of_entries (mk ()) [ ("shared", "base"); ("x", "1") ] in
  let ta = Generic.insert t0 "shared" "a-version" in
  let tb = Generic.insert t0 "shared" "b-version" in
  (match ta.Generic.merge Kv.Fail_on_conflict tb.Generic.root with
  | Ok _ -> Alcotest.fail "expected conflict"
  | Error [ c ] ->
      Alcotest.(check string) "conflict key" "shared" c.Kv.key;
      Alcotest.(check string) "left value" "a-version" c.Kv.left_value
  | Error cs -> Alcotest.failf "expected one conflict, got %d" (List.length cs));
  match ta.Generic.merge Kv.Prefer_right tb.Generic.root with
  | Error _ -> Alcotest.fail "prefer-right cannot conflict"
  | Ok merged ->
      Alcotest.(check (option string)) "right wins" (Some "b-version")
        (merged.Generic.lookup "shared")

let test_proofs (mk : maker) () =
  let rng = Rng.create 108 in
  let entries = rng_entries rng 300 in
  let t = Generic.of_entries (mk ()) entries in
  let root = t.Generic.root in
  List.iteri
    (fun i (k, v) ->
      if i mod 29 = 0 then begin
        let p = t.Generic.prove k in
        Alcotest.(check (option string)) ("claims " ^ k) (Some v) p.Proof.value;
        Alcotest.(check bool) ("verifies " ^ k) true (t.Generic.verify ~root p);
        Alcotest.(check bool)
          ("tampered rejected " ^ k)
          false
          (t.Generic.verify ~root (Proof.tamper p))
      end)
    entries;
  (* Absence proof. *)
  let pa = t.Generic.prove "zz-definitely-absent" in
  Alcotest.(check (option string)) "absence claim" None pa.Proof.value;
  Alcotest.(check bool) "absence verifies" true (t.Generic.verify ~root pa);
  (* A proof for one version must not verify against another root. *)
  let t2 = Generic.insert t (fst (List.hd entries)) "mutated" in
  let p = t.Generic.prove (fst (List.hd entries)) in
  Alcotest.(check bool) "stale proof rejected" false
    (t2.Generic.verify ~root:t2.Generic.root p)

let test_proof_detects_value_swap (mk : maker) () =
  let t = Generic.of_entries (mk ()) [ ("a", "1"); ("b", "2") ] in
  let p = t.Generic.prove "a" in
  let lying = { p with Proof.value = Some "42" } in
  Alcotest.(check bool) "forged value rejected" false
    (t.Generic.verify ~root:t.Generic.root lying)

let test_proof_key_substitution (mk : maker) () =
  (* Presenting key A's (valid) proof as a statement about key B must fail:
     the replay follows B's search path, which the A-path nodes cannot
     satisfy, or ends at a value that contradicts the claim. *)
  let t = Generic.of_entries (mk ())
      [ ("alpha", "1"); ("beta", "2"); ("gamma", "3") ] in
  let p = t.Generic.prove "alpha" in
  let forged = { p with Proof.key = "beta" } in
  Alcotest.(check bool) "key substitution rejected" false
    (t.Generic.verify ~root:t.Generic.root forged);
  (* Claiming absence of a present key with its own proof also fails. *)
  let absent_claim = { p with Proof.value = None } in
  Alcotest.(check bool) "false absence rejected" false
    (t.Generic.verify ~root:t.Generic.root absent_claim)

let test_path_length (mk : maker) () =
  let rng = Rng.create 109 in
  let entries = rng_entries rng 400 in
  let t = Generic.of_entries (mk ()) entries in
  List.iteri
    (fun i (k, _) ->
      if i mod 37 = 0 then begin
        let len = t.Generic.path_length k in
        Alcotest.(check bool)
          (Printf.sprintf "path length %d sane" len)
          true
          (len >= 1 && len <= 64)
      end)
    entries

let test_batch_equals_sequential (mk : maker) () =
  let rng = Rng.create 110 in
  let entries = rng_entries rng 150 in
  let b = Generic.of_entries (mk ()) entries in
  let s =
    List.fold_left (fun t (k, v) -> Generic.insert t k v) (mk ()) entries
  in
  Alcotest.(check (list (pair string string)))
    "same records" (b.Generic.to_list ()) (s.Generic.to_list ())

(* Model-based random operations against a Map. *)
let qcheck_model (mk : maker) name =
  let op_gen =
    QCheck.Gen.(
      pair (int_bound 2) (pair (string_size ~gen:(char_range 'a' 'f') (1 -- 4)) (string_size (0 -- 8))))
  in
  QCheck.Test.make ~name:(name ^ ": random ops match Map model") ~count:60
    (QCheck.make QCheck.Gen.(list_size (0 -- 120) op_gen))
    (fun script ->
      let module M = Map.Make (String) in
      let model = ref M.empty in
      let t = ref (mk ()) in
      List.iter
        (fun (kind, (k, v)) ->
          match kind with
          | 0 | 1 ->
              model := M.add k v !model;
              t := Generic.insert !t k v
          | _ ->
              model := M.remove k !model;
              t := Generic.remove !t k)
        script;
      let expected = M.bindings !model in
      let got = (!t).Generic.to_list () in
      expected = got
      && M.for_all (fun k v -> (!t).Generic.lookup k = Some v) !model)

let test_binary_safety (mk : maker) () =
  (* Keys and values are arbitrary byte strings: null bytes, 0xff, empty
     values, and large values must all round-trip. *)
  let entries =
    [ ("\x00", "null-key");
      ("\x00\x00b", "nested-null");
      ("\xff\xfe", "high-bytes");
      ("mixed\x00\xffkey", "");
      ("big-value", String.init 100_000 (fun i -> Char.chr (i land 0xFF)));
      ("utf8-\xc3\xa9\xc2\xa0", "caf\xc3\xa9") ]
  in
  let t = Generic.of_entries (mk ()) entries in
  List.iter
    (fun (k, v) ->
      Alcotest.(check (option string))
        (Printf.sprintf "binary key %S" k)
        (Some v) (t.Generic.lookup k))
    entries;
  Alcotest.(check int) "cardinal" (List.length entries) (t.Generic.cardinal ());
  (* Proofs still work over binary content. *)
  let p = t.Generic.prove "\x00" in
  Alcotest.(check bool) "binary proof verifies" true
    (t.Generic.verify ~root:t.Generic.root p);
  (* And deletes. *)
  let t' = Generic.remove t "\xff\xfe" in
  Alcotest.(check (option string)) "binary delete" None (t'.Generic.lookup "\xff\xfe")

let test_long_keys (mk : maker) () =
  let long k = String.concat "/" (List.init 40 (fun i -> k ^ string_of_int i)) in
  let entries = List.init 20 (fun i -> (long (string_of_int i), "v" ^ string_of_int i)) in
  let t = Generic.of_entries (mk ()) entries in
  List.iter
    (fun (k, v) -> Alcotest.(check (option string)) "long key" (Some v) (t.Generic.lookup k))
    entries

let cases name (mk : maker) =
  [ Alcotest.test_case "empty instance" `Quick (test_empty mk);
    Alcotest.test_case "insert/lookup/to_list" `Quick (test_insert_lookup mk);
    Alcotest.test_case "overwrite" `Quick (test_overwrite mk);
    Alcotest.test_case "delete" `Quick (test_delete mk);
    Alcotest.test_case "delete all" `Quick (test_delete_all mk);
    Alcotest.test_case "versions immutable" `Quick (test_versions_immutable mk);
    Alcotest.test_case "diff vs reference" `Quick (test_diff_against_reference mk);
    Alcotest.test_case "diff self" `Quick (test_diff_self_empty mk);
    Alcotest.test_case "merge disjoint" `Quick (test_merge_disjoint mk);
    Alcotest.test_case "merge conflict" `Quick (test_merge_conflict mk);
    Alcotest.test_case "proofs" `Quick (test_proofs mk);
    Alcotest.test_case "forged proof value" `Quick (test_proof_detects_value_swap mk);
    Alcotest.test_case "proof key substitution" `Quick (test_proof_key_substitution mk);
    Alcotest.test_case "path length sane" `Quick (test_path_length mk);
    Alcotest.test_case "batch = sequential" `Quick (test_batch_equals_sequential mk);
    Alcotest.test_case "binary-safe keys/values" `Quick (test_binary_safety mk);
    Alcotest.test_case "long keys" `Quick (test_long_keys mk);
    QCheck_alcotest.to_alcotest (qcheck_model mk name) ]
