(* SIRI core: record ops, reference diff, merge policies, deterministic RNG,
   the generic tree diff, deduplication metrics and the Section 4 cost
   models. *)

open Siri_core
module Store = Siri_store.Store
module Hash = Siri_crypto.Hash

(* --- kv -------------------------------------------------------------------- *)

let test_sort_ops_last_wins () =
  let ops = [ Kv.Put ("b", "1"); Kv.Put ("a", "1"); Kv.Put ("b", "2"); Kv.Del "a" ] in
  match Kv.sort_ops ops with
  | [ Kv.Del "a"; Kv.Put ("b", "2") ] -> ()
  | other ->
      Alcotest.failf "unexpected: %d ops, first key %s" (List.length other)
        (Kv.key_of_op (List.hd other))

let test_apply_sorted () =
  let entries = [ ("a", "1"); ("c", "3"); ("e", "5") ] in
  let ops = [ Kv.Put ("b", "2"); Kv.Del "c"; Kv.Put ("e", "55"); Kv.Del "z" ] in
  Alcotest.(check (list (pair string string)))
    "merge" [ ("a", "1"); ("b", "2"); ("e", "55") ]
    (Kv.apply_sorted entries ops)

let test_apply_sorted_empty () =
  Alcotest.(check (list (pair string string)))
    "ops into empty" [ ("a", "1") ]
    (Kv.apply_sorted [] [ Kv.Put ("a", "1"); Kv.Del "b" ]);
  Alcotest.(check (list (pair string string)))
    "no ops" [ ("a", "1") ]
    (Kv.apply_sorted [ ("a", "1") ] [])

let test_diff_sorted () =
  let l = [ ("a", "1"); ("b", "2"); ("d", "4") ] in
  let r = [ ("b", "2"); ("c", "3"); ("d", "44") ] in
  let d = Kv.diff_sorted l r in
  Alcotest.(check int) "3 diffs" 3 (List.length d);
  let by_key k = List.find (fun (e : Kv.diff_entry) -> e.key = k) d in
  Alcotest.(check bool) "a left-only" true ((by_key "a").right = None);
  Alcotest.(check bool) "c right-only" true ((by_key "c").left = None);
  Alcotest.(check bool) "d changed" true
    ((by_key "d").left = Some "4" && (by_key "d").right = Some "44")

let test_merge_policies () =
  let ok = function Ok v -> v | Error _ -> Alcotest.fail "conflict" in
  Alcotest.(check string) "equal values" "x"
    (ok (Kv.merge_values Kv.Fail_on_conflict "k" "x" "x"));
  Alcotest.(check string) "prefer left" "l"
    (ok (Kv.merge_values Kv.Prefer_left "k" "l" "r"));
  Alcotest.(check string) "prefer right" "r"
    (ok (Kv.merge_values Kv.Prefer_right "k" "l" "r"));
  Alcotest.(check string) "resolver" "l+r"
    (ok (Kv.merge_values (Kv.Resolve (fun _ a b -> a ^ "+" ^ b)) "k" "l" "r"));
  match Kv.merge_values Kv.Fail_on_conflict "k" "l" "r" with
  | Ok _ -> Alcotest.fail "expected conflict"
  | Error c -> Alcotest.(check string) "conflict key" "k" c.key

let qcheck_diff_sorted_symmetry =
  let entries_gen =
    QCheck.Gen.(
      map
        (fun l ->
          List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) l)
        (list_size (0 -- 30) (pair (string_size (1 -- 4)) (string_size (0 -- 4)))))
  in
  QCheck.Test.make ~name:"diff symmetric under swap" ~count:200
    (QCheck.make QCheck.Gen.(pair entries_gen entries_gen))
    (fun (l, r) ->
      let d1 = Kv.diff_sorted l r and d2 = Kv.diff_sorted r l in
      List.length d1 = List.length d2
      && List.for_all2
           (fun (a : Kv.diff_entry) (b : Kv.diff_entry) ->
             a.key = b.key && a.left = b.right && a.right = b.left)
           d1 d2)

(* --- rng -------------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 99 and b = Rng.create 99 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_ranges () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng 10 20 in
    Alcotest.(check bool) "in range" true (v >= 10 && v <= 20);
    let f = Rng.float rng in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_shuffle_permutes () =
  let rng = Rng.create 6 in
  let l = List.init 50 Fun.id in
  let s = Rng.shuffle rng l in
  Alcotest.(check (list int)) "same multiset" l (List.sort compare s);
  Alcotest.(check bool) "actually shuffled" true (s <> l)

(* --- tree diff --------------------------------------------------------------- *)

(* A synthetic two-level tree in a store, using the decode adapter shape. *)
let synth_tree store leaves =
  (* leaves : (key * value) list list; returns (root, decode). *)
  let tbl = Hash.Table.create 16 in
  let leaf_refs =
    List.map
      (fun entries ->
        let bytes = Marshal.to_string (`Leaf entries) [] in
        let h = Store.put store bytes in
        Hash.Table.replace tbl h (Tree_diff.Entries entries);
        (fst (List.nth entries (List.length entries - 1)), h))
      leaves
  in
  let root_bytes = Marshal.to_string (`Root (List.map snd leaf_refs)) [] in
  let root = Store.put store ~children:(List.map snd leaf_refs) root_bytes in
  Hash.Table.replace tbl root (Tree_diff.Children (1, leaf_refs));
  (root, Hash.Table.find tbl)

let test_tree_diff_prunes_and_finds () =
  let store = Store.create () in
  let root1, decode =
    synth_tree store [ [ ("a", "1"); ("b", "2") ]; [ ("c", "3"); ("d", "4") ] ]
  in
  let decode2 = ref decode in
  let root2, d2 =
    synth_tree store [ [ ("a", "1"); ("b", "2") ]; [ ("c", "3"); ("d", "44") ] ]
  in
  (* Merge the decode tables: fall back to the other on Not_found. *)
  let decode h = try d2 h with Not_found -> !decode2 h in
  let diff = Tree_diff.diff ~decode ~left:root1 ~right:root2 in
  Alcotest.(check int) "one diff" 1 (List.length diff);
  let e = List.hd diff in
  Alcotest.(check string) "key d" "d" e.Kv.key;
  Alcotest.(check (option string)) "left" (Some "4") e.Kv.left;
  Alcotest.(check (option string)) "right" (Some "44") e.Kv.right

let test_tree_diff_identical_roots () =
  let store = Store.create () in
  let root, decode = synth_tree store [ [ ("a", "1") ] ] in
  Alcotest.(check int) "no diff" 0
    (List.length (Tree_diff.diff ~decode ~left:root ~right:root))

let test_tree_diff_null_roots () =
  let store = Store.create () in
  let root, decode = synth_tree store [ [ ("a", "1") ] ] in
  let d = Tree_diff.diff ~decode ~left:root ~right:Hash.null in
  Alcotest.(check int) "all left" 1 (List.length d);
  Alcotest.(check bool) "left side" true ((List.hd d).Kv.right = None);
  Alcotest.(check int) "null/null" 0
    (List.length (Tree_diff.diff ~decode ~left:Hash.null ~right:Hash.null))

let test_tree_diff_entries () =
  let store = Store.create () in
  let root, decode =
    synth_tree store [ [ ("a", "1"); ("b", "2") ]; [ ("c", "3") ] ]
  in
  Alcotest.(check (list (pair string string)))
    "flattened" [ ("a", "1"); ("b", "2"); ("c", "3") ]
    (Tree_diff.entries ~decode root)

(* --- dedup metrics ------------------------------------------------------------ *)

let test_dedup_ratio_hand_built () =
  let s = Store.create () in
  (* Two instances sharing one 10-byte node; each has a private 10-byte
     node: union = 30 bytes, sum = 40 → η = 1/4. *)
  let shared = Store.put s "shared-10b" in
  let a = Store.put s ~children:[ shared ] "private-a!" in
  let b = Store.put s ~children:[ shared ] "private-b!" in
  Alcotest.(check (float 1e-9)) "eta" 0.25 (Dedup.dedup_ratio s [ a; b ]);
  Alcotest.(check (float 1e-9)) "sharing" 0.25 (Dedup.node_sharing_ratio s [ a; b ]);
  Alcotest.(check int) "union bytes" 30 (Dedup.union_bytes s [ a; b ]);
  Alcotest.(check int) "sum bytes" 40 (Dedup.sum_bytes s [ a; b ])

let test_dedup_degenerate () =
  let s = Store.create () in
  Alcotest.(check (float 1e-9)) "empty set" 0.0 (Dedup.dedup_ratio s []);
  let a = Store.put s "alone" in
  Alcotest.(check (float 1e-9)) "single instance" 0.0 (Dedup.dedup_ratio s [ a ]);
  Alcotest.(check (float 1e-9)) "identical instances" 0.5
    (Dedup.dedup_ratio s [ a; a ])

let test_analytic_eta () =
  Alcotest.(check (float 1e-9)) "alpha 0" 0.5 (Dedup.analytic_eta ~alpha:0.0);
  Alcotest.(check (float 1e-9)) "alpha 1" 0.0 (Dedup.analytic_eta ~alpha:1.0);
  Alcotest.(check (float 1e-9)) "alpha .2" 0.4 (Dedup.analytic_eta ~alpha:0.2)

(* --- bounds -------------------------------------------------------------------- *)

let test_bounds_shapes () =
  let p = { Bounds.n = 1_000_000; m = 25; b = 10_000; l = 40; delta = 100 } in
  (* MPT lookup is dominated by key length when L > log_m N. *)
  Alcotest.(check (float 1e-9)) "mpt = L" 40.0 (Bounds.cost Bounds.Mpt Bounds.Lookup p);
  (* POS lookup is log_m N. *)
  Alcotest.(check bool) "pos < mpt" true
    (Bounds.cost Bounds.Pos Bounds.Lookup p < Bounds.cost Bounds.Mpt Bounds.Lookup p);
  (* MBT update pays the N/B bucket copy. *)
  Alcotest.(check bool) "mbt update >> mbt lookup" true
    (Bounds.cost Bounds.Mbt Bounds.Update p
    > 2.0 *. Bounds.cost Bounds.Mbt Bounds.Lookup p);
  (* Diff scales by delta. *)
  Alcotest.(check (float 1e-6))
    "diff = delta * lookup"
    (Float.of_int p.delta *. Bounds.cost Bounds.Pos Bounds.Lookup p)
    (Bounds.cost Bounds.Pos Bounds.Diff p)

let test_bounds_table () =
  let rows = Bounds.table Bounds.default in
  Alcotest.(check int) "4 structures" 4 (List.length rows);
  List.iter
    (fun (_, cells) -> Alcotest.(check int) "4 operations" 4 (List.length cells))
    rows

(* --- proof helpers -------------------------------------------------------------- *)

let test_proof_helpers () =
  let p = { Proof.key = "k"; value = Some "v"; nodes = [ "aaa"; "bb" ] } in
  Alcotest.(check int) "size" 5 (Proof.size_bytes p);
  (match Proof.root_hash p with
  | Some h -> Alcotest.(check bool) "root hash" true (Hash.equal h (Hash.of_string "aaa"))
  | None -> Alcotest.fail "expected root hash");
  let tampered = Proof.tamper p in
  Alcotest.(check bool) "tamper changes deepest" true (tampered.nodes <> p.nodes);
  Alcotest.(check bool) "empty proof root" true
    (Proof.root_hash { p with nodes = [] } = None)

let () =
  Alcotest.run "core"
    [ ( "kv",
        [ Alcotest.test_case "sort_ops last wins" `Quick test_sort_ops_last_wins;
          Alcotest.test_case "apply_sorted" `Quick test_apply_sorted;
          Alcotest.test_case "apply_sorted edges" `Quick test_apply_sorted_empty;
          Alcotest.test_case "diff_sorted" `Quick test_diff_sorted;
          Alcotest.test_case "merge policies" `Quick test_merge_policies;
          QCheck_alcotest.to_alcotest qcheck_diff_sorted_symmetry ] );
      ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes ] );
      ( "tree_diff",
        [ Alcotest.test_case "prunes and finds" `Quick test_tree_diff_prunes_and_finds;
          Alcotest.test_case "identical roots" `Quick test_tree_diff_identical_roots;
          Alcotest.test_case "null roots" `Quick test_tree_diff_null_roots;
          Alcotest.test_case "entries" `Quick test_tree_diff_entries ] );
      ( "dedup",
        [ Alcotest.test_case "hand-built page sets" `Quick test_dedup_ratio_hand_built;
          Alcotest.test_case "degenerate cases" `Quick test_dedup_degenerate;
          Alcotest.test_case "analytic eta" `Quick test_analytic_eta ] );
      ( "bounds",
        [ Alcotest.test_case "shapes" `Quick test_bounds_shapes;
          Alcotest.test_case "table" `Quick test_bounds_table ] );
      ( "proof",
        [ Alcotest.test_case "helpers" `Quick test_proof_helpers ] ) ]
