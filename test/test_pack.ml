(* Crash-safe log-structured pack-file store backend.

   The oracle everywhere is exact-prefix recovery with zero wrong reads:
   damage a pack directory — truncate a segment or the offset index at
   EVERY byte offset, flip seeded-random bits, kill a compaction at each
   of its steps — then reopen and assert that every record either reads
   back byte-identical, is cleanly absent, or is refused as [`Tampered].
   A rebuilt offset index must be byte-identical to the persisted one. *)

open Siri_core
module Store = Siri_store.Store
module Hash = Siri_crypto.Hash
module Pack = Siri_pack.Pack
module Segment = Siri_pack.Segment
module Pack_index = Siri_pack.Pack_index
module Fault = Siri_fault.Fault
module Engine = Siri_forkbase.Engine
module Wal = Siri_wal.Wal
module Durable = Siri_wal.Durable
module Telemetry = Siri_telemetry.Telemetry

(* --- scratch directories ---------------------------------------------------- *)

let dir_counter = ref 0

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_dir name f =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "siri-pack-%d-%s-%d" (Unix.getpid ()) name !dir_counter)
  in
  rm_rf d;
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path bytes =
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc

let open_exn ?segment_target ?retry_attempts ?sink dir =
  match Pack.open_ ?segment_target ?retry_attempts ?sink dir with
  | Ok tr -> tr
  | Error (`Tampered msg) -> Alcotest.failf "Pack.open_: %s" msg

(* Distinct nodes with a deterministic payload per index. *)
let node i =
  let bytes = Printf.sprintf "pack-node-%04d:%s" i (String.make (16 + (i mod 23)) (Char.chr (65 + (i mod 26)))) in
  (Hash.of_string bytes, bytes, [])

let nodes n = List.init n node

let seg_path dir id = Filename.concat dir (Segment.filename id)
let index_path dir = Filename.concat dir "index"

(* Assert the zero-wrong-reads contract: every hash in [written] either
   reads back byte-identical, is absent, or raises [`Tampered]; the set
   that reads back must equal [expected] when given. *)
let check_reads ?expected p written =
  let readable = ref [] in
  List.iter
    (fun (h, bytes, children) ->
      match Pack.get p h with
      | Some (b, c) ->
          Alcotest.(check string) "payload survives verbatim" bytes b;
          Alcotest.(check int) "children survive" (List.length children)
            (List.length c);
          readable := h :: !readable
      | None -> ()
      | exception Store.Tampered _ -> ())
    written;
  match expected with
  | None -> ()
  | Some exp ->
      let got = List.sort Hash.compare !readable in
      let exp = List.sort Hash.compare exp in
      Alcotest.(check (list string))
        "readable set is the exact expected prefix"
        (List.map Hash.to_hex exp) (List.map Hash.to_hex got)

(* --- roundtrip -------------------------------------------------------------- *)

let test_roundtrip () =
  with_dir "roundtrip" @@ fun dir ->
  let written = nodes 150 in
  let p, r = open_exn ~segment_target:2048 dir in
  Alcotest.(check bool) "fresh open is not a rebuild" false r.Pack.index_rebuilt;
  Pack.append p written;
  Pack.flush p;
  Alcotest.(check int) "count" 150 (Pack.count p);
  Alcotest.(check bool) "rolled into several segments" true
    (List.length (Pack.segment_ids p) > 1);
  (* dedup: re-appending is a no-op *)
  let before = Pack.stored_bytes p in
  Pack.append p written;
  Alcotest.(check int) "content-addressed dedup" before (Pack.stored_bytes p);
  check_reads p written ~expected:(List.map (fun (h, _, _) -> h) written);
  Pack.close p;
  (* clean reopen: O(index), no rescan *)
  let p2, r2 = open_exn ~segment_target:2048 dir in
  Alcotest.(check bool) "clean reopen uses the persisted index" false
    r2.Pack.index_rebuilt;
  Alcotest.(check int) "no tail adoption needed" 0 r2.Pack.adopted;
  check_reads p2 written ~expected:(List.map (fun (h, _, _) -> h) written);
  Alcotest.(check (list string)) "scrub is clean" []
    (List.map Hash.to_hex (Pack.scrub p2));
  Pack.close p2

(* Un-synced tail: append more after the last index sync, reopen, and the
   tail must be adopted by scanning — not lost, not a full rebuild. *)
let test_tail_adoption () =
  with_dir "tail-adopt" @@ fun dir ->
  let first = nodes 20 in
  let p, _ = open_exn dir in
  Pack.append p first;
  Pack.flush p;
  Pack.sync_index p;
  (* more appends, flushed to the file but the index never re-synced *)
  let extra = List.init 7 (fun i -> node (1000 + i)) in
  Pack.append p extra;
  Pack.flush p;
  (* abandon without close: the persisted index now under-covers the file *)
  let p2, r2 = open_exn dir in
  Alcotest.(check bool) "not a full rebuild" false r2.Pack.index_rebuilt;
  Alcotest.(check int) "tail records adopted" 7 r2.Pack.adopted;
  check_reads p2 (first @ extra)
    ~expected:(List.map (fun (h, _, _) -> h) (first @ extra));
  Pack.close p2

(* --- truncation at every byte offset ----------------------------------------- *)

let test_segment_truncation_every_offset () =
  with_dir "trunc-seg" @@ fun dir ->
  let written = nodes 18 in
  let p, _ = open_exn dir in
  Pack.append p written;
  Pack.close p;
  let pristine_seg = read_file (seg_path dir 0) in
  let pristine_idx = read_file (index_path dir) in
  let boundaries =
    match Segment.scan pristine_seg with
    | Ok s -> List.map (fun (h, off, len) -> (h, off + len)) s.Segment.records
    | Error _ -> Alcotest.fail "pristine segment must scan"
  in
  for cut = 0 to String.length pristine_seg - 1 do
    write_file (seg_path dir 0) (String.sub pristine_seg 0 cut);
    write_file (index_path dir) pristine_idx;
    let p, r = open_exn dir in
    (* index coverage exceeds the file: rebuild, clamping the torn tail *)
    Alcotest.(check bool)
      (Printf.sprintf "cut@%d rebuilds" cut)
      true r.Pack.index_rebuilt;
    let expected =
      List.filter_map (fun (h, e) -> if e <= cut then Some h else None) boundaries
    in
    let writtens =
      List.filter (fun (h, _, _) -> List.exists (Hash.equal h) expected) written
    in
    Alcotest.(check int)
      (Printf.sprintf "cut@%d keeps the exact record prefix" cut)
      (List.length expected) (Pack.count p);
    check_reads p written ~expected:(List.map (fun (h, _, _) -> h) writtens);
    Pack.close p
  done

let test_index_truncation_every_offset () =
  with_dir "trunc-idx" @@ fun dir ->
  let written = nodes 15 in
  let p, _ = open_exn dir in
  Pack.append p written;
  Pack.close p;
  let pristine_idx = read_file (index_path dir) in
  let all = List.map (fun (h, _, _) -> h) written in
  for cut = 0 to String.length pristine_idx - 1 do
    write_file (index_path dir) (String.sub pristine_idx 0 cut);
    let p, r = open_exn dir in
    Alcotest.(check bool)
      (Printf.sprintf "idx-cut@%d rebuilds" cut)
      true r.Pack.index_rebuilt;
    Alcotest.(check int)
      (Printf.sprintf "idx-cut@%d loses nothing" cut)
      0 r.Pack.clamped_bytes;
    check_reads p written ~expected:all;
    Pack.close p
  done;
  (* missing index entirely *)
  Sys.remove (index_path dir);
  let p, r = open_exn dir in
  Alcotest.(check bool) "missing index rebuilds" true r.Pack.index_rebuilt;
  check_reads p written ~expected:all;
  Pack.close p

(* Appends after a torn-tail clamp extend the valid prefix. *)
let test_append_after_clamp () =
  with_dir "append-after-clamp" @@ fun dir ->
  let written = nodes 10 in
  let p, _ = open_exn dir in
  Pack.append p written;
  Pack.close p;
  let blob = read_file (seg_path dir 0) in
  write_file (seg_path dir 0) (String.sub blob 0 (String.length blob - 5));
  let p2, r2 = open_exn dir in
  Alcotest.(check bool) "tail clamped" true (r2.Pack.clamped_bytes > 0);
  let fresh = node 777 in
  Pack.append p2 [ fresh ];
  Pack.close p2;
  let p3, r3 = open_exn dir in
  Alcotest.(check bool) "reopen after clamp+append is clean" false
    r3.Pack.index_rebuilt;
  let kept = List.filteri (fun i _ -> i < 9) written in
  check_reads p3 (fresh :: written)
    ~expected:(List.map (fun (h, _, _) -> h) (fresh :: kept));
  Pack.close p3

(* --- bit flips --------------------------------------------------------------- *)

(* A mid-segment flip with a still-valid index: the open is cheap (no
   scan), the damaged record surfaces as [`Tampered] on read and in the
   scrub — and through [Store.scrub] once attached. *)
let test_midsegment_flip_tampered () =
  with_dir "flip-mid" @@ fun dir ->
  let written = nodes 12 in
  let p, _ = open_exn dir in
  Pack.append p written;
  Pack.close p;
  let blob = read_file (seg_path dir 0) in
  let victim_h, victim_off, victim_len =
    match Segment.scan blob with
    | Ok s -> List.nth s.Segment.records 3
    | Error _ -> Alcotest.fail "pristine scan"
  in
  (* flip one payload byte inside record 3 *)
  let b = Bytes.of_string blob in
  let pos = victim_off + victim_len - 2 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
  write_file (seg_path dir 0) (Bytes.to_string b);
  let p2, r2 = open_exn dir in
  Alcotest.(check bool) "open itself stays O(index)" false r2.Pack.index_rebuilt;
  (match Pack.get p2 victim_h with
  | exception Store.Tampered h ->
      Alcotest.(check string) "`Tampered names the victim" (Hash.to_hex victim_h)
        (Hash.to_hex h)
  | _ -> Alcotest.fail "flipped record must raise `Tampered");
  Alcotest.(check (list string))
    "pack scrub pinpoints the victim"
    [ Hash.to_hex victim_h ]
    (List.map Hash.to_hex (Pack.scrub p2));
  (* the attached store's scrub merges the backend report *)
  let store = Store.create () in
  Pack.attach p2 store;
  let report = Store.scrub store in
  Alcotest.(check bool) "Store.scrub sees the pack corruption" true
    (List.exists (Hash.equal victim_h) report.Store.corrupt);
  Pack.close p2

let test_flip_storms () =
  with_dir "flip-storm" @@ fun dir ->
  let written = nodes 25 in
  let p, _ = open_exn dir in
  Pack.append p written;
  Pack.close p;
  let pristine_seg = read_file (seg_path dir 0) in
  let pristine_idx = read_file (index_path dir) in
  for seed = 1 to 40 do
    let damaged, hits = Fault.flip_blob ~seed ~rate:0.002 pristine_seg in
    write_file (seg_path dir 0) damaged;
    write_file (index_path dir) pristine_idx;
    (match Pack.open_ dir with
    | Error (`Tampered _) -> ()  (* refused outright: fine *)
    | Ok (p, _) ->
        (* zero wrong reads, whatever survived *)
        check_reads p written;
        Pack.close p);
    ignore hits
  done;
  (* flip storms over the index: always recoverable by rebuild *)
  write_file (seg_path dir 0) pristine_seg;
  for seed = 1 to 40 do
    let damaged, hits = Fault.flip_blob ~seed ~rate:0.005 pristine_idx in
    write_file (index_path dir) damaged;
    let p, r = open_exn dir in
    if hits <> [] then
      Alcotest.(check bool)
        (Printf.sprintf "idx-flip seed %d rebuilds" seed)
        true r.Pack.index_rebuilt;
    check_reads p written ~expected:(List.map (fun (h, _, _) -> h) written);
    Pack.close p
  done

(* --- rebuilt index is byte-identical (qcheck) -------------------------------- *)

let qcheck_rebuild_identity =
  let gen =
    QCheck.(
      pair (int_range 1 120) (int_range 1 1_000_000)
      |> map (fun (n, salt) -> (n, salt)))
  in
  QCheck.Test.make ~name:"index rebuilt from segments == persisted index"
    ~count:25 gen (fun (n, salt) ->
      with_dir "qcheck-rebuild" @@ fun dir ->
      let written =
        List.init n (fun i ->
            let bytes = Printf.sprintf "q-%d-%d-%s" salt i (String.make (i mod 37) 'z') in
            (Hash.of_string bytes, bytes, []))
      in
      let p, _ = open_exn ~segment_target:1024 dir in
      Pack.append p written;
      Pack.close p;
      let persisted = read_file (index_path dir) in
      Sys.remove (index_path dir);
      let p2, r2 = open_exn ~segment_target:1024 dir in
      let rebuilt_flag = r2.Pack.index_rebuilt in
      Pack.close p2;
      let rebuilt = read_file (index_path dir) in
      rebuilt_flag && String.equal persisted rebuilt)

(* --- compaction kill-points --------------------------------------------------- *)

exception Kill

let test_compaction_kill_points () =
  let all = nodes 60 in
  let live_nodes = List.filteri (fun i _ -> i mod 3 <> 0) all in
  let live =
    Hash.Set.of_list (List.map (fun (h, _, _) -> h) live_nodes)
  in
  let all_hs = List.map (fun (h, _, _) -> h) all in
  let live_hs = List.map (fun (h, _, _) -> h) live_nodes in
  List.iter
    (fun kill_at ->
      with_dir ("kill-" ^ kill_at) @@ fun dir ->
      let p, _ = open_exn ~segment_target:1500 dir in
      Pack.append p all;
      Pack.flush p;
      Pack.sync_index p;
      (match
         Pack.compact p ~live ~on_step:(fun s ->
             if String.equal s kill_at then raise Kill)
       with
      | (_ : Hash.t list) -> Alcotest.fail "kill point did not fire"
      | exception Kill -> ());
      (* the crashed process is gone; a fresh open decides the outcome *)
      let p2, _ = open_exn ~segment_target:1500 dir in
      let expected =
        (* strictly before the manifest flip: the old set, intact.
           at/after it: exactly the live set.  Never a mix. *)
        match kill_at with
        | "begin" | "segments-written" | "index-written" -> all_hs
        | _ -> live_hs
      in
      check_reads p2 all ~expected;
      Alcotest.(check (list string)) "no corruption either way" []
        (List.map Hash.to_hex (Pack.scrub p2));
      Pack.close p2)
    [ "begin"; "segments-written"; "index-written"; "manifest"; "cleanup" ]

let test_compaction_drops_and_survives () =
  with_dir "compact" @@ fun dir ->
  let all = nodes 40 in
  let live_nodes = List.filteri (fun i _ -> i < 25) all in
  let live = Hash.Set.of_list (List.map (fun (h, _, _) -> h) live_nodes) in
  let p, _ = open_exn ~segment_target:1200 dir in
  Pack.append p all;
  let old_segs = Pack.segment_ids p in
  let dropped = Pack.compact p ~live in
  Alcotest.(check int) "dropped count" 15 (List.length dropped);
  Alcotest.(check bool) "fresh segment ids" true
    (List.for_all
       (fun id -> not (List.mem id old_segs))
       (Pack.segment_ids p));
  check_reads p all ~expected:(List.map (fun (h, _, _) -> h) live_nodes);
  (* old segment files are gone *)
  List.iter
    (fun id ->
      Alcotest.(check bool) "old segment deleted" false
        (Sys.file_exists (seg_path dir id)))
    old_segs;
  (* appends keep working after the swap *)
  let fresh = node 9999 in
  Pack.append p [ fresh ];
  check_reads p [ fresh ] ~expected:[ (fun (h, _, _) -> h) fresh ];
  Pack.close p;
  let p2, r2 = open_exn ~segment_target:1200 dir in
  Alcotest.(check bool) "clean reopen after compaction" false
    r2.Pack.index_rebuilt;
  check_reads p2 (fresh :: all)
    ~expected:((fun (h, _, _) -> h) fresh :: List.map (fun (h, _, _) -> h) live_nodes);
  Pack.close p2

(* --- retry / transient gates --------------------------------------------------- *)

let test_with_retry () =
  let sink = Telemetry.create () in
  let calls = ref 0 in
  (* two transients, then success: retried within the budget *)
  let r =
    Fault.with_retry ~attempts:3 ~sink (fun () ->
        incr calls;
        if !calls < 3 then raise (Store.Transient Hash.null) else "ok")
  in
  Alcotest.(check bool) "succeeds after retries" true (r = Ok "ok");
  Alcotest.(check int) "three probes" 3 !calls;
  Alcotest.(check int) "retry.attempt" 2 (Telemetry.counter sink "retry.attempt");
  Alcotest.(check int) "no give_up" 0 (Telemetry.counter sink "retry.give_up");
  (* permanent transient: bounded, surrendered, telemetered *)
  let slept = ref [] in
  let r2 =
    Fault.with_retry ~attempts:4 ~backoff_s:0.001
      ~sleep:(fun d -> slept := d :: !slept)
      ~sink
      (fun () -> raise (Store.Transient Hash.null))
  in
  (match r2 with
  | Error (`Transient _) -> ()
  | _ -> Alcotest.fail "must surface `Transient after giving up");
  Alcotest.(check int) "give_up counted" 1 (Telemetry.counter sink "retry.give_up");
  Alcotest.(check (list (float 1e-9))) "exponential backoff"
    [ 0.001; 0.002; 0.004 ] (List.rev !slept);
  (* non-transient errors return immediately *)
  let r3 = Fault.with_retry ~attempts:5 (fun () -> raise Not_found) in
  (match r3 with
  | Error (`Missing _) -> ()
  | _ -> Alcotest.fail "non-transient must not retry")

let test_with_retry_jitter () =
  (* Full jitter: with ~jitter:seed each pause is cap * u_i where
     cap = backoff * 2^i and u_i is the i-th draw of Rng.create seed —
     so the schedule is exactly reproducible, and every pause stays
     inside [0, cap), which is what stops a thundering herd of clients
     from retrying in lockstep. *)
  let schedule ~seed ~backoff ~attempts =
    let slept = ref [] in
    (match
       Fault.with_retry ~attempts ~backoff_s:backoff ~jitter:seed
         ~sleep:(fun d -> slept := d :: !slept)
         (fun () -> raise (Store.Transient Hash.null))
     with
    | Error (`Transient _) -> ()
    | _ -> Alcotest.fail "must give up");
    List.rev !slept
  in
  let got = schedule ~seed:11 ~backoff:0.001 ~attempts:4 in
  let rng = Rng.create 11 in
  let expected =
    List.map (fun i -> 0.001 *. float_of_int (1 lsl i) *. Rng.float rng) [ 0; 1; 2 ]
  in
  Alcotest.(check (list (float 1e-12))) "pinned jittered schedule" expected got;
  List.iteri
    (fun i d ->
      let cap = 0.001 *. float_of_int (1 lsl i) in
      Alcotest.(check bool)
        (Printf.sprintf "pause %d in [0, cap)" i)
        true
        (d >= 0.0 && d < cap))
    got;
  (* deterministic: same seed, same schedule *)
  Alcotest.(check (list (float 1e-12))) "same seed reproduces"
    got
    (schedule ~seed:11 ~backoff:0.001 ~attempts:4);
  (* decorrelated: a different seed gives a different schedule *)
  Alcotest.(check bool) "different seed differs" true
    (schedule ~seed:12 ~backoff:0.001 ~attempts:4 <> got);
  (* no jitter argument: the undithered exponential schedule is unchanged *)
  let slept = ref [] in
  ignore
    (Fault.with_retry ~attempts:3 ~backoff_s:0.01
       ~sleep:(fun d -> slept := d :: !slept)
       (fun () -> raise (Store.Transient Hash.null)));
  Alcotest.(check (list (float 1e-9))) "no-jitter schedule intact"
    [ 0.01; 0.02 ] (List.rev !slept)

let test_io_gate_transients () =
  with_dir "gate" @@ fun dir ->
  let written = nodes 30 in
  let sink = Telemetry.create () in
  let p, _ = open_exn ~retry_attempts:3 ~sink dir in
  Pack.append p written;
  Pack.flush p;
  (* a flaky disk that fails one read in five: every get still succeeds,
     through retries *)
  let gate = Fault.io_gate (Fault.plan ~transient:0.2 ~seed:42 ()) in
  Pack.set_read_gate p (Some gate);
  check_reads p written ~expected:(List.map (fun (h, _, _) -> h) written);
  Alcotest.(check bool) "transients were injected" true
    (Fault.io_transients gate > 0);
  Alcotest.(check bool) "retries recorded" true
    (Telemetry.counter sink "retry.attempt" > 0);
  Alcotest.(check int) "nothing surrendered" 0
    (Telemetry.counter sink "retry.give_up");
  (* a dead disk: transient every time, bounded surrender *)
  let dead = Fault.io_gate (Fault.plan ~transient:1.0 ~seed:7 ()) in
  Pack.set_read_gate p (Some dead);
  let h, _, _ = List.hd written in
  (match Pack.get p h with
  | exception Store.Transient _ -> ()
  | _ -> Alcotest.fail "dead disk must surface `Transient");
  Alcotest.(check bool) "give_up recorded" true
    (Telemetry.counter sink "retry.give_up" > 0);
  (* flips and truncations injected by the gate are caught by the frame
     digest: `Tampered, never a wrong read *)
  let lossy = Fault.io_gate (Fault.plan ~bit_flip:0.5 ~truncate:0.5 ~seed:3 ()) in
  Pack.set_read_gate p (Some lossy);
  List.iter
    (fun (h, bytes, _) ->
      match Pack.get p h with
      | Some (b, _) -> Alcotest.(check string) "verified read" bytes b
      | None -> Alcotest.fail "indexed node cannot vanish"
      | exception Store.Tampered _ -> ())
    written;
  Alcotest.(check bool) "damage was injected" true
    (Fault.io_flips lossy + Fault.io_truncations lossy > 0);
  Pack.set_read_gate p None;
  Pack.close p

(* --- store integration --------------------------------------------------------- *)

let test_store_write_through_and_drop_hot () =
  with_dir "store" @@ fun dir ->
  let p, _ = open_exn dir in
  let store = Store.create () in
  Pack.attach p store;
  Alcotest.(check (option string)) "backend name" (Some "pack")
    (Store.backend_name store);
  let leaves =
    List.init 30 (fun i ->
        let bytes = Printf.sprintf "leaf-%02d" i in
        (Store.put store bytes, bytes))
  in
  let root_bytes = "root-node" in
  let root = Store.put store ~children:(List.map fst leaves) root_bytes in
  (* hot and cold tiers agree *)
  Store.drop_hot store;
  List.iter
    (fun (h, bytes) ->
      Alcotest.(check string) "cold read == hot value" bytes (Store.get store h))
    ((root, root_bytes) :: leaves);
  Alcotest.(check int) "children come back from the pack" 30
    (List.length (Store.children store root));
  Alcotest.(check bool) "mem through the backend" true (Store.mem store root);
  Pack.close p

let test_store_gc_compacts_backend () =
  with_dir "gc" @@ fun dir ->
  let p, _ = open_exn ~segment_target:1024 dir in
  let store = Store.create () in
  Pack.attach p store;
  let keep = List.init 10 (fun i -> Store.put store (Printf.sprintf "keep-%d" i)) in
  let drop = List.init 10 (fun i -> Store.put store (Printf.sprintf "drop-%d" i)) in
  let root = Store.put store ~children:keep "gc-root" in
  let reclaimed = Store.gc store ~roots:[ root ] in
  Alcotest.(check int) "dead nodes reclaimed in both tiers" 10 reclaimed;
  List.iter
    (fun h ->
      Alcotest.(check bool) "dropped from the pack too" false (Pack.mem p h))
    drop;
  List.iter
    (fun h -> Alcotest.(check bool) "live survives in pack" true (Pack.mem p h))
    (root :: keep);
  (* cold reads of the live set still verify after compaction *)
  Store.drop_hot store;
  Alcotest.(check string) "root readable cold" "gc-root" (Store.get store root);
  Pack.close p

(* --- durable engine on the pack backend ----------------------------------------- *)

let mk_mpt () = Siri_mpt.Mpt.generic (Siri_mpt.Mpt.empty (Store.create ()))

let state engine =
  List.map
    (fun b ->
      let h = Engine.head engine b in
      (b, Hash.to_hex h.Engine.id, Hash.to_hex h.Engine.index_root))
    (Engine.branches engine)

let state_testable = Alcotest.(list (triple string string string))

let script =
  [ ("master", [ Kv.Put ("a", "1"); Kv.Put ("b", "2") ]);
    ("master", [ Kv.Put ("c", "3"); Kv.Del "a" ]);
    ("master", [ Kv.Put ("d", "4") ]);
    ("master", [ Kv.Put ("a", "5"); Kv.Put ("e", "6") ]) ]

let open_durable_exn ?sync ~backend dir =
  match Durable.open_ ?sync ~backend ~dir ~empty_index:(mk_mpt ()) () with
  | Ok t -> t
  | Error e -> Alcotest.failf "Durable.open_: %a" Wal.pp_error e

let run_script ?(checkpoint_after = -1) dir =
  let t = open_durable_exn ~sync:false ~backend:`Pack dir in
  List.iteri
    (fun i (branch, ops) ->
      ignore (Durable.commit t ~branch ~message:(Printf.sprintf "c%d" i) ops
              : Engine.commit);
      if i = checkpoint_after then Durable.checkpoint t)
    script;
  let s = state (Durable.engine t) in
  Durable.close t;
  s

let test_durable_pack_reopen () =
  with_dir "durable" @@ fun dir ->
  let final = run_script dir in
  let t = open_durable_exn ~sync:false ~backend:`Pack dir in
  Alcotest.check state_testable "replayed state == committed state" final
    (state (Durable.engine t));
  Alcotest.(check int) "all records replayed (no checkpoint)"
    (List.length script) (Durable.recovery t).Durable.replayed;
  (* reads go through: hot table was rebuilt by replay *)
  Alcotest.(check (option string)) "value" (Some "5")
    (Durable.get t ~branch:"master" "a");
  Durable.close t

let test_durable_pack_checkpoint () =
  with_dir "durable-ckpt" @@ fun dir ->
  let final = run_script ~checkpoint_after:1 dir in
  (* no snapshot file was ever written: the pack is the node storage *)
  Alcotest.(check bool) "no store.<gen> snapshot" false
    (Sys.file_exists (Filename.concat dir "store.1"));
  Alcotest.(check bool) "heads file exists" true
    (Sys.file_exists (Filename.concat dir "store.1.heads"));
  let t = open_durable_exn ~sync:false ~backend:`Pack dir in
  Alcotest.check state_testable "state after checkpointed reopen" final
    (state (Durable.engine t));
  Alcotest.(check int) "only post-checkpoint records replayed" 2
    (Durable.recovery t).Durable.replayed;
  Alcotest.(check int) "generation advanced" 1
    (Durable.recovery t).Durable.generation;
  Durable.close t;
  (* lose the pack's offset index: recovery rebuilds it from segments *)
  Sys.remove (Filename.concat (Durable.pack_dir dir) "index");
  let t2 = open_durable_exn ~sync:false ~backend:`Pack dir in
  Alcotest.check state_testable "state after index rebuild" final
    (state (Durable.engine t2));
  Durable.close t2

let test_durable_pack_journal_crash () =
  with_dir "durable-crash" @@ fun dir ->
  (* snapshot the state after every commit, then truncate the journal at
     every byte offset and require recovery to an exact prefix *)
  let t = open_durable_exn ~sync:false ~backend:`Pack dir in
  let states = ref [ state (Durable.engine t) ] in
  List.iteri
    (fun i (branch, ops) ->
      ignore (Durable.commit t ~branch ~message:(Printf.sprintf "c%d" i) ops
              : Engine.commit);
      states := state (Durable.engine t) :: !states)
    script;
  let ends = ref [] in
  Durable.close t;
  let states = Array.of_list (List.rev !states) in
  let journal = read_file (Durable.journal_path dir) in
  (match Wal.scan journal with
  | Ok s -> ends := s.Wal.ends
  | Error _ -> Alcotest.fail "pristine journal must scan");
  let record_ends = Array.of_list !ends in
  let pack_backup = ref [] in
  let pack_d = Durable.pack_dir dir in
  Array.iter
    (fun name ->
      let p = Filename.concat pack_d name in
      if not (Sys.is_directory p) then pack_backup := (p, read_file p) :: !pack_backup)
    (Sys.readdir pack_d);
  for cut = 0 to String.length journal - 1 do
    write_file (Durable.journal_path dir) (String.sub journal 0 cut);
    List.iter (fun (p, blob) -> write_file p blob) !pack_backup;
    let t = open_durable_exn ~sync:false ~backend:`Pack dir in
    let survived =
      Array.fold_left (fun acc e -> if e <= cut then acc + 1 else acc) 0
        record_ends
    in
    Alcotest.check state_testable
      (Printf.sprintf "journal cut@%d recovers exactly %d records" cut survived)
      states.(survived)
      (state (Durable.engine t));
    Durable.close t
  done

(* --- registration ------------------------------------------------------------- *)

let () =
  let qcheck = QCheck_alcotest.to_alcotest in
  Alcotest.run "pack"
    [ ( "roundtrip",
        [ Alcotest.test_case "append/get/reopen/dedup" `Quick test_roundtrip;
          Alcotest.test_case "un-synced tail is adopted" `Quick
            test_tail_adoption;
          Alcotest.test_case "append after torn-tail clamp" `Quick
            test_append_after_clamp ] );
      ( "torn-write crash simulator",
        [ Alcotest.test_case "segment truncation at every byte offset" `Slow
            test_segment_truncation_every_offset;
          Alcotest.test_case "index truncation at every byte offset" `Slow
            test_index_truncation_every_offset ] );
      ( "corruption",
        [ Alcotest.test_case "mid-segment flip is `Tampered + scrubbed" `Quick
            test_midsegment_flip_tampered;
          Alcotest.test_case "seeded flip storms: zero wrong reads" `Quick
            test_flip_storms ] );
      ("index properties", [ qcheck qcheck_rebuild_identity ]);
      ( "compaction",
        [ Alcotest.test_case "drop + rewrite + swap" `Quick
            test_compaction_drops_and_survives;
          Alcotest.test_case "kill at every step: old or new, never a mix"
            `Quick test_compaction_kill_points ] );
      ( "retry",
        [ Alcotest.test_case "with_retry semantics + telemetry" `Quick
            test_with_retry;
          Alcotest.test_case "with_retry full-jitter schedule" `Quick
            test_with_retry_jitter;
          Alcotest.test_case "io gates: transient/flip/truncate" `Quick
            test_io_gate_transients ] );
      ( "store backend",
        [ Alcotest.test_case "write-through + drop_hot cold reads" `Quick
            test_store_write_through_and_drop_hot;
          Alcotest.test_case "gc compacts the pack and stays coherent" `Quick
            test_store_gc_compacts_backend ] );
      ( "durable engine",
        [ Alcotest.test_case "commit/replay/reopen equality" `Quick
            test_durable_pack_reopen;
          Alcotest.test_case "checkpoint: pack fsync + heads, no snapshot"
            `Quick test_durable_pack_checkpoint;
          Alcotest.test_case "journal truncation at every byte offset" `Slow
            test_durable_pack_journal_crash ] ) ]
