# Tier-1 gate: everything a change must pass before it lands.
#
#   make check   — build, run the full test battery (under the pinned
#                  QCHECK_SEED from test/dune, so failures reproduce
#                  identically everywhere), then smoke-run the telemetry
#                  pipeline end to end: `siri-cli stats` must print
#                  per-structure counters and latency quantiles for all
#                  four indexes on a sample workload.
#   make crash   — run the WAL crash simulator on its own: every-byte-offset
#                  truncation plus seeded bit-flip storms against the commit
#                  journal, for all four index structures.  The seed is
#                  pinned so a failure reproduces identically everywhere.
#   make par     — run the parallel-commit determinism suite twice, with the
#                  pool width forced to 1 and to 4 via SIRI_DOMAINS: the
#                  root-hash and accounting equalities must hold at both.
#   make read    — run the read-path suite twice, with the decoded-node
#                  cache forced off and to its 64 MiB default via
#                  SIRI_NODE_CACHE: cached and uncached answers must agree.
#   make pack    — run the pack-backend crash simulator on its own:
#                  every-byte-offset truncation of segments, offset index
#                  and journal, seeded bit-flip storms, compaction
#                  kill-points, and the rebuilt-index ≡ persisted-index
#                  property, under the same pinned seed.
#   make proof   — run the multiproof suites on their own: the differential
#                  single-proof oracle, the adversarial flip storm, the
#                  wire-codec every-offset harness, and the proof-cache
#                  invalidation checks, twice — with the proof cache off
#                  (default) and forced on via SIRI_PROOF_CACHE — under the
#                  same pinned seed.
#   make serve   — run the server suite with the crash-kill harness scaled
#                  up: SIRI_SERVE_ROUNDS=25 SIGKILLs the real siri_serve
#                  binary at 25 seeded points per backend (50 total) under
#                  concurrent client traffic, asserting every acked commit
#                  survives recovery, every unacked one is atomically
#                  present-or-absent, and no phantom commits appear.
#   make shard   — run the sharded-keyspace suite with the crash harness
#                  scaled up: SIRI_SHARD_ROUNDS=15 SIGKILLs a committing
#                  child at 15 seeded points mid-multi-shard-fan-out and
#                  asserts all-or-clamped recovery — every shard rolls back
#                  to the same published composite prefix, never a mix of
#                  shard generations — plus the top-journal truncation sweep
#                  and the tampered-proof zero-acceptance storm.
#   make scan    — run the ordered-read + reshard suite with the crash
#                  harness scaled up: SIRI_SCAN_ROUNDS=25 SIGKILLs a child
#                  flipping the layout 4 <-> 8 at 25 seeded points per
#                  backend (50 total) and asserts recovery lands on the old
#                  or the new generation — never a mix — with every durably
#                  acked swap preserved and the dataset intact, plus the
#                  scan-vs-sorted-assoc differential across every ordered
#                  index kind and the single-shard routing fanout pin.
#   make bench-sidecars — fail loudly if any committed BENCH_*.json metrics
#                  sidecar is missing or empty (regenerate with
#                  `dune exec bench/main.exe -- <id>`).
#   make quick   — tier-1 without the slow cases: everything alcotest marks
#                  `Slow (the SIGKILL storms, the every-offset truncation
#                  sweeps and the qcheck property tests) is skipped via
#                  ALCOTEST_QUICK_TESTS.

DUNE ?= dune
QCHECK_SEED ?= 20260806

SIDECARS = BENCH_proof.json BENCH_pack.json BENCH_parallel.json \
           BENCH_readpath.json BENCH_server.json BENCH_shard.json \
           BENCH_scan.json

.PHONY: all build test quick smoke crash par read pack proof serve shard scan bench-sidecars check bench clean

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

quick:
	ALCOTEST_QUICK_TESTS=1 $(DUNE) runtest --force

smoke: build
	$(DUNE) exec bin/siri_cli.exe -- stats --records 1000 --ops 500

crash: build
	QCHECK_SEED=$(QCHECK_SEED) $(DUNE) exec test/test_wal.exe

par: build
	SIRI_DOMAINS=1 QCHECK_SEED=$(QCHECK_SEED) $(DUNE) exec test/test_parallel.exe
	SIRI_DOMAINS=4 QCHECK_SEED=$(QCHECK_SEED) $(DUNE) exec test/test_parallel.exe

read: build
	SIRI_NODE_CACHE=0 QCHECK_SEED=$(QCHECK_SEED) $(DUNE) exec test/test_readpath.exe
	SIRI_NODE_CACHE=67108864 QCHECK_SEED=$(QCHECK_SEED) $(DUNE) exec test/test_readpath.exe

pack: build
	QCHECK_SEED=$(QCHECK_SEED) $(DUNE) exec test/test_pack.exe

proof: build
	QCHECK_SEED=$(QCHECK_SEED) $(DUNE) exec test/test_proof.exe
	SIRI_PROOF_CACHE=1048576 QCHECK_SEED=$(QCHECK_SEED) $(DUNE) exec test/test_proof.exe

serve: build
	SIRI_SERVE_ROUNDS=25 QCHECK_SEED=$(QCHECK_SEED) $(DUNE) exec test/test_server.exe

shard: build
	SIRI_SHARD_ROUNDS=15 QCHECK_SEED=$(QCHECK_SEED) $(DUNE) exec test/test_shard.exe

scan: build
	SIRI_SCAN_ROUNDS=25 QCHECK_SEED=$(QCHECK_SEED) $(DUNE) exec test/test_scan.exe

bench-sidecars:
	@missing=0; for f in $(SIDECARS); do \
	  if [ ! -s $$f ]; then \
	    echo "MISSING bench sidecar: $$f (regenerate: dune exec bench/main.exe -- $${f#BENCH_})" | sed 's/\.json)/)/'; \
	    missing=1; \
	  fi; \
	done; \
	if [ $$missing -ne 0 ]; then exit 1; fi; \
	echo "bench-sidecars: OK"

check: build test smoke crash par read pack proof serve shard scan bench-sidecars
	@echo "check: OK"

bench:
	$(DUNE) exec bench/main.exe

clean:
	$(DUNE) clean
