# Tier-1 gate: everything a change must pass before it lands.
#
#   make check   — build, run the full test battery (under the pinned
#                  QCHECK_SEED from test/dune, so failures reproduce
#                  identically everywhere), then smoke-run the telemetry
#                  pipeline end to end: `siri-cli stats` must print
#                  per-structure counters and latency quantiles for all
#                  four indexes on a sample workload.

DUNE ?= dune

.PHONY: all build test smoke check bench clean

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

smoke: build
	$(DUNE) exec bin/siri_cli.exe -- stats --records 1000 --ops 500

check: build test smoke
	@echo "check: OK"

bench:
	$(DUNE) exec bench/main.exe

clean:
	$(DUNE) clean
