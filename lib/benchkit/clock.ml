let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let x = f () in
  (x, now () -. t0)

let time_unit f = snd (time f)

let throughput ~ops ~seconds =
  if seconds <= 0.0 then 0.0 else Float.of_int ops /. seconds
