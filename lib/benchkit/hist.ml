type t = { mutable samples : float list; mutable sorted : float array option }

let create () = { samples = []; sorted = None }

let add t x =
  t.samples <- x :: t.samples;
  t.sorted <- None

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
      let a = Array.of_list t.samples in
      Array.sort Float.compare a;
      t.sorted <- Some a;
      a

let count t = List.length t.samples

let mean t =
  match t.samples with
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. Float.of_int (List.length l)

let min_value t =
  let a = sorted t in
  if Array.length a = 0 then 0.0 else a.(0)

let max_value t =
  let a = sorted t in
  if Array.length a = 0 then 0.0 else a.(Array.length a - 1)

let percentile t p =
  let a = sorted t in
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let rank = Float.to_int (Float.of_int (n - 1) *. p) in
    a.(max 0 (min (n - 1) rank))
  end

let buckets t ~n =
  let a = sorted t in
  if Array.length a = 0 || n <= 0 then []
  else begin
    let lo = a.(0) and hi = a.(Array.length a - 1) in
    let width = if hi > lo then (hi -. lo) /. Float.of_int n else 1.0 in
    let counts = Array.make n 0 in
    Array.iter
      (fun x ->
        let i = min (n - 1) (Float.to_int ((x -. lo) /. width)) in
        counts.(i) <- counts.(i) + 1)
      a;
    List.init n (fun i ->
        (lo +. (Float.of_int i *. width), lo +. (Float.of_int (i + 1) *. width), counts.(i)))
  end

let pp_summary fmt t =
  let us x = x *. 1e6 in
  Format.fprintf fmt "n=%d mean=%.2fus p50=%.2fus p99=%.2fus max=%.2fus"
    (count t) (us (mean t))
    (us (percentile t 0.5))
    (us (percentile t 0.99))
    (us (max_value t))
