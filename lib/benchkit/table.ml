let fmt_float x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else if Float.abs x >= 1000.0 then Printf.sprintf "%.0f" x
  else if Float.abs x >= 1.0 then Printf.sprintf "%.2f" x
  else Printf.sprintf "%.4f" x

let fmt_bytes n =
  let f = Float.of_int n in
  if f >= 1_073_741_824.0 then Printf.sprintf "%.2f GB" (f /. 1_073_741_824.0)
  else if f >= 1_048_576.0 then Printf.sprintf "%.2f MB" (f /. 1_048_576.0)
  else if f >= 1024.0 then Printf.sprintf "%.2f KB" (f /. 1024.0)
  else Printf.sprintf "%d B" n

let print ?(out = stdout) ~title ~headers rows =
  let all = headers :: rows in
  let cols = List.length headers in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let render row =
    String.concat "  "
      (List.mapi
         (fun c cell ->
           let w = List.nth widths c in
           if c = 0 then Printf.sprintf "%-*s" w cell
           else Printf.sprintf "%*s" w cell)
         row)
  in
  let rule =
    String.concat "--"
      (List.map (fun w -> String.make w '-') widths)
  in
  Printf.fprintf out "\n== %s ==\n%s\n%s\n" title (render headers) rule;
  List.iter (fun row -> Printf.fprintf out "%s\n" (render row)) rows;
  flush out

let series ?(out = stdout) ~title ~x_label ~columns rows =
  print ~out ~title ~headers:(x_label :: columns)
    (List.map (fun (x, ys) -> x :: List.map fmt_float ys) rows)
