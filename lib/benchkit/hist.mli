(** Sample collections for latency distributions (Figures 10–12). *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val min_value : t -> float
val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t 0.99] — nearest-rank percentile; 0 on an empty
    collection. *)

val buckets : t -> n:int -> (float * float * int) list
(** Split [min, max] into [n] equal-width ranges and count samples in each —
    the (latency-range, #records) histograms the paper plots. *)

val pp_summary : Format.formatter -> t -> unit
(** "n=… mean=… p50=… p99=… max=…" with times in microseconds. *)
