(** Wall-clock timing helpers for the benchmark harness. *)

val now : unit -> float
(** Seconds since the epoch, microsecond resolution. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed seconds. *)

val time_unit : (unit -> unit) -> float

val throughput : ops:int -> seconds:float -> float
(** Operations per second (0 when [seconds] = 0). *)
