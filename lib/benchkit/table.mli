(** Aligned text tables and gnuplot-style series for benchmark output. *)

val print :
  ?out:out_channel -> title:string -> headers:string list ->
  string list list -> unit
(** Column-aligned table with a title rule. *)

val series :
  ?out:out_channel ->
  title:string ->
  x_label:string ->
  columns:string list ->
  (string * float list) list ->
  unit
(** One row per x point: [(x, [y per column])] — the data behind a figure,
    printable or plottable as-is. *)

val fmt_float : float -> string
(** Compact rendering: integers without decimals, small values with
    precision. *)

val fmt_bytes : int -> string
(** Human units: "1.5 MB". *)
