open Siri_crypto
module Store = Siri_store.Store

let union_set store roots = Store.reachable_many store roots

let union_bytes store roots = Store.bytes_of_set store (union_set store roots)

let sum_bytes store roots =
  List.fold_left
    (fun acc root -> acc + Store.bytes_of_set store (Store.reachable store root))
    0 roots

let union_nodes store roots = Hash.Set.cardinal (union_set store roots)

let sum_nodes store roots =
  List.fold_left
    (fun acc root -> acc + Hash.Set.cardinal (Store.reachable store root))
    0 roots

let ratio union total =
  if total = 0 then 0.0 else 1.0 -. (Float.of_int union /. Float.of_int total)

let dedup_ratio store roots =
  ratio (union_bytes store roots) (sum_bytes store roots)

let node_sharing_ratio store roots =
  ratio (union_nodes store roots) (sum_nodes store roots)

let analytic_eta ~alpha = 0.5 -. (alpha /. 2.0)
