open Siri_crypto
module Wire = Siri_codec.Wire
module Frame = Siri_codec.Frame

type t = {
  claims : (Kv.key * Kv.value option) list;
  nodes : string list;
}

let keys t = List.map fst t.claims
let find t k = List.assoc_opt k t.claims

let root_hash t =
  match t.nodes with
  | [] -> None
  | first :: _ -> Some (Hash.of_string first)

let size_bytes t =
  List.fold_left (fun acc n -> acc + String.length n) 0 t.nodes

let well_formed t =
  let rec strictly_sorted = function
    | [] | [ _ ] -> true
    | (a, _) :: ((b, _) :: _ as rest) ->
        String.compare a b < 0 && strictly_sorted rest
  in
  strictly_sorted t.claims

(* --- traversal adapters --------------------------------------------------- *)

let recorder ~get =
  let seen = Hash.Table.create 16 in
  let acc = ref [] in
  let fetch h =
    match Hash.Table.find_opt seen h with
    | Some bytes -> bytes
    | None ->
        let bytes = get h in
        Hash.Table.add seen h bytes;
        acc := bytes :: !acc;
        bytes
  in
  (fetch, fun () -> List.rev !acc)

exception Rejected

let consumer nodes =
  let remaining = ref nodes in
  let memo = Hash.Table.create 16 in
  let fetch h =
    match Hash.Table.find_opt memo h with
    | Some bytes -> bytes
    | None -> (
        match !remaining with
        | [] -> raise Rejected
        | bytes :: rest ->
            if not (Hash.equal (Hash.of_string bytes) h) then raise Rejected;
            remaining := rest;
            Hash.Table.add memo h bytes;
            bytes)
  in
  (fetch, fun () -> !remaining = [])

(* --- tamper helpers ------------------------------------------------------- *)

let nth_mod t index =
  let n = List.length t.nodes in
  if n = 0 then invalid_arg "Multiproof: no nodes to tamper with";
  ((index mod n) + n) mod n

let flip_node t ~index ~pos =
  let i = nth_mod t index in
  { t with
    nodes =
      List.mapi
        (fun j bytes ->
          if j <> i then bytes
          else begin
            let b = Bytes.of_string (if bytes = "" then "x" else bytes) in
            let p = pos mod Bytes.length b in
            Bytes.set b p (Char.chr (Char.code (Bytes.get b p) lxor 1));
            Bytes.to_string b
          end)
        t.nodes }

let drop_node t ~index =
  let i = nth_mod t index in
  { t with nodes = List.filteri (fun j _ -> j <> i) t.nodes }

let swap_nodes t ~i ~j =
  let a = nth_mod t i and b = nth_mod t j in
  let arr = Array.of_list t.nodes in
  let tmp = arr.(a) in
  arr.(a) <- arr.(b);
  arr.(b) <- tmp;
  { t with nodes = Array.to_list arr }

let set_claim t key value =
  { t with
    claims =
      List.map (fun (k, v) -> if String.equal k key then (k, value) else (k, v))
        t.claims }

let tamper t =
  match t.nodes with
  | [] -> (
      (* Same convention as {!Proof.tamper}: with no nodes to damage,
         corrupt the claims instead. *)
      match t.claims with
      | (k, _) :: _ -> set_claim t k (Some "tampered")
      | [] -> { t with claims = [ ("tampered", Some "tampered") ] })
  | _ :: _ -> flip_node t ~index:(List.length t.nodes - 1) ~pos:0

(* --- wire codec ------------------------------------------------------------ *)

let version = 1

let common_prefix_len a b =
  let n = min (String.length a) (String.length b) in
  let i = ref 0 in
  while !i < n && a.[!i] = b.[!i] do incr i done;
  !i

let encode t =
  let w = Wire.Writer.create ~capacity:(size_bytes t + 256) () in
  Wire.Writer.u8 w version;
  Wire.Writer.varint w (List.length t.claims);
  let first_value_at = Hashtbl.create 16 in
  let prev = ref "" in
  List.iteri
    (fun i (k, v) ->
      (* Front-coded key: length shared with the previous key + suffix. *)
      let lcp = common_prefix_len !prev k in
      Wire.Writer.varint w lcp;
      Wire.Writer.str w (String.sub k lcp (String.length k - lcp));
      prev := k;
      (match v with
      | None -> Wire.Writer.u8 w 0
      | Some value -> (
          match Hashtbl.find_opt first_value_at value with
          | Some j ->
              Wire.Writer.u8 w 2;
              Wire.Writer.varint w j
          | None ->
              Hashtbl.add first_value_at value i;
              Wire.Writer.u8 w 1;
              Wire.Writer.str w value)))
    t.claims;
  Wire.Writer.varint w (List.length t.nodes);
  List.iter (fun n -> Wire.Writer.str w n) t.nodes;
  Frame.encode (Wire.Writer.contents w)

let encoded_size t = String.length (encode t)

let parse_payload r =
  let malformed msg = Error (`Malformed msg) in
  if Wire.Reader.u8 r <> version then malformed "unknown multiproof version"
  else begin
    let n_claims = Wire.Reader.varint r in
    (* Each claim costs at least three payload bytes, so a count beyond the
       remaining length is garbage — reject before allocating for it. *)
    if n_claims > Wire.Reader.remaining r then malformed "claim count too large"
    else begin
    let claims = Array.make (max n_claims 1) ("", None) in
    let prev = ref "" in
    let ok = ref true and err = ref "" in
    let fail msg =
      ok := false;
      err := msg
    in
    (try
       for i = 0 to n_claims - 1 do
         if !ok then begin
           let lcp = Wire.Reader.varint r in
           if lcp > String.length !prev then fail "bad key prefix length"
           else begin
             let suffix = Wire.Reader.str r in
             let k = String.sub !prev 0 lcp ^ suffix in
             if i > 0 && String.compare !prev k >= 0 then
               fail "claims not strictly sorted"
             else begin
               prev := k;
               match Wire.Reader.u8 r with
               | 0 -> claims.(i) <- (k, None)
               | 1 -> claims.(i) <- (k, Some (Wire.Reader.str r))
               | 2 -> (
                   let j = Wire.Reader.varint r in
                   if j >= i then fail "forward value back-reference"
                   else
                     match snd claims.(j) with
                     | Some _ as v -> claims.(i) <- (k, v)
                     | None -> fail "back-reference to an absence claim")
               | _ -> fail "unknown claim tag"
             end
           end
         end
       done;
       if !ok then begin
         let n_nodes = Wire.Reader.varint r in
         let nodes = List.init n_nodes (fun _ -> Wire.Reader.str r) in
         if not (Wire.Reader.at_end r) then
           malformed "trailing bytes in multiproof payload"
         else Ok { claims = Array.to_list (Array.sub claims 0 n_claims); nodes }
       end
       else malformed !err
     with Wire.Reader.Truncated -> malformed "truncated multiproof payload")
    end
  end

let decode s =
  match Frame.step s ~pos:0 with
  | Frame { payload_off; payload_len; next } when next = String.length s ->
      parse_payload (Wire.Reader.of_substring s ~off:payload_off ~len:payload_len)
  | Frame _ -> Error (`Malformed "trailing bytes after multiproof frame")
  | End -> Error (`Malformed "empty multiproof")
  | Torn _ -> Error (`Malformed "torn multiproof frame")
  | Corrupt -> Error (`Tampered "multiproof frame checksum mismatch")
