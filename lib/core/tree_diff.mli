(** Hash-pruned diff for ordered Merkle search trees (POS-Tree, MVMB+-Tree,
    Prolly Tree).

    Structural invariance makes identical key ranges materialize as identical
    nodes, so the diff walks both trees top-down and discards every subtree
    whose hash appears on both sides; only the [O(δ)] differing regions are
    ever decoded (the Diff bound of Section 4.1.3). *)

open Siri_crypto

type node =
  | Entries of (Kv.key * Kv.value) list
      (** a leaf: its sorted records *)
  | Children of int * (Kv.key * Hash.t) list
      (** an internal node: its height (leaf = 0, so height ≥ 1 here) and
          sorted (split-key, child-hash) pairs *)

val diff :
  decode:(Hash.t -> node) -> left:Hash.t -> right:Hash.t -> Kv.diff_entry list
(** [decode] maps a node hash to its shape; {!Hash.null} roots denote empty
    trees and are never passed to [decode]. *)

val entries : decode:(Hash.t -> node) -> Hash.t -> (Kv.key * Kv.value) list
(** All records under a root, in key order. *)
