type t = { key : Kv.key; value : Kv.value option; nodes : string list }

let root_hash t =
  match t.nodes with
  | [] -> None
  | first :: _ -> Some (Siri_crypto.Hash.of_string first)

let size_bytes t =
  List.fold_left (fun acc n -> acc + String.length n) 0 t.nodes

let tamper t =
  match List.rev t.nodes with
  | [] -> { t with value = Some "tampered" }
  | deepest :: rest ->
      let b = Bytes.of_string (if deepest = "" then "x" else deepest) in
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
      { t with nodes = List.rev (Bytes.to_string b :: rest) }
