(** Shared deployment network constants (Section 5.6).

    The single source of truth for the simulated testbed links: the
    {!Siri_forkbase.Remote} cost simulation and the real server
    benchmark's configuration both read these values, so the simulated
    and measured deployment paths cannot silently diverge. *)

type link = {
  rtt_s : float;  (** per-request round-trip latency, seconds *)
  bandwidth_bps : float;  (** payload bytes per second *)
}

val gigabit_lan : link
(** 0.2 ms RTT, 1 Gb/s — the paper's testbed network. *)

val http_overhead : link
(** The Noms HTTP setup: 1 ms per request, same bandwidth. *)

val transfer_s : link -> int -> float
(** [transfer_s link bytes] — one request's network time: RTT plus
    payload transfer at link bandwidth. *)
