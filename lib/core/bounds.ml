type params = { n : int; m : int; b : int; l : int; delta : int }

let default = { n = 1_000_000; m = 25; b = 10_000; l = 20; delta = 1_000 }

type structure = Mpt | Mbt | Pos | Mvbt
type operation = Lookup | Update | Diff | Merge

let structure_name = function
  | Mpt -> "MPT"
  | Mbt -> "MBT"
  | Pos -> "POS-Tree"
  | Mvbt -> "MVMB+-Tree"

let operation_name = function
  | Lookup -> "lookup"
  | Update -> "update"
  | Diff -> "diff"
  | Merge -> "merge"

let logf base x =
  if x <= 1.0 then 0.0 else Float.max 1.0 (log x /. log base)

let cost s op p =
  let n = Float.of_int p.n
  and m = Float.of_int p.m
  and b = Float.of_int p.b
  and l = Float.of_int p.l
  and d = Float.of_int p.delta in
  let single = function
    | Mpt -> Float.max l (logf m n)
    | Mbt -> logf m b +. logf 2.0 (n /. b)
    | Pos | Mvbt -> logf m n
  in
  let update = function
    (* Updates add node copying: MBT copies an N/B-sized bucket. *)
    | Mbt -> logf m b +. (n /. b)
    | s -> single s
  in
  match op with
  | Lookup -> single s
  | Update -> update s
  | Diff -> d *. single s
  | Merge -> d *. update s

let table p =
  List.map
    (fun s ->
      ( structure_name s,
        List.map
          (fun op -> (operation_name op, cost s op p))
          [ Lookup; Update; Diff; Merge ] ))
    [ Mpt; Mbt; Pos; Mvbt ]
