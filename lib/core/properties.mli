(** Checkers for the three SIRI properties of Definition 3.1.

    Each checker takes a [build] function that constructs an instance from a
    record list (all builds must target the same store so that page sets are
    comparable) and decides the property on concrete data.  They are used by
    the test suite to certify MPT/MBT/POS-Tree as SIRI — and to certify that
    the MVMB+-Tree baseline is *not* structurally invariant, and that the
    ablated POS-Tree variants of Section 5.5 lose the expected property. *)

type build = (Kv.key * Kv.value) list -> Generic.t

val structurally_invariant :
  build:build ->
  entries:(Kv.key * Kv.value) list ->
  permutations:int ->
  seed:int ->
  bool
(** Build the same record set in [permutations] shuffled insertion orders
    (one record batch per insertion, so intermediate shapes differ) and check
    all roots coincide: P(I) = P(I') ⇐ R(I) = R(I'). *)

val recursively_identical :
  build:build -> entries:(Kv.key * Kv.value) list -> extra:Kv.key * Kv.value ->
  bool
(** With R(I) = R(I') + r:  |P(I) ∩ P(I')| ≥ |P(I) − P(I')|. *)

val universally_reusable :
  build:build ->
  entries:(Kv.key * Kv.value) list ->
  more:(Kv.key * Kv.value) list ->
  bool
(** There is a node p ∈ P(I) and a strictly larger instance I' with
    p ∈ P(I'); checked by growing I with [more] records. *)
