type key = string
type value = string
type op = Put of key * value | Del of key

let key_of_op = function Put (k, _) -> k | Del k -> k

let sort_ops ops =
  (* Stable sort, then keep the last op for each key: tag with position so
     the later op in the original batch wins. *)
  let tagged = List.mapi (fun i op -> (i, op)) ops in
  let sorted =
    List.sort
      (fun (i, a) (j, b) ->
        match String.compare (key_of_op a) (key_of_op b) with
        | 0 -> compare i j
        | c -> c)
      tagged
  in
  let rec dedup = function
    | (_, a) :: ((_, b) :: _ as rest) when key_of_op a = key_of_op b ->
        dedup rest
    | (_, a) :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted

let apply_sorted entries ops =
  let rec go entries ops acc =
    match (entries, ops) with
    | [], [] -> List.rev acc
    | [], Put (k, v) :: ops -> go [] ops ((k, v) :: acc)
    | [], Del _ :: ops -> go [] ops acc
    | e :: rest, [] -> go rest [] (e :: acc)
    | ((ek, _) as e) :: erest, op :: orest -> (
        let ok = key_of_op op in
        match String.compare ek ok with
        | c when c < 0 -> go erest ops (e :: acc)
        | 0 -> (
            match op with
            | Put (k, v) -> go erest orest ((k, v) :: acc)
            | Del _ -> go erest orest acc)
        | _ -> (
            match op with
            | Put (k, v) -> go entries orest ((k, v) :: acc)
            | Del _ -> go entries orest acc))
  in
  go entries ops []

type diff_entry = { key : key; left : value option; right : value option }

let pp_diff_entry fmt { key; left; right } =
  let pp_v fmt = function
    | None -> Format.pp_print_string fmt "-"
    | Some v ->
        if String.length v > 16 then
          Format.fprintf fmt "%S..." (String.sub v 0 16)
        else Format.fprintf fmt "%S" v
  in
  Format.fprintf fmt "%S: %a | %a" key pp_v left pp_v right

let diff_sorted l r =
  let rec go l r acc =
    match (l, r) with
    | [], [] -> List.rev acc
    | (k, v) :: l, [] -> go l [] ({ key = k; left = Some v; right = None } :: acc)
    | [], (k, v) :: r -> go [] r ({ key = k; left = None; right = Some v } :: acc)
    | (lk, lv) :: l', (rk, rv) :: r' -> (
        match String.compare lk rk with
        | c when c < 0 ->
            go l' r ({ key = lk; left = Some lv; right = None } :: acc)
        | 0 ->
            if String.equal lv rv then go l' r' acc
            else
              go l' r' ({ key = lk; left = Some lv; right = Some rv } :: acc)
        | _ -> go l r' ({ key = rk; left = None; right = Some rv } :: acc))
  in
  go l r []

type merge_policy =
  | Prefer_left
  | Prefer_right
  | Fail_on_conflict
  | Resolve of (key -> value -> value -> value)

type conflict = { key : key; left_value : value; right_value : value }

let merge_values policy key left_value right_value =
  if String.equal left_value right_value then Ok left_value
  else
    match policy with
    | Prefer_left -> Ok left_value
    | Prefer_right -> Ok right_value
    | Fail_on_conflict -> Error { key; left_value; right_value }
    | Resolve f -> Ok (f key left_value right_value)
