open Siri_crypto

type build = (Kv.key * Kv.value) list -> Generic.t

let structurally_invariant ~build ~entries ~permutations ~seed =
  let rng = Rng.create seed in
  let reference = (build entries).Generic.root in
  let rec loop i =
    if i >= permutations then true
    else
      let shuffled = Rng.shuffle rng entries in
      (* Insert one by one so that intermediate structures differ. *)
      let inst =
        List.fold_left
          (fun inst (k, v) -> Generic.insert inst k v)
          (build []) shuffled
      in
      Hash.equal inst.Generic.root reference && loop (i + 1)
  in
  loop 0

let recursively_identical ~build ~entries ~extra =
  let smaller = build entries in
  let larger = Generic.insert smaller (fst extra) (snd extra) in
  let p = Generic.page_set larger and p' = Generic.page_set smaller in
  let inter = Hash.Set.cardinal (Hash.Set.inter p p') in
  let minus = Hash.Set.cardinal (Hash.Set.diff p p') in
  inter >= minus

let universally_reusable ~build ~entries ~more =
  (* The property is existential ("there always exists a larger instance"),
     so keep growing the record set until the page set genuinely grows —
     a small extension can merge into existing chunks without adding
     nodes. *)
  let inst = build entries in
  let p = Generic.page_set inst in
  let rec attempt round extra =
    round <= 8
    &&
    let bigger = Generic.of_entries inst extra in
    let p' = Generic.page_set bigger in
    if
      Hash.Set.cardinal p' > Hash.Set.cardinal p
      && not (Hash.Set.is_empty (Hash.Set.inter p p'))
    then true
    else
      attempt (round + 1)
        (extra
        @ List.map (fun (k, v) -> (Printf.sprintf "%s~%d" k round, v)) extra)
  in
  attempt 0 more
