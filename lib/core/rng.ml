(* splitmix64-style generator truncated to OCaml's 63-bit native ints. *)

type t = { mutable state : int }

let mix z =
  let z = (z lxor (z lsr 30)) * 0x2F51AFD7ED558CC5 land max_int in
  let z = (z lxor (z lsr 27)) * 0x24F6CCEFDF541052 land max_int in
  z lxor (z lsr 31)

let next t =
  t.state <- (t.state + 0x1E3779B97F4A7C15) land max_int;
  mix t.state

let create seed = { state = mix (seed land max_int) }
let split t = { state = mix (next t) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bound << 2^62 keeps bias negligible
     for workload generation. *)
  next t mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t = Float.of_int (next t land 0x3FFFFFFFFFFFFF) /. 18014398509481984.0
let bool t = next t land 1 = 1

let alnum = "abcdefghijklmnopqrstuvwxyz0123456789"
let char_alnum t = alnum.[int t (String.length alnum)]
let string_alnum t n = String.init n (fun _ -> char_alnum t)
let bytes_random t n = String.init n (fun _ -> Char.chr (int t 256))

let shuffle t l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
