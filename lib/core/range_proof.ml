open Siri_crypto

type t = {
  lo : Kv.key option;
  hi : Kv.key option;
  entries : (Kv.key * Kv.value) list;
  nodes : string list;
}

let size_bytes t = List.fold_left (fun acc n -> acc + String.length n) 0 t.nodes

let in_range ~lo ~hi k =
  (match lo with None -> true | Some l -> String.compare k l >= 0)
  && match hi with None -> true | Some h -> String.compare k h <= 0

(* Child i of an internal node covers (split_{i-1}, split_i]; it intersects
   [lo, hi] iff split_i >= lo and split_{i-1} < hi (with open sides for the
   first child and unbounded queries). *)
let child_intersects ~lo ~hi ~prev_split ~split =
  (match lo with None -> true | Some l -> String.compare split l >= 0)
  && (match (hi, prev_split) with
     | None, _ | _, None -> true
     | Some h, Some p -> String.compare p h < 0)

let prove ~get ~decode ~root ~lo ~hi =
  if Hash.is_null root then { lo; hi; entries = []; nodes = [] }
  else begin
    let nodes = ref [] in
    let entries = ref [] in
    let rec walk h =
      let bytes = get h in
      nodes := bytes :: !nodes;
      match decode bytes with
      | Tree_diff.Entries es ->
          List.iter (fun (k, v) -> if in_range ~lo ~hi k then entries := (k, v) :: !entries) es
      | Tree_diff.Children (_, refs) ->
          let prev = ref None in
          List.iter
            (fun (split, child) ->
              if child_intersects ~lo ~hi ~prev_split:!prev ~split then walk child;
              prev := Some split)
            refs
    in
    walk root;
    { lo; hi; entries = List.rev !entries; nodes = List.rev !nodes }
  end

exception Bad

let verify ~decode ~root t =
  let lo = t.lo and hi = t.hi in
  if Hash.is_null root then t.nodes = [] && t.entries = []
  else begin
    (* Replay the pruned pre-order traversal, consuming nodes in order. *)
    let queue = ref t.nodes in
    let collected = ref [] in
    let next expected =
      match !queue with
      | [] -> raise Bad
      | bytes :: rest ->
          if not (Hash.equal (Hash.of_string bytes) expected) then raise Bad;
          queue := rest;
          bytes
    in
    let rec walk h =
      let bytes = next h in
      match decode bytes with
      | exception Bad -> raise Bad
      | exception _ -> raise Bad
      | Tree_diff.Entries es ->
          List.iter
            (fun (k, v) -> if in_range ~lo ~hi k then collected := (k, v) :: !collected)
            es
      | Tree_diff.Children (_, refs) ->
          let prev = ref None in
          List.iter
            (fun (split, child) ->
              if child_intersects ~lo ~hi ~prev_split:!prev ~split then walk child;
              prev := Some split)
            refs
    in
    match walk root with
    | () -> !queue = [] && List.rev !collected = t.entries
    | exception Bad -> false
  end
