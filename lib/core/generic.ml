open Siri_crypto
module Store = Siri_store.Store
module Node_cache = Siri_readpath.Node_cache
module Bloom = Siri_readpath.Bloom
module Telemetry = Siri_telemetry.Telemetry

exception Unsupported of string

type t = {
  name : string;
  store : Store.t;
  root : Hash.t;
  lookup : Kv.key -> Kv.value option;
  get_many : Kv.key list -> (Kv.key * Kv.value option) list;
  path_length : Kv.key -> int;
  batch : Kv.op list -> t;
  bulk_load : (Kv.key * Kv.value) list -> t;
  to_list : unit -> (Kv.key * Kv.value) list;
  cardinal : unit -> int;
  diff : Hash.t -> Kv.diff_entry list;
  merge : Kv.merge_policy -> Hash.t -> (t, Kv.conflict list) result;
  prove : Kv.key -> Proof.t;
  verify : root:Hash.t -> Proof.t -> bool;
  prove_many : Kv.key list -> Multiproof.t;
  verify_many : root:Hash.t -> Multiproof.t -> bool;
  reopen : Hash.t -> t;
  range : lo:Kv.key option -> hi:Kv.key option -> (Kv.key * Kv.value) list;
  scan : lo:Kv.key option -> hi:Kv.key option -> (Kv.key * Kv.value) Seq.t;
}

let insert t k v = t.batch [ Kv.Put (k, v) ]
let remove t k = t.batch [ Kv.Del k ]
let of_entries t entries = t.batch (List.map (fun (k, v) -> Kv.Put (k, v)) entries)

let register_filter t entries =
  if not (Hash.is_null t.root) then
    Store.set_root_filter t.store t.root
      (Bloom.of_keys (List.map fst entries))

let load_sorted t entries =
  let loaded = t.bulk_load entries in
  register_filter loaded entries;
  loaded

(* --- filtered, tiered reads -------------------------------------------------

   [get]/[get_many] are the read front door: they consult the version's
   negative-lookup filter before any traversal, and classify each
   traversal's latency by whether it was served from the decoded-node
   cache ([read.lookup.hit]: no cache miss during the walk) or had to
   decode ([read.lookup.miss]).  The raw [t.lookup]/[t.get_many] closures
   stay available for callers that want the untiered path. *)

let lookup_tiered t k =
  let sink = Store.sink t.store in
  if not (Telemetry.enabled sink) then t.lookup k
  else begin
    let cache = Store.cache t.store in
    let misses_before = Node_cache.misses cache in
    let start = Telemetry.now sink in
    let r = t.lookup k in
    let stop = Telemetry.now sink in
    let tier =
      if Node_cache.misses cache = misses_before then "read.lookup.hit"
      else "read.lookup.miss"
    in
    Telemetry.incr sink tier;
    Telemetry.observe sink tier (stop -. start);
    r
  end

let filter_blocks t k =
  match Store.root_filter t.store t.root with
  | Some f -> not (Bloom.mem f k)
  | None -> false

let get t k =
  if filter_blocks t k then begin
    Telemetry.incr (Store.sink t.store) "read.filter.skip";
    None
  end
  else lookup_tiered t k

let get_many t ks =
  match Store.root_filter t.store t.root with
  | None -> t.get_many ks
  | Some f ->
      (* Answer definite misses from the filter alone; batch-walk the rest
         and re-interleave in input order. *)
      let sink = Store.sink t.store in
      let walked =
        List.filter (Bloom.mem f) ks |> t.get_many |> List.to_seq
        |> Hashtbl.of_seq
      in
      List.map
        (fun k ->
          match Hashtbl.find_opt walked k with
          | Some v -> (k, v)
          | None ->
              Telemetry.incr sink "read.filter.skip";
              (k, None))
        ks

(* --- ordered streaming reads ------------------------------------------------

   [scan] is the ordered-read front door: a lazy key-ordered stream over
   the half-open interval [lo, hi).  Laziness is the whole point — the
   shard router concatenates / k-way-merges these without forcing them,
   and the server streams bounded chunks off one.  [range_count] drains
   (up to [limit]) without building the list. *)

let scan ?lo ?hi t =
  Telemetry.incr (Store.sink t.store) (t.name ^ ".scan");
  t.scan ~lo ~hi

let range_count ?lo ?hi ?limit t =
  let seq = scan ?lo ?hi t in
  let rec count n seq =
    match limit with
    | Some l when n >= l -> n
    | _ -> ( match seq () with Seq.Nil -> n | Seq.Cons (_, tl) -> count (n + 1) tl)
  in
  count 0 seq

(* --- cached multiproof serving ----------------------------------------------

   [prove_many] is the proof-serving front door: identical requests (same
   version root, same key set) return the memoized multiproof from the
   store's proof cache instead of re-walking the tree and re-reading every
   path node.  Multiproofs are immutable values over immutable versions,
   so the only coherence hazard is the store mutating bytes under a hash —
   the same tamper/gc primitives that invalidate the decoded-node cache
   clear the proof cache too.  Note the Bloom filter is deliberately NOT
   consulted here: a filter miss answers [None] fast but unprovably, while
   an absence claim in a multiproof must carry its witnessing nodes. *)

module Proof_cache = Siri_readpath.Proof_cache

type Proof_cache.repr += Cached_multiproof of Multiproof.t

let prove_many t keys =
  let keys = List.sort_uniq String.compare keys in
  let pc = Store.proof_cache t.store in
  if not (Proof_cache.enabled pc) then t.prove_many keys
  else begin
    let ck = Proof_cache.cache_key ~root:t.root keys in
    match Proof_cache.find pc ck with
    | Some (Cached_multiproof mp) -> mp
    | _ ->
        let mp = t.prove_many keys in
        Proof_cache.insert pc ck ~cost:(Multiproof.size_bytes mp)
          (Cached_multiproof mp);
        mp
  end

let verify_many t ~root mp = t.verify_many ~root mp

let page_set t = Store.reachable t.store t.root
let node_count t = Hash.Set.cardinal (page_set t)
let total_bytes t = Store.bytes_of_set t.store (page_set t)
