open Siri_crypto
module Store = Siri_store.Store

type t = {
  name : string;
  store : Store.t;
  root : Hash.t;
  lookup : Kv.key -> Kv.value option;
  path_length : Kv.key -> int;
  batch : Kv.op list -> t;
  bulk_load : (Kv.key * Kv.value) list -> t;
  to_list : unit -> (Kv.key * Kv.value) list;
  cardinal : unit -> int;
  diff : Hash.t -> Kv.diff_entry list;
  merge : Kv.merge_policy -> Hash.t -> (t, Kv.conflict list) result;
  prove : Kv.key -> Proof.t;
  verify : root:Hash.t -> Proof.t -> bool;
  reopen : Hash.t -> t;
  range : lo:Kv.key option -> hi:Kv.key option -> (Kv.key * Kv.value) list;
}

let insert t k v = t.batch [ Kv.Put (k, v) ]
let remove t k = t.batch [ Kv.Del k ]
let of_entries t entries = t.batch (List.map (fun (k, v) -> Kv.Put (k, v)) entries)
let load_sorted t entries = t.bulk_load entries
let page_set t = Store.reachable t.store t.root
let node_count t = Hash.Set.cardinal (page_set t)
let total_bytes t = Store.bytes_of_set t.store (page_set t)
