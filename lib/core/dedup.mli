(** Deduplication metrics (Sections 4.2 and 5.4.2).

    For a set of index instances S = {I₁ … I_k} with page sets P₁ … P_k:

    - deduplication ratio  η(S) = 1 − byte(⋃Pᵢ) / Σ byte(Pᵢ)
    - node sharing ratio        = 1 − |⋃Pᵢ| / Σ |Pᵢ|

    Both are computed from reachability over the content-addressed store, so
    they apply uniformly to every index kind. *)

open Siri_crypto
module Store = Siri_store.Store

val union_bytes : Store.t -> Hash.t list -> int
(** byte(P₁ ∪ … ∪ P_k) for the instances rooted at the given hashes. *)

val sum_bytes : Store.t -> Hash.t list -> int
(** byte(P₁) + … + byte(P_k). *)

val union_nodes : Store.t -> Hash.t list -> int
val sum_nodes : Store.t -> Hash.t list -> int

val dedup_ratio : Store.t -> Hash.t list -> float
(** η of the instance set; 0 when no pages are shared, → 1 when almost all
    are.  Returns 0 for an empty or all-empty set. *)

val node_sharing_ratio : Store.t -> Hash.t list -> float

val analytic_eta : alpha:float -> float
(** The paper's closed form for sequentially evolved versions:
    η ≈ 1/2 − α/2, where α is the fraction of records changed between
    consecutive versions (holds for MBT and POS-Tree; MPT deviates with key
    length, Section 4.2.2). *)
