(** Asymptotic operation bounds of Section 4.1, as evaluable cost models.

    These return the dominant term of each complexity expression (unit:
    abstract "node visits"), so benchmarks can print the predicted growth
    next to measured numbers and check the *shape* of the curves. *)

type params = {
  n : int;  (** total records N *)
  m : int;  (** fanout of POS-Tree / MBT (entries per node) *)
  b : int;  (** MBT bucket count B *)
  l : int;  (** key length in nibbles, L *)
  delta : int;  (** differing records δ for diff/merge *)
}

val default : params
(** N = 1_000_000, m = 25, B = 10_000, L = 20, δ = 1_000. *)

type structure = Mpt | Mbt | Pos | Mvbt
type operation = Lookup | Update | Diff | Merge

val structure_name : structure -> string
val operation_name : operation -> string

val cost : structure -> operation -> params -> float
(** Predicted cost:
    - MPT lookup/update: max(L, log_m N)
    - MBT lookup/update: log_m B + log₂(N/B) for lookup, log_m B + N/B update
    - POS / MVMB+ lookup/update: log_m N
    - diff/merge: δ × the structure's lookup/update-style term. *)

val table : params -> (string * (string * float) list) list
(** Rows (structure, [(operation, cost)]) — the Section 4.1 summary. *)
