(** Verifiable range scans over ordered Merkle search trees (POS-Tree,
    MVMB+-Tree, Prolly Tree).

    A range proof for [lo, hi] contains, in pre-order, the serialized bytes
    of every node whose key range intersects the query interval.  A verifier
    holding only the trusted root digest replays the pruned traversal —
    re-hashing each node and descending exactly into the intersecting
    children — and recovers the complete, authenticated set of records in
    the range: nothing can be added, dropped or reordered without breaking
    the hash chain.

    Bounds are inclusive; [None] means unbounded on that side, so
    [lo = None, hi = None] is a proof of the entire record set. *)

open Siri_crypto

type t = {
  lo : Kv.key option;
  hi : Kv.key option;
  entries : (Kv.key * Kv.value) list;  (** claimed records, sorted *)
  nodes : string list;  (** intersecting nodes, pre-order from the root *)
}

val size_bytes : t -> int

val prove :
  get:(Hash.t -> string) ->
  decode:(string -> Tree_diff.node) ->
  root:Hash.t ->
  lo:Kv.key option ->
  hi:Kv.key option ->
  t
(** Build a proof from a store view.  [decode] interprets node bytes as the
    index's leaf/internal shape (the same adapter used by {!Tree_diff}). *)

val verify :
  decode:(string -> Tree_diff.node) -> root:Hash.t -> t -> bool
(** Re-hash and replay; [true] iff the node chain matches [root] and the
    claimed [entries] are exactly the in-range records it authenticates. *)
