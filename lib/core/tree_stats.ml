open Siri_crypto

type level = {
  height : int;
  nodes : int;
  bytes : int;
  entries : int;
  min_node_bytes : int;
  max_node_bytes : int;
}

type t = {
  levels : level list;
  total_nodes : int;
  total_bytes : int;
  records : int;
  height : int;
}

let collect ~get ~decode ~root =
  let visited = Hash.Table.create 256 in
  let acc : (int, level) Hashtbl.t = Hashtbl.create 8 in
  let bump ~height ~bytes ~entries =
    let cur =
      match Hashtbl.find_opt acc height with
      | Some l -> l
      | None ->
          { height;
            nodes = 0;
            bytes = 0;
            entries = 0;
            min_node_bytes = max_int;
            max_node_bytes = 0 }
    in
    Hashtbl.replace acc height
      { cur with
        nodes = cur.nodes + 1;
        bytes = cur.bytes + bytes;
        entries = cur.entries + entries;
        min_node_bytes = min cur.min_node_bytes bytes;
        max_node_bytes = max cur.max_node_bytes bytes }
  in
  let rec walk h =
    if (not (Hash.is_null h)) && not (Hash.Table.mem visited h) then begin
      Hash.Table.add visited h ();
      let bytes = get h in
      match decode bytes with
      | Tree_diff.Entries es ->
          bump ~height:0 ~bytes:(String.length bytes) ~entries:(List.length es)
      | Tree_diff.Children (lvl, refs) ->
          bump ~height:lvl ~bytes:(String.length bytes) ~entries:(List.length refs);
          List.iter (fun (_, c) -> walk c) refs
    end
  in
  walk root;
  let levels =
    Hashtbl.fold (fun _ l ls -> l :: ls) acc []
    |> List.sort (fun (a : level) (b : level) -> compare a.height b.height)
  in
  let records =
    match levels with
    | [] -> 0
    | (leaf : level) :: _ when leaf.height = 0 -> leaf.entries
    | _ -> 0
  in
  { levels;
    total_nodes = List.fold_left (fun a (l : level) -> a + l.nodes) 0 levels;
    total_bytes = List.fold_left (fun a (l : level) -> a + l.bytes) 0 levels;
    records;
    height = List.length levels }

let mean_leaf_bytes t =
  match List.find_opt (fun (l : level) -> l.height = 0) t.levels with
  | Some l when l.nodes > 0 -> Float.of_int l.bytes /. Float.of_int l.nodes
  | _ -> 0.0

let mean_fanout t =
  let internal = List.filter (fun (l : level) -> l.height > 0) t.levels in
  let nodes = List.fold_left (fun a (l : level) -> a + l.nodes) 0 internal in
  let refs = List.fold_left (fun a (l : level) -> a + l.entries) 0 internal in
  if nodes = 0 then 0.0 else Float.of_int refs /. Float.of_int nodes

let pp fmt t =
  Format.fprintf fmt "height %d, %d nodes, %d bytes, %d records@." t.height
    t.total_nodes t.total_bytes t.records;
  List.iter
    (fun (l : level) ->
      Format.fprintf fmt
        "  level %d: %d nodes, %d bytes (min %d / avg %.0f / max %d), %d %s@."
        l.height l.nodes l.bytes
        (if l.nodes = 0 then 0 else l.min_node_bytes)
        (if l.nodes = 0 then 0.0 else Float.of_int l.bytes /. Float.of_int l.nodes)
        l.max_node_bytes l.entries
        (if l.height = 0 then "records" else "refs"))
    t.levels
