(** Structural statistics of an index instance — node counts and byte sizes
    per level, fanouts, and entry distribution.

    Works over the same decode adapter as {!Tree_diff}, so it applies to any
    of the ordered Merkle trees (POS-Tree, MVMB+-Tree, Prolly); the CLI and
    benchmarks use it to report how well a configuration hits its node-size
    target. *)

open Siri_crypto

type level = {
  height : int;  (** 0 = leaves *)
  nodes : int;
  bytes : int;
  entries : int;  (** records at level 0, child refs above *)
  min_node_bytes : int;
  max_node_bytes : int;
}

type t = {
  levels : level list;  (** leaves first *)
  total_nodes : int;
  total_bytes : int;
  records : int;
  height : int;
}

val collect :
  get:(Hash.t -> string) ->
  decode:(string -> Tree_diff.node) ->
  root:Hash.t ->
  t
(** Walk the tree (each distinct node once — shared nodes are not double
    counted). *)

val mean_leaf_bytes : t -> float
val mean_fanout : t -> float
(** Average child count of internal nodes (0 for a leaf-only tree). *)

val pp : Format.formatter -> t -> unit
(** A small per-level table. *)
