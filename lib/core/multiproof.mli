(** Batched Merkle multiproofs.

    A multiproof answers a whole key set against one trusted root: the
    claims list pairs every (distinct, sorted) key with its claimed value
    ([None] proves absence), and [nodes] carries the serialized bytes of
    every node the batched traversal touches — each distinct node {e once},
    in first-visit order, root first.  Sibling keys share their prefix
    path, so a multiproof over [k] keys is far smaller than [k] single
    {!Proof.t}s (the witness-compression experiment in BENCH_proof.json).

    Verification is index-specific ([verify_many] on each index library):
    the verifier replays the same batched traversal, consuming [nodes] in
    order and re-hashing each one against the hash the traversal asked
    for, then compares what the replay found with every claim.  Absence
    claims are covered by the same discipline — the node where the lookup
    path diverges (or the bucket that omits the key) is part of the node
    set, so [None] answers are as tamper-evident as hits: unlike the
    per-root Bloom filters, a multiproof's "not present" is {e provable}.

    This module holds the shared shape, the traversal adapters
    ({!recorder} for proving, {!consumer} for verifying), tamper helpers
    for the adversarial tests, and the compact wire codec. *)

open Siri_crypto

type t = {
  claims : (Kv.key * Kv.value option) list;
      (** strictly sorted by key, no duplicates *)
  nodes : string list;
      (** distinct serialized nodes in first-visit traversal order, root
          first; empty iff the proof is over an empty index or key set *)
}

val keys : t -> Kv.key list

val find : t -> Kv.key -> Kv.value option option
(** The claim for a key: [None] if the key is not in the proof, [Some c]
    with the claimed value otherwise. *)

val root_hash : t -> Hash.t option
(** Digest of the first node, or [None] for an empty proof (an empty index
    proves absence with no nodes — same convention as {!Proof.root_hash}). *)

val size_bytes : t -> int
(** Sum of the node payload sizes — comparable with {!Proof.size_bytes}
    totals, independent of the wire encoding. *)

val well_formed : t -> bool
(** Claims strictly sorted by key with no duplicates.  Every verifier
    checks this first, so a claims list is canonical exactly when it can
    ever be accepted. *)

(** {2 Traversal adapters}

    [prove_many] and [verify_many] on each index are the same batched
    walk as its [get_many], differing only in how nodes are fetched. *)

val recorder :
  get:(Hash.t -> string) -> (Hash.t -> string) * (unit -> string list)
(** [recorder ~get] is [(fetch, nodes)] for the proving side: [fetch]
    reads through [get], memoizing by hash so each distinct node is
    fetched and recorded once; [nodes ()] returns the recorded bytes in
    first-fetch order. *)

exception Rejected
(** Raised by a {!consumer} fetch (or by an index verifier's decode
    wrapper) when the supplied node list cannot honestly answer the
    traversal — wrong hash, exhausted list, undecodable bytes. *)

val consumer : string list -> (Hash.t -> string) * (unit -> bool)
(** [consumer nodes] is [(fetch, finished)] for the verifying side:
    [fetch h] pops the next unconsumed node, checks that its bytes hash
    to [h] (raising {!Rejected} otherwise, or when the list is
    exhausted), and memoizes so repeated requests for an already-proven
    hash do not consume further nodes — mirroring the recorder's dedup.
    [finished ()] is true iff every supplied node was consumed, so
    padded, reordered or dropped node lists are all refused. *)

(** {2 Tamper helpers (for the adversarial suites)} *)

val flip_node : t -> index:int -> pos:int -> t
(** Flip one bit of byte [pos mod length] of node [index mod count]. *)

val drop_node : t -> index:int -> t
(** Remove node [index mod count] from the node list. *)

val swap_nodes : t -> i:int -> j:int -> t
(** Exchange two node positions (indices taken mod count). *)

val set_claim : t -> Kv.key -> Kv.value option -> t
(** Replace the claimed value for a key already present in the claims. *)

val tamper : t -> t
(** The {!Proof.tamper} convention for multiproofs: flip a bit of the
    deepest node, or — when there are no nodes — corrupt the claims.
    Any verifier must refuse the result. *)

(** {2 Wire codec}

    The encoding is a checksummed {!Siri_codec.Frame} whose payload
    front-codes the sorted keys (shared-prefix length + suffix), writes
    each claimed value once (later equal values become varint
    back-references), and carries the deduplicated nodes length-prefixed.
    Decoding classifies damage exactly like the WAL scanner: a flipped
    byte fails the frame checksum ([`Tampered]); truncation, trailing
    bytes or an unparseable payload are [`Malformed]. *)

val encode : t -> string

val decode : string -> (t, [ `Malformed of string | `Tampered of string ]) result
(** Inverse of {!encode} on well-formed proofs (bijective round-trip,
    qcheck-pinned).  Never raises on arbitrary bytes. *)

val encoded_size : t -> int
(** [String.length (encode t)] — the actual bandwidth cost. *)
