(** Deterministic pseudo-random generator (splitmix-style).

    All workloads and experiments draw from this so that runs are exactly
    reproducible from a seed, independent of OCaml's stdlib Random state. *)

type t

val create : int -> t
(** Seeded generator. *)

val split : t -> t
(** An independent generator derived from the current state. *)

val int : t -> int -> int
(** [int t bound] — uniform in [0, bound).  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] — uniform in [lo, hi] inclusive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool

val char_alnum : t -> char
(** Uniform over [a-z0-9]. *)

val string_alnum : t -> int -> string
val bytes_random : t -> int -> string

val shuffle : t -> 'a list -> 'a list

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
