(** Keys, values and the record operations shared by all indexes. *)

type key = string
type value = string

type op =
  | Put of key * value  (** insert or overwrite *)
  | Del of key  (** remove if present *)

val key_of_op : op -> key

val sort_ops : op list -> op list
(** Sort by key; for duplicate keys the last op wins (stable intent of a
    batch that mentions a key twice). *)

val apply_sorted : (key * value) list -> op list -> (key * value) list
(** Merge a sorted entry list with a sorted op batch; both inputs and the
    output are strictly sorted by key. *)

type diff_entry = {
  key : key;
  left : value option;  (** value in the first instance, if present *)
  right : value option;  (** value in the second instance, if present *)
}
(** One record that is present in only one index or differs in both —
    the output unit of the Diff operation (Section 4.1.3). *)

val pp_diff_entry : Format.formatter -> diff_entry -> unit

val diff_sorted : (key * value) list -> (key * value) list -> diff_entry list
(** Reference diff of two sorted entry lists — the specification that the
    indexes' pruned diffs are tested against. *)

type merge_policy =
  | Prefer_left
  | Prefer_right
  | Fail_on_conflict
  | Resolve of (key -> value -> value -> value)

type conflict = { key : key; left_value : value; right_value : value }

val merge_values :
  merge_policy -> key -> value -> value -> (value, conflict) result
