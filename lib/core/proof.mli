(** Merkle proofs.

    A proof for key [k] is the serialized bytes of every node on the lookup
    path, root first.  A verifier who trusts only the root digest re-hashes
    each node, checks that it is the child referenced by its parent, replays
    the traversal on the decoded nodes, and compares the claimed value —
    the "proof of data" of Section 2.3.  Decoding and replay are
    index-specific, so each index provides its own [verify]; this module
    holds the shared shape and helpers. *)

type t = {
  key : Kv.key;
  value : Kv.value option;  (** claimed result: [None] proves absence *)
  nodes : string list;  (** serialized nodes, root first *)
}

val root_hash : t -> Siri_crypto.Hash.t option
(** Digest of the first node, or [None] for an empty proof (an empty index
    proves absence with no nodes). *)

val size_bytes : t -> int
(** Total payload size — the bandwidth cost of shipping the proof. *)

val tamper : t -> t
(** Flip a byte in the deepest node — used by tests to check that verifiers
    reject modified proofs. *)
