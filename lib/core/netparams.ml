(* One shared home for the Section 5.6 deployment network constants.

   Both deployment paths — the cost *simulation* (Siri_forkbase.Remote)
   and the real wire-protocol server benchmark (bench `server`) — read
   their link parameters from here, so the two can never silently
   diverge: changing the testbed network changes both figures. *)

type link = {
  rtt_s : float;  (** per-request round-trip latency, seconds *)
  bandwidth_bps : float;  (** payload bytes per second *)
}

(* 0.2 ms RTT, 1 Gb/s — the paper's testbed network (Forkbase servlet). *)
let gigabit_lan = { rtt_s = 0.0002; bandwidth_bps = 125_000_000.0 }

(* The Noms HTTP setup: 1 ms per request, same bandwidth. *)
let http_overhead = { rtt_s = 0.001; bandwidth_bps = 125_000_000.0 }

let transfer_s link bytes =
  link.rtt_s +. (Float.of_int bytes /. link.bandwidth_bps)
