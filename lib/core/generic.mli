(** A uniform, first-class view of any SIRI index instance.

    The four structures (MPT, MBT, POS-Tree, MVMB+-Tree) have different
    configurations and node layouts, so each library exposes its own typed
    API plus a [generic] constructor producing this record.  Benchmarks,
    the Forkbase engine, and the SIRI property checkers work exclusively
    against this interface.

    Instances are immutable: every write returns a fresh handle whose [root]
    identifies the new version; old handles stay valid (copy-on-write node
    sharing in the underlying store). *)

open Siri_crypto

exception Unsupported of string
(** Raised by {!field-scan} on index kinds with no key order (MBT): the
    paper's Section 5 prediction — hash-bucketed structures cannot serve
    ordered reads — surfaces as a typed refusal rather than a silent
    O(N) filter.  The payload names the index kind. *)

type t = {
  name : string;  (** e.g. ["pos-tree"] *)
  store : Siri_store.Store.t;
  root : Hash.t;  (** {!Hash.null} for an empty instance *)
  lookup : Kv.key -> Kv.value option;
  get_many : Kv.key list -> (Kv.key * Kv.value option) list;
      (** batched point lookups: one result pair per input key, in input
          order ([None] for absent keys).  The batch is answered in a
          single tree walk — keys are sorted and partitioned by child at
          each internal node, so sibling keys share every decoded prefix
          node instead of re-walking from the root.  Semantically
          equivalent to [List.map (fun k -> (k, lookup k))] (qcheck). *)
  path_length : Kv.key -> int;
      (** number of nodes traversed by [lookup] (Figure 9) *)
  batch : Kv.op list -> t;  (** apply a write batch, yielding a new version *)
  bulk_load : (Kv.key * Kv.value) list -> t;
      (** build a fresh version containing exactly the given entries
          (current contents are ignored; duplicate keys resolve as in
          [batch]) through the index's bulk pipeline — the entry point the
          parallel commit path uses.  For history-independent structures
          the resulting root equals the [batch]-built one; the MVMB+-Tree
          documents its canonical bulk shape separately. *)
  to_list : unit -> (Kv.key * Kv.value) list;  (** sorted by key *)
  cardinal : unit -> int;
  diff : Hash.t -> Kv.diff_entry list;
      (** differing records against another version of the same index kind,
          identified by its root *)
  merge :
    Kv.merge_policy -> Hash.t -> (t, Kv.conflict list) result;
      (** union of the records of both versions (Section 4.1.4) *)
  prove : Kv.key -> Proof.t;
  verify : root:Hash.t -> Proof.t -> bool;
      (** store-independent proof check against a trusted root digest *)
  prove_many : Kv.key list -> Multiproof.t;
      (** batched proof over a key set in one walk: shared path nodes are
          carried once ({!Multiproof}); absence claims carry their
          witnessing nodes.  Keys are sorted and deduplicated.  This is
          the raw (uncached) closure — prefer the module-level
          {!prove_many}, which memoizes through the store's proof
          cache. *)
  verify_many : root:Hash.t -> Multiproof.t -> bool;
      (** store-independent batched check: replays the proving walk over
          the supplied nodes, hash-chained from the trusted root, and
          compares every claim — equivalent to verifying each key's
          single proof (qcheck-pinned in [test_proof]). *)
  reopen : Hash.t -> t;
      (** view another version (same index kind, same store) by its root —
          what a checkout of an old commit does *)
  range : lo:Kv.key option -> hi:Kv.key option -> (Kv.key * Kv.value) list;
      (** records with lo <= key <= hi (inclusive; [None] = unbounded),
          sorted by key.  Ordered trees prune subtrees outside the range;
          MBT has no key order and scans (documented O(N)). *)
  scan : lo:Kv.key option -> hi:Kv.key option -> (Kv.key * Kv.value) Seq.t;
      (** streaming ordered read over the half-open interval [lo, hi):
          records with lo <= key < hi ([None] = unbounded), produced in
          key order as a lazy sequence.  The traversal is demand-driven —
          nodes outside the interval are pruned before they are fetched,
          and a consumer that stops early never pays for the rest of the
          tree — and goes through the decoded-node cache like every other
          read.  Half-open so interval endpoints compose without overlap
          (the shard router depends on this).  MBT raises
          {!Unsupported}. *)
}

val insert : t -> Kv.key -> Kv.value -> t
val remove : t -> Kv.key -> t
val of_entries : t -> (Kv.key * Kv.value) list -> t
(** Bulk-load into (a fresh version of) the given instance via [batch]. *)

val load_sorted : t -> (Kv.key * Kv.value) list -> t
(** [load_sorted t entries] is [t.bulk_load entries] — the batched (and,
    when the instance was constructed with a pool, parallel) bulk-load
    path.  Entries need not actually be sorted; the indexes sort and
    dedup internally.  Additionally registers a negative-lookup filter
    for the loaded version ({!Siri_store.Store.set_root_filter}), so
    {!get}/{!get_many} on it short-circuit definite misses. *)

(** {2 Filtered, tiered reads}

    The preferred read entry points.  Both consult the version's
    negative-lookup filter (when one is registered for [t.root]) before
    touching the tree — a filter miss answers [None] with zero node reads
    and counts [read.filter.skip].  Lookups that do traverse are timed
    into [read.lookup.hit] (no decoded-node-cache miss during the walk —
    every node came from cache) or [read.lookup.miss] histograms, with
    matching counters, so [siri-cli stats] can report hit ratio and
    per-tier latency.  With telemetry off ({!Siri_telemetry.Telemetry.null})
    they add one closed-over branch to the raw closures. *)

val get : t -> Kv.key -> Kv.value option
(** Filter-aware, tiered [t.lookup]. *)

val get_many : t -> Kv.key list -> (Kv.key * Kv.value option) list
(** Filter-aware [t.get_many]: keys rejected by the filter never enter the
    batch traversal; results stay in input order. *)

(** {2 Ordered streaming reads} *)

val scan : ?lo:Kv.key -> ?hi:Kv.key -> t -> (Kv.key * Kv.value) Seq.t
(** [t.scan] with optional labelled bounds: streams the entries of the
    half-open interval [[lo, hi)] in key order, counting one
    [<kind>.scan] per call.  Raises {!Unsupported} for MBT. *)

val range_count : ?lo:Kv.key -> ?hi:Kv.key -> ?limit:int -> t -> int
(** Number of entries in [[lo, hi)], computed by draining the stream but
    never materializing it.  [limit] bounds the answer: counting stops at
    [limit] entries, so "are there at least k rows?" costs O(k) node
    visits regardless of selectivity.  Raises {!Unsupported} for MBT. *)

(** {2 Cached multiproof serving} *)

type Siri_readpath.Proof_cache.repr += Cached_multiproof of Multiproof.t

val prove_many : t -> Kv.key list -> Multiproof.t
(** [t.prove_many] through the store's proof cache
    ({!Siri_store.Store.proof_cache}): a repeated request for the same
    [(root, sorted key set)] returns the memoized multiproof without
    touching the tree, metered as [proof.cache.hit]/[miss]/[evict].  With
    the cache disabled (the default) this is exactly [t.prove_many].
    Unlike {!get}/{!get_many}, never consults the Bloom filter — absence
    answers must carry witness nodes, not filter bits. *)

val verify_many : t -> root:Hash.t -> Multiproof.t -> bool
(** [t.verify_many], for symmetry with {!prove_many}. *)

val page_set : t -> Hash.Set.t
(** Reachable pages [P(I)] of this version. *)

val node_count : t -> int
val total_bytes : t -> int
