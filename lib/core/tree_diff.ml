open Siri_crypto

type node =
  | Entries of (Kv.key * Kv.value) list
  | Children of int * (Kv.key * Hash.t) list

let entries ~decode root =
  let rec walk h acc =
    if Hash.is_null h then acc
    else
      match decode h with
      | Entries es -> List.rev_append es acc
      | Children (_, kids) ->
          List.fold_left (fun acc (_, ch) -> walk ch acc) acc kids
  in
  List.rev (walk root [])

(* The refinement loop keeps, for each side, a key-ordered list of subtree
   roots that have no identical counterpart on the other side.  Each round:
   (1) drop hashes present on both sides (identical subtrees — the pruning
   step); (2) expand the tallest remaining nodes one level.  When only
   leaves remain, compare their record streams. *)
let diff ~decode ~left ~right =
  if Hash.equal left right then []
  else begin
    let height h =
      if Hash.is_null h then 0
      else match decode h with Entries _ -> 0 | Children (lvl, _) -> lvl
    in
    let count tbl h = match Hash.Table.find_opt tbl h with Some n -> n | None -> 0 in
    let prune l r =
      (* Remove pairwise-equal hashes across the two multisets. *)
      let tbl = Hash.Table.create 64 in
      List.iter (fun h -> Hash.Table.replace tbl h (count tbl h + 1)) r;
      let l' =
        List.filter
          (fun h ->
            let c = count tbl h in
            if c > 0 then begin
              Hash.Table.replace tbl h (c - 1);
              false
            end
            else true)
          l
      in
      let r' =
        (* Keep each right hash only as many times as it survived. *)
        let seen = Hash.Table.create 64 in
        List.filter
          (fun h ->
            let used = count seen h in
            Hash.Table.replace seen h (used + 1);
            used < count tbl h)
          r
      in
      (l', r')
    in
    let expand target_height roots =
      List.concat_map
        (fun h ->
          if Hash.is_null h then []
          else if height h < target_height then [ h ]
          else
            match decode h with
            | Entries _ -> [ h ]
            | Children (_, kids) -> List.map snd kids)
        roots
    in
    let rec refine l r =
      let l, r = prune l r in
      let hmax =
        List.fold_left (fun acc h -> max acc (height h)) 0 (List.rev_append l r)
      in
      if hmax = 0 then begin
        let flatten roots =
          List.concat_map
            (fun h ->
              if Hash.is_null h then []
              else match decode h with Entries es -> es | Children _ -> [])
            roots
        in
        Kv.diff_sorted (flatten l) (flatten r)
      end
      else refine (expand hmax l) (expand hmax r)
    in
    refine [ left ] [ right ]
  end
