(** Prolly Tree — the Noms variant compared against POS-Tree in
    Section 5.6.2.

    Structurally it is the same pattern-partitioned search tree, but its
    internal layers decide boundaries by re-running the sliding-window
    rolling hash over the serialized (split-key, child-hash) entries instead
    of reusing the already-computed child hashes.  The extra hashing work on
    every write is precisely the inefficiency Figure 22 measures; reads are
    unaffected.

    This module instantiates {!Siri_pos.Pos_tree} with the Noms boundary
    rule and Noms' defaults (4 KB nodes, 67-byte window). *)

open Siri_core
module Store = Siri_store.Store
module Pos_tree = Siri_pos.Pos_tree

type t = Pos_tree.t

val default_config : Pos_tree.config
(** 4 KB target nodes, 67-byte rolling window on every layer. *)

val config : ?node_target:int -> unit -> Pos_tree.config

val empty : Store.t -> t
val of_entries : Store.t -> (Kv.key * Kv.value) list -> t

val of_sorted : ?pool:Siri_parallel.Pool.t -> Store.t -> (Kv.key * Kv.value) list -> t
(** Parallel bulk build (see {!Siri_pos.Pos_tree.of_sorted}); the root is
    byte-identical to {!of_entries} for any domain count. *)

val prove_many : t -> Kv.key list -> Multiproof.t
(** Batched proof over a key set in one walk — identical to
    {!Siri_pos.Pos_tree.prove_many}; the Noms boundary rule only changes
    how the tree was built, not how it is walked. *)

val verify_many : root:Siri_crypto.Hash.t -> Multiproof.t -> bool

val generic : ?pool:Siri_parallel.Pool.t -> t -> Generic.t
(** Named ["prolly"] in benchmark output. *)
