module Store = Siri_store.Store
module Pos_tree = Siri_pos.Pos_tree

type t = Pos_tree.t

let config ?(node_target = 4096) () =
  Pos_tree.config_prolly ~leaf_target:node_target ~internal_target:node_target
    ()

let default_config = config ()
let empty store = Pos_tree.empty store default_config
let of_entries store entries = Pos_tree.of_entries store default_config entries

let of_sorted ?pool store entries =
  Pos_tree.of_sorted ?pool store default_config entries

let prove_many = Pos_tree.prove_many
let verify_many = Pos_tree.verify_many
let generic ?pool t = Pos_tree.generic_named ?pool "prolly" t
