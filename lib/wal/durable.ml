module Engine = Siri_forkbase.Engine
module Store = Siri_store.Store
module Fault = Siri_fault.Fault
module Pack = Siri_pack.Pack
module Telemetry = Siri_telemetry.Telemetry

let manifest_magic = "SIRIWALMANIFEST1"

let journal_path dir = Filename.concat dir "journal"
let manifest_path dir = Filename.concat dir "MANIFEST"
let snapshot_path dir gen = Filename.concat dir (Printf.sprintf "store.%d" gen)
let heads_path dir gen = snapshot_path dir gen ^ ".heads"
let pack_dir dir = Filename.concat dir "pack"

type backend = [ `Snapshot | `Pack ]

type recovery = {
  generation : int;
  replayed : int;
  skipped : int;
  clamped_bytes : int;
  capped : int;
}

type t = {
  dir : string;
  sync : bool;
  engine : Engine.t;
  backend : backend;
  pack : Pack.t option;
  mutable journal : out_channel option;
  mutable generation : int;
  mutable next_seq : int;
  recovered : recovery;
}

let recovery t = t.recovered
let engine t = t.engine
let dir t = t.dir
let backend t = t.backend
let pack t = t.pack

let sink t = Store.sink (Engine.store t.engine)

(* --- manifest ---------------------------------------------------------------- *)

(* One line of magic, one line "<generation> <last-captured-seq>".  The file
   is tiny and replaced atomically (tmp+fsync+rename), so it is either the
   old version or the new one — never torn. *)

let write_manifest ~sync dir ~generation ~seq =
  Store.write_file_atomic ~sync (manifest_path dir) (fun oc ->
      Printf.fprintf oc "%s\n%d %d\n" manifest_magic generation seq)

let read_manifest dir =
  let path = manifest_path dir in
  if not (Sys.file_exists path) then Ok None
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error msg -> Error (`Malformed msg)
    | content -> (
        match String.split_on_char '\n' content with
        | m :: line :: _ when m = manifest_magic -> (
            match String.split_on_char ' ' line with
            | [ g; s ] -> (
                match (int_of_string_opt g, int_of_string_opt s) with
                | Some generation, Some seq when generation > 0 && seq >= 0 ->
                    Ok (Some (generation, seq))
                | _ -> Error (`Malformed "manifest: bad generation line"))
            | _ -> Error (`Malformed "manifest: bad generation line"))
        | _ -> Error (`Malformed "manifest: bad magic"))

(* --- journal file helpers ----------------------------------------------------- *)

let fsync_out oc = Unix.fsync (Unix.descr_of_out_channel oc)

let open_journal_for_append ~sync path =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 path
  in
  if out_channel_length oc = 0 then begin
    output_string oc Wal.magic;
    flush oc;
    if sync then fsync_out oc
  end;
  oc

let cleanup_stale_tmp dir =
  (* Any interrupted atomic write in this directory (snapshot, heads or
     manifest) leaves a uniquely-named *.tmp.* file; none is ever a live
     artifact, so sweep them all. *)
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
      Array.iter
        (fun name ->
          let is_tmp =
            match String.index_opt name '.' with
            | None -> false
            | Some _ ->
                (* contains ".tmp." somewhere *)
                let marker = ".tmp." in
                let nl = String.length name and ml = String.length marker in
                let rec scan i =
                  i + ml <= nl
                  && (String.sub name i ml = marker || scan (i + 1))
                in
                scan 0
          in
          if is_tmp then
            try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        names

(* --- recovery ----------------------------------------------------------------- *)

let apply_record engine = function
  | Wal.Commit { branch; message; ops } ->
      ignore (Engine.commit engine ~branch ~message ops : Engine.commit)
  | Wal.Fork { from; name } -> Engine.fork engine ~from name
  | Wal.Merge { into; from = _; message; ops } ->
      (* Replaying the resolved batch as a plain commit byte-reproduces the
         original merge commit: same parent, message, version and ops. *)
      ignore (Engine.commit engine ~branch:into ~message ops : Engine.commit)
  | Wal.Bulk { branch; message; entries } ->
      ignore (Engine.commit_bulk engine ~branch ~message entries : Engine.commit)

let open_ ?(sync = true) ?(backend = `Snapshot) ?replay_cap ~dir ~empty_index () =
  match
    if Sys.file_exists dir then
      if Sys.is_directory dir then Ok ()
      else Error (`Malformed (dir ^ ": not a directory"))
    else
      match Unix.mkdir dir 0o755 with
      | () -> Ok ()
      | exception Unix.Unix_error (e, _, _) ->
          Error (`Malformed (dir ^ ": " ^ Unix.error_message e))
  with
  | Error _ as e -> e
  | Ok () -> (
      cleanup_stale_tmp dir;
      match read_manifest dir with
      | Error _ as e -> e
      | Ok manifest -> (
          let engine_r =
            match backend with
            | `Snapshot -> (
                match manifest with
                | None -> Ok (Engine.create ~empty_index, 0, 0, None)
                | Some (generation, seq) -> (
                    match
                      Engine.load_checked ~empty_index
                        (snapshot_path dir generation)
                    with
                    | Ok engine -> Ok (engine, generation, seq, None)
                    | Error (`Malformed _) as e -> e))
            | `Pack -> (
                (* Node payloads live in the pack, so the "snapshot" of a
                   generation is just its heads file: create a fresh
                   engine, attach the pack as its cold tier, and resolve
                   the heads through it. *)
                let engine = Engine.create ~empty_index in
                let sink = Store.sink (Engine.store engine) in
                match Pack.open_ ~sink (pack_dir dir) with
                | Error (`Tampered msg) -> Error (`Malformed ("pack: " ^ msg))
                | Ok (p, _) -> (
                    Pack.attach p (Engine.store engine);
                    match manifest with
                    | None -> Ok (engine, 0, 0, Some p)
                    | Some (generation, seq) -> (
                        match
                          Engine.load_heads engine (heads_path dir generation)
                        with
                        | (_ : string list) -> Ok (engine, generation, seq, Some p)
                        | exception Failure msg -> Error (`Malformed msg)
                        | exception Sys_error msg -> Error (`Malformed msg))))
          in
          (* A crash between manifest publication and old-generation removal
             leaves superseded snapshot files behind; sweep them. *)
          (match manifest with
          | None -> ()
          | Some (generation, _) ->
              Array.iter
                (fun name ->
                  match Scanf.sscanf_opt name "store.%d%s" (fun g rest -> (g, rest)) with
                  | Some (g, ("" | ".heads")) when g <> generation -> (
                      try Sys.remove (Filename.concat dir name)
                      with Sys_error _ -> ())
                  | _ -> ())
                (try Sys.readdir dir with Sys_error _ -> [||]));
          match engine_r with
          | Error _ as e -> e
          | Ok (engine, generation, snapshot_seq, pack) -> (
              let sink = Store.sink (Engine.store engine) in
              let jpath = journal_path dir in
              let scan_r =
                if Sys.file_exists jpath then
                  Wal.scan (In_channel.with_open_bin jpath In_channel.input_all)
                else
                  Ok
                    { Wal.entries = [];
                      ends = [];
                      valid_prefix = 0;
                      clamped_bytes = 0 }
              in
              match scan_r with
              | Error _ as e -> e
              | Ok { Wal.entries; ends; valid_prefix; clamped_bytes } -> (
                  (* A replay cap is an outer commit point (the sharded
                     engine's composite journal) saying "nothing past
                     sequence [cap] was ever published": records beyond
                     it are unpublished tail, clamped at their exact
                     frame boundary just like a torn write. *)
                  let entries, valid_prefix, capped =
                    match replay_cap with
                    | None -> (entries, valid_prefix, 0)
                    | Some cap ->
                        let rec take kept last_end entries ends =
                          match (entries, ends) with
                          | ((seq, _) as e) :: es, off :: offs when seq <= cap
                            -> take (e :: kept) off es offs
                          | rest, _ -> (List.rev kept, last_end, List.length rest)
                        in
                        take [] (String.length Wal.magic) entries ends
                  in
                  let replay () =
                    let replayed = ref 0 and skipped = ref 0 in
                    List.iter
                      (fun (seq, record) ->
                        if seq <= snapshot_seq then incr skipped
                        else begin
                          apply_record engine record;
                          incr replayed
                        end)
                      entries;
                    (!replayed, !skipped)
                  in
                  match
                    Telemetry.with_span sink "recovery" (fun () ->
                        Fault.protect replay)
                  with
                  | Error e ->
                      (* A record that passed its checksum but cannot be
                         applied (e.g. it forks from a branch the snapshot
                         does not know): the journal and snapshot disagree. *)
                      Error
                        (`Malformed
                           ("replay failed: " ^ Fault.error_to_string e))
                  | Ok (replayed, skipped) ->
                      if clamped_bytes > 0 || capped > 0 then begin
                        (* Drop the torn (or unpublished) tail on disk so
                           subsequent appends extend the valid prefix,
                           not the garbage. *)
                        Unix.truncate jpath valid_prefix;
                        if clamped_bytes > 0 then begin
                          Telemetry.incr sink "recovery.clamped";
                          Telemetry.incr sink ~by:clamped_bytes
                            "recovery.clamped_bytes"
                        end;
                        if capped > 0 then
                          Telemetry.incr sink ~by:capped "recovery.capped"
                      end;
                      Telemetry.incr sink ~by:replayed "recovery.replayed";
                      Telemetry.incr sink ~by:skipped "recovery.skipped";
                      let last_seq =
                        List.fold_left
                          (fun acc (seq, _) -> max acc seq)
                          snapshot_seq entries
                      in
                      (* Replayed nodes were written through to the pack
                         buffer; push them to the OS — the journal stays
                         the durability point until the next checkpoint. *)
                      (match pack with
                      | Some p -> Pack.flush ~sync:false p
                      | None -> ());
                      let journal = open_journal_for_append ~sync jpath in
                      Ok
                        { dir;
                          sync;
                          engine;
                          backend;
                          pack;
                          journal = Some journal;
                          generation;
                          next_seq = last_seq + 1;
                          recovered =
                            { generation; replayed; skipped; clamped_bytes;
                              capped }
                        }))))

(* --- journaled writes ---------------------------------------------------------- *)

let journal_channel t =
  match t.journal with
  | Some oc -> oc
  | None -> invalid_arg "Durable: journal closed"

let append ?seq t record =
  (* An explicit [seq] stamps an externally-allocated (journal-wide
     monotone) sequence number — the sharded engine numbers every shard
     journal from one global counter so a composite commit point can
     clamp all of them consistently.  Going backwards would break the
     checkpoint-manifest skip rule, so it is a programming error. *)
  let seq =
    match seq with
    | None -> t.next_seq
    | Some s ->
        if s < t.next_seq then
          invalid_arg
            (Printf.sprintf "Durable: seq %d below journal watermark %d" s
               t.next_seq);
        s
  in
  let oc = journal_channel t in
  let bytes = Wal.encode_record ~seq record in
  t.next_seq <- seq + 1;
  output_string oc bytes;
  flush oc;
  let s = sink t in
  if t.sync then begin
    fsync_out oc;
    Telemetry.incr s "wal.fsync"
  end;
  Telemetry.incr s "wal.append";
  Telemetry.incr s ~by:(String.length bytes) "wal.append_bytes"

(* Group fsync: the journal append above is the only per-commit fsync.
   Write-through pack appends are merely pushed to the OS page cache —
   a power loss loses at most nodes the journal replay regenerates. *)
let publish_pack t =
  match t.pack with Some p -> Pack.flush ~sync:false p | None -> ()

let commit ?seq t ~branch ~message ops =
  (* Validate before journaling so an invalid branch never taints the log. *)
  ignore (Engine.head t.engine branch : Engine.commit);
  append ?seq t (Wal.Commit { branch; message; ops });
  let c = Engine.commit t.engine ~branch ~message ops in
  publish_pack t;
  c

let commit_bulk ?seq t ~branch ~message entries =
  ignore (Engine.head t.engine branch : Engine.commit);
  append ?seq t (Wal.Bulk { branch; message; entries });
  let c = Engine.commit_bulk t.engine ~branch ~message entries in
  publish_pack t;
  c

let fork ?seq t ~from name =
  if List.mem name (Engine.branches t.engine) then
    invalid_arg (Printf.sprintf "Engine.fork: branch %S exists" name);
  ignore (Engine.head t.engine from : Engine.commit);
  append ?seq t (Wal.Fork { from; name });
  Engine.fork t.engine ~from name

let get t ~branch key = Engine.get t.engine ~branch key

let merge_branches t ~into ~from ~policy =
  match Engine.merge_ops t.engine ~into ~from ~policy with
  | Error _ as e -> e
  | Ok ops ->
      let message = Engine.merge_message ~into ~from in
      append t (Wal.Merge { into; from; message; ops });
      let c = Engine.commit t.engine ~branch:into ~message ops in
      publish_pack t;
      Ok c

(* --- checkpoint ----------------------------------------------------------------- *)

let journal_bytes t =
  match t.journal with
  | Some oc -> out_channel_length oc
  | None -> (
      match (Unix.stat (journal_path t.dir)).Unix.st_size with
      | n -> n
      | exception Unix.Unix_error _ -> 0)

let checkpoint t =
  let s = sink t in
  Telemetry.with_span s "wal.checkpoint" @@ fun () ->
  let generation = t.generation + 1 in
  (* 1. Capture the state of this generation (fsynced, atomically renamed
     file by file).  Snapshot backend: full store + heads files.  Pack
     backend: the nodes are already in the pack — make them and the
     offset index durable, then write just the heads file. *)
  (match t.pack with
  | None -> Engine.save ~sync:t.sync t.engine (snapshot_path t.dir generation)
  | Some p ->
      Pack.flush ~sync:t.sync p;
      Pack.sync_index p;
      Engine.save_heads ~sync:t.sync t.engine (heads_path t.dir generation));
  (* 2. Commit point: one atomic manifest replacement naming both the
     snapshot generation and the last journal sequence it captures. *)
  write_manifest ~sync:t.sync t.dir ~generation ~seq:(t.next_seq - 1);
  (* 3. Truncate the journal — everything in it is captured.  A crash
     before this point replays against the new snapshot and skips every
     record by sequence number. *)
  (match t.journal with
  | Some oc -> close_out_noerr oc
  | None -> ());
  let oc =
    open_out_gen
      [ Open_wronly; Open_trunc; Open_creat; Open_binary ]
      0o644 (journal_path t.dir)
  in
  output_string oc Wal.magic;
  flush oc;
  if t.sync then fsync_out oc;
  t.journal <- Some oc;
  (* 4. Best-effort removal of the superseded generation. *)
  if t.generation > 0 then begin
    let old = snapshot_path t.dir t.generation in
    (try Sys.remove old with Sys_error _ -> ());
    try Sys.remove (old ^ ".heads") with Sys_error _ -> ()
  end;
  t.generation <- generation;
  Telemetry.incr s "wal.checkpoint"

let close t =
  (match t.pack with
  | Some p ->
      Pack.flush ~sync:t.sync p;
      Pack.sync_index p
  | None -> ());
  match t.journal with
  | None -> ()
  | Some oc ->
      flush oc;
      if t.sync then fsync_out oc;
      close_out_noerr oc;
      t.journal <- None
