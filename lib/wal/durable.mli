(** Crash-consistent durability for {!Siri_forkbase.Engine}: every commit,
    fork and merge is appended to a checksummed write-ahead journal
    ({!Wal}) {e before} it is applied in memory, so a crash at any byte
    boundary recovers to an exact committed prefix of the history.

    {b Layout.}  A durable engine lives in a directory:

    - [journal] — the append-only commit journal;
    - [MANIFEST] — {e one} atomically-replaced file naming the current
      snapshot generation and the last journal sequence number it
      captures (closing the two-file store/heads atomicity hole of
      {!Siri_forkbase.Engine.save});
    - [store.<gen>] / [store.<gen>.heads] — the snapshot of that
      generation, written by {!Siri_forkbase.Engine.save}.

    {b Recovery} ({!open_}): load the manifest's snapshot if one exists
    (else recreate the deterministic initial engine), then replay every
    journal record whose sequence number the snapshot does not already
    capture.  A torn journal tail is clamped silently (and truncated on
    disk so later appends extend the valid prefix); mid-journal corruption
    surfaces as [`Tampered offset] — recovery never raises.

    {b Checkpoint} ({!checkpoint}): write the next-generation snapshot
    (fsync), atomically publish the manifest (tmp+fsync+rename — the
    commit point), then truncate the journal and drop the old generation.
    A crash anywhere in that sequence recovers: before the manifest rename
    the old generation + full journal are intact; after it, replay skips
    everything the new snapshot captures.

    Instrumentation (on the engine store's telemetry sink): [wal.append],
    [wal.append_bytes], [wal.fsync], [wal.checkpoint] counters; recovery
    runs inside a [recovery] span and bumps [recovery.replayed] (records
    re-applied), [recovery.skipped] (records the snapshot already
    captured), [recovery.clamped] (torn-tail clamp events) and
    [recovery.clamped_bytes]. *)

open Siri_core
module Engine = Siri_forkbase.Engine

type t

type backend = [ `Snapshot | `Pack ]
(** Where checkpointed node payloads live.  [`Snapshot] (the default)
    writes a full [store.<gen>] file per checkpoint.  [`Pack] keeps the
    nodes in a log-structured {!Siri_pack.Pack} directory ([<dir>/pack])
    written through on every commit: a checkpoint then only needs to
    fsync the pack, persist its offset index and write the tiny heads
    file — no O(data) snapshot rewrite.  Commits stay group-fsynced:
    the journal append is the single per-commit fsync, pack appends are
    only pushed to the OS (replay regenerates anything lost).  A
    directory must be reopened with the backend it was created with. *)

type recovery = {
  generation : int;  (** snapshot generation loaded; 0 = none *)
  replayed : int;  (** journal records re-applied *)
  skipped : int;  (** records already captured by the snapshot *)
  clamped_bytes : int;  (** torn-tail bytes discarded *)
  capped : int;  (** records dropped by [replay_cap] — journaled here but
                     never published by the outer commit point *)
}

val open_ :
  ?sync:bool ->
  ?backend:backend ->
  ?replay_cap:int ->
  dir:string ->
  empty_index:Generic.t ->
  unit ->
  (t, Wal.error) result
(** Open (creating the directory if needed) and recover.  [empty_index]
    must be a {e fresh} instance of the index kind the engine was built
    with — its store receives the recovered state, exactly as in
    {!Siri_forkbase.Engine.load}.  [sync] (default [true]) controls
    [fsync] on every journal append and snapshot write; [false] trades
    power-loss durability for speed (tests, benchmarks).  Stale temp
    files from interrupted atomic writes are cleaned up.

    [replay_cap] is an {e outer} commit point: journal records whose
    sequence number exceeds it are not replayed and are truncated from
    the journal at their exact frame boundary (counted in
    {!recovery.capped}).  The sharded engine passes the last sequence
    its composite journal published, so a crash between a shard-journal
    append and the composite commit point rolls the shard back instead
    of resurrecting an unpublished commit. *)

val recovery : t -> recovery
(** What {!open_} found. *)

val engine : t -> Engine.t
(** The underlying engine, for reads (get / history / checkout / …).
    Mutating it directly bypasses the journal — write through {!commit},
    {!fork} and {!merge_branches} instead. *)

val dir : t -> string

val backend : t -> backend

val pack : t -> Siri_pack.Pack.t option
(** The attached pack, when opened with [~backend:`Pack] — for scrub,
    compaction and fault-gate wiring. *)

val journal_path : string -> string
(** [journal_path dir] — where the journal of a durable directory lives
    (for the crash simulator). *)

val pack_dir : string -> string
(** [pack_dir dir] — where the pack of a [`Pack]-backend directory lives
    (for the crash simulator). *)

val journal_bytes : t -> int
(** Current size of the journal file in bytes. *)

val commit :
  ?seq:int -> t -> branch:string -> message:string -> Kv.op list ->
  Engine.commit
(** Journal (flush, and [fsync] when [sync]), then apply.  [seq] stamps
    an externally-allocated sequence number (the sharded engine's global
    commit counter); it must not be below the journal's own watermark —
    [Invalid_argument] otherwise. *)

val commit_bulk :
  ?seq:int -> t -> branch:string -> message:string ->
  (Kv.key * Kv.value) list -> Engine.commit
(** Journal a {!Wal.record.Bulk} record, then apply through
    {!Engine.commit_bulk}: on a branch still at version 0 the entries go
    through the index's canonical [bulk_load] (and recovery replays them
    the same way), which is what the online reshard streams each migrated
    branch into. *)

val fork : ?seq:int -> t -> from:string -> string -> unit
val get : t -> branch:string -> Kv.key -> Kv.value option

val merge_branches :
  t -> into:string -> from:string -> policy:Kv.merge_policy ->
  (Engine.commit, Kv.conflict list) result
(** Conflict checking happens {e before} journaling: a failed merge
    leaves no journal record.  A successful merge is journaled as its
    resolved write batch ({!Wal.record.Merge}), so replay needs no
    serialized policy. *)

val checkpoint : t -> unit
(** Atomic snapshot + journal truncation, as described above. *)

val close : t -> unit
(** Flush ([fsync] when [sync]) and close the journal.  The engine stays
    usable for reads; further durable writes require a fresh {!open_}. *)
