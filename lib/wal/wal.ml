module Hash = Siri_crypto.Hash
module Wire = Siri_codec.Wire
module Kv = Siri_core.Kv

let magic = "SIRIWAL1"

type record =
  | Commit of { branch : string; message : string; ops : Kv.op list }
  | Fork of { from : string; name : string }
  | Merge of { into : string; from : string; message : string; ops : Kv.op list }
  | Bulk of {
      branch : string;
      message : string;
      entries : (Kv.key * Kv.value) list;
    }

type error = [ `Tampered of int | `Malformed of string ]

let pp_error ppf = function
  | `Tampered off ->
      Format.fprintf ppf "journal corrupted at byte offset %d" off
  | `Malformed msg -> Format.fprintf ppf "malformed journal: %s" msg

(* --- payload encoding -------------------------------------------------------- *)

let tag_commit = 0x01
let tag_fork = 0x02
let tag_merge = 0x03
let tag_bulk = 0x04

let write_ops w ops =
  Wire.Writer.varint w (List.length ops);
  List.iter
    (fun op ->
      match op with
      | Kv.Put (k, v) ->
          Wire.Writer.u8 w 0;
          Wire.Writer.str w k;
          Wire.Writer.str w v
      | Kv.Del k ->
          Wire.Writer.u8 w 1;
          Wire.Writer.str w k)
    ops

let read_ops r =
  let n = Wire.Reader.varint r in
  List.init n (fun _ ->
      match Wire.Reader.u8 r with
      | 0 ->
          let k = Wire.Reader.str r in
          let v = Wire.Reader.str r in
          Kv.Put (k, v)
      | 1 -> Kv.Del (Wire.Reader.str r)
      | _ -> raise Wire.Reader.Truncated)

let encode_payload ~seq record =
  let w = Wire.Writer.create () in
  Wire.Writer.varint w seq;
  (match record with
  | Commit { branch; message; ops } ->
      Wire.Writer.u8 w tag_commit;
      Wire.Writer.str w branch;
      Wire.Writer.str w message;
      write_ops w ops
  | Fork { from; name } ->
      Wire.Writer.u8 w tag_fork;
      Wire.Writer.str w from;
      Wire.Writer.str w name
  | Merge { into; from; message; ops } ->
      Wire.Writer.u8 w tag_merge;
      Wire.Writer.str w into;
      Wire.Writer.str w from;
      Wire.Writer.str w message;
      write_ops w ops
  | Bulk { branch; message; entries } ->
      Wire.Writer.u8 w tag_bulk;
      Wire.Writer.str w branch;
      Wire.Writer.str w message;
      Wire.Writer.varint w (List.length entries);
      List.iter
        (fun (k, v) ->
          Wire.Writer.str w k;
          Wire.Writer.str w v)
        entries);
  Wire.Writer.contents w

let decode_payload_reader r =
  let seq = Wire.Reader.varint r in
  let record =
    match Wire.Reader.u8 r with
    | t when t = tag_commit ->
        let branch = Wire.Reader.str r in
        let message = Wire.Reader.str r in
        Commit { branch; message; ops = read_ops r }
    | t when t = tag_fork ->
        let from = Wire.Reader.str r in
        let name = Wire.Reader.str r in
        Fork { from; name }
    | t when t = tag_merge ->
        let into = Wire.Reader.str r in
        let from = Wire.Reader.str r in
        let message = Wire.Reader.str r in
        Merge { into; from; message; ops = read_ops r }
    | t when t = tag_bulk ->
        let branch = Wire.Reader.str r in
        let message = Wire.Reader.str r in
        let n = Wire.Reader.varint r in
        let entries =
          List.init n (fun _ ->
              let k = Wire.Reader.str r in
              let v = Wire.Reader.str r in
              (k, v))
        in
        Bulk { branch; message; entries }
    | _ -> raise Wire.Reader.Truncated
  in
  if not (Wire.Reader.at_end r) then raise Wire.Reader.Truncated;
  (seq, record)

(* --- framing ----------------------------------------------------------------- *)

(* The journal shares its frame layout with the pack-file segments
   ([Siri_codec.Frame]): 4 length bytes, 32 checksum bytes, payload. *)

module Frame = Siri_codec.Frame

let encode_record ~seq record = Frame.encode (encode_payload ~seq record)

type scan_result = {
  entries : (int * record) list;
  ends : int list;
  valid_prefix : int;
  clamped_bytes : int;
}

let scan blob =
  let total = String.length blob in
  let mlen = String.length magic in
  if total < mlen then
    if String.equal blob (String.sub magic 0 total) then
      (* Torn while writing the very header: an empty committed prefix. *)
      Ok { entries = []; ends = []; valid_prefix = 0; clamped_bytes = total }
    else Error (`Malformed "bad magic")
  else if not (String.equal (String.sub blob 0 mlen) magic) then
    Error (`Malformed "bad magic")
  else begin
    let entries = ref [] in
    let ends = ref [] in
    let result = ref None in
    let pos = ref mlen in
    let stop r = result := Some r in
    while !result = None do
      (* Frames are verified and decoded in place — the checksum is hashed
         over slices ([Frame.step]) and the payload parsed through a
         windowed reader ([Reader.of_substring]), so scanning a journal
         allocates no per-frame payload copies. *)
      match Frame.step blob ~pos:!pos with
      | Frame.End ->
          stop
            (Ok
               { entries = List.rev !entries;
                 ends = List.rev !ends;
                 valid_prefix = !pos;
                 clamped_bytes = 0 })
      | Frame.Torn clamped ->
          stop
            (Ok
               { entries = List.rev !entries;
                 ends = List.rev !ends;
                 valid_prefix = !pos;
                 clamped_bytes = clamped })
      | Frame.Corrupt -> stop (Error (`Tampered !pos))
      | Frame.Frame { payload_off; payload_len; next } -> (
          match
            decode_payload_reader
              (Wire.Reader.of_substring blob ~off:payload_off ~len:payload_len)
          with
          | seq, record ->
              entries := (seq, record) :: !entries;
              pos := next;
              ends := next :: !ends
          | exception Wire.Reader.Truncated ->
              stop
                (Error
                   (`Malformed
                      (Printf.sprintf "undecodable record at offset %d" !pos))))
    done;
    Option.get !result
  end
