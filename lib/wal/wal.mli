(** The append-only commit journal: record types, on-disk framing, and the
    recovery scan.

    A journal file is the byte [magic] followed by a sequence of framed
    records.  Each frame is

    {v
    +--------------+---------------------------+------------------+
    | u32 len (BE) | 32-byte SHA-256 checksum  | payload (len B)  |
    +--------------+---------------------------+------------------+
    v}

    where the checksum covers the 4 length bytes {e and} the payload, so a
    bit flip anywhere in a complete frame — including its length prefix —
    fails verification.  The payload itself is {!Siri_codec.Wire} encoded:
    a varint sequence number, a one-byte record tag, then the record body.

    {b Recovery invariant.}  {!scan} splits any byte string into the
    longest valid prefix of complete, checksum-verified records plus a
    diagnosis of the remainder:

    - a record that runs past the end of the input is a {b torn tail}
      (the crash happened mid-append): the partial bytes are reported as
      [clamped_bytes] and silently discarded — recovery lands on the
      committed prefix;
    - a {e complete} record whose checksum fails is {b corruption} (a
      truncation alone can never produce it): scan stops with
      [`Tampered offset], never an exception.

    A flipped length byte that makes the {e final} record appear to extend
    past the end of the input is indistinguishable from a torn write and is
    clamped — the standard WAL ambiguity (LevelDB and etcd resolve it the
    same way); every other single-bit flip over a frame is detected. *)

module Kv = Siri_core.Kv

val magic : string
(** The 8-byte journal file header (["SIRIWAL1"]). *)

type record =
  | Commit of { branch : string; message : string; ops : Kv.op list }
  | Fork of { from : string; name : string }
  | Merge of { into : string; from : string; message : string; ops : Kv.op list }
      (** A successful merge, recorded as the {e resolved} write batch
          ({!Siri_forkbase.Engine.merge_ops}) so that replay needs no
          serialized conflict policy: applying [ops] on [into] with
          [message] byte-reproduces the original merge commit. *)
  | Bulk of {
      branch : string;
      message : string;
      entries : (Kv.key * Kv.value) list;
    }
      (** A bulk load: replayed through
          {!Siri_forkbase.Engine.commit_bulk}, so on a version-0 branch
          recovery rebuilds through the index's canonical bottom-up
          [bulk_load] and byte-reproduces the original commit — the
          record the online reshard journals per migrated branch. *)

type error =
  [ `Tampered of int  (** checksum failure at this byte offset *)
  | `Malformed of string ]

val pp_error : Format.formatter -> error -> unit

val encode_record : seq:int -> record -> string
(** One complete frame (length prefix, checksum, payload) for appending.
    [seq] is the journal-wide monotone sequence number; the checkpoint
    manifest records the last sequence number captured by a snapshot, so
    a crash {e between} manifest publication and journal truncation
    replays nothing twice. *)

type scan_result = {
  entries : (int * record) list;  (** (sequence number, record), in order *)
  ends : int list;
      (** byte offset of the end of each valid record — the crash
          simulator's oracle for "which committed prefix must survive a
          truncation at offset L" *)
  valid_prefix : int;  (** offset where the last valid record ends *)
  clamped_bytes : int;  (** torn-tail bytes after [valid_prefix] *)
}

val scan : string -> (scan_result, error) result
(** Total on arbitrary bytes: every outcome is [Ok] (possibly clamped) or
    a typed [error] — never an exception. *)
