(* Fixed-size domain pool.  See pool.mli for the determinism and memory
   model contract.

   The design is a single mutex-guarded task queue with a caller-helps
   discipline: [run] enqueues every task, wakes the workers, then the
   calling domain drains the queue alongside them and finally blocks on a
   condition until the outstanding count reaches zero.  Workers are
   spawned once in [create] and park in [Condition.wait] between batches,
   so a commit pays two lock round-trips per task, not a domain spawn. *)

type t = {
  width : int;  (* parallel width including the caller; >= 1 *)
  mutex : Mutex.t;
  nonempty : Condition.t;  (* signalled when tasks arrive or on shutdown *)
  drained : Condition.t;  (* signalled when [pending] reaches zero *)
  queue : (unit -> unit) Queue.t;
  mutable pending : int;  (* enqueued-but-unfinished task count *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let domains t = if t.workers = [] then 1 else t.width

(* A task finished under the lock: decrement and wake the waiter. *)
let finish_one t =
  t.pending <- t.pending - 1;
  if t.pending = 0 then Condition.broadcast t.drained

let worker_loop t =
  let rec loop () =
    match Queue.take_opt t.queue with
    | Some task ->
        Mutex.unlock t.mutex;
        task ();
        Mutex.lock t.mutex;
        finish_one t;
        loop ()
    | None ->
        if t.stopping then Mutex.unlock t.mutex
        else begin
          Condition.wait t.nonempty t.mutex;
          loop ()
        end
  in
  Mutex.lock t.mutex;
  loop ()

(* Pools that are never shut down explicitly are joined at exit so worker
   domains do not outlive the program's at_exit phase. *)
let registry : t list ref = ref []
let registry_mutex = Mutex.create ()

let rec shutdown t =
  Mutex.lock t.mutex;
  let workers = t.workers in
  t.workers <- [];
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join workers;
  Mutex.lock registry_mutex;
  registry := List.filter (fun p -> p != t) !registry;
  Mutex.unlock registry_mutex

and shutdown_all () = List.iter shutdown !registry

let at_exit_installed = ref false

let recommended ?(cap = 8) () =
  let base =
    match Option.bind (Sys.getenv_opt "SIRI_DOMAINS") int_of_string_opt with
    | Some n -> n
    | None -> Domain.recommended_domain_count ()
  in
  max 1 (min cap base)

(* Widths beyond what the host can actually run in parallel buy queue
   traffic, not speed (BENCH_parallel.json records 0.32-0.80x at every
   width > 1 on a 1-core host), so an explicit [~domains] request is
   clamped to the hardware.  SIRI_DOMAINS stays an explicit override —
   it replaces the hardware figure entirely, so CI on small hosts can
   still force real worker domains. *)
let host_limit () =
  match Option.bind (Sys.getenv_opt "SIRI_DOMAINS") int_of_string_opt with
  | Some n -> max 1 n
  | None -> max 1 (Domain.recommended_domain_count ())

let create ?domains () =
  let width =
    match domains with
    | Some n -> max 1 (min n (host_limit ()))
    | None -> recommended ()
  in
  let t =
    { width;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      drained = Condition.create ();
      queue = Queue.create ();
      pending = 0;
      stopping = false;
      workers = [] }
  in
  if width > 1 then begin
    t.workers <- List.init (width - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
    Mutex.lock registry_mutex;
    registry := t :: !registry;
    if not !at_exit_installed then begin
      at_exit_installed := true;
      at_exit shutdown_all
    end;
    Mutex.unlock registry_mutex
  end;
  t

let sequential =
  { width = 1;
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    drained = Condition.create ();
    queue = Queue.create ();
    pending = 0;
    stopping = false;
    workers = [] }

let run t tasks =
  let n = Array.length tasks in
  if n = 0 then ()
  else if t.workers = [] || n = 1 then Array.iter (fun f -> f ()) tasks
  else begin
    (* First failure wins; the rest of the batch still runs so the pool
       is quiescent (and reusable) when we re-raise. *)
    let failure = Atomic.make None in
    let wrap f () =
      try f ()
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set failure None (Some (e, bt)))
    in
    Mutex.lock t.mutex;
    Array.iter (fun f -> Queue.add (wrap f) t.queue) tasks;
    t.pending <- t.pending + n;
    Condition.broadcast t.nonempty;
    (* Caller helps drain, then waits for stragglers. *)
    let rec help () =
      match Queue.take_opt t.queue with
      | Some task ->
          Mutex.unlock t.mutex;
          task ();
          Mutex.lock t.mutex;
          finish_one t;
          help ()
      | None ->
          while t.pending > 0 do
            Condition.wait t.drained t.mutex
          done;
          Mutex.unlock t.mutex
    in
    help ();
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let map t f arr =
  let n = Array.length arr in
  if n <= 1 || t.workers = [] then Array.map f arr
  else begin
    let out = Array.make n None in
    (* A few chunks per domain smooths out uneven task costs without
       shrinking tasks below the point where queue traffic dominates.
       Chunk boundaries depend only on [n] and the pool width, and slot
       [j] is always written from input [j] — deterministic ordering. *)
    let chunks = min n (t.width * 4) in
    let tasks =
      Array.init chunks (fun c ->
          let lo = c * n / chunks and hi = (c + 1) * n / chunks in
          fun () ->
            for j = lo to hi - 1 do
              out.(j) <- Some (f arr.(j))
            done)
    in
    run t tasks;
    Array.map
      (function Some x -> x | None -> invalid_arg "Pool.map: missing result")
      out
  end

let map_list t f xs = Array.to_list (map t f (Array.of_list xs))
