(** A dependency-free fixed-size domain pool for the commit pipeline.

    The pool spawns its worker domains once at {!create} and reuses them
    for every subsequent {!run}/{!map} — commits are frequent and small,
    so per-call [Domain.spawn] (tens of microseconds plus a minor heap)
    would dominate the very hashing work we are trying to parallelize.

    {b Determinism.}  {!map} writes result [j] into slot [j] of a
    fixed-size output array regardless of which worker computes it, and
    chunk boundaries depend only on the input length and the pool width —
    never on scheduling.  Callers that keep their task functions pure
    therefore observe byte-identical output for any [domains], which is
    what lets the Merkle commit pipeline guarantee identical root hashes
    at [domains=1] and [domains=8].

    {b Sequential fallback.}  A pool with [domains = 1] spawns no workers
    at all: {!run} and {!map} degrade to a plain loop in the calling
    domain, so single-core deployments pay nothing for the abstraction.

    {b Memory model.}  Task functions must not touch shared mutable
    state; the pool gives them disjoint output slots and publishes their
    writes to the caller via the mutex guarding the task queue (release
    on the worker's final decrement, acquire on the caller's wait), so no
    additional synchronization is needed for results. *)

type t
(** A pool of worker domains (possibly zero). *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains (the caller
    participates as the remaining one).  [domains] defaults to
    {!recommended}[ ()] and is clamped to at least 1 {e and} to the
    host's parallel capacity ([Domain.recommended_domain_count ()]): on
    a 1-core host every request collapses to the sequential fallback, so
    the PR-4 pipeline no longer loses by default where extra domains
    cannot help.  Setting [SIRI_DOMAINS] overrides the hardware figure
    explicitly (benchmarks, CI on small hosts). *)

val domains : t -> int
(** Parallel width of the pool, including the calling domain; [>= 1]. *)

val sequential : t
(** A shared width-1 pool: no workers, direct execution.  Used as the
    default by every [?pool] entry point in the indexes. *)

val recommended : ?cap:int -> unit -> int
(** [Domain.recommended_domain_count ()] capped at [cap] (default 8), or
    the value of the [SIRI_DOMAINS] environment variable when set (still
    capped); always at least 1. *)

val run : t -> (unit -> unit) array -> unit
(** Execute every thunk, spread over the pool; returns when all have
    finished.  The calling domain helps drain the queue.  If any thunk
    raises, the first exception (in completion order) is re-raised after
    all tasks have completed; the pool remains usable. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f arr] is [Array.map f arr] computed in parallel chunks.
    Output ordering is deterministic: result [j] always corresponds to
    input [j].  Falls back to a sequential [Array.map] when the pool has
    width 1 or the input has fewer than two elements. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over a list, preserving order. *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent; {!run}/{!map} on a pool after
    [shutdown] fall back to sequential execution.  Pools that are never
    shut down explicitly are joined by an [at_exit] hook. *)
