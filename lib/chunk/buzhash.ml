(* Cyclic polynomial (Buzhash): h = rotl1(h) xor T[incoming]
                                    xor rotl_{window mod 61}(T[outgoing]).
   We work in 61-bit arithmetic (a Mersenne-like width that fits OCaml's
   63-bit native int on 64-bit platforms) so rotations are cheap and
   deterministic across platforms. *)

let width = 61
let mask = (1 lsl width) - 1

let rotl x n =
  let n = n mod width in
  ((x lsl n) lor (x lsr (width - n))) land mask

(* Deterministic substitution table from a splitmix64-style generator, so
   chunking is stable across runs and platforms. *)
let table =
  let state = ref 0x1E3779B97F4A7C15 in
  let next () =
    state := (!state + 0x232BE59BD9B4E019) land max_int;
    let z = !state in
    let z = (z lxor (z lsr 31)) * 0x2FB5D329728EA185 land max_int in
    let z = (z lxor (z lsr 27)) * 0x21DADEF4BC2DD44D land max_int in
    (z lxor (z lsr 33)) land mask
  in
  Array.init 256 (fun _ -> next ())

type t = {
  win : Bytes.t;          (* circular buffer of the last [window] bytes *)
  mutable pos : int;      (* next slot to overwrite *)
  mutable count : int;    (* total bytes fed since reset *)
  mutable h : int;
  out_rot : int;          (* rotation applied to the outgoing byte's term *)
}

let create ~window =
  if window <= 0 then invalid_arg "Buzhash.create: window must be positive";
  { win = Bytes.make window '\000';
    pos = 0;
    count = 0;
    h = 0;
    out_rot = window mod width }

let window t = Bytes.length t.win

let reset t =
  t.pos <- 0;
  t.count <- 0;
  t.h <- 0

let roll t c =
  let w = Bytes.length t.win in
  let h = rotl t.h 1 in
  let h =
    if t.count >= w then
      (* Expire the byte leaving the window: its term has been rotated
         [window] times since it entered. *)
      h lxor rotl table.(Char.code (Bytes.get t.win t.pos)) t.out_rot
    else h
  in
  let h = h lxor table.(Char.code c) in
  Bytes.set t.win t.pos c;
  t.pos <- (t.pos + 1) mod w;
  t.count <- t.count + 1;
  t.h <- h;
  h

let value t = t.h
let fed t = t.count

let hash_string ~window s =
  let t = create ~window in
  String.iter (fun c -> ignore (roll t c)) s;
  value t
