(** Buzhash — a cyclic-polynomial rolling hash over a fixed-size byte window.

    This is the "Rabin fingerprint" role in POS-Tree: the hash of the last
    [window] bytes is compared against a boundary pattern to decide where
    nodes split.  The hash is deterministic (fixed substitution table), and
    rolling: each input byte updates it in O(1). *)

type t
(** Mutable rolling state. *)

val create : window:int -> t
(** A fresh state with an empty window.  [window] must be positive. *)

val window : t -> int
val reset : t -> unit

val roll : t -> char -> int
(** Push one byte through the window and return the updated hash value.
    Until [window] bytes have been fed the hash covers only what was fed. *)

val value : t -> int
(** Current hash value. *)

val fed : t -> int
(** Number of bytes fed since the last {!reset} (not capped at the window). *)

val hash_string : window:int -> string -> int
(** Hash of the last [window] bytes of [s] (or all of [s] if shorter),
    computed by rolling from a fresh state — used in tests as the reference
    for the rolling property. *)
