module Hash = Siri_crypto.Hash

type config = {
  window : int;
  pattern_bits : int;
  min_size : int;
  max_size : int;
}

let config ?(window = 67) ?(min_size = 0) ?max_size ~pattern_bits () =
  if pattern_bits < 1 || pattern_bits > 32 then
    invalid_arg "Chunker.config: pattern_bits out of range";
  let max_size =
    match max_size with Some m -> m | None -> 64 * (1 lsl pattern_bits)
  in
  if min_size < 0 || max_size <= min_size then
    invalid_arg "Chunker.config: bad min/max sizes";
  { window; pattern_bits; min_size; max_size }

let config_for_leaf_size target =
  let rec bits b = if 1 lsl b >= target || b >= 30 then b else bits (b + 1) in
  config ~pattern_bits:(bits 1) ()

type t = {
  c : config;
  bh : Buzhash.t;
  mask : int;
  mutable bytes : int;    (* bytes since last boundary *)
  mutable matched : bool; (* pattern seen within the current item run *)
}

let create c =
  { c;
    bh = Buzhash.create ~window:c.window;
    mask = (1 lsl c.pattern_bits) - 1;
    bytes = 0;
    matched = false }

let conf t = t.c

let reset t =
  Buzhash.reset t.bh;
  t.bytes <- 0;
  t.matched <- false

let feed t item =
  (* The window rolls within one item only: whether an item carries a
     boundary is then a property of the item's own bytes, so re-chunking
     after an edit realigns with the old boundaries at the very next
     pattern-carrying item (fast resynchronisation). *)
  Buzhash.reset t.bh;
  let n = String.length item in
  for i = 0 to n - 1 do
    let h = Buzhash.roll t.bh item.[i] in
    t.bytes <- t.bytes + 1;
    if (not t.matched) && t.bytes >= t.c.min_size && h land t.mask = t.mask
    then t.matched <- true
  done;
  let boundary = t.matched || t.bytes >= t.c.max_size in
  if boundary then reset t;
  boundary

let size t = t.bytes

let hash_boundary c h =
  (* Fold the first 8 digest bytes into an int and test the pattern; the
     digest is uniform so any fixed bits work. *)
  let v =
    let acc = ref 0 in
    for i = 0 to 7 do
      acc := (!acc lsl 8) lor Hash.byte h i
    done;
    !acc
  in
  let mask = (1 lsl c.pattern_bits) - 1 in
  v land mask = mask

let split c items =
  let t = create c in
  let chunks = ref [] and current = ref [] in
  let flush () =
    if !current <> [] then begin
      chunks := List.rev !current :: !chunks;
      current := []
    end
  in
  List.iter
    (fun item ->
      current := item :: !current;
      if feed t item then flush ())
    items;
  flush ();
  List.rev !chunks
