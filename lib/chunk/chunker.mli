(** Item-granular content-defined chunking.

    POS-Tree partitions an ordered sequence of items (records at the leaf
    level, [split-key, child-hash] pairs in internal levels) into nodes.  A
    chunker consumes items one at a time and announces after each whether a
    node boundary falls at its end.

    Boundary rule at the leaf level: a Buzhash rolling hash is computed over
    the serialized bytes of each item (the window rolls within one item); if
    at any byte — once the chunk holds at least [min_size] bytes — the low
    [pattern_bits] bits of the hash are all ones, the chunk ends at the end
    of the current item.  A chunk is also force-cut at [max_size] bytes.
    Because carrying a boundary is a property of an item's own bytes, the
    partition depends only on the item sequence (Structurally Invariant,
    Definition 3.1(1)) and re-chunking after an edit realigns with the old
    boundaries at the next boundary-carrying item.

    Internal levels instead test the child's cryptographic hash directly
    against the pattern (see {!hash_boundary}) — the POS-Tree optimisation
    that avoids re-hashing inside the sliding window. *)

type config = {
  window : int;  (** rolling-hash window in bytes (paper/Noms default: 67) *)
  pattern_bits : int;
      (** boundary when the low [pattern_bits] bits are all ones; expected
          chunk size ≈ [2^pattern_bits] bytes *)
  min_size : int;  (** no boundary before this many bytes *)
  max_size : int;  (** force a boundary at this many bytes *)
}

val config :
  ?window:int -> ?min_size:int -> ?max_size:int -> pattern_bits:int -> unit ->
  config
(** Defaults: [window = 67], [min_size = 0], [max_size = 64 * 2^pattern_bits]
    (rare enough that force-cuts are exceptional). *)

val config_for_leaf_size : int -> config
(** A config whose expected chunk size is the given number of bytes. *)

type t

val create : config -> t
val conf : t -> config

val reset : t -> unit
(** Forget all rolling state (start of a fresh level / segment). *)

val feed : t -> string -> bool
(** [feed t item] absorbs one item's bytes; [true] means a node boundary
    falls after this item (state has been reset). *)

val size : t -> int
(** Bytes absorbed since the last boundary. *)

val hash_boundary : config -> Siri_crypto.Hash.t -> bool
(** Internal-level rule: boundary iff the low [pattern_bits] bits of the
    first 8 bytes of the digest are all ones. *)

val split : config -> string list -> string list list
(** Partition a whole item sequence into chunks from a fresh state.  Every
    chunk is non-empty; concatenating the chunks yields the input. *)
