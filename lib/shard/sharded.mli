(** The sharded keyspace engine: [N] independent {!Siri_wal.Durable}
    engines — each with its own store, index, WAL journal and optional
    pack backend — behind one keyspace, one branch namespace and one
    {e composite} Merkle root per branch.

    {b Layout.}  A sharded directory holds

    - [SHARDS] — the partition manifest ({!Partition.to_string}), fixed
      at create time and checked on every reopen;
    - [shard.0] … [shard.N-1] — one complete {!Siri_wal.Durable}
      directory per shard;
    - [top] — the composite journal: one checksummed frame per commit
      or fork carrying its global sequence number, branch, composite
      root and the full shard-root vector.

    {b Commit protocol.}  Every commit takes the next {e global}
    sequence number, routes its batch with {!Partition.split_ops}, and
    runs one {!Siri_wal.Durable.commit} per touched shard {e
    concurrently} (see [runner] below), each stamped with the global
    number.  Only after every shard commit has landed is the composite
    record appended (flushed, fsynced when [sync]) to [top] — the
    commit point of the whole operation.

    {b Recovery invariant: all-or-clamped.}  [open_] scans [top]
    (clamping a torn tail) to find the last {e published} sequence [S],
    then opens every shard with [replay_cap = S]: shard-journal records
    beyond [S] were never published and are truncated at their frame
    boundary, so a SIGKILL anywhere inside the commit fan-out rolls
    {e every} shard back to the same global prefix — never a mix of
    shard generations.  Finally each branch's composite root is
    recomputed from the recovered shard roots and checked against the
    journal's last published value; a mismatch refuses to open
    ([`Malformed]), because it means some shard's state is not the one
    the composite commits to.

    Shard placement, the scheme and the count are all bound into the
    composite digest ({!Composite}), and proofs are two-layer
    ({!Shard_proof}).

    Handles are single-writer, exactly like {!Siri_wal.Durable}: one
    committer at a time, concurrent readers only through views the
    caller snapshots itself.  If {!commit} raises, the handle must be
    discarded — the directory recovers to the published prefix on the
    next {!open_}. *)

module Kv = Siri_core.Kv
module Hash = Siri_crypto.Hash
module Generic = Siri_core.Generic
module Durable = Siri_wal.Durable
module Wal = Siri_wal.Wal

type t

type runner = [ `Pool | `Threads | `Inline ]
(** How the per-shard commit fan-out runs.  [`Pool] (default): a
    {!Siri_parallel.Pool} sized one domain per shard (clamped to the
    host) — the standalone/bench path, where no concurrent reader ever
    observes the shard stores mid-commit.  [`Threads]: one systhread
    per touched shard — journal writes and fsyncs overlap but index
    builds interleave on one domain, preserving the single-domain
    store discipline the server's lock-free snapshot readers rely on.
    [`Inline]: sequential, for differential tests. *)

type head = {
  seq : int;  (** global sequence number of the publishing record *)
  composite : Hash.t;
  roots : Hash.t array;
}

type recovery = {
  last_seq : int;  (** last published global sequence number *)
  top_clamped_bytes : int;  (** torn tail clamped off the top journal *)
  capped : int;  (** unpublished shard-journal records rolled back *)
  shards : Durable.recovery array;
}

val open_ :
  ?sync:bool ->
  ?backend:Durable.backend ->
  ?runner:runner ->
  ?spec:Partition.t ->
  dir:string ->
  empty_index:(unit -> Generic.t) ->
  unit ->
  (t, Wal.error) result
(** Open (creating if needed) and recover as described above.
    [empty_index] is a {e factory}: it is called once per shard and
    must return a fresh instance (own store) each time.  [spec]
    (default [hash:4]) applies only when the directory is created; an
    existing manifest wins, and an explicit [spec] that contradicts it
    is refused ([`Malformed]) rather than silently re-routed. *)

val recovery : t -> recovery
val spec : t -> Partition.t
val dir : t -> string
val shards : t -> Durable.t array
(** The per-shard engines, for stats/scrub-style read-only access. *)

val branches : t -> string list
val last_seq : t -> int
val sink : t -> Siri_telemetry.Telemetry.sink
(** Shard 0's store sink; the factory shares one sink across shards
    when aggregate telemetry is wanted. *)

val views : t -> branch:string -> Generic.t array
(** One index view per shard at the branch head — the unit the server
    snapshots and {!Shard_proof} consumes. *)

val head : t -> branch:string -> head
val get : t -> branch:string -> Kv.key -> Kv.value option

val get_many :
  t -> branch:string -> Kv.key list -> (Kv.key * Kv.value option) list
(** Batched point lookups: keys are grouped per shard once and the
    per-shard single-walk batches dispatch through the same runner as
    the commit fan-out ([`Pool]: one domain per touched shard;
    [`Threads]: one systhread; [`Inline]: sequential).  Counts
    [shard.get_many.parts] by touched shards. *)

val scan :
  ?lo:Kv.key -> ?hi:Kv.key -> t -> branch:string -> (Kv.key * Kv.value) Seq.t
(** Streaming ordered read over the half-open interval [[lo, hi)] across
    the shards, in global key order ({!Views.scan}).  Range scheme:
    touches exactly the contiguous shard interval the bounds can route
    to — a single-shard interval streams from one shard (telemetry:
    [shard.scan.fanout]); hash scheme: lazy k-way merge of all shards.
    Raises {!Generic.Unsupported} for MBT. *)

type shard_stat = {
  shard : int;
  keys : int;  (** live records in this shard at the branch head *)
  nodes : int;  (** reachable index nodes *)
  bytes : int;  (** bytes of those nodes *)
  root : Hash.t;
}

val shard_stats : t -> branch:string -> shard_stat array
(** Per-shard size/key-count figures at a branch head — the balance
    telemetry that decides when an online {!reshard} is worth it.
    O(reachable nodes) per shard: a stats/CLI path, not a hot path. *)

val prove_many : t -> branch:string -> Kv.key list -> Shard_proof.t

val commit : t -> branch:string -> message:string -> Kv.op list -> head
(** Fan out, then publish; see the commit protocol above.  Ops on
    untouched shards cost nothing (an empty batch routes to shard 0 so
    the commit is still journaled somewhere). *)

val fork : t -> from:string -> string -> head
(** Forks hit {e every} shard (the branch must exist everywhere), under
    one global sequence number and one composite record. *)

val checkpoint : t -> unit
(** Checkpoint every shard (concurrently, same runner), then compact
    the top journal to one record per branch — atomically, via the same
    tmp+fsync+rename protocol as the shard manifests. *)

val generation : t -> int
(** Layout generation: 0 is the flat as-created layout, each successful
    {!reshard} moves to the next generation under [dir/gen.<g>/]. *)

val reshard : t -> shards:int -> (t, Wal.error) result
(** Online reshard [N -> M]: stream every live entry of every branch out
    of the old shards (through {!scan}, in key order), split it by the
    new partition function, and bulk-load [M] fresh shards — the loads
    fan out through the same runner as commits — in a staging directory
    [dir/gen.<g+1>.tmp].  Once every staging shard is checkpointed and
    the staging composite journal is written, the staging directory is
    renamed to [dir/gen.<g+1>] and the [SHARDS] manifest is atomically
    replaced naming the new spec and generation — {e the} commit point.
    A SIGKILL at any byte offset before it leaves the old layout live
    (staging is swept on the next open); after it, the new layout is
    live and the old one is swept.  Never a mix.

    Branch ancestry is flattened: every non-master branch is recreated
    as a fork of the (still empty) master plus one bulk commit, so each
    branch's content lands through the index's canonical [bulk_load].
    Scheme is preserved; only the count changes.

    On success the passed handle is {e consumed} (closed) and a fresh
    handle on the new layout is returned — reopening also re-verifies
    every branch's composite against the migrated shard roots.  On
    [Error] the staging directory has been removed, the old layout was
    never touched, and the passed handle remains usable. *)

val close : t -> unit
