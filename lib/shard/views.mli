(** Read helpers over an array of per-shard index views (one
    {!Siri_core.Generic.t} per shard, in shard order) — shared by the
    sharded engine, the server's snapshot read path and the CLI.  Pure
    routing + delegation; all filter/cache tiering comes from the
    underlying {!Siri_core.Generic} entry points. *)

module Kv = Siri_core.Kv
module Hash = Siri_crypto.Hash
module Generic = Siri_core.Generic

val get : Partition.t -> Generic.t array -> Kv.key -> Kv.value option

val get_many :
  Partition.t -> Generic.t array -> Kv.key list ->
  (Kv.key * Kv.value option) list
(** One batched lookup per touched shard; results in input key order. *)

val scan :
  Partition.t -> Generic.t array -> lo:Kv.key option -> hi:Kv.key option ->
  (Kv.key * Kv.value) Seq.t
(** Streaming ordered read over [[lo, hi)] across the shards, in global
    key order.  Range scheme: only the contiguous shard interval holding
    the bounds is touched (lazy concatenation — a single-shard interval
    streams from exactly one shard); hash scheme: all shards, k-way
    merged lazily.  Counts [shard.scan] per call and [shard.scan.fanout]
    by the number of shards the bounds can touch.  Raises
    {!Generic.Unsupported} when the underlying kind is MBT. *)

val roots : Generic.t array -> Hash.t array

val composite : Partition.t -> Generic.t array -> Hash.t
(** {!Composite.root} over {!roots}. *)
