module Kv = Siri_core.Kv

type scheme = Hash | Range

type t = { scheme : scheme; shards : int }

let max_shards = 64

let make scheme ~shards =
  if shards < 1 || shards > max_shards then
    invalid_arg
      (Printf.sprintf "Partition.make: shards %d not in [1, %d]" shards
         max_shards);
  { scheme; shards }

(* FNV-1a, 64-bit.  Not cryptographic and does not need to be: shard
   placement is authenticated by the composite root, not by the router —
   an adversary relocating a claim is caught by the routing check in
   {!Shard_proof.verify}, whatever function this is. *)
let fnv1a key =
  let h = ref (-3750763034362895579L) (* 0xcbf29ce484222325 *) in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
             1099511628211L)
    key;
  (* Mask after the 63-bit truncation, not before: clearing only the
     64-bit sign still leaves bit 62 set on half the hashes, which
     [Int64.to_int] would turn into a negative native int. *)
  Int64.to_int !h land max_int

let shard_of_key t key =
  if t.shards = 1 then 0
  else
    match t.scheme with
    | Hash -> fnv1a key mod t.shards
    | Range ->
        let byte i = if i < String.length key then Char.code key.[i] else 0 in
        let b = (byte 0 * 256) + byte 1 in
        (* 65536 two-byte prefixes scaled into [shards] equal buckets *)
        b * t.shards / 65536

(* The smallest key whose zero-padded two-byte prefix is [b]: used to
   decide whether any key strictly below a scan's upper bound can still
   carry prefix [b], which makes the interval bound below tight even when
   the bound sits exactly on a shard boundary. *)
let minimal_key_of_prefix b =
  if b = 0 then ""
  else if b mod 256 = 0 then String.make 1 (Char.chr (b / 256))
  else
    let s = Bytes.create 2 in
    Bytes.set s 0 (Char.chr (b / 256));
    Bytes.set s 1 (Char.chr (b mod 256));
    Bytes.to_string s

(* Largest two-byte prefix reachable by a key strictly below [hi], or
   [None] when no key sorts below [hi] (i.e. [hi = ""]). *)
let max_prefix_below hi =
  if hi = "" then None
  else begin
    let byte i = if i < String.length hi then Char.code hi.[i] else 0 in
    let b = (byte 0 * 256) + byte 1 in
    if String.compare (minimal_key_of_prefix b) hi < 0 then Some b
    else if b > 0 then Some (b - 1)
    else None
  end

let shard_interval t ~lo ~hi =
  let empty =
    match (lo, hi) with
    | Some l, Some h -> String.compare l h >= 0
    | _, Some h -> h = ""
    | _ -> false
  in
  if empty then None
  else
    match t.scheme with
    | Hash -> Some (0, t.shards - 1)
    | Range ->
        let a = match lo with None -> 0 | Some l -> shard_of_key t l in
        let b =
          match hi with
          | None -> t.shards - 1
          | Some h -> (
              match max_prefix_below h with
              | None -> a (* unreachable: emptiness handled above *)
              | Some p -> max a (p * t.shards / 65536))
        in
        Some (a, b)

let split_by t key_of xs =
  let buckets = Array.make t.shards [] in
  List.iter
    (fun x ->
      let i = shard_of_key t (key_of x) in
      buckets.(i) <- x :: buckets.(i))
    xs;
  let out = ref [] in
  for i = t.shards - 1 downto 0 do
    match buckets.(i) with
    | [] -> ()
    | xs -> out := (i, List.rev xs) :: !out
  done;
  !out

let split_keys t keys = split_by t Fun.id keys
let split_ops t ops = split_by t Kv.key_of_op ops

let scheme_name = function Hash -> "hash" | Range -> "range"

let to_string t = Printf.sprintf "%s:%d" (scheme_name t.scheme) t.shards

let of_string s =
  match String.split_on_char ':' s with
  | [ scheme; n ] -> (
      let scheme_r =
        match scheme with
        | "hash" -> Ok Hash
        | "range" -> Ok Range
        | other -> Error (Printf.sprintf "unknown partition scheme %S" other)
      in
      match (scheme_r, int_of_string_opt n) with
      | Error _ as e, _ -> e
      | Ok _, None -> Error (Printf.sprintf "bad shard count %S" n)
      | Ok scheme, Some shards ->
          if shards < 1 || shards > max_shards then
            Error (Printf.sprintf "shard count %d not in [1, %d]" shards
                     max_shards)
          else Ok { scheme; shards })
  | _ -> Error (Printf.sprintf "bad partition spec %S (want scheme:count)" s)

let pp fmt t = Format.pp_print_string fmt (to_string t)
