module Hash = Siri_crypto.Hash

let arity = 4

let scheme_byte = function Partition.Hash -> '\x00' | Partition.Range -> '\x01'

let leaf spec i r =
  let b = Buffer.create 64 in
  Buffer.add_string b "siri.shard.leaf";
  Buffer.add_char b (scheme_byte spec.Partition.scheme);
  Buffer.add_string b (string_of_int spec.Partition.shards);
  Buffer.add_char b '.';
  Buffer.add_string b (string_of_int i);
  Buffer.add_char b '.';
  Buffer.add_string b (Hash.to_raw r);
  Hash.of_string (Buffer.contents b)

let node children =
  let b = Buffer.create (16 + (32 * Array.length children)) in
  Buffer.add_string b "siri.shard.node";
  Array.iter (fun h -> Buffer.add_string b (Hash.to_raw h)) children;
  Hash.of_string (Buffer.contents b)

let root spec roots =
  if Array.length roots <> spec.Partition.shards then
    invalid_arg
      (Printf.sprintf "Composite.root: %d roots for %d shards"
         (Array.length roots) spec.Partition.shards);
  let level = ref (Array.mapi (fun i r -> leaf spec i r) roots) in
  while Array.length !level > 1 do
    let n = Array.length !level in
    let groups = (n + arity - 1) / arity in
    level :=
      Array.init groups (fun g ->
          node (Array.sub !level (g * arity) (min arity (n - (g * arity)))))
  done;
  let b = Buffer.create 48 in
  Buffer.add_string b "siri.shard.top";
  Buffer.add_char b (scheme_byte spec.Partition.scheme);
  Buffer.add_string b (string_of_int spec.Partition.shards);
  Buffer.add_char b '.';
  Buffer.add_string b (Hash.to_raw !level.(0));
  Hash.of_string (Buffer.contents b)
