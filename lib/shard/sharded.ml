(* See sharded.mli for the layout, commit protocol and recovery
   invariant. *)

module Kv = Siri_core.Kv
module Hash = Siri_crypto.Hash
module Generic = Siri_core.Generic
module Store = Siri_store.Store
module Engine = Siri_forkbase.Engine
module Durable = Siri_wal.Durable
module Wal = Siri_wal.Wal
module Pool = Siri_parallel.Pool
module Telemetry = Siri_telemetry.Telemetry
module Wire = Siri_codec.Wire
module Frame = Siri_codec.Frame

type runner = [ `Pool | `Threads | `Inline ]

type head = {
  seq : int;
  composite : Hash.t;
  roots : Hash.t array;
}

type recovery = {
  last_seq : int;
  top_clamped_bytes : int;
  capped : int;
  shards : Durable.recovery array;
}

type t = {
  dir : string;
  sync : bool;
  spec : Partition.t;
  runner : runner;
  pool : Pool.t option;  (* Some iff runner = `Pool and shards > 1 *)
  shards : Durable.t array;
  mutable top : out_channel option;
  mutable next_seq : int;
  recovered : recovery;
}

let manifest_magic = "SIRISHARD1"
let top_magic = "SIRITOPJ1"

let manifest_path dir = Filename.concat dir "SHARDS"
let top_path dir = Filename.concat dir "top"
let shard_dir dir i = Filename.concat dir (Printf.sprintf "shard.%d" i)

let recovery t = t.recovered
let spec t = t.spec
let dir t = t.dir
let shards t = t.shards
let last_seq t = t.next_seq - 1
let sink t = Store.sink (Engine.store (Durable.engine t.shards.(0)))
let branches t = Engine.branches (Durable.engine t.shards.(0))

(* --- the composite journal ---------------------------------------------- *)

type top_entry = {
  e_seq : int;
  e_branch : string;
  e_composite : Hash.t;
  e_roots : Hash.t array;
}

let encode_top_entry e =
  let w = Wire.Writer.create ~capacity:(64 + (32 * Array.length e.e_roots)) () in
  Wire.Writer.varint w e.e_seq;
  Wire.Writer.str w e.e_branch;
  Wire.Writer.hash w e.e_composite;
  Wire.Writer.varint w (Array.length e.e_roots);
  Array.iter (fun r -> Wire.Writer.hash w r) e.e_roots;
  Frame.encode (Wire.Writer.contents w)

let decode_top_payload r =
  let e_seq = Wire.Reader.varint r in
  let e_branch = Wire.Reader.str r in
  let e_composite = Wire.Reader.hash r in
  let n = Wire.Reader.varint r in
  if n < 1 || n > Partition.max_shards then
    Error (`Malformed "top journal: shard count out of range")
  else begin
    let e_roots = Array.init n (fun _ -> Wire.Reader.hash r) in
    if not (Wire.Reader.at_end r) then
      Error (`Malformed "top journal: trailing bytes in record")
    else Ok { e_seq; e_branch; e_composite; e_roots }
  end

(* Longest valid prefix of complete checksummed records, same contract
   as {!Wal.scan}: a torn tail is clamped, a complete-but-damaged frame
   is [`Tampered]. *)
let scan_top bytes =
  let len = String.length bytes in
  let mlen = String.length top_magic in
  if len < mlen || String.sub bytes 0 mlen <> top_magic then
    Error (`Malformed "top journal: bad magic")
  else begin
    let rec step pos acc =
      match Frame.step bytes ~pos with
      | Frame.End -> Ok (List.rev acc, pos, 0)
      | Frame.Torn _ -> Ok (List.rev acc, pos, len - pos)
      | Frame.Corrupt -> Error (`Tampered pos)
      | Frame.Frame { payload_off; payload_len; next } -> (
          match
            try
              decode_top_payload
                (Wire.Reader.of_substring bytes ~off:payload_off
                   ~len:payload_len)
            with Wire.Reader.Truncated ->
              Error (`Malformed "top journal: truncated record payload")
          with
          | Error _ as e -> e
          | Ok e -> step next (e :: acc))
    in
    step mlen []
  end

let fsync_out oc = Unix.fsync (Unix.descr_of_out_channel oc)

let open_top_for_append ~sync path =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644
      path
  in
  if out_channel_length oc = 0 then begin
    output_string oc top_magic;
    flush oc;
    if sync then fsync_out oc
  end;
  oc

(* --- fan-out ------------------------------------------------------------- *)

let run_tasks t fs =
  match fs with
  | [] -> ()
  | [ f ] -> f ()
  | fs -> (
      match (t.runner, t.pool) with
      | `Pool, Some pool -> Pool.run pool (Array.of_list fs)
      | `Threads, _ ->
          (* First failure wins; every task still runs to completion so
             the handle's poisoning is at least quiescent. *)
          let failure = Atomic.make None in
          let wrap f () =
            try f ()
            with e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set failure None (Some (e, bt)))
          in
          let ths = List.map (fun f -> Thread.create (wrap f) ()) fs in
          List.iter Thread.join ths;
          (match Atomic.get failure with
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ())
      | (`Pool | `Inline), _ -> List.iter (fun f -> f ()) fs)

(* --- reads --------------------------------------------------------------- *)

let views t ~branch =
  Array.map (fun d -> Engine.index (Durable.engine d) branch) t.shards

let shard_roots t branch =
  Array.map
    (fun d -> (Engine.head (Durable.engine d) branch).Engine.index_root)
    t.shards

let head t ~branch =
  let roots = shard_roots t branch in
  { seq = last_seq t; composite = Composite.root t.spec roots; roots }

let get t ~branch key =
  let i = Partition.shard_of_key t.spec key in
  Engine.get (Durable.engine t.shards.(i)) ~branch key

let get_many t ~branch keys = Views.get_many t.spec (views t ~branch) keys

let prove_many t ~branch keys =
  Shard_proof.prove ~views:(views t ~branch) t.spec keys

(* --- writes -------------------------------------------------------------- *)

let top_channel t =
  match t.top with
  | Some oc -> oc
  | None -> invalid_arg "Sharded: top journal closed"

let publish t ~seq ~branch =
  let roots = shard_roots t branch in
  let composite = Composite.root t.spec roots in
  let oc = top_channel t in
  output_string oc
    (encode_top_entry
       { e_seq = seq; e_branch = branch; e_composite = composite;
         e_roots = roots });
  flush oc;
  if t.sync then fsync_out oc;
  Telemetry.incr (sink t) "shard.publish";
  { seq; composite; roots }

let commit t ~branch ~message ops =
  (* Validate everywhere before journaling anywhere. *)
  Array.iter
    (fun d -> ignore (Engine.head (Durable.engine d) branch : Engine.commit))
    t.shards;
  let seq = t.next_seq in
  let groups =
    match Partition.split_ops t.spec ops with
    | [] -> [ (0, []) ]  (* an empty batch is still a journaled commit *)
    | gs -> gs
  in
  let s = sink t in
  Telemetry.with_span s "shard.commit" @@ fun () ->
  run_tasks t
    (List.map
       (fun (i, ops_i) () ->
         ignore
           (Durable.commit ~seq t.shards.(i) ~branch ~message ops_i
             : Engine.commit))
       groups);
  t.next_seq <- seq + 1;
  Telemetry.incr s "shard.commit";
  Telemetry.incr s ~by:(List.length groups) "shard.commit.parts";
  publish t ~seq ~branch

let fork t ~from name =
  let eng0 = Durable.engine t.shards.(0) in
  if List.mem name (Engine.branches eng0) then
    invalid_arg (Printf.sprintf "Sharded.fork: branch %S exists" name);
  ignore (Engine.head eng0 from : Engine.commit);
  let seq = t.next_seq in
  run_tasks t
    (Array.to_list
       (Array.map (fun d () -> Durable.fork ~seq d ~from name) t.shards));
  t.next_seq <- seq + 1;
  publish t ~seq ~branch:name

let checkpoint t =
  run_tasks t
    (Array.to_list (Array.map (fun d () -> Durable.checkpoint d) t.shards));
  (* Compact the composite journal: the per-branch post-state is all
     recovery needs, and every shard checkpoint above already captured
     sequence numbers up to [last_seq t]. *)
  (match t.top with Some oc -> close_out_noerr oc | None -> ());
  t.top <- None;
  let seq = last_seq t in
  let entries =
    List.map
      (fun branch ->
        let roots = shard_roots t branch in
        { e_seq = seq; e_branch = branch;
          e_composite = Composite.root t.spec roots; e_roots = roots })
      (branches t)
  in
  Store.write_file_atomic ~sync:t.sync (top_path t.dir) (fun oc ->
      output_string oc top_magic;
      List.iter (fun e -> output_string oc (encode_top_entry e)) entries);
  t.top <- Some (open_top_for_append ~sync:t.sync (top_path t.dir));
  Telemetry.incr (sink t) "shard.checkpoint"

let close t =
  (match t.top with
  | None -> ()
  | Some oc ->
      flush oc;
      if t.sync then fsync_out oc;
      close_out_noerr oc;
      t.top <- None);
  Array.iter Durable.close t.shards;
  match t.pool with Some p -> Pool.shutdown p | None -> ()

(* --- open / recover ------------------------------------------------------- *)

let read_manifest dir =
  let path = manifest_path dir in
  if not (Sys.file_exists path) then Ok None
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error msg -> Error (`Malformed msg)
    | content -> (
        match String.split_on_char '\n' content with
        | m :: spec_line :: _ when m = manifest_magic -> (
            match Partition.of_string spec_line with
            | Ok spec -> Ok (Some spec)
            | Error msg -> Error (`Malformed ("shard manifest: " ^ msg)))
        | _ -> Error (`Malformed "shard manifest: bad magic"))

let write_manifest ~sync dir spec =
  Store.write_file_atomic ~sync (manifest_path dir) (fun oc ->
      Printf.fprintf oc "%s\n%s\n" manifest_magic (Partition.to_string spec))

let ensure_dir dir =
  if Sys.file_exists dir then
    if Sys.is_directory dir then Ok ()
    else Error (`Malformed (dir ^ ": not a directory"))
  else
    match Unix.mkdir dir 0o755 with
    | () -> Ok ()
    | exception Unix.Unix_error (e, _, _) ->
        Error (`Malformed (dir ^ ": " ^ Unix.error_message e))

let array_result_map f arr =
  let n = Array.length arr in
  let rec go i acc =
    if i = n then Ok (Array.of_list (List.rev acc))
    else match f arr.(i) with Error _ as e -> e | Ok x -> go (i + 1) (x :: acc)
  in
  go 0 []

let open_ ?(sync = true) ?(backend = `Snapshot) ?(runner = `Pool) ?spec ~dir
    ~empty_index () =
  match ensure_dir dir with
  | Error _ as e -> e
  | Ok () -> (
      match read_manifest dir with
      | Error _ as e -> e
      | Ok manifest -> (
          let spec_r =
            match (manifest, spec) with
            | None, None -> Ok (Partition.make Partition.Hash ~shards:4)
            | None, Some s -> Ok s
            | Some m, None -> Ok m
            | Some m, Some s ->
                if m = s then Ok m
                else
                  Error
                    (`Malformed
                       (Printf.sprintf
                          "partition spec %s requested but directory was \
                           created with %s"
                          (Partition.to_string s) (Partition.to_string m)))
          in
          match spec_r with
          | Error _ as e -> e
          | Ok spec -> (
              if manifest = None then write_manifest ~sync dir spec;
              (* 1. The composite journal names the last published
                 sequence number — the cap every shard replays under. *)
              let tpath = top_path dir in
              let top_r =
                if Sys.file_exists tpath then
                  scan_top (In_channel.with_open_bin tpath In_channel.input_all)
                else Ok ([], 0, 0)
              in
              match top_r with
              | Error _ as e -> e
              | Ok (entries, valid_prefix, top_clamped_bytes) -> (
                  let last =
                    List.fold_left (fun acc e -> max acc e.e_seq) 0 entries
                  in
                  (* 2. Recover every shard, rolled back to the published
                     prefix. *)
                  let shard_r =
                    array_result_map
                      (fun i ->
                        match
                          Durable.open_ ~sync ~backend ~replay_cap:last
                            ~dir:(shard_dir dir i)
                            ~empty_index:(empty_index ()) ()
                        with
                        | Ok d -> Ok d
                        | Error (`Malformed msg) ->
                            Error
                              (`Malformed
                                 (Printf.sprintf "shard %d: %s" i msg))
                        | Error (`Tampered _) as e -> e)
                      (Array.init spec.Partition.shards Fun.id)
                  in
                  match shard_r with
                  | Error _ as e -> e
                  | Ok shards -> (
                      if top_clamped_bytes > 0 then
                        Unix.truncate tpath valid_prefix;
                      (* 3. Cross-shard consistency: one branch set, and
                         per branch the recomputed composite must equal
                         the last published one. *)
                      let branch_sets =
                        Array.map
                          (fun d ->
                            List.sort String.compare
                              (Engine.branches (Durable.engine d)))
                          shards
                      in
                      let consistent =
                        Array.for_all (fun bs -> bs = branch_sets.(0)) branch_sets
                      in
                      if not consistent then
                        Error (`Malformed "shards disagree on the branch set")
                      else begin
                        let published = Hashtbl.create 8 in
                        List.iter
                          (fun e -> Hashtbl.replace published e.e_branch e)
                          entries;
                        let roots_of branch =
                          Array.map
                            (fun d ->
                              (Engine.head (Durable.engine d) branch)
                                .Engine.index_root)
                            shards
                        in
                        let mismatch =
                          List.find_opt
                            (fun branch ->
                              match Hashtbl.find_opt published branch with
                              | None -> false
                              | Some e ->
                                  not
                                    (Hash.equal
                                       (Composite.root spec (roots_of branch))
                                       e.e_composite))
                            branch_sets.(0)
                        in
                        let ghost =
                          Hashtbl.fold
                            (fun b _ acc ->
                              if List.mem b branch_sets.(0) then acc
                              else b :: acc)
                            published []
                        in
                        match (mismatch, ghost) with
                        | Some branch, _ ->
                            Error
                              (`Malformed
                                 (Printf.sprintf
                                    "composite root mismatch on branch %S: \
                                     shard state does not match the \
                                     published composite"
                                    branch))
                        | None, b :: _ ->
                            Error
                              (`Malformed
                                 (Printf.sprintf
                                    "published branch %S missing from shards"
                                    b))
                        | None, [] ->
                            let pool =
                              match runner with
                              | `Pool when spec.Partition.shards > 1 ->
                                  Some
                                    (Pool.create
                                       ~domains:spec.Partition.shards ())
                              | _ -> None
                            in
                            let capped =
                              Array.fold_left
                                (fun acc d ->
                                  acc + (Durable.recovery d).Durable.capped)
                                0 shards
                            in
                            Ok
                              { dir;
                                sync;
                                spec;
                                runner;
                                pool;
                                shards;
                                top =
                                  Some (open_top_for_append ~sync tpath);
                                next_seq = last + 1;
                                recovered =
                                  { last_seq = last;
                                    top_clamped_bytes;
                                    capped;
                                    shards =
                                      Array.map Durable.recovery shards }
                              }
                      end)))))
