(* See sharded.mli for the layout, commit protocol and recovery
   invariant. *)

module Kv = Siri_core.Kv
module Hash = Siri_crypto.Hash
module Generic = Siri_core.Generic
module Store = Siri_store.Store
module Engine = Siri_forkbase.Engine
module Durable = Siri_wal.Durable
module Wal = Siri_wal.Wal
module Pool = Siri_parallel.Pool
module Telemetry = Siri_telemetry.Telemetry
module Wire = Siri_codec.Wire
module Frame = Siri_codec.Frame

type runner = [ `Pool | `Threads | `Inline ]

type head = {
  seq : int;
  composite : Hash.t;
  roots : Hash.t array;
}

type recovery = {
  last_seq : int;
  top_clamped_bytes : int;
  capped : int;
  shards : Durable.recovery array;
}

type t = {
  dir : string;
  sync : bool;
  spec : Partition.t;
  runner : runner;
  pool : Pool.t option;  (* Some iff runner = `Pool and shards > 1 *)
  shards : Durable.t array;
  backend : Durable.backend;
  empty_index : unit -> Generic.t;
  generation : int;
  mutable top : out_channel option;
  mutable next_seq : int;
  recovered : recovery;
}

let manifest_magic = "SIRISHARD1"
let top_magic = "SIRITOPJ1"

let manifest_path dir = Filename.concat dir "SHARDS"

(* Generation-scoped layout: generation 0 is the original flat layout
   ([dir/top], [dir/shard.i] — every pre-reshard directory), generation
   [g > 0] lives under [dir/gen.g/].  A reshard builds the next
   generation in [dir/gen.g.tmp], renames it into place, and flips the
   manifest — the manifest names the only live generation, so everything
   else under [dir] is sweepable garbage. *)
let gen_root dir g =
  if g = 0 then dir else Filename.concat dir (Printf.sprintf "gen.%d" g)

let staging_root dir g = Filename.concat dir (Printf.sprintf "gen.%d.tmp" g)
let top_path dir g = Filename.concat (gen_root dir g) "top"

let shard_dir dir g i =
  Filename.concat (gen_root dir g) (Printf.sprintf "shard.%d" i)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter
        (fun name -> rm_rf (Filename.concat path name))
        (try Sys.readdir path with Sys_error _ -> [||]);
      (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

(* Remove every layout the manifest does not name: superseded
   generations after a reshard, and staging directories a crash left
   mid-build.  Nothing here is ever the live state, so the sweep is
   unconditional and idempotent. *)
let sweep_stale dir ~generation =
  Array.iter
    (fun name ->
      let stale =
        match Scanf.sscanf_opt name "gen.%d%s" (fun g rest -> (g, rest)) with
        | Some (g, "") -> g <> generation
        | Some (_, ".tmp") -> true
        | _ ->
            generation > 0
            && (name = "top"
               || Scanf.sscanf_opt name "shard.%d%s" (fun i rest -> (i, rest))
                  |> Option.fold ~none:false ~some:(fun (_, rest) -> rest = ""))
      in
      if stale then rm_rf (Filename.concat dir name))
    (try Sys.readdir dir with Sys_error _ -> [||])

let recovery t = t.recovered
let spec t = t.spec
let dir t = t.dir
let shards t = t.shards
let last_seq t = t.next_seq - 1
let sink t = Store.sink (Engine.store (Durable.engine t.shards.(0)))
let branches t = Engine.branches (Durable.engine t.shards.(0))

(* --- the composite journal ---------------------------------------------- *)

type top_entry = {
  e_seq : int;
  e_branch : string;
  e_composite : Hash.t;
  e_roots : Hash.t array;
}

let encode_top_entry e =
  let w = Wire.Writer.create ~capacity:(64 + (32 * Array.length e.e_roots)) () in
  Wire.Writer.varint w e.e_seq;
  Wire.Writer.str w e.e_branch;
  Wire.Writer.hash w e.e_composite;
  Wire.Writer.varint w (Array.length e.e_roots);
  Array.iter (fun r -> Wire.Writer.hash w r) e.e_roots;
  Frame.encode (Wire.Writer.contents w)

let decode_top_payload r =
  let e_seq = Wire.Reader.varint r in
  let e_branch = Wire.Reader.str r in
  let e_composite = Wire.Reader.hash r in
  let n = Wire.Reader.varint r in
  if n < 1 || n > Partition.max_shards then
    Error (`Malformed "top journal: shard count out of range")
  else begin
    let e_roots = Array.init n (fun _ -> Wire.Reader.hash r) in
    if not (Wire.Reader.at_end r) then
      Error (`Malformed "top journal: trailing bytes in record")
    else Ok { e_seq; e_branch; e_composite; e_roots }
  end

(* Longest valid prefix of complete checksummed records, same contract
   as {!Wal.scan}: a torn tail is clamped, a complete-but-damaged frame
   is [`Tampered]. *)
let scan_top bytes =
  let len = String.length bytes in
  let mlen = String.length top_magic in
  if len < mlen || String.sub bytes 0 mlen <> top_magic then
    Error (`Malformed "top journal: bad magic")
  else begin
    let rec step pos acc =
      match Frame.step bytes ~pos with
      | Frame.End -> Ok (List.rev acc, pos, 0)
      | Frame.Torn _ -> Ok (List.rev acc, pos, len - pos)
      | Frame.Corrupt -> Error (`Tampered pos)
      | Frame.Frame { payload_off; payload_len; next } -> (
          match
            try
              decode_top_payload
                (Wire.Reader.of_substring bytes ~off:payload_off
                   ~len:payload_len)
            with Wire.Reader.Truncated ->
              Error (`Malformed "top journal: truncated record payload")
          with
          | Error _ as e -> e
          | Ok e -> step next (e :: acc))
    in
    step mlen []
  end

let fsync_out oc = Unix.fsync (Unix.descr_of_out_channel oc)

let open_top_for_append ~sync path =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644
      path
  in
  if out_channel_length oc = 0 then begin
    output_string oc top_magic;
    flush oc;
    if sync then fsync_out oc
  end;
  oc

(* --- fan-out ------------------------------------------------------------- *)

let run_tasks t fs =
  match fs with
  | [] -> ()
  | [ f ] -> f ()
  | fs -> (
      match (t.runner, t.pool) with
      | `Pool, Some pool -> Pool.run pool (Array.of_list fs)
      | `Threads, _ ->
          (* First failure wins; every task still runs to completion so
             the handle's poisoning is at least quiescent. *)
          let failure = Atomic.make None in
          let wrap f () =
            try f ()
            with e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set failure None (Some (e, bt)))
          in
          let ths = List.map (fun f -> Thread.create (wrap f) ()) fs in
          List.iter Thread.join ths;
          (match Atomic.get failure with
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ())
      | (`Pool | `Inline), _ -> List.iter (fun f -> f ()) fs)

(* --- reads --------------------------------------------------------------- *)

let views t ~branch =
  Array.map (fun d -> Engine.index (Durable.engine d) branch) t.shards

let shard_roots t branch =
  Array.map
    (fun d -> (Engine.head (Durable.engine d) branch).Engine.index_root)
    t.shards

let head t ~branch =
  let roots = shard_roots t branch in
  { seq = last_seq t; composite = Composite.root t.spec roots; roots }

let get t ~branch key =
  let i = Partition.shard_of_key t.spec key in
  Engine.get (Durable.engine t.shards.(i)) ~branch key

let get_many t ~branch keys =
  (* Same fan-out discipline as {!commit}: group per shard once, then
     dispatch the per-shard batched walks through the runner — each task
     touches only its own shard's store, so the domain-safety argument is
     the concurrent-commit one.  Results reassemble in input order. *)
  let vs = views t ~branch in
  match Partition.split_keys t.spec keys with
  | [] -> []
  | [ (i, _) ] -> Generic.get_many vs.(i) keys
  | groups ->
      let groups = Array.of_list groups in
      let results = Array.make (Array.length groups) [] in
      run_tasks t
        (List.init (Array.length groups) (fun gi () ->
             let i, ks = groups.(gi) in
             results.(gi) <- Generic.get_many vs.(i) ks));
      Telemetry.incr (sink t) ~by:(Array.length groups) "shard.get_many.parts";
      let found = Hashtbl.create (List.length keys) in
      Array.iter
        (fun rs -> List.iter (fun (k, v) -> Hashtbl.replace found k v) rs)
        results;
      List.map (fun k -> (k, Option.join (Hashtbl.find_opt found k))) keys

let scan ?lo ?hi t ~branch = Views.scan t.spec (views t ~branch) ~lo ~hi

type shard_stat = {
  shard : int;
  keys : int;
  nodes : int;
  bytes : int;
  root : Hash.t;
}

let shard_stats t ~branch =
  Array.mapi
    (fun i v ->
      { shard = i;
        keys = v.Generic.cardinal ();
        nodes = Generic.node_count v;
        bytes = Generic.total_bytes v;
        root = v.Generic.root })
    (views t ~branch)

let prove_many t ~branch keys =
  Shard_proof.prove ~views:(views t ~branch) t.spec keys

(* --- writes -------------------------------------------------------------- *)

let top_channel t =
  match t.top with
  | Some oc -> oc
  | None -> invalid_arg "Sharded: top journal closed"

let publish t ~seq ~branch =
  let roots = shard_roots t branch in
  let composite = Composite.root t.spec roots in
  let oc = top_channel t in
  output_string oc
    (encode_top_entry
       { e_seq = seq; e_branch = branch; e_composite = composite;
         e_roots = roots });
  flush oc;
  if t.sync then fsync_out oc;
  Telemetry.incr (sink t) "shard.publish";
  { seq; composite; roots }

let commit t ~branch ~message ops =
  (* Validate everywhere before journaling anywhere. *)
  Array.iter
    (fun d -> ignore (Engine.head (Durable.engine d) branch : Engine.commit))
    t.shards;
  let seq = t.next_seq in
  let groups =
    match Partition.split_ops t.spec ops with
    | [] -> [ (0, []) ]  (* an empty batch is still a journaled commit *)
    | gs -> gs
  in
  let s = sink t in
  Telemetry.with_span s "shard.commit" @@ fun () ->
  run_tasks t
    (List.map
       (fun (i, ops_i) () ->
         ignore
           (Durable.commit ~seq t.shards.(i) ~branch ~message ops_i
             : Engine.commit))
       groups);
  t.next_seq <- seq + 1;
  Telemetry.incr s "shard.commit";
  Telemetry.incr s ~by:(List.length groups) "shard.commit.parts";
  publish t ~seq ~branch

let fork t ~from name =
  let eng0 = Durable.engine t.shards.(0) in
  if List.mem name (Engine.branches eng0) then
    invalid_arg (Printf.sprintf "Sharded.fork: branch %S exists" name);
  ignore (Engine.head eng0 from : Engine.commit);
  let seq = t.next_seq in
  run_tasks t
    (Array.to_list
       (Array.map (fun d () -> Durable.fork ~seq d ~from name) t.shards));
  t.next_seq <- seq + 1;
  publish t ~seq ~branch:name

let checkpoint t =
  run_tasks t
    (Array.to_list (Array.map (fun d () -> Durable.checkpoint d) t.shards));
  (* Compact the composite journal: the per-branch post-state is all
     recovery needs, and every shard checkpoint above already captured
     sequence numbers up to [last_seq t]. *)
  (match t.top with Some oc -> close_out_noerr oc | None -> ());
  t.top <- None;
  let seq = last_seq t in
  let entries =
    List.map
      (fun branch ->
        let roots = shard_roots t branch in
        { e_seq = seq; e_branch = branch;
          e_composite = Composite.root t.spec roots; e_roots = roots })
      (branches t)
  in
  Store.write_file_atomic ~sync:t.sync (top_path t.dir t.generation) (fun oc ->
      output_string oc top_magic;
      List.iter (fun e -> output_string oc (encode_top_entry e)) entries);
  t.top <-
    Some (open_top_for_append ~sync:t.sync (top_path t.dir t.generation));
  Telemetry.incr (sink t) "shard.checkpoint"

let close t =
  (match t.top with
  | None -> ()
  | Some oc ->
      flush oc;
      if t.sync then fsync_out oc;
      close_out_noerr oc;
      t.top <- None);
  Array.iter Durable.close t.shards;
  match t.pool with Some p -> Pool.shutdown p | None -> ()

(* --- open / recover ------------------------------------------------------- *)

let read_manifest dir =
  let path = manifest_path dir in
  if not (Sys.file_exists path) then Ok None
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error msg -> Error (`Malformed msg)
    | content -> (
        match String.split_on_char '\n' content with
        | m :: spec_line :: rest when m = manifest_magic -> (
            match Partition.of_string spec_line with
            | Error msg -> Error (`Malformed ("shard manifest: " ^ msg))
            | Ok spec -> (
                (* Optional generation line, absent in pre-reshard
                   manifests (= generation 0, the flat layout). *)
                match rest with
                | gen_line :: _
                  when String.length gen_line >= 4
                       && String.sub gen_line 0 4 = "gen " -> (
                    match
                      int_of_string_opt
                        (String.sub gen_line 4 (String.length gen_line - 4))
                    with
                    | Some g when g >= 0 -> Ok (Some (spec, g))
                    | _ ->
                        Error (`Malformed "shard manifest: bad generation line"))
                | _ -> Ok (Some (spec, 0))))
        | _ -> Error (`Malformed "shard manifest: bad magic"))

let write_manifest ~sync dir spec ~generation =
  Store.write_file_atomic ~sync (manifest_path dir) (fun oc ->
      Printf.fprintf oc "%s\n%s\ngen %d\n" manifest_magic
        (Partition.to_string spec) generation)

let ensure_dir dir =
  if Sys.file_exists dir then
    if Sys.is_directory dir then Ok ()
    else Error (`Malformed (dir ^ ": not a directory"))
  else
    match Unix.mkdir dir 0o755 with
    | () -> Ok ()
    | exception Unix.Unix_error (e, _, _) ->
        Error (`Malformed (dir ^ ": " ^ Unix.error_message e))

let array_result_map f arr =
  let n = Array.length arr in
  let rec go i acc =
    if i = n then Ok (Array.of_list (List.rev acc))
    else match f arr.(i) with Error _ as e -> e | Ok x -> go (i + 1) (x :: acc)
  in
  go 0 []

let open_ ?(sync = true) ?(backend = `Snapshot) ?(runner = `Pool) ?spec ~dir
    ~empty_index () =
  match ensure_dir dir with
  | Error _ as e -> e
  | Ok () -> (
      match read_manifest dir with
      | Error _ as e -> e
      | Ok manifest -> (
          let spec_r =
            match (manifest, spec) with
            | None, None -> Ok (Partition.make Partition.Hash ~shards:4, 0)
            | None, Some s -> Ok (s, 0)
            | Some (m, g), None -> Ok (m, g)
            | Some (m, g), Some s ->
                if m = s then Ok (m, g)
                else
                  Error
                    (`Malformed
                       (Printf.sprintf
                          "partition spec %s requested but directory was \
                           created with %s"
                          (Partition.to_string s) (Partition.to_string m)))
          in
          match spec_r with
          | Error _ as e -> e
          | Ok (spec, generation) -> (
              if manifest = None then write_manifest ~sync dir spec ~generation;
              (* Superseded generations and crashed reshard staging dirs
                 are garbage the moment the manifest stops (or never
                 started) naming them. *)
              sweep_stale dir ~generation;
              (* 1. The composite journal names the last published
                 sequence number — the cap every shard replays under. *)
              let tpath = top_path dir generation in
              let top_r =
                if Sys.file_exists tpath then
                  scan_top (In_channel.with_open_bin tpath In_channel.input_all)
                else Ok ([], 0, 0)
              in
              match top_r with
              | Error _ as e -> e
              | Ok (entries, valid_prefix, top_clamped_bytes) -> (
                  let last =
                    List.fold_left (fun acc e -> max acc e.e_seq) 0 entries
                  in
                  (* 2. Recover every shard, rolled back to the published
                     prefix. *)
                  let shard_r =
                    array_result_map
                      (fun i ->
                        match
                          Durable.open_ ~sync ~backend ~replay_cap:last
                            ~dir:(shard_dir dir generation i)
                            ~empty_index:(empty_index ()) ()
                        with
                        | Ok d -> Ok d
                        | Error (`Malformed msg) ->
                            Error
                              (`Malformed
                                 (Printf.sprintf "shard %d: %s" i msg))
                        | Error (`Tampered _) as e -> e)
                      (Array.init spec.Partition.shards Fun.id)
                  in
                  match shard_r with
                  | Error _ as e -> e
                  | Ok shards -> (
                      if top_clamped_bytes > 0 then
                        Unix.truncate tpath valid_prefix;
                      (* 3. Cross-shard consistency: one branch set, and
                         per branch the recomputed composite must equal
                         the last published one. *)
                      let branch_sets =
                        Array.map
                          (fun d ->
                            List.sort String.compare
                              (Engine.branches (Durable.engine d)))
                          shards
                      in
                      let consistent =
                        Array.for_all (fun bs -> bs = branch_sets.(0)) branch_sets
                      in
                      if not consistent then
                        Error (`Malformed "shards disagree on the branch set")
                      else begin
                        let published = Hashtbl.create 8 in
                        List.iter
                          (fun e -> Hashtbl.replace published e.e_branch e)
                          entries;
                        let roots_of branch =
                          Array.map
                            (fun d ->
                              (Engine.head (Durable.engine d) branch)
                                .Engine.index_root)
                            shards
                        in
                        let mismatch =
                          List.find_opt
                            (fun branch ->
                              match Hashtbl.find_opt published branch with
                              | None -> false
                              | Some e ->
                                  not
                                    (Hash.equal
                                       (Composite.root spec (roots_of branch))
                                       e.e_composite))
                            branch_sets.(0)
                        in
                        let ghost =
                          Hashtbl.fold
                            (fun b _ acc ->
                              if List.mem b branch_sets.(0) then acc
                              else b :: acc)
                            published []
                        in
                        match (mismatch, ghost) with
                        | Some branch, _ ->
                            Error
                              (`Malformed
                                 (Printf.sprintf
                                    "composite root mismatch on branch %S: \
                                     shard state does not match the \
                                     published composite"
                                    branch))
                        | None, b :: _ ->
                            Error
                              (`Malformed
                                 (Printf.sprintf
                                    "published branch %S missing from shards"
                                    b))
                        | None, [] ->
                            let pool =
                              match runner with
                              | `Pool when spec.Partition.shards > 1 ->
                                  Some
                                    (Pool.create
                                       ~domains:spec.Partition.shards ())
                              | _ -> None
                            in
                            let capped =
                              Array.fold_left
                                (fun acc d ->
                                  acc + (Durable.recovery d).Durable.capped)
                                0 shards
                            in
                            Ok
                              { dir;
                                sync;
                                spec;
                                runner;
                                pool;
                                shards;
                                backend;
                                empty_index;
                                generation;
                                top =
                                  Some (open_top_for_append ~sync tpath);
                                next_seq = last + 1;
                                recovered =
                                  { last_seq = last;
                                    top_clamped_bytes;
                                    capped;
                                    shards =
                                      Array.map Durable.recovery shards }
                              }
                      end)))))

(* --- online reshard ------------------------------------------------------- *)

exception Reshard_error of Wal.error

let generation t = t.generation

let reshard t ~shards:m =
  if m < 1 || m > Partition.max_shards then
    invalid_arg
      (Printf.sprintf "Sharded.reshard: shards %d not in [1, %d]" m
         Partition.max_shards);
  let s = sink t in
  let new_spec = Partition.make t.spec.Partition.scheme ~shards:m in
  let g' = t.generation + 1 in
  let staging = staging_root t.dir g' in
  let build () =
    Telemetry.with_span s "shard.reshard" @@ fun () ->
    rm_rf staging;
    (match Unix.mkdir staging 0o755 with
    | () -> ()
    | exception Unix.Unix_error (e, _, _) ->
        raise
          (Reshard_error (`Malformed (staging ^ ": " ^ Unix.error_message e))));
    let open_new i =
      match
        Durable.open_ ~sync:t.sync ~backend:t.backend
          ~dir:(Filename.concat staging (Printf.sprintf "shard.%d" i))
          ~empty_index:(t.empty_index ()) ()
      with
      | Ok d -> d
      | Error e -> raise (Reshard_error e)
    in
    let new_shards = Array.init m open_new in
    let others = List.filter (fun b -> b <> "master") (branches t) in
    let ordered = "master" :: others in
    (* Stream every live entry out of the old shards through the new
       ordered read path, split by the new partition function. *)
    let buckets_of branch =
      let buckets = Array.make m [] in
      Seq.iter
        (fun (k, v) ->
          let i = Partition.shard_of_key new_spec k in
          buckets.(i) <- (k, v) :: buckets.(i))
        (scan t ~branch);
      Array.map List.rev buckets
    in
    let per_branch = List.map (fun b -> (b, buckets_of b)) ordered in
    (* One global sequence per logical operation, identical across the
       new shards (the same discipline as {!commit}/{!fork}): first the
       forks — non-master branches recreated from the still-empty master
       so every branch sits at version 0 when its bulk load lands — then
       one bulk commit per branch. *)
    let base = t.next_seq in
    let nforks = List.length others in
    run_tasks t
      (List.init m (fun i () ->
           let d = new_shards.(i) in
           List.iteri
             (fun j b -> Durable.fork ~seq:(base + j) d ~from:"master" b)
             others;
           List.iteri
             (fun j (b, buckets) ->
               ignore
                 (Durable.commit_bulk ~seq:(base + nforks + j) d ~branch:b
                    ~message:"reshard" buckets.(i)
                   : Engine.commit))
             per_branch;
           (* Compact each staging journal: the bulk records above are
              O(entries) bytes and the checkpoint snapshot replaces
              them. *)
           Durable.checkpoint d));
    let final_seq = base + nforks + List.length ordered - 1 in
    (* The staging composite journal: one record per branch at the final
       sequence number, exactly like a checkpoint compaction. *)
    let entries =
      List.map
        (fun b ->
          let roots =
            Array.map
              (fun d -> (Engine.head (Durable.engine d) b).Engine.index_root)
              new_shards
          in
          { e_seq = final_seq;
            e_branch = b;
            e_composite = Composite.root new_spec roots;
            e_roots = roots })
        ordered
    in
    Store.write_file_atomic ~sync:t.sync (Filename.concat staging "top")
      (fun oc ->
        output_string oc top_magic;
        List.iter (fun e -> output_string oc (encode_top_entry e)) entries);
    Array.iter Durable.close new_shards;
    (* Rename the fully-built generation into place, then flip the
       manifest — the atomic commit point.  Until the manifest replacement
       lands, the old layout is still the state and everything built here
       is sweepable staging. *)
    Unix.rename staging (gen_root t.dir g');
    if t.sync then Store.fsync_dir t.dir;
    write_manifest ~sync:t.sync t.dir new_spec ~generation:g'
  in
  match build () with
  | exception Reshard_error e ->
      rm_rf staging;
      Error e
  | exception Unix.Unix_error (e, fn, arg) ->
      rm_rf staging;
      Error
        (`Malformed
           (Printf.sprintf "reshard: %s(%s): %s" fn arg (Unix.error_message e)))
  | () ->
      Telemetry.incr s "shard.reshard";
      (* The old handle is superseded: reopen on the new layout, which
         also sweeps the old generation and re-verifies every branch's
         composite against the migrated shard roots. *)
      let sync = t.sync
      and backend = t.backend
      and runner = t.runner
      and dir = t.dir
      and empty_index = t.empty_index in
      close t;
      open_ ~sync ~backend ~runner ~dir ~empty_index ()
