(** Two-layer authenticated lookups across shards.

    A sharded proof for a key set is:

    - the {b top proof}: the full vector of [N] shard roots — with a
      handful of shards this {e is} the cheapest Merkle opening, and the
      verifier recomputes {!Composite.root} over it against the trusted
      composite digest;
    - one {b shard multiproof} per touched shard, each an ordinary
      {!Siri_core.Multiproof.t} verified against that shard's root from
      the (now trusted) vector.

    Soundness needs one extra check the flat case does not: every claim
    must live in the shard the {e spec} routes its key to.  Without it a
    prover could prove a key absent against some empty shard instead of
    the one that actually holds it.  The spec itself is bound into the
    composite digest, so the copy carried in the proof is authenticated
    before it is used for routing. *)

module Kv = Siri_core.Kv
module Hash = Siri_crypto.Hash
module Generic = Siri_core.Generic
module Multiproof = Siri_core.Multiproof

type t = {
  spec : Partition.t;
  roots : Hash.t array;  (** all [spec.shards] shard roots, in order *)
  parts : (int * Multiproof.t) list;
      (** per touched shard, ascending shard order *)
}

val prove : views:Generic.t array -> Partition.t -> Kv.key list -> t
(** Route the key set, then one cached batched proof per touched shard
    ({!Siri_core.Generic.prove_many}).  Keys are sorted and deduplicated
    per shard, exactly as in the flat case. *)

val composite : t -> Hash.t
(** The composite root this proof opens — {!Composite.root} over its
    claimed shard roots. *)

val claims : t -> (Kv.key * Kv.value option) list
(** All claims across shards, sorted by key. *)

val verify : verifier:Generic.t -> composite:Hash.t -> t -> bool
(** Store-independent two-layer check against a trusted composite
    digest: the recomputed composite must match, every part must verify
    against its shard root ([verifier] supplies the index kind's
    [verify_many], e.g. a fresh empty instance), and every claim must
    route to the shard that carries it.  Any failure — including a
    malformed part list — is [false], never an exception. *)

val encode : t -> string
(** One checksummed {!Siri_codec.Frame}; shard multiproofs nest as their
    own encoded frames.  Distinguishable from a flat multiproof by its
    leading payload byte, so transports can carry either. *)

val decode : string -> (t, [ `Tampered of string | `Malformed of string ]) result

val is_encoded : string -> bool
(** Cheap test (frame shape + leading payload byte) that a blob is a
    sharded proof rather than a flat multiproof. *)
