module Kv = Siri_core.Kv
module Hash = Siri_crypto.Hash
module Generic = Siri_core.Generic
module Multiproof = Siri_core.Multiproof
module Wire = Siri_codec.Wire
module Frame = Siri_codec.Frame

type t = {
  spec : Partition.t;
  roots : Hash.t array;
  parts : (int * Multiproof.t) list;
}

let prove ~views spec keys =
  let roots = Views.roots views in
  let parts =
    List.map
      (fun (i, ks) -> (i, Generic.prove_many views.(i) ks))
      (Partition.split_keys spec keys)
  in
  { spec; roots; parts }

let composite t = Composite.root t.spec t.roots

let claims t =
  List.concat_map (fun (_, mp) -> mp.Multiproof.claims) t.parts
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let verify ~verifier ~composite:trusted t =
  Array.length t.roots = t.spec.Partition.shards
  && Hash.equal (composite t) trusted
  && (* part list well-formed: strictly ascending, in range *)
  (let rec ordered prev = function
     | [] -> true
     | (i, _) :: rest ->
         i > prev && i < t.spec.Partition.shards && ordered i rest
   in
   ordered (-1) t.parts)
  && List.for_all
       (fun (i, mp) ->
         (* Every claim must live in the shard the (authenticated) spec
            routes it to — otherwise an absence could be "proven"
            against whichever shard happens to be empty. *)
         List.for_all
           (fun (k, _) -> Partition.shard_of_key t.spec k = i)
           mp.Multiproof.claims
         && Generic.verify_many verifier ~root:t.roots.(i) mp)
       t.parts

(* --- wire codec ------------------------------------------------------------ *)

(* Leading payload byte.  A flat multiproof payload starts with its
   version byte (1), so 'S' keeps the two self-describing on a shared
   transport. *)
let version = Char.code 'S'

let encode t =
  let w = Wire.Writer.create ~capacity:1024 () in
  Wire.Writer.u8 w version;
  Wire.Writer.u8 w
    (match t.spec.Partition.scheme with Partition.Hash -> 0 | Partition.Range -> 1);
  Wire.Writer.varint w t.spec.Partition.shards;
  Array.iter (fun r -> Wire.Writer.hash w r) t.roots;
  Wire.Writer.varint w (List.length t.parts);
  List.iter
    (fun (i, mp) ->
      Wire.Writer.varint w i;
      Wire.Writer.str w (Multiproof.encode mp))
    t.parts;
  Frame.encode (Wire.Writer.contents w)

let parse_payload r =
  let malformed msg = Error (`Malformed msg) in
  try
    if Wire.Reader.u8 r <> version then
      malformed "unknown sharded-proof version"
    else begin
      let scheme =
        match Wire.Reader.u8 r with
        | 0 -> Ok Partition.Hash
        | 1 -> Ok Partition.Range
        | _ -> Error "unknown partition scheme"
      in
      match scheme with
      | Error msg -> malformed msg
      | Ok scheme -> (
          let shards = Wire.Reader.varint r in
          if shards < 1 || shards > Partition.max_shards then
            malformed "shard count out of range"
          else begin
            let spec = Partition.make scheme ~shards in
            let roots = Array.init shards (fun _ -> Wire.Reader.hash r) in
            let n_parts = Wire.Reader.varint r in
            if n_parts > shards then malformed "more parts than shards"
            else begin
              let rec read_parts prev k acc =
                if k = 0 then Ok (List.rev acc)
                else begin
                  let i = Wire.Reader.varint r in
                  if i <= prev || i >= shards then
                    Error (`Malformed "part shards not strictly ascending")
                  else
                    match Multiproof.decode (Wire.Reader.str r) with
                    | Error (`Tampered msg) ->
                        Error (`Tampered ("shard part: " ^ msg))
                    | Error (`Malformed msg) ->
                        Error (`Malformed ("shard part: " ^ msg))
                    | Ok mp -> read_parts i (k - 1) ((i, mp) :: acc)
                end
              in
              match read_parts (-1) n_parts [] with
              | Error _ as e -> e
              | Ok parts ->
                  if not (Wire.Reader.at_end r) then
                    malformed "trailing bytes in sharded proof payload"
                  else Ok { spec; roots; parts }
            end
          end)
        end
  with Wire.Reader.Truncated -> malformed "truncated sharded proof payload"

let decode s =
  match Frame.step s ~pos:0 with
  | Frame { payload_off; payload_len; next } when next = String.length s ->
      parse_payload (Wire.Reader.of_substring s ~off:payload_off ~len:payload_len)
  | Frame _ -> Error (`Malformed "trailing bytes after sharded proof frame")
  | End -> Error (`Malformed "empty sharded proof")
  | Torn _ -> Error (`Malformed "torn sharded proof frame")
  | Corrupt -> Error (`Tampered "sharded proof frame checksum mismatch")

let is_encoded s =
  String.length s > Frame.header_len
  && Char.code s.[Frame.header_len] = version
  &&
  match Frame.step s ~pos:0 with
  | Frame { next; _ } -> next = String.length s
  | _ -> false
