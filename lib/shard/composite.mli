(** The composite Merkle root over the [N] shard roots: a small
    fixed-arity hash tree whose digest commits to {e every} shard root,
    the partition spec, and each root's position.

    Shard roots are the leaves, in shard order; each leaf digest binds
    the partition scheme, the shard count and the shard's own index so a
    root cannot be replayed at another position or under another
    routing.  Levels of [arity] children are folded until one digest
    remains, and a final domain-separated wrap distinguishes a composite
    from any single-shard index root.  [N = 1] is therefore {e not} the
    unsharded root — a 1-shard deployment still commits to "this is a
    sharded keyspace with one shard".

    Pure and store-independent: verification recomputes it from the
    spec and the claimed shard roots alone. *)

module Hash = Siri_crypto.Hash

val arity : int
(** Fan-in of the internal levels (4). *)

val root : Partition.t -> Hash.t array -> Hash.t
(** [root spec shard_roots] — [Invalid_argument] unless
    [Array.length shard_roots = spec.shards]. *)
