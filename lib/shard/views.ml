module Kv = Siri_core.Kv
module Hash = Siri_crypto.Hash
module Generic = Siri_core.Generic
module Store = Siri_store.Store
module Telemetry = Siri_telemetry.Telemetry

let get spec views key = Generic.get views.(Partition.shard_of_key spec key) key

let get_many spec views keys =
  match Partition.split_keys spec keys with
  | [] -> []
  | [ (i, _) ] -> Generic.get_many views.(i) keys
  | groups ->
      (* One single-walk batch per touched shard, then reassemble in
         input order.  Duplicate keys are answered from the same shard,
         so a per-key table is enough. *)
      let found = Hashtbl.create (List.length keys) in
      List.iter
        (fun (i, ks) ->
          List.iter
            (fun (k, v) -> Hashtbl.replace found k v)
            (Generic.get_many views.(i) ks))
        groups;
      List.map (fun k -> (k, Option.join (Hashtbl.find_opt found k))) keys

(* --- ordered scans across shards -------------------------------------------

   Range scheme: [Partition.shard_of_key] is monotone in the key, so the
   shards holding [lo, hi) form a contiguous interval and concatenating
   their streams in shard order *is* global key order — a scan whose
   bounds land in one shard touches exactly that shard (the fanout the
   telemetry asserts).  Hash scheme: placement ignores order, so every
   shard contributes and the streams are k-way merged lazily.  Both paths
   keep the per-shard streams unforced beyond the entries the consumer
   actually demands (the merge holds one head per stream). *)

let merge_streams streams =
  let rec step nodes () =
    match nodes with
    | [] -> Seq.Nil
    | (hd0, tl0) :: rest ->
        (* Keys are disjoint across shards (each key routes to exactly
           one), so a plain min by key is unambiguous. *)
        let (kmin, vmin), tlmin, others =
          List.fold_left
            (fun (bhd, btl, others) (hd, tl) ->
              if String.compare (fst hd) (fst bhd) < 0 then
                (hd, tl, (bhd, btl) :: others)
              else (bhd, btl, (hd, tl) :: others))
            (hd0, tl0, []) rest
        in
        Seq.Cons
          ( (kmin, vmin),
            fun () ->
              match tlmin () with
              | Seq.Nil -> step others ()
              | Seq.Cons (hd, tl) -> step ((hd, tl) :: others) () )
  in
  fun () ->
    step
      (List.filter_map
         (fun s ->
           match s () with Seq.Nil -> None | Seq.Cons (hd, tl) -> Some (hd, tl))
         streams)
      ()

let scan spec views ~lo ~hi =
  let sink = Store.sink views.(0).Generic.store in
  Telemetry.incr sink "shard.scan";
  match Partition.shard_interval spec ~lo ~hi with
  | None -> Seq.empty
  | Some (first, last) ->
      let fanout = last - first + 1 in
      Telemetry.incr sink ~by:fanout "shard.scan.fanout";
      let stream i = views.(i).Generic.scan ~lo ~hi in
      if fanout = 1 then stream first
      else (
        match spec.Partition.scheme with
        | Partition.Range ->
            (* Contiguous interval, shard order = key order: lazy concat,
               each stream forced only when its predecessor is drained. *)
            let rec concat i () =
              if i > last then Seq.Nil
              else Seq.append (stream i) (concat (i + 1)) ()
            in
            concat first
        | Partition.Hash ->
            merge_streams (List.init fanout (fun i -> stream (first + i))))

let roots views = Array.map (fun (v : Generic.t) -> v.Generic.root) views

let composite spec views = Composite.root spec (roots views)
