module Kv = Siri_core.Kv
module Hash = Siri_crypto.Hash
module Generic = Siri_core.Generic

let get spec views key = Generic.get views.(Partition.shard_of_key spec key) key

let get_many spec views keys =
  match Partition.split_keys spec keys with
  | [] -> []
  | [ (i, _) ] -> Generic.get_many views.(i) keys
  | groups ->
      (* One single-walk batch per touched shard, then reassemble in
         input order.  Duplicate keys are answered from the same shard,
         so a per-key table is enough. *)
      let found = Hashtbl.create (List.length keys) in
      List.iter
        (fun (i, ks) ->
          List.iter
            (fun (k, v) -> Hashtbl.replace found k v)
            (Generic.get_many views.(i) ks))
        groups;
      List.map (fun k -> (k, Option.join (Hashtbl.find_opt found k))) keys

let roots views = Array.map (fun (v : Generic.t) -> v.Generic.root) views

let composite spec views = Composite.root spec (roots views)
