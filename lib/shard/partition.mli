(** Keyspace partitioning for the sharded engine: a pure, deterministic
    routing function from keys to one of [N] shards, fixed when a
    sharded directory is created and recorded in its manifest.

    Two schemes:

    - {b Hash}: FNV-1a over the key bytes, reduced mod [N].  Spreads any
      workload uniformly; destroys key locality (a range scan touches
      every shard).
    - {b Range}: the key's first two bytes scaled into [N] equal
      buckets.  Preserves lexicographic locality (prefix-clustered
      workloads land on one shard) at the cost of skew on non-uniform
      key distributions.

    The spec is part of the trust base: {!Composite.root} binds the
    scheme and the shard count into the composite root, so a verifier
    handed a proof cannot be talked into routing a claim to a different
    shard than the prover committed to. *)

module Kv = Siri_core.Kv

type scheme = Hash | Range

type t = private { scheme : scheme; shards : int }

val max_shards : int
(** Upper bound on the shard count (64). *)

val make : scheme -> shards:int -> t
(** [Invalid_argument] unless [1 <= shards <= max_shards]. *)

val shard_of_key : t -> Kv.key -> int
(** Deterministic routing; always in [\[0, shards)]. *)

val shard_interval :
  t -> lo:Kv.key option -> hi:Kv.key option -> (int * int) option
(** Inclusive interval [(first, last)] of shard indexes that keys in the
    half-open interval [[lo, hi)] can route to, or [None] when no key
    fits the bounds.  Under {!Range} the routing function is monotone in
    the key, so the interval is contiguous and tight — tight even when
    [hi] sits exactly on a shard boundary, in which case the boundary
    shard is excluded.  Under {!Hash} placement ignores key order and the
    answer is every shard. *)

val split_keys : t -> Kv.key list -> (int * Kv.key list) list
(** Group keys by shard, preserving relative order inside each group;
    only non-empty groups are returned, in ascending shard order. *)

val split_ops : t -> Kv.op list -> (int * Kv.op list) list
(** Same, routing each op by its key.  Ops on the same key always land
    in the same group in their original order, so replaying every group
    yields the same final state as the unsharded batch. *)

val to_string : t -> string
(** Manifest form, e.g. ["hash:4"] or ["range:8"]. *)

val of_string : string -> (t, string) result

val pp : Format.formatter -> t -> unit
