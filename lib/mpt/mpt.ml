open Siri_crypto
open Siri_core
module Store = Siri_store.Store
module Nibbles = Siri_codec.Nibbles
module Wire = Siri_codec.Wire
module Telemetry = Siri_telemetry.Telemetry
module Node_cache = Siri_readpath.Node_cache

type t = { store : Store.t; root : Hash.t }

type node =
  | Leaf of Nibbles.t * Kv.value
  | Ext of Nibbles.t * Hash.t
  | Branch of Hash.t array * Kv.value option

type Node_cache.repr += Cached of node

let empty store = { store; root = Hash.null }
let of_root store root = { store; root }
let root t = t.root
let store t = t.store
let is_empty t = Hash.is_null t.root

(* --- node codec ------------------------------------------------------- *)

let tag_leaf = 0
let tag_ext = 1
let tag_branch = 2

let encode node =
  let w = Wire.Writer.create () in
  (match node with
  | Leaf (path, v) ->
      Wire.Writer.u8 w tag_leaf;
      Wire.Writer.str w (Nibbles.compact_encode ~leaf:true path);
      Wire.Writer.str w v
  | Ext (path, child) ->
      Wire.Writer.u8 w tag_ext;
      Wire.Writer.str w (Nibbles.compact_encode ~leaf:false path);
      Wire.Writer.hash w child
  | Branch (children, value) ->
      Wire.Writer.u8 w tag_branch;
      let bitmap = ref 0 in
      Array.iteri
        (fun i c -> if not (Hash.is_null c) then bitmap := !bitmap lor (1 lsl i))
        children;
      Wire.Writer.u16 w !bitmap;
      Array.iter
        (fun c -> if not (Hash.is_null c) then Wire.Writer.hash w c)
        children;
      (match value with
      | None -> Wire.Writer.u8 w 0
      | Some v ->
          Wire.Writer.u8 w 1;
          Wire.Writer.str w v));
  Wire.Writer.contents w

let decode bytes =
  let r = Wire.Reader.of_string bytes in
  let tag = Wire.Reader.u8 r in
  if tag = tag_leaf then begin
    let _, path = Nibbles.compact_decode (Wire.Reader.str r) in
    Leaf (path, Wire.Reader.str r)
  end
  else if tag = tag_ext then begin
    let _, path = Nibbles.compact_decode (Wire.Reader.str r) in
    Ext (path, Wire.Reader.hash r)
  end
  else begin
    let bitmap = Wire.Reader.u16 r in
    let children =
      Array.init 16 (fun i ->
          if bitmap land (1 lsl i) <> 0 then Wire.Reader.hash r else Hash.null)
    in
    let value =
      if Wire.Reader.u8 r = 1 then Some (Wire.Reader.str r) else None
    in
    Branch (children, value)
  end

let node_children = function
  | Leaf _ -> []
  | Ext (_, c) -> [ c ]
  | Branch (children, _) ->
      Array.to_list children |> List.filter (fun c -> not (Hash.is_null c))

let put store node =
  Store.put store ~children:(node_children node) (encode node)

(* Read through the store's decoded-node cache.  Cached nodes are never
   mutated: every write path copies a Branch's child array before
   updating it, and Leaf/Ext payloads are immutable strings, so handing
   out the same decoded node repeatedly is safe. *)
let get store h =
  let cache = Store.cache store in
  if not (Node_cache.enabled cache) then decode (Store.get store h)
  else
    match Node_cache.find cache h with
    | Some (Cached node) -> node
    | _ ->
        let bytes = Store.get store h in
        let node = decode bytes in
        Node_cache.insert cache h ~bytes:(String.length bytes) (Cached node);
        node

(* --- lookup ------------------------------------------------------------ *)

(* Returns the value and the number of nodes visited. *)
let lookup_count store root key =
  (* The key's nibbles are converted once and walked by offset — the
     traversal allocates nothing per node, so on a warm decoded-node
     cache a lookup is pure pointer chasing. *)
  let nibs = Nibbles.of_key key in
  let total = Nibbles.length nibs in
  let rec go h off visited =
    if Hash.is_null h then (None, visited)
    else
      match get store h with
      | Leaf (p, v) ->
          if Nibbles.equal_at p nibs ~off then (Some v, visited + 1)
          else (None, visited + 1)
      | Ext (p, child) ->
          let np = Nibbles.length p in
          if
            total - off >= np
            && Nibbles.common_prefix_at p nibs ~off = np
          then go child (off + np) (visited + 1)
          else (None, visited + 1)
      | Branch (children, value) ->
          if off = total then (value, visited + 1)
          else go children.(Nibbles.get nibs off) (off + 1) (visited + 1)
  in
  go root 0 0

let lookup t key = fst (lookup_count t.store t.root key)
let path_length t key = snd (lookup_count t.store t.root key)

(* --- batched lookup ----------------------------------------------------- *)

(* One walk for the whole batch: the distinct keys are sorted, and at
   every internal node the still-alive slice is partitioned by next
   nibble (string order equals nibble order, so each partition is a
   contiguous sub-slice).  Each node on a shared prefix is fetched and
   decoded once for all keys below it, instead of once per key. *)
(* The walk itself, parameterized by node fetch so the same traversal
   serves lookups (cache-aware [get]), proving ([Multiproof.recorder]) and
   verifying ([Multiproof.consumer]): arr holds the sorted distinct keys
   with their nibble paths, and [found] collects the hits. *)
let walk_many ~fetch root arr found =
    (* Keys arr[lo..hi-1] agree on their first [depth] nibbles, already
       consumed on the way to [h]. *)
    let rec go h lo hi depth =
      if not (Hash.is_null h) then
        match fetch h with
        | Leaf (p, v) ->
            for i = lo to hi - 1 do
              let k, path = arr.(i) in
              if Nibbles.equal p (Nibbles.drop path depth) then
                Hashtbl.replace found k v
            done
        | Ext (p, child) ->
            let np = Nibbles.length p in
            let matches i =
              let _, path = arr.(i) in
              Nibbles.length path - depth >= np
              && Nibbles.common_prefix p (Nibbles.drop path depth) = np
            in
            let i = ref lo in
            while !i < hi && not (matches !i) do incr i done;
            let j = ref !i in
            while !j < hi && matches !j do incr j done;
            if !j > !i then go child !i !j (depth + np)
        | Branch (children, bvalue) ->
            let i = ref lo in
            while !i < hi do
              let k, path = arr.(!i) in
              if Nibbles.length path = depth then begin
                (match bvalue with
                | Some v -> Hashtbl.replace found k v
                | None -> ());
                incr i
              end
              else begin
                let nib = Nibbles.get path depth in
                let j = ref (!i + 1) in
                while
                  !j < hi
                  && Nibbles.length (snd arr.(!j)) > depth
                  && Nibbles.get (snd arr.(!j)) depth = nib
                do
                  incr j
                done;
                go children.(nib) !i !j (depth + 1);
                i := !j
              end
            done
    in
    go root 0 (Array.length arr) 0

let key_paths keys =
  Array.of_list (List.map (fun k -> (k, Nibbles.of_key k)) keys)

let get_many t keys =
  if keys = [] then []
  else begin
    let found = Hashtbl.create (List.length keys) in
    walk_many ~fetch:(get t.store) t.root
      (key_paths (List.sort_uniq String.compare keys))
      found;
    List.map (fun k -> (k, Hashtbl.find_opt found k)) keys
  end

(* --- insert ------------------------------------------------------------ *)

(* Wrap a subtree (already stored, rooted at [h]) under [prefix] nibbles:
   produces [h] itself for an empty prefix, otherwise an extension. *)
let extend store prefix h =
  if Nibbles.is_empty prefix then h else put store (Ext (prefix, h))

(* Attach the tail of a diverged path into a fresh branch slot set. *)
let branch_with store items value =
  let children = Array.make 16 Hash.null in
  List.iter (fun (nib, h) -> children.(nib) <- h) items;
  put store (Branch (children, value))

let rec ins store h path value =
  if Hash.is_null h then put store (Leaf (path, value))
  else
    match get store h with
    | Leaf (p, v) ->
        let common = Nibbles.common_prefix p path in
        if common = Nibbles.length p && common = Nibbles.length path then
          put store (Leaf (p, value))
        else begin
          (* Diverge: split into a branch under the shared prefix. *)
          let p' = Nibbles.drop p common and path' = Nibbles.drop path common in
          let slot_of tail v =
            (Nibbles.get tail 0, put store (Leaf (Nibbles.drop tail 1, v)))
          in
          let items = ref [] and bvalue = ref None in
          if Nibbles.is_empty p' then bvalue := Some v
          else items := slot_of p' v :: !items;
          if Nibbles.is_empty path' then bvalue := Some value
          else items := slot_of path' value :: !items;
          let b = branch_with store !items !bvalue in
          extend store (Nibbles.sub p 0 common) b
        end
    | Ext (p, child) ->
        let common = Nibbles.common_prefix p path in
        if common = Nibbles.length p then
          let child' = ins store child (Nibbles.drop path common) value in
          put store (Ext (p, child'))
        else begin
          let p' = Nibbles.drop p common and path' = Nibbles.drop path common in
          (* p' is non-empty here; the extension's own subtree hangs off
             nibble p'.(0), compacted if any path remains. *)
          let sub = extend store (Nibbles.drop p' 1) child in
          let items = ref [ (Nibbles.get p' 0, sub) ] and bvalue = ref None in
          if Nibbles.is_empty path' then bvalue := Some value
          else
            items :=
              (Nibbles.get path' 0, put store (Leaf (Nibbles.drop path' 1, value)))
              :: !items;
          let b = branch_with store !items !bvalue in
          extend store (Nibbles.sub p 0 common) b
        end
    | Branch (children, bvalue) ->
        if Nibbles.is_empty path then put store (Branch (children, Some value))
        else begin
          let i = Nibbles.get path 0 in
          let children = Array.copy children in
          children.(i) <- ins store children.(i) (Nibbles.drop path 1) value;
          put store (Branch (children, bvalue))
        end

let insert t key value =
  { t with root = ins t.store t.root (Nibbles.of_key key) value }

(* --- remove ------------------------------------------------------------ *)

(* After deletion a branch may be left with a single child and no value, or
   only a value; collapse it to keep the shape canonical. *)
let collapse_branch store children bvalue =
  let live =
    Array.to_list (Array.mapi (fun i c -> (i, c)) children)
    |> List.filter (fun (_, c) -> not (Hash.is_null c))
  in
  match (live, bvalue) with
  | [], None -> Hash.null
  | [], Some v -> put store (Leaf (Nibbles.empty, v))
  | [ (i, c) ], None -> (
      let prefix = Nibbles.cons i Nibbles.empty in
      match get store c with
      | Leaf (p, v) -> put store (Leaf (Nibbles.concat prefix p, v))
      | Ext (p, gc) -> put store (Ext (Nibbles.concat prefix p, gc))
      | Branch _ -> put store (Ext (prefix, c)))
  | _ -> put store (Branch (children, bvalue))

(* Re-compact an extension whose child may have collapsed. *)
let collapse_ext store p child =
  if Hash.is_null child then Hash.null
  else
    match get store child with
    | Leaf (p', v) -> put store (Leaf (Nibbles.concat p p', v))
    | Ext (p', gc) -> put store (Ext (Nibbles.concat p p', gc))
    | Branch _ -> put store (Ext (p, child))

let rec del store h path =
  if Hash.is_null h then Hash.null
  else
    match get store h with
    | Leaf (p, _) -> if Nibbles.equal p path then Hash.null else h
    | Ext (p, child) ->
        let np = Nibbles.length p in
        if Nibbles.length path >= np && Nibbles.common_prefix p path = np then begin
          let child' = del store child (Nibbles.drop path np) in
          if Hash.equal child' child then h else collapse_ext store p child'
        end
        else h
    | Branch (children, bvalue) ->
        if Nibbles.is_empty path then
          if bvalue = None then h else collapse_branch store children None
        else begin
          let i = Nibbles.get path 0 in
          let child' = del store children.(i) (Nibbles.drop path 1) in
          if Hash.equal child' children.(i) then h
          else begin
            let children = Array.copy children in
            children.(i) <- child';
            collapse_branch store children bvalue
          end
        end

let remove t key = { t with root = del t.store t.root (Nibbles.of_key key) }

let batch t ops =
  List.fold_left
    (fun t op ->
      match op with
      | Kv.Put (k, v) -> insert t k v
      | Kv.Del k -> remove t k)
    t ops

let of_entries store entries =
  batch (empty store) (List.map (fun (k, v) -> Kv.Put (k, v)) entries)

(* --- parallel bulk load -------------------------------------------------- *)

(* Canonical bottom-up construction over sorted distinct keys.  The trie
   shape is key-set–determined (the MPT is history-independent), so this
   produces exactly the root that the insert-fold above would — but the
   expensive part, encoding and SHA-256 over every node, is pure and can
   be fanned out over a domain pool: the key space is split at the first
   branch point into up to 16 independent subtries, each worker stages its
   subtrie's nodes quietly ([Store.stage_quiet]), and the coordinator then
   replays the digest notifications and installs the batches in task
   order, so every observable effect is identical at any domain count. *)

module Pool = Siri_parallel.Pool

(* Length of the common nibble prefix of paths[lo..hi-1] beyond [depth].
   The slice is sorted, so the extremes bound the whole range. *)
let common_from paths lo hi depth =
  let p0 = fst paths.(lo) and p1 = fst paths.(hi - 1) in
  let n0 = Nibbles.length p0 and n1 = Nibbles.length p1 in
  let i = ref depth in
  while !i < n0 && !i < n1 && Nibbles.get p0 !i = Nibbles.get p1 !i do incr i done;
  !i - depth

(* Build the canonical subtrie over paths[lo..hi-1], all sharing their
   first [depth] nibbles; stages nodes into [acc] (children before
   parents) and returns the subtrie root hash. *)
let rec build_slice acc paths lo hi depth =
  if hi - lo = 1 then begin
    let p, v = paths.(lo) in
    let s = Store.stage_quiet (encode (Leaf (Nibbles.drop p depth, v))) in
    acc := s :: !acc;
    s.Store.digest
  end
  else begin
    let lcp = common_from paths lo hi depth in
    let bdepth = depth + lcp in
    (* A key ending exactly at the branch point becomes the branch value;
       keys are whole bytes so it can only be the slice's first (shortest)
       path. *)
    let bvalue = ref None and start = ref lo in
    if Nibbles.length (fst paths.(lo)) = bdepth then begin
      bvalue := Some (snd paths.(lo));
      start := lo + 1
    end;
    let children = Array.make 16 Hash.null in
    let i = ref !start in
    while !i < hi do
      let nib = Nibbles.get (fst paths.(!i)) bdepth in
      let j = ref (!i + 1) in
      while !j < hi && Nibbles.get (fst paths.(!j)) bdepth = nib do incr j done;
      children.(nib) <- build_slice acc paths !i !j (bdepth + 1);
      i := !j
    done;
    let stage node =
      let s = Store.stage_quiet ~children:(node_children node) (encode node) in
      acc := s :: !acc;
      s.Store.digest
    in
    let b = stage (Branch (children, !bvalue)) in
    if lcp = 0 then b else stage (Ext (Nibbles.sub (fst paths.(lo)) depth lcp, b))
  end

let of_sorted ?pool store entries =
  let entries =
    Kv.apply_sorted [] (Kv.sort_ops (List.map (fun (k, v) -> Kv.Put (k, v)) entries))
  in
  match entries with
  | [] -> empty store
  | [ (k, v) ] -> { store; root = put store (Leaf (Nibbles.of_key k, v)) }
  | _ ->
      let pool = match pool with Some p -> p | None -> Pool.sequential in
      let paths =
        Array.of_list (List.map (fun (k, v) -> (Nibbles.of_key k, v)) entries)
      in
      let n = Array.length paths in
      let lcp = common_from paths 0 n 0 in
      let bvalue = ref None and start = ref 0 in
      if Nibbles.length (fst paths.(0)) = lcp then begin
        bvalue := Some (snd paths.(0));
        start := 1
      end;
      (* Contiguous runs sharing the nibble right after the common prefix:
         the fan-out units (at most 16). *)
      let groups = ref [] in
      let i = ref !start in
      while !i < n do
        let nib = Nibbles.get (fst paths.(!i)) lcp in
        let j = ref (!i + 1) in
        while !j < n && Nibbles.get (fst paths.(!j)) lcp = nib do incr j done;
        groups := (nib, !i, !j) :: !groups;
        i := !j
      done;
      let groups = Array.of_list (List.rev !groups) in
      let sink = Store.sink store in
      let results =
        Telemetry.with_span sink "commit.parallel" (fun () ->
            Pool.map pool
              (fun (nib, lo, hi) ->
                let acc = ref [] in
                let h = build_slice acc paths lo hi (lcp + 1) in
                (nib, h, List.rev !acc))
              groups)
      in
      let children = Array.make 16 Hash.null in
      let staged_nodes = ref 0 in
      Array.iter
        (fun (nib, h, staged) ->
          Store.note_staged staged;
          Store.put_staged store staged;
          staged_nodes := !staged_nodes + List.length staged;
          children.(nib) <- h)
        results;
      if Telemetry.enabled sink then begin
        Telemetry.incr sink "parallel.maps";
        Telemetry.incr sink ~by:(Array.length groups) "parallel.tasks";
        Telemetry.incr sink ~by:!staged_nodes "parallel.nodes"
      end;
      let b = put store (Branch (children, !bvalue)) in
      let root =
        if lcp = 0 then b
        else put store (Ext (Nibbles.sub (fst paths.(0)) 0 lcp, b))
      in
      { store; root }

let insert_many ?pool t entries =
  if is_empty t then of_sorted ?pool t.store entries
  else batch t (List.map (fun (k, v) -> Kv.Put (k, v)) entries)

(* --- traversal ---------------------------------------------------------- *)

let iter_prefixed store root f =
  let buf = Buffer.create 32 in
  let push nibs =
    Buffer.add_string buf
      (String.init (Nibbles.length nibs) (fun i ->
           Char.chr (Nibbles.get nibs i)))
  in
  let pop n =
    Buffer.truncate buf (Buffer.length buf - n)
  in
  let key_of_buf () =
    Nibbles.to_key (Nibbles.of_nibble_string (Buffer.contents buf))
  in
  let rec go h =
    if not (Hash.is_null h) then
      match get store h with
      | Leaf (p, v) ->
          push p;
          f (key_of_buf ()) v;
          pop (Nibbles.length p)
      | Ext (p, child) ->
          push p;
          go child;
          pop (Nibbles.length p)
      | Branch (children, bvalue) ->
          (match bvalue with Some v -> f (key_of_buf ()) v | None -> ());
          Array.iteri
            (fun i c ->
              if not (Hash.is_null c) then begin
                push (Nibbles.cons i Nibbles.empty);
                go c;
                pop 1
              end)
            children
  in
  go root

let iter t f = iter_prefixed t.store t.root f

let to_list t =
  let acc = ref [] in
  iter t (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

let cardinal t =
  let n = ref 0 in
  iter t (fun _ _ -> incr n);
  !n

(* --- range queries --------------------------------------------------------- *)

let in_range ~lo ~hi k =
  (match lo with None -> true | Some l -> String.compare k l >= 0)
  && match hi with None -> true | Some h -> String.compare k h <= 0

(* All keys in a subtree extend the accumulated nibble prefix, so the
   subtree is prunable when the prefix already falls outside the bounds:
   strictly below lo's nibbles, strictly above hi's, or a strict extension
   of hi (longer keys with an equal prefix sort after hi). *)
let range t ~lo ~hi =
  let lo_n = Option.map Nibbles.of_key lo in
  let hi_n = Option.map Nibbles.of_key hi in
  let buf = Buffer.create 32 in
  let acc = ref [] in
  let cmp_prefix bound =
    let lp = Buffer.length buf and lb = Nibbles.length bound in
    let l = min lp lb in
    let rec go i =
      if i = l then 0
      else
        let c = compare (Char.code (Buffer.nth buf i)) (Nibbles.get bound i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  in
  let prune () =
    (match lo_n with Some b -> cmp_prefix b < 0 | None -> false)
    || (match hi_n with
       | Some b ->
           let c = cmp_prefix b in
           c > 0 || (c = 0 && Buffer.length buf > Nibbles.length b)
       | None -> false)
  in
  let push nibs =
    Buffer.add_string buf
      (String.init (Nibbles.length nibs) (fun i -> Char.chr (Nibbles.get nibs i)))
  in
  let pop n = Buffer.truncate buf (Buffer.length buf - n) in
  let emit v =
    let key = Nibbles.to_key (Nibbles.of_nibble_string (Buffer.contents buf)) in
    if in_range ~lo ~hi key then acc := (key, v) :: !acc
  in
  let rec go h =
    if not (Hash.is_null h) && not (prune ()) then
      match get t.store h with
      | Leaf (p, v) ->
          push p;
          if not (prune ()) then emit v;
          pop (Nibbles.length p)
      | Ext (p, child) ->
          push p;
          go child;
          pop (Nibbles.length p)
      | Branch (children, bvalue) ->
          (match bvalue with Some v -> emit v | None -> ());
          Array.iteri
            (fun i c ->
              if not (Hash.is_null c) then begin
                Buffer.add_char buf (Char.chr i);
                go c;
                pop 1
              end)
            children
  in
  go t.root;
  List.rev !acc

(* --- streaming scan --------------------------------------------------------

   Lazy key-ordered DFS over the half-open interval [lo, hi).  Same
   pruning rules as [range] — a subtree is skipped when its accumulated
   nibble prefix already falls outside the bounds — but driven by an
   explicit frame stack captured in a [Seq.t], so nodes are fetched only
   as the consumer demands entries.  Nibble strings compare like the keys
   they encode (big-endian nibble order), so DFS order is key order; a
   branch value's key equals the prefix itself and is emitted before any
   child.  The hi bound prunes at [>=] (vs [range]'s strict [>]): keys
   equal to hi are excluded by half-openness, so the subtree rooted at
   hi's own nibbles holds nothing we want. *)
let scan t ~lo ~hi =
  let lo_n = Option.map Nibbles.of_key lo in
  let hi_n = Option.map Nibbles.of_key hi in
  let nib_string nibs =
    String.init (Nibbles.length nibs) (fun i -> Char.chr (Nibbles.get nibs i))
  in
  let cmp_prefix prefix bound =
    let lp = String.length prefix and lb = Nibbles.length bound in
    let l = min lp lb in
    let rec go i =
      if i = l then 0
      else
        let c = compare (Char.code prefix.[i]) (Nibbles.get bound i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  in
  let prune prefix =
    (match lo_n with Some b -> cmp_prefix prefix b < 0 | None -> false)
    || (match hi_n with
       | Some b ->
           let c = cmp_prefix prefix b in
           c > 0 || (c = 0 && String.length prefix >= Nibbles.length b)
       | None -> false)
  in
  let key_of prefix = Nibbles.to_key (Nibbles.of_nibble_string prefix) in
  let wanted k =
    (match lo with None -> true | Some l -> String.compare k l >= 0)
    && match hi with None -> true | Some h -> String.compare k h < 0
  in
  let rec step stack () =
    match stack with
    | [] -> Seq.Nil
    | `Emit (k, v) :: rest -> Seq.Cons ((k, v), step rest)
    | `Node (prefix, h) :: rest ->
        if Hash.is_null h || prune prefix then step rest ()
        else (
          match get t.store h with
          | Leaf (p, v) ->
              let prefix = prefix ^ nib_string p in
              let k = key_of prefix in
              if (not (prune prefix)) && wanted k then
                Seq.Cons ((k, v), step rest)
              else step rest ()
          | Ext (p, child) -> step (`Node (prefix ^ nib_string p, child) :: rest) ()
          | Branch (children, bvalue) ->
              let frames = ref rest in
              for i = 15 downto 0 do
                let c = children.(i) in
                if not (Hash.is_null c) then
                  frames :=
                    `Node (prefix ^ String.make 1 (Char.chr i), c) :: !frames
              done;
              let frames =
                match bvalue with
                | Some v when wanted (key_of prefix) ->
                    `Emit (key_of prefix, v) :: !frames
                | _ -> !frames
              in
              step frames ())
  in
  step [ `Node ("", t.root) ]

(* --- diff --------------------------------------------------------------- *)

(* A subtree reference during diff: either a stored node (hash known, can be
   pruned by equality) or a virtual node produced when peeling one nibble off
   a compacted path. *)
type vref =
  | VHash of Hash.t
  | VLeaf of Nibbles.t * Kv.value
  | VExt of Nibbles.t * Hash.t

(* Expand a reference at the current prefix into (value-at-prefix, child
   table indexed by nibble). *)
let rec expand store vr =
  match vr with
  | VLeaf (p, v) ->
      if Nibbles.is_empty p then (Some v, [||])
      else begin
        let children = Array.make 16 None in
        children.(Nibbles.get p 0) <- Some (VLeaf (Nibbles.drop p 1, v));
        (None, children)
      end
  | VExt (p, h) ->
      if Nibbles.is_empty p then
        (* Fully consumed extension: behave as the referenced node. *)
        expand_hash store h
      else begin
        let children = Array.make 16 None in
        let rest = Nibbles.drop p 1 in
        children.(Nibbles.get p 0) <-
          Some (if Nibbles.is_empty rest then VHash h else VExt (rest, h));
        (None, children)
      end
  | VHash h -> expand_hash store h

and expand_hash store h =
  if Hash.is_null h then (None, [||])
  else
    match get store h with
    | Leaf (p, v) -> expand store (VLeaf (p, v))
    | Ext (p, c) -> expand store (VExt (p, c))
    | Branch (children, bvalue) ->
        (bvalue, Array.map (fun c ->
             if Hash.is_null c then None else Some (VHash c)) children)

let vref_equal a b =
  match (a, b) with VHash x, VHash y -> Hash.equal x y | _ -> false

let collect_side store vr prefix_buf side acc =
  (* All entries of a one-sided subtree, as diff entries. *)
  let rec go vr acc =
    let value, children = expand store vr in
    let acc =
      match value with
      | None -> acc
      | Some v ->
          let key = Nibbles.to_key (Nibbles.of_nibble_string (Buffer.contents prefix_buf)) in
          (match side with
          | `Left -> { Kv.key; left = Some v; right = None }
          | `Right -> { Kv.key; left = None; right = Some v })
          :: acc
    in
    let acc = ref acc in
    Array.iteri
      (fun i child ->
        match child with
        | None -> ()
        | Some c ->
            Buffer.add_char prefix_buf (Char.chr i);
            acc := go c !acc;
            Buffer.truncate prefix_buf (Buffer.length prefix_buf - 1))
      children;
    !acc
  in
  go vr acc

let diff t1 t2 =
  let store = t1.store in
  let prefix = Buffer.create 32 in
  let rec go l r acc =
    match (l, r) with
    | None, None -> acc
    | Some l, None -> collect_side store l prefix `Left acc
    | None, Some r -> collect_side store r prefix `Right acc
    | Some l, Some r when vref_equal l r -> acc
    | Some l, Some r ->
        let lv, lc = expand store l in
        let rv, rc = expand store r in
        let acc =
          match (lv, rv) with
          | None, None -> acc
          | Some a, Some b when String.equal a b -> acc
          | _ ->
              { Kv.key = Nibbles.to_key (Nibbles.of_nibble_string (Buffer.contents prefix));
                left = lv;
                right = rv }
              :: acc
        in
        let acc = ref acc in
        let child arr i =
          if Array.length arr = 0 then None else arr.(i)
        in
        for i = 0 to 15 do
          match (child lc i, child rc i) with
          | None, None -> ()
          | cl, cr ->
              Buffer.add_char prefix (Char.chr i);
              acc := go cl cr !acc;
              Buffer.truncate prefix (Buffer.length prefix - 1)
        done;
        !acc
  in
  let wrap h = if Hash.is_null h then None else Some (VHash h) in
  List.rev (go (wrap t1.root) (wrap t2.root) [])

(* --- merge -------------------------------------------------------------- *)

let merge t1 t2 ~policy =
  let diffs = diff t1 t2 in
  let conflicts = ref [] in
  let merged =
    List.fold_left
      (fun acc { Kv.key; left; right } ->
        match (left, right) with
        | _, None -> acc (* left-only records are already in t1 *)
        | None, Some rv -> insert acc key rv
        | Some lv, Some rv -> (
            match Kv.merge_values policy key lv rv with
            | Ok v -> if String.equal v lv then acc else insert acc key v
            | Error c ->
                conflicts := c :: !conflicts;
                acc))
      t1 diffs
  in
  match !conflicts with [] -> Ok merged | cs -> Error (List.rev cs)

(* --- proofs ------------------------------------------------------------- *)

let prove t key =
  let rec go h path acc =
    if Hash.is_null h then (None, acc)
    else
      let bytes = Store.get t.store h in
      let acc = bytes :: acc in
      match decode bytes with
      | Leaf (p, v) ->
          if Nibbles.equal p path then (Some v, acc) else (None, acc)
      | Ext (p, child) ->
          let np = Nibbles.length p in
          if Nibbles.length path >= np && Nibbles.common_prefix p path = np
          then go child (Nibbles.drop path np) acc
          else (None, acc)
      | Branch (children, bvalue) ->
          if Nibbles.is_empty path then (bvalue, acc)
          else go children.(Nibbles.get path 0) (Nibbles.drop path 1) acc
  in
  let value, rev_nodes = go t.root (Nibbles.of_key key) [] in
  { Proof.key; value; nodes = List.rev rev_nodes }

let verify_proof ~root (proof : Proof.t) =
  (* Replay the traversal over the supplied node bytes, checking the hash
     chain; the claimed value (or absence) must be what the replay finds. *)
  let rec go expected path nodes =
    match nodes with
    | [] ->
        (* Ran out of nodes: only valid if the traversal reached a null
           slot, which proves absence. *)
        if Hash.is_null expected then Ok None else Error ()
    | bytes :: rest ->
        if not (Hash.equal (Hash.of_string bytes) expected) then Error ()
        else begin
          match decode bytes with
          | exception _ -> Error ()
          | Leaf (p, v) ->
              if rest <> [] then Error ()
              else if Nibbles.equal p path then Ok (Some v)
              else Ok None
          | Ext (p, child) ->
              let np = Nibbles.length p in
              if Nibbles.length path >= np && Nibbles.common_prefix p path = np
              then go child (Nibbles.drop path np) rest
              else if rest = [] then Ok None
              else Error ()
          | Branch (children, bvalue) ->
              if Nibbles.is_empty path then
                if rest = [] then Ok bvalue else Error ()
              else
                go children.(Nibbles.get path 0) (Nibbles.drop path 1) rest
        end
  in
  if Hash.is_null root then proof.nodes = [] && proof.value = None
  else
    match go root (Nibbles.of_key proof.key) proof.nodes with
    | Ok v -> v = proof.value
    | Error () -> false

(* --- multiproofs ---------------------------------------------------------- *)

(* A multiproof is the batched [walk_many] with recording/replaying node
   fetches: proving reads raw bytes through a deduplicating recorder, so
   the node set is exactly the union of the single-proof paths with every
   shared prefix node carried once; verifying replays the identical walk,
   consuming the node list in first-visit order with the hash of each
   node checked against the hash the traversal requested. *)

let prove_many t keys =
  let keys = List.sort_uniq String.compare keys in
  if keys = [] || Hash.is_null t.root then
    { Multiproof.claims = List.map (fun k -> (k, None)) keys; nodes = [] }
  else begin
    let fetch_bytes, recorded = Multiproof.recorder ~get:(Store.get t.store) in
    let found = Hashtbl.create (List.length keys) in
    walk_many ~fetch:(fun h -> decode (fetch_bytes h)) t.root (key_paths keys)
      found;
    { Multiproof.claims = List.map (fun k -> (k, Hashtbl.find_opt found k)) keys;
      nodes = recorded () }
  end

let verify_many ~root (mp : Multiproof.t) =
  if not (Multiproof.well_formed mp) then false
  else if Hash.is_null root then
    mp.nodes = [] && List.for_all (fun (_, v) -> v = None) mp.claims
  else if mp.claims = [] then mp.nodes = []
  else begin
    let fetch_bytes, finished = Multiproof.consumer mp.nodes in
    let fetch h =
      match decode (fetch_bytes h) with
      | node -> node
      | exception Multiproof.Rejected -> raise Multiproof.Rejected
      | exception _ -> raise Multiproof.Rejected
    in
    let found = Hashtbl.create (List.length mp.claims) in
    match walk_many ~fetch root (key_paths (Multiproof.keys mp)) found with
    | () ->
        finished ()
        && List.for_all
             (fun (k, claimed) -> Hashtbl.find_opt found k = claimed)
             mp.claims
    | exception _ -> false
  end

(* --- generic packaging --------------------------------------------------- *)

(* Per-operation telemetry probes report to whatever sink is attached to
   the backing store at call time ([Telemetry.null] = zero-cost no-op).
   Probes time and trace; they never touch serialization, so root hashes
   are identical with telemetry enabled or disabled. *)
let probe t name f = Telemetry.probe (Store.sink t.store) name f

let rec generic ?pool t =
  { Generic.name = "mpt";
    store = t.store;
    root = t.root;
    lookup = (fun k -> probe t "mpt.lookup" (fun () -> lookup t k));
    get_many = (fun ks -> probe t "mpt.get_many" (fun () -> get_many t ks));
    path_length = path_length t;
    batch =
      (fun ops -> generic ?pool (probe t "mpt.batch" (fun () -> batch t ops)));
    bulk_load =
      (fun entries ->
        generic ?pool
          (probe t "mpt.bulk_load" (fun () -> of_sorted ?pool t.store entries)));
    to_list = (fun () -> to_list t);
    cardinal = (fun () -> cardinal t);
    diff =
      (fun other_root ->
        probe t "mpt.diff" (fun () -> diff t (of_root t.store other_root)));
    merge =
      (fun policy other_root ->
        match merge t (of_root t.store other_root) ~policy with
        | Ok m -> Ok (generic ?pool m)
        | Error cs -> Error cs);
    prove = (fun k -> probe t "mpt.prove" (fun () -> prove t k));
    verify = (fun ~root proof -> verify_proof ~root proof);
    prove_many = (fun ks -> probe t "mpt.prove_many" (fun () -> prove_many t ks));
    verify_many = (fun ~root mp -> verify_many ~root mp);
    reopen = (fun r -> generic ?pool (of_root t.store r));
    range = (fun ~lo ~hi -> range t ~lo ~hi);
    scan = (fun ~lo ~hi -> scan t ~lo ~hi) }
