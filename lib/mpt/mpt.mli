(** Merkle Patricia Trie (Section 3.4.1) — a radix tree over hex nibbles with
    path compaction and cryptographic authentication, as used by Ethereum.

    Node kinds: {e branch} (16 children + optional value), {e extension}
    (compacted shared path + one child), {e leaf} (compacted remaining path +
    value); the null node is represented by {!Siri_crypto.Hash.null}.  The
    shape depends only on the stored key set (structurally invariant), and
    node-level copy-on-write shares all untouched nodes between versions. *)

open Siri_crypto
open Siri_core
module Store = Siri_store.Store

type t
(** An immutable trie version: a store plus a root digest. *)

val empty : Store.t -> t
val of_root : Store.t -> Hash.t -> t
val root : t -> Hash.t
val store : t -> Store.t
val is_empty : t -> bool

val lookup : t -> Kv.key -> Kv.value option

val get_many : t -> Kv.key list -> (Kv.key * Kv.value option) list
(** Batched point lookups in one walk: distinct keys are sorted and
    partitioned by nibble at each branch, so sibling keys share every
    decoded prefix node.  One result pair per input key, in input order;
    equivalent to [List.map (fun k -> (k, lookup t k))]. *)

val path_length : t -> Kv.key -> int
(** Nodes traversed by [lookup] — the tree-height metric of Figure 9. *)

val insert : t -> Kv.key -> Kv.value -> t
val remove : t -> Kv.key -> t
(** Removal collapses single-child branches back into extensions/leaves, so
    the shape stays canonical for the remaining key set. *)

val batch : t -> Kv.op list -> t
val of_entries : Store.t -> (Kv.key * Kv.value) list -> t

val of_sorted : ?pool:Siri_parallel.Pool.t -> Store.t -> (Kv.key * Kv.value) list -> t
(** Bulk-load by canonical bottom-up construction.  The trie is
    structurally invariant, so the root is byte-identical to
    {!of_entries} — but node encoding and hashing fan out over [pool]
    (default: sequential), split at the first branch point into up to 16
    independent subtries.  Root hashes and store/telemetry accounting are
    identical for any domain count.  Duplicate keys: last wins. *)

val insert_many : ?pool:Siri_parallel.Pool.t -> t -> (Kv.key * Kv.value) list -> t
(** {!of_sorted} when the trie is empty, sequential {!batch} otherwise. *)

val to_list : t -> (Kv.key * Kv.value) list
(** Records sorted by key (byte order — nibble order coincides with it). *)

val cardinal : t -> int
val iter : t -> (Kv.key -> Kv.value -> unit) -> unit

val range : t -> lo:Kv.key option -> hi:Kv.key option -> (Kv.key * Kv.value) list
(** Records with lo <= key <= hi (inclusive; [None] = unbounded), in key
    order; subtrees whose nibble prefix falls outside the bounds are
    pruned. *)

val scan :
  t -> lo:Kv.key option -> hi:Kv.key option -> (Kv.key * Kv.value) Seq.t
(** Streaming nibble-path DFS over the half-open interval [lo, hi):
    entries in key order, nodes fetched lazily as the consumer demands
    them, out-of-range subtrees pruned before they are read. *)

val diff : t -> t -> Kv.diff_entry list
(** Hash-pruned structural diff: identical subtrees are skipped without
    being decoded. *)

val merge : t -> t -> policy:Kv.merge_policy -> (t, Kv.conflict list) result

val prove : t -> Kv.key -> Proof.t
val verify_proof : root:Hash.t -> Proof.t -> bool
(** Checks the proof's node chain against the trusted root and replays the
    traversal; accepts both membership and absence proofs. *)

val prove_many : t -> Kv.key list -> Multiproof.t
(** Batched proof for a key set, built by the [get_many] single walk with
    recording fetches: the node set is the union of the single-proof
    paths, each distinct node once, in first-visit order (root first).
    Keys are sorted and deduplicated; absent keys get [None] claims whose
    witnessing divergence nodes ride along. *)

val verify_many : root:Hash.t -> Multiproof.t -> bool
(** Replays the proving walk over the supplied nodes, consuming them in
    first-visit order with every node re-hashed against the hash the
    traversal requested; accepts iff the replay terminates with all nodes
    consumed and every claim equal to what the replay found.  On
    [Hash.null] roots: accepts exactly node-less all-absence proofs. *)

val generic : ?pool:Siri_parallel.Pool.t -> t -> Generic.t
(** Package as a uniform SIRI instance.  With [pool], the instance's
    [bulk_load] runs through the parallel {!of_sorted} pipeline. *)
