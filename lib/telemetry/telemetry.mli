(** Always-on observability for the SIRI substrate.

    The paper's contribution is measurement — throughput, latency, node
    reads/writes, deduplication — so the reproduction carries a first-class
    metering layer instead of ad-hoc counting inside [bench/].  A
    {!type-sink} collects three kinds of evidence:

    - {b counters} — cheap monotonic integers (node reads/writes, bytes
      serialized, hash invocations, cache hits/misses/evictions);
    - {b histograms} — log-bucketed latency distributions with
      p50/p95/p99 extraction (generalizing [Siri_benchkit.Hist] to bounded
      memory);
    - {b spans} — named scopes with nesting, for tracing where an
      operation spends its reads.

    Every event source (the store, the engine, the LRU, the remote
    simulation, and all four index implementations) reports through the
    same name schema: [store.get], [store.put], [store.put_unique],
    [hash.count], [cache.hit], [cache.miss], [cache.evict],
    [remote.retry], and per-index [<index>.<op>] probes
    ([mpt.lookup], [pos-tree.batch], …).  The durability layer
    ([Siri_wal]) adds [wal.append], [wal.append_bytes], [wal.fsync] and
    [wal.checkpoint] on the write path, and [recovery.replayed],
    [recovery.skipped], [recovery.clamped], [recovery.clamped_bytes]
    plus a [recovery] span (and a [wal.checkpoint] span) on the recovery
    path.

    {b Determinism.}  A sink is driven by a pluggable clock.  The default
    clock is a per-sink tick counter — every reading advances simulated
    time by one tick — so span durations and histogram contents are
    exactly reproducible in tests.  Production callers pass a wall clock
    (e.g. [Unix.gettimeofday]).

    {b Cost.}  The {!null} sink is a [None]-tagged option: every probe on
    it is a single pattern match, so instrumented hot paths stay hot when
    telemetry is off, and attaching a sink never changes any root hash —
    instrumentation observes, it does not serialize.

    {b Threads.}  Counters and histograms ({!incr}, {!observe} and their
    readers) are guarded by an internal mutex, so concurrent server
    session threads can meter onto one shared sink.  Spans are {e not}:
    {!with_span} keeps a nesting-depth cursor that only makes sense on a
    single thread — multi-threaded callers must stick to {!incr} and
    {!observe}. *)

type sink
(** A metrics collector, or the disabled {!null} sink. *)

val null : sink
(** The disabled sink: all recording operations are no-ops. *)

val create : ?clock:(unit -> float) -> ?max_spans:int -> unit -> sink
(** A fresh enabled sink.  [clock] defaults to a deterministic per-sink
    tick counter (each reading returns 1.0, 2.0, …).  At most [max_spans]
    (default 100_000) completed spans are retained; further spans are
    dropped and counted under the [telemetry.spans_dropped] counter so no
    loss is silent. *)

val enabled : sink -> bool
(** [false] exactly for {!null}. *)

val now : sink -> float
(** Read (and, under the tick clock, advance) the sink's clock; [0.] on
    {!null}. *)

(** {2 Counters} *)

val incr : sink -> ?by:int -> string -> unit
val counter : sink -> string -> int
(** 0 for a counter never incremented. *)

val counters : sink -> (string * int) list
(** All counters, sorted by name. *)

(** {2 Latency histograms} *)

module Histo : sig
  (** A log-bucketed distribution: power-of-two bucket boundaries starting
      at 1 ns, exact [count]/[sum]/[min]/[max], bounded memory regardless
      of sample count. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val min_value : t -> float
  val max_value : t -> float
  val mean : t -> float

  val quantile : t -> float -> float
  (** [quantile h p] for [p] in [0, 1]: the upper bound of the bucket
      holding the rank-⌈p·count⌉ sample, clamped to [[min, max]] — an
      estimate whose error is bounded by the bucket width.  0 on an empty
      histogram. *)

  val p50 : t -> float
  val p95 : t -> float
  val p99 : t -> float

  val buckets : t -> (float * float * int) list
  (** Non-empty buckets as [(lower, upper, count)], in increasing order. *)
end

val observe : sink -> string -> float -> unit
(** Record one sample into the named histogram. *)

val histogram : sink -> string -> Histo.t option
val histograms : sink -> (string * Histo.t) list
(** All histograms, sorted by name. *)

val quantile : sink -> string -> float -> float
(** [quantile sink name p] — 0 if the histogram does not exist. *)

(** {2 Span tracing} *)

type span = {
  name : string;
  start_s : float;  (** clock reading at entry *)
  stop_s : float;  (** clock reading at exit (>= [start_s]) *)
  depth : int;  (** nesting depth at entry; 0 = top level *)
}

val with_span : sink -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named scope.  The completed span is recorded on
    exit (also when the thunk raises — the exception is re-raised).
    Single-threaded only — see the Threads note above. *)

val spans : sink -> span list
(** Completed spans in completion order (inner spans before the scopes
    that contain them). *)

val span_depth : sink -> int
(** Current live nesting depth — 0 when no span is open. *)

(** {2 Combined probe}

    The uniform per-operation instrumentation used by the index
    implementations: one call increments [<name>.calls], times the thunk
    into histogram [<name>] and wraps it in a span [<name>].  On {!null}
    this is a single pattern match around the thunk. *)

val probe : sink -> string -> (unit -> 'a) -> 'a

val reset : sink -> unit
(** Drop all counters, histograms and completed spans (the clock keeps
    ticking forward). *)

(** {2 Hash metering}

    Routes {!Siri_crypto.Hash.set_digest_observer} into a sink: every
    digest computation increments [hash.count] and adds the input length
    to [hash.bytes]. *)

val attach_hash_counter : sink -> unit
(** Installs the observer (replacing any previous one).  Attaching
    {!null} is equivalent to {!detach_hash_counter}. *)

val detach_hash_counter : unit -> unit

(** {2 Export} *)

module Json : sig
  (** A minimal JSON builder (no external dependency) — also used by the
      benchmark sidecar writer. *)

  type t

  val obj : (string * t) list -> t
  val arr : t list -> t
  val str : string -> t
  val num : float -> t
  val int : int -> t
  val bool : bool -> t
  val to_string : t -> string
  (** Compact rendering; strings are escaped per RFC 8259. *)
end

val json_of_histo : Histo.t -> Json.t
(** [{"count":…,"sum":…,"min":…,"max":…,"mean":…,"p50":…,"p95":…,"p99":…}]. *)

val to_json : sink -> Json.t
(** The whole sink as one object:
    [{"counters":{…},"histograms":{…},"spans":[…]}].  {!null} exports
    empty sections. *)

val to_ndjson : sink -> string
(** One JSON object per line: [{"type":"counter",…}],
    [{"type":"histogram",…}], [{"type":"span",…}] — the
    machine-readable sidecar format. *)

val pp : Format.formatter -> sink -> unit
(** Human-readable dump: counters, histogram summaries, span count. *)
