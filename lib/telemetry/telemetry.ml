(* See telemetry.mli for the design.  The sink is an option so that the
   disabled path costs one pattern match — instrumentation stays on the hot
   paths permanently and is free when no sink is attached. *)

(* --- log-bucketed histograms ------------------------------------------------ *)

module Histo = struct
  (* Bucket [i] covers (base * 2^(i-1), base * 2^i] with base = 1 ns;
     bucket 0 additionally absorbs everything <= base (including 0 and any
     negative sample, which cannot occur from a monotone clock).  64
     buckets reach ~2.9e2 years — effectively unbounded for latencies. *)

  let nbuckets = 64
  let base = 1e-9

  type t = {
    counts : int array;
    mutable count : int;
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create () =
    { counts = Array.make nbuckets 0;
      count = 0;
      sum = 0.0;
      min_v = infinity;
      max_v = neg_infinity }

  let bucket_of x =
    if x <= base then 0
    else
      let b = int_of_float (Float.ceil (Float.log2 (x /. base))) in
      if b < 0 then 0 else if b >= nbuckets then nbuckets - 1 else b

  let add t x =
    let i = bucket_of x in
    t.counts.(i) <- t.counts.(i) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum +. x;
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x

  let count t = t.count
  let sum t = t.sum
  let min_value t = if t.count = 0 then 0.0 else t.min_v
  let max_value t = if t.count = 0 then 0.0 else t.max_v
  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

  let upper i = base *. Float.pow 2.0 (float_of_int i)
  let lower i = if i = 0 then 0.0 else upper (i - 1)

  let quantile t p =
    if t.count = 0 then 0.0
    else begin
      let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
      let rank = max 1 (int_of_float (Float.ceil (p *. float_of_int t.count))) in
      let rec go i seen =
        if i >= nbuckets then t.max_v
        else
          let seen = seen + t.counts.(i) in
          if seen >= rank then upper i else go (i + 1) seen
      in
      let est = go 0 0 in
      (* The estimate is a bucket bound; the true sample lies in [min, max]. *)
      Float.min t.max_v (Float.max t.min_v est)
    end

  let p50 t = quantile t 0.5
  let p95 t = quantile t 0.95
  let p99 t = quantile t 0.99

  let buckets t =
    let acc = ref [] in
    for i = nbuckets - 1 downto 0 do
      if t.counts.(i) > 0 then acc := (lower i, upper i, t.counts.(i)) :: !acc
    done;
    !acc
end

(* --- sink ------------------------------------------------------------------- *)

type span = { name : string; start_s : float; stop_s : float; depth : int }

type state = {
  clock : unit -> float;
  mu : Mutex.t;
      (* guards [counters] and [histos]: {!incr} and {!observe} are called
         concurrently by server session threads, and an unguarded Hashtbl
         resize racing a lookup can corrupt a bucket chain.  Spans stay
         single-threaded (the depth counter makes {!with_span} inherently
         so) and are not guarded. *)
  counters : (string, int ref) Hashtbl.t;
  histos : (string, Histo.t) Hashtbl.t;
  max_spans : int;
  mutable spans : span list;  (* completed, newest first *)
  mutable nspans : int;
  mutable depth : int;
}

let locked s f =
  Mutex.lock s.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.mu) f

type sink = state option

let null = None

let tick_clock () =
  let ticks = ref 0 in
  fun () ->
    incr ticks;
    float_of_int !ticks

let create ?clock ?(max_spans = 100_000) () =
  let clock = match clock with Some c -> c | None -> tick_clock () in
  Some
    { clock;
      mu = Mutex.create ();
      counters = Hashtbl.create 64;
      histos = Hashtbl.create 16;
      max_spans;
      spans = [];
      nspans = 0;
      depth = 0 }

let enabled = Option.is_some
let now = function None -> 0.0 | Some s -> s.clock ()

let incr sink ?(by = 1) name =
  match sink with
  | None -> ()
  | Some s ->
      locked s (fun () ->
          match Hashtbl.find_opt s.counters name with
          | Some r -> r := !r + by
          | None -> Hashtbl.add s.counters name (ref by))

let counter sink name =
  match sink with
  | None -> 0
  | Some s ->
      locked s (fun () ->
          match Hashtbl.find_opt s.counters name with Some r -> !r | None -> 0)

let counters sink =
  match sink with
  | None -> []
  | Some s ->
      locked s (fun () ->
          Hashtbl.fold (fun k r acc -> (k, !r) :: acc) s.counters [])
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let histo_of s name =
  match Hashtbl.find_opt s.histos name with
  | Some h -> h
  | None ->
      let h = Histo.create () in
      Hashtbl.add s.histos name h;
      h

let observe sink name x =
  match sink with
  | None -> ()
  | Some s -> locked s (fun () -> Histo.add (histo_of s name) x)

let histogram sink name =
  match sink with
  | None -> None
  | Some s -> locked s (fun () -> Hashtbl.find_opt s.histos name)

let histograms sink =
  match sink with
  | None -> []
  | Some s ->
      locked s (fun () -> Hashtbl.fold (fun k h acc -> (k, h) :: acc) s.histos [])
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let quantile sink name p =
  match histogram sink name with None -> 0.0 | Some h -> Histo.quantile h p

let record_span s span =
  if s.nspans < s.max_spans then begin
    s.spans <- span :: s.spans;
    s.nspans <- s.nspans + 1
  end
  else
    locked s (fun () ->
        match Hashtbl.find_opt s.counters "telemetry.spans_dropped" with
        | Some r -> Stdlib.incr r
        | None -> Hashtbl.add s.counters "telemetry.spans_dropped" (ref 1))

let with_span sink name f =
  match sink with
  | None -> f ()
  | Some s ->
      let depth = s.depth in
      s.depth <- depth + 1;
      let start_s = s.clock () in
      let finish () =
        let stop_s = s.clock () in
        s.depth <- depth;
        record_span s { name; start_s; stop_s; depth }
      in
      (match f () with
      | x ->
          finish ();
          x
      | exception e ->
          finish ();
          raise e)

let spans sink = match sink with None -> [] | Some s -> List.rev s.spans
let span_depth sink = match sink with None -> 0 | Some s -> s.depth

let probe sink name f =
  match sink with
  | None -> f ()
  | Some _ as sink ->
      incr sink (name ^ ".calls");
      with_span sink name (fun () ->
          let t0 = now sink in
          let finish () = observe sink name (now sink -. t0) in
          match f () with
          | x ->
              finish ();
              x
          | exception e ->
              finish ();
              raise e)

let reset sink =
  match sink with
  | None -> ()
  | Some s ->
      locked s (fun () ->
          Hashtbl.reset s.counters;
          Hashtbl.reset s.histos);
      s.spans <- [];
      s.nspans <- 0;
      s.depth <- 0

(* --- hash metering ----------------------------------------------------------- *)

let attach_hash_counter sink =
  match sink with
  | None -> Siri_crypto.Hash.set_digest_observer None
  | Some _ ->
      Siri_crypto.Hash.set_digest_observer
        (Some
           (fun len ->
             incr sink "hash.count";
             incr sink ~by:len "hash.bytes"))

let detach_hash_counter () = Siri_crypto.Hash.set_digest_observer None

(* --- export ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Obj of (string * t) list
    | Arr of t list
    | Str of string
    | Num of float
    | Int of int
    | Bool of bool

  let obj fields = Obj fields
  let arr xs = Arr xs
  let str s = Str s
  let num x = Num x
  let int n = Int n
  let bool b = Bool b

  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let fmt_num x =
    (* JSON has no representation for non-finite numbers. *)
    if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then "null"
    else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
    else Printf.sprintf "%.9g" x

  let rec render b = function
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\":";
            render b v)
          fields;
        Buffer.add_char b '}'
    | Arr xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            render b v)
          xs;
        Buffer.add_char b ']'
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | Num x -> Buffer.add_string b (fmt_num x)
    | Int n -> Buffer.add_string b (string_of_int n)
    | Bool v -> Buffer.add_string b (if v then "true" else "false")

  let to_string t =
    let b = Buffer.create 256 in
    render b t;
    Buffer.contents b
end

let json_of_histo h =
  Json.obj
    [ ("count", Json.int (Histo.count h));
      ("sum", Json.num (Histo.sum h));
      ("min", Json.num (Histo.min_value h));
      ("max", Json.num (Histo.max_value h));
      ("mean", Json.num (Histo.mean h));
      ("p50", Json.num (Histo.p50 h));
      ("p95", Json.num (Histo.p95 h));
      ("p99", Json.num (Histo.p99 h)) ]

let json_of_span sp =
  Json.obj
    [ ("name", Json.str sp.name);
      ("start", Json.num sp.start_s);
      ("stop", Json.num sp.stop_s);
      ("depth", Json.int sp.depth) ]

let to_json sink =
  Json.obj
    [ ( "counters",
        Json.obj (List.map (fun (k, v) -> (k, Json.int v)) (counters sink)) );
      ( "histograms",
        Json.obj
          (List.map (fun (k, h) -> (k, json_of_histo h)) (histograms sink)) );
      ("spans", Json.arr (List.map json_of_span (spans sink))) ]

let to_ndjson sink =
  let b = Buffer.create 1024 in
  let line j =
    Buffer.add_string b (Json.to_string j);
    Buffer.add_char b '\n'
  in
  List.iter
    (fun (k, v) ->
      line
        (Json.obj
           [ ("type", Json.str "counter");
             ("name", Json.str k);
             ("value", Json.int v) ]))
    (counters sink);
  List.iter
    (fun (k, h) ->
      line
        (Json.obj
           [ ("type", Json.str "histogram");
             ("name", Json.str k);
             ("summary", json_of_histo h) ]))
    (histograms sink);
  List.iter
    (fun sp ->
      line
        (Json.obj
           (("type", Json.str "span")
           :: [ ("name", Json.str sp.name);
                ("start", Json.num sp.start_s);
                ("stop", Json.num sp.stop_s);
                ("depth", Json.int sp.depth) ])))
    (spans sink);
  Buffer.contents b

let pp ppf sink =
  Format.fprintf ppf "counters:@.";
  List.iter (fun (k, v) -> Format.fprintf ppf "  %-28s %d@." k v) (counters sink);
  Format.fprintf ppf "histograms:@.";
  List.iter
    (fun (k, h) ->
      Format.fprintf ppf "  %-28s n=%d mean=%.2fus p50=%.2fus p95=%.2fus p99=%.2fus@."
        k (Histo.count h)
        (Histo.mean h *. 1e6)
        (Histo.p50 h *. 1e6)
        (Histo.p95 h *. 1e6)
        (Histo.p99 h *. 1e6))
    (histograms sink);
  Format.fprintf ppf "spans: %d completed@." (List.length (spans sink))
