(** A polymorphic fixed-budget LRU cache: the intrusive-list recency
    discipline of [Siri_forkbase.Lru] generalized to carry values and to
    meter capacity in approximate {e cost units} (bytes, for the decoded
    node cache) rather than entry counts.

    All operations are O(1) except {!clear} and {!resize}.  The cache is
    not domain-safe: like the store's node table, it belongs to the
    coordinating domain (pool workers never read through it). *)

module Make (K : Hashtbl.HashedType) : sig
  type 'a t

  val create : budget:int -> 'a t
  (** [budget] in cost units; must be non-negative.  A zero-budget cache
      stores nothing: every {!find} misses and {!insert} is a no-op. *)

  val budget : 'a t -> int
  val size : 'a t -> int
  (** Entries currently held. *)

  val cost : 'a t -> int
  (** Sum of the [cost] of all held entries (<= [budget] after every
      operation, unless a single entry exceeds the whole budget — such an
      entry is never admitted). *)

  val find : 'a t -> K.t -> 'a option
  (** Lookup; refreshes recency on hit. *)

  val insert : 'a t -> K.t -> cost:int -> 'a -> unit
  (** Insert or replace, then evict least-recently-used entries until the
      total cost fits the budget.  An entry whose own cost exceeds the
      budget is dropped immediately (nothing else is evicted for it). *)

  val remove : 'a t -> K.t -> bool
  (** Targeted invalidation; returns whether the key was held. *)

  val mem : 'a t -> K.t -> bool
  (** Membership without refreshing recency. *)

  val evictions : 'a t -> int
  (** Entries evicted by {!insert} since creation ({!clear}/{!remove} do
      not count — an explicit drop is not an eviction). *)

  val clear : 'a t -> unit

  val resize : 'a t -> budget:int -> unit
  (** Change the budget in place, evicting (oldest first) until the held
      cost fits.  Shrinking to 0 empties the cache. *)

  val iter : 'a t -> (K.t -> 'a -> unit) -> unit
  (** Most-recent first; for tests and diagnostics. *)
end
