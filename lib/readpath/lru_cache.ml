(* Hash table + intrusive recency ring, generalized from
   Siri_forkbase.Lru: entries carry a value and a cost, and the capacity
   is a cost budget instead of an entry count.  Eviction pops from the
   ring tail until the budget is respected, so every operation stays
   O(1) amortized regardless of how lopsided the entry costs are.

   The ring is circular through a sentinel, so linking and unlinking are
   plain pointer writes: no [option] boxes are allocated on the hit path,
   which matters because a traversal touches the cache once per node and
   a hit must stay cheaper than fetching and re-decoding the node. *)

module Make (K : Hashtbl.HashedType) = struct
  module Tbl = Hashtbl.Make (K)

  type 'a entry = {
    key : K.t;
    mutable value : 'a;
    mutable entry_cost : int;
    mutable prev : 'a entry;
    mutable next : 'a entry;
  }

  type 'a t = {
    mutable budget : int;
    tbl : 'a entry Tbl.t;
    (* Sentinel of the recency ring: [sentinel.next] is most recent,
       [sentinel.prev] least recent; created lazily on the first insert
       because it needs a (dummy) key and value.  Its cost is 0 and it is
       never in [tbl], so it can never be found or evicted. *)
    mutable sentinel : 'a entry option;
    mutable held_cost : int;
    mutable evicted : int;
  }

  let create ~budget =
    if budget < 0 then invalid_arg "Lru_cache.create: budget must be non-negative";
    (* Entry count is unknowable from a byte budget; start small and let
       the table grow geometrically — no churn, since Hashtbl only ever
       doubles (the 2*capacity pre-sizing mistake of the hash-LRU does
       not apply here). *)
    { budget; tbl = Tbl.create 64; sentinel = None; held_cost = 0; evicted = 0 }

  let budget t = t.budget
  let size t = Tbl.length t.tbl
  let cost t = t.held_cost
  let evictions t = t.evicted
  let mem t k = Tbl.mem t.tbl k

  let unlink e =
    e.prev.next <- e.next;
    e.next.prev <- e.prev;
    e.prev <- e;
    e.next <- e

  let push_front s e =
    e.prev <- s;
    e.next <- s.next;
    s.next.prev <- e;
    s.next <- e

  let sentinel_for t k v =
    match t.sentinel with
    | Some s -> s
    | None ->
        (* The dummy key/value only anchor the ring; they are never
           consulted (cost 0, not in the table). *)
        let rec s =
          { key = k; value = v; entry_cost = 0; prev = s; next = s }
        in
        t.sentinel <- Some s;
        s

  let drop t e =
    unlink e;
    Tbl.remove t.tbl e.key;
    t.held_cost <- t.held_cost - e.entry_cost

  let evict_until_fits t =
    match t.sentinel with
    | None -> ()
    | Some s ->
        while t.held_cost > t.budget do
          let e = s.prev in
          if e == s then t.held_cost <- 0 (* unreachable: cost without entries *)
          else begin
            drop t e;
            t.evicted <- t.evicted + 1
          end
        done

  let find t k =
    match Tbl.find t.tbl k with
    | exception Not_found -> None
    | e ->
        (match t.sentinel with
        | Some s when s.next != e ->
            unlink e;
            push_front s e
        | _ -> () (* already most recent (or unreachable: no sentinel) *));
        Some e.value

  let insert t k ~cost v =
    if cost < 0 then invalid_arg "Lru_cache.insert: negative cost";
    match Tbl.find_opt t.tbl k with
    | Some e ->
        (* Replace in place; recency refreshes, cost may change. *)
        t.held_cost <- t.held_cost - e.entry_cost + cost;
        e.value <- v;
        e.entry_cost <- cost;
        let s = sentinel_for t k v in
        if s.next != e then begin
          unlink e;
          push_front s e
        end;
        if t.held_cost > t.budget then
          (* The refreshed entry sits at the front, so it survives unless
             it alone exceeds the budget — then the loop drains everything
             and finally drops it too. *)
          evict_until_fits t
    | None ->
        if cost <= t.budget then begin
          let s = sentinel_for t k v in
          let rec e =
            { key = k; value = v; entry_cost = cost; prev = e; next = e }
          in
          Tbl.add t.tbl k e;
          push_front s e;
          t.held_cost <- t.held_cost + cost;
          evict_until_fits t
        end

  let remove t k =
    match Tbl.find_opt t.tbl k with
    | None -> false
    | Some e ->
        drop t e;
        true

  let clear t =
    Tbl.reset t.tbl;
    (match t.sentinel with
    | Some s ->
        s.prev <- s;
        s.next <- s
    | None -> ());
    t.held_cost <- 0

  let resize t ~budget =
    if budget < 0 then invalid_arg "Lru_cache.resize: budget must be non-negative";
    t.budget <- budget;
    evict_until_fits t

  let iter t f =
    match t.sentinel with
    | None -> ()
    | Some s ->
        let rec go e =
          if e != s then begin
            f e.key e.value;
            go e.next
          end
        in
        go s.next
end
