(** Content-addressed decoded-node cache — the shared read-path layer.

    Every index node is immutable and addressed by the SHA-256 of its
    bytes, so a mapping [hash -> decoded node] is {e safe forever}: there
    is no invalidation protocol, no version epoch, no coherence traffic.
    The only ways a cached entry can become wrong are deliberate tamper
    simulation and store GC, and [Siri_store.Store] invalidates the cache
    on exactly those primitives.

    Decoded nodes of the five index kinds have different types, so the
    cache carries an {e extensible} payload: each index library declares
    its own constructor ([type Node_cache.repr += N of node]) and matches
    it back on lookup.  A payload of the wrong kind (possible only if two
    codecs decoded the same bytes — distinct wire layouts make this
    practically unreachable) is treated as a miss and overwritten.

    Capacity is a byte budget approximated by the {e encoded} size of each
    node (the decoded heap form tracks it closely for our fixed layouts);
    eviction is O(1) LRU via {!Lru_cache}.  Hit/miss/evict counts are kept
    in [Atomic]s so any domain can read stats, and are mirrored to an
    attached telemetry sink as [cache.node.hit] / [cache.node.miss] /
    [cache.node.evict].  Like the store's node table, the cache itself
    must only be touched by the coordinating domain. *)

type repr = ..
(** The open union of decoded node types; each index library adds its own
    constructor. *)

type t

val default_budget : int
(** The default byte budget (64 MiB) used when [SIRI_NODE_CACHE] is unset
    and no explicit capacity is given to an enabling caller. *)

val budget_from_env : unit -> int option
(** Parse the [SIRI_NODE_CACHE] environment variable — the cache budget in
    bytes, mirroring [SIRI_DOMAINS]: unset or unparsable means [None],
    [0] disables the cache, negative values are clamped to [0]. *)

val create : ?budget:int -> unit -> t
(** [budget] defaults to the [SIRI_NODE_CACHE] override when set, else
    [0] (disabled) — existing stores opt in explicitly, so fault
    injection, deployment simulation and telemetry conservation keep
    their exact read counts unless a caller asks for caching. *)

val enabled : t -> bool
(** [budget > 0]. *)

val budget : t -> int
val size : t -> int
val cost : t -> int

val find : t -> Siri_crypto.Hash.t -> repr option
(** Refreshes recency and counts a hit or miss. *)

val insert : t -> Siri_crypto.Hash.t -> bytes:int -> repr -> unit
(** [bytes] is the encoded node size — the cost charged against the
    budget. *)

val remove : t -> Siri_crypto.Hash.t -> unit
(** Targeted invalidation (tamper simulation, node quarantine). *)

val remove_many : t -> Siri_crypto.Hash.t list -> unit
(** Batch invalidation — used by [Store.gc] for nodes reclaimed from the
    cold pack tier, which may be cached here without ever having been in
    the hot table. *)

val clear : t -> unit
val resize : t -> budget:int -> unit

val hits : t -> int
val misses : t -> int
val evictions : t -> int
(** Monotonic totals since creation; {!clear}/{!resize} do not reset
    them. *)

val set_sink : t -> Siri_telemetry.Telemetry.sink -> unit
(** Mirror subsequent hits/misses/evictions to [cache.node.*] counters. *)
