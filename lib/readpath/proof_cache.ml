module Hash = Siri_crypto.Hash
module Telemetry = Siri_telemetry.Telemetry

type repr = ..

module Cache = Lru_cache.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

type t = {
  cache : repr Cache.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evicted_seen : int Atomic.t;  (* evictions already mirrored to the sink *)
  mutable sink : Telemetry.sink;
}

let budget_from_env () =
  match Option.bind (Sys.getenv_opt "SIRI_PROOF_CACHE") int_of_string_opt with
  | Some b -> Some (max 0 b)
  | None -> None

let create ?budget () =
  let budget =
    match budget with
    | Some b -> max 0 b
    | None -> ( match budget_from_env () with Some b -> b | None -> 0)
  in
  { cache = Cache.create ~budget;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evicted_seen = Atomic.make 0;
    sink = Telemetry.null }

let enabled t = Cache.budget t.cache > 0
let budget t = Cache.budget t.cache
let size t = Cache.size t.cache
let cost t = Cache.cost t.cache
let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
let evictions t = Cache.evictions t.cache
let set_sink t sink = t.sink <- sink

let cache_key ~root keys =
  let b = Buffer.create 64 in
  Buffer.add_string b (Hash.to_raw root);
  List.iter
    (fun k ->
      Buffer.add_string b (string_of_int (String.length k));
      Buffer.add_char b ':';
      Buffer.add_string b k)
    keys;
  Buffer.contents b

(* Same watermark discipline as Node_cache.flush_evictions: surface the
   eviction delta at the operation that caused it, exactly once. *)
let flush_evictions t =
  let total = Cache.evictions t.cache in
  let seen = Atomic.get t.evicted_seen in
  if total > seen then begin
    Atomic.set t.evicted_seen total;
    Telemetry.incr t.sink ~by:(total - seen) "proof.cache.evict"
  end

let find t k =
  match Cache.find t.cache k with
  | Some _ as r ->
      Atomic.incr t.hits;
      Telemetry.incr t.sink "proof.cache.hit";
      r
  | None ->
      Atomic.incr t.misses;
      Telemetry.incr t.sink "proof.cache.miss";
      None

let insert t k ~cost repr =
  if Cache.budget t.cache > 0 then begin
    Cache.insert t.cache k ~cost repr;
    flush_evictions t
  end

let clear t = Cache.clear t.cache

let resize t ~budget =
  Cache.resize t.cache ~budget;
  flush_evictions t
