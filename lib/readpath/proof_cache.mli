(** Memoized multiproofs, keyed by [(version root, sorted key set)].

    Proof serving is read-heavy and repetitive — verifiers poll the same
    hot key sets against the same published root — so the store carries a
    budgeted LRU of finished multiproofs beside its decoded-node cache.
    A hit skips the whole proving walk (every node fetch and decode); a
    miss costs one extra insert.

    Like {!Node_cache}, the payload type is an extensible variant so this
    library does not depend on the proof representation above it
    ([Siri_core.Generic] injects its constructor), and coherence is by
    construction: multiproofs are pure functions of immutable version
    roots, so only the store operations that mutate bytes under a hash
    (tamper primitives, gc) require invalidation — they {!clear} the
    cache wholesale, since a proof may embed any node.

    Disabled (budget 0) unless a budget is passed or [SIRI_PROOF_CACHE]
    is set, mirroring the node cache's opt-in discipline. *)

type repr = ..
(** Cached payloads.  Each consumer adds its own constructor. *)

type t

val create : ?budget:int -> unit -> t
(** [budget] in bytes ([Multiproof.size_bytes] is the intended cost).
    Defaults to [SIRI_PROOF_CACHE] when set, else 0 (disabled). *)

val enabled : t -> bool
val budget : t -> int
val size : t -> int
val cost : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int

val cache_key : root:Siri_crypto.Hash.t -> string list -> string
(** Canonical cache key for a proof request: the raw root digest followed
    by the length-prefixed keys (callers pass them sorted — the proving
    entry points sort anyway).  Length prefixes keep distinct key lists
    from colliding however the key bytes look. *)

val find : t -> string -> repr option
(** Counts [proof.cache.hit] / [proof.cache.miss] on the attached sink. *)

val insert : t -> string -> cost:int -> repr -> unit
(** No-op when disabled.  Evictions surface as [proof.cache.evict]. *)

val clear : t -> unit
(** Drop everything — the invalidation called by the store's tamper
    primitives and gc. *)

val resize : t -> budget:int -> unit

val set_sink : t -> Siri_telemetry.Telemetry.sink -> unit
