(** Negative-lookup filter: a classic Bloom filter over the key set of one
    committed version, kept as a sidecar keyed by root hash.

    A read that misses the filter is guaranteed absent from that version,
    so the engine can answer [None] without touching a single node — the
    filter turns the worst read (a full root-to-leaf walk ending in
    nothing) into the cheapest one.  A read that hits the filter may still
    be absent (false positives are allowed and bounded by the sizing
    below); the traversal then settles it.  {e False negatives never
    happen}: [add]ed keys always test present, which qcheck enforces
    across all five index kinds.

    Versions are immutable, so a filter is built once — at [commit] time
    by copying the parent version's filter and adding the written keys
    (deleted keys stay set, costing only false positives), or from
    scratch during [bulk_load] — and never mutated afterwards.

    Sizing: [bits_per_key] bits per expected key (default 10) with
    [k = round(bits_per_key * ln 2)] probes (7 at the default) gives a
    false-positive rate of about [(1 - e^{-k/bpk})^k ~ 0.8%%].  Probes use
    double hashing over two independent FNV-1a variants — deliberately
    {e not} [Hash.of_string], so filter operations never perturb the
    [hash.count] telemetry the benchmarks rely on. *)

type t

val create : ?bits_per_key:int -> expected:int -> unit -> t
(** A fresh filter sized for [expected] keys (clamped to at least 1).
    [bits_per_key] below 1 is clamped to 1. *)

val add : t -> string -> unit

val mem : t -> string -> bool
(** [false] is definitive absence; [true] means "probably present". *)

val of_keys : ?bits_per_key:int -> string list -> t
(** Build and populate in one step (the [bulk_load] path). *)

val copy : t -> t
(** A detached copy — the parent-version filter a commit extends. *)

val add_all : t -> string list -> unit

val bits : t -> int
(** Filter width in bits. *)

val probes : t -> int
(** Hash probes per key ([k]). *)

val memory_bytes : t -> int
(** Approximate heap footprint of the bit array. *)

val fill_ratio : t -> float
(** Fraction of bits set — a saturation diagnostic (a well-sized filter
    sits near [0.5] when full). *)
