(* Standard Bloom filter with Kirsch–Mitzenmacher double hashing: two
   independent 64-bit FNV-1a passes give h1 and h2, and probe [i] tests
   bit [(h1 + i*h2) mod nbits].  FNV is used instead of the crypto hash
   on purpose — filter membership must not count against [hash.count]
   telemetry, and a 32-byte SHA-256 per probe would dominate the very
   misses the filter exists to make cheap. *)

type t = {
  bits : Bytes.t;
  nbits : int;
  k : int;
}

(* FNV-1a, 64-bit constants folded into OCaml's 63-bit native int (the
   canonical offset basis has its top bit dropped to stay a literal).
   The top-bit loss is irrelevant: we only need well-mixed residues mod
   [nbits].  Two variants differ in their offset basis so h1 and h2 are
   independent enough for double hashing. *)
let fnv_prime = 0x100000001b3

let fnv ~basis s =
  let h = ref basis in
  for i = 0 to String.length s - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * fnv_prime
  done;
  !h land max_int

let h1 s = fnv ~basis:0x4bf29ce484222325 s
let h2 s = fnv ~basis:0x6c62272e07bb0142 s

let create ?(bits_per_key = 10) ~expected () =
  let bits_per_key = max 1 bits_per_key in
  let expected = max 1 expected in
  let nbits = max 64 (expected * bits_per_key) in
  (* k = bpk * ln 2, rounded, at least one probe. *)
  let k = max 1 (int_of_float (Float.round (float_of_int bits_per_key *. 0.6931471805599453))) in
  { bits = Bytes.make ((nbits + 7) / 8) '\000'; nbits; k }

let set_bit b i =
  let byte = i lsr 3 and mask = 1 lsl (i land 7) in
  Bytes.unsafe_set b byte
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b byte) lor mask))

let get_bit b i =
  Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t key =
  let a = h1 key and b = h2 key in
  (* Force h2 odd so the probe sequence cycles through distinct residues
     even when [nbits] is a power of two. *)
  let b = b lor 1 in
  for i = 0 to t.k - 1 do
    set_bit t.bits ((a + (i * b)) land max_int mod t.nbits)
  done

let mem t key =
  let a = h1 key and b = h2 key in
  let b = b lor 1 in
  let rec go i =
    i >= t.k
    || (get_bit t.bits ((a + (i * b)) land max_int mod t.nbits) && go (i + 1))
  in
  go 0

let add_all t keys = List.iter (add t) keys

let of_keys ?bits_per_key keys =
  let t = create ?bits_per_key ~expected:(List.length keys) () in
  add_all t keys;
  t

let copy t = { t with bits = Bytes.copy t.bits }
let bits t = t.nbits
let probes t = t.k
let memory_bytes t = Bytes.length t.bits

let fill_ratio t =
  let set = ref 0 in
  for i = 0 to t.nbits - 1 do
    if get_bit t.bits i then incr set
  done;
  float_of_int !set /. float_of_int t.nbits
