module Hash = Siri_crypto.Hash
module Telemetry = Siri_telemetry.Telemetry

type repr = ..

module Cache = Lru_cache.Make (struct
  type t = Hash.t

  let equal = Hash.equal
  let hash = Hash.hash
end)

type t = {
  cache : repr Cache.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evicted_seen : int Atomic.t;  (* evictions already mirrored to the sink *)
  mutable sink : Telemetry.sink;
}

let default_budget = 64 * 1024 * 1024

let budget_from_env () =
  match Option.bind (Sys.getenv_opt "SIRI_NODE_CACHE") int_of_string_opt with
  | Some b -> Some (max 0 b)
  | None -> None

let create ?budget () =
  let budget =
    match budget with
    | Some b -> max 0 b
    | None -> ( match budget_from_env () with Some b -> b | None -> 0)
  in
  { cache = Cache.create ~budget;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evicted_seen = Atomic.make 0;
    sink = Telemetry.null }

let enabled t = Cache.budget t.cache > 0
let budget t = Cache.budget t.cache
let size t = Cache.size t.cache
let cost t = Cache.cost t.cache
let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
let evictions t = Cache.evictions t.cache
let set_sink t sink = t.sink <- sink

(* Evictions happen inside Lru_cache; surface the delta to the sink at the
   operation that caused them, keeping [cache.node.evict] exact.  The
   [evicted_seen] watermark advances even on the null sink, so a sink
   attached later sees only evictions that happen while attached — the
   same semantics as every other counter. *)
let flush_evictions t =
  let total = Cache.evictions t.cache in
  let seen = Atomic.get t.evicted_seen in
  if total > seen then begin
    Atomic.set t.evicted_seen total;
    Telemetry.incr t.sink ~by:(total - seen) "cache.node.evict"
  end

let find t h =
  match Cache.find t.cache h with
  | Some _ as r ->
      Atomic.incr t.hits;
      Telemetry.incr t.sink "cache.node.hit";
      r
  | None ->
      Atomic.incr t.misses;
      Telemetry.incr t.sink "cache.node.miss";
      None

let insert t h ~bytes repr =
  if Cache.budget t.cache > 0 then begin
    Cache.insert t.cache h ~cost:bytes repr;
    flush_evictions t
  end

let remove t h = ignore (Cache.remove t.cache h : bool)
let remove_many t hs = List.iter (remove t) hs
let clear t = Cache.clear t.cache

let resize t ~budget =
  Cache.resize t.cache ~budget;
  flush_evictions t
