let encode = Sha256.to_hex

let digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hex.decode: bad digit"

let decode s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Hex.decode: odd length";
  String.init (n / 2) (fun i ->
      Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))

let is_hex s =
  String.length s mod 2 = 0
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
       s
