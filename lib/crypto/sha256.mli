(** Pure-OCaml SHA-256 (FIPS 180-4).

    Implemented from scratch because no cryptographic package is available in
    the build environment.  Verified against the NIST short-message test
    vectors in the test suite. *)

type ctx
(** Streaming hash context (mutable). *)

val init : unit -> ctx
(** Fresh context. *)

val feed_bytes : ctx -> ?off:int -> ?len:int -> bytes -> unit
(** Absorb [len] bytes of [b] starting at [off] (defaults: whole buffer). *)

val feed_string : ctx -> ?off:int -> ?len:int -> string -> unit
(** Same as {!feed_bytes} for strings. *)

val finalize : ctx -> string
(** Pad, finish and return the 32-byte digest.  The context must be
    {!reset} before any further use. *)

val reset : ctx -> unit
(** Return the context to its initial state, reusing its internal block,
    schedule and pad buffers — the allocation-free way to start a new
    digest. *)

val digest_string : string -> string
(** One-shot digest of a string: [digest_string s] is the 32-byte SHA-256
    of [s].  One-shot digests run on a per-domain scratch context, so
    they allocate only the result and are safe to call concurrently from
    different domains. *)

val digest_bytes : bytes -> string
(** One-shot digest of a byte buffer. *)

val digest_substring : string -> off:int -> len:int -> string
(** [digest_substring s ~off ~len] is
    [digest_string (String.sub s off len)] without the copy. *)

val digest_concat : string -> string -> string
(** [digest_concat a b] is [digest_string (a ^ b)] without materializing
    the concatenation. *)

val digest_concat_sub : string -> string -> off:int -> len:int -> string
(** [digest_concat_sub a b ~off ~len] is
    [digest_concat a (String.sub b off len)] without the copy — the WAL
    frame checksum hashed in place. *)

val to_hex : string -> string
(** Lowercase hex rendering of a raw digest (or any string). *)
