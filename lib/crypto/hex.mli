(** Hexadecimal encoding of arbitrary strings. *)

val encode : string -> string
(** Lowercase hex, two chars per input byte. *)

val decode : string -> string
(** Inverse of {!encode}.  Raises [Invalid_argument] on odd length or
    non-hex characters. *)

val is_hex : string -> bool
(** True iff the string is valid (even-length, hex-digit-only) input for
    {!decode}. *)
