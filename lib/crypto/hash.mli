(** Cryptographic hash values (32-byte SHA-256 digests).

    A [Hash.t] identifies an immutable node in the content-addressed store:
    two nodes share storage iff their hashes are equal.  The representation is
    the raw 32-byte digest string. *)

type t
(** A 32-byte digest. *)

val size : int
(** Digest size in bytes (32). *)

val of_string : string -> t
(** Hash of arbitrary data: [of_string s] = SHA-256(s). *)

val of_bytes : bytes -> t
(** Same as {!of_string} for byte buffers. *)

val of_substring : string -> off:int -> len:int -> t
(** [of_substring s ~off ~len] = [of_string (String.sub s off len)]
    without copying the slice first. *)

val of_concat : string -> string -> t
(** [of_concat a b] = [of_string (a ^ b)] without materializing the
    concatenation. *)

val of_concat_sub : string -> string -> off:int -> len:int -> t
(** [of_concat_sub a b ~off ~len] = [of_concat a (String.sub b off len)]
    without copying the slice. *)

val of_string_quiet : string -> t
(** {!of_string} without notifying the digest observer.  Used by the
    parallel commit pipeline: worker domains hash quietly and the
    coordinator replays the notifications via {!note_digest}, keeping
    metering single-domain and deterministic. *)

val set_digest_observer : (int -> unit) option -> unit
(** Install a callback invoked with the input length in bytes on every
    digest computation ({!of_string} / {!of_bytes}).  At most one observer
    is active at a time; [None] detaches.  The slot is an [Atomic], so
    installing from one domain while others hash is well-defined.  This
    is the metering point the telemetry layer uses to count hash
    invocations and hashed bytes — adopting a pre-computed digest
    ({!of_raw}) is not counted. *)

val note_digest : int -> unit
(** Notify the observer (if any) of a digest over [len] bytes — the replay
    half of {!of_string_quiet}. *)

val of_raw : string -> t
(** Adopt a pre-computed 32-byte digest.  Raises [Invalid_argument] if the
    length is not {!size}. *)

val to_raw : t -> string
(** The raw 32-byte digest. *)

val to_hex : t -> string
(** 64-char lowercase hex rendering. *)

val of_hex : string -> t
(** Inverse of {!to_hex}.  Raises [Invalid_argument] on malformed input. *)

val short : t -> string
(** First 8 hex chars — for logs and error messages. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** A cheap hash for [Hashtbl]: folds the first bytes of the digest. *)

val byte : t -> int -> int
(** [byte h i] is the [i]-th byte of the digest as an integer. *)

val null : t
(** The all-zero digest, used as a sentinel for "no child". *)

val is_null : t -> bool

val pp : Format.formatter -> t -> unit
(** Prints {!short}. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Table : Hashtbl.S with type key = t
