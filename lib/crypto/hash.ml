type t = string

let size = 32

(* Digest observer: the telemetry layer hooks every hash invocation here to
   meter the "hash path" (state-root computation dominates real systems).
   Held in an [Atomic] so installing or clearing the observer from one
   domain is well-defined while others are hashing; one atomic load when
   detached — negligible on the hot path. *)
let digest_observer : (int -> unit) option Atomic.t = Atomic.make None
let set_digest_observer f = Atomic.set digest_observer f

let note_digest len =
  match Atomic.get digest_observer with Some f -> f len | None -> ()

let of_string s =
  note_digest (String.length s);
  Sha256.digest_string s

let of_string_quiet s = Sha256.digest_string s

let of_substring s ~off ~len =
  note_digest len;
  Sha256.digest_substring s ~off ~len

let of_concat a b =
  note_digest (String.length a + String.length b);
  Sha256.digest_concat a b

let of_concat_sub a b ~off ~len =
  note_digest (String.length a + len);
  Sha256.digest_concat_sub a b ~off ~len

let of_bytes b =
  note_digest (Bytes.length b);
  Sha256.digest_bytes b

let of_raw s =
  if String.length s <> size then
    invalid_arg
      (Printf.sprintf "Hash.of_raw: expected %d bytes, got %d" size
         (String.length s));
  s

let to_raw t = t
let to_hex t = Sha256.to_hex t

let of_hex s =
  if String.length s <> 2 * size then invalid_arg "Hash.of_hex: bad length";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Hash.of_hex: bad digit"
  in
  String.init size (fun i ->
      Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))

let short t = String.sub (to_hex t) 0 8
let equal = String.equal
let compare = String.compare

(* The digest is already uniform, so folding the first word is enough. *)
let hash t =
  Char.code t.[0]
  lor (Char.code t.[1] lsl 8)
  lor (Char.code t.[2] lsl 16)
  lor (Char.code t.[3] lsl 24)
  land max_int

let byte t i = Char.code t.[i]
let null = String.make size '\000'
let is_null t = equal t null
let pp fmt t = Format.pp_print_string fmt (short t)

module Set = Set.Make (String)
module Map = Map.Make (String)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
