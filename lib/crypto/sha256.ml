(* SHA-256, FIPS 180-4.  Straightforward 32-bit implementation on Int32 with
   a 64-byte streaming buffer.  Hot path is [process_block]; everything is
   written with explicit Int32 operations so the compiler can unbox. *)

let k =
  [| 0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl;
     0x59f111f1l; 0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l;
     0x243185bel; 0x550c7dc3l; 0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l;
     0xc19bf174l; 0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl;
     0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal; 0x983e5152l;
     0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
     0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl;
     0x53380d13l; 0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l;
     0xa2bfe8a1l; 0xa81a664bl; 0xc24b8b70l; 0xc76c51a3l; 0xd192e819l;
     0xd6990624l; 0xf40e3585l; 0x106aa070l; 0x19a4c116l; 0x1e376c08l;
     0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl;
     0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
     0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l |]

type ctx = {
  h : int32 array;            (* 8 chaining words *)
  buf : Bytes.t;              (* 64-byte block buffer *)
  w : int32 array;            (* 64-word message schedule, reused *)
  pad : Bytes.t;              (* 72-byte finalization pad, reused *)
  mutable buf_len : int;
  mutable total : int64;      (* total bytes absorbed *)
}

let iv =
  [| 0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al; 0x510e527fl;
     0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l |]

let init () =
  { h = Array.copy iv;
    buf = Bytes.create 64;
    w = Array.make 64 0l;
    pad = Bytes.create 72;
    buf_len = 0;
    total = 0L }

let reset ctx =
  Array.blit iv 0 ctx.h 0 8;
  ctx.buf_len <- 0;
  ctx.total <- 0L

let ( &&& ) = Int32.logand
let ( ||| ) = Int32.logor
let ( ^^^ ) = Int32.logxor
let ( +%% ) = Int32.add

let rotr x n = Int32.shift_right_logical x n ||| Int32.shift_left x (32 - n)

(* Process the 64 bytes at [off] in [b]. *)
let process_block ctx b off =
  let w = ctx.w in
  for i = 0 to 15 do
    let j = off + (i * 4) in
    let b0 = Int32.of_int (Char.code (Bytes.unsafe_get b j)) in
    let b1 = Int32.of_int (Char.code (Bytes.unsafe_get b (j + 1))) in
    let b2 = Int32.of_int (Char.code (Bytes.unsafe_get b (j + 2))) in
    let b3 = Int32.of_int (Char.code (Bytes.unsafe_get b (j + 3))) in
    w.(i) <-
      Int32.shift_left b0 24 ||| Int32.shift_left b1 16
      ||| Int32.shift_left b2 8 ||| b3
  done;
  for i = 16 to 63 do
    let w15 = w.(i - 15) and w2 = w.(i - 2) in
    let s0 = rotr w15 7 ^^^ rotr w15 18 ^^^ Int32.shift_right_logical w15 3 in
    let s1 = rotr w2 17 ^^^ rotr w2 19 ^^^ Int32.shift_right_logical w2 10 in
    w.(i) <- w.(i - 16) +%% s0 +%% w.(i - 7) +%% s1
  done;
  let h = ctx.h in
  let a = ref h.(0) and b' = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 ^^^ rotr !e 11 ^^^ rotr !e 25 in
    let ch = (!e &&& !f) ^^^ (Int32.lognot !e &&& !g) in
    let t1 = !hh +%% s1 +%% ch +%% k.(i) +%% w.(i) in
    let s0 = rotr !a 2 ^^^ rotr !a 13 ^^^ rotr !a 22 in
    let maj = (!a &&& !b') ^^^ (!a &&& !c) ^^^ (!b' &&& !c) in
    let t2 = s0 +%% maj in
    hh := !g;
    g := !f;
    f := !e;
    e := !d +%% t1;
    d := !c;
    c := !b';
    b' := !a;
    a := t1 +%% t2
  done;
  h.(0) <- h.(0) +%% !a;
  h.(1) <- h.(1) +%% !b';
  h.(2) <- h.(2) +%% !c;
  h.(3) <- h.(3) +%% !d;
  h.(4) <- h.(4) +%% !e;
  h.(5) <- h.(5) +%% !f;
  h.(6) <- h.(6) +%% !g;
  h.(7) <- h.(7) +%% !hh

let feed_bytes ctx ?(off = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Sha256.feed_bytes";
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let pos = ref off and remaining = ref len in
  (* Top up a partially filled buffer first. *)
  if ctx.buf_len > 0 then begin
    let take = min !remaining (64 - ctx.buf_len) in
    Bytes.blit b !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.buf_len = 64 then begin
      process_block ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= 64 do
    process_block ctx b !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit b !pos ctx.buf 0 !remaining;
    ctx.buf_len <- !remaining
  end

let feed_string ctx ?(off = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - off in
  feed_bytes ctx ~off ~len (Bytes.unsafe_of_string s)

let finalize ctx =
  let bit_len = Int64.mul ctx.total 8L in
  (* Append 0x80, pad with zeros to 56 mod 64, then the 64-bit length. *)
  let pad_len =
    let r = (ctx.buf_len + 1 + 8) mod 64 in
    if r = 0 then 1 else 1 + (64 - r)
  in
  (* pad_len + 8 <= 72, so the preallocated pad always fits. *)
  let tail = ctx.pad in
  Bytes.fill tail 0 (pad_len + 8) '\000';
  Bytes.set tail 0 '\x80';
  for i = 0 to 7 do
    let shift = (7 - i) * 8 in
    Bytes.set tail (pad_len + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bit_len shift) 0xFFL)))
  done;
  (* Bypass the total counter: feed_bytes would keep counting. *)
  let saved = ctx.total in
  feed_bytes ctx tail ~len:(pad_len + 8);
  ctx.total <- saved;
  assert (ctx.buf_len = 0);
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    Bytes.set out (i * 4)
      (Char.chr (Int32.to_int (Int32.shift_right_logical v 24) land 0xFF));
    Bytes.set out ((i * 4) + 1)
      (Char.chr (Int32.to_int (Int32.shift_right_logical v 16) land 0xFF));
    Bytes.set out ((i * 4) + 2)
      (Char.chr (Int32.to_int (Int32.shift_right_logical v 8) land 0xFF));
    Bytes.set out ((i * 4) + 3) (Char.chr (Int32.to_int v land 0xFF))
  done;
  Bytes.unsafe_to_string out

(* One-shot digests reuse a per-domain scratch context: no allocation of
   the chaining state, schedule or pad on the hot path, and no sharing
   between domains, so workers in a pool can hash concurrently.

   The context is held in a checkout slot, not used in place: systhreads
   within one domain share DLS state and can be preempted mid-digest (the
   compression loop allocates), so two threads hashing concurrently on a
   bare shared context interleave resets and feeds — a digest of neither
   input.  [Atomic.exchange] hands the context to exactly one thread; a
   thread that finds the slot empty pays one fresh allocation instead of
   sharing.  The single-threaded hot path stays allocation-free. *)
let scratch : ctx option Atomic.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Atomic.make (Some (init ())))

let with_scratch f =
  let slot = Domain.DLS.get scratch in
  let ctx =
    match Atomic.exchange slot None with
    | Some ctx -> reset ctx; ctx
    | None -> init ()
  in
  let r = f ctx in
  Atomic.set slot (Some ctx);
  r

let digest_string s =
  with_scratch (fun ctx ->
      feed_string ctx s;
      finalize ctx)

let digest_bytes b =
  with_scratch (fun ctx ->
      feed_bytes ctx b;
      finalize ctx)

let digest_substring s ~off ~len =
  with_scratch (fun ctx ->
      feed_string ctx ~off ~len s;
      finalize ctx)

let digest_concat a b =
  with_scratch (fun ctx ->
      feed_string ctx a;
      feed_string ctx b;
      finalize ctx)

let digest_concat_sub a b ~off ~len =
  with_scratch (fun ctx ->
      feed_string ctx a;
      feed_string ctx b ~off ~len;
      finalize ctx)

let hex_alphabet = "0123456789abcdef"

let to_hex s =
  let n = String.length s in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code s.[i] in
    Bytes.set out (2 * i) hex_alphabet.[c lsr 4];
    Bytes.set out ((2 * i) + 1) hex_alphabet.[c land 0xF]
  done;
  Bytes.unsafe_to_string out
