open Siri_crypto
open Siri_core
module Store = Siri_store.Store
module Wire = Siri_codec.Wire
module Telemetry = Siri_telemetry.Telemetry

type config = { leaf_capacity : int; internal_capacity : int }

let config ?(leaf_capacity = 4) ?(internal_capacity = 25) () =
  if leaf_capacity < 2 || internal_capacity < 2 then
    invalid_arg "Mvbt.config: capacities must be >= 2";
  { leaf_capacity; internal_capacity }

type t = { store : Store.t; cfg : config; root : Hash.t }

let empty store cfg = { store; cfg; root = Hash.null }
let of_root store cfg root = { store; cfg; root }
let root t = t.root
let store t = t.store
let conf t = t.cfg

(* --- codec (same layout as POS-Tree nodes, without the salt) -------------- *)

let tag_leaf = 0
let tag_internal = 1

type node =
  | Leaf of (Kv.key * Kv.value) array
  | Internal of int * (Kv.key * Hash.t) array

let encode node =
  let w = Wire.Writer.create ~capacity:1024 () in
  (match node with
  | Leaf entries ->
      Wire.Writer.u8 w tag_leaf;
      Wire.Writer.varint w (Array.length entries);
      Array.iter
        (fun (k, v) ->
          Wire.Writer.str w k;
          Wire.Writer.str w v)
        entries
  | Internal (level, refs) ->
      Wire.Writer.u8 w tag_internal;
      Wire.Writer.u8 w level;
      Wire.Writer.varint w (Array.length refs);
      Array.iter
        (fun (k, h) ->
          Wire.Writer.str w k;
          Wire.Writer.hash w h)
        refs);
  Wire.Writer.contents w

let decode bytes =
  let r = Wire.Reader.of_string bytes in
  if Wire.Reader.u8 r = tag_leaf then
    Leaf
      (Array.init (Wire.Reader.varint r) (fun _ ->
           let k = Wire.Reader.str r in
           let v = Wire.Reader.str r in
           (k, v)))
  else begin
    let level = Wire.Reader.u8 r in
    Internal
      ( level,
        Array.init (Wire.Reader.varint r) (fun _ ->
            let k = Wire.Reader.str r in
            let h = Wire.Reader.hash r in
            (k, h)) )
  end

let put store node =
  let children =
    match node with
    | Leaf _ -> []
    | Internal (_, refs) -> Array.to_list (Array.map snd refs)
  in
  Store.put store ~children (encode node)

type Siri_readpath.Node_cache.repr += Cached of node

(* Read through the store's decoded-node cache.  Decoded arrays are never
   mutated ([entry_insert]/[array_replace] copy before writing), so a
   shared decoding is safe. *)
let get store h =
  let cache = Store.cache store in
  if not (Siri_readpath.Node_cache.enabled cache) then
    decode (Store.get store h)
  else
    match Siri_readpath.Node_cache.find cache h with
    | Some (Cached node) -> node
    | _ ->
        let bytes = Store.get store h in
        let node = decode bytes in
        Siri_readpath.Node_cache.insert cache h ~bytes:(String.length bytes)
          (Cached node);
        node

let max_key = function
  | Leaf entries -> fst entries.(Array.length entries - 1)
  | Internal (_, refs) -> fst refs.(Array.length refs - 1)

(* --- search helpers -------------------------------------------------------- *)

let child_for refs key =
  let n = Array.length refs in
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if String.compare (fst refs.(mid)) key < 0 then bsearch (mid + 1) hi
      else bsearch lo mid
  in
  bsearch 0 n (* may be n, meaning "beyond the last split key" *)

let find_entry entries key =
  let n = Array.length entries in
  let rec bsearch lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let k, v = entries.(mid) in
      match String.compare key k with
      | 0 -> Some v
      | c when c < 0 -> bsearch lo mid
      | _ -> bsearch (mid + 1) hi
  in
  bsearch 0 n

let lookup_count t key =
  let rec go h visited =
    match get t.store h with
    | Leaf entries -> (find_entry entries key, visited + 1)
    | Internal (_, refs) ->
        let i = child_for refs key in
        if i = Array.length refs then (None, visited + 1)
        else go (snd refs.(i)) (visited + 1)
  in
  if Hash.is_null t.root then (None, 0) else go t.root 0

let lookup t key = fst (lookup_count t key)
let path_length t key = snd (lookup_count t key)

(* Batched point lookups: one walk for the distinct sorted keys,
   partitioning the alive slice at each internal node's split keys so
   shared prefix nodes are decoded once per batch. *)
(* The walk itself, parameterized by node fetch so the same traversal
   serves lookups (cache-aware [get]), proving ([Multiproof.recorder]) and
   verifying ([Multiproof.consumer]). *)
let walk_many ~fetch root arr found =
    let rec go h lo hi =
      match fetch h with
      | Leaf entries ->
          for i = lo to hi - 1 do
            match find_entry entries arr.(i) with
            | Some v -> Hashtbl.replace found arr.(i) v
            | None -> ()
          done
      | Internal (_, refs) ->
          let n = Array.length refs in
          let i = ref lo in
          while !i < hi do
            let c = child_for refs arr.(!i) in
            if c = n then
              (* Beyond the last split key; so is every later key: this
                 node witnesses their absence. *)
              i := hi
            else begin
              let split = fst refs.(c) in
              let j = ref (!i + 1) in
              while !j < hi && String.compare arr.(!j) split <= 0 do
                incr j
              done;
              go (snd refs.(c)) !i !j;
              i := !j
            end
          done
    in
    go root 0 (Array.length arr)

let get_many t keys =
  if keys = [] then []
  else begin
    let found = Hashtbl.create (List.length keys) in
    let arr = Array.of_list (List.sort_uniq String.compare keys) in
    if not (Hash.is_null t.root) then
      walk_many ~fetch:(get t.store) t.root arr found;
    List.map (fun k -> (k, Hashtbl.find_opt found k)) keys
  end

let height t =
  if Hash.is_null t.root then 0
  else
    match get t.store t.root with
    | Leaf _ -> 1
    | Internal (lvl, _) -> lvl + 1

(* --- insert ------------------------------------------------------------------ *)

(* Insert into a sorted entry array. *)
let entry_insert entries key value =
  let n = Array.length entries in
  let pos = ref n in
  (try
     for i = 0 to n - 1 do
       let c = String.compare key (fst entries.(i)) in
       if c = 0 then begin
         pos := -i - 1;
         raise Exit
       end
       else if c < 0 then begin
         pos := i;
         raise Exit
       end
     done
   with Exit -> ());
  if !pos < 0 then begin
    let entries = Array.copy entries in
    entries.(- !pos - 1) <- (key, value);
    entries
  end
  else begin
    let out = Array.make (n + 1) (key, value) in
    Array.blit entries 0 out 0 !pos;
    Array.blit entries !pos out (!pos + 1) (n - !pos);
    out
  end

let array_replace arr i x =
  let arr = Array.copy arr in
  arr.(i) <- x;
  arr

(* Replace slot [i] of [refs] by one or two refs. *)
let splice refs i replacement =
  match replacement with
  | [ r ] -> array_replace refs i r
  | [ r1; r2 ] ->
      let n = Array.length refs in
      let out = Array.make (n + 1) r1 in
      Array.blit refs 0 out 0 i;
      out.(i) <- r1;
      out.(i + 1) <- r2;
      Array.blit refs (i + 1) out (i + 2) (n - i - 1);
      out
  | _ -> assert false

let split_if_needed store cap mk arr =
  let n = Array.length arr in
  if n <= cap then
    let node = mk arr in
    [ (max_key node, put store node) ]
  else begin
    let mid = n / 2 in
    let left = mk (Array.sub arr 0 mid) in
    let right = mk (Array.sub arr mid (n - mid)) in
    [ (max_key left, put store left); (max_key right, put store right) ]
  end

(* Returns 1 or 2 replacement refs for the subtree rooted at [h]. *)
let rec ins store cfg h key value =
  match get store h with
  | Leaf entries ->
      let entries = entry_insert entries key value in
      split_if_needed store cfg.leaf_capacity (fun a -> Leaf a) entries
  | Internal (lvl, refs) ->
      let i = min (child_for refs key) (Array.length refs - 1) in
      let replacement = ins store cfg (snd refs.(i)) key value in
      let refs = splice refs i replacement in
      split_if_needed store cfg.internal_capacity
        (fun a -> Internal (lvl, a))
        refs

let insert t key value =
  if Hash.is_null t.root then
    { t with root = put t.store (Leaf [| (key, value) |]) }
  else
    match ins t.store t.cfg t.root key value with
    | [ (_, h) ] -> { t with root = h }
    | two ->
        let lvl =
          match get t.store (snd (List.hd two)) with
          | Leaf _ -> 1
          | Internal (l, _) -> l + 1
        in
        { t with root = put t.store (Internal (lvl, Array.of_list two)) }

(* --- remove ------------------------------------------------------------------- *)

let entry_remove entries key =
  let n = Array.length entries in
  match Array.find_index (fun (k, _) -> String.equal k key) entries with
  | None -> None
  | Some i ->
      let out = Array.make (n - 1) ("", "") in
      Array.blit entries 0 out 0 i;
      Array.blit entries (i + 1) out i (n - 1 - i);
      Some out

(* Returns the replacement ref, or None if the subtree became empty, or
   raises Not_found if the key is absent (no copy needed). *)
let rec del store h key =
  match get store h with
  | Leaf entries -> (
      match entry_remove entries key with
      | None -> raise Not_found
      | Some [||] -> None
      | Some entries ->
          let node = Leaf entries in
          Some (max_key node, put store node))
  | Internal (lvl, refs) -> (
      let i = child_for refs key in
      if i >= Array.length refs then raise Not_found
      else
        match del store (snd refs.(i)) key with
        | Some r ->
            let refs = array_replace refs i r in
            let node = Internal (lvl, refs) in
            Some (max_key node, put store node)
        | None ->
            let n = Array.length refs in
            if n = 1 then None
            else begin
              let refs' = Array.make (n - 1) refs.(0) in
              Array.blit refs 0 refs' 0 i;
              Array.blit refs (i + 1) refs' i (n - 1 - i);
              let node = Internal (lvl, refs') in
              Some (max_key node, put store node)
            end)

(* Drop single-child internal chains at the root after deletions. *)
let rec collapse store h =
  match get store h with
  | Internal (_, [| (_, only) |]) -> collapse store only
  | _ -> h

let remove t key =
  if Hash.is_null t.root then t
  else
    match del t.store t.root key with
    | exception Not_found -> t
    | None -> { t with root = Hash.null }
    | Some (_, h) -> { t with root = collapse t.store h }

let batch t ops =
  List.fold_left
    (fun t op ->
      match op with
      | Kv.Put (k, v) -> insert t k v
      | Kv.Del k -> remove t k)
    t ops

let of_entries store cfg entries =
  batch (empty store cfg) (List.map (fun (k, v) -> Kv.Put (k, v)) entries)

(* --- parallel bulk load ----------------------------------------------------- *)

module Pool = Siri_parallel.Pool

(* Split [n] items into ceil(n/cap) parts whose sizes differ by at most
   one.  This is the canonical bulk shape: it depends only on [n] and
   [cap], never on how work is distributed over domains. *)
let balanced_segments n cap =
  let parts = (n + cap - 1) / cap in
  let base = n / parts and extra = n mod parts in
  Array.init parts (fun i ->
      ((i * base) + min i extra, base + if i < extra then 1 else 0))

let of_sorted ?pool store cfg entries =
  let entries =
    Kv.apply_sorted []
      (Kv.sort_ops (List.map (fun (k, v) -> Kv.Put (k, v)) entries))
  in
  match entries with
  | [] -> empty store cfg
  | _ ->
      let pool = match pool with Some p -> p | None -> Pool.sequential in
      let sink = Store.sink store in
      (* Same worker/coordinator split as the SIRI indexes: quiet
         encode+hash on the pool, observer replay + batched install in
         segment order on the coordinator. *)
      let par_stage segs stage_of =
        let staged =
          Telemetry.with_span sink "commit.parallel" (fun () ->
              Pool.map pool stage_of segs)
        in
        let as_list = Array.to_list (Array.map snd staged) in
        Store.note_staged as_list;
        Store.put_staged store as_list;
        if Telemetry.enabled sink then begin
          Telemetry.incr sink "parallel.maps";
          Telemetry.incr sink ~by:(Array.length segs) "parallel.tasks";
          Telemetry.incr sink ~by:(Array.length segs) "parallel.nodes"
        end;
        Array.map (fun (k, s) -> (k, s.Store.digest)) staged
      in
      let arr = Array.of_list entries in
      let leaves =
        par_stage (balanced_segments (Array.length arr) cfg.leaf_capacity)
          (fun (lo, len) ->
            let node = Leaf (Array.sub arr lo len) in
            (max_key node, Store.stage_quiet (encode node)))
      in
      let rec build lvl refs =
        if Array.length refs = 1 then snd refs.(0)
        else
          let nodes =
            par_stage
              (balanced_segments (Array.length refs) cfg.internal_capacity)
              (fun (lo, len) ->
                let slice = Array.sub refs lo len in
                let node = Internal (lvl, slice) in
                ( max_key node,
                  Store.stage_quiet
                    ~children:(Array.to_list (Array.map snd slice))
                    (encode node) ))
          in
          build (lvl + 1) nodes
      in
      { store; cfg; root = build 1 leaves }

let insert_many ?pool t entries =
  if Hash.is_null t.root then of_sorted ?pool t.store t.cfg entries
  else batch t (List.map (fun (k, v) -> Kv.Put (k, v)) entries)

(* --- traversal ------------------------------------------------------------------ *)

let iter t f =
  let rec go h =
    match get t.store h with
    | Leaf entries -> Array.iter (fun (k, v) -> f k v) entries
    | Internal (_, refs) -> Array.iter (fun (_, c) -> go c) refs
  in
  if not (Hash.is_null t.root) then go t.root

let to_list t =
  let acc = ref [] in
  iter t (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

let cardinal t =
  let n = ref 0 in
  iter t (fun _ _ -> incr n);
  !n

(* --- range queries ------------------------------------------------------------ *)

let in_range ~lo ~hi k =
  (match lo with None -> true | Some l -> String.compare k l >= 0)
  && match hi with None -> true | Some h -> String.compare k h <= 0

let range t ~lo ~hi =
  let acc = ref [] in
  let rec walk h =
    match get t.store h with
    | Leaf entries ->
        Array.iter
          (fun (k, v) -> if in_range ~lo ~hi k then acc := (k, v) :: !acc)
          entries
    | Internal (_, refs) ->
        let prev = ref None in
        Array.iter
          (fun (split, child) ->
            let hit =
              (match lo with None -> true | Some l -> String.compare split l >= 0)
              && (match (hi, !prev) with
                 | None, _ | _, None -> true
                 | Some h, Some p -> String.compare p h < 0)
            in
            if hit then walk child;
            prev := Some split)
          refs
  in
  if not (Hash.is_null t.root) then walk t.root;
  List.rev !acc

(* --- streaming scan --------------------------------------------------------

   Lazy version-visible leaf walk over the half-open interval [lo, hi):
   this version's root only reaches the leaves live at it (copy-on-write
   path copies), so walking the tree *is* the visibility check.  Same
   split-key child-hit predicate as [range], demand-driven; the first key
   at or past [hi] ends the stream. *)
let scan t ~lo ~hi =
  let below_lo k =
    match lo with None -> false | Some l -> String.compare k l < 0
  in
  let at_or_above_hi k =
    match hi with None -> false | Some h -> String.compare k h >= 0
  in
  let rec step stack () =
    match stack with
    | [] -> Seq.Nil
    | `Leaf (entries, i) :: rest ->
        if i >= Array.length entries then step rest ()
        else
          let k, v = entries.(i) in
          if at_or_above_hi k then Seq.Nil
          else if below_lo k then step (`Leaf (entries, i + 1) :: rest) ()
          else Seq.Cons ((k, v), step (`Leaf (entries, i + 1) :: rest))
    | `Node h :: rest -> (
        match get t.store h with
        | Leaf entries -> step (`Leaf (entries, 0) :: rest) ()
        | Internal (_, refs) ->
            let frames = ref rest in
            for i = Array.length refs - 1 downto 0 do
              let split, child = refs.(i) in
              let prev = if i = 0 then None else Some (fst refs.(i - 1)) in
              let hit =
                (match lo with
                | None -> true
                | Some l -> String.compare split l >= 0)
                && match (hi, prev) with
                   | None, _ | _, None -> true
                   | Some h, Some p -> String.compare p h < 0
              in
              if hit then frames := `Node child :: !frames
            done;
            step !frames ())
  in
  if Hash.is_null t.root then Seq.empty else step [ `Node t.root ]

(* --- diff / merge / proofs -------------------------------------------------------- *)

let td_decode_bytes bytes =
  match decode bytes with
  | Leaf entries -> Tree_diff.Entries (Array.to_list entries)
  | Internal (lvl, refs) -> Tree_diff.Children (lvl, Array.to_list refs)

let td_decode store h = td_decode_bytes (Store.get store h)

let stats t =
  Tree_stats.collect ~get:(Store.get t.store) ~decode:td_decode_bytes ~root:t.root

let prove_range t ~lo ~hi =
  Range_proof.prove ~get:(Store.get t.store) ~decode:td_decode_bytes
    ~root:t.root ~lo ~hi

let verify_range_proof ~root proof =
  Range_proof.verify ~decode:td_decode_bytes ~root proof

let diff t1 t2 =
  Tree_diff.diff ~decode:(td_decode t1.store) ~left:t1.root ~right:t2.root

let merge t1 t2 ~policy =
  let diffs = diff t1 t2 in
  let conflicts = ref [] in
  let ops =
    List.filter_map
      (fun { Kv.key; left; right } ->
        match (left, right) with
        | _, None -> None
        | None, Some rv -> Some (Kv.Put (key, rv))
        | Some lv, Some rv -> (
            match Kv.merge_values policy key lv rv with
            | Ok v -> if String.equal v lv then None else Some (Kv.Put (key, v))
            | Error c ->
                conflicts := c :: !conflicts;
                None))
      diffs
  in
  match !conflicts with
  | [] -> Ok (batch t1 ops)
  | cs -> Error (List.rev cs)

let prove t key =
  let rec go h acc =
    let bytes = Store.get t.store h in
    let acc = bytes :: acc in
    match decode bytes with
    | Leaf entries -> (find_entry entries key, acc)
    | Internal (_, refs) ->
        let i = child_for refs key in
        if i = Array.length refs then (None, acc) else go (snd refs.(i)) acc
  in
  if Hash.is_null t.root then { Proof.key; value = None; nodes = [] }
  else begin
    let value, rev_nodes = go t.root [] in
    { Proof.key; value; nodes = List.rev rev_nodes }
  end

let verify_proof ~root (proof : Proof.t) =
  let rec go expected nodes =
    match nodes with
    | [] -> Error ()
    | bytes :: rest ->
        if not (Hash.equal (Hash.of_string bytes) expected) then Error ()
        else begin
          match decode bytes with
          | exception _ -> Error ()
          | Leaf entries ->
              if rest = [] then Ok (find_entry entries proof.key) else Error ()
          | Internal (_, refs) ->
              let i = child_for refs proof.key in
              if i = Array.length refs then
                if rest = [] then Ok None else Error ()
              else go (snd refs.(i)) rest
        end
  in
  if Hash.is_null root then proof.nodes = [] && proof.value = None
  else
    match go root proof.nodes with
    | Ok v -> v = proof.value
    | Error () -> false

(* --- multiproofs ----------------------------------------------------------- *)

(* See the note in Mpt: the batched [walk_many] with recording/replaying
   fetches. *)

let prove_many t keys =
  let keys = List.sort_uniq String.compare keys in
  if keys = [] || Hash.is_null t.root then
    { Multiproof.claims = List.map (fun k -> (k, None)) keys; nodes = [] }
  else begin
    let fetch_bytes, recorded = Multiproof.recorder ~get:(Store.get t.store) in
    let found = Hashtbl.create (List.length keys) in
    walk_many
      ~fetch:(fun h -> decode (fetch_bytes h))
      t.root (Array.of_list keys) found;
    { Multiproof.claims = List.map (fun k -> (k, Hashtbl.find_opt found k)) keys;
      nodes = recorded () }
  end

let verify_many ~root (mp : Multiproof.t) =
  if not (Multiproof.well_formed mp) then false
  else if Hash.is_null root then
    mp.nodes = [] && List.for_all (fun (_, v) -> v = None) mp.claims
  else if mp.claims = [] then mp.nodes = []
  else begin
    let fetch_bytes, finished = Multiproof.consumer mp.nodes in
    let fetch h =
      match decode (fetch_bytes h) with
      | node -> node
      | exception Multiproof.Rejected -> raise Multiproof.Rejected
      | exception _ -> raise Multiproof.Rejected
    in
    let found = Hashtbl.create (List.length mp.claims) in
    match
      walk_many ~fetch root (Array.of_list (Multiproof.keys mp)) found
    with
    | () ->
        finished ()
        && List.for_all
             (fun (k, claimed) -> Hashtbl.find_opt found k = claimed)
             mp.claims
    | exception _ -> false
  end

(* Telemetry probes: see the note in Mpt.generic — observation only, no
   effect on hashing. *)
let probe t name f = Telemetry.probe (Store.sink t.store) name f

let rec generic ?pool t =
  { Generic.name = "mvmb+-tree";
    store = t.store;
    root = t.root;
    lookup = (fun k -> probe t "mvmb+-tree.lookup" (fun () -> lookup t k));
    get_many =
      (fun ks -> probe t "mvmb+-tree.get_many" (fun () -> get_many t ks));
    path_length = path_length t;
    batch =
      (fun ops ->
        generic ?pool (probe t "mvmb+-tree.batch" (fun () -> batch t ops)));
    bulk_load =
      (fun entries ->
        generic ?pool
          (probe t "mvmb+-tree.bulk_load" (fun () ->
               of_sorted ?pool t.store t.cfg entries)));
    to_list = (fun () -> to_list t);
    cardinal = (fun () -> cardinal t);
    diff =
      (fun other ->
        probe t "mvmb+-tree.diff" (fun () -> diff t { t with root = other }));
    merge =
      (fun policy other ->
        match merge t { t with root = other } ~policy with
        | Ok m -> Ok (generic ?pool m)
        | Error cs -> Error cs);
    prove = (fun k -> probe t "mvmb+-tree.prove" (fun () -> prove t k));
    verify = (fun ~root proof -> verify_proof ~root proof);
    prove_many =
      (fun ks -> probe t "mvmb+-tree.prove_many" (fun () -> prove_many t ks));
    verify_many = (fun ~root mp -> verify_many ~root mp);
    reopen = (fun r -> generic ?pool { t with root = r });
    range = (fun ~lo ~hi -> range t ~lo ~hi);
    scan = (fun ~lo ~hi -> scan t ~lo ~hi) }
