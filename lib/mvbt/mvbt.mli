(** Multi-Version Merkle B+-Tree — the non-SIRI baseline of Section 5.2.

    A B+-tree whose child pointers are the cryptographic hashes of the child
    nodes, with node-level copy-on-write: every update copies the root-to-
    leaf path, so versions share all untouched nodes and the root digest
    authenticates the content (tamper evidence like the SIRI structures).

    What it deliberately lacks is structural invariance: split points depend
    on insertion order (Figure 2), so equal record sets can yield different
    trees and fewer pages deduplicate across independently-built instances.
    Deletions do not rebalance (a node may underflow and an empty node is
    simply dropped), which keeps the baseline faithful to a plain
    copy-on-write B+-tree. *)

open Siri_crypto
open Siri_core
module Store = Siri_store.Store

type config = { leaf_capacity : int; internal_capacity : int }

val config : ?leaf_capacity:int -> ?internal_capacity:int -> unit -> config
(** Defaults sized so nodes are ≈ 1 KB with the paper's record sizes:
    [leaf_capacity = 4] entries of ≈ 271 B, [internal_capacity = 25]. *)

type t

val empty : Store.t -> config -> t
val of_root : Store.t -> config -> Hash.t -> t
val root : t -> Hash.t
val store : t -> Store.t
val conf : t -> config
val height : t -> int

val lookup : t -> Kv.key -> Kv.value option

val get_many : t -> Kv.key list -> (Kv.key * Kv.value option) list
(** Batched point lookups in one walk: distinct keys are sorted and
    partitioned at each internal node's split keys, so sibling keys share
    every decoded prefix node.  One result pair per input key, in input
    order; equivalent to [List.map (fun k -> (k, lookup t k))]. *)

val path_length : t -> Kv.key -> int
val insert : t -> Kv.key -> Kv.value -> t
val remove : t -> Kv.key -> t
val batch : t -> Kv.op list -> t
val of_entries : Store.t -> config -> (Kv.key * Kv.value) list -> t

val of_sorted : ?pool:Siri_parallel.Pool.t -> Store.t -> config -> (Kv.key * Kv.value) list -> t
(** Bulk-load by canonical bottom-up packing: entries are split into
    balanced nodes of at most [leaf_capacity] (resp. [internal_capacity])
    whose sizes differ by at most one; encoding and hashing fan out over
    [pool] (default: sequential).  The root is byte-identical for any
    domain count, but — the B+-tree not being structurally invariant —
    it generally differs from the insertion-order-dependent root that
    {!of_entries} produces for the same records.  Duplicate keys: last
    wins. *)

val insert_many : ?pool:Siri_parallel.Pool.t -> t -> (Kv.key * Kv.value) list -> t
(** {!of_sorted} when the tree is empty, sequential {!batch} otherwise. *)

val to_list : t -> (Kv.key * Kv.value) list
val cardinal : t -> int
val iter : t -> (Kv.key -> Kv.value -> unit) -> unit
val range : t -> lo:Kv.key option -> hi:Kv.key option -> (Kv.key * Kv.value) list
(** Inclusive range scan in key order, pruning by split keys. *)

val scan :
  t -> lo:Kv.key option -> hi:Kv.key option -> (Kv.key * Kv.value) Seq.t
(** Streaming version-visible leaf walk over the half-open interval
    [lo, hi): entries in key order, lazily, pruned by split keys. *)

val stats : t -> Tree_stats.t
val prove_range : t -> lo:Kv.key option -> hi:Kv.key option -> Range_proof.t
val verify_range_proof : root:Hash.t -> Range_proof.t -> bool
val diff : t -> t -> Kv.diff_entry list
val merge : t -> t -> policy:Kv.merge_policy -> (t, Kv.conflict list) result
val prove : t -> Kv.key -> Proof.t
val verify_proof : root:Hash.t -> Proof.t -> bool

val prove_many : t -> Kv.key list -> Multiproof.t
(** Batched proof over a key set in one walk (see {!Siri_mpt.Mpt.prove_many}
    for the shared discipline). *)

val verify_many : root:Hash.t -> Multiproof.t -> bool
(** Store-independent replay of the proving walk over the supplied
    deduplicated nodes. *)

val generic : ?pool:Siri_parallel.Pool.t -> t -> Generic.t
(** Package as a uniform instance.  With [pool], the instance's
    [bulk_load] runs through the parallel {!of_sorted} pipeline. *)
