open Siri_crypto

type node = { mutable bytes : string; children : Hash.t list }

type stats = {
  puts : int;
  unique_nodes : int;
  stored_bytes : int;
  put_bytes : int;
  gets : int;
}

type t = {
  tbl : node Hash.Table.t;
  mutable puts : int;
  mutable put_bytes : int;
  mutable stored_bytes : int;
  mutable gets : int;
  mutable get_observer : (Hash.t -> int -> unit) option;
  mutable put_observer : (Hash.t -> int -> unit) option;
}

let create () =
  { tbl = Hash.Table.create 4096;
    puts = 0;
    put_bytes = 0;
    stored_bytes = 0;
    gets = 0;
    get_observer = None;
    put_observer = None }

let set_get_observer t obs = t.get_observer <- obs
let set_put_observer t obs = t.put_observer <- obs

let put t ?(children = []) bytes =
  let h = Hash.of_string bytes in
  t.puts <- t.puts + 1;
  t.put_bytes <- t.put_bytes + String.length bytes;
  if not (Hash.Table.mem t.tbl h) then begin
    Hash.Table.add t.tbl h { bytes; children };
    t.stored_bytes <- t.stored_bytes + String.length bytes
  end;
  (match t.put_observer with
  | Some f -> f h (String.length bytes)
  | None -> ());
  h

let get t h =
  t.gets <- t.gets + 1;
  let bytes = (Hash.Table.find t.tbl h).bytes in
  (match t.get_observer with
  | Some f -> f h (String.length bytes)
  | None -> ());
  bytes

let find t h = match get t h with s -> Some s | exception Not_found -> None
let mem t h = Hash.Table.mem t.tbl h
let children t h = (Hash.Table.find t.tbl h).children
let size_of t h = String.length (Hash.Table.find t.tbl h).bytes

let iter_nodes t f =
  Hash.Table.iter (fun _ node -> f node.bytes node.children) t.tbl

let stats t =
  { puts = t.puts;
    unique_nodes = Hash.Table.length t.tbl;
    stored_bytes = t.stored_bytes;
    put_bytes = t.put_bytes;
    gets = t.gets }

let reset_counters t =
  t.puts <- 0;
  t.put_bytes <- 0;
  t.gets <- 0

let reachable_many t roots =
  let visited = ref Hash.Set.empty in
  let rec walk h =
    if
      (not (Hash.is_null h))
      && (not (Hash.Set.mem h !visited))
      && Hash.Table.mem t.tbl h
    then begin
      visited := Hash.Set.add h !visited;
      List.iter walk (Hash.Table.find t.tbl h).children
    end
  in
  List.iter walk roots;
  !visited

let reachable t root = reachable_many t [ root ]

let bytes_of_set t set =
  Hash.Set.fold
    (fun h acc ->
      match Hash.Table.find_opt t.tbl h with
      | Some n -> acc + String.length n.bytes
      | None -> acc)
    set 0

let gc t ~roots =
  let live = reachable_many t roots in
  let dead =
    Hash.Table.fold
      (fun h _ acc -> if Hash.Set.mem h live then acc else h :: acc)
      t.tbl []
  in
  List.iter
    (fun h ->
      let n = Hash.Table.find t.tbl h in
      t.stored_bytes <- t.stored_bytes - String.length n.bytes;
      Hash.Table.remove t.tbl h)
    dead;
  List.length dead

(* --- persistence ---------------------------------------------------------- *)

let magic = "SIRISTORE1"

let save t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc magic;
     let write_varint n =
       let rec go n =
         if n < 0x80 then output_char oc (Char.chr n)
         else begin
           output_char oc (Char.chr (0x80 lor (n land 0x7F)));
           go (n lsr 7)
         end
       in
       go n
     in
     write_varint (Hash.Table.length t.tbl);
     Hash.Table.iter
       (fun _ node ->
         write_varint (String.length node.bytes);
         output_string oc node.bytes;
         write_varint (List.length node.children);
         List.iter (fun h -> output_string oc (Hash.to_raw h)) node.children)
       t.tbl;
     close_out oc
   with e ->
     close_out_noerr oc;
     Sys.remove tmp;
     raise e);
  Sys.rename tmp path

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let really n =
        let b = really_input_string ic n in
        b
      in
      if (try really (String.length magic) with End_of_file -> "") <> magic
      then failwith "Store.load: bad magic";
      let read_varint () =
        let rec go shift acc =
          let b = input_byte ic in
          let acc = acc lor ((b land 0x7F) lsl shift) in
          if b land 0x80 = 0 then acc else go (shift + 7) acc
        in
        try go 0 0 with End_of_file -> failwith "Store.load: truncated"
      in
      let t = create () in
      let count = read_varint () in
      (try
         for _ = 1 to count do
           let len = read_varint () in
           let bytes = really len in
           let nchildren = read_varint () in
           let children =
             List.init nchildren (fun _ -> Hash.of_raw (really Hash.size))
           in
           let h = put t ~children bytes in
           ignore h
         done
       with End_of_file -> failwith "Store.load: truncated");
      reset_counters t;
      t)

let corrupt t h =
  let n = Hash.Table.find t.tbl h in
  if String.length n.bytes = 0 then n.bytes <- "\001"
  else begin
    let b = Bytes.of_string n.bytes in
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
    n.bytes <- Bytes.unsafe_to_string b
  end

let get_verified t h =
  match find t h with
  | None -> raise Not_found
  | Some bytes ->
      if Hash.equal (Hash.of_string bytes) h then Ok bytes
      else Error (`Tampered h)
