open Siri_crypto
module Telemetry = Siri_telemetry.Telemetry
module Node_cache = Siri_readpath.Node_cache
module Proof_cache = Siri_readpath.Proof_cache
module Bloom = Siri_readpath.Bloom

exception Missing of Hash.t
exception Transient of Hash.t
exception Tampered of Hash.t

type node = { mutable bytes : string; children : Hash.t list }

(* A cold storage tier sitting below the in-memory node table.  The store
   never names a concrete backend (the pack-file implementation lives in
   [lib/pack] and plugs in through these closures), which keeps the
   dependency graph acyclic: pack depends on store, not the reverse. *)
type backend = {
  backend_name : string;
  backend_read : Hash.t -> (string * Hash.t list) option;
      (** Cold read; may raise {!Transient} or {!Tampered}. *)
  backend_mem : Hash.t -> bool;
  backend_write : (Hash.t * string * Hash.t list) list -> unit;
      (** Buffered append of freshly stored nodes (write-through). *)
  backend_flush : sync:bool -> unit;  (** Group fsync of buffered appends. *)
  backend_corrupt : unit -> Hash.t list;
      (** Integrity scan: hashes of records failing verification. *)
  backend_compact : live:Hash.Set.t -> Hash.t list;
      (** Drop everything outside [live]; returns the dropped hashes. *)
  backend_count : unit -> int;
  backend_bytes : unit -> int;
}

type stats = {
  puts : int;
  unique_nodes : int;
  stored_bytes : int;
  put_bytes : int;
  gets : int;
}

(* Stat counters are [Atomic]s: the node table itself is only ever touched
   by the coordinating domain (workers in the parallel commit pipeline
   stage pure bytes and never reach the store), but the counters are cheap
   to make unconditionally race-free, which keeps [stats] trustworthy even
   if a future caller meters from several domains. *)
type t = {
  tbl : node Hash.Table.t;
  puts : int Atomic.t;
  put_bytes : int Atomic.t;
  stored_bytes : int Atomic.t;
  gets : int Atomic.t;
  mutable get_observer : (Hash.t -> int -> unit) option;
  mutable put_observer : (Hash.t -> int -> unit) option;
  mutable read_gate : (Hash.t -> string -> unit) option;
  mutable sink : Telemetry.sink;
  cache : Node_cache.t;
  (* Memoized multiproofs keyed by (root, key set); cleared wholesale by
     the tamper primitives and gc, since a proof may embed any node. *)
  proof_cache : Proof_cache.t;
  (* Per-version negative-lookup filters, keyed by the exact root hash the
     filter was built for.  A version without a registered filter simply
     skips the short-circuit. *)
  filters : Bloom.t Hash.Table.t;
  mutable backend : backend option;
}

let create ?cache_bytes ?proof_cache_bytes () =
  { tbl = Hash.Table.create 4096;
    puts = Atomic.make 0;
    put_bytes = Atomic.make 0;
    stored_bytes = Atomic.make 0;
    gets = Atomic.make 0;
    get_observer = None;
    put_observer = None;
    read_gate = None;
    sink = Telemetry.null;
    cache = Node_cache.create ?budget:cache_bytes ();
    proof_cache = Proof_cache.create ?budget:proof_cache_bytes ();
    filters = Hash.Table.create 16;
    backend = None }

let add_counter c by = ignore (Atomic.fetch_and_add c by : int)

let set_get_observer t obs = t.get_observer <- obs
let set_put_observer t obs = t.put_observer <- obs
let set_read_gate t gate = t.read_gate <- gate

let set_sink t sink =
  t.sink <- sink;
  Node_cache.set_sink t.cache sink;
  Proof_cache.set_sink t.proof_cache sink

let sink t = t.sink
let cache t = t.cache
let proof_cache t = t.proof_cache

(* --- cold storage tier ------------------------------------------------------ *)

let set_backend t backend = t.backend <- backend
let backend_name t = Option.map (fun b -> b.backend_name) t.backend

let flush_backend ?(sync = true) t =
  match t.backend with Some b -> b.backend_flush ~sync | None -> ()

let write_through t nodes =
  match t.backend with
  | None -> ()
  | Some b -> if nodes <> [] then b.backend_write nodes

(* Drop the in-memory (hot) tier: every node must already be in the backend
   (write-through guarantees it for nodes stored while attached), so
   subsequent reads fall through to cold storage.  The decoded-node cache
   stays — content addressing keeps it coherent across tiers. *)
let drop_hot t =
  match t.backend with
  | None -> invalid_arg "Store.drop_hot: no backend attached"
  | Some b ->
      b.backend_flush ~sync:false;
      Hash.Table.reset t.tbl;
      Atomic.set t.stored_bytes 0

(* --- read-path sidecars ----------------------------------------------------

   Cache coherence argument: nodes are content-addressed, so a cached
   decoding of hash [h] can only disagree with [get t h] if the stored
   bytes under [h] changed — which only the tamper primitives below and
   [gc]/[repair] can do.  Each of those invalidates the affected entries,
   so for every other operation the cache is coherent by construction. *)

let set_root_filter t root filter = Hash.Table.replace t.filters root filter
let root_filter t root = Hash.Table.find_opt t.filters root
let clear_root_filters t = Hash.Table.reset t.filters

let put t ?(children = []) bytes =
  let h = Hash.of_string bytes in
  let len = String.length bytes in
  add_counter t.puts 1;
  add_counter t.put_bytes len;
  let fresh = not (Hash.Table.mem t.tbl h) in
  if fresh then begin
    Hash.Table.add t.tbl h { bytes; children };
    add_counter t.stored_bytes len;
    write_through t [ (h, bytes, children) ]
  end;
  if Telemetry.enabled t.sink then begin
    Telemetry.incr t.sink "store.put";
    Telemetry.incr t.sink ~by:len "store.put_bytes";
    if fresh then begin
      Telemetry.incr t.sink "store.put_unique";
      Telemetry.incr t.sink ~by:len "store.put_unique_bytes"
    end
  end;
  (match t.put_observer with Some f -> f h len | None -> ());
  h

(* --- staged (parallel) writes ---------------------------------------------- *)

(* A staged node: encoded bytes plus their digest, computed away from the
   store — typically by a pool worker via [stage_quiet], whose hashing
   does not notify the digest observer.  The coordinating domain then
   replays the notifications in deterministic order ([note_staged]) and
   installs the nodes ([put_staged]), so the observable effects of a
   parallel commit are byte-for-byte those of the sequential one. *)
type staged = { digest : Hash.t; node_bytes : string; node_children : Hash.t list }

let stage ?(children = []) bytes =
  { digest = Hash.of_string bytes; node_bytes = bytes; node_children = children }

let stage_quiet ?(children = []) bytes =
  { digest = Hash.of_string_quiet bytes;
    node_bytes = bytes;
    node_children = children }

let note_staged staged =
  List.iter (fun s -> Hash.note_digest (String.length s.node_bytes)) staged

let put_staged t staged =
  (* One pass, one stats update, one telemetry flush.  Dedup accounting is
     per node and in list order, exactly as a sequence of [put]s: a
     duplicate later in the batch sees the earlier node already installed. *)
  let count = ref 0 and total = ref 0 in
  let fresh_count = ref 0 and fresh_bytes = ref 0 in
  let fresh_nodes = ref [] in
  List.iter
    (fun s ->
      let len = String.length s.node_bytes in
      incr count;
      total := !total + len;
      if not (Hash.Table.mem t.tbl s.digest) then begin
        Hash.Table.add t.tbl s.digest
          { bytes = s.node_bytes; children = s.node_children };
        incr fresh_count;
        fresh_bytes := !fresh_bytes + len;
        if t.backend <> None then
          fresh_nodes := (s.digest, s.node_bytes, s.node_children) :: !fresh_nodes
      end;
      match t.put_observer with Some f -> f s.digest len | None -> ())
    staged;
  write_through t (List.rev !fresh_nodes);
  add_counter t.puts !count;
  add_counter t.put_bytes !total;
  add_counter t.stored_bytes !fresh_bytes;
  if Telemetry.enabled t.sink && !count > 0 then begin
    Telemetry.incr t.sink ~by:!count "store.put";
    Telemetry.incr t.sink ~by:!total "store.put_bytes";
    if !fresh_count > 0 then begin
      Telemetry.incr t.sink ~by:!fresh_count "store.put_unique";
      Telemetry.incr t.sink ~by:!fresh_bytes "store.put_unique_bytes"
    end
  end

let put_batch t items =
  let staged = List.map (fun (bytes, children) -> stage ~children bytes) items in
  put_staged t staged;
  List.map (fun s -> s.digest) staged

(* Cold lookup beneath the hot table.  [backend_read] raising [Transient]
   or [Tampered] propagates to the caller exactly like a gated fault. *)
let cold_read t h =
  match t.backend with
  | None -> raise Not_found
  | Some b -> (
      match b.backend_read h with
      | None -> raise Not_found
      | Some pair ->
          Telemetry.incr t.sink "store.get.cold";
          pair)

let get t h =
  add_counter t.gets 1;
  let bytes =
    match Hash.Table.find_opt t.tbl h with
    | Some node -> node.bytes
    | None -> fst (cold_read t h)
  in
  (match t.read_gate with Some gate -> gate h bytes | None -> ());
  (* Telemetry counts successful reads (past the fault gate), at the same
     point the deployment-simulation observer fires — so cache hit/miss
     accounting and [store.get] stay conservation-consistent. *)
  if Telemetry.enabled t.sink then begin
    Telemetry.incr t.sink "store.get";
    Telemetry.incr t.sink ~by:(String.length bytes) "store.get_bytes"
  end;
  (match t.get_observer with
  | Some f -> f h (String.length bytes)
  | None -> ());
  bytes

let find t h = match get t h with s -> Some s | exception Not_found -> None

let mem t h =
  Hash.Table.mem t.tbl h
  || match t.backend with Some b -> b.backend_mem h | None -> false

let children t h =
  match Hash.Table.find_opt t.tbl h with
  | Some node -> node.children
  | None -> snd (cold_read t h)

let size_of t h =
  match Hash.Table.find_opt t.tbl h with
  | Some node -> String.length node.bytes
  | None -> String.length (fst (cold_read t h))

let iter_nodes t f =
  Hash.Table.iter (fun _ node -> f node.bytes node.children) t.tbl

let stats t =
  { puts = Atomic.get t.puts;
    unique_nodes = Hash.Table.length t.tbl;
    stored_bytes = Atomic.get t.stored_bytes;
    put_bytes = Atomic.get t.put_bytes;
    gets = Atomic.get t.gets }

let reset_counters t =
  Atomic.set t.puts 0;
  Atomic.set t.put_bytes 0;
  Atomic.set t.gets 0

let reachable_many t roots =
  let visited = ref Hash.Set.empty in
  let children_opt h =
    match Hash.Table.find_opt t.tbl h with
    | Some node -> Some node.children
    | None -> (
        match t.backend with
        | None -> None
        | Some b -> Option.map snd (b.backend_read h))
  in
  let rec walk h =
    if (not (Hash.is_null h)) && not (Hash.Set.mem h !visited) then
      match children_opt h with
      | None -> ()
      | Some children ->
          visited := Hash.Set.add h !visited;
          List.iter walk children
  in
  List.iter walk roots;
  !visited

let reachable t root = reachable_many t [ root ]

let bytes_of_set t set =
  Hash.Set.fold
    (fun h acc ->
      match Hash.Table.find_opt t.tbl h with
      | Some n -> acc + String.length n.bytes
      | None -> (
          match t.backend with
          | None -> acc
          | Some b -> (
              match b.backend_read h with
              | Some (bytes, _) -> acc + String.length bytes
              | None | (exception _) -> acc)))
    set 0

let gc t ~roots =
  let live = reachable_many t roots in
  let dead =
    Hash.Table.fold
      (fun h _ acc -> if Hash.Set.mem h live then acc else h :: acc)
      t.tbl []
  in
  List.iter
    (fun h ->
      let n = Hash.Table.find t.tbl h in
      add_counter t.stored_bytes (-String.length n.bytes);
      Hash.Table.remove t.tbl h;
      Node_cache.remove t.cache h)
    dead;
  (* The backend compacts against the same live set; nodes it drops may be
     absent from the hot table (after [drop_hot]) but could still sit in the
     decoded-node cache, so each dropped hash is invalidated there too. *)
  let backend_dropped =
    match t.backend with
    | None -> []
    | Some b ->
        let dropped = b.backend_compact ~live in
        Node_cache.remove_many t.cache dropped;
        dropped
  in
  (* Filters for roots that were collected describe versions that no longer
     exist; drop them so the registry cannot outgrow the store. *)
  let stale =
    Hash.Table.fold
      (fun root _ acc -> if mem t root then acc else root :: acc)
      t.filters []
  in
  List.iter (Hash.Table.remove t.filters) stale;
  (* Any collected node may sit inside a memoized multiproof. *)
  Proof_cache.clear t.proof_cache;
  Hash.Set.cardinal
    (Hash.Set.union (Hash.Set.of_list dead) (Hash.Set.of_list backend_dropped))

(* --- persistence ---------------------------------------------------------- *)

let magic = "SIRISTORE2"

(* Atomic file replacement.  The temp name carries the pid and a process-wide
   counter so concurrent saves to the same destination never clobber each
   other's half-written file; [fsync] before the rename makes the
   bytes-then-name ordering crash-safe (a torn save leaves only a stale
   [.tmp.*], never a damaged destination). *)

let tmp_counter = Atomic.make 0

let fresh_tmp path =
  Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
    (Atomic.fetch_and_add tmp_counter 1 + 1)

let tmp_marker = ".tmp."

let is_tmp_of ~base name =
  let prefix = base ^ tmp_marker in
  String.length name > String.length prefix
  && String.sub name 0 (String.length prefix) = prefix

let cleanup_stale_tmp path =
  let dir = Filename.dirname path in
  let base = Filename.basename path in
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | names ->
      Array.fold_left
        (fun removed name ->
          if is_tmp_of ~base name then (
            match Sys.remove (Filename.concat dir name) with
            | () -> removed + 1
            | exception Sys_error _ -> removed)
          else removed)
        0 names

(* A rename is not durable until the containing directory's entry table is
   on disk: on ext4 an fsync of the file alone can survive a crash while
   the rename itself is lost, resurrecting the old name.  Every atomic
   replacement therefore ends with an fsync of the parent directory.
   Failures are swallowed — some filesystems refuse fsync on directories,
   and a failed directory sync only weakens durability, never integrity. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let write_file_atomic ?(sync = true) path writer =
  let tmp = fresh_tmp path in
  let oc = open_out_bin tmp in
  (try
     writer oc;
     flush oc;
     if sync then Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  if sync then fsync_dir (Filename.dirname path)

(* Insert a node under an explicit key without re-hashing — the load path
   needs this so that a node whose recorded digest no longer matches its
   bytes keeps its original identity (and can then be found by [scrub]). *)
let add_raw t h bytes children =
  if not (Hash.Table.mem t.tbl h) then begin
    Hash.Table.add t.tbl h { bytes; children };
    add_counter t.stored_bytes (String.length bytes)
  end

let save ?sync t path =
  write_file_atomic ?sync path (fun oc ->
      output_string oc magic;
      let write_varint n =
        let rec go n =
          if n < 0x80 then output_char oc (Char.chr n)
          else begin
            output_char oc (Char.chr (0x80 lor (n land 0x7F)));
            go (n lsr 7)
          end
        in
        go n
      in
      write_varint (Hash.Table.length t.tbl);
      Hash.Table.iter
        (fun h node ->
          (* The key digest is recorded alongside the payload so that load
             can detect on-disk damage: any flipped or missing byte makes
             the re-hash disagree with the recorded digest. *)
          output_string oc (Hash.to_raw h);
          write_varint (String.length node.bytes);
          output_string oc node.bytes;
          write_varint (List.length node.children);
          List.iter (fun c -> output_string oc (Hash.to_raw c)) node.children)
        t.tbl)

let load ?(verify = true) path =
  ignore (cleanup_stale_tmp path : int);
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let really n =
        try really_input_string ic n
        with End_of_file -> failwith "Store.load: truncated"
      in
      if (try really_input_string ic (String.length magic)
          with End_of_file -> "")
         <> magic
      then failwith "Store.load: bad magic";
      let read_varint () =
        let rec go shift acc =
          if shift > 56 then failwith "Store.load: malformed length";
          let b = input_byte ic in
          let acc = acc lor ((b land 0x7F) lsl shift) in
          if acc < 0 then failwith "Store.load: malformed length";
          if b land 0x80 = 0 then acc else go (shift + 7) acc
        in
        try go 0 0 with End_of_file -> failwith "Store.load: truncated"
      in
      let t = create () in
      let count = read_varint () in
      for _ = 1 to count do
        let h = Hash.of_raw (really Hash.size) in
        let len = read_varint () in
        let bytes = really len in
        let nchildren = read_varint () in
        let children =
          List.init nchildren (fun _ -> Hash.of_raw (really Hash.size))
        in
        if verify && not (Hash.equal (Hash.of_string bytes) h) then
          failwith
            (Printf.sprintf "Store.load: corrupt node %s (hash mismatch)"
               (Hash.short h));
        add_raw t h bytes children
      done;
      (* A damaged node count would leave bytes unread (or hit EOF above):
         anything after the declared nodes means the count lies. *)
      (match input_char ic with
      | _ -> failwith "Store.load: trailing bytes"
      | exception End_of_file -> ());
      t)

let load_checked ?verify path =
  match load ?verify path with
  | t -> Ok t
  | exception Failure msg -> Error (`Malformed msg)
  | exception Sys_error msg -> Error (`Malformed msg)
  | exception Invalid_argument msg -> Error (`Malformed msg)

(* --- tamper simulation ----------------------------------------------------- *)

(* Every tamper primitive changes (or removes) the bytes stored under a
   key while keeping the key — the one way a cached decoding could go
   stale — so each drops the cache entry for the touched hash. *)

let corrupt t h =
  let n = Hash.Table.find t.tbl h in
  Node_cache.remove t.cache h;
  Proof_cache.clear t.proof_cache;
  if String.length n.bytes = 0 then n.bytes <- "\001"
  else begin
    let b = Bytes.of_string n.bytes in
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
    n.bytes <- Bytes.unsafe_to_string b
  end

let corrupt_at t h ~pos =
  let n = Hash.Table.find t.tbl h in
  Node_cache.remove t.cache h;
  Proof_cache.clear t.proof_cache;
  if String.length n.bytes = 0 then n.bytes <- "\001"
  else begin
    let b = Bytes.of_string n.bytes in
    let i = pos mod Bytes.length b in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
    n.bytes <- Bytes.unsafe_to_string b
  end

let truncate_node t h ~keep =
  let n = Hash.Table.find t.tbl h in
  Node_cache.remove t.cache h;
  Proof_cache.clear t.proof_cache;
  let keep = max 0 (min keep (String.length n.bytes)) in
  add_counter t.stored_bytes (-(String.length n.bytes - keep));
  n.bytes <- String.sub n.bytes 0 keep

let remove_node t h =
  match Hash.Table.find_opt t.tbl h with
  | None -> false
  | Some n ->
      Node_cache.remove t.cache h;
      Proof_cache.clear t.proof_cache;
      add_counter t.stored_bytes (-String.length n.bytes);
      Hash.Table.remove t.tbl h;
      true

let get_verified t h =
  match find t h with
  | None -> raise Not_found
  | Some bytes ->
      if Hash.equal (Hash.of_string bytes) h then Ok bytes
      else Error (`Tampered h)

(* --- integrity scrub & repair ---------------------------------------------- *)

type scrub_report = {
  scanned : int;
  corrupt : Hash.t list;
  dangling : (Hash.t * Hash.t) list;
  orphaned : Hash.t list;
}

let scrub_clean r = r.corrupt = [] && r.dangling = [] && r.orphaned = []

let scrub ?roots t =
  (* Reads [tbl] directly: integrity checking must see the raw stored
     payloads, bypassing any installed read gate or observer. *)
  let scanned = ref 0 in
  let corrupt = ref [] in
  let dangling = ref [] in
  Hash.Table.iter
    (fun h node ->
      incr scanned;
      if not (Hash.equal (Hash.of_string node.bytes) h) then
        corrupt := h :: !corrupt;
      List.iter
        (fun c ->
          if (not (Hash.is_null c)) && not (Hash.Table.mem t.tbl c) then
            dangling := (h, c) :: !dangling)
        node.children)
    t.tbl;
  (* The cold tier is audited by its own scan (frame checksums plus node
     re-hash); its findings merge into the same report.  Records present in
     both tiers are deduplicated by the sort below. *)
  (match t.backend with
  | None -> ()
  | Some b ->
      List.iter
        (fun h ->
          incr scanned;
          if not (List.mem h !corrupt) then corrupt := h :: !corrupt)
        (b.backend_corrupt ()));
  let orphaned =
    match roots with
    | None -> []
    | Some roots ->
        let live = reachable_many t roots in
        Hash.Table.fold
          (fun h _ acc -> if Hash.Set.mem h live then acc else h :: acc)
          t.tbl []
        |> List.sort Hash.compare
  in
  { scanned = !scanned;
    corrupt = List.sort Hash.compare !corrupt;
    dangling =
      List.sort
        (fun (a, b) (c, d) ->
          match Hash.compare a c with 0 -> Hash.compare b d | n -> n)
        !dangling;
    orphaned }

let pp_scrub_report ppf r =
  Format.fprintf ppf "scanned    : %d node%s@." r.scanned
    (if r.scanned = 1 then "" else "s");
  Format.fprintf ppf "corrupt    : %d@." (List.length r.corrupt);
  List.iter (fun h -> Format.fprintf ppf "  tampered %s@." (Hash.to_hex h)) r.corrupt;
  Format.fprintf ppf "dangling   : %d@." (List.length r.dangling);
  List.iter
    (fun (p, c) ->
      Format.fprintf ppf "  %s -> missing %s@." (Hash.short p) (Hash.to_hex c))
    r.dangling;
  Format.fprintf ppf "orphaned   : %d@." (List.length r.orphaned)

let repair t ~replica =
  let report = scrub t in
  (* Quarantine: a corrupt node is worse than a missing one — its bytes
     would fail verification anyway, and dropping it lets the re-graft
     below restore the authentic payload under the same key. *)
  List.iter (fun h -> ignore (remove_node t h)) report.corrupt;
  let grafted = ref 0 in
  iter_nodes replica (fun bytes children ->
      let h = Hash.of_string bytes in
      if not (Hash.Table.mem t.tbl h) then begin
        add_raw t h bytes children;
        incr grafted
      end);
  !grafted
