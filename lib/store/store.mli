(** Content-addressed immutable node store.

    Every index node is serialized and stored under the SHA-256 of its bytes.
    Writing the same bytes twice stores one copy — this is the page-sharing
    substrate that all SIRI deduplication rests on.  The store additionally
    remembers each node's children hashes, so the reachable page set [P(I)]
    of any index instance (identified by its root hash) can be traversed
    generically, independent of the index type.

    Counters distinguish logical writes ([puts]) from physically new nodes
    ([unique_nodes]); benchmarks snapshot them with {!stats}. *)

open Siri_crypto

(** {2 Typed fault exceptions}

    The store's hot read path stays exception-based for the benchmarks, but
    the exceptions carry the failing hash so fault-aware callers
    ({!Siri_fault.Fault.protect}, [Engine.get_checked], …) can map them into
    the typed error domain
    [[ `Tampered | `Missing | `Transient | `Malformed ]] instead of leaking
    bare [Not_found] / [Failure] / [Invalid_argument]. *)

exception Missing of Hash.t
(** A node that should exist has vanished (injected drop or lost page). *)

exception Transient of Hash.t
(** A read failed transiently (simulated flaky link); retrying may succeed. *)

exception Tampered of Hash.t
(** A stored payload no longer hashes to its key. *)

type t

type stats = {
  puts : int;          (** logical writes (including duplicates) *)
  unique_nodes : int;  (** distinct nodes currently stored *)
  stored_bytes : int;  (** sum of the byte sizes of distinct nodes *)
  put_bytes : int;     (** bytes across all logical writes *)
  gets : int;          (** node fetches *)
}

val create : ?cache_bytes:int -> ?proof_cache_bytes:int -> unit -> t
(** [cache_bytes] is the byte budget of the decoded-node cache attached to
    this store ({!cache}).  When omitted, the [SIRI_NODE_CACHE] environment
    variable supplies the budget, and if that too is unset the cache is
    {e disabled} (budget 0) — so fault injection, deployment simulation and
    telemetry conservation keep exact per-read accounting unless caching is
    requested explicitly.  [proof_cache_bytes] is the same opt-in for the
    multiproof cache ({!proof_cache}), with [SIRI_PROOF_CACHE] as its
    environment fallback. *)

val put : t -> ?children:Hash.t list -> string -> Hash.t
(** Store a serialized node; returns its content hash.  [children] lists the
    hashes of the node's direct children (for reachability); they need not be
    present yet. *)

(** {2 Staged (batched) writes}

    The parallel commit pipeline splits a write into a pure phase — encode
    the node and digest its bytes, safe to fan out over pool workers — and
    a sequential install phase into the store.  {!stage_quiet} is the
    worker half (it does not notify the digest observer); the coordinator
    then calls {!note_staged} to replay the observer notifications in
    deterministic order and {!put_staged} to install the nodes.  A batch
    installed this way is observably identical to the same sequence of
    {!put}s: same hashes, same per-node dedup accounting, same counter
    totals — but with a single stats update and one coalesced telemetry
    flush for the whole batch. *)

type staged = {
  digest : Hash.t;
  node_bytes : string;
  node_children : Hash.t list;
}
(** A node whose digest has been computed but which is not yet installed. *)

val stage : ?children:Hash.t list -> string -> staged
(** Digest now (notifying the observer), install later. *)

val stage_quiet : ?children:Hash.t list -> string -> staged
(** {!stage} without notifying the digest observer — the only store entry
    point safe to call from pool worker domains. *)

val note_staged : staged list -> unit
(** Replay the digest-observer notifications for quietly staged nodes, in
    list order. *)

val put_staged : t -> staged list -> unit
(** Install staged nodes, in list order, with coalesced accounting. *)

val put_batch : t -> (string * Hash.t list) list -> Hash.t list
(** [put_batch t [(bytes, children); …]] stages and installs a batch in
    one call, returning the content hashes in order.  Equivalent to
    [List.map (fun (b, c) -> put t ~children:c b)] with a single stats
    update. *)

val get : t -> Hash.t -> string
(** Raises [Not_found] if the hash is unknown. *)

val find : t -> Hash.t -> string option
val mem : t -> Hash.t -> bool

val children : t -> Hash.t -> Hash.t list
(** Direct children as declared at {!put} time.  Raises [Not_found]. *)

val size_of : t -> Hash.t -> int
(** Byte size of a stored node.  Raises [Not_found]. *)

val iter_nodes : t -> (string -> Hash.t list -> unit) -> unit
(** Apply a function to every stored node's bytes and children list (in
    unspecified order) — used to graft one store into another. *)

val stats : t -> stats
val reset_counters : t -> unit
(** Zero the [puts]/[put_bytes]/[gets] counters (stored nodes are kept). *)

val set_get_observer : t -> (Hash.t -> int -> unit) option -> unit
(** Install a callback invoked on every successful {!get} with the node
    hash and its byte size — used by the client/server deployment simulation
    to account for cache misses and transfer costs. *)

val set_put_observer : t -> (Hash.t -> int -> unit) option -> unit
(** Same for {!put} (called on every logical write, duplicate or not). *)

val set_sink : t -> Siri_telemetry.Telemetry.sink -> unit
(** Attach a telemetry sink.  Every successful {!get} increments
    [store.get] / [store.get_bytes]; every {!put} increments [store.put] /
    [store.put_bytes], plus [store.put_unique] / [store.put_unique_bytes]
    when the bytes were not already stored (so
    [store.put - store.put_unique] is the deduplicated write count).
    Attaching {!Siri_telemetry.Telemetry.null} (the default) disables
    metering; a sink never alters stored bytes or hashes. *)

val sink : t -> Siri_telemetry.Telemetry.sink
(** The attached sink (shared by the index implementations bound to this
    store — their per-operation probes report here). *)

(** {2 Read-path sidecars}

    The decoded-node cache and the per-version negative-lookup filters live
    on the store because they describe its contents, but they sit {e beside}
    the node table: a cache hit never calls {!get}, so gated faults,
    deployment observers and [store.get] telemetry meter only the reads that
    actually reach storage.

    {b Coherence:} nodes are content-addressed, so a cached decoding of
    hash [h] can only disagree with [get t h] if the bytes stored under [h]
    changed.  Exactly four operations can do that — {!corrupt},
    {!corrupt_at}, {!truncate_node} and {!remove_node} — and each
    invalidates the cache entry for the hash it touches; {!gc} drops the
    entries of collected nodes.  Every other operation leaves the mapping
    [hash -> bytes] intact, so the cache needs no other invalidation. *)

val cache : t -> Siri_readpath.Node_cache.t
(** The decoded-node cache.  Indexes read through it via their [get_node];
    callers may {!Siri_readpath.Node_cache.clear} or [resize] it at any
    time without affecting correctness.  {!set_sink} propagates the sink to
    the cache, so [cache.node.hit]/[miss]/[evict] are metered alongside the
    store counters. *)

val proof_cache : t -> Siri_readpath.Proof_cache.t
(** The multiproof cache ([Siri_core.Generic.prove_many] reads through
    it).  Coherence follows the decoded-node cache's discipline, scaled to
    proofs: a multiproof may embed {e any} node, so the four byte-mutating
    tamper primitives and {!gc} clear this cache wholesale instead of
    invalidating per hash.  {!set_sink} propagates the sink, metering
    [proof.cache.hit]/[miss]/[evict]. *)

val set_root_filter : t -> Hash.t -> Siri_readpath.Bloom.t -> unit
(** Register the negative-lookup filter for the version rooted at the
    given hash (replacing any previous filter for that exact root).  Built
    by [Engine] commits and [Generic.load_sorted]; consulted by
    [Generic.get]/[get_many] to short-circuit definite misses. *)

val root_filter : t -> Hash.t -> Siri_readpath.Bloom.t option

val clear_root_filters : t -> unit
(** Drop all registered filters (every lookup walks the tree again).
    Filters are in-memory sidecars: they are {e not} persisted by {!save}
    and are rebuilt by the loading paths that know the key sets. *)

val set_read_gate : t -> (Hash.t -> string -> unit) option -> unit
(** Install a gate consulted on every {!get} {e before} the bytes are
    returned (and before the get observer fires).  The gate may raise one
    of the typed fault exceptions ({!Missing}, {!Transient}, {!Tampered})
    to simulate storage and network faults, or verify the payload against
    its key — this is the injection point used by [Siri_fault.Fault].
    Integrity scrubbing ({!scrub}) bypasses the gate. *)

(** {2 Cold storage tier}

    A store may delegate cold storage to a pluggable {!backend} — in
    practice the log-structured pack-file store ([Siri_pack.Pack]), attached
    via its [Pack.attach].  With a backend attached the in-memory node table
    becomes the {e hot} tier: every fresh {!put} is written through to the
    backend (buffered; {!flush_backend} is the group-fsync point), and a
    read that misses the table falls through to a cold backend read (metered
    as [store.get.cold]).  The decoded-node cache ({!cache}) sits above both
    tiers and needs no extra invalidation — content addressing keeps a
    cached decoding valid wherever the bytes live.  {!scrub} merges the
    backend's own integrity scan into its report, and {!gc} compacts the
    backend against the same live set it sweeps the table with. *)

type backend = {
  backend_name : string;
  backend_read : Hash.t -> (string * Hash.t list) option;
      (** Cold read of payload and children; may raise {!Transient} (the
          retryable read fault) or {!Tampered} (checksum mismatch). *)
  backend_mem : Hash.t -> bool;
  backend_write : (Hash.t * string * Hash.t list) list -> unit;
      (** Append freshly stored nodes (buffered until [backend_flush]). *)
  backend_flush : sync:bool -> unit;
  backend_corrupt : unit -> Hash.t list;
      (** Integrity scan of cold storage: records failing verification. *)
  backend_compact : live:Hash.Set.t -> Hash.t list;
      (** Reclaim everything outside [live]; returns the dropped hashes so
          the caller can invalidate caches. *)
  backend_count : unit -> int;
  backend_bytes : unit -> int;
}

val set_backend : t -> backend option -> unit
val backend_name : t -> string option

val flush_backend : ?sync:bool -> t -> unit
(** Flush buffered write-through appends; with [sync] (the default) this is
    the backend's group-fsync point — one fsync covers every node stored
    since the last flush. *)

val drop_hot : t -> unit
(** Clear the in-memory tier, leaving all reads to the backend — the cold
    state a process reopening a pack directory starts from, reproduced
    in-process for tests and cold-read benchmarks.  Flushes buffered appends
    first.  Raises [Invalid_argument] without a backend (dropping the table
    would lose data). *)

(** {2 Page sets and reachability} *)

val reachable : t -> Hash.t -> Hash.Set.t
(** The page set of an instance: all nodes reachable from [root], including
    the root itself.  Unknown hashes and {!Hash.null} children are skipped. *)

val reachable_many : t -> Hash.t list -> Hash.Set.t
(** Union of page sets — computed with a shared visited set, so shared
    subtrees are walked once. *)

val bytes_of_set : t -> Hash.Set.t -> int
(** Total byte size of a page set. *)

(** {2 Garbage collection} *)

val gc : t -> roots:Hash.t list -> int
(** Drop every node not reachable from [roots]; returns how many distinct
    nodes were reclaimed.  With a backend attached the backend is compacted
    against the same live set (its reclaimed records count too), and every
    dropped hash is invalidated in the decoded-node cache. *)

(** {2 Persistence}

    A store can be serialized to a file and reloaded — the on-disk format
    ([SIRISTORE2]) records each node's digest next to its payload and
    children list; every node is re-hashed against the recorded digest on
    load, so a flipped or truncated byte anywhere in the file is detected
    and the file rejected with a typed error. *)

val save : ?sync:bool -> t -> string -> unit
(** Write all nodes to [path], atomically: bytes go to a uniquely-named
    temp file ([path ^ ".tmp.<pid>.<counter>"], so concurrent saves to one
    destination cannot clobber each other), are [fsync]ed ([sync] defaults
    to [true]; pass [false] to trade crash-durability for speed in tests
    and benchmarks), and only then renamed over [path].  A crash mid-save
    leaves at most a stale temp file, never a damaged destination. *)

val cleanup_stale_tmp : string -> int
(** Remove leftover [path ^ ".tmp.*"] files from interrupted saves next to
    [path]; returns how many were removed.  {!load} calls this
    automatically. *)

val write_file_atomic : ?sync:bool -> string -> (out_channel -> unit) -> unit
(** The tmp+fsync+rename primitive underlying {!save}, exposed for the
    other persistence layers (engine heads, WAL manifest, pack index) so
    every file in the system is replaced with the same crash-safe protocol.
    With [sync] the replacement ends with {!fsync_dir} on the parent — a
    rename alone is not durable on ext4. *)

val fsync_dir : string -> unit
(** Fsync a directory so a just-created or just-renamed entry inside it
    survives a crash.  Best-effort: errors (including filesystems that
    refuse directory fsync) are swallowed — a failed directory sync can
    weaken durability but never integrity. *)

val load : ?verify:bool -> string -> t
(** Read a store back.  Raises [Failure] on a malformed, truncated or
    damaged file (any payload whose re-hash disagrees with its recorded
    digest).  With [~verify:false] damaged payloads are kept under their
    recorded key instead of rejected — best-effort loading for forensics:
    a subsequent {!scrub} reports exactly the damaged nodes. *)

val load_checked : ?verify:bool -> string -> (t, [ `Malformed of string ]) result
(** {!load} with the untyped exceptions ([Failure], [Sys_error],
    [Invalid_argument]) folded into a typed error. *)

(** {2 Tamper simulation (for tests, examples and the tamper-evidence
    experiments)} *)

val corrupt : t -> Hash.t -> unit
(** Flip one byte of the stored payload while keeping its key — simulating
    an attacker who rewrites a page in place.  Raises [Not_found]. *)

val corrupt_at : t -> Hash.t -> pos:int -> unit
(** Single bit-flip at byte offset [pos mod length] — the fault injector's
    persistent page corruption.  Raises [Not_found]. *)

val truncate_node : t -> Hash.t -> keep:int -> unit
(** Chop a stored payload down to its first [keep] bytes (clamped), keeping
    its key — a torn write.  Raises [Not_found]. *)

val remove_node : t -> Hash.t -> bool
(** Physically delete one node (quarantine / injected page loss); returns
    whether it was present. *)

val get_verified : t -> Hash.t -> (string, [ `Tampered of Hash.t ]) result
(** Fetch and re-hash: detects {!corrupt}ed nodes, the way a Merkle-proof
    verification would. *)

(** {2 Integrity scrub & repair}

    The paper's tamper-evidence claim (§2, §5.7) made operational: because
    every node is addressed by the SHA-256 of its bytes, a full integrity
    audit is a re-hash of every payload plus a child-closure check — no
    external checksums needed. *)

type scrub_report = {
  scanned : int;  (** nodes examined *)
  corrupt : Hash.t list;
      (** payloads whose re-hash disagrees with their key (sorted) *)
  dangling : (Hash.t * Hash.t) list;
      (** (parent, declared child) pairs where the child is absent *)
  orphaned : Hash.t list;
      (** nodes unreachable from [roots]; empty unless [roots] was given *)
}

val scrub : ?roots:Hash.t list -> t -> scrub_report
(** Walk every stored node, re-hash its payload and check that each
    declared child resolves.  Bypasses any installed read gate — scrub sees
    raw storage.  With [roots] it additionally reports unreachable nodes. *)

val scrub_clean : scrub_report -> bool

val pp_scrub_report : Format.formatter -> scrub_report -> unit

val repair : t -> replica:t -> int
(** Quarantine (delete) every corrupt node, then re-graft from [replica]
    any node this store lacks, via {!iter_nodes}.  Grafted payloads are
    keyed by re-hash, so a corrupt replica cannot smuggle bad bytes under a
    good key.  Returns the number of nodes grafted. *)
