(** Content-addressed immutable node store.

    Every index node is serialized and stored under the SHA-256 of its bytes.
    Writing the same bytes twice stores one copy — this is the page-sharing
    substrate that all SIRI deduplication rests on.  The store additionally
    remembers each node's children hashes, so the reachable page set [P(I)]
    of any index instance (identified by its root hash) can be traversed
    generically, independent of the index type.

    Counters distinguish logical writes ([puts]) from physically new nodes
    ([unique_nodes]); benchmarks snapshot them with {!stats}. *)

open Siri_crypto

type t

type stats = {
  puts : int;          (** logical writes (including duplicates) *)
  unique_nodes : int;  (** distinct nodes currently stored *)
  stored_bytes : int;  (** sum of the byte sizes of distinct nodes *)
  put_bytes : int;     (** bytes across all logical writes *)
  gets : int;          (** node fetches *)
}

val create : unit -> t

val put : t -> ?children:Hash.t list -> string -> Hash.t
(** Store a serialized node; returns its content hash.  [children] lists the
    hashes of the node's direct children (for reachability); they need not be
    present yet. *)

val get : t -> Hash.t -> string
(** Raises [Not_found] if the hash is unknown. *)

val find : t -> Hash.t -> string option
val mem : t -> Hash.t -> bool

val children : t -> Hash.t -> Hash.t list
(** Direct children as declared at {!put} time.  Raises [Not_found]. *)

val size_of : t -> Hash.t -> int
(** Byte size of a stored node.  Raises [Not_found]. *)

val iter_nodes : t -> (string -> Hash.t list -> unit) -> unit
(** Apply a function to every stored node's bytes and children list (in
    unspecified order) — used to graft one store into another. *)

val stats : t -> stats
val reset_counters : t -> unit
(** Zero the [puts]/[put_bytes]/[gets] counters (stored nodes are kept). *)

val set_get_observer : t -> (Hash.t -> int -> unit) option -> unit
(** Install a callback invoked on every successful {!get} with the node
    hash and its byte size — used by the client/server deployment simulation
    to account for cache misses and transfer costs. *)

val set_put_observer : t -> (Hash.t -> int -> unit) option -> unit
(** Same for {!put} (called on every logical write, duplicate or not). *)

(** {2 Page sets and reachability} *)

val reachable : t -> Hash.t -> Hash.Set.t
(** The page set of an instance: all nodes reachable from [root], including
    the root itself.  Unknown hashes and {!Hash.null} children are skipped. *)

val reachable_many : t -> Hash.t list -> Hash.Set.t
(** Union of page sets — computed with a shared visited set, so shared
    subtrees are walked once. *)

val bytes_of_set : t -> Hash.Set.t -> int
(** Total byte size of a page set. *)

(** {2 Garbage collection} *)

val gc : t -> roots:Hash.t list -> int
(** Drop every node not reachable from [roots]; returns how many nodes were
    reclaimed. *)

(** {2 Persistence}

    A store can be serialized to a file and reloaded — the on-disk format is
    a length-prefixed node dump with per-node children lists; every node is
    re-hashed on load, so a corrupted or truncated file is rejected. *)

val save : t -> string -> unit
(** Write all nodes to [path] (atomic via a temp file + rename). *)

val load : string -> t
(** Read a store back.  Raises [Failure] on a malformed or truncated file.
    Nodes are re-hashed on load (the store is content-addressed), so bytes
    altered on disk simply hash to a different key and every reference to
    the original digest fails to resolve — tampering cannot be masked. *)

(** {2 Tamper simulation (for tests, examples and the tamper-evidence
    experiments)} *)

val corrupt : t -> Hash.t -> unit
(** Flip one byte of the stored payload while keeping its key — simulating
    an attacker who rewrites a page in place.  Raises [Not_found]. *)

val get_verified : t -> Hash.t -> (string, [ `Tampered of Hash.t ]) result
(** Fetch and re-hash: detects {!corrupt}ed nodes, the way a Merkle-proof
    verification would. *)
