(** Zipfian item sampler over [0, n), the YCSB generator's algorithm
    (Gray et al.), parameterised by the skew θ.

    θ = 0 degenerates to the uniform distribution; θ = 0.9 is the "highly
    skewed" setting of the paper (Table 2 uses θ ∈ {0, 0.5, 0.9}; θ < 1
    is required). *)

type t

val create : n:int -> theta:float -> t
(** Precomputes the harmonic normaliser in O(n). *)

val n : t -> int
val theta : t -> float

val sample : t -> Siri_core.Rng.t -> int
(** An item rank in [0, n); rank 0 is the most popular. *)
