open Siri_core
module Rlp = Siri_codec.Rlp
module Hex = Siri_crypto.Hex
module Hash = Siri_crypto.Hash

type tx = { hash_hex : string; rlp : string }
type block = { number : int; txs : tx list }

(* Payload sizes: heavy-tailed.  Most transactions are plain transfers with
   small payloads; contract calls stretch into tens of KB.  Calibrated to a
   ≈ 532-byte mean with a 100-byte floor and ≈ 57 KB ceiling. *)
let payload_length rng =
  let u = Rng.float rng in
  if u < 0.75 then Rng.int_in rng 0 100
  else if u < 0.95 then Rng.int_in rng 100 1500
  else if u < 0.995 then Rng.int_in rng 1500 8000
  else Rng.int_in rng 8000 57000

let transaction ~seed i =
  let rng = Rng.create (Hashtbl.hash (seed, i)) in
  let item =
    Rlp.List
      [ Rlp.of_int (Rng.int rng 1_000_000);          (* nonce *)
        Rlp.of_int (Rng.int_in rng 1 200) ;           (* gas price (gwei) *)
        Rlp.of_int (Rng.int_in rng 21_000 8_000_000); (* gas limit *)
        Rlp.String (Rng.bytes_random rng 20);         (* recipient *)
        Rlp.of_int (Rng.int rng 1_000_000_000);       (* value (wei, trunc) *)
        Rlp.String (Rng.bytes_random rng (payload_length rng)) ]
  in
  let rlp = Rlp.encode item in
  { hash_hex = Hash.to_hex (Hash.of_string rlp); rlp }

let block ?(seed = 21) ~txs_per_block number =
  { number;
    txs =
      List.init txs_per_block (fun j ->
          transaction ~seed ((number * 1_000_003) + j)) }

let blocks ?(seed = 21) ~txs_per_block ~count () =
  List.init count (fun number -> block ~seed ~txs_per_block number)

let entries_of_block b = List.map (fun tx -> (tx.hash_hex, tx.rlp)) b.txs

let mean_tx_size ?(seed = 21) ~samples () =
  let total = ref 0 in
  for i = 0 to samples - 1 do
    total := !total + String.length (transaction ~seed i).rlp
  done;
  Float.of_int !total /. Float.of_int samples
