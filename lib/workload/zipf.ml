type t = {
  n : int;
  theta : float;
  zetan : float;
  alpha : float;
  eta : float;
}

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0.0 || theta >= 1.0 then
    invalid_arg "Zipf.create: theta must be in [0, 1)";
  if theta = 0.0 then { n; theta; zetan = 0.0; alpha = 0.0; eta = 0.0 }
  else begin
    let zeta m =
      let acc = ref 0.0 in
      for i = 1 to m do
        acc := !acc +. (1.0 /. Float.pow (Float.of_int i) theta)
      done;
      !acc
    in
    let zetan = zeta n in
    let zeta2 = zeta (min n 2) in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. Float.pow (2.0 /. Float.of_int n) (1.0 -. theta))
      /. (1.0 -. (zeta2 /. zetan))
    in
    { n; theta; zetan; alpha; eta }
  end

let n t = t.n
let theta t = t.theta

let sample t rng =
  if t.theta = 0.0 then Siri_core.Rng.int rng t.n
  else begin
    let u = Siri_core.Rng.float rng in
    let uz = u *. t.zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. Float.pow 0.5 t.theta then 1
    else
      let rank =
        Float.to_int
          (Float.of_int t.n *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha)
      in
      min rank (t.n - 1)
  end
