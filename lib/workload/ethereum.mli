(** Ethereum-shaped synthetic transactions (Section 5.1.3 substitution).

    The paper indexes real transactions of blocks 8.9M–9.2M: the key is the
    64-byte hex transaction hash and the value the RLP-encoded raw
    transaction (100–57 738 bytes, average ≈ 532).  This generator emits
    RLP-encoded synthetic transactions with the same field structure
    (nonce, gas price, gas, recipient, value, payload) and a long-tailed
    payload-size distribution matching those statistics; versions are
    created per block, as in the chain. *)

open Siri_core

type tx = {
  hash_hex : string;  (** 64-char hex of the transaction digest — the key *)
  rlp : string;  (** RLP-encoded transaction — the value *)
}

type block = { number : int; txs : tx list }

val transaction : seed:int -> int -> tx
(** Deterministic transaction [i]. *)

val block : ?seed:int -> txs_per_block:int -> int -> block
(** Block [number] with [txs_per_block] transactions. *)

val blocks : ?seed:int -> txs_per_block:int -> count:int -> unit -> block list

val entries_of_block : block -> (Kv.key * Kv.value) list

val mean_tx_size : ?seed:int -> samples:int -> unit -> float
