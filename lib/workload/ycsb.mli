(** YCSB-style synthetic dataset and workloads (Section 5.1.1, Table 2).

    Keys are 5–15 byte strings; values average 256 bytes.  Records are
    deterministic functions of [(seed, id, version)], so independently
    generated datasets agree record-for-record — which is what the
    overlapping multi-group workloads rely on. *)

open Siri_core

type t

val create : ?seed:int -> n:int -> unit -> t
(** A dataset universe of [n] records. *)

val n : t -> int
val key : t -> int -> Kv.key
(** Key of record [id]; deterministic, 5–15 bytes, unique per id. *)

val value : t -> ?version:int -> int -> Kv.value
(** Value of record [id] at a version; ≈256 bytes; distinct across
    versions. *)

val entry : t -> ?version:int -> int -> Kv.key * Kv.value
val dataset : t -> (Kv.key * Kv.value) list
(** All [n] records at version 0. *)

type op_mix = { write_ratio : float;  (** 0 = read-only, 1 = write-only *) }

type operation = Read of Kv.key | Write of Kv.key * Kv.value

val operations :
  t -> rng:Rng.t -> theta:float -> mix:op_mix -> count:int -> operation list
(** [count] operations with Zipfian key choice of skew [theta]; writes
    rewrite the chosen record with a fresh value. *)

val update_batches :
  t -> rng:Rng.t -> batch:int -> versions:int -> Kv.op list list
(** [versions] batches of [batch] random-record updates each — the
    versioned-update stream used by the storage experiments (Figures 1,
    14). *)

val overlap_workload :
  t ->
  offset:int ->
  group:int ->
  groups:int ->
  overlap_ratio:float ->
  count:int ->
  (Kv.key * Kv.value) list
(** The diverse-group collaboration workload (Section 5.4.2): [count]
    records of which the first [overlap_ratio] fraction are byte-identical
    across all [groups] (drawn from the universe starting at record id
    [offset] — pass 0 to reuse the initial records — wrapping modulo [n]) and the rest are private to [group],
    interleaved uniformly in key order. *)
