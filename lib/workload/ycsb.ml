open Siri_core
module Hex = Siri_crypto.Hex
module Sha256 = Siri_crypto.Sha256

type t = { seed : int; n : int }

let create ?(seed = 1) ~n () =
  if n <= 0 then invalid_arg "Ycsb.create: n must be positive";
  { seed; n }

let n t = t.n

(* A per-record deterministic stream: every derived byte comes from hashing
   (seed, id, version, purpose), so datasets regenerate identically. *)
let record_rng t ~purpose ~version id =
  Rng.create
    (Hashtbl.hash (t.seed, purpose, version, id) lxor ((id * 2654435761) land max_int))

let key t id =
  if id < 0 || id >= t.n then invalid_arg "Ycsb.key: id out of range";
  let rng = record_rng t ~purpose:0 ~version:0 id in
  (* 5..15 bytes total, unique: a base36 rendering of the id padded into a
     random-length alphanumeric tail. *)
  let base36 =
    let rec go v acc =
      let digit = "0123456789abcdefghijklmnopqrstuvwxyz".[v mod 36] in
      let acc = String.make 1 digit ^ acc in
      if v < 36 then acc else go (v / 36) acc
    in
    go id ""
  in
  let len = max (Rng.int_in rng 5 15) (String.length base36 + 1) in
  let pad = Rng.string_alnum rng (len - String.length base36 - 1) in
  pad ^ "~" ^ base36

let value t ?(version = 0) id =
  let rng = record_rng t ~purpose:1 ~version id in
  (* 200..312 bytes, mean 256 — matches the paper's average record size. *)
  let len = Rng.int_in rng 200 312 in
  Rng.string_alnum rng len

let entry t ?(version = 0) id = (key t id, value t ~version id)
let dataset t = List.init t.n (fun id -> entry t id)

type op_mix = { write_ratio : float }
type operation = Read of Kv.key | Write of Kv.key * Kv.value

let operations t ~rng ~theta ~mix ~count =
  let zipf = Zipf.create ~n:t.n ~theta in
  List.init count (fun _ ->
      let id = Zipf.sample zipf rng in
      if Rng.float rng < mix.write_ratio then
        Write (key t id, value t ~version:(Rng.int rng 1_000_000) id)
      else Read (key t id))

let update_batches t ~rng ~batch ~versions =
  List.init versions (fun v ->
      List.init batch (fun _ ->
          let id = Rng.int rng t.n in
          Kv.Put (key t id, value t ~version:(v + 1) id)))

let overlap_workload t ~offset ~group ~groups ~overlap_ratio ~count =
  if overlap_ratio < 0.0 || overlap_ratio > 1.0 then
    invalid_arg "Ycsb.overlap_workload: ratio out of range";
  if group < 0 || group >= groups then
    invalid_arg "Ycsb.overlap_workload: bad group";
  let shared = Float.to_int (Float.of_int count *. overlap_ratio) in
  List.init count (fun i ->
      if i < shared then
        (* Identical across groups: a record of the common universe. *)
        let id = (offset + i) mod t.n in
        (key t id, value t ~version:1 id)
      else begin
        (* Private to this group: a random leading component makes private
           keys interleave uniformly with the shared records in key order
           (a group suffix keeps them collision-free across groups). *)
        let rng = Rng.create (Hashtbl.hash (t.seed, 2, group, i)) in
        let k =
          Printf.sprintf "%s~g%d-%d" (Rng.string_alnum rng 5) group i
        in
        (k, Rng.string_alnum rng (Rng.int_in rng 200 312))
      end)
