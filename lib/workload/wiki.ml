open Siri_core

type t = { seed : int; pages : int }

let create ?(seed = 11) ~pages () =
  if pages <= 0 then invalid_arg "Wiki.create: pages must be positive";
  { seed; pages }

let pages t = t.pages
let prefix = "https://en.wikipedia.org/wiki/"

let page_rng t ~purpose ~revision id =
  Rng.create (Hashtbl.hash (t.seed, purpose, revision, id))

(* Title lengths: mostly short, a long tail up to 268 chars, mean ≈ 20 so
   the full key averages ≈ 50 bytes as in the dump. *)
let title_length rng =
  let u = Rng.float rng in
  if u < 0.9 then Rng.int_in rng 1 30
  else if u < 0.99 then Rng.int_in rng 30 80
  else Rng.int_in rng 80 268

let title rng len =
  String.init len (fun i ->
      if i > 0 && i mod 8 = 7 then '_' else Rng.char_alnum rng)

let key t id =
  let rng = page_rng t ~purpose:0 ~revision:0 id in
  Printf.sprintf "%s%s_%d" prefix (title rng (title_length rng)) id

(* Abstract lengths: 1–1036 bytes, mean ≈ 96. *)
let abstract_length rng =
  let u = Rng.float rng in
  if u < 0.7 then Rng.int_in rng 1 100
  else if u < 0.95 then Rng.int_in rng 100 300
  else Rng.int_in rng 300 1036

let words rng len =
  String.init len (fun i ->
      if i mod 6 = 5 then ' ' else Rng.char_alnum rng)

let value t ?(revision = 0) id =
  let rng = page_rng t ~purpose:1 ~revision id in
  words rng (abstract_length rng)

let dataset t = List.init t.pages (fun id -> (key t id, value t id))

let version_stream t ~rng ~versions ~edits_per_version =
  List.init versions (fun v ->
      List.init edits_per_version (fun _ ->
          let id = Rng.int rng t.pages in
          Kv.Put (key t id, value t ~revision:(v + 1) id)))

let mean_length f t =
  let total =
    List.fold_left ( + ) 0 (List.init t.pages (fun id -> String.length (f t id)))
  in
  Float.of_int total /. Float.of_int t.pages

let mean_key_length t = mean_length key t
let mean_value_length t = mean_length (fun t id -> value t id) t
