(** Sequentially evolved version streams for the deduplication analysis
    (Section 4.2.2).

    Each version differs from its predecessor by a ratio α of records in a
    contiguous key range — the exact setting under which the paper derives
    η ≈ 1/2 − α/2 — with both variants considered there: in-place updates
    (|Rᵢ| = |Rᵢ₋₁|) and insertions (|Rᵢ| = (1+α)·|Rᵢ₋₁|). *)

open Siri_core

val continuous_updates :
  ycsb:Ycsb.t -> rng:Rng.t -> alpha:float -> versions:int -> Kv.op list list
(** Version i rewrites an α-fraction contiguous run of record ids with
    version-i values. *)

val continuous_inserts :
  ycsb:Ycsb.t -> alpha:float -> versions:int -> base:int -> Kv.op list list
(** Version i appends α·|Rᵢ₋₁| brand-new records in a fresh contiguous id
    range; [base] is |R₀|. *)
