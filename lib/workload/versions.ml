open Siri_core

(* The Section 4.2.2 analysis assumes each version rewrites a *contiguous
   key range*; record ids are generated in no particular key order, so the
   universe is sorted by key once and slices are taken from that order. *)
let sorted_ids ycsb =
  let n = Ycsb.n ycsb in
  let pairs = Array.init n (fun id -> (Ycsb.key ycsb id, id)) in
  Array.sort (fun (a, _) (b, _) -> String.compare a b) pairs;
  pairs

let continuous_updates ~ycsb ~rng ~alpha ~versions =
  if alpha < 0.0 || alpha > 1.0 then
    invalid_arg "Versions.continuous_updates: alpha out of range";
  let pairs = sorted_ids ycsb in
  let n = Array.length pairs in
  let span = max 1 (Float.to_int (alpha *. Float.of_int n)) in
  List.init versions (fun v ->
      let start = Rng.int rng (max 1 (n - span + 1)) in
      List.init span (fun i ->
          let key, id = pairs.(start + i) in
          Kv.Put (key, Ycsb.value ycsb ~version:(v + 1) id)))

let continuous_inserts ~ycsb ~alpha ~versions ~base =
  if alpha < 0.0 || alpha > 1.0 then
    invalid_arg "Versions.continuous_inserts: alpha out of range";
  let next = ref base in
  List.init versions (fun v ->
      let count = max 1 (Float.to_int (alpha *. Float.of_int !next)) in
      let start = !next in
      next := !next + count;
      List.init count (fun i ->
          let id = start + i in
          if id >= Ycsb.n ycsb then
            (* Beyond the universe: synthesise an extension record. *)
            Kv.Put
              ( Printf.sprintf "zz-ext-%012d" id,
                Ycsb.value ycsb ~version:(v + 1) (id mod Ycsb.n ycsb) )
          else Kv.Put (Ycsb.key ycsb id, Ycsb.value ycsb ~version:0 id)))
