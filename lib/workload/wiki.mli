(** Wikipedia-shaped synthetic dataset (Section 5.1.2 substitution).

    The paper uses Wikipedia abstract dumps: keys are page URLs (31–298
    bytes, average ≈ 50) and values are abstract texts (1–1036 bytes,
    average ≈ 96), split into 300 versions.  Index behaviour depends only on
    these length distributions and the versioned update pattern, both of
    which this generator matches with synthetic URL/text content. *)

open Siri_core

type t

val create : ?seed:int -> pages:int -> unit -> t
val pages : t -> int

val key : t -> int -> Kv.key
(** A URL-shaped key, e.g. ["https://en.wikipedia.org/wiki/T3gk_9..."]. *)

val value : t -> ?revision:int -> int -> Kv.value
(** Abstract-shaped text for page [id] at a revision. *)

val dataset : t -> (Kv.key * Kv.value) list

val version_stream :
  t -> rng:Rng.t -> versions:int -> edits_per_version:int -> Kv.op list list
(** Successive dump deltas: each version re-writes [edits_per_version]
    random pages with their next revision. *)

val mean_key_length : t -> float
val mean_value_length : t -> float
