(** The SIRI wire protocol: framed, checksummed request/response messages.

    Every message travels as one {!Siri_codec.Frame} —
    [len(4) | sha256(32) | payload] — the same framing as the WAL journal
    and the pack segments, so every byte that crosses the wire is covered
    by a digest: a flipped bit anywhere in a frame is refused as
    [`Tampered], a truncated frame as [`Malformed], and decoding is total
    — no exception ever escapes {!decode_request}/{!decode_response} on
    arbitrary bytes (the [test_server] adversarial storm pins this at
    every byte offset).

    The payload is {!Siri_codec.Wire} encoded: a version byte, a request
    deadline (requests only), a tag byte, then the body.  All list counts
    are validated against the remaining bytes before allocation, so a
    forged count cannot balloon memory. *)

module Hash = Siri_crypto.Hash
module Kv = Siri_core.Kv

val version : int
(** Protocol version byte (1).  A mismatch is refused as [`Malformed]. *)

val max_frame : int
(** Upper bound on a frame payload (64 MiB); larger declared lengths are
    refused before allocation. *)

(** {1 Messages} *)

type req =
  | Ping
  | Head of { branch : string }
  | Get of { branch : string; key : Kv.key }
  | Get_many of { branch : string; keys : Kv.key list }
  | Prove_many of { branch : string; keys : Kv.key list }
  | Commit of {
      req_id : string;
      branch : string;
      message : string;
      ops : Kv.op list;
    }
  | Stats
  | Scan of {
      branch : string;
      lo : Kv.key option;
      hi : Kv.key option;
      limit : int;  (** cap on streamed entries; 0 = unbounded *)
    }
      (** Streaming ordered read over the half-open interval [[lo, hi)].
          Answered with a sequence of {!response.Entries} frames — the
          only multi-frame reply in the protocol — each bounded, with
          [more = false] on the last; an [Err] frame aborts the stream
          (e.g. [Bad_request] for an index kind without ordered scans). *)

type request = {
  deadline_ms : int;
      (** per-request budget in milliseconds; 0 = no deadline.  The server
          refuses work it cannot start within the budget with
          [Err Timeout] instead of queueing it into unbounded latency. *)
  body : req;
}

type error_code =
  | Overload  (** the commit queue is full — back off and retry *)
  | Timeout  (** the request's deadline expired before it was served *)
  | Tampered  (** integrity failure: a bad frame, or a poisoned commit path *)
  | Read_only
      (** the commit path reported [`Tampered] earlier; writes are refused,
          reads still served *)
  | Bad_request  (** undecodable or invalid request *)
  | Unknown_branch

type response =
  | Pong
  | Head_r of { id : Hash.t; root : Hash.t; version : int }
  | Value of Kv.value option
  | Values of (Kv.key * Kv.value option) list
  | Proof of { root : Hash.t; proof : string  (** {!Siri_core.Multiproof.encode} bytes *) }
  | Committed of {
      req_id : string;
      commit : Hash.t;
      version : int;
      group_size : int;  (** client batches folded into the same WAL frame *)
    }
  | Stats_r of string  (** telemetry sink as JSON *)
  | Err of { code : error_code; detail : string }
  | Entries of { entries : (Kv.key * Kv.value) list; more : bool }
      (** One chunk of a {!req.Scan} reply stream; the client keeps
          reading frames until [more = false]. *)

val error_code_to_string : error_code -> string

val valid_req_id : string -> bool
(** 1–64 bytes of [A-Za-z0-9._-] — the charset keeps request ids safe to
    embed in group-commit messages, which is how the server makes them
    idempotent {e across} crash recovery. *)

(** {1 Payload codec (total)} *)

val encode_request : request -> string
val decode_request : string -> (request, [ `Malformed of string ]) result

val encode_response : response -> string
val decode_response : string -> (response, [ `Malformed of string ]) result

(** {1 Framing} *)

val seal : string -> string
(** Wrap a payload into a checksummed frame for the wire. *)

val unseal :
  string ->
  (string, [ `Tampered of string | `Malformed of string ]) result
(** Open exactly one frame covering the whole blob: checksum mismatch is
    [`Tampered], a torn / trailing / oversized frame is [`Malformed].
    Total on arbitrary bytes. *)

(** {1 Socket transport} *)

module Io : sig
  val write_frame : Unix.file_descr -> string -> (unit, [ `Closed ]) result
  (** Seal and send; [`Closed] on a broken peer (EPIPE/ECONNRESET). *)

  val read_frame :
    ?deadline:float ->
    Unix.file_descr ->
    ( string,
      [ `Tampered of string | `Malformed of string | `Timeout | `Closed ] )
    result
  (** Read one frame and verify its checksum.  [deadline] is an absolute
      [Unix.gettimeofday] instant; omitted = block forever.  Never raises
      on peer-controlled bytes: oversized lengths are refused before
      allocation, damage surfaces as [`Tampered]/[`Malformed], EOF as
      [`Closed]. *)
end
