(** Client side of the SIRI wire protocol: a blocking connection with
    timeouts, jittered-backoff reconnect and idempotent commits.

    Every request goes through {!Siri_fault.Fault.with_retry} — the one
    retry loop in the system: a broken or timed-out connection is torn
    down, re-dialled with full-jitter exponential backoff (seeded from
    [retry_jitter], deterministic in tests) and the request re-sent.
    Reads are safe to re-send because they are snapshot reads; commits
    are safe because the request id makes them idempotent server-side —
    a retried commit is applied at most once, even across a server crash.

    Integrity failures are {e never} retried: a [`Tampered] frame means
    the bytes in flight were damaged, and retrying cannot make them
    trustworthy.  [`Overload] and [`Read_only] are surfaced to the
    caller, who owns the decision to back off or fail over.

    Telemetry (optional [sink]): [server.reconnect] counts re-dials,
    [client.req] counts requests sent. *)

module Hash = Siri_crypto.Hash
module Kv = Siri_core.Kv

type t

type error =
  [ `Unavailable of string
    (** could not reach the server (connect/send/receive) after the retry
        budget *)
  | `Timeout  (** the server refused: deadline expired *)
  | `Overload  (** the server refused: queue full — back off and retry *)
  | `Read_only  (** the server is degraded; writes refused *)
  | `Unknown_branch of string
  | `Tampered of string  (** integrity failure on the wire or server-side *)
  | `Refused of string  (** server rejected the request as invalid *)
  | `Unexpected of string  (** well-formed but wrong-shaped response *) ]

val error_to_string : error -> string

val connect :
  ?connect_timeout_s:float ->
  ?request_timeout_s:float ->
  ?attempts:int ->
  ?backoff_s:float ->
  ?retry_jitter:int ->
  ?sink:Siri_telemetry.Telemetry.sink ->
  addr:Server.addr ->
  unit ->
  (t, error) result
(** Dial the server.  [connect_timeout_s] (default 5) bounds the dial;
    [request_timeout_s] (default 10) bounds each response wait;
    [attempts] (default 3) and [backoff_s] (default 0.05) shape the
    reconnect loop, with [retry_jitter] (default none) seeding full
    jitter.  The returned handle is NOT thread-safe — one handle per
    client thread.  The first call ignores [SIGPIPE] process-wide, so a
    server dying mid-write surfaces as [`Unavailable] instead of killing
    the process. *)

val close : t -> unit

(** {1 Requests}

    [deadline_ms] rides inside the request (0 = none): the server refuses
    work it cannot start within the budget with [`Timeout]. *)

val ping : ?deadline_ms:int -> t -> (unit, error) result

val head :
  ?deadline_ms:int -> t -> branch:string ->
  (Hash.t * Hash.t * int, error) result
(** [(commit id, index root, version)] of the branch head snapshot. *)

val get :
  ?deadline_ms:int -> t -> branch:string -> Kv.key ->
  (Kv.value option, error) result

val get_many :
  ?deadline_ms:int -> t -> branch:string -> Kv.key list ->
  ((Kv.key * Kv.value option) list, error) result

val scan :
  ?deadline_ms:int -> ?lo:Kv.key -> ?hi:Kv.key -> ?limit:int ->
  t -> branch:string ->
  ((Kv.key * Kv.value) list, error) result
(** Ordered entries of the half-open interval [[lo, hi)] at the branch
    head snapshot, streamed from the server in bounded [Entries] chunks
    and reassembled here.  [limit] (0 = unbounded) caps the stream
    server-side.  Unlike the other requests this one is {e not} retried
    once the first chunk has arrived — a transport fault mid-stream
    surfaces as [`Unavailable] rather than risking duplicated entries;
    an index kind without ordered scans answers [`Refused]. *)

val prove_many :
  ?deadline_ms:int -> t -> branch:string -> Kv.key list ->
  (Hash.t * string, error) result
(** [(root, encoded multiproof)] — verify with
    {!Siri_core.Generic.verify_many} against the returned root after
    {!Siri_core.Multiproof.decode}. *)

val commit :
  ?deadline_ms:int -> ?req_id:string -> t ->
  branch:string -> message:string -> Kv.op list ->
  (Hash.t * int * int, error) result
(** [(commit id, version, group_size)].  [req_id] defaults to a fresh
    unique id; pass an explicit one to make a retry {e across} client
    restarts idempotent.  Retries inside this call reuse the same id
    automatically. *)

val stats : ?deadline_ms:int -> t -> (string, error) result
(** The server's telemetry sink as JSON. *)

val fresh_req_id : unit -> string
(** A process-unique request id (pid + time + counter; matches
    {!Proto.valid_req_id}). *)
